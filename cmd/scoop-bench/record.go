package main

import (
	"flag"
	"fmt"
	"io"
	"testing"

	"scoop/internal/benchrec"
)

// recordOptions configures one `scoop-bench -record` run.
type recordOptions struct {
	// Dir is the directory scanned for BENCH_<n>.json files and stamped into
	// git metadata (default ".").
	Dir string
	// Out overrides the output path; "" picks the next BENCH_<n>.json in Dir.
	Out string
	// Baseline is an existing record to compare against ("" skips comparison).
	Baseline string
	// TolerancePct is the allowed regression before the comparison fails.
	TolerancePct float64
	// Repeats is how many times each benchmark runs (variance capture).
	Repeats int
	// BenchTime is a testing -benchtime value ("1s", "100x"); "" keeps the
	// testing default. CI uses a reduced iteration count here.
	BenchTime string
	// Advisory downgrades comparison regressions to warnings (noisy runners);
	// record and schema failures still fail the run.
	Advisory bool
}

// errRegression marks a failed baseline comparison so main can exit nonzero
// while the caller still distinguishes it from recording failures.
type errRegression struct {
	regs []benchrec.Regression
}

func (e *errRegression) Error() string {
	return fmt.Sprintf("%d benchmark(s) regressed beyond tolerance", len(e.regs))
}

// setBenchTime routes a -benchtime value to testing.Benchmark, which reads
// the test.benchtime flag. testing.Init is idempotent, so this is safe both
// from the CLI binary and from tests.
func setBenchTime(v string) error {
	if v == "" {
		return nil
	}
	testing.Init()
	if err := flag.Set("test.benchtime", v); err != nil {
		return fmt.Errorf("bad -benchtime %q: %w", v, err)
	}
	return nil
}

// runRecord records one trajectory point and optionally enforces a baseline.
func runRecord(w io.Writer, suite []benchrec.Benchmark, opts recordOptions) error {
	if opts.Dir == "" {
		opts.Dir = "."
	}
	if err := setBenchTime(opts.BenchTime); err != nil {
		return err
	}
	seq, latest, err := benchrec.NextSeq(opts.Dir)
	if err != nil {
		return err
	}
	out := opts.Out
	if out == "" {
		out = fmt.Sprintf("%s/BENCH_%d.json", opts.Dir, seq)
	}
	fmt.Fprintf(w, "recording %d benchmark(s) x%d repeats -> %s\n", len(suite), opts.Repeats, out)
	if latest != "" {
		fmt.Fprintf(w, "latest trajectory point: %s\n", latest)
	}
	results := benchrec.Run(suite, opts.Repeats)
	rec := benchrec.New(opts.Dir, seq, opts.BenchTime, results)
	for _, r := range rec.Results {
		line := fmt.Sprintf("  %-40s %12.1f ns/op", r.Name, r.NsPerOp)
		if r.BytesPerSec > 0 {
			line += fmt.Sprintf(" %10.1f MB/s", r.BytesPerSec/1e6)
		}
		line += fmt.Sprintf(" %6d B/op %5d allocs/op", r.BytesPerOp, r.AllocsPerOp)
		fmt.Fprintln(w, line)
	}
	if err := rec.WriteFile(out); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s (seq %d)\n", out, rec.Seq)
	if opts.Baseline == "" {
		return nil
	}
	base, err := benchrec.ReadFile(opts.Baseline)
	if err != nil {
		return err
	}
	regs, err := benchrec.Compare(base, rec, opts.TolerancePct)
	if err != nil {
		return err
	}
	if len(regs) == 0 {
		fmt.Fprintf(w, "no regressions vs %s (tolerance %.0f%%)\n", opts.Baseline, opts.TolerancePct)
		return nil
	}
	for _, r := range regs {
		fmt.Fprintf(w, "REGRESSION %s\n", r)
	}
	if opts.Advisory {
		fmt.Fprintf(w, "advisory mode: %d regression(s) vs %s not enforced\n", len(regs), opts.Baseline)
		return nil
	}
	return &errRegression{regs: regs}
}
