// Command scoop-bench regenerates the paper's evaluation tables and
// figures. Each experiment prints the paper's reported values next to this
// reproduction's (real-path measurements at laptop scale plus testbed-model
// projections at the paper's 50GB–3TB scales).
//
// It is also the recorder of the repository's performance trajectory:
// -record runs the hot-path benchmark suite (internal/benchrec) and emits the
// next BENCH_<n>.json, optionally failing against a committed baseline.
//
// Usage:
//
//	scoop-bench -all
//	scoop-bench -fig 5
//	scoop-bench -table 1 -scale medium
//	scoop-bench -record
//	scoop-bench -record -baseline BENCH_1.json -tolerance 25
//	scoop-bench -record -benchtime 100x -repeats 2 -advisory -out cand.json
package main

import (
	"flag"
	"fmt"
	"os"

	"scoop/internal/benchrec"
	"scoop/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scoop-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	fig := flag.Int("fig", 0, "regenerate one figure (1, 5, 6, 7, 8, 9, 10)")
	tableN := flag.Int("table", 0, "regenerate one table (1)")
	all := flag.Bool("all", false, "regenerate everything")
	scale := flag.String("scale", "small", "real-path dataset scale: small or medium")
	record := flag.Bool("record", false, "record a benchmark trajectory point (BENCH_<n>.json)")
	out := flag.String("out", "", "with -record: output path (default: next BENCH_<n>.json)")
	baseline := flag.String("baseline", "", "with -record: BENCH_*.json to compare against")
	tolerance := flag.Float64("tolerance", 10, "with -record: allowed regression in percent")
	repeats := flag.Int("repeats", 3, "with -record: runs per benchmark (variance capture)")
	benchtime := flag.String("benchtime", "", "with -record: testing benchtime, e.g. 2s or 100x")
	advisory := flag.Bool("advisory", false, "with -record: report regressions without failing")
	flag.Parse()

	if *record {
		return runRecord(os.Stdout, benchrec.Suite(), recordOptions{
			Dir:          ".",
			Out:          *out,
			Baseline:     *baseline,
			TolerancePct: *tolerance,
			Repeats:      *repeats,
			BenchTime:    *benchtime,
			Advisory:     *advisory,
		})
	}

	if !*all && *fig == 0 && *tableN == 0 {
		flag.Usage()
		return fmt.Errorf("pick -all, -fig N, -table N or -record")
	}

	var sc experiment.Scale
	switch *scale {
	case "small":
		sc = experiment.SmallScale()
	case "medium":
		sc = experiment.MediumScale()
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}

	// Figures 1 and 6 are model-only; everything else needs the env.
	needEnv := *all || *tableN == 1 || *fig == 5 || *fig == 7 || *fig == 8 || *fig == 9 || *fig == 10
	var env *experiment.Env
	if needEnv {
		fmt.Fprintf(os.Stderr, "scoop-bench: building %s-scale environment...\n", *scale)
		var err error
		env, err = experiment.NewEnv(sc)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "scoop-bench: dataset ready (%d rows, %d bytes)\n\n", env.Rows, env.DatasetBytes)
	}

	w := os.Stdout
	runOne := func(name string, fn func() error) error {
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintln(w)
		return nil
	}
	type exp struct {
		fig   int
		table int
		name  string
		fn    func() error
	}
	exps := []exp{
		{fig: 1, name: "fig1", fn: func() error { return experiment.Fig1(w) }},
		{table: 1, name: "table1", fn: func() error { return experiment.Table1(w, env) }},
		{fig: 5, name: "fig5", fn: func() error { return experiment.Fig5(w, env) }},
		{fig: 6, name: "fig6", fn: func() error { return experiment.Fig6(w) }},
		{fig: 7, name: "fig7", fn: func() error { return experiment.Fig7(w, env) }},
		{fig: 8, name: "fig8", fn: func() error { return experiment.Fig8(w, env) }},
		{fig: 9, name: "fig9", fn: func() error { return experiment.Fig9(w, env) }},
		{fig: 10, name: "fig10", fn: func() error { return experiment.Fig10(w, env) }},
	}
	matched := false
	for _, e := range exps {
		if *all || (*fig != 0 && e.fig == *fig) || (*tableN != 0 && e.table == *tableN) {
			matched = true
			if err := runOne(e.name, e.fn); err != nil {
				return err
			}
		}
	}
	if !matched {
		return fmt.Errorf("no experiment matches -fig %d / -table %d", *fig, *tableN)
	}
	return nil
}
