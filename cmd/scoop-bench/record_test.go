package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"scoop/internal/benchrec"
)

// fastSuite is a cheap deterministic benchmark for CLI-path tests.
func fastSuite() []benchrec.Benchmark {
	return []benchrec.Benchmark{{Name: "BenchmarkTiny", F: func(b *testing.B) {
		b.ReportAllocs()
		var acc int
		for i := 0; i < b.N; i++ {
			acc += i
		}
		_ = acc
	}}}
}

func TestRecordWritesNextTrajectoryPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmark calibration")
	}
	dir := t.TempDir()
	var out bytes.Buffer
	err := runRecord(&out, fastSuite(), recordOptions{Dir: dir, Repeats: 1, BenchTime: "10x"})
	if err != nil {
		t.Fatalf("runRecord: %v (output: %s)", err, out.String())
	}
	rec, err := benchrec.ReadFile(filepath.Join(dir, "BENCH_1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 1 || len(rec.Results) != 1 || rec.Results[0].Name != "BenchmarkTiny" {
		t.Fatalf("record: %+v", rec)
	}
	// A second recording lands on seq 2.
	if err := runRecord(&out, fastSuite(), recordOptions{Dir: dir, Repeats: 1, BenchTime: "10x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := benchrec.ReadFile(filepath.Join(dir, "BENCH_2.json")); err != nil {
		t.Fatal(err)
	}
}

// TestRecordFailsOnInjectedRegression is the acceptance check that
// `scoop-bench -record -baseline` exits nonzero on a regression: the baseline
// claims an impossibly fast zero-alloc run, so the recorded candidate must
// regress beyond any reasonable tolerance and runRecord must return the
// error main converts to exit status 1.
func TestRecordFailsOnInjectedRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmark calibration")
	}
	dir := t.TempDir()
	base := &benchrec.Record{
		SchemaVersion: benchrec.SchemaVersion,
		Seq:           1,
		Results:       []benchrec.Result{{Name: "BenchmarkTiny", NsPerOp: 1e-6, AllocsPerOp: 0}},
	}
	basePath := filepath.Join(dir, "BENCH_1.json")
	if err := base.WriteFile(basePath); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := runRecord(&out, fastSuite(), recordOptions{
		Dir: dir, Repeats: 1, BenchTime: "10x",
		Baseline: basePath, TolerancePct: 25,
	})
	var regErr *errRegression
	if !errors.As(err, &regErr) {
		t.Fatalf("want regression error, got %v (output: %s)", err, out.String())
	}
	// Advisory mode reports the same regressions but succeeds.
	err = runRecord(&out, fastSuite(), recordOptions{
		Dir: dir, Repeats: 1, BenchTime: "10x",
		Baseline: basePath, TolerancePct: 25, Advisory: true,
	})
	if err != nil {
		t.Fatalf("advisory mode should not fail: %v", err)
	}
}

func TestRecordFailsOnSchemaMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmark calibration")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(bad, []byte(`{"schema_version": 999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := runRecord(&out, fastSuite(), recordOptions{
		Dir: dir, Repeats: 1, BenchTime: "10x",
		Baseline: bad, Advisory: true,
	})
	if err == nil {
		t.Fatal("schema mismatch must fail even in advisory mode")
	}
}
