// Command scoop-gen generates synthetic GridPocket-like smart-meter CSV
// datasets (the structural stand-in for the paper's anonymized data) and
// writes them to a file or uploads them to a running store.
//
// Usage:
//
//	scoop-gen -meters 10000 -days 31 -o dataset.csv
//	scoop-gen -meters 1000 -days 31 -store http://localhost:8080 \
//	          -account gp -container meters -objects 8
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"scoop/internal/meter"
	"scoop/internal/objectstore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scoop-gen:", err)
		os.Exit(1)
	}
}

func run() error {
	meters := flag.Int("meters", 1000, "number of smart meters")
	days := flag.Int("days", 31, "days of readings")
	interval := flag.Duration("interval", 10*time.Minute, "reading interval")
	seed := flag.Int64("seed", 1, "generator seed")
	header := flag.Bool("header", false, "emit a header record")
	dirty := flag.Float64("dirty", 0, "fraction of malformed rows (for ETL demos)")
	out := flag.String("o", "", "output file (default stdout)")
	store := flag.String("store", "", "store URL; upload instead of writing a file")
	account := flag.String("account", "scoop", "store account")
	container := flag.String("container", "meters", "store container")
	objects := flag.Int("objects", 1, "number of objects to split the upload into")
	flag.Parse()

	cfg := meter.Config{
		Meters:        *meters,
		Start:         time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC),
		Days:          *days,
		Interval:      *interval,
		Seed:          *seed,
		Header:        *header,
		DirtyFraction: *dirty,
	}
	fmt.Fprintf(os.Stderr, "scoop-gen: %d meters x %d readings = %d rows\n",
		cfg.Meters, cfg.ReadingsPerMeter(), cfg.Rows())

	if *store != "" {
		return upload(cfg, *store, *account, *container, *objects)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	n, err := cfg.WriteCSV(w)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "scoop-gen: wrote %d bytes\n", n)
	return nil
}

func upload(cfg meter.Config, store, account, container string, objects int) error {
	ctx := context.Background() // one-shot CLI upload
	client := objectstore.NewHTTPClient(store)
	if err := client.CreateContainer(ctx, account, container, nil); err != nil &&
		err != objectstore.ErrContainerExists {
		return err
	}
	var sb strings.Builder
	if _, err := cfg.WriteCSV(&sb); err != nil {
		return err
	}
	data := sb.String()
	if objects < 1 {
		objects = 1
	}
	chunk := len(data) / objects
	start := 0
	var total int64
	for i := 0; i < objects && start < len(data); i++ {
		end := start + chunk
		if i == objects-1 || end >= len(data) {
			end = len(data)
		} else {
			for end < len(data) && data[end-1] != '\n' {
				end++
			}
		}
		name := fmt.Sprintf("part-%04d.csv", i)
		info, err := client.PutObject(ctx, account, container, name, strings.NewReader(data[start:end]), nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "scoop-gen: uploaded %s (%d bytes, etag %s)\n", name, info.Size, info.ETag)
		total += info.Size
		start = end
	}
	fmt.Fprintf(os.Stderr, "scoop-gen: uploaded %d bytes total\n", total)
	return nil
}
