// Command scoop-admin performs administrative operations against a running
// store (scoopd): container management, storlet-manifest deployment (PUT a
// manifest object into the reserved .storlets container), and stats.
//
// Usage:
//
//	scoop-admin -store http://localhost:8080 containers gp
//	scoop-admin -store http://localhost:8080 create-container gp meters
//	scoop-admin -store http://localhost:8080 delete-container gp meters
//	scoop-admin -store http://localhost:8080 list gp meters [prefix]
//	scoop-admin -store http://localhost:8080 deploy gp my-filter.json
//	scoop-admin -store http://localhost:8080 stats
//	scoop-admin -store http://localhost:8080 ring
//	scoop-admin -store http://localhost:8080 add-node [name]
//	scoop-admin -store http://localhost:8080 remove-node <name>
//	scoop-admin -store http://localhost:8080 drain-node <name>
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"scoop/internal/objectstore"
	"scoop/internal/storlet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scoop-admin:", err)
		os.Exit(1)
	}
}

func run() error {
	store := flag.String("store", "http://localhost:8080", "store URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		return fmt.Errorf("missing command (containers, create-container, delete-container, list, deploy, sync, stats, ring, add-node, remove-node, drain-node)")
	}
	client := objectstore.NewHTTPClient(*store)
	// One-shot CLI: commands run to completion or are killed with the
	// process, so Background is the honest root context.
	ctx := context.Background()
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "containers":
		if len(rest) != 1 {
			return fmt.Errorf("usage: containers <account>")
		}
		names, err := client.ListContainers(ctx, rest[0])
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return nil
	case "create-container":
		if len(rest) != 2 {
			return fmt.Errorf("usage: create-container <account> <container>")
		}
		err := client.CreateContainer(ctx, rest[0], rest[1], nil)
		if err == objectstore.ErrContainerExists {
			fmt.Println("already exists")
			return nil
		}
		return err
	case "delete-container":
		if len(rest) != 2 {
			return fmt.Errorf("usage: delete-container <account> <container>")
		}
		return client.DeleteContainer(ctx, rest[0], rest[1])
	case "list":
		if len(rest) < 2 || len(rest) > 3 {
			return fmt.Errorf("usage: list <account> <container> [prefix]")
		}
		prefix := ""
		if len(rest) == 3 {
			prefix = rest[2]
		}
		objects, err := client.ListObjects(ctx, rest[0], rest[1], prefix)
		if err != nil {
			return err
		}
		for _, o := range objects {
			fmt.Printf("%-40s %10d  %s\n", o.Name, o.Size, o.ETag)
		}
		return nil
	case "deploy":
		if len(rest) != 2 {
			return fmt.Errorf("usage: deploy <account> <manifest.json>")
		}
		return deploy(ctx, client, rest[0], rest[1])
	case "sync":
		if len(rest) != 1 {
			return fmt.Errorf("usage: sync <account>")
		}
		resp, err := http.Post(strings.TrimRight(*store, "/")+"/admin/deploy?account="+rest[0], "", nil)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if err != nil {
			return fmt.Errorf("sync: read response: %w", err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("sync: http %d: %s", resp.StatusCode, body)
		}
		fmt.Print(string(body))
		return nil
	case "stats":
		return stats(*store)
	case "ring":
		return ring(*store)
	case "add-node":
		name := ""
		if len(rest) == 1 {
			name = rest[0]
		} else if len(rest) > 1 {
			return fmt.Errorf("usage: add-node [name]")
		}
		return nodeOp(*store, "add", name)
	case "remove-node":
		if len(rest) != 1 {
			return fmt.Errorf("usage: remove-node <name>")
		}
		return nodeOp(*store, "remove", rest[0])
	case "drain-node":
		if len(rest) != 1 {
			return fmt.Errorf("usage: drain-node <name>")
		}
		return nodeOp(*store, "drain", rest[0])
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// deploy validates the manifest locally, stores it in the .storlets
// container, and reminds the operator how the engine picks it up.
func deploy(ctx context.Context, client *objectstore.HTTPClient, account, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	// Local validation before upload: a scratch engine parses it.
	var m storlet.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("invalid manifest: %w", err)
	}
	if m.Name == "" {
		return fmt.Errorf("manifest missing name")
	}
	err = client.CreateContainer(ctx, account, objectstore.StorletContainer, nil)
	if err != nil && err != objectstore.ErrContainerExists {
		return err
	}
	name := filepath.Base(path)
	info, err := client.PutObject(ctx, account, objectstore.StorletContainer, name, strings.NewReader(string(data)), nil)
	if err != nil {
		return err
	}
	fmt.Printf("deployed %s as %s/%s (%d bytes)\n", m.Name, objectstore.StorletContainer, name, info.Size)
	fmt.Println("run `scoop-admin sync <account>` to load it into the running engine")
	return nil
}

// ring pretty-prints the /admin/ring membership snapshot.
func ring(store string) error {
	resp, err := http.Get(strings.TrimRight(store, "/") + "/admin/ring")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, err := io.ReadAll(io.LimitReader(resp.Body, 256))
		if err != nil {
			body = []byte(fmt.Sprintf("<error body unreadable: %v>", err))
		}
		return fmt.Errorf("ring endpoint: http %d: %s", resp.StatusCode, body)
	}
	var pretty map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&pretty); err != nil {
		return err
	}
	out, err := json.MarshalIndent(pretty, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

// nodeOp drives a membership change through POST /admin/nodes.
func nodeOp(store, op, name string) error {
	u := strings.TrimRight(store, "/") + "/admin/nodes?op=" + op
	if name != "" {
		u += "&name=" + name
	}
	resp, err := http.Post(u, "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if err != nil {
		return fmt.Errorf("%s-node: read response: %w", op, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s-node: http %d: %s", op, resp.StatusCode, body)
	}
	fmt.Print(string(body))
	return nil
}

func stats(store string) error {
	resp, err := http.Get(strings.TrimRight(store, "/") + "/admin/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, err := io.ReadAll(io.LimitReader(resp.Body, 256))
		if err != nil {
			body = []byte(fmt.Sprintf("<error body unreadable: %v>", err))
		}
		return fmt.Errorf("stats endpoint: http %d: %s", resp.StatusCode, body)
	}
	var pretty map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&pretty); err != nil {
		return err
	}
	out, err := json.MarshalIndent(pretty, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}
