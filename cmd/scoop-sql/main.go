// Command scoop-sql executes SQL queries against CSV datasets in a Scoop
// object store, with the projection/selection pushdown on or off.
//
// Against a remote store started with scoopd:
//
//	scoop-sql -store http://localhost:8080 -account gp -container meters \
//	          -schema "$(scoop-sql -meter-schema)" \
//	          "SELECT vid, sum(index) AS total FROM t GROUP BY vid LIMIT 10"
//
// Or fully self-contained (builds an in-process cluster with a small
// generated dataset):
//
//	scoop-sql -demo "SELECT city, count(*) AS n FROM largeMeter GROUP BY city"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"scoop/internal/adaptive"
	"scoop/internal/core"
	"scoop/internal/datasource"
	"scoop/internal/meter"
	"scoop/internal/objectstore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scoop-sql:", err)
		os.Exit(1)
	}
}

func run() error {
	store := flag.String("store", "", "store URL (empty with -demo builds an in-process store)")
	account := flag.String("account", "scoop", "store account")
	container := flag.String("container", "meters", "container holding the table's CSV objects")
	prefix := flag.String("prefix", "", "object name prefix of the table")
	schema := flag.String("schema", meter.SchemaDecl, `table schema, "name type, ..."`)
	tableName := flag.String("table", "", "table name used in the query (default: FROM clause name)")
	mode := flag.String("mode", "pushdown", "execution mode: pushdown, baseline or auto")
	compress := flag.Bool("compress", false, "pipeline transfer compression after the filter")
	explain := flag.Bool("explain", false, "print the plan instead of executing")
	demo := flag.Bool("demo", false, "build an in-process store with a generated dataset")
	demoMeters := flag.Int("demo-meters", 100, "meters in the demo dataset")
	chunk := flag.Int64("chunk", 4<<20, "partition chunk size in bytes")
	workers := flag.Int("workers", 4, "compute workers")
	printSchema := flag.Bool("meter-schema", false, "print the meter schema declaration and exit")
	flag.Parse()

	if *printSchema {
		fmt.Println(meter.SchemaDecl)
		return nil
	}
	if flag.NArg() != 1 {
		return fmt.Errorf("expected exactly one SQL query argument")
	}
	sql := flag.Arg(0)

	var qmode core.Mode
	switch *mode {
	case "pushdown":
		qmode = core.ModePushdown
	case "baseline":
		qmode = core.ModeBaseline
	case "auto":
		qmode = core.ModeAuto
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	cfg := core.Config{ChunkSize: *chunk}
	cfg.Compute.Workers = *workers
	if *store != "" {
		cfg.Client = objectstore.NewHTTPClient(*store)
		cfg.Account = *account
	} else if !*demo {
		return fmt.Errorf("either -store or -demo is required")
	}
	s, err := core.New(cfg)
	if err != nil {
		return err
	}

	table := *tableName
	if table == "" {
		table = tableFromQuery(sql)
	}
	if *demo {
		gen := meter.DefaultConfig()
		gen.Meters = *demoMeters
		gen.Days = 7
		gen.Interval = time.Hour
		size, err := s.UploadMeterDataset(context.Background(), *container, gen, 4)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "scoop-sql: demo dataset: %d rows, %d bytes\n", gen.Rows(), size)
	}
	if err := s.RegisterTable(table, *container, *prefix, *schema,
		datasource.CSVOptions{CompressTransfer: *compress}); err != nil {
		return err
	}
	if qmode == core.ModeAuto {
		ctrl, err := adaptive.NewController(adaptive.DefaultConfig())
		if err != nil {
			return err
		}
		ctrl.SetTenantClass("cli", adaptive.Gold)
		s.EnableAdaptive(ctrl, "cli")
	}

	if *explain {
		out, err := s.Explain(sql)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	res, err := s.Query(sql, core.QueryOptions{Mode: qmode})
	if err != nil {
		return err
	}
	fmt.Println(strings.Join(res.Schema.Names(), ","))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.AsString()
		}
		fmt.Println(strings.Join(parts, ","))
	}
	m := res.Metrics
	fmt.Fprintf(os.Stderr, "scoop-sql: mode=%s rows=%d splits=%d ingested=%dB requests=%d wall=%v\n",
		m.Mode, m.RowsReturned, m.Splits, m.BytesIngested, m.Requests, m.WallTime)
	if m.Decision != "" {
		fmt.Fprintf(os.Stderr, "scoop-sql: adaptive decision: %s\n", m.Decision)
	}
	return nil
}

// tableFromQuery pulls the FROM table name out of the query for table
// registration when -table is not given.
func tableFromQuery(sql string) string {
	fields := strings.Fields(sql)
	for i, f := range fields {
		if strings.EqualFold(f, "FROM") && i+1 < len(fields) {
			return strings.Trim(fields[i+1], ",;")
		}
	}
	return "t"
}
