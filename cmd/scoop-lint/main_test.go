package main

import (
	"strings"
	"testing"

	"scoop/internal/lint"
)

// TestSelectAnalyzers pins the -only contract: valid names select exactly
// those analyzers in flag order, and an unknown name is a hard error — a
// typo'd CI gate must fail loudly, not run zero analyzers and pass.
func TestSelectAnalyzers(t *testing.T) {
	all := lint.Analyzers()

	got, err := selectAnalyzers("allocfree,filterdet", all)
	if err != nil {
		t.Fatalf("valid selection errored: %v", err)
	}
	if len(got) != 2 || got[0].Name != "allocfree" || got[1].Name != "filterdet" {
		names := make([]string, len(got))
		for i, a := range got {
			names[i] = a.Name
		}
		t.Errorf("selected %v, want [allocfree filterdet] in flag order", names)
	}

	// Whitespace around names is tolerated (shell-quoted lists).
	if got, err := selectAnalyzers(" allocfree , sandboxpure ", all); err != nil || len(got) != 2 {
		t.Errorf("whitespace-padded selection = (%d analyzers, %v), want 2, nil", len(got), err)
	}

	for _, bad := range []string{"nosuch", "allocfree,nosuch", "allocfre"} {
		got, err := selectAnalyzers(bad, all)
		if err == nil {
			t.Errorf("selectAnalyzers(%q) = %d analyzers, nil; want unknown-analyzer error", bad, len(got))
			continue
		}
		if !strings.Contains(err.Error(), "unknown analyzer") || !strings.Contains(err.Error(), "nosuch") && !strings.Contains(err.Error(), "allocfre") {
			t.Errorf("selectAnalyzers(%q) error = %q, want it to name the unknown analyzer", bad, err)
		}
	}

	// An empty segment (trailing comma) is an unknown name, not a no-op.
	if _, err := selectAnalyzers("allocfree,", all); err == nil {
		t.Error("trailing comma should error, not silently select fewer analyzers")
	}
}
