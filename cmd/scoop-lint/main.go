// Command scoop-lint runs Scoop's project-specific static-analysis suite
// (internal/lint) over the module and exits non-zero on findings. It is part
// of the verification gate (scripts/verify.sh) every PR must pass.
//
// Usage:
//
//	scoop-lint [-list] [-only analyzer[,analyzer]] [-json] [path ...]
//
// Each path is a directory tree to analyze; "./..." and bare "." both mean
// the whole module rooted at the current directory. Findings print as
//
//	file:line:col: [analyzer] message
//
// or, with -json, as a JSON array of {file,line,col,analyzer,message}
// objects for CI annotation. A clean run prints an analyzer/package summary.
// Findings can be suppressed with an inline justification:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"scoop/internal/lint"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scoop-lint:", err)
		os.Exit(2)
	}
}

func run() error {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array (machine-readable)")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return nil
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				return fmt.Errorf("unknown analyzer %q (try -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var diags []lint.Diagnostic
	packages := 0
	for _, root := range roots {
		// Accept the conventional "dir/..." spelling: the loader always
		// walks the whole subtree.
		root = strings.TrimSuffix(strings.TrimSuffix(root, "..."), string(filepath.Separator))
		if root == "" {
			root = "."
		}
		pkgs, err := lint.Load(root)
		if err != nil {
			return err
		}
		packages += len(pkgs)
		diags = append(diags, lint.Run(pkgs, analyzers)...)
	}

	if *jsonOut {
		if err := printJSON(diags); err != nil {
			return err
		}
	} else {
		for _, d := range diags {
			fmt.Println(relativize(d))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "scoop-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Printf("scoop-lint: ok — %d analyzers over %d packages, 0 findings\n", len(analyzers), packages)
	}
	return nil
}

// jsonDiag is the machine-readable diagnostic shape emitted by -json.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// printJSON writes all diagnostics as one JSON array on stdout (an empty
// array on a clean run, so consumers can always parse the output).
func printJSON(diags []lint.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		d = relativizeDiag(d)
		out = append(out, jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// relativize shortens absolute file paths to be relative to the working
// directory so findings are easy to read and click through.
func relativize(d lint.Diagnostic) string {
	return relativizeDiag(d).String()
}

func relativizeDiag(d lint.Diagnostic) lint.Diagnostic {
	wd, err := os.Getwd()
	if err != nil {
		return d
	}
	if rel, err := filepath.Rel(wd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d
}
