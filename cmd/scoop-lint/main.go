// Command scoop-lint runs Scoop's project-specific static-analysis suite
// (internal/lint) over the module and exits non-zero on findings. It is part
// of the verification gate (scripts/verify.sh) every PR must pass.
//
// Usage:
//
//	scoop-lint [-list] [-only analyzer[,analyzer]] [path ...]
//
// Each path is a directory tree to analyze; "./..." and bare "." both mean
// the whole module rooted at the current directory. Findings print as
//
//	file:line:col: [analyzer] message
//
// and can be suppressed with an inline justification:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"scoop/internal/lint"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scoop-lint:", err)
		os.Exit(2)
	}
}

func run() error {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return nil
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				return fmt.Errorf("unknown analyzer %q (try -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	total := 0
	for _, root := range roots {
		// Accept the conventional "dir/..." spelling: the loader always
		// walks the whole subtree.
		root = strings.TrimSuffix(strings.TrimSuffix(root, "..."), string(filepath.Separator))
		if root == "" {
			root = "."
		}
		pkgs, err := lint.Load(root)
		if err != nil {
			return err
		}
		for _, d := range lint.Run(pkgs, analyzers) {
			fmt.Println(relativize(d))
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "scoop-lint: %d finding(s)\n", total)
		os.Exit(1)
	}
	return nil
}

// relativize shortens absolute file paths to be relative to the working
// directory so findings are easy to read and click through.
func relativize(d lint.Diagnostic) string {
	wd, err := os.Getwd()
	if err != nil {
		return d.String()
	}
	if rel, err := filepath.Rel(wd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d.String()
}
