// Command scoopd runs a Scoop object store over HTTP: an in-process cluster
// of proxies and object nodes (with the CSV pushdown filter and the ETL
// filters deployed) behind a Swift-style REST API.
//
// Usage:
//
//	scoopd -addr :8080 -proxies 2 -nodes 4 -replicas 3
//
// Then, for example:
//
//	curl -X PUT http://localhost:8080/v1/gp/meters
//	curl -X PUT --data-binary @data.csv http://localhost:8080/v1/gp/meters/jan.csv
//	curl -H "X-Scoop-Pushdown: $(scoop-sql -encode-task ...)" \
//	     http://localhost:8080/v1/gp/meters/jan.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"scoop/internal/objectstore"
	"scoop/internal/storlet"
	"scoop/internal/storlet/aggfilter"
	"scoop/internal/storlet/compressfilter"
	"scoop/internal/storlet/csvfilter"
	"scoop/internal/storlet/etl"
	"scoop/internal/storlet/jsonfilter"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	proxies := flag.Int("proxies", 2, "proxy server count")
	nodes := flag.Int("nodes", 4, "object server count")
	disks := flag.Int("disks", 2, "disks per object server")
	replicas := flag.Int("replicas", 3, "object replica count")
	timeout := flag.Duration("filter-timeout", 5*time.Minute, "per-invocation filter timeout")
	dataDir := flag.String("data-dir", "", "persist objects under this directory (default: in-memory)")
	cacheBytes := flag.Int64("result-cache-bytes", 256<<20, "pushdown result cache capacity in bytes (0 disables)")
	repairIvl := flag.Duration("repair-interval", 2*time.Second, "background repair pass interval (0 disables)")
	migrateIvl := flag.Duration("migrate-interval", 2*time.Second, "background migration pass interval (0 disables)")
	healthIvl := flag.Duration("health-interval", 5*time.Second, "node health probe interval (0 disables)")
	healthFails := flag.Int("health-fail-threshold", 3, "consecutive probe failures before auto-eject")
	seed := flag.Int64("seed", 1, "seed for background-loop jitter (determinism knob)")
	flag.Parse()

	cluster, err := objectstore.NewCluster(objectstore.ClusterConfig{
		Proxies:             *proxies,
		ObjectNodes:         *nodes,
		DisksPerNode:        *disks,
		Replicas:            *replicas,
		Limits:              storlet.Limits{Timeout: *timeout},
		DataDir:             *dataDir,
		ResultCacheBytes:    *cacheBytes,
		RepairInterval:      *repairIvl,
		MigrateInterval:     *migrateIvl,
		HealthInterval:      *healthIvl,
		HealthFailThreshold: *healthFails,
		Seed:                *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "scoopd:", err)
		os.Exit(1)
	}
	for _, f := range []storlet.Filter{csvfilter.New(), etl.NewCleanse(), etl.NewSplit(), compressfilter.New(), aggfilter.New(), jsonfilter.New()} {
		if err := cluster.Engine().Register(f); err != nil {
			fmt.Fprintln(os.Stderr, "scoopd:", err)
			os.Exit(1)
		}
	}
	log.Printf("scoopd: %d proxies, %d object nodes (%d disks each), %d replicas",
		*proxies, *nodes, *disks, *replicas)
	log.Printf("scoopd: filters deployed: %v", cluster.Engine().Names())
	handler := objectstore.NewHandler(cluster.Client())
	handler.SetRingInfo(func() (uint64, bool) {
		return cluster.Ring().Epoch(), cluster.Ring().Migrating()
	})
	mux := http.NewServeMux()
	mux.Handle("/", handler)
	mux.Handle("/admin/", objectstore.NewAdminHandler(cluster))
	srv := &http.Server{Addr: *addr, Handler: mux}
	log.Printf("scoopd: listening on %s (admin at /admin/stats, /admin/deploy, /admin/ring, /admin/nodes)", *addr)

	// Graceful shutdown: stop accepting, then stop the cluster's background
	// repair/migration/health loops before exiting.
	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-done
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	cluster.Close()
	log.Printf("scoopd: shut down")
}
