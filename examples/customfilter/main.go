// Custom filter: the "rich active storage layer" of the paper — deploy a
// brand-new pushdown filter into a live object store and invoke it through
// request metadata, without any change to the store itself.
//
// The filter here is a log-grep that also counts matches: a tiny example of
// the "general-purpose code close to the data" the paper argues for beyond
// SQL (EXIF extraction, statistics, compression, ...).
package main

import (
	"context"
	"bufio"
	"bytes"
	"fmt"
	"io"
	"log"
	"strings"

	"scoop/internal/objectstore"
	"scoop/internal/pushdown"
	"scoop/internal/storlet"
)

// grepFilter emits only lines containing the "pattern" option, prefixed
// with their line number, and a trailing summary line.
type grepFilter struct{}

func (grepFilter) Name() string { return "grep" }

func (grepFilter) Invoke(ctx *storlet.Context, in io.Reader, out io.Writer) error {
	pattern := ctx.Task.Options["pattern"]
	if pattern == "" {
		return fmt.Errorf("grep: missing pattern option")
	}
	sc := bufio.NewScanner(in)
	bw := bufio.NewWriter(out)
	line, matches := 0, 0
	for sc.Scan() {
		line++
		if bytes.Contains(sc.Bytes(), []byte(pattern)) {
			matches++
			fmt.Fprintf(bw, "%d:%s\n", line, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	fmt.Fprintf(bw, "-- %d/%d lines matched %q\n", matches, line, pattern)
	return bw.Flush()
}

func main() {
	ctx := context.Background()
	// A running store: proxies + object nodes + storlet engine.
	cluster, err := objectstore.NewCluster(objectstore.DefaultClusterConfig())
	if err != nil {
		log.Fatal(err)
	}
	client := cluster.Client()
	if err := client.CreateContainer(ctx, "ops", "logs", nil); err != nil {
		log.Fatal(err)
	}

	// Some application logs land in the store "as is".
	logData := strings.Join([]string{
		"2026-07-05T10:00:01 INFO  boot sequence complete",
		"2026-07-05T10:00:09 ERROR meter V000017 checksum mismatch",
		"2026-07-05T10:01:30 INFO  ingest batch 42 ok",
		"2026-07-05T10:02:11 ERROR gateway eu-west timeout",
		"2026-07-05T10:02:48 WARN  retrying gateway eu-west",
		"2026-07-05T10:03:05 ERROR meter V000017 checksum mismatch",
	}, "\n") + "\n"
	if _, err := client.PutObject(ctx, "ops", "logs", "app.log", strings.NewReader(logData), nil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored app.log (%d bytes)\n", len(logData))

	// Deploy the filter ON THE FLY — the store keeps serving meanwhile.
	if err := cluster.Engine().Register(grepFilter{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed filters: %v\n\n", cluster.Engine().Names())

	// Invoke it via request metadata on a normal GET.
	task := &pushdown.Task{Filter: "grep", Options: map[string]string{"pattern": "ERROR"}}
	rc, _, err := client.GetObject(ctx, "ops", "logs", "app.log", objectstore.GetOptions{
		Pushdown: []*pushdown.Task{task},
	})
	if err != nil {
		log.Fatal(err)
	}
	filtered, err := io.ReadAll(rc)
	rc.Close() // flushes the byte accounting
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("GET app.log with grep(ERROR) pushed down:")
	fmt.Print(string(filtered))

	// The store did the work: compare moved bytes.
	ns := cluster.NodeStatsTotal()
	fmt.Printf("\nobject nodes read %d bytes, returned %d bytes (%.0f%% discarded at the store)\n",
		ns.BytesRead, ns.BytesSent, 100*(1-float64(ns.BytesSent)/float64(ns.BytesRead)))
}
