// Quickstart: build an in-process Scoop system, upload a small CSV dataset,
// and run the same SQL query with and without pushdown — watching how many
// bytes each mode moves from the object store to the compute side.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"scoop/internal/core"
	"scoop/internal/datasource"
	"scoop/internal/meter"
)

func main() {
	// 1. Assemble the system: an in-process object store cluster (proxies,
	// object nodes, consistent-hash ring) with the CSV pushdown filter
	// deployed, a connector, a planner, and a small worker pool.
	s, err := core.New(core.Config{ChunkSize: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Generate and upload a month of synthetic smart-meter readings,
	// split across 4 objects — the GridPocket scenario in miniature.
	gen := meter.DefaultConfig()
	gen.Meters = 200
	gen.Days = 7
	gen.Interval = 30 * time.Minute
	size, err := s.UploadMeterDataset(context.Background(), "meters", gen, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded %d rows (%d bytes) across 4 objects\n\n", gen.Rows(), size)

	// 3. Register the dataset as a SQL table.
	if err := s.RegisterTable("largeMeter", "meters", "", meter.SchemaDecl, datasource.CSVOptions{}); err != nil {
		log.Fatal(err)
	}

	// 4. Run a selective query both ways.
	query := `SELECT vid, sum(index) AS total
		FROM largeMeter
		WHERE city LIKE 'Rotterdam' AND date LIKE '2015-01-01%'
		GROUP BY vid ORDER BY total DESC LIMIT 5`

	fmt.Println("plan:")
	explained, err := s.Explain(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(explained)

	for _, mode := range []core.Mode{core.ModeBaseline, core.ModePushdown} {
		res, err := s.Query(query, core.QueryOptions{Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics
		fmt.Printf("%-9s ingested %8d bytes (%.1f%% of dataset) in %v over %d requests\n",
			mode.String()+":", m.BytesIngested,
			100*float64(m.BytesIngested)/float64(size), m.WallTime, m.Requests)
		if mode == core.ModePushdown {
			fmt.Println("\nresult:")
			fmt.Println(strings.Join(res.Schema.Names(), ","))
			for _, row := range res.Rows {
				cells := make([]string, len(row))
				for i, v := range row {
					cells[i] = v.AsString()
				}
				fmt.Println(strings.Join(cells, ","))
			}
		}
	}
}
