// Storlet-aware RDD + adaptive pushdown: the paper's §VII extensions.
//
// Part 1 uses the RDD API to invoke computations at the object store
// explicitly from job code (the spark-storlets approach): a CSV filter runs
// at the store, then compute-side map/filter transformations refine the
// result.
//
// Part 2 shows the adaptive controller deciding per tenant and per query
// whether pushdown is worth it, using sampled statistics and the testbed
// cost model.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"scoop/internal/adaptive"
	"scoop/internal/compute"
	"scoop/internal/core"
	"scoop/internal/datasource"
	"scoop/internal/meter"
	"scoop/internal/pushdown"
	"scoop/internal/rdd"
)

func main() {
	s, err := core.New(core.Config{ChunkSize: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	gen := meter.DefaultConfig()
	gen.Meters = 120
	gen.Days = 5
	gen.Interval = time.Hour
	if _, err := s.UploadMeterDataset(context.Background(), "meters", gen, 4); err != nil {
		log.Fatal(err)
	}
	conn := s.Connector()

	// --- Part 1: explicit storlet invocation through the RDD API ---
	fmt.Println("== storlet-aware RDD ==")
	task := &pushdown.Task{
		Filter:  "csv",
		Schema:  meter.SchemaDecl,
		Columns: []string{"vid", "index", "state"},
		Predicates: []pushdown.Predicate{
			{Column: "state", Op: pushdown.OpEq, Value: "FRA"},
		},
	}
	driver, err := compute.NewDriver(compute.Config{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	highConsumers, err := rdd.FromObjects(conn, "meters", "").
		WithStorlet(task).              // executed AT the store
		Repartition(8).                 // object-aware partitioning, not HDFS chunks
		Filter(func(line string) bool { // compute side from here on
			parts := strings.Split(line, ",")
			return len(parts) == 3 && parts[1] > "100000"
		}).
		Map(func(line string) string {
			return strings.Split(line, ",")[0]
		}).
		Collect(context.Background(), driver)
	if err != nil {
		log.Fatal(err)
	}
	distinct := map[string]bool{}
	for _, vid := range highConsumers {
		distinct[vid] = true
	}
	fmt.Printf("French meters with index > 100000: %d readings from %d meters\n",
		len(highConsumers), len(distinct))
	fmt.Printf("bytes pulled from the store: %d (the storlet projected 3 of 10 columns\n",
		conn.Stats().BytesIngested)
	fmt.Println("and kept only state=FRA rows before anything crossed the network)")

	// --- Part 2: adaptive pushdown decisions ---
	fmt.Println("\n== adaptive pushdown (Crystal-style controller) ==")
	rel, err := datasource.NewCSV(conn, "meters", "", meter.SchemaDecl, datasource.CSVOptions{})
	if err != nil {
		log.Fatal(err)
	}
	stats, err := adaptive.CollectStats(context.Background(), rel, 2000)
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := adaptive.NewController(adaptive.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	ctrl.SetTenantClass("gridpocket", adaptive.Gold)
	ctrl.SetTenantClass("trial-user", adaptive.Bronze)

	const datasetAtScale = 500e9 // pretend the production dataset is 500 GB
	cases := []struct {
		name  string
		cols  []string
		preds []pushdown.Predicate
	}{
		{"selective (state=FRA, 2 cols)", []string{"vid", "index"},
			[]pushdown.Predicate{{Column: "state", Op: pushdown.OpEq, Value: "FRA"}}},
		{"full scan (all columns)", nil, nil},
	}
	for _, tenant := range []string{"gridpocket", "trial-user"} {
		for _, c := range cases {
			est, err := stats.EstimateFor(datasetAtScale, c.cols, c.preds)
			if err != nil {
				log.Fatal(err)
			}
			d := ctrl.Decide(tenant, est)
			fmt.Printf("%-11s %-32s est.sel=%5.1f%%  pushdown=%-5v  (%s)\n",
				tenant, c.name, 100*est.Selectivity, d.Pushdown, d.Reason)
		}
	}

	// Under storage pressure, only gold tenants keep the privilege.
	fmt.Println("\nstorage cluster at 70% CPU:")
	ctrl.SetLoadProbe(func() float64 { return 0.70 })
	for _, tenant := range []string{"gridpocket", "trial-user"} {
		est, err := stats.EstimateFor(datasetAtScale, cases[0].cols, cases[0].preds)
		if err != nil {
			log.Fatal(err)
		}
		d := ctrl.Decide(tenant, est)
		fmt.Printf("%-11s %-32s pushdown=%-5v  (%s)\n", tenant, cases[0].name, d.Pushdown, d.Reason)
	}
}
