// ETL on the upload path: the paper's PUT-path use of the active storage
// layer. A container policy attaches a cleansing filter and a column-split
// filter to every upload, so raw sensor feeds are stored query-ready —
// "without requiring painful rewrites of huge data sets".
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"strings"

	"scoop/internal/objectstore"
	"scoop/internal/pushdown"
	"scoop/internal/storlet/etl"
)

func main() {
	ctx := context.Background()
	cluster, err := objectstore.NewCluster(objectstore.DefaultClusterConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Engine().Register(etl.NewCleanse()); err != nil {
		log.Fatal(err)
	}
	if err := cluster.Engine().Register(etl.NewSplit()); err != nil {
		log.Fatal(err)
	}
	client := cluster.Client()

	// The container's policy: cleanse 3-column records (vid, datetime,
	// reading; vid and datetime mandatory), then split the datetime into a
	// date column and a time column.
	policy := &objectstore.ContainerPolicy{PutPipeline: []*pushdown.Task{
		{Filter: etl.CleanseName, Options: map[string]string{"columns": "3", "required": "0,1"}},
		{Filter: etl.SplitName, Options: map[string]string{"column": "1"}},
	}}
	if err := client.CreateContainer(ctx, "gp", "raw-feed", policy); err != nil {
		log.Fatal(err)
	}

	// A messy feed straight from the field.
	raw := strings.Join([]string{
		"  V000001 , 2015-01-01 00:10:00 ,120.5", // padded but salvageable
		"V000002,2015-01-01 00:10:00,77.0",       // clean
		"corrupted-line",                         // dropped
		",2015-01-01 00:20:00,3.2",               // missing vid: dropped
		"V000001,2015-01-01 00:20:00,121.1",      // clean
	}, "\n") + "\n"
	fmt.Println("uploading raw feed:")
	fmt.Print(raw)

	info, err := client.PutObject(ctx, "gp", "raw-feed", "2015-01-01.csv", strings.NewReader(raw), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstored %d bytes (raw was %d)\n\n", info.Size, len(raw))

	rc, _, err := client.GetObject(ctx, "gp", "raw-feed", "2015-01-01.csv", objectstore.GetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer rc.Close()
	clean, err := io.ReadAll(rc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("what analytics jobs will read (cleansed, date split into two columns):")
	fmt.Print(string(clean))
}
