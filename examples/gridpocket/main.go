// GridPocket analytics: the paper's motivating use case. Runs all seven
// Table I queries of the smart-energy-grid company on a generated dataset
// and reports, per query, the measured data selectivity and the ingestion
// saved by pushdown — the paper's core result in miniature.
package main

import (
	"fmt"
	"log"
	"os"

	"scoop/internal/experiment"
)

func main() {
	fmt.Println("GridPocket smart-meter analytics on Scoop")
	fmt.Println("=========================================")
	env, err := experiment.NewEnv(experiment.SmallScale())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d meters, %d rows, %d bytes\n\n", env.Meters, env.Rows, env.DatasetBytes)

	fmt.Printf("%-18s %-12s %-14s %-14s %-8s\n", "query", "result rows", "data sel", "bytes saved", "S_Q")
	var savedTotal int64
	for _, q := range experiment.GridPocketQueries {
		m, err := env.RunQuery(q.Name, q.SQL)
		if err != nil {
			log.Fatal(err)
		}
		saved := int64(m.DataSelectivity * float64(env.DatasetBytes))
		savedTotal += saved
		fmt.Printf("%-18s %-12d %-14.2f%% %-14d %-8.2f\n",
			q.Name, m.Rows, 100*m.DataSelectivity, saved, m.Speedup)
	}
	fmt.Printf("\ntotal ingestion avoided across the workload: %d bytes\n", savedTotal)
	fmt.Println("\n(The paper measures 4.1x-18.7x wall-clock speedups for these queries on")
	fmt.Println("a 63-machine testbed; run `scoop-bench -fig 7` for the testbed-model view.)")
	os.Exit(0)
}
