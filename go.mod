module scoop

go 1.22
