#!/bin/sh
# verify.sh — the repository's verification gate.
#
# Runs, in order:
#   1. go build ./...               every package compiles
#   2. go vet ./...                 stdlib vet analyzers
#   3. go run ./cmd/scoop-lint ./...  project analyzers — per-package
#                                     (closebody, errwrap, lockheld, chanleak,
#                                     slotleak, ctxpropagate) and whole-module
#                                     call-graph (lockorder, goroleak,
#                                     sandboxpure, filterdet, allocfree); warm
#                                     runs replay from the mtime-keyed cache
#   4. scoop-lint -only allocfree   the zero-alloc hot-path proof, re-run
#                                     standalone (warm: replays from cache) so
#                                     a broken //scoop:hotpath root fails with
#                                     its own named step in the gate output
#   5. go test -race -short ./...   fast-tier suite under the race detector
#   6. go test -run TestAllocBudget   zero-allocation budgets for the record
#                                     hot path — a separate non-race step
#                                     because the //go:build !race budget
#                                     tests need uninstrumented allocation
#                                     counts (the race detector allocates)
#
# The chaos suite (TestChaos* in internal/integration) skips itself under
# -short; CI runs it as its own race-enabled job, and locally it runs with
#   go test -race -run 'TestChaos' ./internal/integration/
#
# Any failure stops the gate. Run it from the repository root (or anywhere
# inside the module; it cd's to the script's parent directory).
set -e
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> scoop-lint ./..."
go run ./cmd/scoop-lint ./...

echo "==> scoop-lint -only allocfree ./... (zero-alloc hot-path proof)"
go run ./cmd/scoop-lint -only allocfree ./...

echo "==> go test -race -short ./..."
go test -race -short ./...

echo "==> go test -run TestAllocBudget (alloc budgets, no race)"
go test -run TestAllocBudget ./internal/csvio/ ./internal/storlet/csvfilter/

echo "verify: all gates passed"
