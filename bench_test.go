// Package scoop's root benchmarks regenerate the paper's evaluation: one
// benchmark per table/figure (printing its rows once per run and reporting
// headline numbers as custom metrics), plus the ablation micro-benchmarks
// DESIGN.md calls out (row vs column filter cost, pushdown engine overhead,
// staging).
//
// Run everything with:
//
//	go test -bench=. -benchmem
package scoop

import (
	"context"
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"scoop/internal/cluster"
	"scoop/internal/core"
	"scoop/internal/datasource"
	"scoop/internal/experiment"
	"scoop/internal/objectstore"
	"scoop/internal/pushdown"
	"scoop/internal/sql/parser"
	"scoop/internal/storlet"
	"scoop/internal/storlet/aggfilter"
	"scoop/internal/storlet/csvfilter"
)

var (
	envOnce sync.Once
	env     *experiment.Env
	envErr  error
)

// benchEnv builds the shared laptop-scale environment once.
func benchEnv(b *testing.B) *experiment.Env {
	b.Helper()
	envOnce.Do(func() {
		env, envErr = experiment.NewEnv(experiment.SmallScale())
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return env
}

// printOnce writes an experiment's full table output a single time per
// benchmark run so `go test -bench` output doubles as figure regeneration.
func printOnce(b *testing.B, name string, fn func(w io.Writer) error) {
	b.Helper()
	var buf bytes.Buffer
	if err := fn(&buf); err != nil {
		b.Fatal(err)
	}
	b.Logf("%s:\n%s", name, buf.String())
}

// BenchmarkFig1IngestScaling regenerates Fig. 1 (baseline time linear in
// dataset size) and times the model evaluation.
func BenchmarkFig1IngestScaling(b *testing.B) {
	printOnce(b, "Fig. 1", experiment.Fig1)
	tb := cluster.OSIC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, gbs := range []float64{50, 500, 3000} {
			_ = tb.BaselineTime(cluster.Workload{DatasetBytes: gbs * experiment.GB, Selectivity: 0.9, Type: cluster.Mixed})
		}
	}
}

// BenchmarkTable1GridPocketSelectivities regenerates Table I on the real
// path and times one full query (ShowPiemonth) per iteration.
func BenchmarkTable1GridPocketSelectivities(b *testing.B) {
	e := benchEnv(b)
	printOnce(b, "Table I", func(w io.Writer) error { return experiment.Table1(w, e) })
	q := experiment.GridPocketQueries[4] // ShowPiemonth
	b.SetBytes(e.DatasetBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Scoop.Query(q.SQL, core.QueryOptions{Mode: core.ModePushdown}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5SelectivitySweep regenerates Fig. 5 and times a mid-
// selectivity pushdown query on the real path.
func BenchmarkFig5SelectivitySweep(b *testing.B) {
	e := benchEnv(b)
	printOnce(b, "Fig. 5", func(w io.Writer) error { return experiment.Fig5(w, e) })
	bound := e.Gen.RowSelectivityPredicate(0.5)
	sql := fmt.Sprintf("SELECT vid, index FROM largeMeter WHERE vid < '%s'", bound)
	b.SetBytes(e.DatasetBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Scoop.Query(sql, core.QueryOptions{Mode: core.ModePushdown})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Metrics.BytesIngested), "bytes-ingested")
		}
	}
}

// BenchmarkFig6HighSelectivity regenerates Fig. 6 and reports the model's
// 3TB/99.99% row-selectivity speedup as a metric (paper: up to ~31x).
func BenchmarkFig6HighSelectivity(b *testing.B) {
	printOnce(b, "Fig. 6", experiment.Fig6)
	tb := cluster.OSIC()
	w := cluster.Workload{DatasetBytes: 3 * experiment.TB, Selectivity: 0.9999, Type: cluster.Row}
	b.ReportMetric(tb.Speedup(w), "S_Q-3TB-99.99%")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tb.Speedup(w)
	}
}

// BenchmarkFig7GridPocketQueries regenerates Fig. 7 and times the full
// seven-query workload in pushdown mode.
func BenchmarkFig7GridPocketQueries(b *testing.B) {
	e := benchEnv(b)
	printOnce(b, "Fig. 7", func(w io.Writer) error { return experiment.Fig7(w, e) })
	b.SetBytes(int64(len(experiment.GridPocketQueries)) * e.DatasetBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range experiment.GridPocketQueries {
			if _, err := e.Scoop.Query(q.SQL, core.QueryOptions{Mode: core.ModePushdown}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig8ScoopVsParquet regenerates Fig. 8 (model + real transfer
// comparison) and times the model sweep.
func BenchmarkFig8ScoopVsParquet(b *testing.B) {
	e := benchEnv(b)
	printOnce(b, "Fig. 8", func(w io.Writer) error { return experiment.Fig8(w, e) })
	tb := cluster.OSIC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for sel := 0.0; sel < 1; sel += 0.1 {
			w := cluster.Workload{DatasetBytes: 50 * experiment.GB, Selectivity: sel, Type: cluster.Column}
			_ = tb.ParquetSpeedup(w)
			_ = tb.Speedup(w)
		}
	}
}

// BenchmarkFig9ResourceUsage regenerates Fig. 9 and reports the modeled
// compute CPU-seconds reduction.
func BenchmarkFig9ResourceUsage(b *testing.B) {
	e := benchEnv(b)
	printOnce(b, "Fig. 9", func(w io.Writer) error { return experiment.Fig9(w, e) })
	tb := cluster.OSIC()
	w := cluster.Workload{DatasetBytes: 3 * experiment.TB, Selectivity: 0.99, Type: cluster.Mixed}
	base := tb.UsageFor(w, cluster.Baseline)
	push := tb.UsageFor(w, cluster.Pushdown)
	b.ReportMetric(100*(1-push.ComputeCPUSeconds/base.ComputeCPUSeconds), "cpu-sec-saved-%")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tb.UsageFor(w, cluster.Pushdown)
	}
}

// BenchmarkFig10StorageCPU regenerates Fig. 10 and reports the modeled
// storage-node CPU under pushdown (paper: ≈23.5%).
func BenchmarkFig10StorageCPU(b *testing.B) {
	e := benchEnv(b)
	printOnce(b, "Fig. 10", func(w io.Writer) error { return experiment.Fig10(w, e) })
	tb := cluster.OSIC()
	w := cluster.Workload{DatasetBytes: 3 * experiment.TB, Selectivity: 0.99, Type: cluster.Mixed}
	b.ReportMetric(tb.UsageFor(w, cluster.Pushdown).StorageCPUPct, "storage-cpu-%")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tb.UsageFor(w, cluster.Pushdown)
	}
}

// --- ablation micro-benchmarks (DESIGN.md §4) ---

// benchCSVData is a ~1 MB CSV block for filter throughput benches.
var benchCSVData = func() []byte {
	var buf bytes.Buffer
	for i := 0; buf.Len() < 1<<20; i++ {
		fmt.Fprintf(&buf, "V%06d,2015-01-%02d 00:10:00,%d.25,%d.50,%d.75,elec,Rotterdam,NED,51.9225,4.4792\n",
			i%1000, 1+i%28, i, i/2, i/3)
	}
	return buf.Bytes()
}()

const benchSchema = "vid string, date string, index double, sumHC double, sumHP double, type string, city string, state string, lat double, long double"

func runCSVFilter(b *testing.B, task *pushdown.Task) {
	b.Helper()
	f := csvfilter.New()
	ctx := &storlet.Context{
		Task:     task,
		RangeEnd: int64(len(benchCSVData)), ObjectSize: int64(len(benchCSVData)),
	}
	b.SetBytes(int64(len(benchCSVData)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Invoke(ctx, bytes.NewReader(benchCSVData), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCSVFilterRowSelectivity measures storlet throughput when a
// selection discards ~99.9% of rows — the cheap case the paper observes.
func BenchmarkCSVFilterRowSelectivity(b *testing.B) {
	runCSVFilter(b, &pushdown.Task{
		Filter: "csv", Schema: benchSchema,
		Predicates: []pushdown.Predicate{{Column: "vid", Op: pushdown.OpEq, Value: "V000007"}},
	})
}

// BenchmarkCSVFilterColumnSelectivity measures throughput when all rows are
// kept but only 2 of 10 columns are emitted — output re-assembly cost.
func BenchmarkCSVFilterColumnSelectivity(b *testing.B) {
	runCSVFilter(b, &pushdown.Task{
		Filter: "csv", Schema: benchSchema,
		Columns: []string{"vid", "index"},
	})
}

// BenchmarkCSVFilterMixed measures the combined case.
func BenchmarkCSVFilterMixed(b *testing.B) {
	runCSVFilter(b, &pushdown.Task{
		Filter: "csv", Schema: benchSchema,
		Columns:    []string{"vid", "index"},
		Predicates: []pushdown.Predicate{{Column: "city", Op: pushdown.OpLike, Value: "Rot%"}},
	})
}

// BenchmarkCSVFilterPassthrough measures the zero-selectivity penalty: the
// filter runs but discards nothing (paper: worst-case -3.4%).
func BenchmarkCSVFilterPassthrough(b *testing.B) {
	runCSVFilter(b, &pushdown.Task{Filter: "csv", Schema: benchSchema})
}

// BenchmarkQueryPushdown and BenchmarkQueryBaseline time the same end-to-end
// query in both modes on the real system.
func BenchmarkQueryPushdown(b *testing.B) {
	benchQuery(b, core.ModePushdown)
}

// BenchmarkQueryBaseline is the ingest-then-compute twin of the above.
func BenchmarkQueryBaseline(b *testing.B) {
	benchQuery(b, core.ModeBaseline)
}

func benchQuery(b *testing.B, mode core.Mode) {
	e := benchEnv(b)
	q := experiment.GridPocketQueries[5].SQL // ShowGraphHCHP
	b.SetBytes(e.DatasetBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Scoop.Query(q, core.QueryOptions{Mode: mode}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStagingObjectVsProxy is the staging ablation: the same filtered
// GET executed at the object node versus at the proxy tier (paper §V added
// object-node staging specifically to exploit the larger node pool and
// avoid moving full objects to proxies).
func BenchmarkStagingObjectVsProxy(b *testing.B) {
	e := benchEnv(b)
	client := e.Scoop.Client()
	account := e.Scoop.Account()
	for _, stage := range []string{pushdown.StageObject, pushdown.StageProxy} {
		b.Run(stage, func(b *testing.B) {
			task := &pushdown.Task{
				Filter: "csv", Schema: benchSchema,
				Columns: []string{"vid"},
				Stage:   stage,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rc, _, err := client.GetObject(context.Background(), account, "meters", "part-0000.csv",
					objectstore.GetOptions{Pushdown: []*pushdown.Task{task}})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := io.Copy(io.Discard, rc); err != nil {
					b.Fatal(err)
				}
				rc.Close()
			}
		})
	}
}

// BenchmarkAggregationPushdown is the §IV "aggregation at the store"
// ablation: the same GROUP BY computed via filter pushdown (every matching
// row travels) versus aggregation pushdown (one partial record per group
// per split travels). Reported metric: bytes moved per mode.
func BenchmarkAggregationPushdown(b *testing.B) {
	e := benchEnv(b)
	q := "SELECT vid, sum(index) AS s, count(*) AS n FROM largeMeter GROUP BY vid ORDER BY vid"
	specs := []aggfilter.Spec{{Func: aggfilter.Sum, Column: "index"}, {Func: aggfilter.Count, Column: "*"}}
	b.Run("filter-pushdown", func(b *testing.B) {
		b.SetBytes(e.DatasetBytes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := e.Scoop.Query(q, core.QueryOptions{Mode: core.ModePushdown})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(res.Metrics.BytesIngested), "bytes-moved")
			}
		}
	})
	b.Run("aggregation-pushdown", func(b *testing.B) {
		b.SetBytes(e.DatasetBytes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := e.Scoop.AggregateQuery("largeMeter", []string{"vid"}, specs, nil, core.QueryOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(res.Metrics.BytesIngested), "bytes-moved")
			}
		}
	})
}

// BenchmarkCompressedTransfer is the §VII filtering+compression ablation:
// the same pruned scan with and without DEFLATE on the wire.
func BenchmarkCompressedTransfer(b *testing.B) {
	b.Run("plain", func(b *testing.B) { benchTransfer(b, false) })
	b.Run("compressed", func(b *testing.B) { benchTransfer(b, true) })
}

func benchTransfer(b *testing.B, compress bool) {
	e := benchEnv(b)
	rel, err := datasource.NewCSV(e.Scoop.Connector(), "meters", "", benchSchema,
		datasource.CSVOptions{Pushdown: true, CompressTransfer: compress})
	if err != nil {
		b.Fatal(err)
	}
	splits, err := rel.Splits(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(e.DatasetBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Scoop.Connector().ResetStats()
		for _, s := range splits {
			it, err := rel.ScanPruned(context.Background(), s, []string{"vid", "index"})
			if err != nil {
				b.Fatal(err)
			}
			for {
				if _, err := it.Next(); err != nil {
					break
				}
			}
			it.Close()
		}
		if i == 0 {
			b.ReportMetric(float64(e.Scoop.Connector().Stats().BytesIngested), "bytes-moved")
		}
	}
}

// BenchmarkSQLParse times parsing of the heaviest Table I query.
func BenchmarkSQLParse(b *testing.B) {
	q := experiment.GridPocketQueries[5].SQL
	b.SetBytes(int64(len(q)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := parser.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLikeMatch times the storage-side LIKE matcher on a dense input.
func BenchmarkLikeMatch(b *testing.B) {
	p := pushdown.Predicate{Column: "date", Op: pushdown.OpLike, Value: "2015-01-%"}
	s := strings.Repeat("2015-01-17 10:20:00", 1)
	b.SetBytes(int64(len(s)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.Matches(s, false) {
			b.Fatal("no match")
		}
	}
}
