package resultcache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"scoop/internal/metrics"
	"scoop/internal/pushdown"
)

// feed is a test-controlled stream: the test pushes chunks (or an error)
// through a channel, and reads block until data, error, or context death.
type feed struct {
	ctx     context.Context
	ch      chan feedMsg
	pending []byte
}

type feedMsg struct {
	data []byte
	err  error // io.EOF ends the stream cleanly
}

func newFeed(ctx context.Context) *feed {
	return &feed{ctx: ctx, ch: make(chan feedMsg, 64)}
}

func (f *feed) Read(p []byte) (int, error) {
	if len(f.pending) > 0 {
		n := copy(p, f.pending)
		f.pending = f.pending[n:]
		return n, nil
	}
	select {
	case m := <-f.ch:
		if m.err != nil {
			return 0, m.err
		}
		n := copy(p, m.data)
		f.pending = m.data[n:]
		return n, nil
	case <-f.ctx.Done():
		return 0, f.ctx.Err()
	}
}

func (f *feed) Close() error { return nil }

func (f *feed) send(s string)  { f.ch <- feedMsg{data: []byte(s)} }
func (f *feed) finish()        { f.ch <- feedMsg{err: io.EOF} }
func (f *feed) fail(err error) { f.ch <- feedMsg{err: err} }

func staticFill(etag, body string) FillFunc {
	return func(context.Context) (io.ReadCloser, FillInfo, error) {
		return io.NopCloser(strings.NewReader(body)), FillInfo{ETag: etag}, nil
	}
}

func key(etag string) Key { return Key{ETag: etag, Chain: "chain"} }

func mustRead(t *testing.T, rc io.ReadCloser) string {
	t.Helper()
	b, err := io.ReadAll(rc)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	rc.Close()
	return string(b)
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHitAfterMiss(t *testing.T) {
	reg := metrics.NewRegistry()
	c := New(Config{Capacity: 1 << 20, Metrics: reg})
	rc, status, err := c.GetOrStart(context.Background(), key("e1"), "/a/c/o", staticFill("e1", "rows"))
	if err != nil || status != StatusMiss {
		t.Fatalf("first get: status %v err %v", status, err)
	}
	if got := mustRead(t, rc); got != "rows" {
		t.Fatalf("leader body = %q", got)
	}
	waitFor(t, "entry committed", func() bool { return c.Snapshot().Entries == 1 })

	rc, status, err = c.GetOrStart(context.Background(), key("e1"), "/a/c/o", staticFill("e1", "WRONG"))
	if err != nil || status != StatusHit {
		t.Fatalf("second get: status %v err %v", status, err)
	}
	if got := mustRead(t, rc); got != "rows" {
		t.Fatalf("hit body = %q", got)
	}
	snap := reg.Snapshot()
	if snap["resultcache.hits"] != 1 || snap["resultcache.misses"] != 1 {
		t.Fatalf("counters = %v", snap)
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	reg := metrics.NewRegistry()
	c := New(Config{Capacity: 10, MaxEntryBytes: 10, Metrics: reg})
	put := func(etag, body string) {
		rc, _, err := c.GetOrStart(context.Background(), key(etag), "/a/c/"+etag, staticFill(etag, body))
		if err != nil {
			t.Fatalf("fill %s: %v", etag, err)
		}
		mustRead(t, rc)
		waitFor(t, "settle "+etag, func() bool { return c.Snapshot().Flights == 0 })
	}
	put("e1", "aaaa") // 4 bytes
	put("e2", "bbbb") // 8 bytes total
	// Touch e1 so e2 is the LRU victim.
	if _, status, _ := c.GetOrStart(context.Background(), key("e1"), "/a/c/e1", nil); status != StatusHit {
		t.Fatalf("expected e1 hit, got %v", status)
	}
	put("e3", "cccc") // 12 bytes > 10 → evict e2
	if _, status, _ := c.GetOrStart(context.Background(), key("e1"), "/a/c/e1", nil); status != StatusHit {
		t.Fatalf("e1 should survive, got %v", status)
	}
	if _, status, err := c.GetOrStart(context.Background(), key("e2"), "/a/c/e2", staticFill("e2", "bbbb")); status != StatusMiss || err != nil {
		t.Fatalf("e2 should have been evicted, got %v err %v", status, err)
	}
	if got := reg.Snapshot()["resultcache.evictions"]; got != 1 {
		t.Fatalf("evictions = %d", got)
	}
	if s := c.Snapshot(); s.Bytes > 10+4 {
		t.Fatalf("bytes above capacity after evictions: %+v", s)
	}
}

func TestOversizedBodyNotStored(t *testing.T) {
	reg := metrics.NewRegistry()
	c := New(Config{Capacity: 1 << 20, MaxEntryBytes: 4, Metrics: reg})
	rc, _, err := c.GetOrStart(context.Background(), key("e1"), "/a/c/o", staticFill("e1", "toolarge"))
	if err != nil {
		t.Fatal(err)
	}
	if got := mustRead(t, rc); got != "toolarge" {
		t.Fatalf("oversized body still streams to the leader, got %q", got)
	}
	waitFor(t, "flight settled", func() bool { return c.Snapshot().Flights == 0 })
	if s := c.Snapshot(); s.Entries != 0 {
		t.Fatalf("oversized body stored: %+v", s)
	}
	if got := reg.Snapshot()["resultcache.overflows"]; got != 1 {
		t.Fatalf("overflows = %d", got)
	}
}

func TestOverflowFlightShedsNewJoiners(t *testing.T) {
	ctx := context.Background()
	c := New(Config{Capacity: 1 << 20, MaxEntryBytes: 4})
	var fd *feed
	fill := func(fctx context.Context) (io.ReadCloser, FillInfo, error) {
		fd = newFeed(fctx)
		return fd, FillInfo{ETag: "e1"}, nil
	}
	rc, _, err := c.GetOrStart(ctx, key("e1"), "/a/c/o", fill)
	if err != nil {
		t.Fatal(err)
	}
	fd.send("over the max entry size")
	// Wait until the pump marked overflow (observable via a join attempt).
	waitFor(t, "overflow shed", func() bool {
		_, status, _ := c.GetOrStart(ctx, key("e1"), "/a/c/o", nil)
		return status == StatusBypass
	})
	fd.finish()
	if got := mustRead(t, rc); got != "over the max entry size" {
		t.Fatalf("attached waiter must still get the full body, got %q", got)
	}
}

func TestMidStreamErrorPoisons(t *testing.T) {
	ctx := context.Background()
	reg := metrics.NewRegistry()
	c := New(Config{Capacity: 1 << 20, Metrics: reg})
	var fd *feed
	fill := func(fctx context.Context) (io.ReadCloser, FillInfo, error) {
		fd = newFeed(fctx)
		return fd, FillInfo{ETag: "e1"}, nil
	}
	rc, _, err := c.GetOrStart(ctx, key("e1"), "/a/c/o", fill)
	if err != nil {
		t.Fatal(err)
	}
	fd.send("partial")
	boom := errors.New("filter died")
	fd.fail(boom)
	buf, err := io.ReadAll(rc)
	if !errors.Is(err, boom) {
		t.Fatalf("waiter error = %v (read %q)", err, buf)
	}
	rc.Close()
	waitFor(t, "flight settled", func() bool { return c.Snapshot().Flights == 0 })
	if s := c.Snapshot(); s.Entries != 0 {
		t.Fatalf("poisoned body stored: %+v", s)
	}
	if got := reg.Snapshot()["resultcache.poisons"]; got != 1 {
		t.Fatalf("poisons = %d", got)
	}
	// The key must be retryable: next request is a fresh miss.
	if _, status, err := c.GetOrStart(ctx, key("e1"), "/a/c/o", staticFill("e1", "ok")); status != StatusMiss || err != nil {
		t.Fatalf("after poison: status %v err %v", status, err)
	}
}

func TestOpenFailureReturnsTypedError(t *testing.T) {
	c := New(Config{Capacity: 1 << 20})
	sentinel := errors.New("breaker open")
	fill := func(context.Context) (io.ReadCloser, FillInfo, error) {
		return nil, FillInfo{}, fmt.Errorf("wrapped: %w", sentinel)
	}
	_, status, err := c.GetOrStart(context.Background(), key("e1"), "/a/c/o", fill)
	if status != StatusMiss || !errors.Is(err, sentinel) {
		t.Fatalf("status %v err %v", status, err)
	}
	if s := c.Snapshot(); s.Flights != 0 || s.Entries != 0 {
		t.Fatalf("failed open left state: %+v", s)
	}
}

func TestSingleflightCollapsesAndLateJoinerReplays(t *testing.T) {
	ctx := context.Background()
	reg := metrics.NewRegistry()
	c := New(Config{Capacity: 1 << 20, Metrics: reg})
	var fd *feed
	fills := 0
	fill := func(fctx context.Context) (io.ReadCloser, FillInfo, error) {
		fills++
		fd = newFeed(fctx)
		return fd, FillInfo{ETag: "e1"}, nil
	}
	leader, status, err := c.GetOrStart(ctx, key("e1"), "/a/c/o", fill)
	if err != nil || status != StatusMiss {
		t.Fatalf("leader: %v %v", status, err)
	}
	fd.send("first half ")
	// Late joiner arrives after bytes already streamed: must replay prefix.
	follower, status, err := c.GetOrStart(ctx, key("e1"), "/a/c/o", fill)
	if err != nil || status != StatusCollapsed {
		t.Fatalf("follower: %v %v", status, err)
	}
	fd.send("second half")
	fd.finish()
	want := "first half second half"
	if got := mustRead(t, leader); got != want {
		t.Fatalf("leader got %q", got)
	}
	if got := mustRead(t, follower); got != want {
		t.Fatalf("late joiner got %q", got)
	}
	if fills != 1 {
		t.Fatalf("fill ran %d times", fills)
	}
	if got := reg.Snapshot()["resultcache.collapses"]; got != 1 {
		t.Fatalf("collapses = %d", got)
	}
}

func TestLeaderCancelDoesNotWedgeFollowers(t *testing.T) {
	reg := metrics.NewRegistry()
	c := New(Config{Capacity: 1 << 20, Metrics: reg})
	var fd *feed
	fill := func(fctx context.Context) (io.ReadCloser, FillInfo, error) {
		fd = newFeed(fctx)
		return fd, FillInfo{ETag: "e1"}, nil
	}
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leader, _, err := c.GetOrStart(leaderCtx, key("e1"), "/a/c/o", fill)
	if err != nil {
		t.Fatal(err)
	}
	follower, status, err := c.GetOrStart(context.Background(), key("e1"), "/a/c/o", fill)
	if err != nil || status != StatusCollapsed {
		t.Fatalf("follower: %v %v", status, err)
	}
	fd.send("before cancel ")
	// Kill the leader mid-stream; the fill runs on a detached context, so
	// the follower must still receive the rest of the body.
	cancelLeader()
	if _, err := io.ReadAll(leader); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled leader read err = %v", err)
	}
	leader.Close()
	fd.send("after cancel")
	fd.finish()
	if got := mustRead(t, follower); got != "before cancel after cancel" {
		t.Fatalf("follower got %q", got)
	}
	waitFor(t, "entry committed", func() bool { return c.Snapshot().Entries == 1 })
}

func TestLastWaiterDetachAbortsFill(t *testing.T) {
	c := New(Config{Capacity: 1 << 20})
	fillCtxDone := make(chan struct{})
	var fd *feed
	fill := func(fctx context.Context) (io.ReadCloser, FillInfo, error) {
		fd = newFeed(fctx)
		go func() {
			<-fctx.Done()
			close(fillCtxDone)
		}()
		return fd, FillInfo{ETag: "e1"}, nil
	}
	rc, _, err := c.GetOrStart(context.Background(), key("e1"), "/a/c/o", fill)
	if err != nil {
		t.Fatal(err)
	}
	fd.send("some bytes")
	rc.Close() // last (only) waiter leaves before completion
	select {
	case <-fillCtxDone:
	case <-time.After(5 * time.Second):
		t.Fatal("fill context not canceled after last waiter detached")
	}
	waitFor(t, "abandoned flight settled", func() bool { return c.Snapshot().Flights == 0 })
	if s := c.Snapshot(); s.Entries != 0 {
		t.Fatalf("abandoned partial body stored: %+v", s)
	}
}

func TestFillETagMismatchNotStored(t *testing.T) {
	reg := metrics.NewRegistry()
	c := New(Config{Capacity: 1 << 20, Metrics: reg})
	// Registry promised e1 but the replica streams e2's bytes (a PUT raced).
	rc, status, err := c.GetOrStart(context.Background(), key("e1"), "/a/c/o", staticFill("e2", "v2 bytes"))
	if err != nil || status != StatusMiss {
		t.Fatalf("status %v err %v", status, err)
	}
	// The caller still gets the (current) bytes...
	if got := mustRead(t, rc); got != "v2 bytes" {
		t.Fatalf("got %q", got)
	}
	waitFor(t, "flight settled", func() bool { return c.Snapshot().Flights == 0 })
	// ...but they are never stored under e1's key.
	if s := c.Snapshot(); s.Entries != 0 {
		t.Fatalf("mismatched fill stored: %+v", s)
	}
	if got := reg.Snapshot()["resultcache.fill_mismatch"]; got != 1 {
		t.Fatalf("fill_mismatch = %d", got)
	}
}

func TestInvalidatePathRemovesEntriesAndCutsFlights(t *testing.T) {
	ctx := context.Background()
	reg := metrics.NewRegistry()
	c := New(Config{Capacity: 1 << 20, Metrics: reg})
	// Commit an entry.
	rc, _, err := c.GetOrStart(ctx, key("e1"), "/a/c/o", staticFill("e1", "v1"))
	if err != nil {
		t.Fatal(err)
	}
	mustRead(t, rc)
	waitFor(t, "entry committed", func() bool { return c.Snapshot().Entries == 1 })
	// Start an in-flight fill for a second key on the same path.
	var fd *feed
	fill := func(fctx context.Context) (io.ReadCloser, FillInfo, error) {
		fd = newFeed(fctx)
		return fd, FillInfo{ETag: "e1b"}, nil
	}
	k2 := Key{ETag: "e1b", Chain: "other"}
	inflight, _, err := c.GetOrStart(ctx, k2, "/a/c/o", fill)
	if err != nil {
		t.Fatal(err)
	}
	fd.send("stale ")

	c.InvalidatePath("/a/c/o")

	if s := c.Snapshot(); s.Entries != 0 {
		t.Fatalf("entry survived invalidation: %+v", s)
	}
	// The cut flight still streams to its attached waiter, but its result
	// must not be stored.
	fd.send("bytes")
	fd.finish()
	if got := mustRead(t, inflight); got != "stale bytes" {
		t.Fatalf("in-flight waiter got %q", got)
	}
	waitFor(t, "cut flight drained", func() bool {
		s := c.Snapshot()
		return s.Flights == 0 && s.Entries == 0
	})
	if got := reg.Snapshot()["resultcache.invalidations"]; got != 1 {
		t.Fatalf("invalidations = %d", got)
	}
	// Unrelated paths are untouched.
	rc, _, err = c.GetOrStart(ctx, Key{ETag: "x", Chain: "c"}, "/a/c/other", staticFill("x", "keep"))
	if err != nil {
		t.Fatal(err)
	}
	mustRead(t, rc)
	waitFor(t, "other entry", func() bool { return c.Snapshot().Entries == 1 })
	c.InvalidatePath("/a/c/o")
	if s := c.Snapshot(); s.Entries != 1 {
		t.Fatalf("unrelated entry invalidated: %+v", s)
	}
}

func TestCacheableGate(t *testing.T) {
	reg := metrics.NewRegistry()
	proven := func(name string) bool { return name == "csv" }
	c := New(Config{Capacity: 1 << 20, Proven: proven, Metrics: reg})
	ok := []*pushdown.Task{{Filter: "csv"}}
	bad := []*pushdown.Task{{Filter: "csv"}, {Filter: "mystery"}}
	if !c.Cacheable(ok) {
		t.Fatal("proven chain must be cacheable")
	}
	if c.Cacheable(bad) {
		t.Fatal("chain with an unproven filter must not be cacheable")
	}
	if c.Cacheable(nil) {
		t.Fatal("empty chain must not be cacheable")
	}
	var nilCache *Cache
	if nilCache.Cacheable(ok) {
		t.Fatal("nil cache must not be cacheable")
	}
	if got := reg.Snapshot()["resultcache.uncacheable"]; got != 2 {
		t.Fatalf("uncacheable = %d", got)
	}
}

// TestConcurrentHerd hammers one key from many goroutines while the fill
// streams slowly, asserting exactly one fill execution and byte-identical
// bodies — the in-package half of the singleflight concurrency suite (the
// objectstore half asserts engine invocation counts end to end).
func TestConcurrentHerd(t *testing.T) {
	const herd = 32
	ctx := context.Background()
	c := New(Config{Capacity: 1 << 20})
	var mu sync.Mutex
	fills := 0
	var fd *feed
	fill := func(fctx context.Context) (io.ReadCloser, FillInfo, error) {
		mu.Lock()
		fills++
		fd = newFeed(fctx)
		mu.Unlock()
		return fd, FillInfo{ETag: "e1"}, nil
	}
	var want bytes.Buffer
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&want, "row-%03d\n", i)
	}

	var wg sync.WaitGroup
	bodies := make([]string, herd)
	errs := make([]error, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rc, _, err := c.GetOrStart(ctx, key("e1"), "/a/c/o", fill)
			if err != nil {
				errs[i] = err
				return
			}
			b, err := io.ReadAll(rc)
			rc.Close()
			bodies[i], errs[i] = string(b), err
		}(i)
	}
	// Wait for the leader to open the fill, then stream slowly so waiters
	// genuinely interleave with appends.
	waitFor(t, "fill opened", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return fd != nil
	})
	for i := 0; i < 64; i++ {
		fd.send(fmt.Sprintf("row-%03d\n", i))
	}
	fd.finish()
	wg.Wait()

	for i := 0; i < herd; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if bodies[i] != want.String() {
			t.Fatalf("goroutine %d body diverged (%d bytes vs %d)", i, len(bodies[i]), want.Len())
		}
	}
	if fills != 1 {
		t.Fatalf("herd of %d executed %d fills", herd, fills)
	}
}
