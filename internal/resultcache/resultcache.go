// Package resultcache is the proxy-side cache for filtered GET results.
//
// A cached body is keyed by (object ETag, canonical filter-chain hash, byte
// range). The ETag is a content hash, so once an entry's bytes are proven to
// come from the keyed ETag (the fill guard below), the entry can never be
// stale — it is a pure function of its key. Invalidation on PUT/repair is
// therefore memory reclamation plus cutting off in-flight fills, not a
// correctness mechanism in itself.
//
// Concurrent identical requests collapse into one execution (singleflight):
// the first caller becomes the leader and runs the fill; every concurrent
// caller becomes a waiter on the same flight, replaying the buffered prefix
// and then tailing the live stream. The fill runs on a context detached from
// the leader's request, so a leader disconnect does not wedge the waiters;
// when the LAST waiter detaches before the fill completes, the fill is
// canceled so no orphan filter execution keeps streaming into the void.
//
// Degradation rules (the PR-5 ladder):
//   - A fill that fails before its first byte returns the error to the
//     leader synchronously, so typed 503s (breaker open, overloaded,
//     not-deployed) keep their shape.
//   - A fill that dies mid-stream poisons the flight: waiters see the error
//     exactly where the stream died, and the partial body is never stored.
//   - A result that outgrows the per-entry bound keeps streaming to already
//     attached waiters (bounded by one result) but is never stored, and new
//     arrivals bypass to the uncached path instead of joining.
//   - The cache never turns a cacheable request into a 5xx: every refusal is
//     a bypass to the normal GET path.
package resultcache

import (
	"container/list"
	"context"
	"io"
	"sync"

	"scoop/internal/metrics"
	"scoop/internal/pushdown"
)

// Status classifies how a request was served, and flows to the client in the
// X-Scoop-Cache response header.
type Status string

const (
	// StatusHit — served from a completed cached entry.
	StatusHit Status = "hit"
	// StatusMiss — this request led the fill (leader).
	StatusMiss Status = "miss"
	// StatusCollapsed — joined another request's in-flight fill.
	StatusCollapsed Status = "collapsed"
	// StatusBypass — the cache refused (overflowed/poisoned flight, or the
	// caller decided the chain is uncacheable); serve uncached.
	StatusBypass Status = "bypass"
)

// Key identifies one cacheable result. ETag is the object content hash,
// Chain is pushdown.ChainHash of the canonical filter chain, Start/End are
// the byte range of the SOURCE object the chain ran over (End 0 = to EOF,
// matching GetOptions).
type Key struct {
	ETag  string
	Chain string
	Start int64
	End   int64
}

// FillInfo carries the metadata the fill observed at its commit point. The
// cache compares FillInfo.ETag against Key.ETag: if a replica raced ahead
// (or behind) of the registry, the bytes belong to a DIFFERENT key and the
// flight is marked no-store. Without this guard a fill keyed on E1 could
// permanently cache E2's bytes under E1.
type FillInfo struct {
	ETag string
}

// FillFunc opens the uncached result stream. It must respect ctx, and must
// return an error (rather than a reader) for every pre-first-byte failure so
// the leader's error keeps its typed shape.
type FillFunc func(ctx context.Context) (io.ReadCloser, FillInfo, error)

// Config bounds and wires a Cache.
type Config struct {
	// Capacity is the LRU bound in body bytes. <= 0 disables storage:
	// singleflight collapsing still works, but nothing is retained.
	Capacity int64
	// MaxEntryBytes bounds a single stored body. 0 defaults to Capacity/8,
	// so one giant dashboard export cannot evict the whole working set.
	MaxEntryBytes int64
	// Proven reports whether a filter name has a determinism proof
	// (detmanifest.IsProven in production). Nil proves nothing.
	Proven func(string) bool
	// Metrics receives the resultcache.* counters; nil disables them.
	Metrics *metrics.Registry
}

// Stats is a point-in-time snapshot for tests and debugging.
type Stats struct {
	Entries int
	Bytes   int64
	Flights int
}

// Cache is the result cache. All maps are guarded by mu; per-flight state is
// guarded by the flight's own mutex. Lock order is always Cache.mu before
// flight.mu, and flight completion releases flight.mu before settling under
// Cache.mu — never the reverse.
type Cache struct {
	cfg      Config
	maxEntry int64

	mu      sync.Mutex
	entries map[Key]*entry
	flights map[Key]*flight
	lru     *list.List // front = most recent; values are *entry
	byPath  map[string]map[Key]struct{}
	bytes   int64
}

type entry struct {
	key  Key
	path string
	body []byte
	elem *list.Element
}

// New builds a Cache from cfg.
func New(cfg Config) *Cache {
	maxEntry := cfg.MaxEntryBytes
	if maxEntry <= 0 {
		maxEntry = cfg.Capacity / 8
	}
	if maxEntry <= 0 {
		// Storage disabled; keep a sane bound so flight buffers that will
		// never be stored still mark overflow and shed new joiners.
		maxEntry = 64 << 20
	}
	return &Cache{
		cfg:      cfg,
		maxEntry: maxEntry,
		entries:  make(map[Key]*entry),
		flights:  make(map[Key]*flight),
		lru:      list.New(),
		byPath:   make(map[string]map[Key]struct{}),
	}
}

func (c *Cache) count(name string) {
	if c.cfg.Metrics != nil {
		c.cfg.Metrics.Counter("resultcache." + name).Inc()
	}
}

// Cacheable reports whether a filter chain may be cached at all: non-empty
// and every filter proven deterministic. Callers must bypass the cache
// entirely when this is false.
func (c *Cache) Cacheable(tasks []*pushdown.Task) bool {
	if c == nil {
		return false
	}
	ok := pushdown.CacheableChain(tasks, c.cfg.Proven)
	if !ok {
		c.count("uncacheable")
	}
	return ok
}

// GetOrStart serves key from the cache, joins an in-flight fill, or starts a
// new fill by calling fill synchronously (so pre-first-byte errors return
// here with their typed shape intact).
//
// Returns (reader, status, nil) on success; (nil, StatusBypass, nil) when
// the caller must fall back to the uncached path; (nil, StatusMiss, err)
// when this caller led a fill whose open failed.
//
// ctx governs only THIS caller's reads (and its membership in the flight);
// the fill itself runs on a detached context that is canceled only when the
// last waiter detaches before completion.
func (c *Cache) GetOrStart(ctx context.Context, key Key, path string, fill FillFunc) (io.ReadCloser, Status, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		c.count("hits")
		return &entryReader{body: e.body}, StatusHit, nil
	}
	if f, ok := c.flights[key]; ok {
		f.mu.Lock()
		joinable := !f.overflow && !(f.done && f.err != nil)
		if joinable {
			f.waiters++
		}
		f.mu.Unlock()
		c.mu.Unlock()
		if !joinable {
			c.count("bypasses")
			return nil, StatusBypass, nil
		}
		c.count("collapses")
		return &flightReader{f: f, ctx: ctx, status: StatusCollapsed}, StatusCollapsed, nil
	}

	// Become the leader: register the flight before running the fill so
	// concurrent identical requests collapse onto it immediately.
	fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	f := &flight{c: c, key: key, path: path, wake: make(chan struct{}), waiters: 1, cancel: cancel}
	c.flights[key] = f
	c.indexPathLocked(path, key)
	c.mu.Unlock()
	c.count("misses")

	src, info, err := fill(fctx)
	if err != nil {
		// Pre-first-byte failure: poison the flight so any waiters that
		// joined while the fill was opening observe the same error, and
		// return it to the leader with its type intact.
		f.finish(err)
		cancel()
		return nil, StatusMiss, err
	}
	if info.ETag != key.ETag {
		// The replica served bytes for a different object version than the
		// registry promised when the key was built. The stream is still a
		// valid response for the CALLER (it is the current content), but it
		// must never be stored under this key.
		f.mu.Lock()
		f.noStore = true
		f.mu.Unlock()
		c.count("fill_mismatch")
	}
	go f.pump(fctx, src)
	return &flightReader{f: f, ctx: ctx, status: StatusMiss}, StatusMiss, nil
}

// InvalidatePath removes every entry and cuts off every in-flight fill for
// an object path. Called by the proxy after the registry quorum commit point
// of a PUT, and after a successful repair copy.
func (c *Cache) InvalidatePath(path string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	keys := c.byPath[path]
	// removeEntryLocked unindexes from this same set while we range over
	// it, so capture the count up front for the counter decision below.
	invalidated := len(keys)
	var cut []*flight
	for key := range keys {
		if e, ok := c.entries[key]; ok {
			c.removeEntryLocked(e)
		}
		if f, ok := c.flights[key]; ok {
			delete(c.flights, key)
			cut = append(cut, f)
		}
	}
	delete(c.byPath, path)
	c.mu.Unlock()
	// The linearization point is the map surgery above (settle re-checks
	// flights[key] under c.mu); marking noStore as well closes the window
	// where a flight finishes between our unlock and its settle.
	for _, f := range cut {
		f.mu.Lock()
		f.noStore = true
		f.mu.Unlock()
	}
	if invalidated > 0 {
		c.count("invalidations")
	}
}

// Snapshot returns current occupancy.
func (c *Cache) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Entries: len(c.entries), Bytes: c.bytes, Flights: len(c.flights)}
}

func (c *Cache) indexPathLocked(path string, key Key) {
	set := c.byPath[path]
	if set == nil {
		set = make(map[Key]struct{})
		c.byPath[path] = set
	}
	set[key] = struct{}{}
}

func (c *Cache) unindexPathLocked(path string, key Key) {
	if set, ok := c.byPath[path]; ok {
		delete(set, key)
		if len(set) == 0 {
			delete(c.byPath, path)
		}
	}
}

func (c *Cache) removeEntryLocked(e *entry) {
	c.lru.Remove(e.elem)
	delete(c.entries, e.key)
	c.unindexPathLocked(e.path, e.key)
	c.bytes -= int64(len(e.body))
}

// settle is the single place a flight leaves the flights map. If store is
// still permitted it commits the body as an entry and evicts LRU victims
// past capacity.
func (c *Cache) settle(f *flight, store bool, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.flights[f.key] != f {
		// Invalidation already removed the flight; its bytes are dead.
		return
	}
	delete(c.flights, f.key)
	if !store || c.cfg.Capacity <= 0 || int64(len(body)) > c.maxEntry {
		c.unindexPathLocked(f.path, f.key)
		return
	}
	e := &entry{key: f.key, path: f.path, body: body}
	e.elem = c.lru.PushFront(e)
	c.entries[f.key] = e
	c.bytes += int64(len(body))
	for c.bytes > c.cfg.Capacity {
		back := c.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*entry)
		c.removeEntryLocked(victim)
		c.count("evictions")
	}
}

// flight is one in-progress fill. buf only ever grows; wake is closed and
// replaced on every append, so waiters tail the stream without polling.
type flight struct {
	c    *Cache
	key  Key
	path string

	mu       sync.Mutex
	buf      []byte
	wake     chan struct{}
	done     bool
	err      error
	waiters  int
	overflow bool
	noStore  bool
	cancel   context.CancelFunc
}

// pump drains the fill stream into the shared buffer. It is the only writer
// of buf.
func (f *flight) pump(fctx context.Context, src io.ReadCloser) {
	chunk := make([]byte, 32<<10)
	for {
		n, err := src.Read(chunk)
		if n > 0 {
			f.append(chunk[:n])
		}
		if err == io.EOF {
			_ = src.Close()
			f.finish(nil)
			return
		}
		if err != nil {
			_ = src.Close()
			// A mid-stream death poisons the flight. Distinguish a genuine
			// filter/replica failure from our own abandonment cancel (last
			// waiter left): the latter is not a poisoning event.
			if fctx.Err() == nil {
				f.c.count("poisons")
			}
			f.finish(err)
			return
		}
	}
}

func (f *flight) append(p []byte) {
	f.mu.Lock()
	f.buf = append(f.buf, p...)
	if !f.overflow && int64(len(f.buf)) > f.c.maxEntry {
		// Keep streaming to attached waiters (memory is bounded by this one
		// result), but never store, and shed new joiners to bypass.
		f.overflow = true
		f.c.count("overflows")
	}
	close(f.wake)
	f.wake = make(chan struct{})
	f.mu.Unlock()
}

// finish marks the flight complete and settles it into (or out of) the
// cache. Idempotent; the first caller wins.
func (f *flight) finish(err error) {
	f.mu.Lock()
	if f.done {
		f.mu.Unlock()
		return
	}
	f.done = true
	f.err = err
	store := err == nil && !f.overflow && !f.noStore
	body := f.buf
	close(f.wake)
	f.mu.Unlock()
	f.c.settle(f, store, body)
}

// detach removes one waiter. When the last waiter leaves an unfinished
// flight, the fill context is canceled so the pump and the underlying
// filter execution stop promptly.
func (f *flight) detach() {
	f.mu.Lock()
	f.waiters--
	abandon := f.waiters == 0 && !f.done
	f.mu.Unlock()
	if abandon {
		f.cancel()
	}
}

// flightReader streams a flight to one waiter: replay the buffered prefix,
// then tail live appends.
type flightReader struct {
	f      *flight
	ctx    context.Context
	status Status
	pos    int
	closed bool
}

func (r *flightReader) Read(p []byte) (int, error) {
	for {
		r.f.mu.Lock()
		if r.pos < len(r.f.buf) {
			n := copy(p, r.f.buf[r.pos:])
			r.pos += n
			r.f.mu.Unlock()
			return n, nil
		}
		if r.f.done {
			err := r.f.err
			r.f.mu.Unlock()
			if err != nil {
				return 0, err
			}
			return 0, io.EOF
		}
		wake := r.f.wake
		r.f.mu.Unlock()
		select {
		case <-wake:
		case <-r.ctx.Done():
			return 0, r.ctx.Err()
		}
	}
}

func (r *flightReader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.f.detach()
	return nil
}

// CacheStatus implements the objectstore CacheStatuser plumbing.
func (r *flightReader) CacheStatus() string { return string(r.status) }

// entryReader streams an immutable stored body. Entries are never mutated
// after commit, so the reader stays valid across eviction and invalidation.
type entryReader struct {
	body []byte
	pos  int
}

func (r *entryReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.body) {
		return 0, io.EOF
	}
	n := copy(p, r.body[r.pos:])
	r.pos += n
	return n, nil
}

func (r *entryReader) Close() error { return nil }

// CacheStatus implements the objectstore CacheStatuser plumbing.
func (r *entryReader) CacheStatus() string { return string(StatusHit) }
