package metrics

import "sync/atomic"

// Gauge is an atomic point-in-time value — queue depths, epoch numbers,
// in-flight counts. Unlike Counter it moves both ways; Set overwrites.
//
// A nil *Gauge is a valid no-op sink, matching Counter's contract, so
// instrumented code never guards the "metrics disabled" case.
type Gauge struct {
	v atomic.Int64
}

// Set overwrites the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add shifts the value by n (negative to decrement).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Load returns the current value; 0 on a nil gauge.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Float returns the value as float64, in the shape Collector gauges expect.
func (g *Gauge) Float() float64 { return float64(g.Load()) }

// Gauge returns the gauge with the given name, creating it on first use.
// Gauges share the registry namespace with counters but live in their own
// table; Snapshot merges both (a name collision surfaces the gauge).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}
