package metrics

import (
	"sync"
	"testing"
)

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	if g.Float() != 7 {
		t.Fatalf("Float = %v, want 7", g.Float())
	}
	if r.Gauge("depth") != g {
		t.Error("Gauge is not get-or-create: second lookup returned a new gauge")
	}
	g.Set(2)
	if got := g.Load(); got != 2 {
		t.Fatalf("Set did not overwrite: got %d, want 2", got)
	}
}

func TestNilGaugeIsNoOp(t *testing.T) {
	var r *Registry
	g := r.Gauge("anything")
	g.Set(5) // must not panic
	g.Add(-1)
	if g.Load() != 0 || g.Float() != 0 {
		t.Error("nil gauge should read zero")
	}
}

func TestSnapshotMergesCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(-4)
	snap := r.Snapshot()
	if snap["c"] != 3 || snap["g"] != -4 {
		t.Fatalf("snapshot = %v, want c=3 g=-4", snap)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Gauge("inflight").Add(1)
				r.Gauge("inflight").Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := r.Gauge("inflight").Load(); got != 0 {
		t.Fatalf("inflight = %d, want 0 after balanced adds", got)
	}
}
