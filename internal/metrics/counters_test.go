package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a") != c {
		t.Error("Counter is not get-or-create: second lookup returned a new counter")
	}
	snap := r.Snapshot()
	if snap["a"] != 5 {
		t.Errorf("snapshot = %v, want a=5", snap)
	}
}

func TestNilRegistryAndCounterAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("anything")
	c.Inc() // must not panic
	c.Add(3)
	if c.Load() != 0 || c.Float() != 0 {
		t.Error("nil counter should read zero")
	}
	if r.Snapshot() != nil || r.CounterNames() != nil {
		t.Error("nil registry should report nothing")
	}
	col, err := NewCollector(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(col); err != nil {
		t.Errorf("nil registry Bind: %v", err)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("hits").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Load(); got != 8000 {
		t.Fatalf("hits = %d, want 8000", got)
	}
}

func TestRegistryBind(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(7)
	col, err := NewCollector(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(col); err != nil {
		t.Fatal(err)
	}
	col.Poll()
	s, ok := col.Summarize("x")
	if !ok || s.Peak != 7 {
		t.Fatalf("bound counter sampled %v (ok=%v), want peak 7", s, ok)
	}
}
