package metrics

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestNewCollectorValidation(t *testing.T) {
	if _, err := NewCollector(0); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := NewCollector(-time.Second); err == nil {
		t.Error("negative interval accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	c, _ := NewCollector(time.Millisecond)
	if err := c.Register("", func() float64 { return 0 }); err == nil {
		t.Error("empty name accepted")
	}
	if err := c.Register("x", nil); err == nil {
		t.Error("nil func accepted")
	}
	if err := c.Register("x", func() float64 { return 0 }); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("x", func() float64 { return 0 }); err == nil {
		t.Error("duplicate accepted")
	}
	if names := c.Names(); len(names) != 1 || names[0] != "x" {
		t.Errorf("Names = %v", names)
	}
}

func TestPollAndSummarize(t *testing.T) {
	c, _ := NewCollector(time.Hour) // manual polling only
	var v atomic.Int64
	_ = c.Register("cpu", func() float64 { return float64(v.Load()) })
	for _, x := range []int64{10, 30, 20} {
		v.Store(x)
		c.Poll()
	}
	s, ok := c.Summarize("cpu")
	if !ok {
		t.Fatal("no summary")
	}
	if s.Count != 3 || s.Avg != 20 || s.Peak != 30 || s.Min != 10 {
		t.Errorf("summary = %+v", s)
	}
	if _, ok := c.Summarize("ghost"); ok {
		t.Error("ghost gauge summarized")
	}
	if got := len(c.Samples()); got != 3 {
		t.Errorf("samples = %d", got)
	}
	c.Reset()
	if got := len(c.Samples()); got != 0 {
		t.Errorf("samples after reset = %d", got)
	}
}

func TestBackgroundSampling(t *testing.T) {
	c, _ := NewCollector(2 * time.Millisecond)
	var n atomic.Int64
	_ = c.Register("ticks", func() float64 { return float64(n.Add(1)) })
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err == nil {
		t.Error("double start accepted")
	}
	time.Sleep(20 * time.Millisecond)
	c.Stop()
	got := len(c.Samples())
	if got < 3 {
		t.Errorf("samples = %d, want several", got)
	}
	// No more samples after Stop.
	time.Sleep(10 * time.Millisecond)
	if len(c.Samples()) != got {
		t.Error("sampling continued after Stop")
	}
	// Stop is idempotent.
	c.Stop()
	// Restart works.
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	c.Stop()
}

func TestRegisterWhileRunning(t *testing.T) {
	c, _ := NewCollector(time.Millisecond)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.Register("late", func() float64 { return 7 }); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if s, ok := c.Summarize("late"); ok && s.Count > 0 {
			if s.Avg != 7 {
				t.Errorf("late gauge avg = %v", s.Avg)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Error("late-registered gauge never sampled")
}

func TestRate(t *testing.T) {
	t0 := time.Now()
	a := Sample{T: t0, Values: map[string]float64{"bytes": 100}}
	b := Sample{T: t0.Add(2 * time.Second), Values: map[string]float64{"bytes": 300}}
	r, ok := Rate(a, b, "bytes")
	if !ok || r != 100 {
		t.Errorf("rate = %v, %v", r, ok)
	}
	if _, ok := Rate(a, b, "ghost"); ok {
		t.Error("missing counter accepted")
	}
	if _, ok := Rate(b, a, "bytes"); ok {
		t.Error("non-positive dt accepted")
	}
}
