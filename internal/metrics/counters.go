package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter — the event-count
// side of the collectd analog (the Collector's gauges are the sampled side).
// The data path uses counters to make every recovery action observable:
// retries, replica failovers, quorum degradations, injected faults.
//
// A nil *Counter is a valid no-op sink, so instrumented code never has to
// guard the "metrics disabled" case.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n may be negative only for test rollbacks; production callers
// should treat counters as monotonic).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value; 0 on a nil counter.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Float returns the value as float64, in the shape Collector gauges expect.
func (c *Counter) Float() float64 { return float64(c.Load()) }

// Registry is a get-or-create set of named counters shared across a
// deployment tier (one per Cluster, one per HTTP client). A nil *Registry
// hands out nil counters, so wiring metrics is always optional.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry returns an empty counter registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]*Counter)}
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Snapshot returns the current value of every counter and gauge.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	for name, g := range r.gauges {
		out[name] = g.Load()
	}
	return out
}

// CounterNames lists the registered counters, sorted.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.counters))
	for name := range r.counters {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Bind registers every counter that exists right now as a gauge on the
// collector, so the background sampler picks counters up alongside the
// utilization gauges. Counters created after Bind must be bound again.
func (r *Registry) Bind(c *Collector) error {
	if r == nil {
		return nil
	}
	for _, name := range r.CounterNames() {
		if err := c.Register(name, r.Counter(name).Float); err != nil {
			return err
		}
	}
	return nil
}
