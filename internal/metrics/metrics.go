// Package metrics is the collectd analog of the reproduction: a background
// sampler that polls registered gauges at a fixed interval and keeps the
// time series, from which experiments derive the average/peak utilization
// rows reported in the paper's Fig. 9 and Fig. 10.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Sample is one poll of every registered gauge.
type Sample struct {
	T      time.Time
	Values map[string]float64
}

// Collector polls gauges on an interval.
type Collector struct {
	interval time.Duration

	mu      sync.Mutex
	gauges  map[string]func() float64
	samples []Sample
	stop    chan struct{}
	done    chan struct{}
}

// NewCollector creates a collector; interval must be positive.
func NewCollector(interval time.Duration) (*Collector, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("metrics: interval must be positive")
	}
	return &Collector{
		interval: interval,
		gauges:   make(map[string]func() float64),
	}, nil
}

// Register adds a gauge. Registering while running is allowed; the next
// sample includes it.
func (c *Collector) Register(name string, fn func() float64) error {
	if name == "" || fn == nil {
		return fmt.Errorf("metrics: gauge needs a name and a func")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.gauges[name]; dup {
		return fmt.Errorf("metrics: gauge %q already registered", name)
	}
	c.gauges[name] = fn
	return nil
}

// Start begins sampling in the background. Calling Start twice is an error.
func (c *Collector) Start() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stop != nil {
		return fmt.Errorf("metrics: already started")
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go c.run(c.stop, c.done)
	return nil
}

func (c *Collector) run(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(c.interval)
	defer ticker.Stop()
	c.sampleOnce() // immediate first sample
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			c.sampleOnce()
		}
	}
}

// sampleOnce polls every gauge now. Exported through Poll for synchronous
// use in tests and short experiments.
func (c *Collector) sampleOnce() {
	c.mu.Lock()
	fns := make(map[string]func() float64, len(c.gauges))
	for k, v := range c.gauges {
		fns[k] = v
	}
	c.mu.Unlock()
	s := Sample{T: time.Now(), Values: make(map[string]float64, len(fns))}
	for name, fn := range fns {
		s.Values[name] = fn()
	}
	c.mu.Lock()
	c.samples = append(c.samples, s)
	c.mu.Unlock()
}

// Poll takes one synchronous sample (usable without Start).
func (c *Collector) Poll() { c.sampleOnce() }

// Stop halts background sampling and waits for the sampler to exit.
func (c *Collector) Stop() {
	c.mu.Lock()
	stop, done := c.stop, c.done
	c.stop, c.done = nil, nil
	c.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Reset clears the recorded samples.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.samples = nil
}

// Samples returns a copy of the recorded time series.
func (c *Collector) Samples() []Sample {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Sample, len(c.samples))
	copy(out, c.samples)
	return out
}

// Summary aggregates one gauge across the recorded samples.
type Summary struct {
	Count int
	Avg   float64
	Peak  float64
	Min   float64
}

// Summarize computes the summary of one gauge, or ok=false if it never
// appeared in a sample.
func (c *Collector) Summarize(name string) (Summary, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var s Summary
	var sum float64
	first := true
	for _, sample := range c.samples {
		v, ok := sample.Values[name]
		if !ok {
			continue
		}
		s.Count++
		sum += v
		if first || v > s.Peak {
			s.Peak = v
		}
		if first || v < s.Min {
			s.Min = v
		}
		first = false
	}
	if s.Count == 0 {
		return Summary{}, false
	}
	s.Avg = sum / float64(s.Count)
	return s, true
}

// Names lists the registered gauges, sorted.
func (c *Collector) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.gauges))
	for n := range c.gauges {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Rate converts two cumulative-counter samples into an average rate per
// second — how collectd derives NIC bandwidth from interface byte counters.
func Rate(earlier, later Sample, name string) (float64, bool) {
	a, ok1 := earlier.Values[name]
	b, ok2 := later.Values[name]
	dt := later.T.Sub(earlier.T).Seconds()
	if !ok1 || !ok2 || dt <= 0 {
		return 0, false
	}
	return (b - a) / dt, true
}
