// Package meter generates synthetic smart-meter datasets with the structure
// of the GridPocket data used in the paper's evaluation: CSV rows of 10
// columns, one reading per meter every 10 minutes, for a configurable number
// of meters and days. The paper's own anonymized datasets keep only the
// structural characteristics of the original data — selectivity and byte
// volume — which is exactly what this generator reproduces. (The authors
// published a similar generator; this is an independent reimplementation.)
package meter

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"time"
)

// SchemaDecl declares the 10-column dataset schema in the form accepted by
// types.ParseSchema. Column names match the paper's Table I queries (vid,
// date, index, sumHC, sumHP, city, state, lat, long).
const SchemaDecl = "vid string, date string, index double, sumHC double, sumHP double, type string, city string, state string, lat double, long double"

// Columns lists the column names in order.
var Columns = []string{"vid", "date", "index", "sumHC", "sumHP", "type", "city", "state", "lat", "long"}

// City is a location a meter can be installed in.
type City struct {
	Name  string
	State string
	Lat   float64
	Long  float64
}

// Cities are the locations used by the generator. The mix deliberately
// includes the values Table I queries select on: city 'Rotterdam', state
// 'FRA' and states matching 'U%'.
var Cities = []City{
	{"Rotterdam", "NED", 51.9225, 4.47917},
	{"Amsterdam", "NED", 52.3676, 4.9041},
	{"Paris", "FRA", 48.8566, 2.3522},
	{"Lyon", "FRA", 45.7640, 4.8357},
	{"Nice", "FRA", 43.7102, 7.2620},
	{"Kyiv", "UKR", 50.4501, 30.5234},
	{"London", "UK", 51.5074, -0.1278},
	{"Barcelona", "ESP", 41.3851, 2.1734},
	{"Berlin", "GER", 52.5200, 13.4050},
	{"Rome", "ITA", 41.9028, 12.4964},
}

// MeterTypes are the meter hardware types emitted in the "type" column.
var MeterTypes = []string{"elec", "gas", "water"}

// Config parameterizes a synthetic dataset. The zero value is not valid; use
// DefaultConfig and override.
type Config struct {
	// Meters is the number of distinct smart meters (paper: 10K).
	Meters int
	// Start is the timestamp of the first reading.
	Start time.Time
	// Days is the time span covered; each meter reports every Interval.
	Days int
	// Interval between readings of one meter (paper: 10 minutes).
	Interval time.Duration
	// Seed makes the dataset deterministic.
	Seed int64
	// Header emits a column-name header record first.
	Header bool
	// DirtyFraction in [0,1) injects malformed rows (extra whitespace,
	// missing fields) at roughly this rate, for exercising ETL cleansing.
	DirtyFraction float64
}

// DefaultConfig returns a small deterministic dataset configuration starting
// 2015-01-01, matching the date range the Table I queries filter on.
func DefaultConfig() Config {
	return Config{
		Meters:   100,
		Start:    time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC),
		Days:     31,
		Interval: 10 * time.Minute,
		Seed:     1,
	}
}

// meterState carries the per-meter cumulative counters.
type meterState struct {
	vid   string
	city  City
	typ   string
	index float64
	sumHC float64
	sumHP float64
	rng   *rand.Rand
}

// VID formats a meter id; ids are zero-padded so lexicographic order equals
// numeric order, which the selectivity helpers rely on.
func VID(i int) string { return fmt.Sprintf("V%06d", i) }

// Generate streams every row of the dataset to fn as raw string fields.
// Rows are emitted time-major (all meters for reading 0, then reading 1, ...)
// which mirrors arrival order of real IoT feeds and spreads each meter's rows
// uniformly across the object — the property the row-selectivity experiments
// depend on.
func (c Config) Generate(fn func(fields []string) error) error {
	if err := c.validate(); err != nil {
		return err
	}
	meters := c.newMeters()
	readings := c.ReadingsPerMeter()
	fields := make([]string, 10)
	dirtyRng := rand.New(rand.NewSource(c.Seed ^ 0x5eed))
	for r := 0; r < readings; r++ {
		ts := c.Start.Add(time.Duration(r) * c.Interval)
		date := ts.Format("2006-01-02 15:04:05")
		for _, m := range meters {
			m.step()
			fields[0] = m.vid
			fields[1] = date
			fields[2] = strconv.FormatFloat(m.index, 'f', 2, 64)
			fields[3] = strconv.FormatFloat(m.sumHC, 'f', 2, 64)
			fields[4] = strconv.FormatFloat(m.sumHP, 'f', 2, 64)
			fields[5] = m.typ
			fields[6] = m.city.Name
			fields[7] = m.city.State
			fields[8] = strconv.FormatFloat(m.city.Lat, 'f', 4, 64)
			fields[9] = strconv.FormatFloat(m.city.Long, 'f', 4, 64)
			if c.DirtyFraction > 0 && dirtyRng.Float64() < c.DirtyFraction {
				dirty := corrupt(fields, dirtyRng)
				if err := fn(dirty); err != nil {
					return err
				}
				continue
			}
			if err := fn(fields); err != nil {
				return err
			}
		}
	}
	return nil
}

// corrupt produces a malformed variant of the row: padded fields or a
// truncated record, the kinds of dirt the ETL storlet cleanses on upload.
func corrupt(fields []string, rng *rand.Rand) []string {
	out := make([]string, len(fields))
	copy(out, fields)
	switch rng.Intn(3) {
	case 0: // stray whitespace
		i := rng.Intn(len(out))
		out[i] = "  " + out[i] + " "
	case 1: // missing trailing fields
		return out[:1+rng.Intn(len(out)-1)]
	default: // empty mandatory field
		out[rng.Intn(2)] = ""
	}
	return out
}

func (c Config) validate() error {
	if c.Meters <= 0 {
		return fmt.Errorf("meter: Meters must be > 0")
	}
	if c.Days <= 0 {
		return fmt.Errorf("meter: Days must be > 0")
	}
	if c.Interval <= 0 {
		return fmt.Errorf("meter: Interval must be > 0")
	}
	if c.Start.IsZero() {
		return fmt.Errorf("meter: Start must be set")
	}
	return nil
}

func (c Config) newMeters() []*meterState {
	meters := make([]*meterState, c.Meters)
	for i := range meters {
		rng := rand.New(rand.NewSource(c.Seed + int64(i)*7919))
		meters[i] = &meterState{
			vid:  VID(i),
			city: Cities[rng.Intn(len(Cities))],
			typ:  MeterTypes[rng.Intn(len(MeterTypes))],
			// Start counters at a realistic installed-meter offset.
			index: float64(rng.Intn(100000)),
			sumHC: float64(rng.Intn(50000)),
			sumHP: float64(rng.Intn(50000)),
			rng:   rng,
		}
	}
	return meters
}

// step advances one reading: cumulative counters grow monotonically.
func (m *meterState) step() {
	use := m.rng.Float64() * 0.5 // kWh in 10 minutes
	m.index += use
	hc := use * m.rng.Float64()
	m.sumHC += hc
	m.sumHP += use - hc
}

// ReadingsPerMeter returns the number of readings each meter produces.
func (c Config) ReadingsPerMeter() int {
	return int(time.Duration(c.Days) * 24 * time.Hour / c.Interval)
}

// Rows returns the total number of data rows.
func (c Config) Rows() int64 {
	return int64(c.Meters) * int64(c.ReadingsPerMeter())
}

// WriteCSV writes the dataset as CSV to w, returning the byte count.
func (c Config) WriteCSV(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 256<<10)
	var n int64
	write := func(fields []string) error {
		for i, f := range fields {
			if i > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
				n++
			}
			m, err := bw.WriteString(f)
			n += int64(m)
			if err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
		n++
		return nil
	}
	if c.Header {
		if err := write(Columns); err != nil {
			return n, err
		}
	}
	if err := c.Generate(write); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// RowSelectivityPredicate returns the vid upper bound such that the predicate
// vid < bound matches approximately frac of all rows. Meters are uniform
// across rows, so selecting a meter-id prefix selects the same fraction of
// rows. (The synthetic Fig. 5 sweep drives row selectivity with this.)
func (c Config) RowSelectivityPredicate(frac float64) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	keep := int(float64(c.Meters)*frac + 0.5)
	return VID(keep)
}

// ColumnSubset returns the first n column names whose cumulative average
// byte share is closest to frac of the row, supporting column-selectivity
// sweeps. The second return is the achieved byte fraction.
func ColumnSubset(frac float64) ([]string, float64) {
	// Average rendered field widths (comma included) for the generator's
	// output; measured once and fixed so sweeps are deterministic.
	widths := []float64{8, 20, 10, 10, 10, 5, 9, 4, 8, 8}
	var total float64
	for _, w := range widths {
		total += w
	}
	best, bestDiff := 1, 2.0
	for n := 1; n <= len(widths); n++ {
		var sum float64
		for _, w := range widths[:n] {
			sum += w
		}
		diff := sum/total - frac
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			bestDiff = diff
			best = n
		}
	}
	var sum float64
	for _, w := range widths[:best] {
		sum += w
	}
	return append([]string(nil), Columns[:best]...), sum / total
}
