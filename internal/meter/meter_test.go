package meter

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"scoop/internal/sql/types"
)

func smallConfig() Config {
	c := DefaultConfig()
	c.Meters = 5
	c.Days = 1
	c.Interval = time.Hour
	return c
}

func TestSchemaDeclParses(t *testing.T) {
	s, err := types.ParseSchema(SchemaDecl)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 10 {
		t.Fatalf("schema len = %d", s.Len())
	}
	for i, name := range Columns {
		if s.Columns[i].Name != name {
			t.Errorf("col %d = %q, want %q", i, s.Columns[i].Name, name)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	c := smallConfig()
	var rows [][]string
	err := c.Generate(func(fields []string) error {
		cp := make([]string, len(fields))
		copy(cp, fields)
		rows = append(rows, cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(rows)) != c.Rows() {
		t.Fatalf("rows = %d, want %d", len(rows), c.Rows())
	}
	if c.ReadingsPerMeter() != 24 {
		t.Fatalf("readings = %d", c.ReadingsPerMeter())
	}
	// First block is reading 0 for all meters, time-major.
	if rows[0][0] != "V000000" || rows[4][0] != "V000004" {
		t.Errorf("vid order: %v %v", rows[0][0], rows[4][0])
	}
	if rows[0][1] != "2015-01-01 00:00:00" {
		t.Errorf("date = %q", rows[0][1])
	}
	if rows[5][1] != "2015-01-01 01:00:00" {
		t.Errorf("second reading date = %q", rows[5][1])
	}
	for _, r := range rows {
		if len(r) != 10 {
			t.Fatalf("row width = %d: %v", len(r), r)
		}
	}
}

func TestDeterminism(t *testing.T) {
	c := smallConfig()
	var a, b bytes.Buffer
	if _, err := c.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same config produced different data")
	}
	c2 := c
	c2.Seed = 99
	var d bytes.Buffer
	if _, err := c2.WriteCSV(&d); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), d.Bytes()) {
		t.Error("different seeds produced identical data")
	}
}

func TestCumulativeCounters(t *testing.T) {
	c := smallConfig()
	last := map[string]float64{}
	err := c.Generate(func(f []string) error {
		vid := f[0]
		var idx float64
		if _, err := parseFloat(f[2], &idx); err != nil {
			t.Fatalf("bad index %q", f[2])
		}
		if prev, ok := last[vid]; ok && idx < prev {
			t.Fatalf("index decreased for %s: %v -> %v", vid, prev, idx)
		}
		last[vid] = idx
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func parseFloat(s string, out *float64) (int, error) {
	var f float64
	n, err := sscanFloat(s, &f)
	*out = f
	return n, err
}

func sscanFloat(s string, f *float64) (int, error) {
	v := types.Coerce(s, types.Float)
	if v.IsNull() {
		return 0, errBadFloat(s)
	}
	*f = v.F
	return 1, nil
}

type errBadFloat string

func (e errBadFloat) Error() string { return "bad float: " + string(e) }

func TestWriteCSVByteCount(t *testing.T) {
	c := smallConfig()
	c.Header = true
	var buf bytes.Buffer
	n, err := c.WriteCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("reported %d bytes, wrote %d", n, buf.Len())
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if int64(len(lines)) != c.Rows()+1 {
		t.Errorf("lines = %d, want %d", len(lines), c.Rows()+1)
	}
	if lines[0] != strings.Join(Columns, ",") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{},
		{Meters: 1, Days: 1, Interval: time.Minute},                     // zero start
		{Meters: 0, Days: 1, Interval: time.Minute, Start: time.Now()},  // no meters
		{Meters: 1, Days: 0, Interval: time.Minute, Start: time.Now()},  // no days
		{Meters: 1, Days: 1, Interval: -time.Minute, Start: time.Now()}, // bad interval
	}
	for i, c := range bad {
		if err := c.Generate(func([]string) error { return nil }); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}

func TestDirtyFraction(t *testing.T) {
	c := smallConfig()
	c.DirtyFraction = 0.3
	dirty, total := 0, 0
	err := c.Generate(func(f []string) error {
		total++
		if len(f) != 10 || f[0] == "" || f[1] == "" || strings.TrimSpace(f[0]) != f[0] {
			dirty++
			return nil
		}
		for _, v := range f {
			if strings.TrimSpace(v) != v {
				dirty++
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(dirty) / float64(total)
	if frac < 0.1 || frac > 0.5 {
		t.Errorf("dirty fraction = %v (%d/%d), want near 0.3", frac, dirty, total)
	}
}

func TestRowSelectivityPredicate(t *testing.T) {
	c := DefaultConfig()
	c.Meters = 1000
	bound := c.RowSelectivityPredicate(0.25)
	if bound != "V000250" {
		t.Errorf("bound = %q", bound)
	}
	if c.RowSelectivityPredicate(-1) != "V000000" {
		t.Error("clamp low")
	}
	if c.RowSelectivityPredicate(2) != "V001000" {
		t.Error("clamp high")
	}
	// The predicate actually selects that fraction of generated rows.
	small := smallConfig()
	small.Meters = 10
	bound = small.RowSelectivityPredicate(0.4)
	kept, total := 0, 0
	_ = small.Generate(func(f []string) error {
		total++
		if f[0] < bound {
			kept++
		}
		return nil
	})
	got := float64(kept) / float64(total)
	if got < 0.39 || got > 0.41 {
		t.Errorf("selected fraction = %v, want 0.4", got)
	}
}

func TestColumnSubset(t *testing.T) {
	cols, frac := ColumnSubset(0.5)
	if len(cols) == 0 || len(cols) >= 10 {
		t.Fatalf("cols = %v", cols)
	}
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("achieved frac = %v", frac)
	}
	all, f := ColumnSubset(1.0)
	if len(all) != 10 || f != 1.0 {
		t.Errorf("full subset = %v %v", all, f)
	}
	one, _ := ColumnSubset(0)
	if len(one) != 1 {
		t.Errorf("min subset = %v", one)
	}
}

func TestVIDOrdering(t *testing.T) {
	if !(VID(9) < VID(10) && VID(99) < VID(100)) {
		t.Error("VID lexicographic order broken")
	}
}

func TestCitiesCoverQueryValues(t *testing.T) {
	var hasRotterdam, hasFRA, hasU bool
	for _, c := range Cities {
		if c.Name == "Rotterdam" {
			hasRotterdam = true
		}
		if c.State == "FRA" {
			hasFRA = true
		}
		if strings.HasPrefix(c.State, "U") {
			hasU = true
		}
	}
	if !hasRotterdam || !hasFRA || !hasU {
		t.Errorf("city list missing Table I values: rotterdam=%v fra=%v u=%v", hasRotterdam, hasFRA, hasU)
	}
}
