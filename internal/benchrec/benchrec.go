// Package benchrec records the repository's performance trajectory: it runs
// Go benchmarks programmatically (testing.Benchmark), captures their headline
// numbers — ns/op, bytes/s, allocs/op, B/op — together with host and commit
// metadata into a versioned JSON schema, and compares a candidate recording
// against a committed baseline with a tolerance.
//
// Each recording is one point of the trajectory, written as BENCH_<n>.json at
// the repository root by `scoop-bench -record`. Committing the file alongside
// the change it measures turns performance claims ("the zero-alloc CSV path
// is 1.3x faster") into diffable artifacts the same way the determinism
// manifest turns the fallback assumption into a checked file: the next PR's
// recording either confirms the number or fails the comparison.
package benchrec

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// SchemaVersion is bumped on any incompatible change to the Record layout.
// Compare refuses to diff records of different versions: a schema mismatch is
// a hard failure, never a silently-empty comparison.
const SchemaVersion = 1

// Benchmark is one recordable benchmark: a conventional testing benchmark
// function under a stable name. Names are the comparison key across
// recordings, so renaming one breaks the trajectory on purpose.
type Benchmark struct {
	Name string
	F    func(b *testing.B)
}

// Result is the recorded outcome of one benchmark across all repeats.
type Result struct {
	Name string `json:"name"`
	// N is the iteration count of the best repeat.
	N int `json:"n"`
	// NsPerOp is the best (minimum) across repeats — the least-noise
	// estimate, as benchstat uses. NsPerOpRuns holds every repeat so the
	// recording carries its own variance.
	NsPerOp     float64   `json:"ns_per_op"`
	NsPerOpRuns []float64 `json:"ns_per_op_runs,omitempty"`
	// BytesPerSec is derived from the best repeat; 0 when the benchmark does
	// not call b.SetBytes.
	BytesPerSec float64 `json:"bytes_per_sec,omitempty"`
	// AllocsPerOp and BytesPerOp are the worst (maximum) across repeats:
	// allocation counts are near-deterministic, so any repeat observing an
	// allocation means the path allocates.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	Repeats     int   `json:"repeats"`
}

// Host describes the machine a record was captured on — enough to judge
// whether two records are comparable at all.
type Host struct {
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"go_version"`
}

// Record is one point of the benchmark trajectory.
type Record struct {
	SchemaVersion int    `json:"schema_version"`
	Seq           int    `json:"seq"`
	RecordedAt    string `json:"recorded_at"`
	// Commit is the HEAD commit the record was captured at ("" when the
	// repository state is unavailable); Dirty marks uncommitted changes —
	// expected for the "before" point of an optimization PR, whose delta is
	// exactly the uncommitted work.
	Commit    string   `json:"commit,omitempty"`
	Dirty     bool     `json:"dirty,omitempty"`
	Host      Host     `json:"host"`
	BenchTime string   `json:"bench_time,omitempty"`
	Results   []Result `json:"results"`
}

// Run executes every benchmark in the suite repeats times and aggregates the
// outcomes. A repeats value below 1 is treated as 1.
func Run(suite []Benchmark, repeats int) []Result {
	if repeats < 1 {
		repeats = 1
	}
	out := make([]Result, 0, len(suite))
	for _, bm := range suite {
		res := Result{Name: bm.Name, Repeats: repeats}
		for i := 0; i < repeats; i++ {
			r := testing.Benchmark(bm.F)
			if r.N <= 0 {
				continue
			}
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			res.NsPerOpRuns = append(res.NsPerOpRuns, ns)
			if res.N == 0 || ns < res.NsPerOp {
				res.NsPerOp = ns
				res.N = r.N
				if r.Bytes > 0 && r.T > 0 {
					res.BytesPerSec = float64(r.Bytes) * float64(r.N) / r.T.Seconds()
				}
			}
			if a := r.AllocsPerOp(); a > res.AllocsPerOp {
				res.AllocsPerOp = a
			}
			if b := r.AllocedBytesPerOp(); b > res.BytesPerOp {
				res.BytesPerOp = b
			}
		}
		out = append(out, res)
	}
	return out
}

// New assembles a Record around results, stamping schema version, sequence
// number, capture time, host, and (best-effort) git commit state. dir is the
// repository directory the git metadata is read from.
func New(dir string, seq int, benchTime string, results []Result) *Record {
	rec := &Record{
		SchemaVersion: SchemaVersion,
		Seq:           seq,
		RecordedAt:    time.Now().UTC().Format(time.RFC3339),
		Host: Host{
			OS:        runtime.GOOS,
			Arch:      runtime.GOARCH,
			CPUs:      runtime.NumCPU(),
			GoVersion: runtime.Version(),
		},
		BenchTime: benchTime,
		Results:   results,
	}
	rec.Commit, rec.Dirty = gitState(dir)
	return rec
}

// gitState reports the HEAD commit and whether the tree has uncommitted
// changes; both best-effort ("" / false when git is unavailable).
func gitState(dir string) (string, bool) {
	head := exec.Command("git", "rev-parse", "HEAD")
	head.Dir = dir
	out, err := head.Output()
	if err != nil {
		return "", false
	}
	commit := strings.TrimSpace(string(out))
	status := exec.Command("git", "status", "--porcelain")
	status.Dir = dir
	st, err := status.Output()
	if err != nil {
		return commit, false
	}
	return commit, len(strings.TrimSpace(string(st))) > 0
}

// WriteFile writes the record as indented JSON.
//
//lint:ignore ctxpropagate CLI-local file write, no caller deadline exists
func (r *Record) WriteFile(path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("benchrec: encode: %w", err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("benchrec: write %s: %w", path, err)
	}
	return nil
}

// ReadFile loads a record, rejecting unknown schema versions.
//
//lint:ignore ctxpropagate CLI-local file read, no caller deadline exists
func ReadFile(path string) (*Record, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchrec: read %s: %w", path, err)
	}
	var rec Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, fmt.Errorf("benchrec: parse %s: %w", path, err)
	}
	if rec.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("benchrec: %s has schema version %d, this binary speaks %d",
			path, rec.SchemaVersion, SchemaVersion)
	}
	return &rec, nil
}

var seqPattern = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// NextSeq scans dir for BENCH_<n>.json trajectory files and returns the next
// free sequence number together with the path of the latest existing record
// ("" when the trajectory is empty).
//
//lint:ignore ctxpropagate CLI-local directory scan, no caller deadline exists
func NextSeq(dir string) (int, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, "", fmt.Errorf("benchrec: scan %s: %w", dir, err)
	}
	maxSeq, latest := 0, ""
	for _, e := range entries {
		m := seqPattern.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil || n <= maxSeq {
			continue
		}
		maxSeq = n
		latest = filepath.Join(dir, e.Name())
	}
	return maxSeq + 1, latest, nil
}

// Regression is one benchmark metric that moved past tolerance between a
// baseline and a candidate record.
type Regression struct {
	Name      string  `json:"name"`
	Metric    string  `json:"metric"` // "ns/op", "allocs/op", or "missing"
	Baseline  float64 `json:"baseline"`
	Candidate float64 `json:"candidate"`
}

func (r Regression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s: present in baseline, missing from candidate", r.Name)
	}
	return fmt.Sprintf("%s: %s %.4g -> %.4g", r.Name, r.Metric, r.Baseline, r.Candidate)
}

// Compare diffs candidate against baseline and returns every regression
// beyond tolerancePct. Rules:
//
//   - a benchmark present in the baseline but absent from the candidate is a
//     regression (the trajectory must not silently lose coverage);
//   - ns/op regresses when candidate > baseline * (1 + tolerance);
//   - allocs/op regresses when candidate > baseline * (1 + tolerance), and a
//     zero-alloc baseline is a hard property: ANY candidate allocation
//     regresses it, tolerance notwithstanding.
//
// Benchmarks only in the candidate are new coverage, never a regression.
func Compare(baseline, candidate *Record, tolerancePct float64) ([]Regression, error) {
	if baseline == nil || candidate == nil {
		return nil, fmt.Errorf("benchrec: compare needs two records")
	}
	if baseline.SchemaVersion != candidate.SchemaVersion {
		return nil, fmt.Errorf("benchrec: schema mismatch: baseline v%d vs candidate v%d",
			baseline.SchemaVersion, candidate.SchemaVersion)
	}
	if tolerancePct < 0 {
		return nil, fmt.Errorf("benchrec: negative tolerance %v", tolerancePct)
	}
	factor := 1 + tolerancePct/100
	cand := make(map[string]Result, len(candidate.Results))
	for _, r := range candidate.Results {
		cand[r.Name] = r
	}
	var regs []Regression
	for _, base := range baseline.Results {
		c, ok := cand[base.Name]
		if !ok {
			regs = append(regs, Regression{Name: base.Name, Metric: "missing"})
			continue
		}
		if base.NsPerOp > 0 && c.NsPerOp > base.NsPerOp*factor {
			regs = append(regs, Regression{
				Name: base.Name, Metric: "ns/op",
				Baseline: base.NsPerOp, Candidate: c.NsPerOp,
			})
		}
		allocRegressed := false
		if base.AllocsPerOp == 0 {
			allocRegressed = c.AllocsPerOp > 0
		} else {
			allocRegressed = float64(c.AllocsPerOp) > float64(base.AllocsPerOp)*factor
		}
		if allocRegressed {
			regs = append(regs, Regression{
				Name: base.Name, Metric: "allocs/op",
				Baseline: float64(base.AllocsPerOp), Candidate: float64(c.AllocsPerOp),
			})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Name != regs[j].Name {
			return regs[i].Name < regs[j].Name
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs, nil
}
