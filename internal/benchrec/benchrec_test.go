package benchrec

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunCapturesMetrics(t *testing.T) {
	if testing.Short() {
		// testing.Benchmark calibrates to a full benchtime; keep the race
		// gate fast and exercise this in the default-tier run.
		t.Skip("benchmark calibration is slow under -short")
	}
	var sink []byte
	suite := []Benchmark{{Name: "BenchmarkAlloc", F: func(b *testing.B) {
		b.SetBytes(64)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink = make([]byte, 64)
		}
	}}}
	defer func() { _ = sink }()
	results := Run(suite, 2)
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkAlloc" || r.N == 0 || r.NsPerOp <= 0 {
		t.Fatalf("bad result: %+v", r)
	}
	if r.AllocsPerOp != 1 {
		t.Errorf("allocs/op = %d, want 1", r.AllocsPerOp)
	}
	if r.BytesPerSec <= 0 {
		t.Errorf("bytes/s = %v, want > 0 (SetBytes was called)", r.BytesPerSec)
	}
	if len(r.NsPerOpRuns) != 2 || r.Repeats != 2 {
		t.Errorf("variance capture: runs=%v repeats=%d", r.NsPerOpRuns, r.Repeats)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rec := New(dir, 3, "1s", []Result{{Name: "BenchmarkX", N: 10, NsPerOp: 123.4, AllocsPerOp: 2}})
	if rec.SchemaVersion != SchemaVersion || rec.Host.CPUs <= 0 || rec.Host.GoVersion == "" {
		t.Fatalf("metadata missing: %+v", rec)
	}
	path := filepath.Join(dir, "BENCH_3.json")
	if err := rec.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 3 || len(got.Results) != 1 || got.Results[0].NsPerOp != 123.4 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestReadFileRejectsSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_1.json")
	if err := os.WriteFile(path, []byte(`{"schema_version": 999, "seq": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("schema version 999 should be rejected")
	}
}

func TestNextSeq(t *testing.T) {
	dir := t.TempDir()
	seq, latest, err := NextSeq(dir)
	if err != nil || seq != 1 || latest != "" {
		t.Fatalf("empty dir: seq=%d latest=%q err=%v", seq, latest, err)
	}
	for _, name := range []string{"BENCH_1.json", "BENCH_2.json", "BENCH_10.json", "BENCH_x.json", "notbench.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	seq, latest, err = NextSeq(dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 11 {
		t.Errorf("seq = %d, want 11", seq)
	}
	if filepath.Base(latest) != "BENCH_10.json" {
		t.Errorf("latest = %q", latest)
	}
}

func rec(results ...Result) *Record {
	return &Record{SchemaVersion: SchemaVersion, Results: results}
}

func TestCompareNoRegression(t *testing.T) {
	base := rec(Result{Name: "A", NsPerOp: 100, AllocsPerOp: 5})
	cand := rec(Result{Name: "A", NsPerOp: 105, AllocsPerOp: 5}, Result{Name: "B", NsPerOp: 1})
	regs, err := Compare(base, cand, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("regs = %v", regs)
	}
}

func TestCompareFlagsInjectedRegression(t *testing.T) {
	base := rec(
		Result{Name: "A", NsPerOp: 100, AllocsPerOp: 5},
		Result{Name: "B", NsPerOp: 100, AllocsPerOp: 0},
		Result{Name: "C", NsPerOp: 100},
	)
	// Synthetic regressions: A is 2x slower, B (a zero-alloc baseline) now
	// allocates, C vanished from the candidate.
	cand := rec(
		Result{Name: "A", NsPerOp: 200, AllocsPerOp: 5},
		Result{Name: "B", NsPerOp: 100, AllocsPerOp: 1},
	)
	regs, err := Compare(base, cand, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 3 {
		t.Fatalf("regs = %v, want 3", regs)
	}
	byKey := map[string]string{}
	for _, r := range regs {
		byKey[r.Name] = r.Metric
	}
	if byKey["A"] != "ns/op" || byKey["B"] != "allocs/op" || byKey["C"] != "missing" {
		t.Errorf("regs = %v", regs)
	}
}

func TestCompareToleranceAndZeroAllocHardness(t *testing.T) {
	base := rec(Result{Name: "A", NsPerOp: 100, AllocsPerOp: 0})
	// Inside tolerance on time, but any alloc on a zero-alloc baseline fails
	// regardless of tolerance.
	cand := rec(Result{Name: "A", NsPerOp: 120, AllocsPerOp: 1})
	regs, err := Compare(base, cand, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("regs = %v", regs)
	}
}

func TestCompareSchemaMismatch(t *testing.T) {
	base := rec()
	cand := rec()
	cand.SchemaVersion = SchemaVersion + 1
	if _, err := Compare(base, cand, 10); err == nil {
		t.Fatal("schema mismatch should error")
	}
	if _, err := Compare(base, rec(), -1); err == nil {
		t.Fatal("negative tolerance should error")
	}
}

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) == 0 {
		t.Fatal("empty suite")
	}
	names := map[string]bool{}
	for _, bm := range suite {
		if bm.Name == "" || bm.F == nil {
			t.Fatalf("malformed benchmark: %+v", bm)
		}
		if names[bm.Name] {
			t.Fatalf("duplicate name %q", bm.Name)
		}
		names[bm.Name] = true
	}
	for _, want := range []string{"BenchmarkCSVFilterPassthrough", "BenchmarkCSVFilterPerRecord"} {
		if !names[want] {
			t.Errorf("suite missing %s", want)
		}
	}
}
