package benchrec

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"

	"scoop/internal/csvio"
	"scoop/internal/objectstore"
	"scoop/internal/pushdown"
	"scoop/internal/storlet"
	"scoop/internal/storlet/csvfilter"
)

// The recorded suite covers the ingestion hot path the paper's Fig. 5/6
// speedups rest on: the CSV storlet under the four selectivity regimes the
// root benchmarks ablate, plus per-record steady-state costs of the csvio
// primitives underneath it. Every benchmark here goes through public API
// only, so its body — and therefore its trajectory — stays comparable across
// internal rewrites of the hot path.

// suiteSchema mirrors the GridPocket meter-reading schema used everywhere
// else in the evaluation.
const suiteSchema = "vid string, date string, index double, sumHC double, sumHP double, type string, city string, state string, lat double, long double"

// suiteRecord is one fixed-width-ish meter record; suiteData repeats it (with
// varying vid/date) into a ~1 MB block.
var suiteData = func() []byte {
	var buf bytes.Buffer
	for i := 0; buf.Len() < 1<<20; i++ {
		fmt.Fprintf(&buf, "V%06d,2015-01-%02d 00:10:00,%d.25,%d.50,%d.75,elec,Rotterdam,NED,51.9225,4.4792\n",
			i%1000, 1+i%28, i, i/2, i/3)
	}
	return buf.Bytes()
}()

// perRecord is the exact record cycled through the per-record steady-state
// benchmarks (trailing newline included in its length).
var perRecord = []byte("V000042,2015-01-17 00:10:00,1042.25,521.50,347.75,elec,Rotterdam,NED,51.9225,4.4792\n")

// repeatReader endlessly cycles a byte block — an unbounded object stream
// for steady-state benchmarks, with no per-read allocation.
type repeatReader struct {
	data []byte
	off  int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	n := copy(p, r.data[r.off:])
	r.off = (r.off + n) % len(r.data)
	return n, nil
}

// cacheBenchTask is the filtered-GET chain the result-cache pair measures:
// a selective projection, so the cold path pays the full 1 MB filter
// execution and the cached path serves the small result body.
var cacheBenchTask = &pushdown.Task{
	Filter: "csv", Schema: suiteSchema,
	Columns:    []string{"vid", "index"},
	Predicates: []pushdown.Predicate{{Column: "city", Op: pushdown.OpLike, Value: "Rot%"}},
}

// newCacheBenchStore stands up the smallest in-process cluster that serves a
// filtered GET, with the result cache sized by cacheBytes (0 disables it),
// and uploads the 1 MB suite block as one object.
func newCacheBenchStore(b *testing.B, cacheBytes int64) *objectstore.Cluster {
	b.Helper()
	cluster, err := objectstore.NewCluster(objectstore.ClusterConfig{
		Proxies: 1, ObjectNodes: 2, DisksPerNode: 1, Replicas: 2, PartPower: 4,
		ResultCacheBytes: cacheBytes,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := cluster.Engine().Register(csvfilter.New()); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	client := cluster.Client()
	if err := client.CreateContainer(ctx, "gp", "meters", nil); err != nil {
		b.Fatal(err)
	}
	if _, err := client.PutObject(ctx, "gp", "meters", "block.csv", bytes.NewReader(suiteData), nil); err != nil {
		b.Fatal(err)
	}
	return cluster
}

// cacheBenchGet is one dashboard request: a filtered GET of the block,
// drained and closed.
func cacheBenchGet(b *testing.B, client objectstore.Client) {
	rc, _, err := client.GetObject(context.Background(), "gp", "meters", "block.csv",
		objectstore.GetOptions{Pushdown: []*pushdown.Task{cacheBenchTask}})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, rc); err != nil {
		b.Fatal(err)
	}
	rc.Close()
}

// invokeSuiteFilter runs the CSV storlet over the 1 MB block once per
// iteration.
func invokeSuiteFilter(b *testing.B, task *pushdown.Task) {
	f := csvfilter.New()
	ctx := &storlet.Context{
		Task:       task,
		RangeEnd:   int64(len(suiteData)),
		ObjectSize: int64(len(suiteData)),
	}
	b.SetBytes(int64(len(suiteData)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Invoke(ctx, bytes.NewReader(suiteData), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Suite returns the recorded hot-path benchmarks in trajectory order.
func Suite() []Benchmark {
	return []Benchmark{
		{Name: "BenchmarkCSVFilterPassthrough", F: func(b *testing.B) {
			invokeSuiteFilter(b, &pushdown.Task{Filter: "csv", Schema: suiteSchema})
		}},
		{Name: "BenchmarkCSVFilterRowSelectivity", F: func(b *testing.B) {
			invokeSuiteFilter(b, &pushdown.Task{
				Filter: "csv", Schema: suiteSchema,
				Predicates: []pushdown.Predicate{{Column: "vid", Op: pushdown.OpEq, Value: "V000007"}},
			})
		}},
		{Name: "BenchmarkCSVFilterNumericSelectivity", F: func(b *testing.B) {
			invokeSuiteFilter(b, &pushdown.Task{
				Filter: "csv", Schema: suiteSchema,
				Predicates: []pushdown.Predicate{{Column: "index", Op: pushdown.OpGt, Value: "5000", Numeric: true}},
			})
		}},
		{Name: "BenchmarkCSVFilterColumnSelectivity", F: func(b *testing.B) {
			invokeSuiteFilter(b, &pushdown.Task{
				Filter: "csv", Schema: suiteSchema,
				Columns: []string{"vid", "index"},
			})
		}},
		{Name: "BenchmarkCSVFilterMixed", F: func(b *testing.B) {
			invokeSuiteFilter(b, &pushdown.Task{
				Filter: "csv", Schema: suiteSchema,
				Columns:    []string{"vid", "index"},
				Predicates: []pushdown.Predicate{{Column: "city", Op: pushdown.OpLike, Value: "Rot%"}},
			})
		}},
		// The acceptance metric for "zero-allocation": one op = one record
		// through a single long-lived invocation, so allocs/op is literally
		// allocations per record in steady state (the per-invocation setup
		// amortizes to zero over b.N records).
		{Name: "BenchmarkCSVFilterPerRecord", F: func(b *testing.B) {
			f := csvfilter.New()
			end := int64(b.N) * int64(len(perRecord))
			ctx := &storlet.Context{
				Task:       &pushdown.Task{Filter: "csv", Schema: suiteSchema},
				RangeEnd:   end,
				ObjectSize: end,
			}
			b.SetBytes(int64(len(perRecord)))
			b.ReportAllocs()
			b.ResetTimer()
			if err := f.Invoke(ctx, &repeatReader{data: perRecord}, io.Discard); err != nil {
				b.Fatal(err)
			}
		}},
		{Name: "BenchmarkCSVFilterSelectPerRecord", F: func(b *testing.B) {
			f := csvfilter.New()
			end := int64(b.N) * int64(len(perRecord))
			ctx := &storlet.Context{
				Task: &pushdown.Task{
					Filter: "csv", Schema: suiteSchema,
					Columns: []string{"vid", "index"},
					Predicates: []pushdown.Predicate{
						{Column: "state", Op: pushdown.OpEq, Value: "NED"},
						{Column: "index", Op: pushdown.OpGt, Value: "5", Numeric: true},
					},
				},
				RangeEnd:   end,
				ObjectSize: end,
			}
			b.SetBytes(int64(len(perRecord)))
			b.ReportAllocs()
			b.ResetTimer()
			if err := f.Invoke(ctx, &repeatReader{data: perRecord}, io.Discard); err != nil {
				b.Fatal(err)
			}
		}},
		{Name: "BenchmarkRangeReaderPerRecord", F: func(b *testing.B) {
			rr := csvio.NewRangeReader(&repeatReader{data: perRecord}, 0, int64(1)<<62)
			b.SetBytes(int64(len(perRecord)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rr.Next(); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "BenchmarkFieldsPerRecord", F: func(b *testing.B) {
			rec := bytes.TrimRight(perRecord, "\n")
			var fields [][]byte
			b.SetBytes(int64(len(perRecord)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fields = csvio.Fields(rec, ',', fields)
				if len(fields) != 10 {
					b.Fatalf("fields = %d", len(fields))
				}
			}
		}},
		{Name: "BenchmarkWriteRecordPerRecord", F: func(b *testing.B) {
			fields := csvio.Fields(bytes.TrimRight(perRecord, "\n"), ',', nil)
			b.SetBytes(int64(len(perRecord)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := csvio.WriteRecord(io.Discard, fields, ','); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// The result-cache pair: the same filtered GET against the same
		// object, first with the cache disabled (every op executes the
		// filter over the full block — the repeated-dashboard worst case),
		// then with the cache enabled and a 99%-repeat mix (one entry
		// invalidation per hundred ops re-fills it, the rest are hits).
		// Their bytes/s ratio is the recorded repeat-workload speedup.
		{Name: "BenchmarkResultCacheColdMiss", F: func(b *testing.B) {
			cluster := newCacheBenchStore(b, 0)
			client := cluster.Client()
			b.SetBytes(int64(len(suiteData)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cacheBenchGet(b, client)
			}
		}},
		{Name: "BenchmarkResultCacheDashboard99", F: func(b *testing.B) {
			cluster := newCacheBenchStore(b, 256<<20)
			client := cluster.Client()
			cacheBenchGet(b, client) // warm the entry
			b.SetBytes(int64(len(suiteData)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%100 == 99 {
					cluster.ResultCache().InvalidatePath("/gp/meters/block.csv")
				}
				cacheBenchGet(b, client)
			}
		}},
	}
}
