package connector

import (
	"context"
	"errors"
	"fmt"
	"io"

	"scoop/internal/detmanifest"
	"scoop/internal/metrics"
	"scoop/internal/objectstore"
	"scoop/internal/pushdown"
	"scoop/internal/storlet"
)

// Compute-side fallback: the paper's baseline path, made automatic. When the
// store refuses a pushdown request (503 + reason header: filter not
// deployed, breaker open, engine overloaded, container policy) or a filter
// dies mid-stream (error trailer), the connector re-issues a *plain* GET and
// evaluates the same task chain locally on a compute-side storlet engine.
// The query still completes with identical bytes — the degradation cost is
// ingest volume (whole split instead of filtered output), which is exactly
// what the Fallbacks/FallbackBytes counters and the
// "connector.pushdown.fallbacks" metric expose for EXPERIMENTS.

// EnableFallback arms the connector's compute-side degradation path. engine
// must have the same filters registered as the store's engine (core wires
// both from the same registration list); reg (nil-safe) receives the
// "connector.pushdown.fallbacks" counter.
//
// Arming is gated per request by the determinism manifest: falling back —
// especially mid-stream, where the delivered prefix of the re-run is
// discarded — is only sound when every filter in the chain provably maps
// identical inputs to identical bytes. Chains containing an unproven filter
// behave as if NoFallback were set and surface the store's typed error.
func (c *Connector) EnableFallback(engine *storlet.Engine, reg *metrics.Registry) {
	c.fbEngine = engine
	c.fbMetrics = reg
	if c.determinism == nil {
		c.determinism = detmanifest.IsProven
	}
}

// SetDeterminism overrides the proof source consulted by the fallback gate
// (default: the generated detmanifest). Tests registering ad-hoc filters use
// it to vouch for — or disavow — their fixtures.
func (c *Connector) SetDeterminism(proven func(name string) bool) {
	c.determinism = proven
}

// chainProven reports whether every filter in the task chain is proven
// deterministic, i.e. whether compute-side replay is sound.
func (c *Connector) chainProven(tasks []*pushdown.Task) bool {
	if c.determinism == nil {
		return false
	}
	for _, t := range tasks {
		if !c.determinism(t.Filter) {
			return false
		}
	}
	return true
}

// degradable reports whether a pushdown failure should be degraded to a
// plain GET + local evaluation rather than surfaced.
func degradable(err error) bool {
	return objectstore.IsPushdownUnavailable(err) || objectstore.IsFilterFailure(err)
}

// openFallback opens the split plain and replays the task chain on the local
// engine, discarding the first skip bytes of filter output (already
// delivered to the caller before a mid-stream failure; filters are
// deterministic, so the re-run's prefix is byte-identical). cause is the
// pushdown failure being degraded.
func (c *Connector) openFallback(ctx context.Context, split Split, tasks []*pushdown.Task, skip int64, cause error) (io.ReadCloser, error) {
	// Plain GET from the split start to the object's END, mirroring the
	// object server's fetch for filtered requests: the record straddling the
	// split boundary must be completable, and the chain's RangeEnd stops it
	// just past the boundary.
	raw, info, err := c.client.GetObject(ctx, split.Account, split.Container, split.Object,
		objectstore.GetOptions{RangeStart: split.Start})
	if err != nil {
		return nil, fmt.Errorf("connector: fallback open %s: %w (degraded from: %w)", split, err, cause)
	}
	c.requests.Add(1)
	size := split.ObjectSize
	if size <= 0 {
		// Ranged HTTP responses report the range length, not the object
		// size; reconstruct the absolute size from the offset.
		size = split.Start + info.Size
	}
	end := split.End
	if end <= 0 || end > size {
		end = size
	}
	sctx := &storlet.Context{
		Ctx:        ctx,
		RangeStart: split.Start,
		RangeEnd:   end,
		ObjectSize: size,
	}
	// Same execution order the store would have used: object-stage filters
	// first, then proxy-stage.
	objectStage, proxyStage := pushdown.SplitByStage(tasks)
	chain := make([]*pushdown.Task, 0, len(tasks))
	chain = append(chain, objectStage...)
	chain = append(chain, proxyStage...)
	// Raw bytes count as ingested (that IS the degradation cost) and as
	// fallback bytes (so EXPERIMENTS can split the two).
	in := &counted{rc: &counted{rc: raw, n: &c.bytesIngested}, n: &c.bytesFallback}
	out, err := c.fbEngine.RunChain(sctx, chain, in)
	if err != nil {
		raw.Close()
		return nil, fmt.Errorf("connector: fallback filter %s: %w (degraded from: %w)", split, err, cause)
	}
	if skip > 0 {
		if _, err := io.CopyN(io.Discard, out, skip); err != nil {
			out.Close()
			raw.Close()
			return nil, fmt.Errorf("connector: fallback resync %s at %d: %w (degraded from: %w)", split, skip, err, cause)
		}
	}
	c.fallbacks.Add(1)
	c.fbMetrics.Counter("connector.pushdown.fallbacks").Inc()
	// RunChain never closes its input; tie the raw stream's lifetime to the
	// filtered one.
	return &fallbackStream{out: out, raw: raw}, nil
}

// fallbackStream closes both the filter output and the raw GET under it.
type fallbackStream struct {
	out io.ReadCloser
	raw io.ReadCloser
}

func (f *fallbackStream) Read(p []byte) (int, error) { return f.out.Read(p) }

func (f *fallbackStream) Close() error {
	err := f.out.Close()
	if cerr := f.raw.Close(); err == nil {
		err = cerr
	}
	return err
}

// fallbackReader watches a pushdown stream for degradable failures. On one,
// it swaps in a compute-side fallback stream resynced past the bytes already
// delivered, once; any further failure is surfaced.
type fallbackReader struct {
	c         *Connector
	ctx       context.Context
	split     Split
	tasks     []*pushdown.Task
	rc        io.ReadCloser
	delivered int64
	fellBack  bool
	err       error // sticky terminal error
}

func (f *fallbackReader) Read(p []byte) (int, error) {
	if f.err != nil {
		return 0, f.err
	}
	for {
		n, err := f.rc.Read(p)
		f.delivered += int64(n)
		if err == nil || errors.Is(err, io.EOF) {
			return n, err
		}
		if f.fellBack || !degradable(err) {
			f.err = err
			if n > 0 {
				return n, nil
			}
			return 0, err
		}
		nrc, ferr := f.c.openFallback(f.ctx, f.split, f.tasks, f.delivered, err)
		if ferr != nil {
			f.err = ferr
			if n > 0 {
				return n, nil
			}
			return 0, ferr
		}
		f.rc.Close()
		f.rc = nrc
		f.fellBack = true
		if n > 0 {
			return n, nil
		}
	}
}

func (f *fallbackReader) Close() error { return f.rc.Close() }
