package connector

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"scoop/internal/metrics"
	"scoop/internal/objectstore"
	"scoop/internal/pushdown"
	"scoop/internal/storlet"
	"scoop/internal/storlet/csvfilter"
)

// bareStore builds a cluster WITHOUT registering any filters, so every
// pushdown request is refused pre-first-byte with ErrNotDeployed.
func bareStore(t *testing.T) objectstore.Client {
	t.Helper()
	c, err := objectstore.NewCluster(objectstore.DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	cl := c.Client()
	if err := cl.CreateContainer(context.Background(), "gp", "meters", nil); err != nil {
		t.Fatal(err)
	}
	return cl
}

// fbEngine builds a compute-side engine with the given filters registered.
func fbEngine(t *testing.T, filters ...storlet.Filter) *storlet.Engine {
	t.Helper()
	e := storlet.NewEngine(storlet.Limits{})
	for _, f := range filters {
		if err := e.Register(f); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func wholeSplit(object string, size int64) Split {
	return Split{Account: "gp", Container: "meters", Object: object, Start: 0, End: size, ObjectSize: size}
}

var fraTask = &pushdown.Task{
	Filter:     csvfilter.FilterName,
	Schema:     "vid string, date string, index double, city string, state string",
	Columns:    []string{"vid"},
	Predicates: []pushdown.Predicate{{Column: "state", Op: pushdown.OpEq, Value: "FRA"}},
}

// Pre-flight degradation: the store refuses the pushdown (filter never
// deployed there), and the connector silently re-runs the chain on its local
// engine over a plain GET. The caller sees identical filtered bytes.
func TestFallbackPreFlightNotDeployed(t *testing.T) {
	cl := bareStore(t)
	conn := New(cl, "gp", 0)
	reg := metrics.NewRegistry()
	conn.EnableFallback(fbEngine(t, csvfilter.New()), reg)
	if _, err := conn.Upload(context.Background(), "meters", "jan.csv", strings.NewReader(meterCSV)); err != nil {
		t.Fatal(err)
	}
	rc, err := conn.Open(context.Background(), wholeSplit("jan.csv", int64(len(meterCSV))), []*pushdown.Task{fraTask})
	if err != nil {
		t.Fatalf("fallback did not absorb the refusal: %v", err)
	}
	b, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(b)); got != "V2" {
		t.Errorf("fallback output = %q, want V2", got)
	}
	st := conn.Stats()
	if st.Fallbacks != 1 {
		t.Errorf("Fallbacks = %d, want 1", st.Fallbacks)
	}
	if st.FallbackBytes != int64(len(meterCSV)) {
		t.Errorf("FallbackBytes = %d, want %d (the whole raw split)", st.FallbackBytes, len(meterCSV))
	}
	if st.BytesIngested != int64(len(meterCSV)) {
		t.Errorf("BytesIngested = %d, want %d", st.BytesIngested, len(meterCSV))
	}
	if got := reg.Counter("connector.pushdown.fallbacks").Load(); got != 1 {
		t.Errorf("metric connector.pushdown.fallbacks = %d, want 1", got)
	}
}

// Mid-stream degradation: the store's filter dies after delivering a prefix.
// The connector re-runs the chain locally and resyncs past the bytes already
// delivered — filters are deterministic, so the caller's concatenated view is
// byte-identical to an unfailed run.
func TestFallbackMidStreamResync(t *testing.T) {
	want := strings.ToUpper(meterCSV)
	const brokenAt = 13 // mid-record, to prove resync is byte- not row-based

	// Store-side "up" writes a prefix of the transform, then dies.
	storeUp := storlet.FilterFunc{FilterName: "up", Fn: func(_ *storlet.Context, in io.Reader, out io.Writer) error {
		b, err := io.ReadAll(in)
		if err != nil {
			return err
		}
		if _, err := io.WriteString(out, strings.ToUpper(string(b))[:brokenAt]); err != nil {
			return err
		}
		return fmt.Errorf("store-side filter crashed")
	}}
	// Compute-side "up" is the healthy implementation.
	localUp := storlet.FilterFunc{FilterName: "up", Fn: func(_ *storlet.Context, in io.Reader, out io.Writer) error {
		b, err := io.ReadAll(in)
		if err != nil {
			return err
		}
		_, err = io.WriteString(out, strings.ToUpper(string(b)))
		return err
	}}

	c, err := objectstore.NewCluster(objectstore.DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Engine().Register(storeUp); err != nil {
		t.Fatal(err)
	}
	cl := c.Client()
	if err := cl.CreateContainer(context.Background(), "gp", "meters", nil); err != nil {
		t.Fatal(err)
	}
	conn := New(cl, "gp", 0)
	conn.EnableFallback(fbEngine(t, localUp), metrics.NewRegistry())
	// "up" is a test-local filter the manifest has never seen; vouch for it.
	conn.SetDeterminism(func(string) bool { return true })
	if _, err := conn.Upload(context.Background(), "meters", "jan.csv", strings.NewReader(meterCSV)); err != nil {
		t.Fatal(err)
	}

	rc, err := conn.Open(context.Background(), wholeSplit("jan.csv", int64(len(meterCSV))), []*pushdown.Task{{Filter: "up"}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatalf("mid-stream failure leaked to the caller: %v", err)
	}
	if string(b) != want {
		t.Fatalf("resynced stream = %q, want %q", b, want)
	}
	st := conn.Stats()
	if st.Fallbacks != 1 {
		t.Errorf("Fallbacks = %d, want 1", st.Fallbacks)
	}
	if st.FallbackBytes != int64(len(meterCSV)) {
		t.Errorf("FallbackBytes = %d, want %d", st.FallbackBytes, len(meterCSV))
	}
}

// The fallback path runs at most once per stream: a failure on the fallback
// itself surfaces instead of looping.
func TestFallbackOnlyOnce(t *testing.T) {
	crash := func(name string) storlet.FilterFunc {
		return storlet.FilterFunc{FilterName: name, Fn: func(_ *storlet.Context, _ io.Reader, out io.Writer) error {
			if _, err := io.WriteString(out, "x"); err != nil {
				return err
			}
			return fmt.Errorf("crash")
		}}
	}
	c, err := objectstore.NewCluster(objectstore.DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Engine().Register(crash("up")); err != nil {
		t.Fatal(err)
	}
	cl := c.Client()
	_ = cl.CreateContainer(context.Background(), "gp", "meters", nil)
	conn := New(cl, "gp", 0)
	conn.EnableFallback(fbEngine(t, crash("up")), nil) // nil registry: metrics are optional
	conn.SetDeterminism(func(string) bool { return true })
	if _, err := conn.Upload(context.Background(), "meters", "jan.csv", strings.NewReader(meterCSV)); err != nil {
		t.Fatal(err)
	}
	rc, err := conn.Open(context.Background(), wholeSplit("jan.csv", int64(len(meterCSV))), []*pushdown.Task{{Filter: "up"}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = io.ReadAll(rc)
	rc.Close()
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatal("second failure should surface, not loop")
	}
	if st := conn.Stats(); st.Fallbacks != 1 {
		t.Errorf("Fallbacks = %d, want exactly 1", st.Fallbacks)
	}
}

// The determinism manifest gates fallback per chain: a filter the filterdet
// analyzer has not proven deterministic (here: an ad-hoc name absent from the
// generated manifest) auto-arms NoFallback behavior — the refusal surfaces
// typed even though a fallback engine is armed — while a chain of proven
// filters on the same connector still degrades transparently.
func TestUnprovenFilterDisablesFallback(t *testing.T) {
	cl := bareStore(t)
	conn := New(cl, "gp", 0)
	shady := storlet.FilterFunc{FilterName: "shady", Fn: func(_ *storlet.Context, in io.Reader, out io.Writer) error {
		_, err := io.Copy(out, in)
		return err
	}}
	// EnableFallback defaults the gate to the generated detmanifest, which
	// knows "csv" (proven) and has never heard of "shady".
	conn.EnableFallback(fbEngine(t, csvfilter.New(), shady), metrics.NewRegistry())
	if _, err := conn.Upload(context.Background(), "meters", "jan.csv", strings.NewReader(meterCSV)); err != nil {
		t.Fatal(err)
	}
	split := wholeSplit("jan.csv", int64(len(meterCSV)))

	_, err := conn.Open(context.Background(), split, []*pushdown.Task{{Filter: "shady"}})
	if err == nil || !objectstore.IsPushdownUnavailable(err) {
		t.Fatalf("unproven filter error = %v, want pushdown-unavailable (fallback must stay disarmed)", err)
	}
	// A mixed chain is as weak as its weakest link.
	_, err = conn.Open(context.Background(), split, []*pushdown.Task{fraTask, {Filter: "shady"}})
	if err == nil || !objectstore.IsPushdownUnavailable(err) {
		t.Fatalf("mixed chain error = %v, want pushdown-unavailable", err)
	}
	if st := conn.Stats(); st.Fallbacks != 0 {
		t.Fatalf("Fallbacks = %d, want 0 for unproven chains", st.Fallbacks)
	}

	// The proven chain on the very same connector still falls back.
	rc, err := conn.Open(context.Background(), split, []*pushdown.Task{fraTask})
	if err != nil {
		t.Fatalf("proven chain should still degrade: %v", err)
	}
	b, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(b)); got != "V2" {
		t.Errorf("proven-chain fallback output = %q, want V2", got)
	}
	if st := conn.Stats(); st.Fallbacks != 1 {
		t.Errorf("Fallbacks = %d, want 1 (proven chain only)", st.Fallbacks)
	}
}

// Without EnableFallback the refusal surfaces typed, so callers that want
// the old fail-fast behavior still get it.
func TestNoFallbackSurfacesTypedError(t *testing.T) {
	cl := bareStore(t)
	conn := New(cl, "gp", 0)
	if _, err := conn.Upload(context.Background(), "meters", "jan.csv", strings.NewReader(meterCSV)); err != nil {
		t.Fatal(err)
	}
	_, err := conn.Open(context.Background(), wholeSplit("jan.csv", int64(len(meterCSV))), []*pushdown.Task{fraTask})
	if err == nil || !objectstore.IsPushdownUnavailable(err) {
		t.Fatalf("unarmed connector error = %v, want pushdown-unavailable", err)
	}
}
