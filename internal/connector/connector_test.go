package connector

import (
	"context"
	"io"
	"strings"
	"testing"

	"scoop/internal/objectstore"
	"scoop/internal/pushdown"
	"scoop/internal/storlet/csvfilter"
)

const meterCSV = "V1,2015-01-01,10.5,Rotterdam,NED\n" +
	"V2,2015-01-01,5.25,Paris,FRA\n" +
	"V3,2015-01-01,1.0,Kyiv,UKR\n"

func newStore(t *testing.T) objectstore.Client {
	t.Helper()
	c, err := objectstore.NewCluster(objectstore.DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Engine().Register(csvfilter.New()); err != nil {
		t.Fatal(err)
	}
	cl := c.Client()
	if err := cl.CreateContainer(context.Background(), "gp", "meters", nil); err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestDiscoverPartitions(t *testing.T) {
	cl := newStore(t)
	conn := New(cl, "gp", 40)
	if _, err := conn.Upload(context.Background(), "meters", "jan.csv", strings.NewReader(meterCSV)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Upload(context.Background(), "meters", "feb.csv", strings.NewReader(meterCSV[:33])); err != nil {
		t.Fatal(err)
	}
	splits, err := conn.DiscoverPartitions(context.Background(), "meters", "")
	if err != nil {
		t.Fatal(err)
	}
	// feb.csv (33B) -> 1 split; jan.csv (99B) -> 3 splits of <=40B.
	if len(splits) != 4 {
		t.Fatalf("splits = %v", splits)
	}
	var total int64
	for _, s := range splits {
		if s.End <= s.Start {
			t.Errorf("empty split %v", s)
		}
		total += s.End - s.Start
	}
	if total != int64(len(meterCSV))+33 {
		t.Errorf("split bytes = %d", total)
	}
	// Prefix filter.
	splits, err = conn.DiscoverPartitions(context.Background(), "meters", "feb")
	if err != nil || len(splits) != 1 {
		t.Fatalf("prefix splits = %v, %v", splits, err)
	}
	if splits[0].ObjectSize != 33 {
		t.Errorf("object size = %d", splits[0].ObjectSize)
	}
}

func TestDiscoverMissingContainer(t *testing.T) {
	cl := newStore(t)
	conn := New(cl, "gp", 0)
	if _, err := conn.DiscoverPartitions(context.Background(), "ghost", ""); err == nil {
		t.Error("missing container should fail")
	}
}

func TestOpenRawAndStats(t *testing.T) {
	cl := newStore(t)
	conn := New(cl, "gp", 0)
	if _, err := conn.Upload(context.Background(), "meters", "jan.csv", strings.NewReader(meterCSV)); err != nil {
		t.Fatal(err)
	}
	splits, err := conn.DiscoverPartitions(context.Background(), "meters", "")
	if err != nil || len(splits) != 1 {
		t.Fatalf("splits = %v, %v", splits, err)
	}
	rc, err := conn.Open(context.Background(), splits[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || string(b) != meterCSV {
		t.Fatalf("read = %q, %v", b, err)
	}
	st := conn.Stats()
	if st.Requests != 1 || st.BytesIngested != int64(len(meterCSV)) {
		t.Errorf("stats = %+v", st)
	}
	conn.ResetStats()
	if st := conn.Stats(); st.Requests != 0 || st.BytesIngested != 0 {
		t.Errorf("reset stats = %+v", st)
	}
}

func TestOpenWithPushdownReducesIngestion(t *testing.T) {
	cl := newStore(t)
	conn := New(cl, "gp", 0)
	if _, err := conn.Upload(context.Background(), "meters", "jan.csv", strings.NewReader(meterCSV)); err != nil {
		t.Fatal(err)
	}
	splits, _ := conn.DiscoverPartitions(context.Background(), "meters", "")
	task := &pushdown.Task{
		Filter:  "csv",
		Schema:  "vid string, date string, index double, city string, state string",
		Columns: []string{"vid"},
		Predicates: []pushdown.Predicate{
			{Column: "state", Op: pushdown.OpEq, Value: "FRA"},
		},
	}
	rc, err := conn.Open(context.Background(), splits[0], []*pushdown.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || strings.TrimSpace(string(b)) != "V2" {
		t.Fatalf("read = %q, %v", b, err)
	}
	if st := conn.Stats(); st.BytesIngested >= int64(len(meterCSV)) {
		t.Errorf("ingestion not reduced: %+v", st)
	}
}

func TestOpenMissingObject(t *testing.T) {
	cl := newStore(t)
	conn := New(cl, "gp", 0)
	_, err := conn.Open(context.Background(), Split{Account: "gp", Container: "meters", Object: "ghost", End: 10}, nil)
	if err == nil {
		t.Error("missing object should fail")
	}
}

func TestDefaultChunkSize(t *testing.T) {
	conn := New(newStore(t), "gp", 0)
	if conn.chunkSize != DefaultChunkSize {
		t.Errorf("chunk = %d", conn.chunkSize)
	}
	if conn.Account() != "gp" {
		t.Errorf("account = %q", conn.Account())
	}
	if conn.Client() == nil {
		t.Error("client nil")
	}
}

func TestSplitString(t *testing.T) {
	s := Split{Account: "a", Container: "c", Object: "o", Start: 5, End: 9}
	if s.String() != "a/c/o[5:9]" {
		t.Errorf("String = %q", s.String())
	}
}
