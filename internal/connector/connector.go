// Package connector is the Stocator analog (paper §V): the storage driver
// compute tasks use to talk to the object store. It performs partition
// discovery (dividing each object's size by the chunk size, as the Hadoop
// RDD does), issues ranged GETs for each partition, and — the Scoop
// extension — injects pushdown tasks into those requests so filters execute
// at the store.
package connector

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"

	"scoop/internal/csvio"
	"scoop/internal/metrics"
	"scoop/internal/objectstore"
	"scoop/internal/pushdown"
	"scoop/internal/storlet"
)

// DefaultChunkSize mirrors the HDFS default split size the paper discusses
// (§VII notes the chunk size is an HDFS notion that object stores inherit).
const DefaultChunkSize = 64 << 20

// Split is one unit of parallel work: a byte range of one object.
type Split struct {
	Account   string
	Container string
	Object    string
	// Start/End bound the byte range [Start, End) of this split.
	Start int64
	End   int64
	// ObjectSize is the full object size, for record-alignment decisions.
	ObjectSize int64
}

// String identifies the split in logs.
func (s Split) String() string {
	return fmt.Sprintf("%s/%s/%s[%d:%d]", s.Account, s.Container, s.Object, s.Start, s.End)
}

// Stats counts the connector's traffic from the compute cluster's viewpoint
// — the ingestion volume Fig. 9(c) contrasts with and without Scoop.
type Stats struct {
	// BytesIngested is the total data pulled from the object store.
	BytesIngested int64
	// Requests is the number of GETs issued.
	Requests int64
	// Fallbacks counts pushdown requests degraded to plain GET + local
	// (compute-side) filter evaluation.
	Fallbacks int64
	// FallbackBytes is the raw ingest volume attributable to fallbacks —
	// bytes that pushdown would have filtered at the store.
	FallbackBytes int64
}

// Connector binds a store client with chunking configuration.
type Connector struct {
	client    objectstore.Client
	account   string
	chunkSize int64

	// fbEngine, when set via EnableFallback, evaluates pushdown chains
	// compute-side after the store refuses or aborts them.
	fbEngine  *storlet.Engine
	fbMetrics *metrics.Registry
	// determinism gates fallback per chain: replaying a filter (and
	// discarding its delivered prefix) is only sound when the filter is
	// proven deterministic. Defaults to the generated detmanifest.
	determinism func(name string) bool

	bytesIngested atomic.Int64
	requests      atomic.Int64
	fallbacks     atomic.Int64
	bytesFallback atomic.Int64
}

// New creates a connector for an account. chunkSize <= 0 uses the default.
func New(client objectstore.Client, account string, chunkSize int64) *Connector {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	return &Connector{client: client, account: account, chunkSize: chunkSize}
}

// Stats returns a snapshot of the connector's counters.
func (c *Connector) Stats() Stats {
	return Stats{
		BytesIngested: c.bytesIngested.Load(),
		Requests:      c.requests.Load(),
		Fallbacks:     c.fallbacks.Load(),
		FallbackBytes: c.bytesFallback.Load(),
	}
}

// ResetStats zeroes the counters.
func (c *Connector) ResetStats() {
	c.bytesIngested.Store(0)
	c.requests.Store(0)
	c.fallbacks.Store(0)
	c.bytesFallback.Store(0)
}

// Account returns the account this connector reads.
func (c *Connector) Account() string { return c.account }

// Client exposes the underlying store client (for uploads and admin).
func (c *Connector) Client() objectstore.Client { return c.client }

// DiscoverPartitions lists the objects under container/prefix and divides
// each into chunk-size splits — the "partition discovery" step that happens
// before a query is even specified (paper §V-B).
func (c *Connector) DiscoverPartitions(ctx context.Context, container, prefix string) ([]Split, error) {
	objects, err := c.client.ListObjects(ctx, c.account, container, prefix)
	if err != nil {
		return nil, fmt.Errorf("connector: discover: %w", err)
	}
	var out []Split
	for _, obj := range objects {
		for _, p := range csvio.Partitions(obj.Size, c.chunkSize) {
			out = append(out, Split{
				Account:    c.account,
				Container:  container,
				Object:     obj.Name,
				Start:      p.Start,
				End:        p.End,
				ObjectSize: obj.Size,
			})
		}
	}
	return out, nil
}

// Open issues the ranged GET for a split, tagging it with the pushdown chain
// when given. The returned stream is either raw object bytes (tasks == nil;
// record alignment is then the reader's job) or the filter output. With a
// fallback engine armed (EnableFallback), a pushdown request the store
// refuses or aborts mid-stream is transparently degraded to a plain GET
// evaluated compute-side — the caller still sees the filtered bytes.
func (c *Connector) Open(ctx context.Context, split Split, tasks []*pushdown.Task) (io.ReadCloser, error) {
	opts := objectstore.GetOptions{
		RangeStart: split.Start,
		RangeEnd:   split.End,
		Pushdown:   tasks,
	}
	rc, _, err := c.client.GetObject(ctx, split.Account, split.Container, split.Object, opts)
	if err != nil {
		if len(tasks) > 0 && c.fbEngine != nil && degradable(err) && c.chainProven(tasks) {
			return c.openFallback(ctx, split, tasks, 0, err)
		}
		return nil, fmt.Errorf("connector: open %s: %w", split, err)
	}
	c.requests.Add(1)
	stream := &counted{rc: rc, n: &c.bytesIngested}
	if len(tasks) > 0 && c.fbEngine != nil && c.chainProven(tasks) {
		return &fallbackReader{c: c, ctx: ctx, split: split, tasks: tasks, rc: stream}, nil
	}
	return stream, nil
}

// Upload stores an object through the connector's account.
func (c *Connector) Upload(ctx context.Context, container, object string, r io.Reader) (objectstore.ObjectInfo, error) {
	return c.client.PutObject(ctx, c.account, container, object, r, nil)
}

type counted struct {
	rc io.ReadCloser
	n  *atomic.Int64
}

func (c *counted) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	c.n.Add(int64(n))
	return n, err
}

func (c *counted) Close() error { return c.rc.Close() }
