// Package rdd implements the paper's §VII generalization of pushdown: a
// storlet-aware resilient distributed dataset (the spark-storlets project
// the authors describe). Unlike the SQL path, an RDD lets a developer
// *explicitly* invoke computations at the object store from job code:
//
//   - its distributed dataset is the output of storlet invocations on
//     parallel object requests,
//   - it embeds object-aware partitioning — by object and replica-aware
//     parallelism rather than an HDFS chunk size, bypassing the Hadoop
//     layer entirely, and
//   - further transformations (map/filter) run on compute workers, with a
//     final action (Collect/Count/Reduce) at the driver.
//
// Records are lines of the (possibly filtered) object streams.
package rdd

import (
	"bufio"
	"context"
	"errors"
	"fmt"

	"scoop/internal/compute"
	"scoop/internal/connector"
	"scoop/internal/pushdown"
)

// RDD is an immutable, lazily-evaluated line-oriented dataset.
type RDD struct {
	conn      *connector.Connector
	container string
	prefix    string
	// storlets is the pushdown chain invoked at the store per partition.
	storlets []*pushdown.Task
	// minPartitions asks for at least this many partitions; large objects
	// are split by byte range to reach it.
	minPartitions int
	// ops is the compute-side transformation lineage.
	ops []op
}

// op is one compute-side transformation applied to each record. It returns
// the transformed record and whether to keep it.
type op func(string) (string, bool)

// FromObjects creates an RDD over the objects in container with the given
// name prefix.
func FromObjects(conn *connector.Connector, container, prefix string) *RDD {
	return &RDD{conn: conn, container: container, prefix: prefix, minPartitions: 1}
}

// clone copies the RDD for a derived transformation (lineage is shared;
// slices are re-sliced copy-on-append safe because we always append to a
// full copy).
func (r *RDD) clone() *RDD {
	cp := *r
	cp.ops = append([]op(nil), r.ops...)
	cp.storlets = append([]*pushdown.Task(nil), r.storlets...)
	return &cp
}

// WithStorlet appends a pushdown task executed at the object store for
// every partition read. Multiple calls pipeline filters (paper §IV-B).
// Storlets must be attached before compute-side transformations.
func (r *RDD) WithStorlet(task *pushdown.Task) *RDD {
	cp := r.clone()
	cp.storlets = append(cp.storlets, task)
	return cp
}

// Repartition asks for at least n partitions (object-aware: whole objects
// first, then byte-range splits of large objects).
func (r *RDD) Repartition(n int) *RDD {
	cp := r.clone()
	if n > 0 {
		cp.minPartitions = n
	}
	return cp
}

// Map transforms every record on the compute side.
func (r *RDD) Map(fn func(string) string) *RDD {
	cp := r.clone()
	cp.ops = append(cp.ops, func(s string) (string, bool) { return fn(s), true })
	return cp
}

// Filter keeps records for which fn returns true.
func (r *RDD) Filter(fn func(string) bool) *RDD {
	cp := r.clone()
	cp.ops = append(cp.ops, func(s string) (string, bool) { return s, fn(s) })
	return cp
}

// Partitions performs partition discovery: one partition per object, then
// byte-range splits of the largest objects until minPartitions is reached.
// This is the object-aware strategy §VII argues should replace the HDFS
// chunk-size heuristic.
func (r *RDD) Partitions(ctx context.Context) ([]connector.Split, error) {
	objects, err := r.conn.Client().ListObjects(ctx, r.conn.Account(), r.container, r.prefix)
	if err != nil {
		return nil, err
	}
	if len(objects) == 0 {
		return nil, nil
	}
	var splits []connector.Split
	for _, obj := range objects {
		splits = append(splits, connector.Split{
			Account:    r.conn.Account(),
			Container:  r.container,
			Object:     obj.Name,
			Start:      0,
			End:        obj.Size,
			ObjectSize: obj.Size,
		})
	}
	// Split the largest partition until the target count is reached.
	for len(splits) < r.minPartitions {
		li := 0
		for i, s := range splits {
			if s.End-s.Start > splits[li].End-splits[li].Start {
				li = i
			}
		}
		big := splits[li]
		if big.End-big.Start < 2 {
			break // nothing left to split
		}
		mid := big.Start + (big.End-big.Start)/2
		left, right := big, big
		left.End = mid
		right.Start = mid
		splits[li] = left
		splits = append(splits, right)
	}
	return splits, nil
}

// collectPartition materializes one partition: open the (filtered) stream
// and apply the compute-side lineage line by line.
func (r *RDD) collectPartition(ctx context.Context, split connector.Split) ([]string, error) {
	rc, err := r.conn.Open(ctx, split, r.storlets)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	var out []string
	sc := bufio.NewScanner(rc)
	sc.Buffer(make([]byte, 64<<10), 4<<20)
	for sc.Scan() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rec := sc.Text()
		keep := true
		for _, f := range r.ops {
			rec, keep = f(rec)
			if !keep {
				break
			}
		}
		if keep {
			out = append(out, rec)
		}
	}
	return out, sc.Err()
}

// runPartitions schedules one task per partition on the driver.
func (r *RDD) runPartitions(ctx context.Context, d *compute.Driver) ([][]string, error) {
	splits, err := r.Partitions(ctx)
	if err != nil {
		return nil, err
	}
	// When storlets run per byte range, record alignment is the filter's
	// job; raw streams split mid-record would corrupt lines, so without a
	// storlet we refuse ranged partitions of line data and fall back to
	// whole objects.
	if len(r.storlets) == 0 {
		whole := splits[:0]
		seen := map[string]bool{}
		for _, s := range splits {
			if !seen[s.Object] {
				seen[s.Object] = true
				s.Start, s.End = 0, s.ObjectSize
				whole = append(whole, s)
			}
		}
		splits = whole
	}
	tasks := make([]compute.Task, len(splits))
	for i, s := range splits {
		s := s
		tasks[i] = func(ctx context.Context) (any, error) {
			return r.collectPartition(ctx, s)
		}
	}
	results, _, err := d.Run(ctx, tasks)
	if err != nil {
		return nil, err
	}
	out := make([][]string, len(results))
	for i, v := range results {
		out[i] = v.([]string)
	}
	return out, nil
}

// Collect gathers every record at the driver, in partition order.
func (r *RDD) Collect(ctx context.Context, d *compute.Driver) ([]string, error) {
	parts, err := r.runPartitions(ctx, d)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// Count returns the number of records without gathering them.
func (r *RDD) Count(ctx context.Context, d *compute.Driver) (int64, error) {
	parts, err := r.runPartitions(ctx, d)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, p := range parts {
		n += int64(len(p))
	}
	return n, nil
}

// Reduce folds all records with fn (which must be associative); returns an
// error on an empty dataset.
func (r *RDD) Reduce(ctx context.Context, d *compute.Driver, fn func(a, b string) string) (string, error) {
	parts, err := r.runPartitions(ctx, d)
	if err != nil {
		return "", err
	}
	acc := ""
	first := true
	for _, p := range parts {
		for _, rec := range p {
			if first {
				acc = rec
				first = false
				continue
			}
			acc = fn(acc, rec)
		}
	}
	if first {
		return "", errors.New("rdd: reduce of empty dataset")
	}
	return acc, nil
}

// validate sanity-checks the chain before execution.
func (r *RDD) validate() error {
	for _, t := range r.storlets {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("rdd: %w", err)
		}
	}
	return nil
}

// ForEachPartition streams each partition's records to fn (driver side),
// avoiding full materialization — for sinks and exports.
func (r *RDD) ForEachPartition(ctx context.Context, d *compute.Driver, fn func(part int, records []string) error) error {
	if err := r.validate(); err != nil {
		return err
	}
	parts, err := r.runPartitions(ctx, d)
	if err != nil {
		return err
	}
	for i, p := range parts {
		if err := fn(i, p); err != nil {
			return err
		}
	}
	return nil
}
