package rdd

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"scoop/internal/compute"
	"scoop/internal/connector"
	"scoop/internal/objectstore"
	"scoop/internal/pushdown"
	"scoop/internal/storlet/csvfilter"
)

const meterSchema = "vid string, date string, index double, city string, state string"

func fixture(t *testing.T) (*connector.Connector, *compute.Driver) {
	t.Helper()
	c, err := objectstore.NewCluster(objectstore.DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Engine().Register(csvfilter.New()); err != nil {
		t.Fatal(err)
	}
	cl := c.Client()
	if err := cl.CreateContainer(context.Background(), "gp", "meters", nil); err != nil {
		t.Fatal(err)
	}
	conn := connector.New(cl, "gp", 0)
	// Two objects, 6 rows total.
	obj1 := "V1,2015-01-01,10.5,Rotterdam,NED\nV2,2015-01-01,5.0,Paris,FRA\nV3,2015-01-01,1.0,Kyiv,UKR\n"
	obj2 := "V4,2015-02-01,7.0,Lyon,FRA\nV5,2015-02-01,2.0,Berlin,GER\nV6,2015-02-01,9.0,Nice,FRA\n"
	for i, data := range []string{obj1, obj2} {
		if _, err := conn.Upload(context.Background(), "meters", fmt.Sprintf("part-%d.csv", i), strings.NewReader(data)); err != nil {
			t.Fatal(err)
		}
	}
	d, err := compute.NewDriver(compute.Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	return conn, d
}

func TestCollectPlain(t *testing.T) {
	conn, d := fixture(t)
	lines, err := FromObjects(conn, "meters", "").Collect(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 6 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.HasPrefix(lines[0], "V1,") {
		t.Errorf("first = %q", lines[0])
	}
}

func TestWithStorletPushdown(t *testing.T) {
	conn, d := fixture(t)
	task := &pushdown.Task{
		Filter: csvfilter.FilterName, Schema: meterSchema,
		Columns:    []string{"vid", "index"},
		Predicates: []pushdown.Predicate{{Column: "state", Op: pushdown.OpEq, Value: "FRA"}},
	}
	conn.ResetStats()
	lines, err := FromObjects(conn, "meters", "").WithStorlet(task).Collect(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	for _, l := range lines {
		if strings.Count(l, ",") != 1 {
			t.Errorf("projection: %q", l)
		}
	}
	// The store did the filtering: transfer is a fraction of the dataset.
	if conn.Stats().BytesIngested > 60 {
		t.Errorf("ingested %d bytes", conn.Stats().BytesIngested)
	}
}

func TestMapFilterLineage(t *testing.T) {
	conn, d := fixture(t)
	base := FromObjects(conn, "meters", "")
	derived := base.
		Filter(func(s string) bool { return strings.Contains(s, "FRA") }).
		Map(func(s string) string { return strings.Split(s, ",")[0] })
	lines, err := derived.Collect(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 || lines[0] != "V2" {
		t.Fatalf("lines = %v", lines)
	}
	// Lineage immutability: the base RDD is unchanged.
	all, err := base.Collect(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 6 {
		t.Errorf("base mutated: %v", all)
	}
}

func TestCount(t *testing.T) {
	conn, d := fixture(t)
	n, err := FromObjects(conn, "meters", "").Count(context.Background(), d)
	if err != nil || n != 6 {
		t.Fatalf("count = %d, %v", n, err)
	}
	n, err = FromObjects(conn, "meters", "part-1").Count(context.Background(), d)
	if err != nil || n != 3 {
		t.Fatalf("prefix count = %d, %v", n, err)
	}
}

func TestReduce(t *testing.T) {
	conn, d := fixture(t)
	maxVid, err := FromObjects(conn, "meters", "").
		Map(func(s string) string { return strings.Split(s, ",")[0] }).
		Reduce(context.Background(), d, func(a, b string) string {
			if a > b {
				return a
			}
			return b
		})
	if err != nil || maxVid != "V6" {
		t.Fatalf("reduce = %q, %v", maxVid, err)
	}
	// Empty dataset.
	empty := FromObjects(conn, "meters", "").Filter(func(string) bool { return false })
	if _, err := empty.Reduce(context.Background(), d, func(a, b string) string { return a }); err == nil {
		t.Error("reduce of empty should fail")
	}
}

func TestRepartitionWithStorlet(t *testing.T) {
	conn, d := fixture(t)
	task := &pushdown.Task{Filter: csvfilter.FilterName, Schema: meterSchema, Columns: []string{"vid"}}
	r := FromObjects(conn, "meters", "").WithStorlet(task).Repartition(6)
	splits, err := r.Partitions(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) < 6 {
		t.Fatalf("splits = %d", len(splits))
	}
	// Byte-range splits + the filter's alignment: still exactly 6 records.
	lines, err := r.Collect(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 6 {
		t.Fatalf("lines = %v", lines)
	}
}

func TestRepartitionWithoutStorletFallsBackToObjects(t *testing.T) {
	conn, d := fixture(t)
	// Raw line data cannot be split by byte range without the filter's
	// record alignment; Collect must still see every record exactly once.
	r := FromObjects(conn, "meters", "").Repartition(8)
	lines, err := r.Collect(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 6 {
		t.Fatalf("lines = %v", lines)
	}
}

func TestEmptyPrefix(t *testing.T) {
	conn, d := fixture(t)
	lines, err := FromObjects(conn, "meters", "nothing-here").Collect(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 0 {
		t.Errorf("lines = %v", lines)
	}
}

func TestForEachPartition(t *testing.T) {
	conn, d := fixture(t)
	var parts int
	var total int
	err := FromObjects(conn, "meters", "").ForEachPartition(context.Background(), d,
		func(part int, records []string) error {
			parts++
			total += len(records)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if parts != 2 || total != 6 {
		t.Errorf("parts=%d total=%d", parts, total)
	}
	// Invalid storlet surfaces through validate.
	bad := FromObjects(conn, "meters", "").WithStorlet(&pushdown.Task{})
	if err := bad.ForEachPartition(context.Background(), d, func(int, []string) error { return nil }); err == nil {
		t.Error("invalid task accepted")
	}
}

func TestMissingContainer(t *testing.T) {
	conn, d := fixture(t)
	if _, err := FromObjects(conn, "ghost", "").Collect(context.Background(), d); err == nil {
		t.Error("missing container accepted")
	}
}
