package adaptive

import (
	"context"
	"errors"
	"fmt"
	"io"

	"scoop/internal/cluster"
	"scoop/internal/datasource"
	"scoop/internal/pushdown"
	"scoop/internal/sql/types"
)

// TableStats holds a row sample of a dataset, from which the controller
// estimates a query's data selectivity before deciding on pushdown — the
// paper's "the effectiveness of the filter could be modeled, e.g. by
// approximating the data selectivity".
type TableStats struct {
	schema *types.Schema
	// sample[i] is the raw string rendering of the sampled rows' column i.
	sample [][]string
	// colBytes[i] is the total rendered width of column i in the sample.
	colBytes []int64
	rows     int
}

// CollectStats samples up to maxRows rows from the relation's first splits.
func CollectStats(ctx context.Context, rel datasource.Relation, maxRows int) (*TableStats, error) {
	if maxRows <= 0 {
		maxRows = 1000
	}
	schema := rel.Schema()
	st := &TableStats{
		schema:   schema,
		sample:   make([][]string, schema.Len()),
		colBytes: make([]int64, schema.Len()),
	}
	splits, err := rel.Splits(ctx)
	if err != nil {
		return nil, err
	}
	for _, split := range splits {
		if st.rows >= maxRows {
			break
		}
		it, err := rel.Scan(ctx, split)
		if err != nil {
			return nil, err
		}
		for st.rows < maxRows {
			row, err := it.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				it.Close()
				return nil, err
			}
			for i, v := range row {
				s := v.AsString()
				st.sample[i] = append(st.sample[i], s)
				st.colBytes[i] += int64(len(s)) + 1 // +1 for the delimiter
			}
			st.rows++
		}
		it.Close()
	}
	if st.rows == 0 {
		return nil, fmt.Errorf("adaptive: empty dataset, no statistics")
	}
	return st, nil
}

// Rows returns the sample size.
func (st *TableStats) Rows() int { return st.rows }

// PredicateSelectivity estimates the fraction of rows a conjunction of
// pushable predicates discards, by evaluating them on the sample.
func (st *TableStats) PredicateSelectivity(preds []pushdown.Predicate) (float64, error) {
	if len(preds) == 0 {
		return 0, nil
	}
	idx := make([]int, len(preds))
	for i, p := range preds {
		j := st.schema.Index(p.Column)
		if j < 0 {
			return 0, fmt.Errorf("adaptive: predicate column %q not in schema", p.Column)
		}
		idx[i] = j
	}
	kept := 0
	for r := 0; r < st.rows; r++ {
		ok := true
		for i, p := range preds {
			v := st.sample[idx[i]][r]
			if !p.Matches(v, v == "") {
				ok = false
				break
			}
		}
		if ok {
			kept++
		}
	}
	return 1 - float64(kept)/float64(st.rows), nil
}

// ProjectionSelectivity estimates the byte fraction discarded by keeping
// only the named columns, from the sample's rendered widths.
func (st *TableStats) ProjectionSelectivity(columns []string) (float64, error) {
	if len(columns) == 0 {
		return 0, nil
	}
	var total, kept int64
	for _, b := range st.colBytes {
		total += b
	}
	if total == 0 {
		return 0, nil
	}
	seen := map[int]bool{}
	for _, c := range columns {
		j := st.schema.Index(c)
		if j < 0 {
			return 0, fmt.Errorf("adaptive: projected column %q not in schema", c)
		}
		if !seen[j] {
			seen[j] = true
			kept += st.colBytes[j]
		}
	}
	return 1 - float64(kept)/float64(total), nil
}

// DataSelectivity combines row and column selectivity into the fraction of
// dataset bytes the pushdown filter would discard.
func (st *TableStats) DataSelectivity(columns []string, preds []pushdown.Predicate) (float64, error) {
	rowSel, err := st.PredicateSelectivity(preds)
	if err != nil {
		return 0, err
	}
	colSel, err := st.ProjectionSelectivity(columns)
	if err != nil {
		return 0, err
	}
	kept := (1 - rowSel) * (1 - colSel)
	return 1 - kept, nil
}

// EstimateFor builds the controller's Estimate for a query described by its
// pushable projection/selection over a dataset of the given size.
func (st *TableStats) EstimateFor(datasetBytes float64, columns []string, preds []pushdown.Predicate) (Estimate, error) {
	rowSel, err := st.PredicateSelectivity(preds)
	if err != nil {
		return Estimate{}, err
	}
	colSel, err := st.ProjectionSelectivity(columns)
	if err != nil {
		return Estimate{}, err
	}
	dataSel := 1 - (1-rowSel)*(1-colSel)
	typ := cluster.Mixed
	switch {
	case rowSel > 2*colSel:
		typ = cluster.Row
	case colSel > 2*rowSel:
		typ = cluster.Column
	}
	return Estimate{DatasetBytes: datasetBytes, Selectivity: dataSel, Type: typ}, nil
}
