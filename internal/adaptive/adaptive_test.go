package adaptive

import (
	"context"
	"strings"
	"testing"

	"scoop/internal/cluster"
	"scoop/internal/connector"
	"scoop/internal/datasource"
	"scoop/internal/objectstore"
	"scoop/internal/pushdown"
	"scoop/internal/storlet/csvfilter"
)

const meterSchema = "vid string, date string, index double, city string, state string"

func newController(t *testing.T) *Controller {
	t.Helper()
	c, err := NewController(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Model: cluster.OSIC(), MinSpeedup: 0, MaxStorageCPU: 0.5, CriticalStorageCPU: 0.8},
		{Model: cluster.OSIC(), MinSpeedup: 1, MaxStorageCPU: 0, CriticalStorageCPU: 0.8},
		{Model: cluster.OSIC(), MinSpeedup: 1, MaxStorageCPU: 0.9, CriticalStorageCPU: 0.5},
		{Model: cluster.OSIC(), MinSpeedup: 1, MaxStorageCPU: 0.5, CriticalStorageCPU: 1.5},
	}
	for i, cfg := range bad {
		if _, err := NewController(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestClassString(t *testing.T) {
	if Gold.String() != "gold" || Silver.String() != "silver" || Bronze.String() != "bronze" {
		t.Error("class names")
	}
}

func TestBronzeNeverPushes(t *testing.T) {
	c := newController(t)
	c.SetTenantClass("cheap", Bronze)
	d := c.Decide("cheap", Estimate{DatasetBytes: 3e12, Selectivity: 0.99, Type: cluster.Row})
	if d.Pushdown {
		t.Errorf("bronze pushed down: %+v", d)
	}
}

func TestLowSelectivityNotWorthIt(t *testing.T) {
	c := newController(t)
	d := c.Decide("anyone", Estimate{DatasetBytes: 500e9, Selectivity: 0.0, Type: cluster.Mixed})
	if d.Pushdown {
		t.Errorf("zero selectivity pushed down: %+v", d)
	}
	if !strings.Contains(d.Reason, "below") {
		t.Errorf("reason = %q", d.Reason)
	}
}

func TestHighSelectivityPushes(t *testing.T) {
	c := newController(t)
	d := c.Decide("anyone", Estimate{DatasetBytes: 500e9, Selectivity: 0.95, Type: cluster.Row})
	if !d.Pushdown {
		t.Errorf("high selectivity refused: %+v", d)
	}
	if d.PredictedSpeedup < 5 {
		t.Errorf("predicted S_Q = %v", d.PredictedSpeedup)
	}
}

func TestLoadSheddingByClass(t *testing.T) {
	c := newController(t)
	c.SetTenantClass("vip", Gold)
	c.SetTenantClass("reg", Silver)
	est := Estimate{DatasetBytes: 500e9, Selectivity: 0.95, Type: cluster.Row}

	// Moderate load: gold keeps pushdown, silver loses it.
	c.SetLoadProbe(func() float64 { return 0.70 })
	if d := c.Decide("vip", est); !d.Pushdown {
		t.Errorf("gold refused under moderate load: %+v", d)
	}
	if d := c.Decide("reg", est); d.Pushdown {
		t.Errorf("silver pushed under moderate load: %+v", d)
	}
	// Critical load: everyone ingests.
	c.SetLoadProbe(func() float64 { return 0.90 })
	if d := c.Decide("vip", est); d.Pushdown {
		t.Errorf("gold pushed under critical load: %+v", d)
	}
	// Nil probe resets to idle.
	c.SetLoadProbe(nil)
	if d := c.Decide("reg", est); !d.Pushdown {
		t.Errorf("idle cluster refused: %+v", d)
	}
}

func TestInvalidEstimate(t *testing.T) {
	c := newController(t)
	if d := c.Decide("x", Estimate{DatasetBytes: -1}); d.Pushdown {
		t.Error("invalid estimate accepted")
	}
}

// --- statistics ---

func statsFixture(t *testing.T) *TableStats {
	t.Helper()
	oc, err := objectstore.NewCluster(objectstore.DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := oc.Engine().Register(csvfilter.New()); err != nil {
		t.Fatal(err)
	}
	cl := oc.Client()
	_ = cl.CreateContainer(context.Background(), "gp", "meters", nil)
	conn := connector.New(cl, "gp", 0)
	var sb strings.Builder
	// 100 rows: 20% FRA, 10% in 2015-02, vid uniform.
	for i := 0; i < 100; i++ {
		state := "NED"
		if i%5 == 0 {
			state = "FRA"
		}
		month := "01"
		if i%10 == 0 {
			month = "02"
		}
		sb.WriteString(strings.Join([]string{
			// Zero-padded vid keeps lexicographic order.
			"V" + string(rune('0'+i/10)) + string(rune('0'+i%10)),
			"2015-" + month + "-15 00:00:00",
			"10.5",
			"Paris",
			state,
		}, ","))
		sb.WriteByte('\n')
	}
	if _, err := conn.Upload(context.Background(), "meters", "s.csv", strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	rel, err := datasource.NewCSV(conn, "meters", "", meterSchema, datasource.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := CollectStats(context.Background(), rel, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestCollectStats(t *testing.T) {
	st := statsFixture(t)
	if st.Rows() != 100 {
		t.Fatalf("rows = %d", st.Rows())
	}
}

func TestPredicateSelectivityEstimate(t *testing.T) {
	st := statsFixture(t)
	sel, err := st.PredicateSelectivity([]pushdown.Predicate{
		{Column: "state", Op: pushdown.OpEq, Value: "FRA"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sel < 0.75 || sel > 0.85 { // 20% kept
		t.Errorf("state=FRA selectivity = %v, want ≈0.8", sel)
	}
	sel, err = st.PredicateSelectivity([]pushdown.Predicate{
		{Column: "date", Op: pushdown.OpLike, Value: "2015-02%"},
		{Column: "state", Op: pushdown.OpEq, Value: "FRA"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sel < 0.85 { // conjunction discards more
		t.Errorf("conjunction selectivity = %v", sel)
	}
	if s, err := st.PredicateSelectivity(nil); err != nil || s != 0 {
		t.Errorf("empty preds = %v, %v", s, err)
	}
	if _, err := st.PredicateSelectivity([]pushdown.Predicate{{Column: "ghost", Op: pushdown.OpEq}}); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestProjectionSelectivityEstimate(t *testing.T) {
	st := statsFixture(t)
	sel, err := st.ProjectionSelectivity([]string{"vid"})
	if err != nil {
		t.Fatal(err)
	}
	if sel < 0.5 { // vid is a small share of the row
		t.Errorf("vid-only projection selectivity = %v", sel)
	}
	all, err := st.ProjectionSelectivity([]string{"vid", "date", "index", "city", "state"})
	if err != nil || all > 0.01 {
		t.Errorf("full projection selectivity = %v, %v", all, err)
	}
	if s, err := st.ProjectionSelectivity(nil); err != nil || s != 0 {
		t.Errorf("no projection = %v, %v", s, err)
	}
	// Duplicate columns counted once.
	dup, _ := st.ProjectionSelectivity([]string{"vid", "vid"})
	single, _ := st.ProjectionSelectivity([]string{"vid"})
	if dup != single {
		t.Errorf("duplicate column changed estimate: %v vs %v", dup, single)
	}
	if _, err := st.ProjectionSelectivity([]string{"ghost"}); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestEstimateForAndEndToEndDecision(t *testing.T) {
	st := statsFixture(t)
	est, err := st.EstimateFor(500e9,
		[]string{"vid", "index"},
		[]pushdown.Predicate{{Column: "state", Op: pushdown.OpEq, Value: "FRA"}})
	if err != nil {
		t.Fatal(err)
	}
	if est.Selectivity < 0.9 {
		t.Errorf("combined selectivity = %v", est.Selectivity)
	}
	c := newController(t)
	d := c.Decide("analyst", est)
	if !d.Pushdown {
		t.Errorf("decision = %+v", d)
	}
	// A full-scan query over the same table should be refused.
	full, err := st.EstimateFor(500e9, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := c.Decide("analyst", full); d.Pushdown {
		t.Errorf("full scan pushed down: %+v", d)
	}
}

func TestDataSelectivityCombines(t *testing.T) {
	st := statsFixture(t)
	rowOnly, _ := st.DataSelectivity(nil, []pushdown.Predicate{{Column: "state", Op: pushdown.OpEq, Value: "FRA"}})
	colOnly, _ := st.DataSelectivity([]string{"vid"}, nil)
	both, _ := st.DataSelectivity([]string{"vid"}, []pushdown.Predicate{{Column: "state", Op: pushdown.OpEq, Value: "FRA"}})
	if !(both > rowOnly && both > colOnly) {
		t.Errorf("combined %v should exceed row %v and col %v", both, rowOnly, colOnly)
	}
}
