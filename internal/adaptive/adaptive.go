// Package adaptive implements the paper's §VII direction ("Towards adaptive
// pushdown execution", realized by the authors' Crystal system): instead of
// statically enforcing pushdown, a controller decides per request whether a
// tenant's query should execute at the store, based on
//
//   - the tenant's service class (the paper's example: under load only
//     "gold" tenants enjoy pushdown, "bronze" ingest the traditional way),
//   - the query's estimated data selectivity (modelled effectiveness of the
//     filter), and
//   - real-time storage-cluster load headroom.
//
// The cost model is the calibrated testbed simulation (internal/cluster);
// the selectivity estimate comes from sampled column statistics.
package adaptive

import (
	"fmt"
	"sync"

	"scoop/internal/cluster"
)

// Class is a tenant's service class.
type Class int

// Service classes.
const (
	Bronze Class = iota
	Silver
	Gold
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Gold:
		return "gold"
	case Silver:
		return "silver"
	default:
		return "bronze"
	}
}

// Config tunes the controller.
type Config struct {
	// Model is the deployment's cost model.
	Model cluster.Testbed
	// MinSpeedup is the predicted S_Q below which pushdown is not worth its
	// engine penalty (the paper's S_Q < 1 region).
	MinSpeedup float64
	// MaxStorageCPU is the storage-node CPU fraction (0..1) above which the
	// cluster is considered loaded: silver tenants lose pushdown, and above
	// CriticalStorageCPU even gold does.
	MaxStorageCPU      float64
	CriticalStorageCPU float64
}

// DefaultConfig returns sensible thresholds over the OSIC model.
func DefaultConfig() Config {
	return Config{
		Model:              cluster.OSIC(),
		MinSpeedup:         1.05,
		MaxStorageCPU:      0.60,
		CriticalStorageCPU: 0.85,
	}
}

// Controller makes pushdown decisions.
type Controller struct {
	cfg Config

	mu      sync.RWMutex
	tenants map[string]Class
	// loadFn reports current storage CPU utilization (0..1). Defaults to
	// an idle cluster.
	loadFn func() float64
}

// NewController builds a controller; unknown tenants default to Silver.
func NewController(cfg Config) (*Controller, error) {
	if cfg.MinSpeedup <= 0 {
		return nil, fmt.Errorf("adaptive: MinSpeedup must be positive")
	}
	if cfg.MaxStorageCPU <= 0 || cfg.MaxStorageCPU > 1 ||
		cfg.CriticalStorageCPU < cfg.MaxStorageCPU || cfg.CriticalStorageCPU > 1 {
		return nil, fmt.Errorf("adaptive: bad CPU thresholds %v/%v", cfg.MaxStorageCPU, cfg.CriticalStorageCPU)
	}
	return &Controller{
		cfg:     cfg,
		tenants: make(map[string]Class),
		loadFn:  func() float64 { return 0 },
	}, nil
}

// SetTenantClass assigns a tenant's service class.
func (c *Controller) SetTenantClass(tenant string, class Class) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tenants[tenant] = class
}

// SetLoadProbe installs the storage-load source (e.g. a metrics gauge).
func (c *Controller) SetLoadProbe(fn func() float64) {
	if fn == nil {
		fn = func() float64 { return 0 }
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.loadFn = fn
}

func (c *Controller) class(tenant string) Class {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if cl, ok := c.tenants[tenant]; ok {
		return cl
	}
	return Silver
}

// Estimate characterizes one candidate query.
type Estimate struct {
	// DatasetBytes the query will read.
	DatasetBytes float64
	// Selectivity is the predicted fraction of bytes discarded by the
	// pushable filters (see Estimator).
	Selectivity float64
	// Type of selectivity dominating the filter.
	Type cluster.SelectivityType
}

// Decision is the controller's verdict.
type Decision struct {
	Pushdown bool
	// PredictedSpeedup is the model's S_Q for this query.
	PredictedSpeedup float64
	// Reason explains the verdict (for operators and tests).
	Reason string
}

// Decide returns whether the tenant's query should push down right now.
func (c *Controller) Decide(tenant string, est Estimate) Decision {
	class := c.class(tenant)
	if class == Bronze {
		return Decision{Pushdown: false, Reason: "bronze tenants ingest the traditional way"}
	}
	w := cluster.Workload{DatasetBytes: est.DatasetBytes, Selectivity: est.Selectivity, Type: est.Type}
	if err := w.Validate(); err != nil {
		return Decision{Pushdown: false, Reason: "invalid estimate: " + err.Error()}
	}
	s := c.cfg.Model.Speedup(w)
	d := Decision{PredictedSpeedup: s}
	if s < c.cfg.MinSpeedup {
		d.Reason = fmt.Sprintf("predicted S_Q %.2f below %.2f threshold", s, c.cfg.MinSpeedup)
		return d
	}
	c.mu.RLock()
	load := c.loadFn()
	c.mu.RUnlock()
	switch {
	case load >= c.cfg.CriticalStorageCPU:
		d.Reason = fmt.Sprintf("storage CPU %.0f%% critical: pushdown suspended", 100*load)
		return d
	case load >= c.cfg.MaxStorageCPU && class != Gold:
		d.Reason = fmt.Sprintf("storage CPU %.0f%%: only gold tenants push down", 100*load)
		return d
	}
	d.Pushdown = true
	d.Reason = fmt.Sprintf("predicted S_Q %.2f, storage CPU %.0f%%, class %s", s, 100*load, class)
	return d
}
