package ring

import (
	"fmt"
	"testing"
	"testing/quick"
)

func buildRing(t *testing.T, nodes, disksPerNode int, partPower uint, replicas int) *Ring {
	t.Helper()
	r, err := New(partPower, replicas)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < nodes; n++ {
		for d := 0; d < disksPerNode; d++ {
			err := r.AddDevice(Device{
				ID:   fmt.Sprintf("n%d-d%d", n, d),
				Node: fmt.Sprintf("node%d", n),
				Zone: fmt.Sprintf("z%d", n%3),
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := r.Rebalance(); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3); err == nil {
		t.Error("partPower 0 should fail")
	}
	if _, err := New(25, 3); err == nil {
		t.Error("partPower 25 should fail")
	}
	if _, err := New(8, 0); err == nil {
		t.Error("replicas 0 should fail")
	}
}

func TestAddDeviceValidation(t *testing.T) {
	r, _ := New(8, 3)
	if err := r.AddDevice(Device{}); err == nil {
		t.Error("empty ID should fail")
	}
	if err := r.AddDevice(Device{ID: "a", Node: "n", Zone: "z"}); err != nil {
		t.Fatal(err)
	}
	if err := r.AddDevice(Device{ID: "a", Node: "n2", Zone: "z2"}); err == nil {
		t.Error("duplicate ID should fail")
	}
}

func TestLookupBeforeRebalance(t *testing.T) {
	r, _ := New(8, 3)
	_ = r.AddDevice(Device{ID: "a", Node: "n", Zone: "z"})
	if _, err := r.Get("/acc/c/o"); err == nil {
		t.Error("Get before Rebalance should fail")
	}
	empty, _ := New(8, 3)
	if err := empty.Rebalance(); err == nil {
		t.Error("Rebalance with no devices should fail")
	}
}

func TestReplicaDistinctness(t *testing.T) {
	// Paper testbed scale-down: 29 object nodes x 10 disks, 3 replicas.
	r := buildRing(t, 29, 10, 10, 3)
	for i := 0; i < 500; i++ {
		path := fmt.Sprintf("/gridpocket/meters/object-%d", i)
		devs, err := r.Get(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(devs) != 3 {
			t.Fatalf("replicas = %d", len(devs))
		}
		nodes := map[string]bool{}
		for _, d := range devs {
			nodes[d.Node] = true
		}
		if len(nodes) != 3 {
			t.Errorf("path %s: replicas on %d distinct nodes, want 3", path, len(nodes))
		}
	}
}

func TestBalance(t *testing.T) {
	r := buildRing(t, 10, 4, 12, 3)
	if b := r.Balance(); b > 1.15 {
		t.Errorf("balance = %v, want <= 1.15", b)
	}
	stats := r.Stats()
	if len(stats) != 40 {
		t.Errorf("stats devices = %d", len(stats))
	}
	total := 0
	for _, n := range stats {
		total += n
	}
	if total != r.Partitions()*r.Replicas() {
		t.Errorf("total assignments = %d, want %d", total, r.Partitions()*r.Replicas())
	}
}

func TestWeightedBalance(t *testing.T) {
	r, _ := New(12, 2)
	_ = r.AddDevice(Device{ID: "big", Node: "n1", Zone: "z1", Weight: 3})
	_ = r.AddDevice(Device{ID: "small", Node: "n2", Zone: "z2", Weight: 1})
	_ = r.AddDevice(Device{ID: "mid", Node: "n3", Zone: "z3", Weight: 2})
	if err := r.Rebalance(); err != nil {
		t.Fatal(err)
	}
	stats := r.Stats()
	if !(stats["big"] > stats["mid"] && stats["mid"] > stats["small"]) {
		t.Errorf("weighted distribution wrong: %v", stats)
	}
	if b := r.Balance(); b > 1.1 {
		t.Errorf("weighted balance = %v", b)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	r := buildRing(t, 4, 2, 8, 3)
	p1 := r.Partition("/a/c/o")
	p2 := r.Partition("/a/c/o")
	if p1 != p2 {
		t.Error("Partition not deterministic")
	}
	if p1 < 0 || p1 >= r.Partitions() {
		t.Errorf("partition %d out of range", p1)
	}
}

// Property: partition is always in range for arbitrary paths.
func TestPartitionRangeProperty(t *testing.T) {
	r := buildRing(t, 4, 2, 8, 3)
	f := func(path string) bool {
		p := r.Partition(path)
		return p >= 0 && p < r.Partitions()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFewerDevicesThanReplicas(t *testing.T) {
	// A 2-device ring with 3 replicas must still assign every replica
	// (Swift tolerates this in tiny dev clusters).
	r, _ := New(6, 3)
	_ = r.AddDevice(Device{ID: "a", Node: "n1", Zone: "z1"})
	_ = r.AddDevice(Device{ID: "b", Node: "n2", Zone: "z2"})
	if err := r.Rebalance(); err != nil {
		t.Fatal(err)
	}
	devs, err := r.Get("/a/c/o")
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) != 3 {
		t.Fatalf("replicas = %d", len(devs))
	}
	nodes, err := r.NodesFor("/a/c/o")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 {
		t.Errorf("distinct nodes = %v", nodes)
	}
}

func TestStabilityAcrossRebalance(t *testing.T) {
	// Same devices, same order: identical assignment (determinism).
	a := buildRing(t, 5, 2, 8, 3)
	b := buildRing(t, 5, 2, 8, 3)
	for i := 0; i < 100; i++ {
		path := fmt.Sprintf("/a/c/%d", i)
		da, _ := a.Get(path)
		db, _ := b.Get(path)
		for r := range da {
			if da[r].ID != db[r].ID {
				t.Fatalf("path %s replica %d differs: %s vs %s", path, r, da[r].ID, db[r].ID)
			}
		}
	}
}

// Consistent-hashing property: adding one node to an N-node ring moves only
// a bounded share of partition assignments (Swift's scalability argument in
// the paper's §III-B). The greedy assignment is not minimal-movement, but
// the bulk of placements must survive.
func TestIncrementalRebalanceMovesBoundedShare(t *testing.T) {
	build := func(nodes int) *Ring {
		r, _ := New(10, 3)
		for n := 0; n < nodes; n++ {
			for d := 0; d < 2; d++ {
				_ = r.AddDevice(Device{
					ID:   fmt.Sprintf("n%d-d%d", n, d),
					Node: fmt.Sprintf("node%d", n),
					Zone: fmt.Sprintf("z%d", n%3),
				})
			}
		}
		if err := r.Rebalance(); err != nil {
			t.Fatal(err)
		}
		return r
	}
	before := build(10)
	after := build(11)
	total, moved := 0, 0
	for i := 0; i < 2000; i++ {
		path := fmt.Sprintf("/a/c/obj-%d", i)
		da, _ := before.Get(path)
		db, _ := after.Get(path)
		prev := map[string]bool{}
		for _, d := range da {
			prev[d.ID] = true
		}
		for _, d := range db {
			total++
			if !prev[d.ID] {
				moved++
			}
		}
	}
	frac := float64(moved) / float64(total)
	if frac > 0.5 {
		t.Errorf("adding 1 of 11 nodes moved %.0f%% of replica placements", 100*frac)
	}
}

func TestDevicesCopy(t *testing.T) {
	r := buildRing(t, 2, 1, 6, 2)
	devs := r.Devices()
	devs[0].ID = "mutated"
	if r.Devices()[0].ID == "mutated" {
		t.Error("Devices returned internal slice")
	}
	if len(r.sortedDeviceIDs()) != 2 {
		t.Error("sortedDeviceIDs")
	}
}
