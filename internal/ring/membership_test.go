package ring

import (
	"errors"
	"fmt"
	"testing"
)

// addDev registers one device on node n, disk d (zone n%3).
func addDev(t *testing.T, r *Ring, n, d int) {
	t.Helper()
	err := r.AddDevice(Device{
		ID:   fmt.Sprintf("n%d-d%d", n, d),
		Node: fmt.Sprintf("node%d", n),
		Zone: fmt.Sprintf("z%d", n%3),
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEpochAndDirty(t *testing.T) {
	r, _ := New(6, 3)
	for n := 0; n < 4; n++ {
		addDev(t, r, n, 0)
	}
	if r.Epoch() != 0 {
		t.Fatalf("epoch before first rebalance = %d", r.Epoch())
	}
	if r.Dirty() {
		t.Fatal("never-balanced ring should not be dirty")
	}
	if err := r.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != 1 {
		t.Fatalf("epoch after first rebalance = %d", r.Epoch())
	}
	if r.Migrating() {
		t.Fatal("first rebalance should not open a migration window")
	}
	addDev(t, r, 4, 0)
	if !r.Dirty() {
		t.Fatal("AddDevice after rebalance must mark the ring dirty")
	}
	// A dirty ring still serves the old epoch.
	if _, err := r.Get("/a/c/o"); err != nil {
		t.Fatalf("dirty ring Get: %v", err)
	}
	if err := r.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if r.Dirty() {
		t.Fatal("Rebalance must clear dirty")
	}
	if r.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", r.Epoch())
	}
}

func TestErrNeedsRebalance(t *testing.T) {
	r, _ := New(6, 3)
	addDev(t, r, 0, 0)
	if _, err := r.Get("/a/c/o"); !errors.Is(err, ErrNeedsRebalance) {
		t.Errorf("Get err = %v, want ErrNeedsRebalance", err)
	}
	if _, err := r.NodesFor("/a/c/o"); !errors.Is(err, ErrNeedsRebalance) {
		t.Errorf("NodesFor err = %v, want ErrNeedsRebalance", err)
	}
	if _, err := r.NodesForRead("/a/c/o"); !errors.Is(err, ErrNeedsRebalance) {
		t.Errorf("NodesForRead err = %v, want ErrNeedsRebalance", err)
	}
}

func TestRemoveDevice(t *testing.T) {
	r, _ := New(6, 3)
	for n := 0; n < 5; n++ {
		addDev(t, r, n, 0)
	}
	if err := r.RemoveDevice("nope"); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("remove unknown: %v", err)
	}
	if err := r.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveDevice("n4-d0"); err != nil {
		t.Fatal(err)
	}
	if !r.Dirty() {
		t.Fatal("RemoveDevice must mark the ring dirty")
	}
	if err := r.Rebalance(); err != nil {
		t.Fatal(err)
	}
	// No assignment may reference the removed device afterwards, nothing
	// may move TO it, and no partition moves more than one replica.
	seen := map[int]bool{}
	for _, m := range r.LastMoves() {
		if m.To == "n4-d0" {
			t.Errorf("move %+v targets the removed device", m)
		}
		if seen[m.Partition] {
			t.Errorf("partition %d moved more than one replica", m.Partition)
		}
		seen[m.Partition] = true
	}
	if _, ok := r.Stats()["n4-d0"]; ok {
		t.Error("removed device still assigned partitions")
	}
}

func TestRemoveNodeDevices(t *testing.T) {
	r, _ := New(6, 3)
	for n := 0; n < 4; n++ {
		addDev(t, r, n, 0)
		addDev(t, r, n, 1)
	}
	if got := r.RemoveNodeDevices("node3"); got != 2 {
		t.Fatalf("removed %d devices, want 2", got)
	}
	if got := r.RemoveNodeDevices("node3"); got != 0 {
		t.Fatalf("second removal removed %d", got)
	}
	if len(r.Devices()) != 6 {
		t.Fatalf("devices left = %d", len(r.Devices()))
	}
}

func TestUncommittedEpochGuard(t *testing.T) {
	r, _ := New(6, 3)
	for n := 0; n < 4; n++ {
		addDev(t, r, n, 0)
	}
	if err := r.Rebalance(); err != nil {
		t.Fatal(err)
	}
	addDev(t, r, 4, 0)
	if err := r.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if len(r.LastMoves()) == 0 {
		t.Fatal("adding a device to a 4-node ring should move partitions")
	}
	if !r.Migrating() {
		t.Fatal("moves must open a migration window")
	}
	if err := r.Rebalance(); !errors.Is(err, ErrUncommittedEpoch) {
		t.Fatalf("Rebalance during migration: %v, want ErrUncommittedEpoch", err)
	}
	r.CommitEpoch()
	if r.Migrating() {
		t.Fatal("CommitEpoch must close the window")
	}
	if err := r.Rebalance(); err != nil {
		t.Fatalf("Rebalance after commit: %v", err)
	}
}

// Same device set registered in the same order, same operation sequence:
// identical assignments and identical move diffs.
func TestRebalanceDeterministicSequence(t *testing.T) {
	build := func() *Ring {
		r, _ := New(8, 3)
		for n := 0; n < 5; n++ {
			addDev(t, r, n, 0)
			addDev(t, r, n, 1)
		}
		if err := r.Rebalance(); err != nil {
			t.Fatal(err)
		}
		addDev(t, r, 5, 0)
		if err := r.Rebalance(); err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := build(), build()
	ma, mb := a.LastMoves(), b.LastMoves()
	if len(ma) != len(mb) {
		t.Fatalf("move counts differ: %d vs %d", len(ma), len(mb))
	}
	for i := range ma {
		if ma[i] != mb[i] {
			t.Fatalf("move %d differs: %+v vs %+v", i, ma[i], mb[i])
		}
	}
	for i := 0; i < 300; i++ {
		path := fmt.Sprintf("/a/c/%d", i)
		da, _ := a.Get(path)
		db, _ := b.Get(path)
		for rep := range da {
			if da[rep].ID != db[rep].ID {
				t.Fatalf("path %s replica %d differs", path, rep)
			}
		}
	}
}

// Movement bound: one Rebalance after a single device add moves at most
// one replica per partition — i.e. ≤ 1/replicas of all partition-replicas.
func TestSingleAddMovementBound(t *testing.T) {
	r, _ := New(10, 3)
	for n := 0; n < 8; n++ {
		addDev(t, r, n, 0)
		addDev(t, r, n, 1)
	}
	if err := r.Rebalance(); err != nil {
		t.Fatal(err)
	}
	addDev(t, r, 8, 0)
	if err := r.Rebalance(); err != nil {
		t.Fatal(err)
	}
	moves := r.LastMoves()
	if len(moves) == 0 {
		t.Fatal("expected the new device to receive partitions")
	}
	if max := r.Partitions() * r.Replicas() / r.Replicas(); len(moves) > max {
		t.Fatalf("moved %d replicas, bound is %d", len(moves), max)
	}
	seen := map[int]bool{}
	toNew := 0
	for _, m := range moves {
		if seen[m.Partition] {
			t.Fatalf("partition %d moved more than one replica in one epoch", m.Partition)
		}
		seen[m.Partition] = true
		if m.To == "n8-d0" {
			toNew++
		}
	}
	// The bulk of the movement must be toward the new device (the voluntary
	// pass may also fix residual greedy imbalance among the old devices).
	if toNew*2 < len(moves) {
		t.Errorf("only %d of %d moves landed on the new device", toNew, len(moves))
	}
}

// Movement bound for a single-device removal on a disk-per-node cluster:
// each partition held at most one replica on the removed device, so the
// diff stays ≤ one replica per partition there too.
func TestSingleRemoveMovementBound(t *testing.T) {
	r, _ := New(10, 3)
	for n := 0; n < 8; n++ {
		addDev(t, r, n, 0)
		addDev(t, r, n, 1)
	}
	if err := r.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveDevice("n3-d1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Rebalance(); err != nil {
		t.Fatal(err)
	}
	moves := r.LastMoves()
	seen := map[int]bool{}
	for _, m := range moves {
		if seen[m.Partition] {
			t.Fatalf("partition %d moved more than one replica", m.Partition)
		}
		seen[m.Partition] = true
	}
	if max := r.Partitions(); len(moves) > max {
		t.Fatalf("moved %d replicas, bound is %d", len(moves), max)
	}
}

// During a migration window NodesForRead is a superset of NodesFor
// (old placements stay readable); after CommitEpoch they collapse.
func TestNodesForReadUnion(t *testing.T) {
	r, _ := New(8, 3)
	for n := 0; n < 5; n++ {
		addDev(t, r, n, 0)
	}
	if err := r.Rebalance(); err != nil {
		t.Fatal(err)
	}
	addDev(t, r, 5, 0)
	if err := r.Rebalance(); err != nil {
		t.Fatal(err)
	}
	sawExtra := false
	for i := 0; i < 300; i++ {
		path := fmt.Sprintf("/a/c/%d", i)
		cur, _ := r.NodesFor(path)
		union, _ := r.NodesForRead(path)
		inUnion := map[string]bool{}
		for _, n := range union {
			inUnion[n] = true
		}
		for j, n := range cur {
			if union[j] != n {
				t.Fatalf("path %s: union must lead with the serving epoch", path)
			}
		}
		if len(union) > len(cur) {
			sawExtra = true
		}
	}
	if !sawExtra {
		t.Error("no path exposed an old placement during the window")
	}
	r.CommitEpoch()
	for i := 0; i < 300; i++ {
		path := fmt.Sprintf("/a/c/%d", i)
		cur, _ := r.NodesFor(path)
		union, _ := r.NodesForRead(path)
		if len(cur) != len(union) {
			t.Fatalf("path %s: union %v != cur %v after commit", path, union, cur)
		}
	}
}

// PartitionNodes / PrevPartitionNodes expose per-partition placement for
// the migrator; the previous epoch is only visible during the window.
func TestPartitionNodesAcrossEpochs(t *testing.T) {
	r, _ := New(6, 3)
	for n := 0; n < 4; n++ {
		addDev(t, r, n, 0)
	}
	if err := r.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if got := r.PrevPartitionNodes(0); got != nil {
		t.Fatalf("prev placement outside a window: %v", got)
	}
	addDev(t, r, 4, 0)
	if err := r.Rebalance(); err != nil {
		t.Fatal(err)
	}
	for _, m := range r.LastMoves() {
		cur := r.PartitionNodes(m.Partition)
		prev := r.PrevPartitionNodes(m.Partition)
		if len(cur) == 0 || len(prev) == 0 {
			t.Fatalf("partition %d: cur=%v prev=%v", m.Partition, cur, prev)
		}
	}
	if r.PartitionNodes(-1) != nil || r.PartitionNodes(r.Partitions()) != nil {
		t.Error("out-of-range partition should yield nil")
	}
}

// Repeated Rebalance+CommitEpoch cycles converge: the voluntary-move pass
// eventually finds nothing to improve, and the final balance is sane even
// though each epoch moved at most one replica per partition.
func TestBalanceConvergesOverEpochs(t *testing.T) {
	r, _ := New(8, 3)
	for n := 0; n < 4; n++ {
		addDev(t, r, n, 0)
	}
	if err := r.Rebalance(); err != nil {
		t.Fatal(err)
	}
	// Double the cluster, then let it converge one epoch at a time.
	for n := 4; n < 8; n++ {
		addDev(t, r, n, 0)
	}
	epochs := 0
	for {
		if err := r.Rebalance(); err != nil {
			t.Fatal(err)
		}
		epochs++
		if len(r.LastMoves()) == 0 {
			break
		}
		r.CommitEpoch()
		if epochs > 50 {
			t.Fatal("rebalance did not converge in 50 epochs")
		}
	}
	if b := r.Balance(); b > 1.25 {
		t.Errorf("converged balance = %v, want <= 1.25", b)
	}
}
