// Package ring implements Swift-style consistent-hash placement: a fixed
// number of partitions (2^partPower) is distributed over weighted devices,
// and each partition is assigned to R distinct devices, spreading replicas
// across zones when possible. Object paths hash to partitions, so adding
// devices moves only a proportional share of partitions — the property that
// gives Swift its horizontal scalability (paper §III-B).
package ring

import (
	"crypto/md5"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// Device is one disk in the cluster.
type Device struct {
	// ID uniquely identifies the device.
	ID string
	// Node names the server hosting the device; replica placement avoids
	// co-locating replicas on one node when it can.
	Node string
	// Zone groups nodes into failure domains; replicas prefer distinct zones.
	Zone string
	// Weight biases how many partitions the device receives (proportional).
	Weight float64
}

// Ring maps object paths to replica device sets.
type Ring struct {
	mu         sync.RWMutex
	partPower  uint
	replicas   int
	devices    []Device
	deviceByID map[string]int
	// assignment[p][r] is the device index serving replica r of partition p.
	assignment [][]int
}

// New creates a ring with 2^partPower partitions and the given replica
// count. Swift defaults to 3 replicas; the paper's testbed uses a 3-replica
// object ring.
func New(partPower uint, replicas int) (*Ring, error) {
	if partPower < 1 || partPower > 20 {
		return nil, fmt.Errorf("ring: partPower %d out of range [1,20]", partPower)
	}
	if replicas < 1 {
		return nil, fmt.Errorf("ring: replicas must be >= 1")
	}
	return &Ring{
		partPower:  partPower,
		replicas:   replicas,
		deviceByID: make(map[string]int),
	}, nil
}

// Partitions returns the number of partitions.
func (r *Ring) Partitions() int { return 1 << r.partPower }

// Replicas returns the replica count.
func (r *Ring) Replicas() int { return r.replicas }

// AddDevice registers a device. Call Rebalance afterwards to assign
// partitions.
func (r *Ring) AddDevice(d Device) error {
	if d.ID == "" {
		return fmt.Errorf("ring: device needs an ID")
	}
	if d.Weight <= 0 {
		d.Weight = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.deviceByID[d.ID]; dup {
		return fmt.Errorf("ring: duplicate device %q", d.ID)
	}
	r.deviceByID[d.ID] = len(r.devices)
	r.devices = append(r.devices, d)
	return nil
}

// Devices returns a copy of the registered devices.
func (r *Ring) Devices() []Device {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]Device(nil), r.devices...)
}

// Rebalance (re)assigns every partition replica to a device, balancing by
// weight and spreading replicas across zones, then nodes. It must be called
// after device changes and before lookups.
func (r *Ring) Rebalance() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.devices)
	if n == 0 {
		return fmt.Errorf("ring: no devices")
	}
	parts := 1 << r.partPower

	// Desired partition-replica count per device, proportional to weight.
	var totalWeight float64
	for _, d := range r.devices {
		totalWeight += d.Weight
	}
	want := make([]float64, n)
	for i, d := range r.devices {
		want[i] = float64(parts*r.replicas) * d.Weight / totalWeight
	}
	got := make([]int, n)

	assignment := make([][]int, parts)
	for p := 0; p < parts; p++ {
		assignment[p] = make([]int, r.replicas)
		usedZones := make(map[string]bool, r.replicas)
		usedNodes := make(map[string]bool, r.replicas)
		usedDevs := make(map[int]bool, r.replicas)
		for rep := 0; rep < r.replicas; rep++ {
			best := -1
			bestScore := 0.0
			for i, d := range r.devices {
				if usedDevs[i] && n > r.replicas {
					continue
				}
				// Most-underfilled device wins; zone/node conflicts are
				// penalized but tolerated on small clusters.
				score := want[i] - float64(got[i])
				if usedZones[d.Zone] {
					score -= float64(parts)
				}
				if usedNodes[d.Node] {
					score -= float64(parts)
				}
				if usedDevs[i] {
					score -= float64(parts) * 4
				}
				if best == -1 || score > bestScore {
					best = i
					bestScore = score
				}
			}
			assignment[p][rep] = best
			got[best]++
			usedZones[r.devices[best].Zone] = true
			usedNodes[r.devices[best].Node] = true
			usedDevs[best] = true
		}
	}
	r.assignment = assignment
	return nil
}

// Partition returns the partition an object path belongs to. Swift hashes
// the full /account/container/object path with md5 and takes the top bits.
func (r *Ring) Partition(path string) int {
	sum := md5.Sum([]byte(path))
	v := binary.BigEndian.Uint32(sum[:4])
	return int(v >> (32 - r.partPower))
}

// Get returns the replica devices for an object path, primary first.
func (r *Ring) Get(path string) ([]Device, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.assignment == nil {
		return nil, fmt.Errorf("ring: not rebalanced")
	}
	p := r.Partition(path)
	out := make([]Device, len(r.assignment[p]))
	for i, di := range r.assignment[p] {
		out[i] = r.devices[di]
	}
	return out, nil
}

// Stats summarizes the partition distribution per device, for balance tests
// and the ring CLI.
func (r *Ring) Stats() map[string]int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int, len(r.devices))
	for _, reps := range r.assignment {
		for _, di := range reps {
			out[r.devices[di].ID]++
		}
	}
	return out
}

// NodesFor returns the distinct node names holding replicas of path, primary
// first — what a proxy dials.
func (r *Ring) NodesFor(path string) ([]string, error) {
	devs, err := r.Get(path)
	if err != nil {
		return nil, err
	}
	var out []string
	seen := make(map[string]bool)
	for _, d := range devs {
		if !seen[d.Node] {
			seen[d.Node] = true
			out = append(out, d.Node)
		}
	}
	return out, nil
}

// Balance returns the ratio of the most-loaded device's partition count to
// the ideal count (1.0 is perfect balance), considering weights.
func (r *Ring) Balance() float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.assignment == nil || len(r.devices) == 0 {
		return 0
	}
	counts := make(map[int]int)
	for _, reps := range r.assignment {
		for _, di := range reps {
			counts[di]++
		}
	}
	var totalWeight float64
	for _, d := range r.devices {
		totalWeight += d.Weight
	}
	parts := 1 << r.partPower
	worst := 0.0
	for i, d := range r.devices {
		ideal := float64(parts*r.replicas) * d.Weight / totalWeight
		if ideal == 0 {
			continue
		}
		ratio := float64(counts[i]) / ideal
		if ratio > worst {
			worst = ratio
		}
	}
	return worst
}

// sortedDeviceIDs helps tests assert deterministic iteration.
func (r *Ring) sortedDeviceIDs() []string {
	ids := make([]string, 0, len(r.devices))
	for _, d := range r.devices {
		ids = append(ids, d.ID)
	}
	sort.Strings(ids)
	return ids
}
