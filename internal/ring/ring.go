// Package ring implements Swift-style consistent-hash placement: a fixed
// number of partitions (2^partPower) is distributed over weighted devices,
// and each partition is assigned to R distinct devices, spreading replicas
// across zones when possible. Object paths hash to partitions, so adding
// devices moves only a proportional share of partitions — the property that
// gives Swift its horizontal scalability (paper §III-B).
//
// The ring is versioned: every Rebalance produces a new epoch whose
// assignment differs from the previous one by a bounded-movement diff — at
// most one replica of any partition moves per epoch (Swift's min-part-hours
// discipline, collapsed to "one rebalance = one movement window"), so a
// single rebalance can never take a partition below quorum by itself. The
// previous epoch's placement is retained until CommitEpoch so readers can
// walk the union of old and new placements while background migration moves
// the data (NodesForRead).
package ring

import (
	"crypto/md5"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Typed sentinels for membership-change sequencing.
var (
	// ErrNeedsRebalance marks a lookup against a ring with no balanced
	// assignment yet: devices were registered (or the ring is empty) but
	// Rebalance has not produced an epoch to serve from.
	ErrNeedsRebalance = errors.New("ring: not rebalanced; call Rebalance before lookups")
	// ErrUncommittedEpoch rejects a Rebalance while the previous epoch is
	// still live (CommitEpoch not called): two overlapping migration
	// windows would break the one-replica-per-partition movement bound.
	ErrUncommittedEpoch = errors.New("ring: previous epoch not committed; migration still in progress")
	// ErrUnknownDevice marks removal of a device the ring never had.
	ErrUnknownDevice = errors.New("ring: unknown device")
)

// Device is one disk in the cluster.
type Device struct {
	// ID uniquely identifies the device.
	ID string
	// Node names the server hosting the device; replica placement avoids
	// co-locating replicas on one node when it can.
	Node string
	// Zone groups nodes into failure domains; replicas prefer distinct zones.
	Zone string
	// Weight biases how many partitions the device receives (proportional).
	Weight float64
}

// Move records one partition replica reassigned by a Rebalance — the unit
// of background data migration.
type Move struct {
	// Partition is the moved partition.
	Partition int
	// Replica is the replica slot (0-based) that changed devices.
	Replica int
	// From and To name the devices; From is the assignment of the previous
	// epoch, To the assignment of the new one.
	From, To string
}

// table is one epoch's immutable placement: the device snapshot the
// assignment indexes into. Lookups always go through a table, never the
// live (possibly dirty) device list, so pending membership changes cannot
// skew an existing epoch.
type table struct {
	epoch      uint64
	devices    []Device
	assignment [][]int // assignment[p][r] = index into devices
}

// Ring maps object paths to replica device sets.
type Ring struct {
	mu        sync.RWMutex
	partPower uint
	replicas  int

	// devices is the live device table, including changes not yet balanced
	// into an epoch (dirty when it diverges from cur's snapshot).
	devices    []Device
	deviceByID map[string]int
	dirty      bool

	epoch     uint64
	cur       *table // serving epoch; nil until the first Rebalance
	prev      *table // previous epoch, retained until CommitEpoch
	lastMoves []Move
}

// New creates a ring with 2^partPower partitions and the given replica
// count. Swift defaults to 3 replicas; the paper's testbed uses a 3-replica
// object ring.
func New(partPower uint, replicas int) (*Ring, error) {
	if partPower < 1 || partPower > 20 {
		return nil, fmt.Errorf("ring: partPower %d out of range [1,20]", partPower)
	}
	if replicas < 1 {
		return nil, fmt.Errorf("ring: replicas must be >= 1")
	}
	return &Ring{
		partPower:  partPower,
		replicas:   replicas,
		deviceByID: make(map[string]int),
	}, nil
}

// Partitions returns the number of partitions.
func (r *Ring) Partitions() int { return 1 << r.partPower }

// Replicas returns the replica count.
func (r *Ring) Replicas() int { return r.replicas }

// Epoch returns the serving epoch (0 until the first Rebalance).
func (r *Ring) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epoch
}

// Dirty reports whether the device set has changed since the serving epoch
// was balanced — lookups still serve the last epoch, but placement no
// longer reflects the registered devices until the next Rebalance.
func (r *Ring) Dirty() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.dirty
}

// Migrating reports whether a previous epoch is still retained (the window
// between a Rebalance and its CommitEpoch, while data moves).
func (r *Ring) Migrating() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.prev != nil
}

// LastMoves returns the bounded-movement diff of the most recent Rebalance:
// every partition replica whose device changed. At most one entry exists
// per partition unless a device removal forced more (a partition that lost
// several replicas at once must refill them all — correctness over bound).
func (r *Ring) LastMoves() []Move {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]Move(nil), r.lastMoves...)
}

// AddDevice registers a device. On a balanced ring this marks the ring
// dirty: lookups keep serving the last epoch and the device takes no
// traffic until the next Rebalance.
func (r *Ring) AddDevice(d Device) error {
	if d.ID == "" {
		return fmt.Errorf("ring: device needs an ID")
	}
	if d.Weight <= 0 {
		d.Weight = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.deviceByID[d.ID]; dup {
		return fmt.Errorf("ring: duplicate device %q", d.ID)
	}
	r.deviceByID[d.ID] = len(r.devices)
	r.devices = append(r.devices, d)
	if r.cur != nil {
		r.dirty = true
	}
	return nil
}

// RemoveDevice unregisters a device. The serving epoch still references it
// (its snapshot is immutable) until the next Rebalance reassigns the
// partitions it held; the ring is marked dirty meanwhile.
func (r *Ring) RemoveDevice(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	i, ok := r.deviceByID[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDevice, id)
	}
	r.devices = append(r.devices[:i], r.devices[i+1:]...)
	delete(r.deviceByID, id)
	for j := i; j < len(r.devices); j++ {
		r.deviceByID[r.devices[j].ID] = j
	}
	if r.cur != nil {
		r.dirty = true
	}
	return nil
}

// RemoveNodeDevices unregisters every device hosted by a node (node death
// or drain), returning how many were removed.
func (r *Ring) RemoveNodeDevices(node string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	kept := r.devices[:0]
	removed := 0
	for _, d := range r.devices {
		if d.Node == node {
			removed++
			continue
		}
		kept = append(kept, d)
	}
	if removed == 0 {
		return 0
	}
	r.devices = kept
	r.deviceByID = make(map[string]int, len(kept))
	for i, d := range kept {
		r.deviceByID[d.ID] = i
	}
	if r.cur != nil {
		r.dirty = true
	}
	return removed
}

// Devices returns a copy of the registered (live) devices, including
// changes not yet balanced into an epoch.
func (r *Ring) Devices() []Device {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]Device(nil), r.devices...)
}

// Rebalance produces a new epoch from the live device table. The first
// call assigns every partition greedily; subsequent calls are incremental:
// assignments whose device survives are kept, replicas on removed devices
// are refilled (forced moves), and at most ONE balance-driven move per
// partition shifts load toward underfilled devices. Large imbalances
// therefore converge over several Rebalance+CommitEpoch cycles, never in
// one unbounded reshuffle — the movement bound that keeps a migration
// window small and every partition within one replica of its old
// placement.
//
// Rebalance fails with ErrUncommittedEpoch while a previous epoch is still
// retained (CommitEpoch not called).
func (r *Ring) Rebalance() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.prev != nil {
		return ErrUncommittedEpoch
	}
	n := len(r.devices)
	if n == 0 {
		return fmt.Errorf("ring: no devices")
	}
	parts := 1 << r.partPower

	// Desired partition-replica count per device, proportional to weight.
	var totalWeight float64
	for _, d := range r.devices {
		totalWeight += d.Weight
	}
	want := make([]float64, n)
	for i, d := range r.devices {
		want[i] = float64(parts*r.replicas) * d.Weight / totalWeight
	}
	got := make([]int, n)

	var assignment [][]int
	var moves []Move
	if r.cur == nil {
		assignment = r.assignFull(parts, want, got)
	} else {
		assignment, moves = r.assignIncremental(parts, want, got)
	}

	next := &table{
		epoch:      r.epoch + 1,
		devices:    append([]Device(nil), r.devices...),
		assignment: assignment,
	}
	// A rebalance that moved nothing opens no migration window; the old
	// epoch is superseded in place. Moves retain the previous epoch for
	// dual-epoch reads until the data has followed (CommitEpoch).
	if len(moves) > 0 {
		r.prev = r.cur
	}
	r.cur = next
	r.epoch = next.epoch
	r.dirty = false
	r.lastMoves = moves
	return nil
}

// CommitEpoch ends the migration window: the previous epoch's placement is
// dropped and reads collapse to the serving epoch. Call it only after the
// data has been moved (every partition in LastMoves replicated onto its
// new devices).
func (r *Ring) CommitEpoch() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.prev = nil
}

// assignFull is the initial greedy assignment (epoch 1): most-underfilled
// device wins each slot, zone/node conflicts penalized but tolerated on
// small clusters.
func (r *Ring) assignFull(parts int, want []float64, got []int) [][]int {
	assignment := make([][]int, parts)
	for p := 0; p < parts; p++ {
		assignment[p] = make([]int, r.replicas)
		for rep := 0; rep < r.replicas; rep++ {
			assignment[p][rep] = -1
		}
		for rep := 0; rep < r.replicas; rep++ {
			best := r.pickDevice(assignment[p], want, got, false)
			assignment[p][rep] = best
			got[best]++
		}
	}
	return assignment
}

// assignIncremental carries the previous epoch forward and moves the
// minimum: forced refills for removed devices, then at most one
// balance-driven move per untouched partition.
func (r *Ring) assignIncremental(parts int, want []float64, got []int) ([][]int, []Move) {
	cur := r.cur
	assignment := make([][]int, parts)
	var moves []Move
	touched := make([]bool, parts)

	// Pass 1: keep every assignment whose device still exists.
	for p := 0; p < parts; p++ {
		assignment[p] = make([]int, r.replicas)
		for rep := 0; rep < r.replicas; rep++ {
			oldID := cur.devices[cur.assignment[p][rep]].ID
			if ni, ok := r.deviceByID[oldID]; ok {
				assignment[p][rep] = ni
				got[ni]++
			} else {
				assignment[p][rep] = -1
			}
		}
	}
	// Pass 2: forced moves — refill slots whose device was removed. These
	// are not optional and may exceed one per partition when a partition
	// lost several replicas at once (e.g. a node with two of its disks);
	// durability beats the movement bound there.
	for p := 0; p < parts; p++ {
		for rep := 0; rep < r.replicas; rep++ {
			if assignment[p][rep] != -1 {
				continue
			}
			best := r.pickDevice(assignment[p], want, got, false)
			assignment[p][rep] = best
			got[best]++
			moves = append(moves, Move{
				Partition: p, Replica: rep,
				From: cur.devices[cur.assignment[p][rep]].ID,
				To:   r.devices[best].ID,
			})
			touched[p] = true
		}
	}
	// Pass 3: balance-driven moves — a single deterministic sweep, at most
	// one move per partition that had no forced move, from that partition's
	// most-overfull device to the most-underfilled conflict-free device.
	// One sweep caps the diff at `parts` reassignments; repeated
	// Rebalance+CommitEpoch cycles converge the balance.
	for p := 0; p < parts; p++ {
		if touched[p] {
			continue
		}
		worstRep, worstOver := -1, 0.5
		for rep := 0; rep < r.replicas; rep++ {
			di := assignment[p][rep]
			if over := float64(got[di]) - want[di]; over > worstOver {
				worstOver, worstRep = over, rep
			}
		}
		if worstRep == -1 {
			continue
		}
		from := assignment[p][worstRep]
		// The moved replica's own device must not anchor the conflict sets.
		assignment[p][worstRep] = -1
		best := r.pickDevice(assignment[p], want, got, true)
		if best == -1 || best == from {
			assignment[p][worstRep] = from
			continue
		}
		assignment[p][worstRep] = best
		got[from]--
		got[best]++
		moves = append(moves, Move{
			Partition: p, Replica: worstRep,
			From: r.devices[from].ID, To: r.devices[best].ID,
		})
	}
	return assignment, moves
}

// pickDevice chooses the best device for a replica slot of a partition
// whose other replicas are the non-negative entries of slots.
// Most-underfilled wins; zone and node conflicts are penalized (tolerated
// on clusters too small to avoid them). When voluntary is true the pick is
// a balance-driven move: it must land on a strictly underfilled device and
// never co-locate with an existing replica's device or node — returning -1
// rather than making placement worse.
func (r *Ring) pickDevice(slots []int, want []float64, got []int, voluntary bool) int {
	parts := 1 << r.partPower
	usedZones := make(map[string]bool, r.replicas)
	usedNodes := make(map[string]bool, r.replicas)
	usedDevs := make(map[int]bool, r.replicas)
	for _, di := range slots {
		if di < 0 {
			continue
		}
		usedDevs[di] = true
		usedZones[r.devices[di].Zone] = true
		usedNodes[r.devices[di].Node] = true
	}
	n := len(r.devices)
	best := -1
	bestScore := 0.0
	for i, d := range r.devices {
		if usedDevs[i] && (voluntary || n > r.replicas) {
			continue
		}
		underfill := want[i] - float64(got[i])
		if voluntary && (underfill <= 0.5 || usedNodes[d.Node]) {
			continue
		}
		score := underfill
		if usedZones[d.Zone] {
			score -= float64(parts)
		}
		if usedNodes[d.Node] {
			score -= float64(parts)
		}
		if usedDevs[i] {
			score -= float64(parts) * 4
		}
		if best == -1 || score > bestScore {
			best = i
			bestScore = score
		}
	}
	return best
}

// Partition returns the partition an object path belongs to. Swift hashes
// the full /account/container/object path with md5 and takes the top bits.
func (r *Ring) Partition(path string) int {
	sum := md5.Sum([]byte(path))
	v := binary.BigEndian.Uint32(sum[:4])
	return int(v >> (32 - r.partPower))
}

// Get returns the replica devices for an object path, primary first, from
// the serving epoch. A dirty ring (device changes pending) still serves
// its last epoch — use Dirty to detect staleness.
func (r *Ring) Get(path string) ([]Device, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.cur == nil {
		return nil, ErrNeedsRebalance
	}
	p := r.Partition(path)
	out := make([]Device, len(r.cur.assignment[p]))
	for i, di := range r.cur.assignment[p] {
		out[i] = r.cur.devices[di]
	}
	return out, nil
}

// Stats summarizes the partition distribution per device of the serving
// epoch, for balance tests and the ring CLI.
func (r *Ring) Stats() map[string]int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.cur == nil {
		return map[string]int{}
	}
	out := make(map[string]int, len(r.cur.devices))
	for _, reps := range r.cur.assignment {
		for _, di := range reps {
			out[r.cur.devices[di].ID]++
		}
	}
	return out
}

// NodesFor returns the distinct node names holding replicas of path in the
// serving epoch, primary first — where a proxy writes.
func (r *Ring) NodesFor(path string) ([]string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.cur == nil {
		return nil, ErrNeedsRebalance
	}
	return r.cur.nodesFor(r.Partition(path)), nil
}

// NodesForRead returns the node names a reader should walk for path: the
// serving epoch's placement first, then any extra nodes from the previous
// epoch while a migration window is open. During a move the data may not
// yet have reached the new placement (or may already have left the old),
// so GETs walk the union and never 404 mid-move.
func (r *Ring) NodesForRead(path string) ([]string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.cur == nil {
		return nil, ErrNeedsRebalance
	}
	p := r.Partition(path)
	out := r.cur.nodesFor(p)
	if r.prev != nil {
		seen := make(map[string]bool, len(out))
		for _, n := range out {
			seen[n] = true
		}
		for _, n := range r.prev.nodesFor(p) {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out, nil
}

// PartitionNodes returns the distinct nodes assigned to partition p in the
// serving epoch (nil before the first Rebalance).
func (r *Ring) PartitionNodes(p int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.cur == nil || p < 0 || p >= len(r.cur.assignment) {
		return nil
	}
	return r.cur.nodesFor(p)
}

// PrevPartitionNodes returns partition p's distinct nodes in the previous
// epoch, or nil when no migration window is open.
func (r *Ring) PrevPartitionNodes(p int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.prev == nil || p < 0 || p >= len(r.prev.assignment) {
		return nil
	}
	return r.prev.nodesFor(p)
}

// nodesFor lists the distinct nodes of one partition, primary first.
// Callers hold the ring lock.
func (t *table) nodesFor(p int) []string {
	var out []string
	seen := make(map[string]bool, len(t.assignment[p]))
	for _, di := range t.assignment[p] {
		n := t.devices[di].Node
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// Balance returns the ratio of the most-loaded device's partition count to
// the ideal count (1.0 is perfect balance), considering weights, over the
// serving epoch.
func (r *Ring) Balance() float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.cur == nil || len(r.cur.devices) == 0 {
		return 0
	}
	counts := make(map[int]int)
	for _, reps := range r.cur.assignment {
		for _, di := range reps {
			counts[di]++
		}
	}
	var totalWeight float64
	for _, d := range r.cur.devices {
		totalWeight += d.Weight
	}
	parts := 1 << r.partPower
	worst := 0.0
	for i, d := range r.cur.devices {
		ideal := float64(parts*r.replicas) * d.Weight / totalWeight
		if ideal == 0 {
			continue
		}
		ratio := float64(counts[i]) / ideal
		if ratio > worst {
			worst = ratio
		}
	}
	return worst
}

// sortedDeviceIDs helps tests assert deterministic iteration.
func (r *Ring) sortedDeviceIDs() []string {
	ids := make([]string, 0, len(r.devices))
	for _, d := range r.devices {
		ids = append(ids, d.ID)
	}
	sort.Strings(ids)
	return ids
}
