package storlet

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scoop/internal/pushdown"
)

// upper is a trivial test filter.
var upper = FilterFunc{
	FilterName: "upper",
	Fn: func(_ *Context, in io.Reader, out io.Writer) error {
		b, err := io.ReadAll(in)
		if err != nil {
			return err
		}
		_, err = out.Write([]byte(strings.ToUpper(string(b))))
		return err
	},
}

// reverse reverses the whole stream (order-sensitive, for pipelining tests).
var reverse = FilterFunc{
	FilterName: "reverse",
	Fn: func(_ *Context, in io.Reader, out io.Writer) error {
		b, err := io.ReadAll(in)
		if err != nil {
			return err
		}
		for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
			b[i], b[j] = b[j], b[i]
		}
		_, err = out.Write(b)
		return err
	},
}

var panicky = FilterFunc{
	FilterName: "panicky",
	Fn: func(*Context, io.Reader, io.Writer) error {
		panic("storage node on fire")
	},
}

func newTestEngine(t *testing.T, limits Limits, filters ...Filter) *Engine {
	t.Helper()
	e := NewEngine(limits)
	for _, f := range filters {
		if err := e.Register(f); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func runTask(t *testing.T, e *Engine, filter, input string) (string, error) {
	t.Helper()
	ctx := &Context{
		Task:     &pushdown.Task{Filter: filter},
		RangeEnd: int64(len(input)), ObjectSize: int64(len(input)),
	}
	rc, err := e.Run(ctx, strings.NewReader(input))
	if err != nil {
		return "", err
	}
	defer rc.Close()
	b, err := io.ReadAll(rc)
	return string(b), err
}

func TestRegisterAndRun(t *testing.T) {
	e := newTestEngine(t, Limits{}, upper)
	got, err := runTask(t, e, "upper", "hello")
	if err != nil || got != "HELLO" {
		t.Fatalf("got %q, %v", got, err)
	}
	s := e.StatsFor("upper")
	if s.Invocations != 1 || s.BytesIn != 5 || s.BytesOut != 5 || s.Errors != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRegisterValidation(t *testing.T) {
	e := NewEngine(Limits{})
	if err := e.Register(nil); err == nil {
		t.Error("nil filter should fail")
	}
	if err := e.Register(FilterFunc{FilterName: ""}); err == nil {
		t.Error("empty name should fail")
	}
	if err := e.Register(upper); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(upper); err == nil {
		t.Error("duplicate should fail")
	}
	if got := e.Names(); len(got) != 1 || got[0] != "upper" {
		t.Errorf("Names = %v", got)
	}
	if err := e.Unregister("upper"); err != nil {
		t.Error(err)
	}
	if err := e.Unregister("upper"); err == nil {
		t.Error("double unregister should fail")
	}
}

func TestRunUnknownFilter(t *testing.T) {
	e := NewEngine(Limits{})
	ctx := &Context{Task: &pushdown.Task{Filter: "ghost"}}
	if _, err := e.Run(ctx, strings.NewReader("x")); err == nil {
		t.Error("unknown filter should fail")
	}
	if _, err := e.Run(nil, strings.NewReader("x")); err == nil {
		t.Error("nil context should fail")
	}
	if _, err := e.Run(&Context{}, strings.NewReader("x")); err == nil {
		t.Error("nil task should fail")
	}
}

func TestPanicIsSandboxed(t *testing.T) {
	e := newTestEngine(t, Limits{}, panicky)
	_, err := runTask(t, e, "panicky", "data")
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v", err)
	}
	if s := e.StatsFor("panicky"); s.Errors != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestTimeout(t *testing.T) {
	slow := FilterFunc{
		FilterName: "slow",
		Fn: func(_ *Context, in io.Reader, out io.Writer) error {
			time.Sleep(200 * time.Millisecond)
			_, err := io.Copy(out, in)
			return err
		},
	}
	e := newTestEngine(t, Limits{Timeout: 20 * time.Millisecond}, slow)
	_, err := runTask(t, e, "slow", "data")
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v", err)
	}
}

func TestOutputLimit(t *testing.T) {
	blowup := FilterFunc{
		FilterName: "blowup",
		Fn: func(_ *Context, _ io.Reader, out io.Writer) error {
			big := strings.Repeat("x", 1024)
			for i := 0; i < 100; i++ {
				if _, err := out.Write([]byte(big)); err != nil {
					return err
				}
			}
			return nil
		},
	}
	e := newTestEngine(t, Limits{MaxOutputBytes: 4096}, blowup)
	_, err := runTask(t, e, "blowup", "")
	if err == nil || !strings.Contains(err.Error(), "output limit") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunChainPipelining(t *testing.T) {
	e := newTestEngine(t, Limits{}, upper, reverse)
	tasks := []*pushdown.Task{{Filter: "upper"}, {Filter: "reverse"}}
	base := &Context{RangeEnd: 3, ObjectSize: 3}
	rc, err := e.RunChain(base, tasks, strings.NewReader("abc"))
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	b, err := io.ReadAll(rc)
	if err != nil || string(b) != "CBA" {
		t.Fatalf("got %q, %v", b, err)
	}
}

func TestRunChainErrors(t *testing.T) {
	e := newTestEngine(t, Limits{}, upper)
	if _, err := e.RunChain(&Context{}, nil, strings.NewReader("")); err == nil {
		t.Error("empty chain should fail")
	}
	tasks := []*pushdown.Task{{Filter: "upper"}, {Filter: "ghost"}}
	if _, err := e.RunChain(&Context{RangeEnd: 1, ObjectSize: 1}, tasks, strings.NewReader("x")); err == nil {
		t.Error("chain with unknown filter should fail")
	}
}

func TestContextLogf(t *testing.T) {
	var lines []string
	ctx := &Context{Log: func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}}
	ctx.Logf("n=%d", 3)
	if len(lines) != 1 || lines[0] != "n=3" {
		t.Errorf("lines = %v", lines)
	}
	// Nil logger must not crash.
	(&Context{}).Logf("ignored")
}

func TestStatsForUnknown(t *testing.T) {
	e := NewEngine(Limits{})
	if s := e.StatsFor("nope"); s.Invocations != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestMaxConcurrentLimitsParallelism(t *testing.T) {
	var cur, max atomic.Int64
	slow := FilterFunc{
		FilterName: "slow",
		Fn: func(_ *Context, in io.Reader, out io.Writer) error {
			n := cur.Add(1)
			for {
				m := max.Load()
				if n <= m || max.CompareAndSwap(m, n) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			cur.Add(-1)
			_, err := io.Copy(out, in)
			return err
		},
	}
	e := newTestEngine(t, Limits{MaxConcurrent: 2}, slow)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := &Context{Task: &pushdown.Task{Filter: "slow"}, RangeEnd: 1, ObjectSize: 1}
			rc, err := e.Run(ctx, strings.NewReader("x"))
			if err != nil {
				return
			}
			io.Copy(io.Discard, rc)
			rc.Close()
		}()
	}
	wg.Wait()
	if got := max.Load(); got > 2 {
		t.Errorf("max concurrency = %d, want <= 2", got)
	}
	if e.StatsFor("slow").Invocations != 8 {
		t.Errorf("invocations = %d", e.StatsFor("slow").Invocations)
	}
}

func TestMaxConcurrentChainNoDeadlock(t *testing.T) {
	e := newTestEngine(t, Limits{MaxConcurrent: 1, Timeout: 2 * time.Second}, upper, reverse)
	tasks := []*pushdown.Task{{Filter: "upper"}, {Filter: "reverse"}}
	base := &Context{RangeEnd: 3, ObjectSize: 3}
	rc, err := e.RunChain(base, tasks, strings.NewReader("abc"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || string(b) != "CBA" {
		t.Fatalf("got %q, %v (chain must count as one slot)", b, err)
	}
}

func TestConcurrentInvocations(t *testing.T) {
	e := newTestEngine(t, Limits{}, upper)
	done := make(chan error, 20)
	for i := 0; i < 20; i++ {
		go func(i int) {
			input := fmt.Sprintf("msg-%d", i)
			ctx := &Context{
				Task:     &pushdown.Task{Filter: "upper"},
				RangeEnd: int64(len(input)), ObjectSize: int64(len(input)),
			}
			rc, err := e.Run(ctx, strings.NewReader(input))
			if err != nil {
				done <- err
				return
			}
			b, err := io.ReadAll(rc)
			rc.Close()
			if err == nil && string(b) != fmt.Sprintf("MSG-%d", i) {
				err = fmt.Errorf("got %q", b)
			}
			done <- err
		}(i)
	}
	for i := 0; i < 20; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if s := e.StatsFor("upper"); s.Invocations != 20 {
		t.Errorf("invocations = %d", s.Invocations)
	}
}
