package storlet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"scoop/internal/pushdown"
)

// blocking returns a filter that parks until release is closed. It writes
// nothing: an undrained output pipe must not keep the slot hostage after the
// release.
func blocking(name string, release <-chan struct{}) Filter {
	return FilterFunc{FilterName: name, Fn: func(_ *Context, _ io.Reader, _ io.Writer) error {
		<-release
		return nil
	}}
}

// occupySlot starts an invocation of the named (blocking) filter; by the
// time it returns, the filter holds one engine slot.
func occupySlot(t *testing.T, e *Engine, name string) {
	t.Helper()
	ctx := &Context{Task: &pushdown.Task{Filter: name}}
	rc, err := e.Run(ctx, strings.NewReader("x"))
	if err != nil {
		t.Fatalf("occupy slot: %v", err)
	}
	t.Cleanup(func() { rc.Close() })
}

func TestTypedErrNotDeployed(t *testing.T) {
	e := newTestEngine(t, Limits{}, upper)
	_, err := runTask(t, e, "nope", "x")
	if !errors.Is(err, ErrNotDeployed) {
		t.Fatalf("want ErrNotDeployed, got %v", err)
	}
	if err := e.Unregister("ghost"); !errors.Is(err, ErrNotDeployed) {
		t.Fatalf("Unregister: want ErrNotDeployed, got %v", err)
	}
}

func TestTypedErrTimeout(t *testing.T) {
	stall := FilterFunc{FilterName: "stall", Fn: func(_ *Context, _ io.Reader, _ io.Writer) error {
		time.Sleep(200 * time.Millisecond)
		return nil
	}}
	e := newTestEngine(t, Limits{Timeout: 10 * time.Millisecond}, stall)
	_, err := runTask(t, e, "stall", "x")
	if !errors.Is(err, ErrFilterTimeout) {
		t.Fatalf("want ErrFilterTimeout, got %v", err)
	}
	var fe *FilterError
	if !errors.As(err, &fe) || fe.Filter != "stall" {
		t.Fatalf("want *FilterError for stall, got %v", err)
	}
}

func TestTypedErrOutputLimit(t *testing.T) {
	e := newTestEngine(t, Limits{MaxOutputBytes: 4}, upper)
	_, err := runTask(t, e, "upper", "more than four bytes")
	if !errors.Is(err, ErrOutputLimit) {
		t.Fatalf("want ErrOutputLimit, got %v", err)
	}
}

func TestTypedErrPanic(t *testing.T) {
	e := newTestEngine(t, Limits{}, panicky)
	_, err := runTask(t, e, "panicky", "x")
	var fe *FilterError
	if !errors.As(err, &fe) || fe.Filter != "panicky" {
		t.Fatalf("want *FilterError for panicky, got %v", err)
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic cause lost: %v", err)
	}
}

func TestOverloadImmediateReject(t *testing.T) {
	release := make(chan struct{})
	e := newTestEngine(t, Limits{MaxConcurrent: 1, MaxQueue: -1}, upper, blocking("block", release))
	occupySlot(t, e, "block")
	_, err := runTask(t, e, "upper", "x")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	var fe *FilterError
	if !errors.As(err, &fe) || fe.Filter != "upper" {
		t.Fatalf("want *FilterError attributing upper, got %v", err)
	}
	if s := e.StatsFor("upper"); s.Rejections != 1 {
		t.Fatalf("Rejections = %d, want 1", s.Rejections)
	}
	close(release)
	// The slot is released asynchronously after the blocker finishes; the
	// same task must succeed once it is back.
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := runTask(t, e, "upper", "ok")
		if err == nil {
			if got != "OK" {
				t.Fatalf("after release: got %q", got)
			}
			return
		}
		if !errors.Is(err, ErrOverloaded) || time.Now().After(deadline) {
			t.Fatalf("after release: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestOverloadQueueWaitDeadline(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	e := newTestEngine(t, Limits{MaxConcurrent: 1, QueueWait: 10 * time.Millisecond},
		upper, blocking("block", release))
	occupySlot(t, e, "block")
	start := time.Now()
	_, err := runTask(t, e, "upper", "x")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded after QueueWait, got %v", err)
	}
	if waited := time.Since(start); waited < 10*time.Millisecond {
		t.Fatalf("rejected before the deadline (%v)", waited)
	}
}

func TestOverloadBoundedQueue(t *testing.T) {
	release := make(chan struct{})
	e := newTestEngine(t, Limits{MaxConcurrent: 1, MaxQueue: 1},
		upper, blocking("block", release))
	occupySlot(t, e, "block")

	// First waiter occupies the single queue spot.
	queued := make(chan error, 1)
	go func() {
		_, err := runTask(t, e, "upper", "queued")
		queued <- err
	}()
	// Wait until it is actually parked in the queue.
	for i := 0; e.waiting.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if e.waiting.Load() != 1 {
		t.Fatal("waiter never queued")
	}
	// Queue is full: the next request is shed immediately.
	if _, err := runTask(t, e, "upper", "shed"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded for second waiter, got %v", err)
	}
	close(release)
	if err := <-queued; err != nil {
		t.Fatalf("queued request failed after slot freed: %v", err)
	}
}

func TestQueueAbortOnContextCancel(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	e := newTestEngine(t, Limits{MaxConcurrent: 1}, upper, blocking("block", release))
	occupySlot(t, e, "block")

	cctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		ctx := &Context{Ctx: cctx, Task: &pushdown.Task{Filter: "upper"}}
		_, err := e.Run(ctx, strings.NewReader("x"))
		got <- err
	}()
	for i := 0; e.waiting.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request did not abort on cancel")
	}
}

// TestSlotWaitGoroutineLeak is the regression test for the old storlet.go
// leak: a sandbox goroutine parked on `e.slots <-` forever once its caller
// walked away. Slot acquisition now happens on the requester's goroutine and
// is cancellable, so an abandoned request must leave no goroutine behind.
func TestSlotWaitGoroutineLeak(t *testing.T) {
	release := make(chan struct{})
	e := newTestEngine(t, Limits{MaxConcurrent: 1}, upper, blocking("block", release))
	occupySlot(t, e, "block")

	baseline := runtime.NumGoroutine()
	const abandoned = 8
	done := make(chan struct{}, abandoned)
	for i := 0; i < abandoned; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			cctx, cancel := context.WithCancel(context.Background())
			errc := make(chan error, 1)
			go func() {
				ctx := &Context{Ctx: cctx, Task: &pushdown.Task{Filter: "upper"}}
				_, err := e.Run(ctx, strings.NewReader("x"))
				errc <- err
			}()
			// The caller walks away: cancel and never touch the stream.
			cancel()
			<-errc
		}()
	}
	for i := 0; i < abandoned; i++ {
		<-done
	}
	// Settle: give any stragglers time to exit, then compare counts.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
		runtime.Gosched()
	}
	if n := runtime.NumGoroutine(); n > baseline+1 {
		t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, n)
	}
	close(release)
}

// flakyFilter fails while its switch is on.
func flakyFilter(name string, failing *atomic.Bool) Filter {
	return FilterFunc{FilterName: name, Fn: func(_ *Context, in io.Reader, out io.Writer) error {
		if failing.Load() {
			return fmt.Errorf("flaky: scripted failure")
		}
		_, err := io.Copy(out, in)
		return err
	}}
}

func TestBreakerOpensProbesRecloses(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	policy := BreakerPolicy{Threshold: 2, Cooldown: 2, Jitter: 1, Seed: 7}
	e := newTestEngine(t, Limits{Breaker: policy}, flakyFilter("flaky", &failing))

	// Two consecutive failures trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := runTask(t, e, "flaky", "x"); err == nil {
			t.Fatal("scripted failure did not surface")
		}
	}
	if st := e.BreakerState("flaky"); st != "open" {
		t.Fatalf("state after threshold = %q, want open", st)
	}
	if s := e.StatsFor("flaky"); s.BreakerOpens != 1 {
		t.Fatalf("BreakerOpens = %d, want 1", s.BreakerOpens)
	}
	// Open: requests are refused with ErrBreakerOpen until the refusal
	// budget admits a half-open probe; the probe still fails, re-opening.
	refusals, probed := 0, false
	for i := 0; i < 10 && !probed; i++ {
		_, err := runTask(t, e, "flaky", "x")
		if errors.Is(err, ErrBreakerOpen) {
			refusals++
			continue
		}
		probed = true // admitted probe, failed with the filter's own error
	}
	if !probed {
		t.Fatal("breaker never admitted a half-open probe")
	}
	if max := policy.Cooldown + policy.Jitter; refusals > max {
		t.Fatalf("refusals before probe = %d, want <= %d", refusals, max)
	}
	if s := e.StatsFor("flaky"); s.BreakerOpens != 2 {
		t.Fatalf("BreakerOpens after failed probe = %d, want 2", s.BreakerOpens)
	}
	// Heal the filter: the next admitted probe closes the breaker.
	failing.Store(false)
	healed := false
	for i := 0; i < 10 && !healed; i++ {
		if out, err := runTask(t, e, "flaky", "ok"); err == nil {
			if out != "ok" {
				t.Fatalf("probe output = %q", out)
			}
			healed = true
		}
	}
	if !healed {
		t.Fatal("breaker never admitted the healing probe")
	}
	if st := e.BreakerState("flaky"); st != "closed" {
		t.Fatalf("state after healed probe = %q, want closed", st)
	}
	if _, err := runTask(t, e, "flaky", "x"); err != nil {
		t.Fatalf("closed breaker refused a healthy filter: %v", err)
	}
}

// TestBreakerDeterministicProbePoints: same seed, same failure sequence →
// the same refusal count before each probe. No wall-clock anywhere.
func TestBreakerDeterministicProbePoints(t *testing.T) {
	run := func() []int {
		var failing atomic.Bool
		failing.Store(true)
		e := newTestEngine(t, Limits{Breaker: BreakerPolicy{Threshold: 1, Cooldown: 3, Jitter: 2, Seed: 99}},
			flakyFilter("flaky", &failing))
		var trace []int
		refusals := 0
		for i := 0; i < 40; i++ {
			_, err := runTask(t, e, "flaky", "x")
			if errors.Is(err, ErrBreakerOpen) {
				refusals++
				continue
			}
			trace = append(trace, refusals)
			refusals = 0
		}
		return trace
	}
	a, b := run(), run()
	if len(a) == 0 || fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("probe points diverged across same-seed runs: %v vs %v", a, b)
	}
}

func TestBreakerRefusalNotCountedAgainstChainPropagation(t *testing.T) {
	// Stage 0 fails; stage 1 (upper) merely propagates the error. Stage 1's
	// breaker must stay closed — the failure is not its fault.
	var failing atomic.Bool
	failing.Store(true)
	e := newTestEngine(t, Limits{Breaker: BreakerPolicy{Threshold: 2, Seed: 3}},
		flakyFilter("flaky", &failing), upper)
	base := &Context{RangeEnd: 1, ObjectSize: 1}
	tasks := []*pushdown.Task{{Filter: "flaky"}, {Filter: "upper"}}
	// Two chain runs propagate flaky's failure through upper and trip
	// flaky's breaker at the threshold.
	for i := 0; i < 2; i++ {
		rc, err := e.RunChain(base, tasks, strings.NewReader("x"))
		if err != nil {
			t.Fatalf("chain start: %v", err)
		}
		_, err = io.ReadAll(rc)
		rc.Close()
		var fe *FilterError
		if !errors.As(err, &fe) || fe.Filter != "flaky" {
			t.Fatalf("chain error not attributed to first stage: %v", err)
		}
	}
	// The third chain is refused up-front by flaky's open breaker.
	if _, err := e.RunChain(base, tasks, strings.NewReader("x")); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("want ErrBreakerOpen starting third chain, got %v", err)
	}
	if st := e.BreakerState("upper"); st != "closed" {
		t.Fatalf("upper's breaker = %q, want closed (propagated failures are uncountable)", st)
	}
	if st := e.BreakerState("flaky"); st != "open" {
		t.Fatalf("flaky's breaker = %q, want open", st)
	}
}
