// Package compressfilter implements the transfer-compression pushdown
// filter the paper's §VI-C/§VII proposes: for queries with low data
// selectivity — where filtering alone cannot shrink the transfer — the
// object store can spend CPU compressing the response stream instead,
// recovering Parquet's main advantage without changing the stored format.
//
// The filter is designed to be *pipelined* after a selection filter on the
// same request (paper §IV-B), so the stream is first filtered, then
// compressed, and decompressed by the connector at the compute side.
package compressfilter

import (
	"compress/flate"
	"fmt"
	"io"
	"strconv"

	"scoop/internal/storlet"
)

// FilterName is the name pushdown tasks use to invoke this filter.
const FilterName = "compress"

// OptLevel selects the DEFLATE level (1..9; default flate.BestSpeed).
const OptLevel = "level"

// Filter compresses the request stream with DEFLATE.
type Filter struct{}

// New returns the filter, ready to deploy into a storlet.Engine.
func New() *Filter { return &Filter{} }

// Name implements storlet.Filter.
func (*Filter) Name() string { return FilterName }

// Invoke implements storlet.Filter.
func (*Filter) Invoke(ctx *storlet.Context, in io.Reader, out io.Writer) error {
	level := flate.BestSpeed
	if raw := ctx.Task.Options[OptLevel]; raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < flate.BestSpeed || v > flate.BestCompression {
			return fmt.Errorf("compress: bad level %q", raw)
		}
		level = v
	}
	fw, err := flate.NewWriter(out, level)
	if err != nil {
		return err
	}
	n, err := io.Copy(fw, in)
	if err != nil {
		return fmt.Errorf("compress: %w", err)
	}
	ctx.Logf("compress: %d bytes in", n)
	return fw.Close()
}

// NewReader wraps a compressed response stream for the compute side.
func NewReader(r io.Reader) io.ReadCloser { return flate.NewReader(r) }
