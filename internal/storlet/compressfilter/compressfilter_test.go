package compressfilter

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"scoop/internal/pushdown"
	"scoop/internal/storlet"
	"scoop/internal/storlet/csvfilter"
)

func invoke(t *testing.T, opts map[string]string, data string) []byte {
	t.Helper()
	f := New()
	ctx := &storlet.Context{
		Task:     &pushdown.Task{Filter: FilterName, Options: opts},
		RangeEnd: int64(len(data)), ObjectSize: int64(len(data)),
	}
	var out bytes.Buffer
	if err := f.Invoke(ctx, strings.NewReader(data), &out); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

func TestRoundTrip(t *testing.T) {
	data := strings.Repeat("V000001,2015-01-01 00:10:00,10.5,Rotterdam,NED\n", 200)
	comp := invoke(t, nil, data)
	if len(comp) >= len(data)/3 {
		t.Errorf("compressed %d of %d bytes: too weak", len(comp), len(data))
	}
	r := NewReader(bytes.NewReader(comp))
	defer r.Close()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != data {
		t.Error("round trip mismatch")
	}
}

func TestLevels(t *testing.T) {
	data := strings.Repeat("abcabcabc", 1000)
	fast := invoke(t, map[string]string{OptLevel: "1"}, data)
	best := invoke(t, map[string]string{OptLevel: "9"}, data)
	if len(best) > len(fast) {
		t.Errorf("level 9 (%d) larger than level 1 (%d)", len(best), len(fast))
	}
}

func TestBadLevel(t *testing.T) {
	f := New()
	for _, lvl := range []string{"0", "10", "-3", "junk"} {
		ctx := &storlet.Context{Task: &pushdown.Task{Filter: FilterName,
			Options: map[string]string{OptLevel: lvl}}, RangeEnd: 1, ObjectSize: 1}
		if err := f.Invoke(ctx, strings.NewReader("x"), io.Discard); err == nil {
			t.Errorf("level %q accepted", lvl)
		}
	}
}

// The §VII pipeline: filter rows at the store, then compress what's left.
func TestPipelineWithCSVFilter(t *testing.T) {
	e := storlet.NewEngine(storlet.Limits{})
	if err := e.Register(csvfilter.New()); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(New()); err != nil {
		t.Fatal(err)
	}
	data := strings.Repeat("V1,2015-01-01,1.5,Rotterdam,NED\nV2,2015-01-01,2.5,Paris,FRA\n", 100)
	tasks := []*pushdown.Task{
		{Filter: csvfilter.FilterName,
			Schema:     "vid string, date string, index double, city string, state string",
			Columns:    []string{"vid", "index"},
			Predicates: []pushdown.Predicate{{Column: "state", Op: pushdown.OpEq, Value: "FRA"}}},
		{Filter: FilterName},
	}
	base := &storlet.Context{RangeEnd: int64(len(data)), ObjectSize: int64(len(data))}
	rc, err := e.RunChain(base, tasks, strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	comp, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(comp))
	defer r.Close()
	plain, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(plain)), "\n")
	if len(lines) != 100 {
		t.Fatalf("rows = %d", len(lines))
	}
	if lines[0] != "V2,2.5" {
		t.Errorf("row = %q", lines[0])
	}
	if len(comp) >= len(plain) {
		t.Errorf("compression did not help: %d >= %d", len(comp), len(plain))
	}
}
