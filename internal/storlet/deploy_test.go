package storlet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"scoop/internal/pushdown"
)

// prefixFactory deploys filters that prepend a fixed prefix to every line.
type prefixFactory struct{}

func (prefixFactory) Type() string { return "prefixer" }

func (prefixFactory) New(name string, params map[string]string) (Filter, error) {
	prefix, ok := params["prefix"]
	if !ok {
		return nil, fmt.Errorf("prefixer needs a prefix param")
	}
	return FilterFunc{
		FilterName: name,
		Fn: func(_ *Context, in io.Reader, out io.Writer) error {
			b, err := io.ReadAll(in)
			if err != nil {
				return err
			}
			for _, line := range strings.Split(strings.TrimRight(string(b), "\n"), "\n") {
				if _, err := fmt.Fprintf(out, "%s%s\n", prefix, line); err != nil {
					return err
				}
			}
			return nil
		},
	}, nil
}

func TestRegisterFactoryValidation(t *testing.T) {
	e := NewEngine(Limits{})
	if err := e.RegisterFactory(nil); err == nil {
		t.Error("nil factory accepted")
	}
	if err := e.RegisterFactory(prefixFactory{}); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterFactory(prefixFactory{}); err == nil {
		t.Error("duplicate factory accepted")
	}
}

func TestDeployManifestFactory(t *testing.T) {
	e := NewEngine(Limits{})
	if err := e.RegisterFactory(prefixFactory{}); err != nil {
		t.Fatal(err)
	}
	manifest := `{"name": "tagger", "type": "prefixer", "params": {"prefix": ">> "}}`
	if err := e.DeployManifest([]byte(manifest)); err != nil {
		t.Fatal(err)
	}
	ctx := &Context{Task: &pushdown.Task{Filter: "tagger"}, RangeEnd: 8, ObjectSize: 8}
	rc, err := e.Run(ctx, strings.NewReader("a\nb\n"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || string(b) != ">> a\n>> b\n" {
		t.Fatalf("got %q, %v", b, err)
	}
}

func TestDeployManifestErrors(t *testing.T) {
	e := NewEngine(Limits{})
	_ = e.RegisterFactory(prefixFactory{})
	bad := []string{
		`not json`,
		`{"type": "prefixer"}`,                     // missing name
		`{"name": "x", "type": "ghost"}`,           // unknown factory
		`{"name": "x", "type": "prefixer"}`,        // factory param error
		`{"name": "p", "type": "pipeline"}`,        // pipeline without steps
		`{"name": "p", "chain": [{"filter": ""}]}`, // step without filter
		`{"name": "p", "chain": [{"filter": "f", "predicates": [{"col": "c", "op": "bogus"}]}]}`,
	}
	for i, m := range bad {
		if err := e.DeployManifest([]byte(m)); err == nil {
			t.Errorf("manifest %d accepted: %s", i, m)
		}
	}
	// Duplicate deploy surfaces ErrAlreadyDeployed.
	ok := `{"name": "dup", "type": "prefixer", "params": {"prefix": "x"}}`
	if err := e.DeployManifest([]byte(ok)); err != nil {
		t.Fatal(err)
	}
	err := e.DeployManifest([]byte(ok))
	if !errors.Is(err, ErrAlreadyDeployed) {
		t.Errorf("duplicate deploy error = %v, want ErrAlreadyDeployed", err)
	}
}

func TestDeployPipelineRedeployIsAlreadyDeployed(t *testing.T) {
	e := newTestEngine(t, Limits{}, upper)
	manifest := []byte(`{"name": "p", "chain": [{"filter": "upper"}]}`)
	if err := e.DeployManifest(manifest); err != nil {
		t.Fatal(err)
	}
	// Redeploying the same pipeline is idempotent from a deploy flow's view:
	// it reports ErrAlreadyDeployed, which callers treat as success.
	if err := e.DeployManifest(manifest); !errors.Is(err, ErrAlreadyDeployed) {
		t.Fatalf("pipeline redeploy: want ErrAlreadyDeployed, got %v", err)
	}
	// And the original deployment still works.
	if got, err := runTask(t, e, "p", "hi"); err != nil || got != "HI" {
		t.Fatalf("pipeline after redeploy: %q, %v", got, err)
	}
}

func TestRunChainPropagatesFirstStageError(t *testing.T) {
	boom := FilterFunc{FilterName: "boom", Fn: func(_ *Context, _ io.Reader, _ io.Writer) error {
		return fmt.Errorf("first stage exploded")
	}}
	e := newTestEngine(t, Limits{}, boom, upper, reverse)
	base := &Context{RangeEnd: 3, ObjectSize: 3}
	tasks := []*pushdown.Task{{Filter: "boom"}, {Filter: "upper"}, {Filter: "reverse"}}
	rc, err := e.RunChain(base, tasks, strings.NewReader("abc"))
	if err != nil {
		t.Fatalf("chain start: %v", err)
	}
	defer rc.Close()
	_, err = io.ReadAll(rc)
	var fe *FilterError
	if !errors.As(err, &fe) {
		t.Fatalf("want *FilterError, got %v", err)
	}
	if fe.Filter != "boom" {
		t.Fatalf("error attributed to %q, want the FIRST failing stage %q", fe.Filter, "boom")
	}
	if !strings.Contains(err.Error(), "first stage exploded") {
		t.Fatalf("cause lost: %v", err)
	}
}

func TestPipelineManifestPropagatesContext(t *testing.T) {
	// A pipeline macro must forward Context.Ctx to its stages: a filter that
	// inspects ctx.Ctx sees the request context, not nil.
	gotCtx := make(chan bool, 1)
	probe := FilterFunc{FilterName: "probe", Fn: func(ctx *Context, in io.Reader, out io.Writer) error {
		gotCtx <- ctx.Ctx != nil
		_, err := io.Copy(out, in)
		return err
	}}
	e := newTestEngine(t, Limits{}, probe)
	if err := e.DeployManifest([]byte(`{"name": "p", "chain": [{"filter": "probe"}]}`)); err != nil {
		t.Fatal(err)
	}
	ctx := &Context{
		Ctx:      context.Background(),
		Task:     &pushdown.Task{Filter: "p"},
		RangeEnd: 2, ObjectSize: 2,
	}
	rc, err := e.Run(ctx, strings.NewReader("ok"))
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := io.ReadAll(rc); err != nil {
		t.Fatal(err)
	}
	if !<-gotCtx {
		t.Fatal("pipeline stage did not receive Context.Ctx")
	}
}

func TestDeployPipelineManifest(t *testing.T) {
	e := NewEngine(Limits{})
	_ = e.Register(upper)
	_ = e.Register(reverse)
	manifest := `{"name": "shout-backwards", "type": "pipeline", "chain": [
		{"filter": "upper"},
		{"filter": "reverse"}
	]}`
	if err := e.DeployManifest([]byte(manifest)); err != nil {
		t.Fatal(err)
	}
	ctx := &Context{Task: &pushdown.Task{Filter: "shout-backwards"}, RangeEnd: 3, ObjectSize: 3}
	rc, err := e.Run(ctx, strings.NewReader("abc"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || string(b) != "CBA" {
		t.Fatalf("got %q, %v", b, err)
	}
}

func TestPipelineOptionMerge(t *testing.T) {
	e := NewEngine(Limits{})
	echoOpt := FilterFunc{
		FilterName: "echo-opt",
		Fn: func(ctx *Context, _ io.Reader, out io.Writer) error {
			fmt.Fprintf(out, "%s/%s", ctx.Task.Options["fixed"], ctx.Task.Options["var"])
			return nil
		},
	}
	_ = e.Register(echoOpt)
	manifest := `{"name": "macro", "chain": [{"filter": "echo-opt", "options": {"fixed": "F"}}]}`
	if err := e.DeployManifest([]byte(manifest)); err != nil {
		t.Fatal(err)
	}
	// Invocation-time options merge into the first step.
	ctx := &Context{
		Task:     &pushdown.Task{Filter: "macro", Options: map[string]string{"var": "V"}},
		RangeEnd: 1, ObjectSize: 1,
	}
	rc, err := e.Run(ctx, strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(rc)
	rc.Close()
	if string(b) != "F/V" {
		t.Errorf("got %q", b)
	}
}
