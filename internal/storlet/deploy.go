package storlet

import (
	"encoding/json"
	"fmt"
	"io"

	"scoop/internal/pushdown"
)

// This file implements the Storlets deployment story: "a developer can
// write code, package and deploy it as a regular object" (paper §V). Go
// cannot load code at runtime, so the honest equivalent is a two-level
// scheme:
//
//   - filter *factories* are compiled in and registered once (the sandbox
//     images of real Storlets), and
//   - *manifests* — JSON documents stored as regular objects — instantiate
//     parameterized filters from those factories under new names, at
//     runtime, without touching the store's code.
//
// A manifest can also define a named pipeline of already-deployed filters
// (a macro), which tenants then invoke as a single pushdown task.

// Factory instantiates filters of one type from manifest parameters.
type Factory interface {
	// Type is the manifest "type" string this factory handles.
	Type() string
	// New builds a filter instance that will be deployed under name.
	New(name string, params map[string]string) (Filter, error)
}

// Manifest is the deployable description of a filter instance.
type Manifest struct {
	// Name the new filter is deployed under.
	Name string `json:"name"`
	// Type selects the factory ("pipeline" is built in).
	Type string `json:"type"`
	// Params parameterize the factory.
	Params map[string]string `json:"params,omitempty"`
	// Chain defines a pipeline manifest: steps reference already-deployed
	// filters with fixed options.
	Chain []ChainStep `json:"chain,omitempty"`
}

// ChainStep is one stage of a pipeline manifest.
type ChainStep struct {
	Filter  string            `json:"filter"`
	Options map[string]string `json:"options,omitempty"`
	// Columns/Predicates/Schema allow a pipeline step to fix a full task.
	Columns    []string             `json:"columns,omitempty"`
	Predicates []pushdown.Predicate `json:"predicates,omitempty"`
	Schema     string               `json:"schema,omitempty"`
}

// RegisterFactory makes a filter type deployable via manifests.
func (e *Engine) RegisterFactory(f Factory) error {
	if f == nil || f.Type() == "" {
		return fmt.Errorf("storlet: factory needs a type")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.factories == nil {
		e.factories = make(map[string]Factory)
	}
	if _, dup := e.factories[f.Type()]; dup {
		return fmt.Errorf("storlet: factory %q already registered", f.Type())
	}
	e.factories[f.Type()] = f
	return nil
}

// DeployManifest parses a manifest document and deploys the filter it
// describes. The manifest may come from any source; object stores deliver
// it as a regular object (see objectstore.DeployStorlets).
func (e *Engine) DeployManifest(data []byte) error {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("storlet: bad manifest: %w", err)
	}
	if m.Name == "" {
		return fmt.Errorf("storlet: manifest missing name")
	}
	if m.Type == "pipeline" || (m.Type == "" && len(m.Chain) > 0) {
		return e.deployPipeline(m)
	}
	e.mu.RLock()
	f, ok := e.factories[m.Type]
	e.mu.RUnlock()
	if !ok {
		return fmt.Errorf("storlet: no factory for type %q", m.Type)
	}
	inst, err := f.New(m.Name, m.Params)
	if err != nil {
		return fmt.Errorf("storlet: factory %q: %w", m.Type, err)
	}
	return e.Register(inst)
}

// deployPipeline registers a named macro filter that runs a fixed chain of
// already-deployed filters.
func (e *Engine) deployPipeline(m Manifest) error {
	if len(m.Chain) == 0 {
		return fmt.Errorf("storlet: pipeline %q has no steps", m.Name)
	}
	tasks := make([]*pushdown.Task, len(m.Chain))
	for i, step := range m.Chain {
		if step.Filter == "" {
			return fmt.Errorf("storlet: pipeline %q step %d missing filter", m.Name, i)
		}
		tasks[i] = &pushdown.Task{
			Filter:     step.Filter,
			Options:    step.Options,
			Columns:    step.Columns,
			Predicates: step.Predicates,
			Schema:     step.Schema,
		}
		if err := tasks[i].Validate(); err != nil {
			return fmt.Errorf("storlet: pipeline %q step %d: %w", m.Name, i, err)
		}
	}
	return e.Register(&pipelineFilter{name: m.Name, engine: e, tasks: tasks})
}

// pipelineFilter invokes a fixed chain through its engine.
type pipelineFilter struct {
	name   string
	engine *Engine
	tasks  []*pushdown.Task
}

// Name implements Filter.
func (p *pipelineFilter) Name() string { return p.name }

// Invoke implements Filter by running the fixed chain. The invocation-time
// task's options are merged into the FIRST step (so callers can still tune
// a deployed pipeline per request).
func (p *pipelineFilter) Invoke(ctx *Context, in io.Reader, out io.Writer) error {
	tasks := make([]*pushdown.Task, len(p.tasks))
	copy(tasks, p.tasks)
	if ctx.Task != nil && len(ctx.Task.Options) > 0 {
		first := *tasks[0]
		merged := make(map[string]string, len(first.Options)+len(ctx.Task.Options))
		for k, v := range first.Options {
			merged[k] = v
		}
		for k, v := range ctx.Task.Options {
			merged[k] = v
		}
		first.Options = merged
		tasks[0] = &first
	}
	base := &Context{
		Ctx:        ctx.Ctx,
		RangeStart: ctx.RangeStart,
		RangeEnd:   ctx.RangeEnd,
		ObjectSize: ctx.ObjectSize,
		Log:        ctx.Log,
	}
	rc, err := p.engine.RunChain(base, tasks, in)
	if err != nil {
		return err
	}
	defer rc.Close()
	_, err = io.Copy(out, rc)
	return err
}
