// Package jsonfilter extends pushdown to a second data format, the paper's
// §VII direction ("object stores are not limited in the types and data
// formats they can store"): a filter over JSON-lines objects that evaluates
// selection predicates on document fields and emits the projected fields as
// CSV — the common representation the compute side already consumes.
//
// Nested fields are addressed with dotted paths ("meter.location.city").
// Byte ranges follow the same newline-record split semantics as CSV.
package jsonfilter

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"scoop/internal/csvio"
	"scoop/internal/pushdown"
	"scoop/internal/storlet"
)

// FilterName is the name pushdown tasks use to invoke this filter.
const FilterName = "jsonl"

// Option keys.
const (
	// OptSkipInvalid ("true") silently drops lines that are not valid JSON
	// objects instead of failing the request.
	OptSkipInvalid = "skip_invalid"
)

// Filter is the JSON-lines projection/selection storlet.
type Filter struct{}

// New returns the filter, ready to deploy.
func New() *Filter { return &Filter{} }

// Name implements storlet.Filter.
func (*Filter) Name() string { return FilterName }

// Invoke implements storlet.Filter. Task.Columns names the projected fields
// (dotted paths allowed; required — JSON objects have no inherent column
// order, so an explicit projection defines the CSV layout). Predicates
// apply to field paths the same way.
func (f *Filter) Invoke(ctx *storlet.Context, in io.Reader, out io.Writer) error {
	task := ctx.Task
	if task == nil {
		return errors.New("jsonfilter: nil task")
	}
	if len(task.Columns) == 0 {
		return errors.New("jsonfilter: projection (Columns) is required for JSON")
	}
	skipInvalid := task.Options[OptSkipInvalid] == "true"

	rr := csvio.AcquireRangeReader(in, ctx.RangeStart, ctx.RangeEnd)
	defer rr.Release()
	bw := storlet.AcquireWriter(out)
	defer storlet.ReleaseWriter(bw)
	rows, kept := 0, 0
	for {
		rec, err := rr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if len(bytes.TrimSpace(rec)) == 0 {
			continue
		}
		rows++
		doc, err := parseDoc(rec)
		if err != nil {
			if skipInvalid {
				continue
			}
			return fmt.Errorf("jsonfilter: line %d: %w", rows, err)
		}
		if !matches(task.Predicates, doc) {
			continue
		}
		kept++
		fields := make([][]byte, len(task.Columns))
		for i, path := range task.Columns {
			v, ok := lookup(doc, path)
			if !ok {
				fields[i] = nil
				continue
			}
			fields[i] = []byte(render(v))
		}
		if err := csvio.WriteRecord(bw, fields, csvio.DefaultDelimiter); err != nil {
			return err
		}
	}
	ctx.Logf("jsonfilter: range [%d,%d): %d docs in, %d out", ctx.RangeStart, ctx.RangeEnd, rows, kept)
	return bw.Flush()
}

// parseDoc decodes one JSON object, preserving number precision.
func parseDoc(line []byte) (map[string]any, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.UseNumber()
	var doc map[string]any
	if err := dec.Decode(&doc); err != nil {
		return nil, err
	}
	return doc, nil
}

// lookup resolves a dotted path in the document.
func lookup(doc map[string]any, path string) (any, bool) {
	cur := any(doc)
	for _, part := range strings.Split(path, ".") {
		m, ok := cur.(map[string]any)
		if !ok {
			return nil, false
		}
		cur, ok = m[part]
		if !ok {
			return nil, false
		}
	}
	return cur, true
}

// render turns a JSON value into its CSV field text.
func render(v any) string {
	switch x := v.(type) {
	case nil:
		return ""
	case string:
		return x
	case json.Number:
		return x.String()
	case bool:
		return strconv.FormatBool(x)
	default:
		// Arrays/objects: compact JSON text.
		b, err := json.Marshal(x)
		if err != nil {
			return ""
		}
		return string(b)
	}
}

// matches applies the predicate conjunction to the document.
func matches(preds []pushdown.Predicate, doc map[string]any) bool {
	for _, p := range preds {
		v, ok := lookup(doc, p.Column)
		null := !ok || v == nil
		raw := ""
		if !null {
			raw = render(v)
		}
		if !p.Matches(raw, null) {
			return false
		}
	}
	return true
}
