package jsonfilter

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"scoop/internal/pushdown"
	"scoop/internal/storlet"
)

const docs = `{"vid": "V1", "reading": {"index": 10.5, "ts": "2015-01-01"}, "city": "Rotterdam", "ok": true}
{"vid": "V2", "reading": {"index": 5.25, "ts": "2015-01-02"}, "city": "Paris", "ok": false}
{"vid": "V3", "reading": {"index": 1, "ts": "2015-02-01"}, "city": "Kyiv"}
`

func invoke(t *testing.T, task *pushdown.Task, data string, start, end int64) string {
	t.Helper()
	f := New()
	ctx := &storlet.Context{Task: task, RangeStart: start, RangeEnd: end, ObjectSize: int64(len(data))}
	var out bytes.Buffer
	if err := f.Invoke(ctx, strings.NewReader(data[start:]), &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestProjectionWithNestedPaths(t *testing.T) {
	task := &pushdown.Task{Filter: FilterName, Columns: []string{"vid", "reading.index", "city"}}
	got := invoke(t, task, docs, 0, int64(len(docs)))
	want := "V1,10.5,Rotterdam\nV2,5.25,Paris\nV3,1,Kyiv\n"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestSelection(t *testing.T) {
	task := &pushdown.Task{Filter: FilterName,
		Columns: []string{"vid"},
		Predicates: []pushdown.Predicate{
			{Column: "reading.index", Op: pushdown.OpGt, Value: "2", Numeric: true},
			{Column: "reading.ts", Op: pushdown.OpLike, Value: "2015-01%"},
		}}
	got := invoke(t, task, docs, 0, int64(len(docs)))
	if got != "V1\nV2\n" {
		t.Errorf("got %q", got)
	}
}

func TestMissingFieldIsNull(t *testing.T) {
	// "ok" is absent from V3: IS NULL matches it, equality does not.
	task := &pushdown.Task{Filter: FilterName, Columns: []string{"vid"},
		Predicates: []pushdown.Predicate{{Column: "ok", Op: pushdown.OpIsNull}}}
	got := invoke(t, task, docs, 0, int64(len(docs)))
	if got != "V3\n" {
		t.Errorf("got %q", got)
	}
	// Projection of a missing field emits an empty cell.
	task = &pushdown.Task{Filter: FilterName, Columns: []string{"vid", "ok"}}
	got = invoke(t, task, docs, 0, int64(len(docs)))
	if !strings.Contains(got, "V3,\n") {
		t.Errorf("got %q", got)
	}
	if !strings.Contains(got, "V1,true\n") {
		t.Errorf("got %q", got)
	}
}

func TestByteRangeSplit(t *testing.T) {
	task := &pushdown.Task{Filter: FilterName, Columns: []string{"vid"}}
	for _, cut := range []int64{5, 40, 95, 120} {
		if cut >= int64(len(docs)) {
			continue
		}
		a := invoke(t, task, docs, 0, cut)
		b := invoke(t, task, docs, cut, int64(len(docs)))
		total := strings.Count(a, "\n") + strings.Count(b, "\n")
		if total != 3 {
			t.Errorf("cut %d: %d docs, want 3 (a=%q b=%q)", cut, total, a, b)
		}
	}
}

func TestInvalidLines(t *testing.T) {
	dirty := `{"vid": "V1"}` + "\nnot json\n" + `{"vid": "V2"}` + "\n"
	task := &pushdown.Task{Filter: FilterName, Columns: []string{"vid"}}
	f := New()
	ctx := &storlet.Context{Task: task, RangeEnd: int64(len(dirty)), ObjectSize: int64(len(dirty))}
	if err := f.Invoke(ctx, strings.NewReader(dirty), io.Discard); err == nil {
		t.Error("invalid line accepted without skip_invalid")
	}
	task.Options = map[string]string{OptSkipInvalid: "true"}
	got := invoke(t, task, dirty, 0, int64(len(dirty)))
	if got != "V1\nV2\n" {
		t.Errorf("got %q", got)
	}
}

func TestArraysRenderAsJSON(t *testing.T) {
	data := `{"vid": "V1", "tags": ["a", "b"]}` + "\n"
	task := &pushdown.Task{Filter: FilterName, Columns: []string{"tags"}}
	got := invoke(t, task, data, 0, int64(len(data)))
	if got != `"[""a"",""b""]"`+"\n" {
		t.Errorf("got %q", got)
	}
}

func TestErrors(t *testing.T) {
	f := New()
	ctx := &storlet.Context{Task: nil, RangeEnd: 1, ObjectSize: 1}
	if err := f.Invoke(ctx, strings.NewReader("{}"), io.Discard); err == nil {
		t.Error("nil task accepted")
	}
	ctx.Task = &pushdown.Task{Filter: FilterName}
	if err := f.Invoke(ctx, strings.NewReader("{}"), io.Discard); err == nil {
		t.Error("missing projection accepted")
	}
}

func TestNumberPrecisionPreserved(t *testing.T) {
	data := `{"big": 9007199254740993}` + "\n" // beyond float64 integer precision
	task := &pushdown.Task{Filter: FilterName, Columns: []string{"big"}}
	got := strings.TrimSpace(invoke(t, task, data, 0, int64(len(data))))
	if got != "9007199254740993" {
		t.Errorf("precision lost: %q", got)
	}
}
