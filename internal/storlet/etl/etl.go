// Package etl provides upload-path transformation filters (paper §V:
// "Storlets permits this in the PUT data path. We use Storlet for data
// cleansing and for modifying the data format (e.g., split a column into
// multiple ones)"). Running ETL once at upload means analytics jobs read
// clean, query-friendly data without rewriting huge datasets.
package etl

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"scoop/internal/csvio"
	"scoop/internal/storlet"
)

// Filter names.
const (
	CleanseName = "etl-cleanse"
	SplitName   = "etl-splitcol"
)

// Cleanse is a PUT-path filter that trims whitespace from every field and
// drops malformed records: wrong field count or empty required fields.
//
// Options:
//
//	columns  — expected field count (required)
//	required — comma-separated indexes that must be non-empty (default none)
type Cleanse struct{}

// NewCleanse returns the cleansing filter.
func NewCleanse() *Cleanse { return &Cleanse{} }

// Name implements storlet.Filter.
func (*Cleanse) Name() string { return CleanseName }

// Invoke implements storlet.Filter.
func (*Cleanse) Invoke(ctx *storlet.Context, in io.Reader, out io.Writer) error {
	want, err := intOption(ctx, "columns")
	if err != nil {
		return err
	}
	var required []int
	if raw := ctx.Task.Options["required"]; raw != "" {
		for _, part := range strings.Split(raw, ",") {
			i, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || i < 0 || i >= want {
				return fmt.Errorf("etl: bad required index %q", part)
			}
			required = append(required, i)
		}
	}
	rr := csvio.AcquireRangeReader(in, ctx.RangeStart, ctx.RangeEnd)
	defer rr.Release()
	bw := storlet.AcquireWriter(out)
	defer storlet.ReleaseWriter(bw)
	var fields [][]byte
	total, dropped := 0, 0
	for {
		rec, err := rr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		total++
		fields = csvio.Fields(rec, csvio.DefaultDelimiter, fields)
		if len(fields) != want {
			dropped++
			continue
		}
		ok := true
		for i := range fields {
			fields[i] = bytes.TrimSpace(fields[i])
		}
		for _, ri := range required {
			if len(fields[ri]) == 0 {
				ok = false
				break
			}
		}
		if !ok {
			dropped++
			continue
		}
		if err := csvio.WriteRecord(bw, fields, csvio.DefaultDelimiter); err != nil {
			return err
		}
	}
	ctx.Logf("etl-cleanse: %d records, %d dropped", total, dropped)
	return bw.Flush()
}

// Split is a PUT-path filter that splits one column into several on a
// separator, e.g. "2015-01-17 10:20:00" into a day and a time column.
//
// Options:
//
//	column — index of the column to split (required)
//	sep    — separator string (default " ")
//	parts  — number of resulting columns (default 2); missing parts are empty
type Split struct{}

// NewSplit returns the column-splitting filter.
func NewSplit() *Split { return &Split{} }

// Name implements storlet.Filter.
func (*Split) Name() string { return SplitName }

// Invoke implements storlet.Filter.
func (*Split) Invoke(ctx *storlet.Context, in io.Reader, out io.Writer) error {
	col, err := intOption(ctx, "column")
	if err != nil {
		return err
	}
	sep := ctx.Task.Options["sep"]
	if sep == "" {
		sep = " "
	}
	parts := 2
	if raw := ctx.Task.Options["parts"]; raw != "" {
		parts, err = strconv.Atoi(raw)
		if err != nil || parts < 2 {
			return fmt.Errorf("etl: bad parts %q", raw)
		}
	}
	rr := csvio.AcquireRangeReader(in, ctx.RangeStart, ctx.RangeEnd)
	defer rr.Release()
	bw := storlet.AcquireWriter(out)
	defer storlet.ReleaseWriter(bw)
	var fields [][]byte
	sepB := []byte(sep)
	for {
		rec, err := rr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		fields = csvio.Fields(rec, csvio.DefaultDelimiter, fields)
		if col >= len(fields) {
			// Leave short records untouched; a cleansing stage upstream in
			// the pipeline is responsible for dropping them.
			if err := csvio.WriteRecord(bw, fields, csvio.DefaultDelimiter); err != nil {
				return err
			}
			continue
		}
		split := bytes.SplitN(fields[col], sepB, parts)
		outFields := make([][]byte, 0, len(fields)+parts-1)
		outFields = append(outFields, fields[:col]...)
		outFields = append(outFields, split...)
		for i := len(split); i < parts; i++ {
			outFields = append(outFields, nil)
		}
		outFields = append(outFields, fields[col+1:]...)
		if err := csvio.WriteRecord(bw, outFields, csvio.DefaultDelimiter); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func intOption(ctx *storlet.Context, key string) (int, error) {
	raw, ok := ctx.Task.Options[key]
	if !ok {
		return 0, fmt.Errorf("etl: missing option %q", key)
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("etl: bad option %s=%q", key, raw)
	}
	return v, nil
}
