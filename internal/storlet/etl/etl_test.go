package etl

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"scoop/internal/pushdown"
	"scoop/internal/storlet"
)

func invokeFilter(t *testing.T, f storlet.Filter, opts map[string]string, data string) string {
	t.Helper()
	ctx := &storlet.Context{
		Task:     &pushdown.Task{Filter: f.Name(), Options: opts},
		RangeEnd: int64(len(data)), ObjectSize: int64(len(data)),
	}
	var out bytes.Buffer
	if err := f.Invoke(ctx, strings.NewReader(data), &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestCleanseTrimsAndDrops(t *testing.T) {
	data := "  V1 , 2015-01-01 ,10.5\n" + // padded: keep, trimmed
		"V2,2015-01-02\n" + // short: drop
		"V3,2015-01-03,7.5,extra\n" + // long: drop
		",2015-01-04,3.0\n" + // empty required field: drop
		"V5,2015-01-05,2.0\n" // clean: keep
	got := invokeFilter(t, NewCleanse(), map[string]string{"columns": "3", "required": "0,1"}, data)
	want := "V1,2015-01-01,10.5\nV5,2015-01-05,2.0\n"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestCleanseNoRequired(t *testing.T) {
	data := ",b,c\n"
	got := invokeFilter(t, NewCleanse(), map[string]string{"columns": "3"}, data)
	if got != ",b,c\n" {
		t.Errorf("got %q", got)
	}
}

func TestCleanseErrors(t *testing.T) {
	f := NewCleanse()
	cases := []map[string]string{
		nil,                                 // missing columns
		{"columns": "x"},                    // bad columns
		{"columns": "-1"},                   // negative
		{"columns": "3", "required": "9"},   // out of range
		{"columns": "3", "required": "a,b"}, // non-numeric
	}
	for i, opts := range cases {
		ctx := &storlet.Context{
			Task:     &pushdown.Task{Filter: f.Name(), Options: opts},
			RangeEnd: 4, ObjectSize: 4,
		}
		if err := f.Invoke(ctx, strings.NewReader("a,b\n"), io.Discard); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestSplitDateColumn(t *testing.T) {
	data := "V1,2015-01-01 00:10:00,10.5\n"
	got := invokeFilter(t, NewSplit(), map[string]string{"column": "1"}, data)
	if got != "V1,2015-01-01,00:10:00,10.5\n" {
		t.Errorf("got %q", got)
	}
}

func TestSplitMissingPart(t *testing.T) {
	// Value has no separator: second part comes out empty.
	data := "V1,nodate,10.5\n"
	got := invokeFilter(t, NewSplit(), map[string]string{"column": "1"}, data)
	if got != "V1,nodate,,10.5\n" {
		t.Errorf("got %q", got)
	}
}

func TestSplitCustomSepAndParts(t *testing.T) {
	data := "a,x|y|z,b\n"
	got := invokeFilter(t, NewSplit(), map[string]string{"column": "1", "sep": "|", "parts": "3"}, data)
	if got != "a,x,y,z,b\n" {
		t.Errorf("got %q", got)
	}
}

func TestSplitShortRecordPassthrough(t *testing.T) {
	data := "a\n"
	got := invokeFilter(t, NewSplit(), map[string]string{"column": "5"}, data)
	if got != "a\n" {
		t.Errorf("got %q", got)
	}
}

func TestSplitErrors(t *testing.T) {
	f := NewSplit()
	for i, opts := range []map[string]string{
		nil,
		{"column": "x"},
		{"column": "1", "parts": "1"},
		{"column": "1", "parts": "zero"},
	} {
		ctx := &storlet.Context{
			Task:     &pushdown.Task{Filter: f.Name(), Options: opts},
			RangeEnd: 4, ObjectSize: 4,
		}
		if err := f.Invoke(ctx, strings.NewReader("a,b\n"), io.Discard); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

// The upload pipeline the paper describes: cleanse, then split the date.
func TestPutPathPipeline(t *testing.T) {
	e := storlet.NewEngine(storlet.Limits{})
	if err := e.Register(NewCleanse()); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(NewSplit()); err != nil {
		t.Fatal(err)
	}
	data := " V1 ,2015-01-01 00:10:00,10.5\nbadrow\nV2,2015-01-02 06:00:00,4.0\n"
	tasks := []*pushdown.Task{
		{Filter: CleanseName, Options: map[string]string{"columns": "3", "required": "0"}},
		{Filter: SplitName, Options: map[string]string{"column": "1"}},
	}
	base := &storlet.Context{RangeEnd: int64(len(data)), ObjectSize: int64(len(data))}
	rc, err := e.RunChain(base, tasks, strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	b, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	want := "V1,2015-01-01,00:10:00,10.5\nV2,2015-01-02,06:00:00,4.0\n"
	if string(b) != want {
		t.Errorf("got %q, want %q", b, want)
	}
}

func TestNames(t *testing.T) {
	if NewCleanse().Name() != CleanseName || NewSplit().Name() != SplitName {
		t.Error("filter names")
	}
}
