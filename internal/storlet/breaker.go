package storlet

import (
	"hash/fnv"
	"math/rand"
	"sync"
)

// BreakerPolicy configures the per-filter circuit breaker. The breaker is
// count-based, not clock-based: it opens after Threshold consecutive
// countable failures and schedules its half-open probe after a number of
// *refused invocations* drawn from a seeded RNG (Cooldown + [0,Jitter]).
// Counting refusals instead of wall-clock time keeps chaos tests fully
// deterministic — the same request sequence always probes at the same
// point — matching internal/faultinject's discipline of sequence numbers
// over clocks.
type BreakerPolicy struct {
	// Threshold is the number of consecutive countable failures that opens
	// the breaker. Zero disables the breaker entirely (the default: the
	// engine behaves exactly as before this policy existed).
	Threshold int
	// Cooldown is the base number of refused invocations an open breaker
	// absorbs before admitting a half-open probe. Defaults to 4.
	Cooldown int
	// Jitter is the maximum extra refusals added to Cooldown, drawn from
	// the seeded RNG on every open transition so repeated opens do not
	// probe in lock-step across filters. Defaults to 2.
	Jitter int
	// Seed seeds the jitter RNG (combined with the filter name so distinct
	// filters de-synchronize). Defaults to 1.
	Seed int64
}

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.Cooldown <= 0 {
		p.Cooldown = 4
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	} else if p.Jitter == 0 {
		p.Jitter = 2
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is the per-filter circuit breaker instance. All methods are safe
// for concurrent use.
type breaker struct {
	mu     sync.Mutex
	policy BreakerPolicy
	rng    *rand.Rand

	state      int
	fails      int // consecutive countable failures while closed
	refused    int // refusals since the breaker opened
	probeAfter int // refusals to absorb before the next half-open probe
	opens      int64
}

func fnv64a(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func newBreaker(name string, p BreakerPolicy) *breaker {
	p = p.withDefaults()
	return &breaker{
		policy: p,
		rng:    rand.New(rand.NewSource(p.Seed ^ int64(fnv64a(name)))),
	}
}

// admit decides whether an invocation may proceed. probe is true when the
// invocation is a half-open probe: its outcome alone decides whether the
// breaker closes again or re-opens.
func (b *breaker) admit() (admitted, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerHalfOpen:
		// A probe is already in flight; refuse until it reports.
		return false, false
	default: // breakerOpen
		b.refused++
		if b.refused >= b.probeAfter {
			b.state = breakerHalfOpen
			return true, true
		}
		return false, false
	}
}

// open transitions to the open state and draws the refusal budget for the
// next probe. Caller holds b.mu.
func (b *breaker) open() {
	b.state = breakerOpen
	b.fails = 0
	b.refused = 0
	b.probeAfter = b.policy.Cooldown + b.rng.Intn(b.policy.Jitter+1)
	b.opens++
}

// record reports the outcome of an admitted invocation. countable is false
// for failures that say nothing about the filter's health (the caller
// abandoned the stream, or an upstream chain stage failed first); those
// never trip the breaker, but a probe that ends uncountably re-arms the
// open state so the next refusal retries the probe immediately.
func (b *breaker) record(err error, probe, countable bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		switch {
		case err == nil:
			b.state = breakerClosed
			b.fails = 0
		case countable:
			b.open()
		default:
			// Inconclusive probe: stay open but let the very next
			// refusal promote another probe.
			b.state = breakerOpen
			b.refused = b.probeAfter
		}
		return
	}
	if err == nil {
		b.fails = 0
		return
	}
	if !countable || b.state != breakerClosed {
		return
	}
	b.fails++
	if b.fails >= b.policy.Threshold {
		b.open()
	}
}

// stateName reports the current state for diagnostics.
func (b *breaker) stateName() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

func (b *breaker) openCount() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
