// Package aggfilter implements partial aggregation at the object store —
// the paper's §IV vision beyond plain filtering: "it can perform
// aggregations on individual object requests to facilitate the construction
// of graphs from a large dataset".
//
// The filter groups CSV records by key columns and emits one record per
// group holding partial aggregates (sum/count/min/max) for its byte range.
// Because every supported aggregate is algebraic, partials from parallel
// range requests merge exactly at the compute side (Merge), so a GROUP BY
// query can move *one record per group per split* instead of every matching
// row — often orders of magnitude less than even a selective filter.
package aggfilter

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"scoop/internal/csvio"
	"scoop/internal/pushdown"
	"scoop/internal/sql/types"
	"scoop/internal/storlet"
)

// FilterName is the name pushdown tasks use to invoke this filter.
const FilterName = "agg"

// Option keys in Task.Options.
const (
	// OptGroup is a comma-separated list of group-by column names; empty
	// aggregates the whole range into one record.
	OptGroup = "group"
	// OptAggs is a comma-separated list of "func:column" specs, e.g.
	// "sum:index,count:*,min:sumHC". Required.
	OptAggs = "aggs"
	// OptHeader ("true") marks the object's first record as a header.
	OptHeader = "header"
)

// Func is an algebraic aggregate function.
type Func string

// Supported aggregate functions.
const (
	Sum   Func = "sum"
	Count Func = "count"
	Min   Func = "min"
	Max   Func = "max"
)

// Spec is one aggregate in the output.
type Spec struct {
	Func   Func
	Column string // "*" allowed for count
}

// String renders the spec in option form.
func (s Spec) String() string { return string(s.Func) + ":" + s.Column }

// ParseSpecs parses the OptAggs value.
func ParseSpecs(raw string) ([]Spec, error) {
	if strings.TrimSpace(raw) == "" {
		return nil, errors.New("aggfilter: empty aggs")
	}
	var out []Spec
	for _, part := range strings.Split(raw, ",") {
		fc := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(fc) != 2 {
			return nil, fmt.Errorf("aggfilter: bad agg spec %q", part)
		}
		f := Func(strings.ToLower(fc[0]))
		switch f {
		case Sum, Count, Min, Max:
		default:
			return nil, fmt.Errorf("aggfilter: unknown function %q", fc[0])
		}
		if fc[1] == "" {
			return nil, fmt.Errorf("aggfilter: spec %q missing column", part)
		}
		if fc[1] == "*" && f != Count {
			return nil, fmt.Errorf("aggfilter: * only valid for count")
		}
		out = append(out, Spec{Func: f, Column: fc[1]})
	}
	return out, nil
}

// FormatSpecs renders specs for OptAggs.
func FormatSpecs(specs []Spec) string {
	parts := make([]string, len(specs))
	for i, s := range specs {
		parts[i] = s.String()
	}
	return strings.Join(parts, ",")
}

// Filter is the partial-aggregation storlet.
type Filter struct{}

// New returns the filter, ready to deploy.
func New() *Filter { return &Filter{} }

// Name implements storlet.Filter.
func (*Filter) Name() string { return FilterName }

type partial struct {
	sum   float64
	count int64
	min   types.Value
	max   types.Value
	any   bool
}

type groupState struct {
	keys []string
	aggs []partial
}

// Invoke implements storlet.Filter.
func (f *Filter) Invoke(ctx *storlet.Context, in io.Reader, out io.Writer) error {
	task := ctx.Task
	if task == nil || task.Schema == "" {
		return errors.New("aggfilter: task needs a schema")
	}
	schema, err := types.ParseSchema(task.Schema)
	if err != nil {
		return fmt.Errorf("aggfilter: %w", err)
	}
	specs, err := ParseSpecs(task.Options[OptAggs])
	if err != nil {
		return err
	}
	specIdx := make([]int, len(specs))
	for i, s := range specs {
		if s.Column == "*" {
			specIdx[i] = -1
			continue
		}
		idx := schema.Index(s.Column)
		if idx < 0 {
			return fmt.Errorf("aggfilter: aggregate column %q not in schema", s.Column)
		}
		specIdx[i] = idx
	}
	var groupIdx []int
	if raw := task.Options[OptGroup]; strings.TrimSpace(raw) != "" {
		for _, name := range strings.Split(raw, ",") {
			idx := schema.Index(strings.TrimSpace(name))
			if idx < 0 {
				return fmt.Errorf("aggfilter: group column %q not in schema", name)
			}
			groupIdx = append(groupIdx, idx)
		}
	}
	preds := make([]boundPred, 0, len(task.Predicates))
	for _, p := range task.Predicates {
		idx := schema.Index(p.Column)
		if idx < 0 {
			return fmt.Errorf("aggfilter: predicate column %q not in schema", p.Column)
		}
		preds = append(preds, boundPred{idx: idx, pred: p})
	}

	rr := csvio.AcquireRangeReader(in, ctx.RangeStart, ctx.RangeEnd)
	defer rr.Release()
	skippedHeader := task.Options[OptHeader] != "true" || ctx.RangeStart > 0
	groups := make(map[string]*groupState)
	var fields [][]byte
	for {
		rec, err := rr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if !skippedHeader {
			skippedHeader = true
			continue
		}
		fields = csvio.Fields(rec, csvio.DefaultDelimiter, fields)
		if !match(preds, fields) {
			continue
		}
		key, keys := groupKey(groupIdx, fields)
		g, ok := groups[key]
		if !ok {
			g = &groupState{keys: keys, aggs: make([]partial, len(specs))}
			groups[key] = g
		}
		for i, s := range specs {
			accumulate(&g.aggs[i], s.Func, specIdx[i], fields)
		}
	}

	// Deterministic output order.
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bw := storlet.AcquireWriter(out)
	defer storlet.ReleaseWriter(bw)
	for _, k := range keys {
		g := groups[k]
		cells := append([]string(nil), g.keys...)
		for i, s := range specs {
			cells = append(cells, renderPartial(g.aggs[i], s.Func))
		}
		line := make([][]byte, len(cells))
		for i, c := range cells {
			line[i] = []byte(c)
		}
		if err := csvio.WriteRecord(bw, line, csvio.DefaultDelimiter); err != nil {
			return err
		}
	}
	ctx.Logf("aggfilter: range [%d,%d): %d groups", ctx.RangeStart, ctx.RangeEnd, len(groups))
	return bw.Flush()
}

type boundPred struct {
	idx  int
	pred pushdown.Predicate
}

func match(preds []boundPred, fields [][]byte) bool {
	for i := range preds {
		bp := &preds[i]
		var raw []byte
		null := bp.idx >= len(fields)
		if !null {
			raw = fields[bp.idx]
		}
		if !bp.pred.MatchesBytes(raw, null) {
			return false
		}
	}
	return true
}

func groupKey(groupIdx []int, fields [][]byte) (string, []string) {
	if len(groupIdx) == 0 {
		return "", nil
	}
	keys := make([]string, len(groupIdx))
	var b strings.Builder
	for i, idx := range groupIdx {
		if idx < len(fields) {
			keys[i] = string(fields[idx])
		}
		b.WriteString(keys[i])
		b.WriteByte(0)
	}
	return b.String(), keys
}

func accumulate(p *partial, f Func, idx int, fields [][]byte) {
	if f == Count {
		if idx < 0 { // count(*)
			p.count++
			return
		}
		if idx < len(fields) && len(fields[idx]) > 0 {
			p.count++
		}
		return
	}
	if idx >= len(fields) {
		return
	}
	raw := string(fields[idx])
	if raw == "" {
		return
	}
	switch f {
	case Sum:
		if v, err := strconv.ParseFloat(raw, 64); err == nil {
			p.sum += v
			p.any = true
		}
	case Min, Max:
		v := types.Coerce(raw, types.Float)
		if v.IsNull() {
			v = types.Str(raw)
		}
		if !p.any {
			p.min, p.max = v, v
			p.any = true
			return
		}
		if v.Compare(p.min) < 0 {
			p.min = v
		}
		if v.Compare(p.max) > 0 {
			p.max = v
		}
	}
}

func renderPartial(p partial, f Func) string {
	switch f {
	case Count:
		return strconv.FormatInt(p.count, 10)
	case Sum:
		if !p.any {
			return ""
		}
		return strconv.FormatFloat(p.sum, 'g', -1, 64)
	case Min:
		if !p.any {
			return ""
		}
		return p.min.AsString()
	default: // Max
		if !p.any {
			return ""
		}
		return p.max.AsString()
	}
}

// Merge combines partial-aggregate records from parallel splits into final
// records. Each record is groupKeys... followed by one value per spec; the
// merge is exact because every function is algebraic.
func Merge(partials [][]string, groupCols int, specs []Spec) ([][]string, error) {
	type merged struct {
		keys []string
		vals []partial
	}
	groups := make(map[string]*merged)
	for _, rec := range partials {
		if len(rec) != groupCols+len(specs) {
			return nil, fmt.Errorf("aggfilter: partial record width %d, want %d", len(rec), groupCols+len(specs))
		}
		key := strings.Join(rec[:groupCols], "\x00")
		g, ok := groups[key]
		if !ok {
			g = &merged{keys: append([]string(nil), rec[:groupCols]...), vals: make([]partial, len(specs))}
			groups[key] = g
		}
		for i, s := range specs {
			raw := rec[groupCols+i]
			if raw == "" {
				continue
			}
			switch s.Func {
			case Count:
				n, err := strconv.ParseInt(raw, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("aggfilter: bad count partial %q", raw)
				}
				g.vals[i].count += n
			case Sum:
				v, err := strconv.ParseFloat(raw, 64)
				if err != nil {
					return nil, fmt.Errorf("aggfilter: bad sum partial %q", raw)
				}
				g.vals[i].sum += v
				g.vals[i].any = true
			case Min, Max:
				v := types.Coerce(raw, types.Float)
				if v.IsNull() {
					v = types.Str(raw)
				}
				p := &g.vals[i]
				if !p.any {
					p.min, p.max = v, v
					p.any = true
					continue
				}
				if v.Compare(p.min) < 0 {
					p.min = v
				}
				if v.Compare(p.max) > 0 {
					p.max = v
				}
			}
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]string, 0, len(groups))
	for _, k := range keys {
		g := groups[k]
		rec := append([]string(nil), g.keys...)
		for i, s := range specs {
			rec = append(rec, renderPartial(g.vals[i], s.Func))
		}
		out = append(out, rec)
	}
	return out, nil
}
