package aggfilter

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"scoop/internal/csvio"
	"scoop/internal/pushdown"
	"scoop/internal/storlet"
)

const schema = "vid string, date string, index double, city string, state string"

const data = "V1,2015-01-01,10,Rotterdam,NED\n" +
	"V1,2015-01-02,20,Rotterdam,NED\n" +
	"V2,2015-01-01,5,Paris,FRA\n" +
	"V2,2015-01-02,7,Paris,FRA\n" +
	"V3,2015-01-01,1,Kyiv,UKR\n"

func invoke(t *testing.T, task *pushdown.Task, input string, start, end int64) [][]string {
	t.Helper()
	f := New()
	ctx := &storlet.Context{Task: task, RangeStart: start, RangeEnd: end, ObjectSize: int64(len(input))}
	var out bytes.Buffer
	if err := f.Invoke(ctx, strings.NewReader(input[start:]), &out); err != nil {
		t.Fatal(err)
	}
	var recs [][]string
	for _, line := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
		if line == "" {
			continue
		}
		var rec []string
		for _, fld := range csvio.Fields([]byte(line), ',', nil) {
			rec = append(rec, string(fld))
		}
		recs = append(recs, rec)
	}
	return recs
}

func task(opts map[string]string, preds ...pushdown.Predicate) *pushdown.Task {
	return &pushdown.Task{Filter: FilterName, Schema: schema, Options: opts, Predicates: preds}
}

func TestGroupedAggregation(t *testing.T) {
	recs := invoke(t, task(map[string]string{OptGroup: "vid", OptAggs: "sum:index,count:*"}),
		data, 0, int64(len(data)))
	if len(recs) != 3 {
		t.Fatalf("recs = %v", recs)
	}
	// Sorted by group key.
	if recs[0][0] != "V1" || recs[0][1] != "30" || recs[0][2] != "2" {
		t.Errorf("V1 = %v", recs[0])
	}
	if recs[2][0] != "V3" || recs[2][1] != "1" || recs[2][2] != "1" {
		t.Errorf("V3 = %v", recs[2])
	}
}

func TestGlobalAggregation(t *testing.T) {
	recs := invoke(t, task(map[string]string{OptAggs: "sum:index,min:index,max:index,count:city"}),
		data, 0, int64(len(data)))
	if len(recs) != 1 {
		t.Fatalf("recs = %v", recs)
	}
	if recs[0][0] != "43" || recs[0][1] != "1" || recs[0][2] != "20" || recs[0][3] != "5" {
		t.Errorf("rec = %v", recs[0])
	}
}

func TestSelectionThenAggregation(t *testing.T) {
	recs := invoke(t, task(map[string]string{OptGroup: "state", OptAggs: "sum:index"},
		pushdown.Predicate{Column: "state", Op: pushdown.OpNe, Value: "UKR"}),
		data, 0, int64(len(data)))
	if len(recs) != 2 {
		t.Fatalf("recs = %v", recs)
	}
	if recs[0][0] != "FRA" || recs[0][1] != "12" {
		t.Errorf("FRA = %v", recs[0])
	}
}

// Partial aggregation across splits merges to the same totals as a single
// whole-object pass — the algebraic-merge property everything rests on.
func TestSplitPartialsMergeExactly(t *testing.T) {
	specs, err := ParseSpecs("sum:index,count:*,min:index,max:index")
	if err != nil {
		t.Fatal(err)
	}
	opts := map[string]string{OptGroup: "vid", OptAggs: FormatSpecs(specs)}
	whole := invoke(t, task(opts), data, 0, int64(len(data)))
	for _, cut := range []int64{10, 31, 32, 55, 90} {
		a := invoke(t, task(opts), data, 0, cut)
		b := invoke(t, task(opts), data, cut, int64(len(data)))
		merged, err := Merge(append(a, b...), 1, specs)
		if err != nil {
			t.Fatal(err)
		}
		if len(merged) != len(whole) {
			t.Fatalf("cut %d: %d groups, want %d", cut, len(merged), len(whole))
		}
		for i := range whole {
			for j := range whole[i] {
				if merged[i][j] != whole[i][j] {
					t.Fatalf("cut %d: group %d field %d: %q vs %q", cut, i, j, merged[i][j], whole[i][j])
				}
			}
		}
	}
}

func TestHeaderSkip(t *testing.T) {
	withHeader := "vid,date,index,city,state\n" + data
	recs := invoke(t, task(map[string]string{OptAggs: "count:*", OptHeader: "true"}),
		withHeader, 0, int64(len(withHeader)))
	if recs[0][0] != "5" {
		t.Errorf("count = %v", recs)
	}
}

func TestParseSpecsErrors(t *testing.T) {
	bad := []string{"", "sum", "sum:", "avg:index", "min:*", "sum:index,:x"}
	for _, raw := range bad {
		if _, err := ParseSpecs(raw); err == nil {
			t.Errorf("ParseSpecs(%q) accepted", raw)
		}
	}
	specs, err := ParseSpecs(" sum:index , count:* ")
	if err != nil || len(specs) != 2 {
		t.Errorf("specs = %v, %v", specs, err)
	}
}

func TestInvokeErrors(t *testing.T) {
	f := New()
	bad := []*pushdown.Task{
		nil,
		{Filter: FilterName},
		{Filter: FilterName, Schema: "broken decl here x"},
		{Filter: FilterName, Schema: schema},
		{Filter: FilterName, Schema: schema, Options: map[string]string{OptAggs: "sum:ghost"}},
		{Filter: FilterName, Schema: schema, Options: map[string]string{OptAggs: "sum:index", OptGroup: "ghost"}},
		{Filter: FilterName, Schema: schema, Options: map[string]string{OptAggs: "sum:index"},
			Predicates: []pushdown.Predicate{{Column: "ghost", Op: pushdown.OpEq}}},
	}
	for i, tk := range bad {
		ctx := &storlet.Context{Task: tk, RangeEnd: 4, ObjectSize: 4}
		if err := f.Invoke(ctx, strings.NewReader("a,b\n"), io.Discard); err == nil {
			t.Errorf("task %d accepted", i)
		}
	}
}

func TestMergeErrors(t *testing.T) {
	specs, _ := ParseSpecs("sum:index,count:*")
	if _, err := Merge([][]string{{"V1", "1"}}, 1, specs); err == nil {
		t.Error("short record accepted")
	}
	if _, err := Merge([][]string{{"V1", "x", "1"}}, 1, specs); err == nil {
		t.Error("bad sum partial accepted")
	}
	if _, err := Merge([][]string{{"V1", "1", "x"}}, 1, specs); err == nil {
		t.Error("bad count partial accepted")
	}
}

// The headline property: aggregation pushdown moves one record per group
// instead of every matching row.
func TestTransferReduction(t *testing.T) {
	big := strings.Repeat(data, 500) // 2500 rows, 3 groups
	recs := invoke(t, task(map[string]string{OptGroup: "vid", OptAggs: "sum:index,count:*"}),
		big, 0, int64(len(big)))
	if len(recs) != 3 {
		t.Fatalf("groups = %d", len(recs))
	}
	if recs[0][2] != "1000" { // V1 appears twice per repetition
		t.Errorf("V1 count = %v", recs[0])
	}
	// Output is 3 lines vs 2500 input rows.
	var outBytes int
	for _, r := range recs {
		outBytes += len(strings.Join(r, ",")) + 1
	}
	if outBytes*100 > len(big) {
		t.Errorf("aggregation output %dB vs input %dB: expected >100x reduction", outBytes, len(big))
	}
}

func TestEngineIntegration(t *testing.T) {
	e := storlet.NewEngine(storlet.Limits{})
	if err := e.Register(New()); err != nil {
		t.Fatal(err)
	}
	tk := task(map[string]string{OptGroup: "state", OptAggs: "count:*"})
	ctx := &storlet.Context{Task: tk, RangeEnd: int64(len(data)), ObjectSize: int64(len(data))}
	rc, err := e.Run(ctx, strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "FRA,2") {
		t.Errorf("output = %q", b)
	}
}
