package storlet

import (
	"bufio"
	"io"
	"sync"
)

// filterWriterPool recycles the buffered writers every record-oriented
// filter interposes in front of its output stream. A 64 KB writer per
// invocation was the second-largest steady-state allocation on the pushdown
// path (after the range reader's buffer, pooled in csvio); recycling both
// makes a filtered GET allocation-free once the pools are warm.
var filterWriterPool = sync.Pool{New: func() any { return bufio.NewWriterSize(io.Discard, 64<<10) }}

// AcquireWriter returns a pooled 64 KB buffered writer targeting w. Filters
// use it instead of allocating a bufio.Writer per invocation; pair with
// ReleaseWriter after flushing.
func AcquireWriter(w io.Writer) *bufio.Writer {
	bw := filterWriterPool.Get().(*bufio.Writer)
	bw.Reset(w)
	return bw
}

// ReleaseWriter drops bw's reference to the underlying stream and returns it
// to the pool. Unflushed bytes are discarded: callers flush (and check the
// error) before releasing.
func ReleaseWriter(bw *bufio.Writer) {
	bw.Reset(io.Discard)
	filterWriterPool.Put(bw)
}
