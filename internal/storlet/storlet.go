// Package storlet is the active storage layer of Scoop: a framework for
// deploying and executing *pushdown filters* inside the object store,
// modelled on OpenStack Storlets (paper §V). A filter is a piece of logic
// invoked on the data stream of a single object request; the store itself is
// oblivious to what the filter computes.
//
// Where the original Storlets run Java code inside Docker containers, this
// implementation sandboxes Go filters behind goroutine isolation: panics are
// converted to request errors, invocations are bounded by a deadline and an
// output cap, and per-filter resource usage (bytes in/out, CPU-ish wall
// time) is accounted — the properties the paper's evaluation measures.
package storlet

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"scoop/internal/pushdown"
)

// Context carries per-invocation information to a filter.
type Context struct {
	// Task is the pushdown task extracted from the request metadata.
	Task *pushdown.Task
	// RangeStart and RangeEnd are the absolute byte range of the request
	// within the object ([0, ObjectSize) for a full-object request). Filters
	// over record-structured data use these for split alignment.
	RangeStart, RangeEnd int64
	// ObjectSize is the total size of the stored object.
	ObjectSize int64
	// Log records diagnostic lines (the StorletLogger analog).
	Log func(format string, args ...any)
}

// Logf logs through ctx.Log when set.
func (c *Context) Logf(format string, args ...any) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

// Filter is the storlet interface (the paper's IStorlet.invoke): transform
// the inbound object stream into the outbound response stream.
type Filter interface {
	// Name is the identifier pushdown tasks reference.
	Name() string
	// Invoke streams in through the filter into out. It must not retain
	// either stream after returning.
	Invoke(ctx *Context, in io.Reader, out io.Writer) error
}

// FilterFunc adapts a function to the Filter interface.
type FilterFunc struct {
	FilterName string
	Fn         func(ctx *Context, in io.Reader, out io.Writer) error
}

// Name implements Filter.
func (f FilterFunc) Name() string { return f.FilterName }

// Invoke implements Filter.
func (f FilterFunc) Invoke(ctx *Context, in io.Reader, out io.Writer) error {
	return f.Fn(ctx, in, out)
}

// Stats aggregates resource accounting for one filter.
type Stats struct {
	Invocations int64
	Errors      int64
	BytesIn     int64
	BytesOut    int64
	WallTime    time.Duration
}

// Limits bound a single filter invocation.
type Limits struct {
	// Timeout aborts an invocation that runs longer (0 = no limit).
	Timeout time.Duration
	// MaxOutputBytes aborts an invocation producing more output (0 = none).
	MaxOutputBytes int64
	// MaxConcurrent bounds simultaneously executing filtered REQUESTS
	// (0 = unlimited) — the CPU/parallelism constraint at the object store
	// the paper's §VII discusses; excess requests queue. A pipelined chain
	// counts as one request.
	MaxConcurrent int
}

// Engine is the filter registry and sandboxed execution environment — the
// piece that makes the object store "rich and extensible" (paper §I): new
// filters can be deployed at runtime without touching the store.
type Engine struct {
	mu        sync.RWMutex
	filters   map[string]Filter
	stats     map[string]*Stats
	factories map[string]Factory
	limits    Limits
	// slots is the concurrency semaphore when MaxConcurrent > 0.
	slots chan struct{}
}

// NewEngine returns an engine with the given limits.
func NewEngine(limits Limits) *Engine {
	e := &Engine{
		filters: make(map[string]Filter),
		stats:   make(map[string]*Stats),
		limits:  limits,
	}
	if limits.MaxConcurrent > 0 {
		e.slots = make(chan struct{}, limits.MaxConcurrent)
	}
	return e
}

// ErrAlreadyDeployed is returned when registering a filter whose name is
// taken; redeployment flows treat it as success.
var ErrAlreadyDeployed = errors.New("storlet: filter already deployed")

// Register deploys a filter, making it invocable by name. Deploying is the
// "on-the-fly" extension path: it can happen while the store serves traffic.
func (e *Engine) Register(f Filter) error {
	if f == nil || f.Name() == "" {
		return errors.New("storlet: filter needs a name")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.filters[f.Name()]; dup {
		return fmt.Errorf("%w: %q", ErrAlreadyDeployed, f.Name())
	}
	e.filters[f.Name()] = f
	e.stats[f.Name()] = &Stats{}
	return nil
}

// Unregister removes a deployed filter.
func (e *Engine) Unregister(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.filters[name]; !ok {
		return fmt.Errorf("storlet: filter %q not deployed", name)
	}
	delete(e.filters, name)
	return nil
}

// Get looks up a deployed filter.
func (e *Engine) Get(name string) (Filter, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	f, ok := e.filters[name]
	return f, ok
}

// Names returns the deployed filter names, sorted.
func (e *Engine) Names() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.filters))
	for n := range e.filters {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// StatsFor returns a copy of the accounting for one filter.
func (e *Engine) StatsFor(name string) Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if s, ok := e.stats[name]; ok {
		return *s
	}
	return Stats{}
}

// Run executes the task's filter over in, returning the filtered stream.
// The filter runs in its own goroutine (the sandbox); a panic, timeout or
// output overrun surfaces as an error from the returned reader. The caller
// must drain and close the returned reader.
func (e *Engine) Run(ctx *Context, in io.Reader) (io.ReadCloser, error) {
	return e.run(ctx, in, true)
}

// run optionally skips slot acquisition: a pipelined chain counts as ONE
// request against MaxConcurrent (its stages must run concurrently or the
// pipe between them deadlocks).
func (e *Engine) run(ctx *Context, in io.Reader, acquireSlot bool) (io.ReadCloser, error) {
	if ctx == nil || ctx.Task == nil {
		return nil, errors.New("storlet: nil context or task")
	}
	f, ok := e.Get(ctx.Task.Filter)
	if !ok {
		return nil, fmt.Errorf("storlet: filter %q not deployed", ctx.Task.Filter)
	}
	pr, pw := io.Pipe()
	cin := &countingReader{r: in}
	cout := &countingWriter{w: pw, max: e.limits.MaxOutputBytes}
	start := time.Now()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if acquireSlot && e.slots != nil {
			// Queue for a CPU slot; the requester blocks on the pipe until
			// the filter actually starts producing.
			e.slots <- struct{}{}
			defer func() { <-e.slots }()
		}
		err := invokeSafely(f, ctx, cin, cout)
		e.account(ctx.Task.Filter, cin.n, cout.n, time.Since(start), err)
		pw.CloseWithError(err)
	}()
	if e.limits.Timeout > 0 {
		// Closing only the write side delivers the timeout error to the
		// reader (CloseWithError on the read side would mask it with
		// ErrClosedPipe) and makes the runaway filter's next write fail.
		timer := time.AfterFunc(e.limits.Timeout, func() {
			pw.CloseWithError(fmt.Errorf("storlet: filter %q timed out after %v", ctx.Task.Filter, e.limits.Timeout))
		})
		go func() {
			<-done
			timer.Stop()
		}()
	}
	return pr, nil
}

// RunChain pipes in through each task's filter in order (pipelining). Every
// stage gets its own sandbox goroutine; ranges apply to the first stage only
// (later stages see the previous stage's output, not raw object bytes).
func (e *Engine) RunChain(base *Context, tasks []*pushdown.Task, in io.Reader) (io.ReadCloser, error) {
	if len(tasks) == 0 {
		return nil, errors.New("storlet: empty task chain")
	}
	var cur io.ReadCloser = io.NopCloser(in)
	for i, task := range tasks {
		ctx := &Context{
			Task:       task,
			ObjectSize: base.ObjectSize,
			Log:        base.Log,
		}
		if i == 0 {
			ctx.RangeStart, ctx.RangeEnd = base.RangeStart, base.RangeEnd
		} else {
			// Later stages consume an unbounded derived stream.
			ctx.RangeStart, ctx.RangeEnd = 0, int64(1)<<62
		}
		next, err := e.run(ctx, cur, i == 0)
		if err != nil {
			cur.Close()
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

func (e *Engine) account(name string, in, out int64, wall time.Duration, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.stats[name]
	if !ok {
		s = &Stats{}
		e.stats[name] = s
	}
	s.Invocations++
	s.BytesIn += in
	s.BytesOut += out
	s.WallTime += wall
	if err != nil {
		s.Errors++
	}
}

// invokeSafely converts filter panics into errors (the sandbox boundary).
func invokeSafely(f Filter, ctx *Context, in io.Reader, out io.Writer) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("storlet: filter %q panicked: %v", f.Name(), r)
		}
	}()
	return f.Invoke(ctx, in, out)
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// errOutputLimit is returned when a filter exceeds its output budget.
var errOutputLimit = errors.New("storlet: output limit exceeded")

type countingWriter struct {
	w   io.Writer
	n   int64
	max int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.max > 0 && c.n+int64(len(p)) > c.max {
		return 0, errOutputLimit
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
