// Package storlet is the active storage layer of Scoop: a framework for
// deploying and executing *pushdown filters* inside the object store,
// modelled on OpenStack Storlets (paper §V). A filter is a piece of logic
// invoked on the data stream of a single object request; the store itself is
// oblivious to what the filter computes.
//
// Where the original Storlets run Java code inside Docker containers, this
// implementation sandboxes Go filters behind goroutine isolation: panics are
// converted to request errors, invocations are bounded by a deadline and an
// output cap, and per-filter resource usage (bytes in/out, CPU-ish wall
// time) is accounted — the properties the paper's evaluation measures.
//
// The engine is also the first rung of the degradation ladder (DESIGN §8):
// when the store cannot run a filter — saturated, persistently failing,
// not deployed — it says so *before* producing any bytes, with a typed
// error the HTTP layer turns into a retriable 503 and the connector turns
// into a compute-side fallback.
package storlet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"scoop/internal/pushdown"
)

// Context carries per-invocation information to a filter.
type Context struct {
	// Ctx is the request context. The engine uses it to abort slot-queue
	// waits when the caller gives up; filters may use it to abort long
	// stalls. A nil Ctx means "never cancelled".
	Ctx context.Context
	// Task is the pushdown task extracted from the request metadata.
	Task *pushdown.Task
	// RangeStart and RangeEnd are the absolute byte range of the request
	// within the object ([0, ObjectSize) for a full-object request). Filters
	// over record-structured data use these for split alignment.
	RangeStart, RangeEnd int64
	// ObjectSize is the total size of the stored object.
	ObjectSize int64
	// Log records diagnostic lines (the StorletLogger analog).
	Log func(format string, args ...any)
}

// Logf logs through ctx.Log when set.
func (c *Context) Logf(format string, args ...any) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

// Filter is the storlet interface (the paper's IStorlet.invoke): transform
// the inbound object stream into the outbound response stream.
type Filter interface {
	// Name is the identifier pushdown tasks reference.
	Name() string
	// Invoke streams in through the filter into out. It must not retain
	// either stream after returning.
	Invoke(ctx *Context, in io.Reader, out io.Writer) error
}

// FilterFunc adapts a function to the Filter interface.
type FilterFunc struct {
	FilterName string
	Fn         func(ctx *Context, in io.Reader, out io.Writer) error
}

// Name implements Filter.
func (f FilterFunc) Name() string { return f.FilterName }

// Invoke implements Filter.
func (f FilterFunc) Invoke(ctx *Context, in io.Reader, out io.Writer) error {
	return f.Fn(ctx, in, out)
}

// Stats aggregates resource accounting for one filter.
type Stats struct {
	Invocations int64
	Errors      int64
	BytesIn     int64
	BytesOut    int64
	WallTime    time.Duration
	// Rejections counts invocations refused before a sandbox goroutine was
	// spawned: breaker-open refusals and admission-control overload.
	Rejections int64
	// BreakerOpens counts closed→open transitions of this filter's circuit
	// breaker.
	BreakerOpens int64
}

// Limits bound a single filter invocation.
type Limits struct {
	// Timeout aborts an invocation that runs longer (0 = no limit).
	Timeout time.Duration
	// MaxOutputBytes aborts an invocation producing more output (0 = none).
	MaxOutputBytes int64
	// MaxConcurrent bounds simultaneously executing filtered REQUESTS
	// (0 = unlimited) — the CPU/parallelism constraint at the object store
	// the paper's §VII discusses; excess requests queue. A pipelined chain
	// counts as one request.
	MaxConcurrent int
	// MaxQueue bounds how many requests may wait for a slot when all
	// MaxConcurrent slots are busy. 0 keeps the historical behavior
	// (unbounded wait, still abortable via Context.Ctx / QueueWait);
	// a negative value rejects immediately when saturated; a positive
	// value admits at most that many waiters and sheds the rest with
	// ErrOverloaded.
	MaxQueue int
	// QueueWait bounds how long a request may wait for a slot before being
	// shed with ErrOverloaded (0 = wait until the request context is
	// cancelled).
	QueueWait time.Duration
	// Breaker configures the per-filter circuit breaker. The zero value
	// (Threshold 0) disables it.
	Breaker BreakerPolicy
}

// Engine is the filter registry and sandboxed execution environment — the
// piece that makes the object store "rich and extensible" (paper §I): new
// filters can be deployed at runtime without touching the store.
type Engine struct {
	mu        sync.RWMutex
	filters   map[string]Filter
	stats     map[string]*Stats
	factories map[string]Factory
	breakers  map[string]*breaker
	limits    Limits
	// slots is the concurrency semaphore when MaxConcurrent > 0.
	slots chan struct{}
	// waiting counts requests queued for a slot (bounded by MaxQueue > 0).
	waiting atomic.Int64
}

// NewEngine returns an engine with the given limits.
func NewEngine(limits Limits) *Engine {
	e := &Engine{
		filters:  make(map[string]Filter),
		stats:    make(map[string]*Stats),
		breakers: make(map[string]*breaker),
		limits:   limits,
	}
	if limits.MaxConcurrent > 0 {
		e.slots = make(chan struct{}, limits.MaxConcurrent)
	}
	return e
}

// ErrAlreadyDeployed is returned when registering a filter whose name is
// taken; redeployment flows treat it as success.
var ErrAlreadyDeployed = errors.New("storlet: filter already deployed")

// Register deploys a filter, making it invocable by name. Deploying is the
// "on-the-fly" extension path: it can happen while the store serves traffic.
func (e *Engine) Register(f Filter) error {
	if f == nil || f.Name() == "" {
		return errors.New("storlet: filter needs a name")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.filters[f.Name()]; dup {
		return fmt.Errorf("%w: %q", ErrAlreadyDeployed, f.Name())
	}
	e.filters[f.Name()] = f
	e.stats[f.Name()] = &Stats{}
	return nil
}

// Unregister removes a deployed filter.
func (e *Engine) Unregister(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.filters[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotDeployed, name)
	}
	delete(e.filters, name)
	return nil
}

// Get looks up a deployed filter.
func (e *Engine) Get(name string) (Filter, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	f, ok := e.filters[name]
	return f, ok
}

// Names returns the deployed filter names, sorted.
func (e *Engine) Names() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.filters))
	for n := range e.filters {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// StatsFor returns a copy of the accounting for one filter.
func (e *Engine) StatsFor(name string) Stats {
	e.mu.RLock()
	s, ok := e.stats[name]
	br := e.breakers[name]
	var out Stats
	if ok {
		out = *s
	}
	e.mu.RUnlock()
	if br != nil {
		out.BreakerOpens = br.openCount()
	}
	return out
}

// BreakerState reports the circuit-breaker state for a filter: "closed",
// "open", or "half-open". A filter without a breaker (policy disabled or
// never invoked) reports "closed".
func (e *Engine) BreakerState(name string) string {
	e.mu.RLock()
	br := e.breakers[name]
	e.mu.RUnlock()
	if br == nil {
		return "closed"
	}
	return br.stateName()
}

// breakerFor returns the filter's breaker, creating it on first use, or nil
// when the policy is disabled.
func (e *Engine) breakerFor(name string) *breaker {
	if e.limits.Breaker.Threshold <= 0 {
		return nil
	}
	e.mu.RLock()
	br := e.breakers[name]
	e.mu.RUnlock()
	if br != nil {
		return br
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if br = e.breakers[name]; br == nil {
		br = newBreaker(name, e.limits.Breaker)
		e.breakers[name] = br
	}
	return br
}

// countRejection accounts an invocation refused before sandboxing.
func (e *Engine) countRejection(name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.stats[name]
	if !ok {
		s = &Stats{}
		e.stats[name] = s
	}
	s.Rejections++
}

// acquire claims a concurrency slot, queueing within the admission-control
// bounds. It returns ErrOverloaded when the wait queue is full or QueueWait
// elapses, and the context error when rctx is cancelled while queued. It
// runs on the REQUESTER's goroutine — a shed request never spawns a sandbox
// goroutine, which is both the load-shedding point and the fix for the old
// leak where a sandbox goroutine parked on `e.slots <-` forever after its
// caller walked away.
func (e *Engine) acquire(rctx context.Context) error {
	select {
	case e.slots <- struct{}{}:
		return nil
	default:
	}
	// Saturated: join the wait queue if admission control allows.
	if e.limits.MaxQueue < 0 {
		return fmt.Errorf("%w: %d slots busy", ErrOverloaded, e.limits.MaxConcurrent)
	}
	if e.limits.MaxQueue > 0 {
		for {
			w := e.waiting.Load()
			if w >= int64(e.limits.MaxQueue) {
				return fmt.Errorf("%w: %d slots busy, %d queued", ErrOverloaded, e.limits.MaxConcurrent, w)
			}
			if e.waiting.CompareAndSwap(w, w+1) {
				break
			}
		}
		defer e.waiting.Add(-1)
	}
	var done <-chan struct{}
	if rctx != nil {
		done = rctx.Done()
	}
	var deadline <-chan time.Time
	if e.limits.QueueWait > 0 {
		timer := time.NewTimer(e.limits.QueueWait)
		defer timer.Stop()
		deadline = timer.C
	}
	select {
	case e.slots <- struct{}{}:
		return nil
	case <-done:
		return fmt.Errorf("storlet: slot wait aborted: %w", rctx.Err())
	case <-deadline:
		return fmt.Errorf("%w: no slot within %v", ErrOverloaded, e.limits.QueueWait)
	}
}

// Run executes the task's filter over in, returning the filtered stream.
// The filter runs in its own goroutine (the sandbox); a panic, timeout or
// output overrun surfaces as a *FilterError from the returned reader. The
// caller must drain and close the returned reader. Admission failures —
// ErrOverloaded, ErrBreakerOpen, ErrNotDeployed — are returned up-front,
// before any byte is produced.
func (e *Engine) Run(ctx *Context, in io.Reader) (io.ReadCloser, error) {
	return e.run(ctx, in, true)
}

// run optionally skips slot acquisition: a pipelined chain counts as ONE
// request against MaxConcurrent (its stages must run concurrently or the
// pipe between them deadlocks).
func (e *Engine) run(ctx *Context, in io.Reader, acquireSlot bool) (io.ReadCloser, error) {
	if ctx == nil || ctx.Task == nil {
		return nil, errors.New("storlet: nil context or task")
	}
	name := ctx.Task.Filter
	f, ok := e.Get(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotDeployed, name)
	}
	br := e.breakerFor(name)
	var probe bool
	if br != nil {
		admitted, p := br.admit()
		if !admitted {
			e.countRejection(name)
			return nil, &FilterError{Filter: name, Err: ErrBreakerOpen}
		}
		probe = p
	}
	holdsSlot := acquireSlot && e.slots != nil
	if holdsSlot {
		if err := e.acquire(ctx.Ctx); err != nil {
			e.countRejection(name)
			if br != nil {
				// Says nothing about the filter's health; an inconclusive
				// probe re-arms the open breaker.
				br.record(err, probe, false)
			}
			return nil, &FilterError{Filter: name, Err: err}
		}
	}
	pr, pw := io.Pipe()
	cin := &countingReader{r: in}
	cout := &countingWriter{w: pw, max: e.limits.MaxOutputBytes}
	start := time.Now()
	done := make(chan struct{})
	var timedOut atomic.Bool
	go func() {
		defer close(done)
		if holdsSlot {
			defer func() { <-e.slots }()
		}
		err := invokeSafely(f, ctx, cin, cout)
		if timedOut.Load() && (err == nil || errors.Is(err, io.ErrClosedPipe)) {
			// The deadline closed the pipe out from under the filter; its
			// writes saw ErrClosedPipe but the real cause is the timeout.
			err = timeoutError(name, e.limits.Timeout)
		}
		err = wrapFilterError(name, err)
		e.account(name, cin.n, cout.n, time.Since(start), err)
		if br != nil {
			br.record(err, probe, countableFailure(name, err))
		}
		pw.CloseWithError(err)
	}()
	if e.limits.Timeout > 0 {
		// Closing only the write side delivers the timeout error to the
		// reader (CloseWithError on the read side would mask it with
		// ErrClosedPipe) and makes the runaway filter's next write fail.
		timer := time.AfterFunc(e.limits.Timeout, func() {
			timedOut.Store(true)
			pw.CloseWithError(timeoutError(name, e.limits.Timeout))
		})
		go func() {
			<-done
			timer.Stop()
		}()
	}
	return pr, nil
}

func timeoutError(name string, d time.Duration) error {
	return &FilterError{Filter: name, Err: fmt.Errorf("%w after %v", ErrFilterTimeout, d)}
}

// wrapFilterError attributes err to the named filter unless it is already a
// *FilterError (its own, or one propagated from an upstream chain stage).
func wrapFilterError(name string, err error) error {
	if err == nil {
		return nil
	}
	var fe *FilterError
	if errors.As(err, &fe) {
		return err
	}
	return &FilterError{Filter: name, Err: err}
}

// countableFailure reports whether err should count against the named
// filter's breaker. Failures that say nothing about the filter's health do
// not: the caller abandoned the stream (bare ErrClosedPipe), or an upstream
// chain stage failed first and this stage merely propagated its error.
func countableFailure(name string, err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, io.ErrClosedPipe) && !errors.Is(err, ErrFilterTimeout) {
		return false
	}
	var fe *FilterError
	if errors.As(err, &fe) && fe.Filter != name {
		return false
	}
	return true
}

// RunChain pipes in through each task's filter in order (pipelining). Every
// stage gets its own sandbox goroutine; ranges apply to the first stage only
// (later stages see the previous stage's output, not raw object bytes).
func (e *Engine) RunChain(base *Context, tasks []*pushdown.Task, in io.Reader) (io.ReadCloser, error) {
	if len(tasks) == 0 {
		return nil, errors.New("storlet: empty task chain")
	}
	var cur io.ReadCloser = io.NopCloser(in)
	for i, task := range tasks {
		ctx := &Context{
			Ctx:        base.Ctx,
			Task:       task,
			ObjectSize: base.ObjectSize,
			Log:        base.Log,
		}
		if i == 0 {
			ctx.RangeStart, ctx.RangeEnd = base.RangeStart, base.RangeEnd
		} else {
			// Later stages consume an unbounded derived stream.
			ctx.RangeStart, ctx.RangeEnd = 0, int64(1)<<62
		}
		next, err := e.run(ctx, cur, i == 0)
		if err != nil {
			cur.Close()
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

func (e *Engine) account(name string, in, out int64, wall time.Duration, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.stats[name]
	if !ok {
		s = &Stats{}
		e.stats[name] = s
	}
	s.Invocations++
	s.BytesIn += in
	s.BytesOut += out
	s.WallTime += wall
	if err != nil {
		s.Errors++
	}
}

// invokeSafely converts filter panics into errors (the sandbox boundary).
func invokeSafely(f Filter, ctx *Context, in io.Reader, out io.Writer) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panicked: %v", r)
		}
	}()
	return f.Invoke(ctx, in, out)
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

type countingWriter struct {
	w   io.Writer
	n   int64
	max int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.max > 0 && c.n+int64(len(p)) > c.max {
		return 0, ErrOutputLimit
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
