package csvfilter

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"scoop/internal/pushdown"
	"scoop/internal/storlet"
)

const testSchema = "vid string, date string, index double, city string, state string"

const testData = "V1,2015-01-01 00:10:00,10.5,Rotterdam,NED\n" +
	"V1,2015-01-01 06:10:00,20.0,Rotterdam,NED\n" +
	"V2,2015-01-01 00:10:00,5.25,Paris,FRA\n" +
	"V2,2015-02-01 00:10:00,7.0,Paris,FRA\n" +
	"V3,2015-01-01 00:10:00,1.0,Kyiv,UKR\n"

func invoke(t *testing.T, task *pushdown.Task, data string, start, end int64) string {
	t.Helper()
	f := New()
	ctx := &storlet.Context{Task: task, RangeStart: start, RangeEnd: end, ObjectSize: int64(len(data))}
	var out bytes.Buffer
	if err := f.Invoke(ctx, strings.NewReader(data[start:]), &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func fullRange(t *testing.T, task *pushdown.Task, data string) string {
	return invoke(t, task, data, 0, int64(len(data)))
}

func lines(s string) []string {
	s = strings.TrimRight(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

func TestProjectionOnly(t *testing.T) {
	task := &pushdown.Task{Filter: FilterName, Schema: testSchema, Columns: []string{"vid", "index"}}
	got := lines(fullRange(t, task, testData))
	if len(got) != 5 {
		t.Fatalf("rows = %v", got)
	}
	if got[0] != "V1,10.5" || got[4] != "V3,1.0" {
		t.Errorf("rows = %v", got)
	}
}

func TestSelectionOnly(t *testing.T) {
	task := &pushdown.Task{Filter: FilterName, Schema: testSchema,
		Predicates: []pushdown.Predicate{{Column: "state", Op: pushdown.OpEq, Value: "FRA"}}}
	got := lines(fullRange(t, task, testData))
	if len(got) != 2 {
		t.Fatalf("rows = %v", got)
	}
	// No projection: rows verbatim.
	if got[0] != "V2,2015-01-01 00:10:00,5.25,Paris,FRA" {
		t.Errorf("row = %q", got[0])
	}
}

func TestProjectionAndSelection(t *testing.T) {
	task := &pushdown.Task{Filter: FilterName, Schema: testSchema,
		Columns: []string{"vid", "date", "index"},
		Predicates: []pushdown.Predicate{
			{Column: "date", Op: pushdown.OpLike, Value: "2015-01%"},
			{Column: "index", Op: pushdown.OpGt, Value: "5", Numeric: true},
		}}
	got := lines(fullRange(t, task, testData))
	if len(got) != 3 {
		t.Fatalf("rows = %v", got)
	}
	for _, l := range got {
		if strings.Count(l, ",") != 2 {
			t.Errorf("projection width wrong: %q", l)
		}
	}
}

func TestColumnReordering(t *testing.T) {
	task := &pushdown.Task{Filter: FilterName, Schema: testSchema, Columns: []string{"state", "vid"}}
	got := lines(fullRange(t, task, testData))
	if got[0] != "NED,V1" {
		t.Errorf("row = %q", got[0])
	}
}

func TestByteRangeSplit(t *testing.T) {
	task := &pushdown.Task{Filter: FilterName, Schema: testSchema, Columns: []string{"vid"}}
	// Split the object at an arbitrary mid-record offset; the two ranges
	// together must produce all five rows exactly once.
	for _, cut := range []int64{1, 10, 42, 43, 44, 80, 120} {
		if cut >= int64(len(testData)) {
			continue
		}
		a := lines(invoke(t, task, testData, 0, cut))
		b := lines(invoke(t, task, testData, cut, int64(len(testData))))
		if len(a)+len(b) != 5 {
			t.Errorf("cut %d: %d + %d rows, want 5 (a=%v b=%v)", cut, len(a), len(b), a, b)
		}
	}
}

func TestHeaderSkip(t *testing.T) {
	data := "vid,date,index,city,state\n" + testData
	task := &pushdown.Task{Filter: FilterName, Schema: testSchema,
		Columns: []string{"vid"}, Options: map[string]string{OptHeader: "true"}}
	got := lines(fullRange(t, task, data))
	if len(got) != 5 || got[0] != "V1" {
		t.Fatalf("rows = %v", got)
	}
	// A non-zero range never skips (header lives in range 0 only).
	mid := int64(len("vid,date,index,city,state\n"))
	got = lines(invoke(t, task, data, mid, int64(len(data))))
	if len(got) != 4 { // first data record belongs to range 0 under split rules
		t.Fatalf("mid-range rows = %v", got)
	}
}

func TestCustomDelimiter(t *testing.T) {
	data := strings.ReplaceAll(testData, ",", ";")
	task := &pushdown.Task{Filter: FilterName, Schema: testSchema,
		Columns: []string{"vid", "city"}, Options: map[string]string{OptDelimiter: ";"}}
	got := lines(fullRange(t, task, data))
	if got[0] != "V1;Rotterdam" {
		t.Errorf("row = %q", got[0])
	}
}

func TestShortRecordNullSemantics(t *testing.T) {
	data := "V1,2015-01-01,3.5\nV2,2015-01-02,4.5,Paris,FRA\n"
	// Predicate on a missing column: NULL never matches eq.
	task := &pushdown.Task{Filter: FilterName, Schema: testSchema,
		Predicates: []pushdown.Predicate{{Column: "state", Op: pushdown.OpEq, Value: "FRA"}}}
	got := lines(fullRange(t, task, data))
	if len(got) != 1 || !strings.HasPrefix(got[0], "V2") {
		t.Fatalf("rows = %v", got)
	}
	// IS NULL matches the short record.
	task.Predicates = []pushdown.Predicate{{Column: "state", Op: pushdown.OpIsNull}}
	got = lines(fullRange(t, task, data))
	if len(got) != 1 || !strings.HasPrefix(got[0], "V1") {
		t.Fatalf("rows = %v", got)
	}
	// Projection of a missing column emits an empty field.
	task.Predicates = nil
	task.Columns = []string{"vid", "state"}
	got = lines(fullRange(t, task, data))
	if got[0] != "V1," {
		t.Errorf("row = %q", got[0])
	}
}

func TestQuotedFieldOutput(t *testing.T) {
	data := `V1,"Den Haag, ZH",NED` + "\n"
	task := &pushdown.Task{Filter: FilterName, Schema: "vid string, city string, state string",
		Columns: []string{"city"}}
	got := lines(fullRange(t, task, data))
	if got[0] != `"Den Haag, ZH"` {
		t.Errorf("row = %q", got[0])
	}
	// And quotes inside fields are re-escaped.
	data2 := `V1,"say ""hi""",NED` + "\n"
	got = lines(fullRange(t, &pushdown.Task{Filter: FilterName,
		Schema: "vid string, city string, state string", Columns: []string{"city"}}, data2))
	if got[0] != `"say ""hi"""` {
		t.Errorf("row = %q", got[0])
	}
}

func TestCompileErrors(t *testing.T) {
	f := New()
	bad := []*pushdown.Task{
		nil,
		{Filter: FilterName}, // no schema
		{Filter: FilterName, Schema: "bad schema decl x y"},
		{Filter: FilterName, Schema: testSchema, Columns: []string{"ghost"}},
		{Filter: FilterName, Schema: testSchema, Predicates: []pushdown.Predicate{{Column: "ghost", Op: pushdown.OpEq}}},
		{Filter: FilterName, Schema: testSchema, Options: map[string]string{OptDelimiter: "ab"}},
		{Filter: FilterName, Schema: testSchema, Predicates: []pushdown.Predicate{{Column: "vid", Op: "bogus"}}},
	}
	for i, task := range bad {
		ctx := &storlet.Context{Task: task, RangeEnd: 1, ObjectSize: 1}
		if err := f.Invoke(ctx, strings.NewReader("x\n"), io.Discard); err == nil {
			t.Errorf("task %d should fail", i)
		}
	}
}

func TestEngineIntegration(t *testing.T) {
	e := storlet.NewEngine(storlet.Limits{})
	if err := e.Register(New()); err != nil {
		t.Fatal(err)
	}
	task := &pushdown.Task{Filter: FilterName, Schema: testSchema,
		Columns:    []string{"vid"},
		Predicates: []pushdown.Predicate{{Column: "state", Op: pushdown.OpLike, Value: "U%"}}}
	ctx := &storlet.Context{Task: task, RangeEnd: int64(len(testData)), ObjectSize: int64(len(testData))}
	rc, err := e.Run(ctx, strings.NewReader(testData))
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	b, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(b)) != "V3" {
		t.Errorf("got %q", b)
	}
	s := e.StatsFor(FilterName)
	if s.BytesOut >= s.BytesIn {
		t.Errorf("filter did not reduce data: %+v", s)
	}
}
