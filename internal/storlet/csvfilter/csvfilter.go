// Package csvfilter implements the CSVStorlet (paper §V): a pushdown filter
// that applies SQL projections and selections to CSV-formatted objects
// directly at the storage node, emitting only the columns and rows a query
// needs.
//
// The filter receives the byte range requested by a Spark-style task and
// follows input-split record alignment (see csvio), so parallel tasks over
// disjoint ranges of an object together process every record exactly once.
package csvfilter

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sync"

	"scoop/internal/csvio"
	"scoop/internal/pushdown"
	"scoop/internal/sql/types"
	"scoop/internal/storlet"
)

// FilterName is the name pushdown tasks use to invoke this filter.
const FilterName = "csv"

// Filter is the CSV projection/selection storlet.
type Filter struct{}

// New returns the filter, ready to deploy into a storlet.Engine.
func New() *Filter { return &Filter{} }

// Name implements storlet.Filter.
func (*Filter) Name() string { return FilterName }

// Option keys understood in Task.Options.
const (
	// OptDelimiter overrides the field delimiter (default ",").
	OptDelimiter = "delimiter"
	// OptHeader ("true") marks the object's first record as a header to be
	// skipped. Only the range starting at offset 0 ever sees it.
	OptHeader = "header"
)

// compiled is the per-invocation execution plan.
type compiled struct {
	delim      byte
	skipHeader bool
	// projIdx are the field indexes to emit, in output order; nil = all.
	projIdx []int
	// preds pair each predicate with its resolved field index.
	preds []boundPred
}

type boundPred struct {
	idx  int
	pred pushdown.Predicate
}

// scanPool recycles the per-invocation field scanner (field-slice header
// plus unquoting scratch), completing the zero-allocation steady state: with
// the range reader and output writer pooled too, a filtered record costs no
// heap allocation at all.
var scanPool = sync.Pool{New: func() any { return new(csvio.FieldScanner) }}

// Invoke implements storlet.Filter.
func (f *Filter) Invoke(ctx *storlet.Context, in io.Reader, out io.Writer) error {
	c, err := compile(ctx.Task)
	if err != nil {
		return err
	}
	rr := csvio.AcquireRangeReader(in, ctx.RangeStart, ctx.RangeEnd)
	defer rr.Release()
	sc := scanPool.Get().(*csvio.FieldScanner)
	defer scanPool.Put(sc)
	bw := storlet.AcquireWriter(out)
	defer storlet.ReleaseWriter(bw)
	// A pure passthrough (no selection, no projection) emits records
	// verbatim; splitting them into fields would be pure overhead.
	needFields := c.projIdx != nil || len(c.preds) > 0
	var fields [][]byte
	skippedHeader := !c.skipHeader || ctx.RangeStart > 0
	rows, kept := 0, 0
	// The per-record loop: everything below runs once per CSV record, so it
	// must stay allocation-free — setup above is per-invocation and exempt.
	//scoop:hotpath
	for {
		rec, err := rr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return fmt.Errorf("csvfilter: read: %w", err)
		}
		if !skippedHeader {
			skippedHeader = true
			continue
		}
		rows++
		if needFields {
			fields = sc.Scan(rec, c.delim)
		}
		if !c.match(fields) {
			continue
		}
		kept++
		if c.projIdx == nil {
			// No projection: emit the record verbatim.
			if _, err := bw.Write(rec); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
			continue
		}
		for i, idx := range c.projIdx {
			if i > 0 {
				if err := bw.WriteByte(c.delim); err != nil {
					return err
				}
			}
			if idx < len(fields) {
				if csvio.NeedsQuoting(fields[idx], c.delim) {
					if err := writeQuoted(bw, fields[idx]); err != nil {
						return err
					}
				} else if _, err := bw.Write(fields[idx]); err != nil {
					return err
				}
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	ctx.Logf("csvfilter: range [%d,%d): %d rows in, %d rows out", ctx.RangeStart, ctx.RangeEnd, rows, kept)
	return bw.Flush()
}

func writeQuoted(bw *bufio.Writer, field []byte) error {
	if err := bw.WriteByte('"'); err != nil {
		return err
	}
	for _, ch := range field {
		if ch == '"' {
			if _, err := bw.WriteString(`""`); err != nil {
				return err
			}
			continue
		}
		if err := bw.WriteByte(ch); err != nil {
			return err
		}
	}
	return bw.WriteByte('"')
}

func compile(task *pushdown.Task) (*compiled, error) {
	if task == nil {
		return nil, errors.New("csvfilter: nil task")
	}
	if err := task.Validate(); err != nil {
		return nil, err
	}
	c := &compiled{delim: csvio.DefaultDelimiter}
	if d := task.Options[OptDelimiter]; d != "" {
		if len(d) != 1 {
			return nil, fmt.Errorf("csvfilter: delimiter must be one byte, got %q", d)
		}
		c.delim = d[0]
	}
	c.skipHeader = task.Options[OptHeader] == "true"
	if task.Schema == "" {
		return nil, errors.New("csvfilter: task missing schema")
	}
	schema, err := types.ParseSchema(task.Schema)
	if err != nil {
		return nil, fmt.Errorf("csvfilter: %w", err)
	}
	if len(task.Columns) > 0 {
		c.projIdx = make([]int, len(task.Columns))
		for i, name := range task.Columns {
			idx := schema.Index(name)
			if idx < 0 {
				return nil, fmt.Errorf("csvfilter: projected column %q not in schema", name)
			}
			c.projIdx[i] = idx
		}
	}
	for _, p := range task.Predicates {
		idx := schema.Index(p.Column)
		if idx < 0 {
			return nil, fmt.Errorf("csvfilter: predicate column %q not in schema", p.Column)
		}
		c.preds = append(c.preds, boundPred{idx: idx, pred: p})
	}
	return c, nil
}

// match applies the conjunction of predicates to raw fields, comparing
// byte slices directly — no per-record string conversion.
func (c *compiled) match(fields [][]byte) bool {
	for i := range c.preds {
		bp := &c.preds[i]
		var raw []byte
		null := bp.idx >= len(fields)
		if !null {
			raw = fields[bp.idx]
		}
		if !bp.pred.MatchesBytes(raw, null) {
			return false
		}
	}
	return true
}
