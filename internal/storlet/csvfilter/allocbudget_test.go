//go:build !race

// Allocation-budget regression test for the whole select/project pipeline:
// one Invoke over a 1000-record range must stay within a small fixed
// allocation budget (plan compilation, final log line), i.e. zero allocations
// per record. Excluded under the race detector, whose instrumentation
// allocates; scripts/verify.sh runs it in a separate non-race step.
package csvfilter

import (
	"io"
	"strings"
	"testing"

	"scoop/internal/pushdown"
	"scoop/internal/storlet"
)

// invokeBudget is the per-Invoke allocation allowance. It covers the
// per-invocation fixed costs only — at one allocation per record a
// 1000-record pass would blow it 20× over, which is what the test guards.
const invokeBudget = 50.0

func budgetRun(t *testing.T, task *pushdown.Task) float64 {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < 1000; i++ {
		sb.WriteString("vid8,2015-01-17 10:20:00,42.25,Rotterdam,NED\n")
	}
	data := sb.String()
	f := New()
	ctx := &storlet.Context{Task: task, RangeStart: 0, RangeEnd: int64(len(data)), ObjectSize: int64(len(data))}
	var rd strings.Reader
	run := func() {
		rd.Reset(data)
		if err := f.Invoke(ctx, &rd, io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the reader/scanner/writer pools
	return testing.AllocsPerRun(10, run)
}

func TestAllocBudgetPassthrough(t *testing.T) {
	task := &pushdown.Task{Filter: FilterName, Schema: testSchema}
	if avg := budgetRun(t, task); avg > invokeBudget {
		t.Fatalf("passthrough: %v allocs per 1000-record Invoke, budget %v", avg, invokeBudget)
	}
}

func TestAllocBudgetSelectProject(t *testing.T) {
	task := &pushdown.Task{
		Filter:  FilterName,
		Schema:  testSchema,
		Columns: []string{"vid", "index"},
		Predicates: []pushdown.Predicate{
			{Column: "state", Op: pushdown.OpEq, Value: "NED"},
			{Column: "index", Op: pushdown.OpGt, Value: "5", Numeric: true},
			{Column: "city", Op: pushdown.OpLike, Value: "Rot%"},
		},
	}
	if avg := budgetRun(t, task); avg > invokeBudget {
		t.Fatalf("select/project: %v allocs per 1000-record Invoke, budget %v", avg, invokeBudget)
	}
}
