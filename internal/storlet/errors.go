package storlet

import (
	"errors"
	"fmt"
)

// Typed invocation errors. The convention matches the object store's
// *ReplicationError: a sentinel names the category (match with errors.Is)
// and a wrapper struct carries the detail (extract with errors.As). Every
// error delivered by a sandboxed invocation is a *FilterError wrapping one
// of these sentinels or the filter's own error, so callers up the stack —
// the proxy's 503 mapping, the connector's fallback decision — never parse
// message strings.
var (
	// ErrNotDeployed is returned when a task names a filter the engine does
	// not have.
	ErrNotDeployed = errors.New("storlet: filter not deployed")
	// ErrFilterTimeout is returned when an invocation exceeds Limits.Timeout.
	ErrFilterTimeout = errors.New("storlet: filter timed out")
	// ErrOutputLimit is returned when an invocation exceeds
	// Limits.MaxOutputBytes.
	ErrOutputLimit = errors.New("storlet: output limit exceeded")
	// ErrOverloaded is the admission-control rejection: MaxConcurrent slots
	// are all busy and the wait queue is full or the wait deadline passed.
	// It fires before a sandbox goroutine is spawned, so shedding load under
	// saturation costs nothing.
	ErrOverloaded = errors.New("storlet: engine overloaded")
	// ErrBreakerOpen is returned when the filter's circuit breaker refuses
	// the invocation (the filter has been failing persistently).
	ErrBreakerOpen = errors.New("storlet: filter circuit breaker open")
)

// FilterError attributes an invocation failure to the filter that caused it.
// Unwrap exposes the cause so errors.Is finds the sentinels above (and any
// error the filter itself returned) through the wrapper.
type FilterError struct {
	// Filter is the name of the filter whose invocation failed.
	Filter string
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *FilterError) Error() string {
	return fmt.Sprintf("storlet: filter %q: %v", e.Filter, e.Err)
}

// Unwrap exposes the cause for errors.Is / errors.As.
func (e *FilterError) Unwrap() error { return e.Err }
