package colstore

import (
	"context"
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"scoop/internal/sql/types"
)

const decl = "vid string, date string, index double, n int, ok bool"

func sampleRows(n int) []types.Row {
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{
			types.Str("V" + strings.Repeat("0", 3) + string(rune('0'+i%10))),
			types.Str("2015-01-01 00:10:00"),
			types.FloatV(float64(i) * 1.5),
			types.IntV(int64(i)),
			types.BoolV(i%2 == 0),
		}
	}
	return rows
}

func writeFile(t *testing.T, rows []types.Row, groupSize int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, decl, groupSize)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := w.WriteRow(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	rows := sampleRows(100)
	file := writeFile(t, rows, 0)
	r, err := NewReader(context.Background(), BytesFetcher(file), int64(len(file)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows() != 100 || r.Groups() != 1 {
		t.Fatalf("rows=%d groups=%d", r.Rows(), r.Groups())
	}
	got, err := r.ReadGroup(context.Background(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("rows = %d", len(got))
	}
	for i := range rows {
		for j := range rows[i] {
			if got[i][j].Compare(rows[i][j]) != 0 {
				t.Fatalf("row %d col %d: %v vs %v", i, j, got[i][j], rows[i][j])
			}
		}
	}
	if r.Schema().Len() != 5 {
		t.Errorf("schema = %v", r.Schema())
	}
}

func TestMultipleRowGroups(t *testing.T) {
	rows := sampleRows(250)
	file := writeFile(t, rows, 100)
	r, err := NewReader(context.Background(), BytesFetcher(file), int64(len(file)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Groups() != 3 {
		t.Fatalf("groups = %d", r.Groups())
	}
	var total int
	for g := 0; g < r.Groups(); g++ {
		part, err := r.ReadGroup(context.Background(), g, []string{"n"})
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range part {
			if row[0].I != int64(total) {
				t.Fatalf("group %d: n=%v want %d", g, row[0], total)
			}
			total++
		}
	}
	if total != 250 {
		t.Errorf("total rows = %d", total)
	}
}

func TestColumnPruningFetchesLess(t *testing.T) {
	rows := sampleRows(2000)
	file := writeFile(t, rows, 0)
	count := &countingFetcher{b: file}
	r, err := NewReader(context.Background(), count, int64(len(file)))
	if err != nil {
		t.Fatal(err)
	}
	footerBytes := count.n
	count.n = 0
	if _, err := r.ReadGroup(context.Background(), 0, []string{"n"}); err != nil {
		t.Fatal(err)
	}
	oneCol := count.n
	count.n = 0
	if _, err := r.ReadGroup(context.Background(), 0, nil); err != nil {
		t.Fatal(err)
	}
	allCols := count.n
	if oneCol >= allCols/2 {
		t.Errorf("one column fetched %d bytes, all columns %d", oneCol, allCols)
	}
	if footerBytes == 0 {
		t.Error("footer read not counted")
	}
}

func TestCompression(t *testing.T) {
	// Highly repetitive data must compress well below raw CSV size.
	rows := make([]types.Row, 5000)
	for i := range rows {
		rows[i] = types.Row{
			types.Str("V000001"),
			types.Str("2015-01-01 00:10:00"),
			types.FloatV(42),
			types.IntV(7),
			types.BoolV(true),
		}
	}
	file := writeFile(t, rows, 0)
	csvSize := 5000 * len("V000001,2015-01-01 00:10:00,42,7,true\n")
	if len(file) > csvSize/5 {
		t.Errorf("columnar size %d, csv %d: compression too weak", len(file), csvSize)
	}
}

func TestProjectionOrder(t *testing.T) {
	rows := sampleRows(10)
	file := writeFile(t, rows, 0)
	r, _ := NewReader(context.Background(), BytesFetcher(file), int64(len(file)))
	got, err := r.ReadGroup(context.Background(), 0, []string{"n", "vid"})
	if err != nil {
		t.Fatal(err)
	}
	if got[3][0].I != 3 || !strings.HasPrefix(got[3][1].S, "V") {
		t.Errorf("row = %v", got[3])
	}
}

func TestNullsRoundTrip(t *testing.T) {
	rows := []types.Row{
		{types.NullValue(), types.NullValue(), types.NullValue(), types.NullValue(), types.NullValue()},
		{types.Str("x"), types.Str("y"), types.FloatV(1), types.IntV(2), types.BoolV(false)},
	}
	file := writeFile(t, rows, 0)
	r, _ := NewReader(context.Background(), BytesFetcher(file), int64(len(file)))
	got, err := r.ReadGroup(context.Background(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := range got[0] {
		if !got[0][j].IsNull() {
			t.Errorf("col %d: %v, want NULL", j, got[0][j])
		}
	}
	if got[1][3].I != 2 {
		t.Errorf("row1 = %v", got[1])
	}
}

func TestErrors(t *testing.T) {
	if _, err := NewWriter(&bytes.Buffer{}, "not a schema", 0); err == nil {
		t.Error("bad schema accepted")
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, decl, 0)
	if err := w.WriteRow(types.Row{types.Str("short")}); err == nil {
		t.Error("short row accepted")
	}
	// Corrupt / truncated files.
	rows := sampleRows(5)
	file := writeFile(t, rows, 0)
	if _, err := NewReader(context.Background(), BytesFetcher(file[:8]), 8); err == nil {
		t.Error("truncated file accepted")
	}
	bad := append([]byte{}, file...)
	copy(bad[len(bad)-len(Magic):], "WRONG")
	if _, err := NewReader(context.Background(), BytesFetcher(bad), int64(len(bad))); err == nil {
		t.Error("bad magic accepted")
	}
	r, _ := NewReader(context.Background(), BytesFetcher(file), int64(len(file)))
	if _, err := r.ReadGroup(context.Background(), 99, nil); err == nil {
		t.Error("bad group accepted")
	}
	if _, err := r.ReadGroup(context.Background(), 0, []string{"ghost"}); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := BytesFetcher(file).Fetch(context.Background(), -1, 5); err == nil {
		t.Error("negative fetch accepted")
	}
}

func TestEmptyFile(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, decl, 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(context.Background(), BytesFetcher(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows() != 0 || r.Groups() != 0 {
		t.Errorf("rows=%d groups=%d", r.Rows(), r.Groups())
	}
}

// Property: string and numeric values of any content round-trip.
func TestValueRoundTripProperty(t *testing.T) {
	f := func(s string, i int64, fl float64) bool {
		rows := []types.Row{{
			types.Str(s), types.Str(""), types.FloatV(fl), types.IntV(i), types.BoolV(i%2 == 0),
		}}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, decl, 0)
		if err != nil {
			return false
		}
		if err := w.WriteRow(rows[0]); err != nil {
			return false
		}
		if err := w.Close(); err != nil {
			return false
		}
		r, err := NewReader(context.Background(), BytesFetcher(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			return false
		}
		got, err := r.ReadGroup(context.Background(), 0, nil)
		if err != nil {
			return false
		}
		sameFloat := got[0][2].F == fl || (got[0][2].F != got[0][2].F && fl != fl)
		return got[0][0].S == s && sameFloat && got[0][3].I == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// failWriter errors after n bytes, exercising the writer's error paths.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errFail
	}
	take := len(p)
	if take > f.n {
		take = f.n
	}
	f.n -= take
	if take < len(p) {
		return take, errFail
	}
	return take, nil
}

var errFail = bytes.ErrTooLarge

func TestWriterOutputErrors(t *testing.T) {
	// Fail immediately: NewWriter can't write the magic.
	if _, err := NewWriter(&failWriter{n: 0}, decl, 0); err == nil {
		t.Error("magic write failure not surfaced")
	}
	// Fail during flush/close at several cut points.
	for _, budget := range []int{6, 30, 200} {
		w, err := NewWriter(&failWriter{n: budget}, decl, 0)
		if err != nil {
			continue // failed at magic already
		}
		failed := false
		for _, r := range sampleRows(500) {
			if err := w.WriteRow(r); err != nil {
				failed = true
				break
			}
		}
		if err := w.Close(); err == nil && !failed {
			t.Errorf("budget %d: no error surfaced", budget)
		}
		// Once failed, the writer stays failed.
		if err := w.WriteRow(sampleRows(1)[0]); err == nil && !failed {
			t.Errorf("budget %d: writer recovered after error", budget)
		}
	}
}

type countingFetcher struct {
	b []byte
	n int64
}

func (c *countingFetcher) Fetch(ctx context.Context, off, size int64) ([]byte, error) {
	c.n += size
	return BytesFetcher(c.b).Fetch(ctx, off, size)
}
