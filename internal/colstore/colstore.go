// Package colstore implements the columnar storage format used as the
// comparison baseline in the paper's §VI-C (Apache Parquet): data is laid
// out per column in compressed chunks with a footer index, so a reader can
// fetch only the columns a query projects — but, unlike Scoop, the
// *decompression and row filtering happen at the compute side*, and row
// selectivity cannot reduce transfer at all.
//
// File layout:
//
//	[magic "SCOL1"]
//	[row group 0: column chunk 0, column chunk 1, ...]
//	[row group 1: ...]
//	...
//	[footer JSON][footer length uint32][magic "SCOL1"]
//
// Each column chunk is DEFLATE-compressed. The footer records the schema and
// every chunk's offset/size, enabling ranged reads of single columns.
package colstore

import (
	"bytes"
	"context"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"scoop/internal/sql/types"
)

// Magic identifies the format (start and end of file).
const Magic = "SCOL1"

// DefaultRowGroupSize is the number of rows per row group.
const DefaultRowGroupSize = 64 * 1024

// ChunkMeta locates one column chunk within the file.
type ChunkMeta struct {
	Offset int64 `json:"off"`
	Size   int64 `json:"size"`
	// Raw is the uncompressed size.
	Raw int64 `json:"raw"`
}

// GroupMeta describes one row group.
type GroupMeta struct {
	Rows   int64       `json:"rows"`
	Chunks []ChunkMeta `json:"chunks"` // one per column, schema order
}

// Footer is the file's self-describing index.
type Footer struct {
	Schema string      `json:"schema"` // "name type, ..." declaration
	Groups []GroupMeta `json:"groups"`
	Rows   int64       `json:"rows"`
}

// Writer encodes rows into the columnar format.
type Writer struct {
	w            io.Writer
	schema       *types.Schema
	decl         string
	rowGroupSize int

	off    int64
	footer Footer
	cols   []bytes.Buffer // pending row group, one buffer per column
	rows   int64
	err    error
}

// NewWriter starts a columnar file with the given schema declaration.
func NewWriter(w io.Writer, schemaDecl string, rowGroupSize int) (*Writer, error) {
	schema, err := types.ParseSchema(schemaDecl)
	if err != nil {
		return nil, err
	}
	if rowGroupSize <= 0 {
		rowGroupSize = DefaultRowGroupSize
	}
	cw := &Writer{
		w:            w,
		schema:       schema,
		decl:         schemaDecl,
		rowGroupSize: rowGroupSize,
		cols:         make([]bytes.Buffer, schema.Len()),
	}
	cw.footer.Schema = schemaDecl
	if err := cw.writeRaw([]byte(Magic)); err != nil {
		return nil, err
	}
	return cw, nil
}

func (w *Writer) writeRaw(b []byte) error {
	if w.err != nil {
		return w.err
	}
	n, err := w.w.Write(b)
	w.off += int64(n)
	if err != nil {
		w.err = err
	}
	return w.err
}

// WriteRow appends one row; values are encoded per the schema's types.
func (w *Writer) WriteRow(row types.Row) error {
	if w.err != nil {
		return w.err
	}
	if len(row) != w.schema.Len() {
		return fmt.Errorf("colstore: row width %d, schema width %d", len(row), w.schema.Len())
	}
	for i, v := range row {
		encodeValue(&w.cols[i], v, w.schema.Columns[i].Type)
	}
	w.rows++
	if w.rows-groupRows(w.footer.Groups) >= int64(w.rowGroupSize) {
		return w.flushGroup()
	}
	return nil
}

func groupRows(groups []GroupMeta) int64 {
	var n int64
	for _, g := range groups {
		n += g.Rows
	}
	return n
}

func (w *Writer) flushGroup() error {
	pending := w.rows - groupRows(w.footer.Groups)
	if pending == 0 {
		return w.err
	}
	group := GroupMeta{Rows: pending}
	for i := range w.cols {
		raw := w.cols[i].Bytes()
		var comp bytes.Buffer
		fw, err := flate.NewWriter(&comp, flate.BestSpeed)
		if err != nil {
			w.err = err
			return err
		}
		if _, err := fw.Write(raw); err != nil {
			w.err = err
			return err
		}
		if err := fw.Close(); err != nil {
			w.err = err
			return err
		}
		group.Chunks = append(group.Chunks, ChunkMeta{
			Offset: w.off,
			Size:   int64(comp.Len()),
			Raw:    int64(len(raw)),
		})
		if err := w.writeRaw(comp.Bytes()); err != nil {
			return err
		}
		w.cols[i].Reset()
	}
	w.footer.Groups = append(w.footer.Groups, group)
	return w.err
}

// Close flushes the final row group and writes the footer. The Writer is
// unusable afterwards.
func (w *Writer) Close() error {
	if err := w.flushGroup(); err != nil {
		return err
	}
	w.footer.Rows = w.rows
	footerJSON, err := json.Marshal(w.footer)
	if err != nil {
		w.err = err
		return err
	}
	if err := w.writeRaw(footerJSON); err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(footerJSON)))
	if err := w.writeRaw(lenBuf[:]); err != nil {
		return err
	}
	return w.writeRaw([]byte(Magic))
}

// value encoding: a null byte flag, then the type-specific payload.

func encodeValue(buf *bytes.Buffer, v types.Value, t types.Type) {
	if v.IsNull() {
		buf.WriteByte(0)
		return
	}
	buf.WriteByte(1)
	switch t {
	case types.Int:
		i, _ := v.AsInt()
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutVarint(tmp[:], i)
		buf.Write(tmp[:n])
	case types.Float:
		f, _ := v.AsFloat()
		var tmp [8]byte
		binary.BigEndian.PutUint64(tmp[:], math.Float64bits(f))
		buf.Write(tmp[:])
	case types.Bool:
		b, _ := v.AsBool()
		if b {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
	default: // String
		s := v.AsString()
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(tmp[:], uint64(len(s)))
		buf.Write(tmp[:n])
		buf.WriteString(s)
	}
}

func decodeValue(r *bytes.Reader, t types.Type) (types.Value, error) {
	flag, err := r.ReadByte()
	if err != nil {
		return types.Value{}, err
	}
	if flag == 0 {
		return types.NullValue(), nil
	}
	switch t {
	case types.Int:
		i, err := binary.ReadVarint(r)
		if err != nil {
			return types.Value{}, err
		}
		return types.IntV(i), nil
	case types.Float:
		var tmp [8]byte
		if _, err := io.ReadFull(r, tmp[:]); err != nil {
			return types.Value{}, err
		}
		return types.FloatV(math.Float64frombits(binary.BigEndian.Uint64(tmp[:]))), nil
	case types.Bool:
		b, err := r.ReadByte()
		if err != nil {
			return types.Value{}, err
		}
		return types.BoolV(b != 0), nil
	default:
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return types.Value{}, err
		}
		if n > uint64(r.Len()) {
			return types.Value{}, fmt.Errorf("colstore: corrupt string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return types.Value{}, err
		}
		return types.Str(string(buf)), nil
	}
}

// RangeFetcher reads byte ranges of a stored file — implemented by the
// object-store connector so column chunks travel as ranged GETs.
type RangeFetcher interface {
	// Fetch returns bytes [off, off+size) of the file. The context bounds
	// the underlying transfer (a ranged GET for remote files).
	Fetch(ctx context.Context, off, size int64) ([]byte, error)
}

// ReadFooter fetches and parses the footer given the file size.
func ReadFooter(ctx context.Context, f RangeFetcher, fileSize int64) (*Footer, error) {
	tailLen := int64(4 + len(Magic))
	if fileSize < tailLen+int64(len(Magic)) {
		return nil, fmt.Errorf("colstore: file too small (%d bytes)", fileSize)
	}
	tail, err := f.Fetch(ctx, fileSize-tailLen, tailLen)
	if err != nil {
		return nil, err
	}
	if string(tail[4:]) != Magic {
		return nil, fmt.Errorf("colstore: bad trailing magic %q", tail[4:])
	}
	footerLen := int64(binary.BigEndian.Uint32(tail[:4]))
	if footerLen <= 0 || footerLen > fileSize-tailLen {
		return nil, fmt.Errorf("colstore: bad footer length %d", footerLen)
	}
	raw, err := f.Fetch(ctx, fileSize-tailLen-footerLen, footerLen)
	if err != nil {
		return nil, err
	}
	var footer Footer
	if err := json.Unmarshal(raw, &footer); err != nil {
		return nil, fmt.Errorf("colstore: parse footer: %w", err)
	}
	return &footer, nil
}

// Reader decodes selected columns of a columnar file.
type Reader struct {
	f      RangeFetcher
	footer *Footer
	schema *types.Schema
}

// NewReader opens a columnar file for reading.
func NewReader(ctx context.Context, f RangeFetcher, fileSize int64) (*Reader, error) {
	footer, err := ReadFooter(ctx, f, fileSize)
	if err != nil {
		return nil, err
	}
	schema, err := types.ParseSchema(footer.Schema)
	if err != nil {
		return nil, err
	}
	return &Reader{f: f, footer: footer, schema: schema}, nil
}

// Schema returns the file's schema.
func (r *Reader) Schema() *types.Schema { return r.schema }

// Rows returns the total row count.
func (r *Reader) Rows() int64 { return r.footer.Rows }

// Groups returns the number of row groups (the parallelism unit).
func (r *Reader) Groups() int { return len(r.footer.Groups) }

// ReadGroup decodes the named columns of row group g into rows laid out in
// the given column order. Only those columns' chunks are fetched.
func (r *Reader) ReadGroup(ctx context.Context, g int, columns []string) ([]types.Row, error) {
	if g < 0 || g >= len(r.footer.Groups) {
		return nil, fmt.Errorf("colstore: row group %d out of range", g)
	}
	if len(columns) == 0 {
		columns = r.schema.Names()
	}
	group := r.footer.Groups[g]
	rows := make([]types.Row, group.Rows)
	for i := range rows {
		rows[i] = make(types.Row, len(columns))
	}
	for ci, name := range columns {
		idx := r.schema.Index(name)
		if idx < 0 {
			return nil, fmt.Errorf("colstore: unknown column %q", name)
		}
		chunk := group.Chunks[idx]
		comp, err := r.f.Fetch(ctx, chunk.Offset, chunk.Size)
		if err != nil {
			return nil, err
		}
		raw, err := io.ReadAll(flate.NewReader(bytes.NewReader(comp)))
		if err != nil {
			return nil, fmt.Errorf("colstore: decompress column %q: %w", name, err)
		}
		br := bytes.NewReader(raw)
		t := r.schema.Columns[idx].Type
		for ri := int64(0); ri < group.Rows; ri++ {
			v, err := decodeValue(br, t)
			if err != nil {
				return nil, fmt.Errorf("colstore: decode column %q row %d: %w", name, ri, err)
			}
			rows[ri][ci] = v
		}
	}
	return rows, nil
}

// BytesFetcher adapts an in-memory file to RangeFetcher.
type BytesFetcher []byte

// Fetch implements RangeFetcher.
func (b BytesFetcher) Fetch(_ context.Context, off, size int64) ([]byte, error) {
	if off < 0 || off+size > int64(len(b)) {
		return nil, fmt.Errorf("colstore: fetch [%d,%d) out of %d", off, off+size, len(b))
	}
	return b[off : off+size], nil
}
