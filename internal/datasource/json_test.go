package datasource

import (
	"context"
	"strings"
	"testing"

	"scoop/internal/connector"
	"scoop/internal/pushdown"
	"scoop/internal/sql/exec"
	"scoop/internal/storlet/jsonfilter"
)

const jsonDocs = `{"vid": "V1", "index": 10.5, "city": "Rotterdam", "state": "NED"}
{"vid": "V2", "index": 5.25, "city": "Paris", "state": "FRA"}
{"vid": "V3", "index": 1, "city": "Kyiv", "state": "UKR"}
`

const jsonSchema = "vid string, index double, city string, state string"

func newJSONFixture(t *testing.T) *fixture {
	t.Helper()
	fx := newFixture(t, 0)
	if err := fx.cluster.Engine().Register(jsonfilter.New()); err != nil {
		t.Fatal(err)
	}
	if err := fx.conn.Client().CreateContainer(context.Background(), "gp", "jmeters", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.conn.Client().PutObject(context.Background(), "gp", "jmeters", "docs.jsonl",
		strings.NewReader(jsonDocs), nil); err != nil {
		t.Fatal(err)
	}
	return fx
}

func jsonModes(t *testing.T, f func(t *testing.T, pd bool)) {
	t.Run("baseline", func(t *testing.T) { f(t, false) })
	t.Run("pushdown", func(t *testing.T) { f(t, true) })
}

func TestJSONScan(t *testing.T) {
	jsonModes(t, func(t *testing.T, pd bool) {
		fx := newJSONFixture(t)
		rel, err := NewJSON(fx.conn, "jmeters", "", jsonSchema, JSONOptions{Pushdown: pd})
		if err != nil {
			t.Fatal(err)
		}
		rows := allRows(t, rel, rel.Scan)
		if len(rows) != 3 {
			t.Fatalf("rows = %v", rows)
		}
		if rows[0][0].S != "V1" || rows[0][1].F != 10.5 || rows[0][3].S != "NED" {
			t.Errorf("row0 = %v", rows[0])
		}
	})
}

func TestJSONPrunedFiltered(t *testing.T) {
	jsonModes(t, func(t *testing.T, pd bool) {
		fx := newJSONFixture(t)
		rel, _ := NewJSON(fx.conn, "jmeters", "", jsonSchema, JSONOptions{Pushdown: pd})
		preds := []pushdown.Predicate{{Column: "index", Op: pushdown.OpGt, Value: "2", Numeric: true}}
		rows := allRows(t, rel, func(ctx context.Context, s connector.Split) (exec.Iterator, error) {
			return rel.ScanPrunedFiltered(context.Background(), s, []string{"vid", "index"}, preds)
		})
		if len(rows) != 2 || len(rows[0]) != 2 {
			t.Fatalf("rows = %v", rows)
		}
	})
}

func TestJSONPushdownReducesTransfer(t *testing.T) {
	fx := newJSONFixture(t)
	preds := []pushdown.Predicate{{Column: "state", Op: pushdown.OpEq, Value: "FRA"}}
	scan := func(rel PrunedFilteredScanner) int64 {
		fx.conn.ResetStats()
		splits, err := rel.Splits(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range splits {
			it, err := rel.ScanPrunedFiltered(context.Background(), s, []string{"vid"}, preds)
			if err != nil {
				t.Fatal(err)
			}
			drain(t, it)
		}
		return fx.conn.Stats().BytesIngested
	}
	base, _ := NewJSON(fx.conn, "jmeters", "", jsonSchema, JSONOptions{})
	push, _ := NewJSON(fx.conn, "jmeters", "", jsonSchema, JSONOptions{Pushdown: true})
	baseBytes := scan(base)
	pushBytes := scan(push)
	if pushBytes >= baseBytes/5 {
		t.Errorf("pushdown moved %d vs baseline %d", pushBytes, baseBytes)
	}
}

func TestJSONModeEquivalence(t *testing.T) {
	fx := newJSONFixture(t)
	preds := []pushdown.Predicate{{Column: "city", Op: pushdown.OpLike, Value: "P%"}}
	var results [][]string
	for _, pd := range []bool{false, true} {
		rel, _ := NewJSON(fx.conn, "jmeters", "", jsonSchema, JSONOptions{Pushdown: pd})
		rows := allRows(t, rel, func(ctx context.Context, s connector.Split) (exec.Iterator, error) {
			return rel.ScanPrunedFiltered(context.Background(), s, []string{"vid", "state"}, preds)
		})
		var rendered []string
		for _, r := range rows {
			rendered = append(rendered, r[0].AsString()+"|"+r[1].AsString())
		}
		results = append(results, rendered)
	}
	if len(results[0]) != len(results[1]) {
		t.Fatalf("row counts differ: %v vs %v", results[0], results[1])
	}
	for i := range results[0] {
		if results[0][i] != results[1][i] {
			t.Errorf("row %d: %q vs %q", i, results[0][i], results[1][i])
		}
	}
}

func TestJSONBadSchemaAndColumns(t *testing.T) {
	fx := newJSONFixture(t)
	if _, err := NewJSON(fx.conn, "jmeters", "", "bad", JSONOptions{}); err == nil {
		t.Error("bad schema accepted")
	}
	rel, _ := NewJSON(fx.conn, "jmeters", "", jsonSchema, JSONOptions{})
	splits, _ := rel.Splits(context.Background())
	if _, err := rel.ScanPruned(context.Background(), splits[0], []string{"ghost"}); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestJSONSkipInvalid(t *testing.T) {
	fx := newJSONFixture(t)
	dirty := `{"vid": "V9"}` + "\ngarbage line\n"
	if _, err := fx.conn.Client().PutObject(context.Background(), "gp", "jmeters", "dirty.jsonl",
		strings.NewReader(dirty), nil); err != nil {
		t.Fatal(err)
	}
	// Without skip, baseline parse fails.
	strict, _ := NewJSON(fx.conn, "jmeters", "dirty", jsonSchema, JSONOptions{})
	splits, _ := strict.Splits(context.Background())
	it, err := strict.Scan(context.Background(), splits[0])
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	bad := false
	for {
		_, err := it.Next()
		if err != nil {
			bad = strings.Contains(err.Error(), "json")
			break
		}
	}
	if !bad {
		t.Error("invalid line not surfaced")
	}
	// With skip, the good doc survives in both modes.
	jsonModes(t, func(t *testing.T, pd bool) {
		rel, _ := NewJSON(fx.conn, "jmeters", "dirty", jsonSchema, JSONOptions{Pushdown: pd, SkipInvalid: true})
		rows := allRows(t, rel, rel.Scan)
		if len(rows) != 1 || rows[0][0].S != "V9" {
			t.Errorf("rows = %v", rows)
		}
	})
}
