package datasource

import (
	"context"
	"fmt"
	"io"
	"sync"

	"scoop/internal/colstore"
	"scoop/internal/connector"
	"scoop/internal/pushdown"
	"scoop/internal/sql/exec"
	"scoop/internal/sql/types"
)

// ParquetRelation reads columnar (colstore) objects — the paper's Apache
// Parquet baseline (§VI-C). Column projection shrinks transfers (only the
// projected columns' compressed chunks travel), but decompression and row
// filtering happen at the compute side, and row selectivity saves nothing on
// the wire. Partitions are row groups.
type ParquetRelation struct {
	conn      *connector.Connector
	container string
	prefix    string

	mu      sync.Mutex
	readers map[string]*colstore.Reader
	schema  *types.Schema
}

// The relation prunes columns at the source (PrunedScanner) but applies
// predicates compute-side, mirroring Parquet-on-Spark-1.6.
var _ PrunedScanner = (*ParquetRelation)(nil)

// NewParquet opens a columnar dataset under container/prefix. The schema is
// read from the first object's footer.
func NewParquet(ctx context.Context, conn *connector.Connector, container, prefix string) (*ParquetRelation, error) {
	r := &ParquetRelation{
		conn:      conn,
		container: container,
		prefix:    prefix,
		readers:   make(map[string]*colstore.Reader),
	}
	objects, err := conn.Client().ListObjects(ctx, conn.Account(), container, prefix)
	if err != nil {
		return nil, err
	}
	if len(objects) == 0 {
		return nil, fmt.Errorf("datasource: no columnar objects under %s/%s", container, prefix)
	}
	rd, err := r.reader(ctx, objects[0].Name, objects[0].Size)
	if err != nil {
		return nil, err
	}
	r.schema = rd.Schema()
	return r, nil
}

// Schema implements Relation.
func (r *ParquetRelation) Schema() *types.Schema { return r.schema }

// Splits implements Relation: one split per row group. The Split's Start
// field carries the row-group index (columnar files are not byte-divisible).
func (r *ParquetRelation) Splits(ctx context.Context) ([]connector.Split, error) {
	objects, err := r.conn.Client().ListObjects(ctx, r.conn.Account(), r.container, r.prefix)
	if err != nil {
		return nil, err
	}
	var out []connector.Split
	for _, obj := range objects {
		rd, err := r.reader(ctx, obj.Name, obj.Size)
		if err != nil {
			return nil, err
		}
		for g := 0; g < rd.Groups(); g++ {
			out = append(out, connector.Split{
				Account:    r.conn.Account(),
				Container:  r.container,
				Object:     obj.Name,
				Start:      int64(g),
				End:        int64(g) + 1,
				ObjectSize: obj.Size,
			})
		}
	}
	return out, nil
}

// Scan implements Relation.
func (r *ParquetRelation) Scan(ctx context.Context, split connector.Split) (exec.Iterator, error) {
	return r.ScanPruned(ctx, split, nil)
}

// ScanPruned implements PrunedScanner: only the named columns' chunks are
// fetched (as ranged GETs through the connector, so ingestion accounting
// sees exactly the transferred bytes).
func (r *ParquetRelation) ScanPruned(ctx context.Context, split connector.Split, columns []string) (exec.Iterator, error) {
	rd, err := r.reader(ctx, split.Object, split.ObjectSize)
	if err != nil {
		return nil, err
	}
	rows, err := rd.ReadGroup(ctx, int(split.Start), columns)
	if err != nil {
		return nil, err
	}
	return exec.NewSliceIterator(rows), nil
}

// ScanPrunedFiltered applies predicates after decoding, at the compute side
// (Parquet cannot discard rows at the store).
func (r *ParquetRelation) ScanPrunedFiltered(ctx context.Context, split connector.Split, columns []string, preds []pushdown.Predicate) (exec.Iterator, error) {
	if len(preds) == 0 {
		return r.ScanPruned(ctx, split, columns)
	}
	// Read the projected columns plus any predicate-only columns.
	need := append([]string(nil), columns...)
	have := make(map[string]bool, len(columns))
	for _, c := range columns {
		have[c] = true
	}
	for _, p := range preds {
		if !have[p.Column] {
			have[p.Column] = true
			need = append(need, p.Column)
		}
	}
	it, err := r.ScanPruned(ctx, split, need)
	if err != nil {
		return nil, err
	}
	outW := len(columns)
	if outW == 0 {
		outW = r.schema.Len()
	}
	colIdx := make(map[string]int, len(need))
	for i, c := range need {
		colIdx[c] = i
	}
	return &filteredIterator{it: it, preds: preds, colIdx: colIdx, outWidth: outW}, nil
}

type filteredIterator struct {
	it       exec.Iterator
	preds    []pushdown.Predicate
	colIdx   map[string]int
	outWidth int
}

// Next implements exec.Iterator.
func (f *filteredIterator) Next() (types.Row, error) {
	for {
		row, err := f.it.Next()
		if err != nil {
			return nil, err
		}
		ok := true
		for _, p := range f.preds {
			idx := f.colIdx[p.Column]
			v := row[idx]
			if !p.Matches(v.AsString(), v.IsNull()) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		return row[:f.outWidth], nil
	}
}

// Close implements exec.Iterator.
func (f *filteredIterator) Close() error { return f.it.Close() }

func (r *ParquetRelation) reader(ctx context.Context, object string, size int64) (*colstore.Reader, error) {
	r.mu.Lock()
	if rd, ok := r.readers[object]; ok {
		r.mu.Unlock()
		return rd, nil
	}
	r.mu.Unlock()
	fetcher := &connFetcher{conn: r.conn, container: r.container, object: object, size: size}
	rd, err := colstore.NewReader(ctx, fetcher, size)
	if err != nil {
		return nil, fmt.Errorf("datasource: open columnar %s: %w", object, err)
	}
	r.mu.Lock()
	r.readers[object] = rd
	r.mu.Unlock()
	return rd, nil
}

// connFetcher turns column-chunk reads into ranged GETs.
type connFetcher struct {
	conn      *connector.Connector
	container string
	object    string
	size      int64
}

// Fetch implements colstore.RangeFetcher.
func (c *connFetcher) Fetch(ctx context.Context, off, size int64) ([]byte, error) {
	rc, err := c.conn.Open(ctx, connector.Split{
		Account:    c.conn.Account(),
		Container:  c.container,
		Object:     c.object,
		Start:      off,
		End:        off + size,
		ObjectSize: c.size,
	}, nil)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	return io.ReadAll(rc)
}
