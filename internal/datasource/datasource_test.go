package datasource

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"scoop/internal/connector"
	"scoop/internal/objectstore"
	"scoop/internal/pushdown"
	"scoop/internal/sql/exec"
	"scoop/internal/sql/types"
	"scoop/internal/storlet/compressfilter"
	"scoop/internal/storlet/csvfilter"
)

const schemaDecl = "vid string, date string, index double, city string, state string"

const meterCSV = "V1,2015-01-01,10.5,Rotterdam,NED\n" +
	"V2,2015-01-01,5.25,Paris,FRA\n" +
	"V3,2015-02-01,1.0,Kyiv,UKR\n"

type fixture struct {
	cluster *objectstore.Cluster
	conn    *connector.Connector
}

func newFixture(t *testing.T, chunkSize int64) *fixture {
	t.Helper()
	c, err := objectstore.NewCluster(objectstore.DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Engine().Register(csvfilter.New()); err != nil {
		t.Fatal(err)
	}
	cl := c.Client()
	if err := cl.CreateContainer(context.Background(), "gp", "meters", nil); err != nil {
		t.Fatal(err)
	}
	conn := connector.New(cl, "gp", chunkSize)
	if _, err := conn.Upload(context.Background(), "meters", "jan.csv", strings.NewReader(meterCSV)); err != nil {
		t.Fatal(err)
	}
	return &fixture{cluster: c, conn: conn}
}

func drain(t *testing.T, it exec.Iterator) []types.Row {
	t.Helper()
	defer it.Close()
	var out []types.Row
	for {
		r, err := it.Next()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, r)
	}
}

func allRows(t *testing.T, rel Relation, scan func(context.Context, connector.Split) (exec.Iterator, error)) []types.Row {
	t.Helper()
	splits, err := rel.Splits(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var out []types.Row
	for _, s := range splits {
		it, err := scan(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, drain(t, it)...)
	}
	return out
}

func modes(t *testing.T, f func(t *testing.T, pushdownMode bool)) {
	t.Run("baseline", func(t *testing.T) { f(t, false) })
	t.Run("pushdown", func(t *testing.T) { f(t, true) })
}

func TestScanAllColumns(t *testing.T) {
	modes(t, func(t *testing.T, pd bool) {
		fx := newFixture(t, 0)
		rel, err := NewCSV(fx.conn, "meters", "", schemaDecl, CSVOptions{Pushdown: pd})
		if err != nil {
			t.Fatal(err)
		}
		rows := allRows(t, rel, rel.Scan)
		if len(rows) != 3 {
			t.Fatalf("rows = %d", len(rows))
		}
		if rows[0][0].S != "V1" || rows[0][2].F != 10.5 || rows[0][4].S != "NED" {
			t.Errorf("row0 = %v", rows[0])
		}
		if rel.Schema().Len() != 5 {
			t.Errorf("schema = %v", rel.Schema())
		}
	})
}

func TestScanPruned(t *testing.T) {
	modes(t, func(t *testing.T, pd bool) {
		fx := newFixture(t, 0)
		rel, _ := NewCSV(fx.conn, "meters", "", schemaDecl, CSVOptions{Pushdown: pd})
		rows := allRows(t, rel, func(ctx context.Context, s connector.Split) (exec.Iterator, error) {
			return rel.ScanPruned(context.Background(), s, []string{"state", "index"})
		})
		if len(rows) != 3 {
			t.Fatalf("rows = %d", len(rows))
		}
		if len(rows[0]) != 2 || rows[0][0].S != "NED" || rows[0][1].F != 10.5 {
			t.Errorf("row0 = %v", rows[0])
		}
	})
}

func TestScanPrunedFiltered(t *testing.T) {
	modes(t, func(t *testing.T, pd bool) {
		fx := newFixture(t, 0)
		rel, _ := NewCSV(fx.conn, "meters", "", schemaDecl, CSVOptions{Pushdown: pd})
		preds := []pushdown.Predicate{
			{Column: "date", Op: pushdown.OpLike, Value: "2015-01%"},
			{Column: "index", Op: pushdown.OpGt, Value: "6", Numeric: true},
		}
		rows := allRows(t, rel, func(ctx context.Context, s connector.Split) (exec.Iterator, error) {
			return rel.ScanPrunedFiltered(context.Background(), s, []string{"vid"}, preds)
		})
		if len(rows) != 1 || rows[0][0].S != "V1" {
			t.Fatalf("rows = %v", rows)
		}
	})
}

// The key ingestion property: pushdown moves fewer bytes for the same rows.
func TestPushdownIngestsFewerBytes(t *testing.T) {
	fx := newFixture(t, 0)
	preds := []pushdown.Predicate{{Column: "state", Op: pushdown.OpEq, Value: "FRA"}}

	base, _ := NewCSV(fx.conn, "meters", "", schemaDecl, CSVOptions{Pushdown: false})
	baseRows := allRows(t, base, func(ctx context.Context, s connector.Split) (exec.Iterator, error) {
		return base.ScanPrunedFiltered(context.Background(), s, []string{"vid"}, preds)
	})
	baseBytes := fx.conn.Stats().BytesIngested

	fx.conn.ResetStats()
	push, _ := NewCSV(fx.conn, "meters", "", schemaDecl, CSVOptions{Pushdown: true})
	pushRows := allRows(t, push, func(ctx context.Context, s connector.Split) (exec.Iterator, error) {
		return push.ScanPrunedFiltered(context.Background(), s, []string{"vid"}, preds)
	})
	pushBytes := fx.conn.Stats().BytesIngested

	if len(baseRows) != len(pushRows) || len(baseRows) != 1 {
		t.Fatalf("row mismatch: base=%v push=%v", baseRows, pushRows)
	}
	if pushBytes >= baseBytes {
		t.Errorf("pushdown ingested %d bytes, baseline %d", pushBytes, baseBytes)
	}
}

// Multiple splits + both modes: every row exactly once.
func TestMultiSplitExactlyOnce(t *testing.T) {
	modes(t, func(t *testing.T, pd bool) {
		fx := newFixture(t, 25) // forces several splits of the 99-byte object
		rel, _ := NewCSV(fx.conn, "meters", "", schemaDecl, CSVOptions{Pushdown: pd})
		splits, err := rel.Splits(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(splits) < 3 {
			t.Fatalf("want multiple splits, got %v", splits)
		}
		rows := allRows(t, rel, func(ctx context.Context, s connector.Split) (exec.Iterator, error) {
			return rel.ScanPruned(context.Background(), s, []string{"vid"})
		})
		seen := map[string]int{}
		for _, r := range rows {
			seen[r[0].S]++
		}
		for _, vid := range []string{"V1", "V2", "V3"} {
			if seen[vid] != 1 {
				t.Errorf("vid %s seen %d times (splits=%v)", vid, seen[vid], splits)
			}
		}
	})
}

func TestHeaderHandling(t *testing.T) {
	modes(t, func(t *testing.T, pd bool) {
		fx := newFixture(t, 0)
		data := "vid,date,index,city,state\n" + meterCSV
		if _, err := fx.conn.Upload(context.Background(), "meters", "hdr.csv", strings.NewReader(data)); err != nil {
			t.Fatal(err)
		}
		rel, _ := NewCSV(fx.conn, "meters", "hdr", schemaDecl, CSVOptions{Pushdown: pd, Header: true})
		rows := allRows(t, rel, func(ctx context.Context, s connector.Split) (exec.Iterator, error) {
			return rel.ScanPruned(context.Background(), s, []string{"vid"})
		})
		if len(rows) != 3 {
			t.Fatalf("rows = %v", rows)
		}
	})
}

func TestBadSchema(t *testing.T) {
	fx := newFixture(t, 0)
	if _, err := NewCSV(fx.conn, "meters", "", "not a schema at all", CSVOptions{}); err == nil {
		t.Error("bad schema should fail")
	}
}

func TestUnknownColumns(t *testing.T) {
	fx := newFixture(t, 0)
	rel, _ := NewCSV(fx.conn, "meters", "", schemaDecl, CSVOptions{})
	splits, _ := rel.Splits(context.Background())
	if _, err := rel.ScanPruned(context.Background(), splits[0], []string{"ghost"}); err == nil {
		t.Error("unknown projected column should fail")
	}
	if _, err := rel.ScanPrunedFiltered(context.Background(), splits[0], nil, []pushdown.Predicate{{Column: "ghost", Op: pushdown.OpEq}}); err == nil {
		t.Error("unknown predicate column should fail")
	}
}

func TestDirtyNumericBecomesNull(t *testing.T) {
	fx := newFixture(t, 0)
	if _, err := fx.conn.Upload(context.Background(), "meters", "dirty.csv", strings.NewReader("V9,2015-01-01,notanumber,Paris,FRA\n")); err != nil {
		t.Fatal(err)
	}
	rel, _ := NewCSV(fx.conn, "meters", "dirty", schemaDecl, CSVOptions{})
	rows := allRows(t, rel, rel.Scan)
	if len(rows) != 1 || !rows[0][2].IsNull() {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCompressTransfer(t *testing.T) {
	fx := newFixture(t, 0)
	if err := fx.cluster.Engine().Register(compressfilter.New()); err != nil {
		t.Fatal(err)
	}
	// Bigger object so compression can pay off.
	big := strings.Repeat(meterCSV, 200)
	if _, err := fx.conn.Upload(context.Background(), "meters", "big.csv", strings.NewReader(big)); err != nil {
		t.Fatal(err)
	}
	plain, _ := NewCSV(fx.conn, "meters", "big", schemaDecl, CSVOptions{Pushdown: true})
	zipped, _ := NewCSV(fx.conn, "meters", "big", schemaDecl, CSVOptions{Pushdown: true, CompressTransfer: true})

	fx.conn.ResetStats()
	rowsPlain := allRows(t, plain, plain.Scan)
	plainBytes := fx.conn.Stats().BytesIngested

	fx.conn.ResetStats()
	rowsZipped := allRows(t, zipped, zipped.Scan)
	zippedBytes := fx.conn.Stats().BytesIngested

	if len(rowsPlain) != len(rowsZipped) || len(rowsPlain) != 600 {
		t.Fatalf("rows: plain %d zipped %d", len(rowsPlain), len(rowsZipped))
	}
	for i := range rowsPlain {
		for j := range rowsPlain[i] {
			if rowsPlain[i][j].Compare(rowsZipped[i][j]) != 0 {
				t.Fatalf("row %d col %d differs", i, j)
			}
		}
	}
	if zippedBytes >= plainBytes/2 {
		t.Errorf("compressed transfer %d vs plain %d: compression ineffective", zippedBytes, plainBytes)
	}
}

func TestIteratorCloseIdempotent(t *testing.T) {
	fx := newFixture(t, 0)
	rel, _ := NewCSV(fx.conn, "meters", "", schemaDecl, CSVOptions{})
	splits, _ := rel.Splits(context.Background())
	it, err := rel.Scan(context.Background(), splits[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}
