package datasource

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"scoop/internal/connector"
	"scoop/internal/csvio"
	"scoop/internal/pushdown"
	"scoop/internal/sql/exec"
	"scoop/internal/sql/types"
	"scoop/internal/storlet/jsonfilter"
)

// JSONOptions configure a JSON-lines relation.
type JSONOptions struct {
	// Pushdown delegates projection/selection to the object store's JSON
	// filter; otherwise documents are parsed at the compute side.
	Pushdown bool
	// SkipInvalid drops undecodable lines instead of failing.
	SkipInvalid bool
}

// JSONRelation reads JSON-lines objects under a container prefix. The
// declared schema names the document fields to expose as columns (dotted
// paths address nested fields when used through the relation API).
type JSONRelation struct {
	conn      *connector.Connector
	container string
	prefix    string
	schema    *types.Schema
	opts      JSONOptions
}

var _ PrunedFilteredScanner = (*JSONRelation)(nil)

// NewJSON builds a JSON-lines relation with the declared schema.
func NewJSON(conn *connector.Connector, container, prefix, schemaDecl string, opts JSONOptions) (*JSONRelation, error) {
	schema, err := types.ParseSchema(schemaDecl)
	if err != nil {
		return nil, err
	}
	return &JSONRelation{conn: conn, container: container, prefix: prefix, schema: schema, opts: opts}, nil
}

// Schema implements Relation.
func (r *JSONRelation) Schema() *types.Schema { return r.schema }

// Splits implements Relation.
func (r *JSONRelation) Splits(ctx context.Context) ([]connector.Split, error) {
	return r.conn.DiscoverPartitions(ctx, r.container, r.prefix)
}

// Scan implements Relation.
func (r *JSONRelation) Scan(ctx context.Context, split connector.Split) (exec.Iterator, error) {
	return r.ScanPrunedFiltered(ctx, split, nil, nil)
}

// ScanPruned implements PrunedScanner.
func (r *JSONRelation) ScanPruned(ctx context.Context, split connector.Split, columns []string) (exec.Iterator, error) {
	return r.ScanPrunedFiltered(ctx, split, columns, nil)
}

// ScanPrunedFiltered implements PrunedFilteredScanner.
func (r *JSONRelation) ScanPrunedFiltered(ctx context.Context, split connector.Split, columns []string, preds []pushdown.Predicate) (exec.Iterator, error) {
	outSchema := r.schema
	if len(columns) > 0 {
		var err error
		outSchema, err = r.schema.Project(columns)
		if err != nil {
			return nil, err
		}
	} else {
		columns = r.schema.Names()
	}
	if r.opts.Pushdown {
		task := &pushdown.Task{
			Filter:     jsonfilter.FilterName,
			Columns:    columns,
			Predicates: preds,
			Options:    map[string]string{},
		}
		if r.opts.SkipInvalid {
			task.Options[jsonfilter.OptSkipInvalid] = "true"
		}
		rc, err := r.conn.Open(ctx, split, []*pushdown.Task{task})
		if err != nil {
			return nil, err
		}
		// The filter already emitted projected fields as CSV.
		return &csvIterator{
			rc:     rc,
			rr:     csvio.NewRangeReader(rc, 0, int64(1)<<62),
			schema: outSchema,
			delim:  csvio.DefaultDelimiter,
		}, nil
	}
	// Baseline: raw lines, JSON decoding at the compute side.
	open := split
	open.End = split.ObjectSize
	rc, err := r.conn.Open(ctx, open, nil)
	if err != nil {
		return nil, err
	}
	return &jsonIterator{
		rc:          rc,
		rr:          csvio.NewRangeReader(rc, split.Start, split.End),
		schema:      outSchema,
		columns:     columns,
		preds:       preds,
		skipInvalid: r.opts.SkipInvalid,
	}, nil
}

// jsonIterator decodes JSON lines into typed rows at the compute side.
type jsonIterator struct {
	rc          io.ReadCloser
	rr          *csvio.RangeReader
	schema      *types.Schema
	columns     []string
	preds       []pushdown.Predicate
	skipInvalid bool
	closed      bool
}

// Next implements exec.Iterator.
func (it *jsonIterator) Next() (types.Row, error) {
	for {
		rec, err := it.rr.Next()
		if err != nil {
			return nil, err
		}
		if len(bytes.TrimSpace(rec)) == 0 {
			continue
		}
		doc, err := decodeDoc(rec)
		if err != nil {
			if it.skipInvalid {
				continue
			}
			return nil, fmt.Errorf("datasource: json: %w", err)
		}
		if !docMatches(it.preds, doc) {
			continue
		}
		row := make(types.Row, len(it.columns))
		for i, path := range it.columns {
			v, ok := docLookup(doc, path)
			if !ok || v == nil {
				row[i] = types.NullValue()
				continue
			}
			row[i] = types.Coerce(renderJSON(v), it.schema.Columns[i].Type)
		}
		return row, nil
	}
}

// Close implements exec.Iterator.
func (it *jsonIterator) Close() error {
	if it.closed {
		return nil
	}
	it.closed = true
	return it.rc.Close()
}

func decodeDoc(line []byte) (map[string]any, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.UseNumber()
	var doc map[string]any
	if err := dec.Decode(&doc); err != nil {
		return nil, err
	}
	return doc, nil
}

func docLookup(doc map[string]any, path string) (any, bool) {
	cur := any(doc)
	for _, part := range strings.Split(path, ".") {
		m, ok := cur.(map[string]any)
		if !ok {
			return nil, false
		}
		cur, ok = m[part]
		if !ok {
			return nil, false
		}
	}
	return cur, true
}

func renderJSON(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case json.Number:
		return x.String()
	case bool:
		return strconv.FormatBool(x)
	default:
		b, err := json.Marshal(x)
		if err != nil {
			return ""
		}
		return string(b)
	}
}

func docMatches(preds []pushdown.Predicate, doc map[string]any) bool {
	for _, p := range preds {
		v, ok := docLookup(doc, p.Column)
		null := !ok || v == nil
		raw := ""
		if !null {
			raw = renderJSON(v)
		}
		if !p.Matches(raw, null) {
			return false
		}
	}
	return true
}
