// Package datasource implements the Spark "Data Sources API" flavors the
// paper builds on (§V-A): Scan (return everything), PrunedScan (projection
// passed to the source) and PrunedFilteredScan (projection and selection
// passed to the source), plus the CSV relation that implements them either
// the classic way — ingest raw bytes and filter at the compute node — or the
// Scoop way — delegate projection and selection to the object store.
package datasource

import (
	"context"
	"errors"
	"fmt"
	"io"

	"scoop/internal/connector"
	"scoop/internal/csvio"
	"scoop/internal/pushdown"
	"scoop/internal/sql/exec"
	"scoop/internal/sql/types"
	"scoop/internal/storlet/compressfilter"
)

// chainCloser closes a decompressor (when present) before the transport.
type chainCloser struct {
	rc    io.ReadCloser
	extra io.Closer
}

func (c *chainCloser) Read(p []byte) (int, error) { return c.rc.Read(p) }

func (c *chainCloser) Close() error {
	if c.extra != nil {
		c.extra.Close()
	}
	return c.rc.Close()
}

// Relation is the basic Scan flavor: a partitioned dataset with a schema.
type Relation interface {
	// Schema describes the rows Scan yields.
	Schema() *types.Schema
	// Splits lists the partitions of the dataset.
	Splits(ctx context.Context) ([]connector.Split, error)
	// Scan reads one split, returning every row with every column.
	Scan(ctx context.Context, split connector.Split) (exec.Iterator, error)
}

// PrunedScanner is the PrunedScan flavor: the source prunes columns.
type PrunedScanner interface {
	Relation
	// ScanPruned reads one split returning only the named columns, in order.
	ScanPruned(ctx context.Context, split connector.Split, columns []string) (exec.Iterator, error)
}

// PrunedFilteredScanner is the PrunedFilteredScan flavor: the source prunes
// columns and applies simple predicates exactly.
type PrunedFilteredScanner interface {
	PrunedScanner
	// ScanPrunedFiltered reads one split returning only the named columns of
	// rows satisfying all predicates.
	ScanPrunedFiltered(ctx context.Context, split connector.Split, columns []string, preds []pushdown.Predicate) (exec.Iterator, error)
}

// CSVOptions configure a CSV relation.
type CSVOptions struct {
	// Pushdown delegates projection/selection to the object store. When
	// false the relation ingests raw partitions and filters after parsing at
	// the compute side — the ingest-then-compute baseline.
	Pushdown bool
	// Header marks objects as carrying a header record.
	Header bool
	// Delimiter overrides the field separator (default ',').
	Delimiter byte
	// Stage forces the pushdown filter tier ("object" default, or "proxy").
	Stage string
	// CompressTransfer pipelines a DEFLATE filter after the CSV filter at
	// the store and decompresses at the compute side — the paper's §VII
	// "combination of data filtering and compression" for low-selectivity
	// queries. Only effective in pushdown mode.
	CompressTransfer bool
}

// CSVRelation reads CSV objects under a container prefix.
type CSVRelation struct {
	conn      *connector.Connector
	container string
	prefix    string
	schema    *types.Schema
	decl      string
	opts      CSVOptions
}

// Statically assert the full API surface.
var _ PrunedFilteredScanner = (*CSVRelation)(nil)

// NewCSV builds a CSV relation over container/prefix with the declared
// schema ("name type, ...").
func NewCSV(conn *connector.Connector, container, prefix, schemaDecl string, opts CSVOptions) (*CSVRelation, error) {
	schema, err := types.ParseSchema(schemaDecl)
	if err != nil {
		return nil, err
	}
	if opts.Delimiter == 0 {
		opts.Delimiter = csvio.DefaultDelimiter
	}
	return &CSVRelation{
		conn:      conn,
		container: container,
		prefix:    prefix,
		schema:    schema,
		decl:      schemaDecl,
		opts:      opts,
	}, nil
}

// Schema implements Relation.
func (r *CSVRelation) Schema() *types.Schema { return r.schema }

// Splits implements Relation.
func (r *CSVRelation) Splits(ctx context.Context) ([]connector.Split, error) {
	return r.conn.DiscoverPartitions(ctx, r.container, r.prefix)
}

// Scan implements Relation: all columns, all rows.
func (r *CSVRelation) Scan(ctx context.Context, split connector.Split) (exec.Iterator, error) {
	return r.ScanPrunedFiltered(ctx, split, nil, nil)
}

// ScanPruned implements PrunedScanner.
func (r *CSVRelation) ScanPruned(ctx context.Context, split connector.Split, columns []string) (exec.Iterator, error) {
	return r.ScanPrunedFiltered(ctx, split, columns, nil)
}

// ScanPrunedFiltered implements PrunedFilteredScanner. In pushdown mode it
// tags the split's GET with a CSV filter task; otherwise it ingests the raw
// range and prunes/filters after parsing, at the compute side.
func (r *CSVRelation) ScanPrunedFiltered(ctx context.Context, split connector.Split, columns []string, preds []pushdown.Predicate) (exec.Iterator, error) {
	outSchema := r.schema
	if len(columns) > 0 {
		var err error
		outSchema, err = r.schema.Project(columns)
		if err != nil {
			return nil, err
		}
	}
	if r.opts.Pushdown {
		task := &pushdown.Task{
			Filter:     "csv",
			Columns:    columns,
			Predicates: preds,
			Schema:     r.decl,
			Stage:      r.opts.Stage,
		}
		task.Options = map[string]string{}
		if r.opts.Header {
			task.Options["header"] = "true"
		}
		if r.opts.Delimiter != csvio.DefaultDelimiter {
			task.Options["delimiter"] = string(r.opts.Delimiter)
		}
		chain := []*pushdown.Task{task}
		if r.opts.CompressTransfer {
			chain = append(chain, &pushdown.Task{Filter: compressfilter.FilterName, Stage: r.opts.Stage})
		}
		rc, err := r.conn.Open(ctx, split, chain)
		if err != nil {
			return nil, err
		}
		stream := io.Reader(rc)
		var extra io.Closer
		if r.opts.CompressTransfer {
			fr := compressfilter.NewReader(rc)
			stream = fr
			extra = fr
		}
		// The store returns exactly the projected columns of matching rows;
		// the whole stream is complete records (no split re-alignment).
		return &csvIterator{
			rc:     &chainCloser{rc: rc, extra: extra},
			rr:     csvio.NewRangeReader(stream, 0, int64(1)<<62),
			schema: outSchema,
			delim:  r.opts.Delimiter,
		}, nil
	}

	// Baseline: raw ranged GET; alignment, header skip, parse, prune and
	// filter all happen here at the compute node. The GET extends to the
	// object's end so the record straddling the split boundary can be
	// finished; the range reader stops just past End and the lazy HTTP body
	// means the tail is never actually transferred.
	open := split
	open.End = split.ObjectSize
	rc, err := r.conn.Open(ctx, open, nil)
	if err != nil {
		return nil, err
	}
	it := &csvIterator{
		rc:         rc,
		rr:         csvio.NewRangeReader(rc, split.Start, split.End),
		schema:     outSchema,
		delim:      r.opts.Delimiter,
		skipHeader: r.opts.Header && split.Start == 0,
	}
	if len(columns) > 0 {
		it.projIdx = make([]int, len(columns))
		for i, name := range columns {
			idx := r.schema.Index(name)
			if idx < 0 {
				rc.Close()
				return nil, fmt.Errorf("datasource: unknown column %q", name)
			}
			it.projIdx[i] = idx
		}
	}
	for _, p := range preds {
		idx := r.schema.Index(p.Column)
		if idx < 0 {
			rc.Close()
			return nil, fmt.Errorf("datasource: unknown predicate column %q", p.Column)
		}
		it.preds = append(it.preds, boundPred{idx: idx, pred: p})
	}
	return it, nil
}

type boundPred struct {
	idx  int
	pred pushdown.Predicate
}

// csvIterator parses a CSV stream into typed rows.
type csvIterator struct {
	rc         io.ReadCloser
	rr         *csvio.RangeReader
	schema     *types.Schema // output schema (pruned or full)
	delim      byte
	skipHeader bool
	// projIdx maps output column -> raw field index; nil means identity
	// (raw fields are already in output order, as in pushdown mode).
	projIdx []int
	preds   []boundPred
	fields  [][]byte
	closed  bool
}

// Next implements exec.Iterator.
func (it *csvIterator) Next() (types.Row, error) {
	for {
		rec, err := it.rr.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil, io.EOF
			}
			return nil, err
		}
		if it.skipHeader {
			it.skipHeader = false
			continue
		}
		it.fields = csvio.Fields(rec, it.delim, it.fields)
		if !it.match() {
			continue
		}
		row := make(types.Row, it.schema.Len())
		for i := range row {
			idx := i
			if it.projIdx != nil {
				idx = it.projIdx[i]
			}
			if idx < len(it.fields) {
				row[i] = types.Coerce(string(it.fields[idx]), it.schema.Columns[i].Type)
			} else {
				row[i] = types.NullValue()
			}
		}
		return row, nil
	}
}

func (it *csvIterator) match() bool {
	for _, bp := range it.preds {
		var raw string
		null := bp.idx >= len(it.fields)
		if !null {
			raw = string(it.fields[bp.idx])
		}
		if !bp.pred.Matches(raw, null) {
			return false
		}
	}
	return true
}

// Close implements exec.Iterator.
func (it *csvIterator) Close() error {
	if it.closed {
		return nil
	}
	it.closed = true
	return it.rc.Close()
}
