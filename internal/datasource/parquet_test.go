package datasource

import (
	"context"
	"bytes"
	"strings"
	"testing"

	"scoop/internal/colstore"
	"scoop/internal/connector"
	"scoop/internal/pushdown"
	"scoop/internal/sql/exec"
	"scoop/internal/sql/types"
)

// uploadColumnar converts meterCSV into a columnar object.
func uploadColumnar(t *testing.T, fx *fixture, object string, groupSize int) {
	t.Helper()
	schema, err := types.ParseSchema(schemaDecl)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := colstore.NewWriter(&buf, schemaDecl, groupSize)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(meterCSV), "\n") {
		fields := strings.Split(line, ",")
		row := make(types.Row, len(fields))
		for i, f := range fields {
			row[i] = types.Coerce(f, schema.Columns[i].Type)
		}
		if err := w.WriteRow(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.conn.Upload(context.Background(), "meters", object, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
}

func newParquetFixture(t *testing.T, groupSize int) (*fixture, *ParquetRelation) {
	t.Helper()
	fx := newFixture(t, 0)
	uploadColumnar(t, fx, "jan.col", groupSize)
	rel, err := NewParquet(context.Background(), fx.conn, "meters", "jan.col")
	if err != nil {
		t.Fatal(err)
	}
	return fx, rel
}

func TestParquetScanAll(t *testing.T) {
	_, rel := newParquetFixture(t, 0)
	if rel.Schema().Len() != 5 {
		t.Fatalf("schema = %v", rel.Schema())
	}
	rows := allRows(t, rel, rel.Scan)
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].S != "V1" || rows[0][2].F != 10.5 {
		t.Errorf("row0 = %v", rows[0])
	}
}

func TestParquetRowGroupSplits(t *testing.T) {
	_, rel := newParquetFixture(t, 2) // 3 rows -> 2 groups
	splits, err := rel.Splits(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 2 {
		t.Fatalf("splits = %v", splits)
	}
	rows := allRows(t, rel, rel.Scan)
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestParquetPruning(t *testing.T) {
	fx, rel := newParquetFixture(t, 0)
	fx.conn.ResetStats()
	rows := allRows(t, rel, func(ctx context.Context, s connector.Split) (exec.Iterator, error) {
		return rel.ScanPruned(context.Background(), s, []string{"vid"})
	})
	oneCol := fx.conn.Stats().BytesIngested
	if len(rows) != 3 || len(rows[0]) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	fx.conn.ResetStats()
	_ = allRows(t, rel, rel.Scan)
	allCols := fx.conn.Stats().BytesIngested
	if oneCol >= allCols {
		t.Errorf("pruned fetch %d >= full fetch %d", oneCol, allCols)
	}
}

func TestParquetComputeSideFilter(t *testing.T) {
	_, rel := newParquetFixture(t, 0)
	preds := []pushdown.Predicate{{Column: "state", Op: pushdown.OpEq, Value: "FRA"}}
	rows := allRows(t, rel, func(ctx context.Context, s connector.Split) (exec.Iterator, error) {
		return rel.ScanPrunedFiltered(context.Background(), s, []string{"vid"}, preds)
	})
	if len(rows) != 1 || rows[0][0].S != "V2" || len(rows[0]) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	// Numeric predicate on decoded values.
	preds = []pushdown.Predicate{{Column: "index", Op: pushdown.OpGt, Value: "6", Numeric: true}}
	rows = allRows(t, rel, func(ctx context.Context, s connector.Split) (exec.Iterator, error) {
		return rel.ScanPrunedFiltered(context.Background(), s, []string{"vid", "index"}, preds)
	})
	if len(rows) != 1 || rows[0][0].S != "V1" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestParquetRowSelectivityDoesNotReduceTransfer(t *testing.T) {
	fx, rel := newParquetFixture(t, 0)
	cols := []string{"vid", "state"}
	fx.conn.ResetStats()
	_ = allRows(t, rel, func(ctx context.Context, s connector.Split) (exec.Iterator, error) {
		return rel.ScanPrunedFiltered(context.Background(), s, cols, nil)
	})
	noFilter := fx.conn.Stats().BytesIngested
	fx.conn.ResetStats()
	preds := []pushdown.Predicate{{Column: "state", Op: pushdown.OpEq, Value: "FRA"}}
	_ = allRows(t, rel, func(ctx context.Context, s connector.Split) (exec.Iterator, error) {
		return rel.ScanPrunedFiltered(context.Background(), s, cols, preds)
	})
	withFilter := fx.conn.Stats().BytesIngested
	if withFilter != noFilter {
		t.Errorf("row filter changed transfer: %d vs %d (Parquet cannot discard rows at the store)", withFilter, noFilter)
	}
}

func TestParquetMissingDataset(t *testing.T) {
	fx := newFixture(t, 0)
	if _, err := NewParquet(context.Background(), fx.conn, "meters", "nonexistent"); err == nil {
		t.Error("missing dataset accepted")
	}
	// A non-columnar object fails to open.
	if _, err := NewParquet(context.Background(), fx.conn, "meters", "jan.csv"); err == nil {
		t.Error("CSV object accepted as columnar")
	}
}
