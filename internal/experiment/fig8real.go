package experiment

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"

	"scoop/internal/colstore"
	"scoop/internal/connector"
	"scoop/internal/datasource"
	"scoop/internal/meter"
	"scoop/internal/sql/types"
)

// fig8Real uploads a columnar copy of the dataset and compares, per column
// projection width, the bytes each approach moves to compute: the CSV
// pushdown filter (Scoop) against column-pruned columnar reads (Parquet).
func fig8Real(w io.Writer, env *Env) error {
	if err := uploadColumnarDataset(env); err != nil {
		return err
	}
	conn := env.Scoop.Connector()
	csvRel, err := datasource.NewCSV(conn, "meters", "part-", meter.SchemaDecl,
		datasource.CSVOptions{Pushdown: true})
	if err != nil {
		return err
	}
	colRel, err := datasource.NewParquet(context.Background(), conn, "colmeters", "")
	if err != nil {
		return err
	}

	t := &table{header: []string{
		"col selectivity", "scoop bytes", "parquet bytes", "scoop rows", "parquet rows",
	}}
	for _, frac := range []float64{1.0, 0.6, 0.3, 0.1} {
		cols, achieved := meter.ColumnSubset(frac)
		scoopBytes, scoopRows, err := drainRelation(conn, csvRel, cols)
		if err != nil {
			return err
		}
		parquetBytes, parquetRows, err := drainRelation(conn, colRel, cols)
		if err != nil {
			return err
		}
		t.add(pct(1-achieved), fmt.Sprint(scoopBytes), fmt.Sprint(parquetBytes),
			fmt.Sprint(scoopRows), fmt.Sprint(parquetRows))
	}
	t.write(w)
	fmt.Fprintln(w, "\nExpected shape: Parquet moves fewer bytes at every projection width")
	fmt.Fprintln(w, "(compression); Scoop's advantage in the paper comes from compute-side")
	fmt.Fprintln(w, "decode costs and row-selective queries, which Parquet cannot push down.")
	return nil
}

// drainRelation scans every split with the projection and returns the bytes
// ingested and rows seen.
func drainRelation(conn *connector.Connector, rel datasource.PrunedScanner, cols []string) (int64, int64, error) {
	ctx := context.Background() // batch harness, no caller deadline
	conn.ResetStats()
	splits, err := rel.Splits(ctx)
	if err != nil {
		return 0, 0, err
	}
	var rows int64
	for _, split := range splits {
		it, err := rel.ScanPruned(ctx, split, cols)
		if err != nil {
			return 0, 0, err
		}
		for {
			_, err := it.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				it.Close()
				return 0, 0, err
			}
			rows++
		}
		it.Close()
	}
	return conn.Stats().BytesIngested, rows, nil
}

// uploadColumnarDataset regenerates the env's dataset rows into one
// columnar object under the "colmeters" container.
func uploadColumnarDataset(env *Env) error {
	ctx := context.Background() // batch harness, no caller deadline
	client := env.Scoop.Client()
	account := env.Scoop.Account()
	if err := client.CreateContainer(ctx, account, "colmeters", nil); err != nil {
		// A prior call may have created it.
		if list, lerr := client.ListObjects(ctx, account, "colmeters", ""); lerr == nil && len(list) > 0 {
			return nil
		}
	}
	schema, err := types.ParseSchema(meter.SchemaDecl)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	cw, err := colstore.NewWriter(&buf, meter.SchemaDecl, 16*1024)
	if err != nil {
		return err
	}
	row := make(types.Row, schema.Len())
	err = env.Gen.Generate(func(fields []string) error {
		for i := range row {
			if i < len(fields) {
				row[i] = types.Coerce(fields[i], schema.Columns[i].Type)
			} else {
				row[i] = types.NullValue()
			}
		}
		return cw.WriteRow(row)
	})
	if err != nil {
		return err
	}
	if err := cw.Close(); err != nil {
		return err
	}
	_, err = client.PutObject(ctx, account, "colmeters", "data.col", bytes.NewReader(buf.Bytes()), nil)
	return err
}
