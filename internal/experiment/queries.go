package experiment

// GridPocketQuery is one of the data-intensive queries of Table I, with the
// selectivity percentages the paper reports for the real GridPocket data.
type GridPocketQuery struct {
	Name        string
	Description string
	SQL         string
	// Paper-reported selectivities (fractions).
	PaperColSel  float64
	PaperRowSel  float64
	PaperDataSel float64
	// Paper Fig. 7 speedups (small 50GB / medium 500GB datasets).
	PaperSpeedupSmall  float64
	PaperSpeedupMedium float64
}

// GridPocketQueries are the seven queries of Table I, verbatim.
var GridPocketQueries = []GridPocketQuery{
	{
		Name:        "ShowMapCons",
		Description: "Per-meter aggregated consumption for a heatmap or per-state display",
		SQL: `SELECT vid, sum(index) as max, first_value(lat) as lat, first_value(long) as long,
			first_value(state) as state FROM largeMeter WHERE date LIKE '2015-01%'
			GROUP BY SUBSTRING(date, 0, 7), vid ORDER BY SUBSTRING(date, 0, 7), vid`,
		PaperColSel: 0.92, PaperRowSel: 0.9962, PaperDataSel: 0.9997,
		PaperSpeedupSmall: 4.1, PaperSpeedupMedium: 25,
	},
	{
		Name:        "ShowMapMeter",
		Description: "Each meter with its info for a cluster map",
		SQL: `SELECT vid, sum(index) as max, first_value(city) as city, first_value(lat) as lat,
			first_value(long) as long, first_value(state) as state FROM largeMeter
			WHERE date LIKE '2015-01%' GROUP BY SUBSTRING(date, 0, 7), vid
			ORDER BY SUBSTRING(date, 0, 7), vid`,
		PaperColSel: 0.92, PaperRowSel: 0.9954, PaperDataSel: 0.9997,
		PaperSpeedupSmall: 4.5, PaperSpeedupMedium: 25,
	},
	{
		Name:        "ShowMapHeatmonth",
		Description: "Daily data for a given month for a per-day slider display",
		SQL: `SELECT SUBSTRING(date, 0, 10) as sDate, sum(index) as max, first_value(lat) as lat,
			first_value(long) as long FROM largeMeter WHERE date LIKE '2015-01%'
			GROUP BY SUBSTRING(date, 0, 10), vid ORDER BY SUBSTRING(date, 0, 10), vid`,
		PaperColSel: 0.92, PaperRowSel: 0.9954, PaperDataSel: 0.9996,
		PaperSpeedupSmall: 4.3, PaperSpeedupMedium: 25,
	},
	{
		Name:        "Showgraphcons",
		Description: "Consumption of meters in Rotterdam for Jan 2015",
		SQL: `SELECT SUBSTRING(date, 0, 10) as sDate, sum(index) as max, vid FROM largeMeter
			WHERE city LIKE 'Rotterdam' AND date LIKE '2015-01-%'
			GROUP BY SUBSTRING(date, 0, 10), vid ORDER BY SUBSTRING(date, 0, 10), vid`,
		PaperColSel: 0.9999, PaperRowSel: 0.9955, PaperDataSel: 0.9999,
		PaperSpeedupSmall: 12, PaperSpeedupMedium: 30,
	},
	{
		Name:        "ShowPiemonth",
		Description: "Consumption for a subset of states",
		SQL: `SELECT SUBSTRING(date, 0, 10) as sDate, state as vid, sum(index) as max FROM largeMeter
			WHERE state LIKE 'U%' AND date LIKE '2015-01-%'
			GROUP BY SUBSTRING(date, 0, 10), state ORDER BY SUBSTRING(date, 0, 10), state`,
		PaperColSel: 0.9999, PaperRowSel: 0.9999, PaperDataSel: 0.9999,
		PaperSpeedupSmall: 15, PaperSpeedupMedium: 30,
	},
	{
		Name:        "ShowGraphHCHP",
		Description: "Peak versus shallow hour consumption",
		SQL: `SELECT SUBSTRING(date, 0, 10) as sDate, vid, min(sumHC) as minHC, max(sumHC) as maxHC,
			min(sumHP) as minHP, max(sumHP) as maxHP FROM largeMeter
			WHERE state LIKE 'FRA' AND date LIKE '2015-01-%'
			GROUP BY SUBSTRING(date, 0, 10), vid ORDER BY SUBSTRING(date, 0, 10), vid`,
		PaperColSel: 0.9999, PaperRowSel: 0.9994, PaperDataSel: 0.9999,
		PaperSpeedupSmall: 14, PaperSpeedupMedium: 30,
	},
	{
		Name:        "Showday",
		Description: "Consumption of any specified hour of a given month",
		SQL: `SELECT SUBSTRING(date, 0, 13) as sDate, sum(index) as max, vid FROM largeMeter
			WHERE city LIKE 'Rotterdam' AND date LIKE '2015-01-%'
			GROUP BY SUBSTRING(date, 0, 13), vid ORDER BY SUBSTRING(date, 0, 13), vid`,
		PaperColSel: 0.9999, PaperRowSel: 0.9999, PaperDataSel: 0.9999,
		PaperSpeedupSmall: 18.7, PaperSpeedupMedium: 30,
	},
}
