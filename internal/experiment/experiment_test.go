package experiment

import (
	"bytes"
	"strings"
	"testing"
)

// One shared env: building it generates and uploads the dataset once.
func testEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewEnv(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestTable1(t *testing.T) {
	env := testEnv(t)
	var buf bytes.Buffer
	if err := Table1(&buf, env); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, q := range GridPocketQueries {
		if !strings.Contains(out, q.Name) {
			t.Errorf("Table1 missing query %s", q.Name)
		}
	}
	if !strings.Contains(out, "data sel (ours)") {
		t.Error("Table1 missing measured columns")
	}
}

func TestFig1(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig1(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3000 GB") {
		t.Errorf("Fig1 output:\n%s", buf.String())
	}
}

func TestFig5(t *testing.T) {
	env := testEnv(t)
	var buf bytes.Buffer
	if err := Fig5(&buf, env); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"row selectivity", "column selectivity", "mixed selectivity", "real-path validation"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Fig5 missing %q", frag)
		}
	}
}

func TestFig6(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig6(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "99.99%") {
		t.Error("Fig6 missing high-selectivity row")
	}
}

func TestFig7(t *testing.T) {
	env := testEnv(t)
	var buf bytes.Buffer
	if err := Fig7(&buf, env); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ShowGraphHCHP") || !strings.Contains(out, "Total model time") {
		t.Errorf("Fig7 output:\n%s", out)
	}
}

func TestFig8(t *testing.T) {
	env := testEnv(t)
	var buf bytes.Buffer
	if err := Fig8(&buf, env); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "parquet") || !strings.Contains(out, "real-path transfer comparison") {
		t.Errorf("Fig8 output:\n%s", out)
	}
}

func TestFig9And10(t *testing.T) {
	env := testEnv(t)
	var buf bytes.Buffer
	if err := Fig9(&buf, env); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LB avg transmit") {
		t.Error("Fig9 missing network row")
	}
	buf.Reset()
	if err := Fig10(&buf, env); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "plain Swift") || !strings.Contains(out, "filter time share") {
		t.Errorf("Fig10 output:\n%s", out)
	}
}

func TestRunQueryMeasurements(t *testing.T) {
	env := testEnv(t)
	// ShowPiemonth: state LIKE 'U%' — high row selectivity on our data too.
	m, err := env.RunQuery("ShowPiemonth", GridPocketQueries[4].SQL)
	if err != nil {
		t.Fatal(err)
	}
	if m.DataSelectivity < 0.5 {
		t.Errorf("data selectivity = %v, want substantial", m.DataSelectivity)
	}
	if m.RowSelectivity <= 0 || m.RowSelectivity >= 1 {
		t.Errorf("row selectivity = %v", m.RowSelectivity)
	}
	if m.Rows == 0 {
		t.Error("no result rows")
	}
	wl := m.SimWorkload(50 * GB)
	if err := wl.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSimWorkloadTypeInference(t *testing.T) {
	rowish := MeasuredQuery{RowSelectivity: 0.9, ColSelectivity: 0.1}
	if wl := rowish.SimWorkload(GB); wl.Type.String() != "row" {
		t.Errorf("type = %v", wl.Type)
	}
	colish := MeasuredQuery{RowSelectivity: 0.1, ColSelectivity: 0.9}
	if wl := colish.SimWorkload(GB); wl.Type.String() != "column" {
		t.Errorf("type = %v", wl.Type)
	}
	both := MeasuredQuery{RowSelectivity: 0.9, ColSelectivity: 0.9}
	if wl := both.SimWorkload(GB); wl.Type.String() != "mixed" {
		t.Errorf("type = %v", wl.Type)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &table{header: []string{"a", "long-header"}}
	tb.add("wide-cell-value", "x")
	var buf bytes.Buffer
	tb.write(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.Contains(lines[1], "---") {
		t.Error("missing separator")
	}
}
