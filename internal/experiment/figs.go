package experiment

import (
	"fmt"
	"io"

	"scoop/internal/cluster"
	"scoop/internal/core"
)

// Table1 reproduces Table I: it runs the seven GridPocket queries on the
// real path, measuring column/row/data selectivity on the generated dataset
// and printing them next to the paper's values for the (unreleased) real
// GridPocket data.
func Table1(w io.Writer, env *Env) error {
	fmt.Fprintln(w, "== Table I: GridPocket queries and their data selectivity ==")
	fmt.Fprintf(w, "dataset: %d rows, %d bytes (generator stands in for the real meters)\n\n", env.Rows, env.DatasetBytes)
	t := &table{header: []string{
		"query", "col sel (paper)", "col sel (ours)",
		"row sel (paper)", "row sel (ours)",
		"data sel (paper)", "data sel (ours)", "rows out",
	}}
	for _, q := range GridPocketQueries {
		m, err := env.RunQuery(q.Name, q.SQL)
		if err != nil {
			return err
		}
		t.add(q.Name,
			pct(q.PaperColSel), pct(m.ColSelectivity),
			pct(q.PaperRowSel), pct(m.RowSelectivity),
			pct(q.PaperDataSel), pct(m.DataSelectivity),
			fmt.Sprint(m.Rows),
		)
	}
	t.write(w)
	fmt.Fprintln(w, "\nNote: the generated span (Dec 2014 - Feb 2015) makes January about a")
	fmt.Fprintln(w, "third of the rows, so date-only predicates discard less than on")
	fmt.Fprintln(w, "GridPocket's multi-year archive; queries that also select a city or")
	fmt.Fprintln(w, "state reproduce the paper's >90% regime.")
	return nil
}

// Fig1 reproduces Fig. 1: ingest-then-compute query time grows linearly
// with dataset size.
func Fig1(w io.Writer) error {
	fmt.Fprintln(w, "== Fig. 1: the ingest-then-compute problem ==")
	fmt.Fprintln(w, "baseline (no pushdown) query completion time vs dataset size, testbed model")
	fmt.Fprintln(w)
	tb := cluster.OSIC()
	t := &table{header: []string{"dataset", "baseline time", "time/GB"}}
	for _, gbs := range []float64{50, 250, 500, 1000, 2000, 3000} {
		w1 := cluster.Workload{DatasetBytes: gbs * GB, Selectivity: 0.9, Type: cluster.Mixed}
		bt := tb.BaselineTime(w1)
		t.add(fmt.Sprintf("%4.0f GB", gbs), secs(bt), fmt.Sprintf("%.3f s/GB", bt/gbs))
	}
	t.write(w)
	fmt.Fprintln(w, "\nExpected shape: linear growth (constant s/GB once overheads amortize).")
	return nil
}

// Fig5 reproduces Fig. 5: S_Q against query data selectivity for row,
// column and mixed selectivity across the three dataset sizes.
func Fig5(w io.Writer, env *Env) error {
	fmt.Fprintln(w, "== Fig. 5: query speedup vs data selectivity (testbed model) ==")
	tb := cluster.OSIC()
	sizes := []struct {
		name  string
		bytes float64
	}{{"50GB", 50 * GB}, {"500GB", 500 * GB}, {"3TB", 3 * TB}}
	for _, st := range []cluster.SelectivityType{cluster.Row, cluster.Column, cluster.Mixed} {
		fmt.Fprintf(w, "\n-- %s selectivity --\n", st)
		t := &table{header: []string{"selectivity", "S_Q 50GB", "S_Q 500GB", "S_Q 3TB"}}
		for _, sel := range []float64{0, 0.2, 0.4, 0.6, 0.8, 0.9} {
			row := []string{pct(sel)}
			for _, sz := range sizes {
				_ = sz.name
				s := tb.Speedup(cluster.Workload{DatasetBytes: sz.bytes, Selectivity: sel, Type: st})
				row = append(row, f2(s))
			}
			t.add(row...)
		}
		t.write(w)
	}
	fmt.Fprintln(w, "\nExpected shape: S_Q ≈ 1 at 0% (paper: worst-case −3.4%), ≈5 at 80%,")
	fmt.Fprintln(w, ">10 at 90%; larger datasets see larger S_Q; row ≥ mixed ≥ column.")

	if env != nil {
		fmt.Fprintln(w, "\n-- real-path validation (laptop scale) --")
		if err := fig5RealValidation(w, env); err != nil {
			return err
		}
	}
	return nil
}

// fig5RealValidation sweeps row selectivity on the real system using vid
// range predicates and reports measured ingestion reduction and speedup.
func fig5RealValidation(w io.Writer, env *Env) error {
	t := &table{header: []string{"target row sel", "measured data sel", "bytes base", "bytes push", "real S_Q"}}
	for _, sel := range []float64{0, 0.5, 0.9, 0.99} {
		bound := env.Gen.RowSelectivityPredicate(1 - sel)
		sql := fmt.Sprintf("SELECT vid, date, index FROM largeMeter WHERE vid < '%s'", bound)
		m, err := env.RunQuery(fmt.Sprintf("sweep-%.2f", sel), sql)
		if err != nil {
			return err
		}
		push, err := env.Scoop.Query(sql, core.QueryOptions{Mode: core.ModePushdown})
		if err != nil {
			return err
		}
		base, err := env.Scoop.Query(sql, core.QueryOptions{Mode: core.ModeBaseline})
		if err != nil {
			return err
		}
		t.add(pct(sel), pct(m.DataSelectivity),
			fmt.Sprint(base.Metrics.BytesIngested), fmt.Sprint(push.Metrics.BytesIngested),
			f2(m.Speedup))
	}
	t.write(w)
	fmt.Fprintln(w, "\nExpected shape: pushdown bytes shrink with selectivity; at laptop scale")
	fmt.Fprintln(w, "wall-clock gains are smaller than the testbed's (no 10 Gbps bottleneck).")
	return nil
}

// Fig6 reproduces Fig. 6: speedups at very high data selectivity.
func Fig6(w io.Writer) error {
	fmt.Fprintln(w, "== Fig. 6: query speedup at high data selectivity (testbed model) ==")
	tb := cluster.OSIC()
	t := &table{header: []string{"selectivity", "type", "S_Q 50GB", "S_Q 500GB", "S_Q 3TB"}}
	for _, st := range []cluster.SelectivityType{cluster.Row, cluster.Column, cluster.Mixed} {
		for _, sel := range []float64{0.90, 0.95, 0.99, 0.9999} {
			row := []string{pct(sel), st.String()}
			for _, bytes := range []float64{50 * GB, 500 * GB, 3 * TB} {
				row = append(row, f2(tb.Speedup(cluster.Workload{DatasetBytes: bytes, Selectivity: sel, Type: st})))
			}
			t.add(row...)
		}
	}
	t.write(w)
	fmt.Fprintln(w, "\nExpected shape: up to ~31x (paper) for row selectivity on 3TB; the")
	fmt.Fprintln(w, "500GB→3TB gain is smaller than 50GB→500GB.")
	return nil
}

// Fig7 reproduces Fig. 7: speedups of the real GridPocket queries at the
// 50GB and 500GB scales, using selectivities measured on the real path.
func Fig7(w io.Writer, env *Env) error {
	fmt.Fprintln(w, "== Fig. 7: GridPocket query speedups ==")
	tb := cluster.OSIC()
	t := &table{header: []string{
		"query", "meas. data sel", "real S_Q (laptop)",
		"model S_Q 50GB", "paper 50GB", "model t_base/t_push 500GB",
	}}
	var total50Base, total50Push float64
	for _, q := range GridPocketQueries {
		m, err := env.RunQuery(q.Name, q.SQL)
		if err != nil {
			return err
		}
		w50 := m.SimWorkload(50 * GB)
		w500 := m.SimWorkload(500 * GB)
		b500, p500 := tb.BaselineTime(w500), tb.PushdownTime(w500)
		total50Base += tb.BaselineTime(w50)
		total50Push += tb.PushdownTime(w50)
		t.add(q.Name, pct(m.DataSelectivity), f2(m.Speedup),
			f2(tb.Speedup(w50)), f1(q.PaperSpeedupSmall),
			fmt.Sprintf("%s/%s = %s", secs(b500), secs(p500), f2(b500/p500)))
	}
	t.write(w)
	fmt.Fprintf(w, "\nTotal model time for the 7 queries at 50GB: baseline %s vs pushdown %s\n",
		secs(total50Base), secs(total50Push))
	fmt.Fprintln(w, "(paper §VI-B: 4814.7s vs 155.5s for 500GB per-query imports)")
	return nil
}

// Fig8 reproduces Fig. 8: Scoop vs Parquet under column selectivity, with
// both the testbed model and a real-path comparison against the columnar
// baseline implementation.
func Fig8(w io.Writer, env *Env) error {
	fmt.Fprintln(w, "== Fig. 8: pushdown vs Parquet (column selectivity) ==")
	tb := cluster.OSIC()
	fmt.Fprintln(w, "\n-- testbed model, 50GB --")
	t := &table{header: []string{"col selectivity", "S_Q scoop", "S_Q parquet", "winner"}}
	for _, sel := range []float64{0, 0.2, 0.4, 0.6, 0.8, 0.9} {
		wl := cluster.Workload{DatasetBytes: 50 * GB, Selectivity: sel, Type: cluster.Column}
		s, p := tb.Speedup(wl), tb.ParquetSpeedup(wl)
		winner := "parquet"
		if s >= p {
			winner = "scoop"
		}
		t.add(pct(sel), f2(s), f2(p), winner)
	}
	t.write(w)
	fmt.Fprintln(w, "\nExpected shape: Parquet wins at low selectivity (compression);")
	fmt.Fprintln(w, "Scoop crosses over around 60% and is ≈2.16x faster at 90% (paper).")

	if env != nil {
		fmt.Fprintln(w, "\n-- real-path transfer comparison (laptop scale) --")
		if err := fig8Real(w, env); err != nil {
			return err
		}
	}
	return nil
}

// Fig9 reproduces Fig. 9: compute-cluster and network resource usage with
// and without Scoop for a ShowGraphHCHP-like execution on 3TB.
func Fig9(w io.Writer, env *Env) error {
	fmt.Fprintln(w, "== Fig. 9: compute-cluster resource usage (ShowGraphHCHP, 3TB, model) ==")
	tb := cluster.OSIC()
	wl := cluster.Workload{DatasetBytes: 3 * TB, Selectivity: 0.99, Type: cluster.Mixed}
	base := tb.UsageFor(wl, cluster.Baseline)
	push := tb.UsageFor(wl, cluster.Pushdown)
	t := &table{header: []string{"metric", "plain Spark/Swift", "Scoop", "paper"}}
	t.add("duration", secs(base.Duration), secs(push.Duration), "12-15x shorter")
	t.add("avg compute CPU", f2(base.ComputeCPUPct)+"%", f2(push.ComputeCPUPct)+"%", "3.1% vs 1.2%")
	t.add("compute CPU-seconds", f1(base.ComputeCPUSeconds), f1(push.ComputeCPUSeconds), "-97.8%")
	t.add("peak compute memory", f1(base.ComputeMemPct)+"%", f1(push.ComputeMemPct)+"%", "13.2% lower")
	t.add("LB avg transmit", fmt.Sprintf("%.0f MB/s", base.LBAvgBytesPerSec/1e6),
		fmt.Sprintf("%.0f MB/s", push.LBAvgBytesPerSec/1e6), "~saturated vs 189 MB/s")
	t.add("LB utilization", f1(base.LBUtilizationPct)+"%", f1(push.LBUtilizationPct)+"%", "near 100% vs small")
	t.write(w)

	// The figure itself is a time series; render a coarse one.
	fmt.Fprintln(w, "\n-- modeled time series (baseline) --")
	writeSeries(w, tb.Series(wl, cluster.Baseline, 8))
	fmt.Fprintln(w, "\n-- modeled time series (Scoop) --")
	writeSeries(w, tb.Series(wl, cluster.Pushdown, 8))

	if env != nil {
		fmt.Fprintln(w, "\n-- real-path cluster counters (laptop scale) --")
		if err := fig9Real(w, env); err != nil {
			return err
		}
	}
	return nil
}

// writeSeries renders a resource time series as table rows.
func writeSeries(w io.Writer, samples []cluster.Sample) {
	t := &table{header: []string{"t (s)", "compute CPU", "compute mem", "LB MB/s", "storage CPU"}}
	for _, s := range samples {
		t.add(fmt.Sprintf("%.0f", s.T), f2(s.ComputeCPUPct)+"%", f1(s.ComputeMemPct)+"%",
			fmt.Sprintf("%.0f", s.LBBytesPerSec/1e6), f1(s.StorageCPUPct)+"%")
	}
	t.write(w)
}

// Fig10 reproduces Fig. 10: storage-node CPU utilization with and without
// Scoop.
func Fig10(w io.Writer, env *Env) error {
	fmt.Fprintln(w, "== Fig. 10: storage-node CPU utilization (model) ==")
	tb := cluster.OSIC()
	wl := cluster.Workload{DatasetBytes: 3 * TB, Selectivity: 0.99, Type: cluster.Mixed}
	base := tb.UsageFor(wl, cluster.Baseline)
	push := tb.UsageFor(wl, cluster.Pushdown)
	t := &table{header: []string{"mode", "avg storage CPU", "paper"}}
	t.add("plain Swift", f2(base.StorageCPUPct)+"%", "1.25%")
	t.add("Scoop", f2(push.StorageCPUPct)+"%", "23.5%")
	t.write(w)

	if env != nil && env.Scoop.Cluster() != nil {
		fmt.Fprintln(w, "\n-- real-path: object-node filter time share --")
		c := env.Scoop.Cluster()
		c.ResetStats()
		q := GridPocketQueries[5] // ShowGraphHCHP
		if _, err := env.Scoop.Query(q.SQL, core.QueryOptions{Mode: core.ModePushdown}); err != nil {
			return err
		}
		ns := c.NodeStatsTotal()
		fmt.Fprintf(w, "object nodes: %d requests (%d filtered), read %d B, sent %d B, filter wall %v\n",
			ns.Requests, ns.FilteredRequests, ns.BytesRead, ns.BytesSent, ns.FilterTime)
		c.ResetStats()
		if _, err := env.Scoop.Query(q.SQL, core.QueryOptions{Mode: core.ModeBaseline}); err != nil {
			return err
		}
		ns = c.NodeStatsTotal()
		fmt.Fprintf(w, "baseline:     %d requests (%d filtered), read %d B, sent %d B, filter wall %v\n",
			ns.Requests, ns.FilteredRequests, ns.BytesRead, ns.BytesSent, ns.FilterTime)
	}
	return nil
}

// fig9Real runs ShowGraphHCHP on the real path in both modes and prints the
// store-side traffic counters — the laptop-scale analog of Fig. 9(c).
func fig9Real(w io.Writer, env *Env) error {
	c := env.Scoop.Cluster()
	if c == nil {
		fmt.Fprintln(w, "(external store: counters unavailable)")
		return nil
	}
	q := GridPocketQueries[5] // ShowGraphHCHP
	t := &table{header: []string{"mode", "LB bytes", "proxy<-nodes", "proxy->client", "duration"}}
	for _, mode := range []core.Mode{core.ModeBaseline, core.ModePushdown} {
		c.ResetStats()
		res, err := env.Scoop.Query(q.SQL, core.QueryOptions{Mode: mode})
		if err != nil {
			return err
		}
		ps := c.ProxyStatsTotal()
		t.add(mode.String(), fmt.Sprint(c.LBBytes()), fmt.Sprint(ps.BytesFromNodes),
			fmt.Sprint(ps.BytesToClient), res.Metrics.WallTime.String())
	}
	t.write(w)
	fmt.Fprintln(w, "\nExpected shape: Scoop moves a small fraction of the bytes across the LB.")
	return nil
}
