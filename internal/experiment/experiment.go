// Package experiment regenerates every table and figure of the paper's
// evaluation (§VI). Each experiment combines two sources:
//
//   - the *real path*: the full Scoop implementation in this repository,
//     exercised end-to-end on a laptop-scale dataset, measuring actual
//     ingested bytes, wall times and node/proxy counters; and
//   - the *testbed model* (internal/cluster): the analytical simulation of
//     the paper's 63-machine OSIC cluster, which projects the measured
//     selectivities to the paper's 50GB–3TB scales.
//
// Every experiment prints the paper's reported values next to the
// reproduction's, so EXPERIMENTS.md can record paper-vs-measured rows.
package experiment

import (
	"context"
	"fmt"
	"io"
	"time"

	"scoop/internal/cluster"
	"scoop/internal/core"
	"scoop/internal/datasource"
	"scoop/internal/meter"
)

// GB and TB in bytes, for workload definitions.
const (
	GB = 1e9
	TB = 1e12
)

// Env is a ready-to-query Scoop instance with a generated dataset.
type Env struct {
	Scoop *core.Scoop
	// DatasetBytes is the uploaded dataset's size.
	DatasetBytes int64
	// Meters and Rows describe the generated data.
	Meters int
	Rows   int64
	Gen    meter.Config
}

// Scale selects how much data the real path runs on.
type Scale struct {
	Meters  int
	Days    int
	Objects int
	// Start of the reading span. Spanning several months around Jan 2015
	// makes the Table I date predicates selective, as they are on
	// GridPocket's multi-year archive.
	Start time.Time
	// Interval between readings. The paper's data is 10-minutely; tests use
	// coarser intervals to stay fast.
	Interval time.Duration
	// ChunkSize drives partition discovery (small values force parallelism).
	ChunkSize int64
	Workers   int
}

// SmallScale is quick enough for unit tests and benchmarks (~2.5 MB,
// Dec 2014 – Feb 2015 so January is about a third of the rows).
func SmallScale() Scale {
	return Scale{
		Meters: 50, Days: 90, Objects: 4,
		Start:    time.Date(2014, 12, 1, 0, 0, 0, 0, time.UTC),
		Interval: 4 * time.Hour, ChunkSize: 128 << 10, Workers: 4,
	}
}

// MediumScale is the default for scoop-bench runs (~25 MB).
func MediumScale() Scale {
	return Scale{
		Meters: 120, Days: 90, Objects: 8,
		Start:    time.Date(2014, 12, 1, 0, 0, 0, 0, time.UTC),
		Interval: time.Hour, ChunkSize: 512 << 10, Workers: 4,
	}
}

// NewEnv builds a Scoop instance, generates and uploads the dataset, and
// registers the largeMeter table the Table I queries reference.
func NewEnv(sc Scale) (*Env, error) {
	s, err := core.New(core.Config{ChunkSize: sc.ChunkSize})
	if err != nil {
		return nil, err
	}
	gen := meter.DefaultConfig()
	gen.Meters = sc.Meters
	gen.Days = sc.Days
	gen.Interval = sc.Interval
	if !sc.Start.IsZero() {
		gen.Start = sc.Start
	}
	// Experiments are offline batch runs with no caller deadline.
	size, err := s.UploadMeterDataset(context.Background(), "meters", gen, sc.Objects)
	if err != nil {
		return nil, err
	}
	if err := s.RegisterTable("largeMeter", "meters", "", meter.SchemaDecl, datasource.CSVOptions{}); err != nil {
		return nil, err
	}
	return &Env{Scoop: s, DatasetBytes: size, Meters: sc.Meters, Rows: gen.Rows(), Gen: gen}, nil
}

// MeasuredQuery is the outcome of running one query in both modes on the
// real path.
type MeasuredQuery struct {
	Name            string
	SQL             string
	DataSelectivity float64 // measured: bytes discarded before compute
	RowSelectivity  float64 // measured: rows discarded by selection
	ColSelectivity  float64 // measured: byte share of discarded columns
	BaselineTime    time.Duration
	PushdownTime    time.Duration
	Speedup         float64
	Rows            int
}

// RunQuery executes sql in both modes and measures selectivities.
func (e *Env) RunQuery(name, sql string) (MeasuredQuery, error) {
	m := MeasuredQuery{Name: name, SQL: sql}
	push, err := e.Scoop.Query(sql, core.QueryOptions{Mode: core.ModePushdown})
	if err != nil {
		return m, fmt.Errorf("%s (pushdown): %w", name, err)
	}
	base, err := e.Scoop.Query(sql, core.QueryOptions{Mode: core.ModeBaseline})
	if err != nil {
		return m, fmt.Errorf("%s (baseline): %w", name, err)
	}
	if len(push.Rows) != len(base.Rows) {
		return m, fmt.Errorf("%s: mode disagreement: %d vs %d rows", name, len(push.Rows), len(base.Rows))
	}
	m.Rows = len(push.Rows)
	m.DataSelectivity = push.Metrics.Selectivity(e.DatasetBytes)
	m.RowSelectivity = rowSelectivity(e, push)
	m.ColSelectivity = columnSelectivity(push)
	m.BaselineTime = base.Metrics.WallTime
	m.PushdownTime = push.Metrics.WallTime
	if push.Metrics.WallTime > 0 {
		m.Speedup = float64(base.Metrics.WallTime) / float64(push.Metrics.WallTime)
	}
	return m, nil
}

// rowSelectivity is the fraction of rows discarded by the pushed selection.
func rowSelectivity(e *Env, res *core.Result) float64 {
	if e.Rows == 0 {
		return 0
	}
	return 1 - float64(res.Metrics.RowsScanned)/float64(e.Rows)
}

// columnSelectivity estimates the byte share of discarded columns from the
// generator's average field widths.
func columnSelectivity(res *core.Result) float64 {
	widths := map[string]float64{
		"vid": 8, "date": 20, "index": 10, "sumHC": 10, "sumHP": 10,
		"type": 5, "city": 9, "state": 4, "lat": 8, "long": 8,
	}
	var total, kept float64
	for _, w := range widths {
		total += w
	}
	for _, c := range res.Plan.Required {
		kept += widths[c]
	}
	if total == 0 {
		return 0
	}
	return 1 - kept/total
}

// SimWorkload converts a measured query into a testbed-model workload at a
// target dataset size.
func (m MeasuredQuery) SimWorkload(datasetBytes float64) cluster.Workload {
	st := cluster.Mixed
	switch {
	case m.RowSelectivity > 0.5 && m.ColSelectivity < 0.3:
		st = cluster.Row
	case m.ColSelectivity > 0.5 && m.RowSelectivity < 0.3:
		st = cluster.Column
	}
	return cluster.Workload{DatasetBytes: datasetBytes, Selectivity: m.DataSelectivity, Type: st}
}

// --- text rendering helpers shared by the experiments ---

// table prints aligned columns: header row then data rows.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	printRow(t.header)
	for i, width := range widths {
		if i > 0 {
			fmt.Fprint(w, "  ")
		}
		for j := 0; j < width; j++ {
			fmt.Fprint(w, "-")
		}
	}
	fmt.Fprintln(w)
	for _, r := range t.rows {
		printRow(r)
	}
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }
func secs(v float64) string {
	return fmt.Sprintf("%.1fs", v)
}
