package plan

import (
	"strings"
	"testing"

	"scoop/internal/pushdown"
	"scoop/internal/sql/expr"
	"scoop/internal/sql/parser"
	"scoop/internal/sql/types"
)

// meterSchema mirrors the 10-column GridPocket dataset.
var meterSchema = types.NewSchema(
	types.Column{Name: "vid", Type: types.String},
	types.Column{Name: "date", Type: types.String},
	types.Column{Name: "index", Type: types.Float},
	types.Column{Name: "sumHC", Type: types.Float},
	types.Column{Name: "sumHP", Type: types.Float},
	types.Column{Name: "type", Type: types.String},
	types.Column{Name: "city", Type: types.String},
	types.Column{Name: "state", Type: types.String},
	types.Column{Name: "lat", Type: types.Float},
	types.Column{Name: "long", Type: types.Float},
)

func analyze(t *testing.T, q string, opts Options) *Plan {
	t.Helper()
	sel, err := parser.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Analyze(sel, meterSchema, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProjectionPruning(t *testing.T) {
	p := analyze(t, "SELECT vid FROM m WHERE date LIKE '2015-01%'", Options{})
	if got := strings.Join(p.Required, ","); got != "vid,date" {
		t.Errorf("Required = %q, want vid,date", got)
	}
	if p.Read.Len() != 2 {
		t.Errorf("Read schema = %v", p.Read)
	}
}

func TestProjectionDisable(t *testing.T) {
	p := analyze(t, "SELECT vid FROM m", Options{DisableProjectionPushdown: true})
	if len(p.Required) != 10 {
		t.Errorf("Required = %v, want all 10", p.Required)
	}
}

func TestCountStarProjectsOneColumn(t *testing.T) {
	p := analyze(t, "SELECT count(*) FROM m", Options{})
	if len(p.Required) != 1 {
		t.Errorf("Required = %v, want a single column", p.Required)
	}
	// But disabling projection pushdown reads everything.
	p = analyze(t, "SELECT count(*) FROM m", Options{DisableProjectionPushdown: true})
	if len(p.Required) != 10 {
		t.Errorf("Required = %v", p.Required)
	}
}

func TestSelectStar(t *testing.T) {
	p := analyze(t, "SELECT * FROM m", Options{})
	if len(p.Items) != 10 || p.Output.Len() != 10 {
		t.Errorf("star expansion: items=%d output=%d", len(p.Items), p.Output.Len())
	}
	if p.Output.Columns[0].Name != "vid" {
		t.Errorf("first output col = %v", p.Output.Columns[0])
	}
}

func TestPredicateExtraction(t *testing.T) {
	p := analyze(t, "SELECT vid FROM m WHERE city LIKE 'Rotterdam' AND date LIKE '2015-01-%' AND index > 100", Options{})
	if len(p.Pushed) != 3 {
		t.Fatalf("Pushed = %v", p.Pushed)
	}
	if p.Residual != nil {
		t.Errorf("Residual = %v, want nil", p.Residual)
	}
	byCol := map[string]pushdown.Predicate{}
	for _, pr := range p.Pushed {
		byCol[pr.Column] = pr
	}
	if byCol["city"].Op != pushdown.OpLike || byCol["city"].Value != "Rotterdam" {
		t.Errorf("city pred = %+v", byCol["city"])
	}
	if byCol["index"].Op != pushdown.OpGt || !byCol["index"].Numeric {
		t.Errorf("index pred = %+v", byCol["index"])
	}
}

func TestLiteralOnLeftNormalization(t *testing.T) {
	p := analyze(t, "SELECT vid FROM m WHERE 100 < index", Options{})
	if len(p.Pushed) != 1 || p.Pushed[0].Op != pushdown.OpGt || p.Pushed[0].Column != "index" {
		t.Fatalf("Pushed = %+v", p.Pushed)
	}
}

func TestNonPushableResidual(t *testing.T) {
	// OR across columns is not a simple conjunct; stays residual.
	p := analyze(t, "SELECT vid FROM m WHERE city = 'X' OR state = 'Y'", Options{})
	if len(p.Pushed) != 0 || p.Residual == nil {
		t.Fatalf("pushed=%v residual=%v", p.Pushed, p.Residual)
	}
	// Mixed: one pushable conjunct, one residual.
	p = analyze(t, "SELECT vid FROM m WHERE date LIKE '2015%' AND (city = 'X' OR state = 'Y')", Options{})
	if len(p.Pushed) != 1 || p.Residual == nil {
		t.Fatalf("pushed=%v residual=%v", p.Pushed, p.Residual)
	}
	// Column-to-column comparison is not pushable.
	p = analyze(t, "SELECT vid FROM m WHERE sumHC > sumHP", Options{})
	if len(p.Pushed) != 0 || p.Residual == nil {
		t.Fatalf("col-col: pushed=%v residual=%v", p.Pushed, p.Residual)
	}
	// Function of a column is not pushable.
	p = analyze(t, "SELECT vid FROM m WHERE SUBSTRING(date, 0, 4) = '2015'", Options{})
	if len(p.Pushed) != 0 || p.Residual == nil {
		t.Fatalf("func: pushed=%v residual=%v", p.Pushed, p.Residual)
	}
	// NOT IN stays residual; IS NULL and IN push.
	p = analyze(t, "SELECT vid FROM m WHERE state IN ('FRA','NED') AND city IS NOT NULL AND vid NOT IN ('x')", Options{})
	if len(p.Pushed) != 2 || p.Residual == nil {
		t.Fatalf("in/null: pushed=%v residual=%v", p.Pushed, p.Residual)
	}
}

func TestDisablePredicatePushdown(t *testing.T) {
	p := analyze(t, "SELECT vid FROM m WHERE date LIKE '2015%'", Options{DisablePredicatePushdown: true})
	if len(p.Pushed) != 0 || p.Residual == nil {
		t.Fatalf("pushed=%v residual=%v", p.Pushed, p.Residual)
	}
}

func TestAggregateDetection(t *testing.T) {
	p := analyze(t, "SELECT sum(index) FROM m", Options{})
	if !p.Aggregate {
		t.Error("global aggregate not detected")
	}
	p = analyze(t, "SELECT city FROM m GROUP BY city", Options{})
	if !p.Aggregate {
		t.Error("GROUP BY aggregate not detected")
	}
	p = analyze(t, "SELECT vid FROM m", Options{})
	if p.Aggregate {
		t.Error("plain scan misdetected as aggregate")
	}
	p = analyze(t, "SELECT city FROM m GROUP BY city HAVING count(*) > 1", Options{})
	if !p.Aggregate {
		t.Error("HAVING aggregate not detected")
	}
}

func TestOutputSchemaTypes(t *testing.T) {
	p := analyze(t, "SELECT vid, sum(index) as total, count(*) as n, min(date) as d, first_value(lat) as lat, LENGTH(city) as l, index + 1 as x, NOT (index > 1) as b FROM m GROUP BY vid", Options{})
	want := map[string]types.Type{
		"vid": types.String, "total": types.Float, "n": types.Int,
		"d": types.String, "lat": types.Float, "l": types.Int,
		"x": types.Float, "b": types.Bool,
	}
	for name, ty := range want {
		i := p.Output.Index(name)
		if i < 0 {
			t.Errorf("missing output col %q", name)
			continue
		}
		if p.Output.Columns[i].Type != ty {
			t.Errorf("col %q type = %v, want %v", name, p.Output.Columns[i].Type, ty)
		}
	}
}

func TestUnknownColumnError(t *testing.T) {
	sel, _ := parser.Parse("SELECT nope FROM m")
	if _, err := Analyze(sel, meterSchema, Options{}); err == nil {
		t.Error("unknown select column should fail")
	}
	sel, _ = parser.Parse("SELECT vid FROM m WHERE nope = 1")
	if _, err := Analyze(sel, meterSchema, Options{}); err == nil {
		t.Error("unknown where column should fail")
	}
	sel, _ = parser.Parse("SELECT vid FROM m ORDER BY nope")
	if _, err := Analyze(sel, meterSchema, Options{}); err == nil {
		t.Error("unknown order column should fail")
	}
}

func TestHavingWithoutAggregationRejected(t *testing.T) {
	sel, err := parser.Parse("SELECT vid FROM m HAVING vid = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(sel, meterSchema, Options{}); err == nil {
		t.Error("HAVING without aggregation accepted")
	}
	// With GROUP BY it is fine.
	sel, _ = parser.Parse("SELECT vid FROM m GROUP BY vid HAVING vid <> 'x'")
	if _, err := Analyze(sel, meterSchema, Options{}); err != nil {
		t.Errorf("grouped HAVING rejected: %v", err)
	}
}

func TestFold(t *testing.T) {
	e := &expr.Binary{Op: expr.OpAdd,
		Left:  &expr.Literal{Val: types.IntV(2)},
		Right: &expr.Literal{Val: types.IntV(3)},
	}
	f := Fold(e)
	lit, ok := f.(*expr.Literal)
	if !ok || lit.Val.I != 5 {
		t.Errorf("Fold(2+3) = %v", f)
	}
	// Column-containing subtree untouched.
	e2 := &expr.Binary{Op: expr.OpAdd,
		Left:  &expr.Column{Name: "index", Index: -1},
		Right: &expr.Binary{Op: expr.OpMul, Left: &expr.Literal{Val: types.IntV(2)}, Right: &expr.Literal{Val: types.IntV(3)}},
	}
	f2 := Fold(e2).(*expr.Binary)
	if _, ok := f2.Left.(*expr.Column); !ok {
		t.Errorf("column side changed: %v", f2.Left)
	}
	if lit, ok := f2.Right.(*expr.Literal); !ok || lit.Val.I != 6 {
		t.Errorf("literal side not folded: %v", f2.Right)
	}
	// COUNT(*) must not fold.
	e3 := &expr.Call{Name: "COUNT", Args: []expr.Expr{expr.Star{}}}
	if _, ok := Fold(e3).(*expr.Literal); ok {
		t.Error("COUNT(*) folded")
	}
}

func TestGridPocketPlans(t *testing.T) {
	// ShowGraphHCHP pushes state LIKE 'FRA' and date LIKE '2015-01-%', reads
	// only the 4 referenced columns.
	q := `SELECT SUBSTRING(date, 0, 10) as sDate, vid, min(sumHC) as minHC, max(sumHC) as maxHC,
		min(sumHP) as minHP, max(sumHP) as maxHP FROM largeMeter
		WHERE state LIKE 'FRA' AND date LIKE '2015-01-%'
		GROUP BY SUBSTRING(date, 0, 10), vid ORDER BY SUBSTRING(date, 0, 10), vid`
	p := analyze(t, q, Options{})
	if len(p.Pushed) != 2 || p.Residual != nil {
		t.Fatalf("pushed=%v residual=%v", p.Pushed, p.Residual)
	}
	if got := strings.Join(p.Required, ","); got != "vid,date,sumHC,sumHP,state" {
		t.Errorf("Required = %q", got)
	}
	if !p.Aggregate || len(p.GroupBy) != 2 || len(p.OrderBy) != 2 {
		t.Errorf("plan shape: agg=%v groups=%d orders=%d", p.Aggregate, len(p.GroupBy), len(p.OrderBy))
	}
	desc := p.Describe()
	for _, frag := range []string{"Scan(largeMeter)", "pushed:", "Aggregate", "Sort", "Output:"} {
		if !strings.Contains(desc, frag) {
			t.Errorf("Describe missing %q:\n%s", frag, desc)
		}
	}
}

func TestDescribeVariants(t *testing.T) {
	p := analyze(t, "SELECT vid FROM m WHERE sumHC > sumHP GROUP BY vid HAVING count(*) > 1 ORDER BY vid DESC LIMIT 5", Options{})
	desc := p.Describe()
	for _, frag := range []string{"Filter(residual)", "Having", "DESC", "Limit 5"} {
		if !strings.Contains(desc, frag) {
			t.Errorf("Describe missing %q:\n%s", frag, desc)
		}
	}
}

func TestAnalyzeDoesNotMutateParse(t *testing.T) {
	sel, err := parser.Parse("SELECT vid FROM m WHERE index > 1")
	if err != nil {
		t.Fatal(err)
	}
	before := sel.Where.String()
	if _, err := Analyze(sel, meterSchema, Options{}); err != nil {
		t.Fatal(err)
	}
	// Analyzing against a narrower schema afterwards still works because the
	// parsed AST was deep-copied, not bound in place.
	if sel.Where.String() != before {
		t.Error("Analyze mutated the parsed WHERE")
	}
	if _, err := Analyze(sel, meterSchema, Options{}); err != nil {
		t.Errorf("second Analyze failed: %v", err)
	}
}

func TestInPredicateNumeric(t *testing.T) {
	p := analyze(t, "SELECT vid FROM m WHERE index IN (1, 2, 3)", Options{})
	if len(p.Pushed) != 1 || p.Pushed[0].Op != pushdown.OpIn || !p.Pushed[0].Numeric {
		t.Fatalf("Pushed = %+v", p.Pushed)
	}
	if len(p.Pushed[0].Values) != 3 {
		t.Errorf("Values = %v", p.Pushed[0].Values)
	}
	// IN with a NULL member is not pushable (NULL semantics differ).
	p = analyze(t, "SELECT vid FROM m WHERE vid IN ('a', NULL)", Options{})
	if len(p.Pushed) != 0 || p.Residual == nil {
		t.Fatalf("NULL member: pushed=%v", p.Pushed)
	}
}

func TestFoldedWhereLiteral(t *testing.T) {
	// WHERE 1 = 1 folds to TRUE, which is not a pushable column predicate;
	// it lands in the residual as a literal.
	p := analyze(t, "SELECT vid FROM m WHERE 1 = 1", Options{})
	if len(p.Pushed) != 0 {
		t.Fatalf("Pushed = %v", p.Pushed)
	}
	if p.Residual == nil {
		t.Fatal("Residual = nil")
	}
	if lit, ok := p.Residual.(*expr.Literal); !ok || !lit.Val.B {
		t.Errorf("Residual = %v", p.Residual)
	}
}
