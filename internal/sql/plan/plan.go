// Package plan is the Catalyst stand-in: it analyzes a parsed SELECT against
// a table schema and splits the query into
//
//   - a *pushdown* part — the projection (required columns) and the simple
//     selection predicates a pushdown filter can execute at the object store
//     (paper §III-A: "Catalyst calculates the implied projection and
//     selection filters"), and
//   - a *residual* part — everything the compute cluster must still run:
//     non-pushable predicates, aggregation, HAVING, ORDER BY, LIMIT.
//
// The split mirrors Spark's PrunedFilteredScan contract: pushable predicates
// are conjuncts of the form <column> <cmp> <literal> (plus LIKE, IS NULL and
// IN over literals); the data source is trusted to apply them exactly, so
// they are removed from the residual filter.
package plan

import (
	"fmt"
	"strings"

	"scoop/internal/pushdown"
	"scoop/internal/sql/expr"
	"scoop/internal/sql/parser"
	"scoop/internal/sql/types"
)

// Plan is the analyzed, bound form of a SELECT over a single table.
type Plan struct {
	Sel *parser.Select

	// Table schema and the pruned schema the scan will deliver.
	Input    *types.Schema
	Required []string      // column names the query touches, in Input order
	Read     *types.Schema // Input projected to Required

	// Pushable selection (exact) and the residual predicate, bound to Read.
	Pushed   []pushdown.Predicate
	Residual expr.Expr // nil when everything was pushed

	// Select items, group/order/having expressions bound to Read.
	Items   []parser.SelectItem
	GroupBy []expr.Expr
	Having  expr.Expr
	OrderBy []parser.OrderItem

	// Aggregate reports whether the query needs an aggregation operator.
	Aggregate bool

	// Output is the schema of the result rows.
	Output *types.Schema
}

// Options tunes the analysis.
type Options struct {
	// DisablePredicatePushdown keeps all predicates in the residual plan
	// (the "ingest-then-compute" baseline: the scan returns every row).
	DisablePredicatePushdown bool
	// DisableProjectionPushdown makes the scan return all columns.
	DisableProjectionPushdown bool
}

// Analyze builds a Plan for sel over the given table schema.
func Analyze(sel *parser.Select, schema *types.Schema, opts Options) (*Plan, error) {
	p := &Plan{Sel: sel, Input: schema}

	// SELECT * expands to all columns before anything else.
	items := make([]parser.SelectItem, 0, len(sel.Items))
	for _, it := range sel.Items {
		if it.Star {
			for _, c := range schema.Columns {
				items = append(items, parser.SelectItem{Expr: &expr.Column{Name: c.Name, Index: -1}})
			}
			continue
		}
		items = append(items, parser.SelectItem{Expr: expr.Transform(it.Expr, nopReplace), Alias: it.Alias})
	}
	p.Items = items

	// ORDER BY may reference a select-list alias (ORDER BY n for
	// count(*) AS n). Resolve such names to the aliased expression before
	// anything else; names that are real table columns keep their base
	// meaning.
	orderBy := make([]parser.OrderItem, len(sel.OrderBy))
	for i, o := range sel.OrderBy {
		e := expr.Transform(o.Expr, nopReplace)
		if c, ok := e.(*expr.Column); ok && schema.Index(c.Name) < 0 {
			for _, it := range items {
				if strings.EqualFold(it.Name(), c.Name) {
					e = expr.Transform(it.Expr, nopReplace)
					break
				}
			}
		}
		orderBy[i] = parser.OrderItem{Expr: e, Desc: o.Desc}
	}

	// Collect every referenced column to compute the projection.
	required := newColSet(schema)
	for _, it := range p.Items {
		if err := required.addExpr(it.Expr); err != nil {
			return nil, err
		}
	}
	if sel.Where != nil {
		if err := required.addExpr(sel.Where); err != nil {
			return nil, err
		}
	}
	for _, g := range sel.GroupBy {
		if err := required.addExpr(g); err != nil {
			return nil, err
		}
	}
	if sel.Having != nil {
		if err := required.addExpr(sel.Having); err != nil {
			return nil, err
		}
	}
	for _, o := range orderBy {
		if err := required.addExpr(o.Expr); err != nil {
			return nil, err
		}
	}
	switch {
	case opts.DisableProjectionPushdown:
		p.Required = schema.Names()
	case len(required.names()) == 0:
		// No column is referenced anywhere (e.g. SELECT COUNT(*)): one
		// arbitrary column is enough to count rows; scan the first.
		p.Required = schema.Names()[:1]
	default:
		p.Required = required.names()
	}
	read, err := schema.Project(p.Required)
	if err != nil {
		return nil, err
	}
	p.Read = read

	// Split WHERE into pushable predicates and the residual.
	if sel.Where != nil {
		where := Fold(expr.Transform(sel.Where, nopReplace))
		if opts.DisablePredicatePushdown {
			p.Residual = where
		} else {
			pushed, residual := SplitConjuncts(where, schema)
			p.Pushed = pushed
			p.Residual = residual
		}
	}

	// Bind everything the executor evaluates to the Read schema.
	if p.Residual != nil {
		if err := expr.Bind(p.Residual, p.Read); err != nil {
			return nil, err
		}
	}
	for _, it := range p.Items {
		if err := bindSkipStar(it.Expr, p.Read); err != nil {
			return nil, err
		}
	}
	p.GroupBy = make([]expr.Expr, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		p.GroupBy[i] = expr.Transform(g, nopReplace)
		if err := expr.Bind(p.GroupBy[i], p.Read); err != nil {
			return nil, err
		}
	}
	if sel.Having != nil {
		p.Having = expr.Transform(sel.Having, nopReplace)
		if err := bindSkipStar(p.Having, p.Read); err != nil {
			return nil, err
		}
	}
	p.OrderBy = orderBy
	for i := range p.OrderBy {
		if err := bindSkipStar(p.OrderBy[i].Expr, p.Read); err != nil {
			return nil, err
		}
	}

	// Aggregation is needed when GROUP BY is present or any item/clause
	// contains an aggregate call.
	p.Aggregate = len(p.GroupBy) > 0
	for _, it := range p.Items {
		if expr.HasAggregate(it.Expr) {
			p.Aggregate = true
		}
	}
	if p.Having != nil && expr.HasAggregate(p.Having) {
		p.Aggregate = true
	}
	// HAVING belongs to aggregation; without grouping it has no defined
	// semantics here (use WHERE), so reject it rather than ignore it.
	if p.Having != nil && !p.Aggregate {
		return nil, fmt.Errorf("plan: HAVING requires GROUP BY or aggregates")
	}

	// Output schema: one column per select item. Types are inferred loosely
	// (aggregates of numerics are DOUBLE except COUNT; column refs keep their
	// type; everything else is STRING unless numeric literal arithmetic).
	cols := make([]types.Column, len(p.Items))
	for i, it := range p.Items {
		cols[i] = types.Column{Name: it.Name(), Type: inferType(it.Expr, p.Read)}
	}
	p.Output = types.NewSchema(cols...)
	return p, nil
}

// nopReplace makes Transform a deep-copy.
func nopReplace(expr.Expr) (expr.Expr, bool) { return nil, false }

// bindSkipStar binds column refs, tolerating the Star node inside COUNT(*).
func bindSkipStar(e expr.Expr, schema *types.Schema) error {
	return expr.Walk(e, func(n expr.Expr) error {
		if c, ok := n.(*expr.Column); ok {
			i := schema.Index(c.Name)
			if i < 0 {
				return fmt.Errorf("plan: unknown column %q", c.Name)
			}
			c.Index = i
		}
		return nil
	})
}

type colSet struct {
	schema *types.Schema
	seen   map[int]bool
}

func newColSet(schema *types.Schema) *colSet {
	return &colSet{schema: schema, seen: make(map[int]bool)}
}

func (cs *colSet) addExpr(e expr.Expr) error {
	for _, name := range expr.Columns(e) {
		i := cs.schema.Index(name)
		if i < 0 {
			return fmt.Errorf("plan: unknown column %q", name)
		}
		cs.seen[i] = true
	}
	return nil
}

// names returns the referenced column names in Input schema order, so the
// pruned read schema has a deterministic layout.
func (cs *colSet) names() []string {
	var out []string
	for i, c := range cs.schema.Columns {
		if cs.seen[i] {
			out = append(out, c.Name)
		}
	}
	return out
}

// SplitConjuncts decomposes a predicate into pushable simple predicates and
// a residual expression. The input must not be shared: returned residual
// aliases subtrees of e.
func SplitConjuncts(e expr.Expr, schema *types.Schema) ([]pushdown.Predicate, expr.Expr) {
	conjuncts := flattenAnd(e)
	var pushed []pushdown.Predicate
	var residual []expr.Expr
	for _, c := range conjuncts {
		if p, ok := toPredicate(c, schema); ok {
			pushed = append(pushed, p)
		} else {
			residual = append(residual, c)
		}
	}
	return pushed, joinAnd(residual)
}

func flattenAnd(e expr.Expr) []expr.Expr {
	if b, ok := e.(*expr.Binary); ok && b.Op == expr.OpAnd {
		return append(flattenAnd(b.Left), flattenAnd(b.Right)...)
	}
	return []expr.Expr{e}
}

func joinAnd(es []expr.Expr) expr.Expr {
	switch len(es) {
	case 0:
		return nil
	case 1:
		return es[0]
	default:
		out := es[0]
		for _, e := range es[1:] {
			out = &expr.Binary{Op: expr.OpAnd, Left: out, Right: e}
		}
		return out
	}
}

var cmpToPush = map[expr.BinOp]pushdown.Op{
	expr.OpEq: pushdown.OpEq, expr.OpNe: pushdown.OpNe,
	expr.OpLt: pushdown.OpLt, expr.OpLe: pushdown.OpLe,
	expr.OpGt: pushdown.OpGt, expr.OpGe: pushdown.OpGe,
	expr.OpLike: pushdown.OpLike,
}

// mirror flips a comparison for literal-on-the-left normalization.
var mirrorOp = map[expr.BinOp]expr.BinOp{
	expr.OpEq: expr.OpEq, expr.OpNe: expr.OpNe,
	expr.OpLt: expr.OpGt, expr.OpLe: expr.OpGe,
	expr.OpGt: expr.OpLt, expr.OpGe: expr.OpLe,
}

// toPredicate recognizes pushable conjuncts:
//
//	col CMP literal | literal CMP col | col LIKE 'pat'
//	col IS [NOT] NULL | col IN (literals...)
func toPredicate(e expr.Expr, schema *types.Schema) (pushdown.Predicate, bool) {
	switch n := e.(type) {
	case *expr.Binary:
		op, ok := cmpToPush[n.Op]
		if !ok {
			return pushdown.Predicate{}, false
		}
		if col, lit, ok := colAndLiteral(n.Left, n.Right); ok {
			return makePred(col, op, lit, schema)
		}
		if n.Op != expr.OpLike { // LIKE requires the column on the left
			if col, lit, ok := colAndLiteral(n.Right, n.Left); ok {
				return makePred(col, cmpToPush[mirrorOp[n.Op]], lit, schema)
			}
		}
		return pushdown.Predicate{}, false
	case *expr.IsNull:
		col, ok := n.X.(*expr.Column)
		if !ok {
			return pushdown.Predicate{}, false
		}
		op := pushdown.OpIsNull
		if n.Negate {
			op = pushdown.OpNotNull
		}
		return pushdown.Predicate{Column: col.Name, Op: op}, true
	case *expr.In:
		if n.Negate {
			return pushdown.Predicate{}, false
		}
		col, ok := n.X.(*expr.Column)
		if !ok {
			return pushdown.Predicate{}, false
		}
		vals := make([]string, 0, len(n.List))
		numeric := isNumericCol(col.Name, schema)
		for _, item := range n.List {
			lit, ok := item.(*expr.Literal)
			if !ok || lit.Val.IsNull() {
				return pushdown.Predicate{}, false
			}
			vals = append(vals, lit.Val.AsString())
		}
		return pushdown.Predicate{Column: col.Name, Op: pushdown.OpIn, Values: vals, Numeric: numeric}, true
	default:
		return pushdown.Predicate{}, false
	}
}

func colAndLiteral(a, b expr.Expr) (*expr.Column, *expr.Literal, bool) {
	col, ok1 := a.(*expr.Column)
	lit, ok2 := b.(*expr.Literal)
	if ok1 && ok2 && !lit.Val.IsNull() {
		return col, lit, true
	}
	return nil, nil, false
}

func makePred(col *expr.Column, op pushdown.Op, lit *expr.Literal, schema *types.Schema) (pushdown.Predicate, bool) {
	numeric := false
	if op != pushdown.OpLike {
		numeric = isNumericCol(col.Name, schema) || lit.Val.T == types.Int || lit.Val.T == types.Float
	} else if lit.Val.T != types.String {
		// LIKE over a non-string literal is odd; leave it to the residual.
		return pushdown.Predicate{}, false
	}
	return pushdown.Predicate{Column: col.Name, Op: op, Value: lit.Val.AsString(), Numeric: numeric}, true
}

func isNumericCol(name string, schema *types.Schema) bool {
	i := schema.Index(name)
	if i < 0 {
		return false
	}
	t := schema.Columns[i].Type
	return t == types.Int || t == types.Float
}

// Fold performs constant folding: any subtree whose leaves are all literals
// is evaluated at plan time. Errors (e.g. unknown function) leave the subtree
// unchanged; they will surface at execution.
func Fold(e expr.Expr) expr.Expr {
	return expr.Transform(e, func(n expr.Expr) (expr.Expr, bool) {
		if _, isLit := n.(*expr.Literal); isLit {
			return nil, false
		}
		if !allLiterals(n) {
			return nil, false
		}
		if c, ok := n.(*expr.Call); ok && expr.IsAggregate(c.Name) {
			return nil, false
		}
		v, err := n.Eval(nil)
		if err != nil {
			return nil, false
		}
		return &expr.Literal{Val: v}, true
	})
}

func allLiterals(e expr.Expr) bool {
	ok := true
	_ = expr.Walk(e, func(n expr.Expr) error {
		switch n.(type) {
		case *expr.Column, expr.Star:
			ok = false
		}
		return nil
	})
	return ok
}

// Describe renders a human-readable plan summary (used by scoop-sql -explain).
func (p *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scan(%s) cols=[%s]\n", p.Sel.Table, strings.Join(p.Required, ","))
	for _, pr := range p.Pushed {
		fmt.Fprintf(&b, "  pushed: %s\n", pr)
	}
	if p.Residual != nil {
		fmt.Fprintf(&b, "Filter(residual): %s\n", p.Residual)
	}
	if p.Aggregate {
		keys := make([]string, len(p.GroupBy))
		for i, g := range p.GroupBy {
			keys[i] = g.String()
		}
		fmt.Fprintf(&b, "Aggregate keys=[%s]\n", strings.Join(keys, ","))
	}
	if p.Having != nil {
		fmt.Fprintf(&b, "Having: %s\n", p.Having)
	}
	if len(p.OrderBy) > 0 {
		keys := make([]string, len(p.OrderBy))
		for i, o := range p.OrderBy {
			keys[i] = o.Expr.String()
			if o.Desc {
				keys[i] += " DESC"
			}
		}
		fmt.Fprintf(&b, "Sort keys=[%s]\n", strings.Join(keys, ","))
	}
	if p.Sel.Limit >= 0 {
		fmt.Fprintf(&b, "Limit %d\n", p.Sel.Limit)
	}
	fmt.Fprintf(&b, "Output: %s\n", p.Output)
	return b.String()
}

func inferType(e expr.Expr, schema *types.Schema) types.Type {
	switch n := e.(type) {
	case *expr.Column:
		if i := schema.Index(n.Name); i >= 0 {
			return schema.Columns[i].Type
		}
		return types.String
	case *expr.Literal:
		return n.Val.T
	case *expr.Call:
		switch n.Name {
		case "COUNT":
			return types.Int
		case "SUM", "AVG", "MIN", "MAX":
			if len(n.Args) == 1 {
				t := inferType(n.Args[0], schema)
				if n.Name == "MIN" || n.Name == "MAX" {
					return t
				}
				return types.Float
			}
			return types.Float
		case "FIRST_VALUE":
			if len(n.Args) == 1 {
				return inferType(n.Args[0], schema)
			}
			return types.String
		case "LENGTH":
			return types.Int
		case "ABS":
			if len(n.Args) == 1 {
				return inferType(n.Args[0], schema)
			}
			return types.Float
		default:
			return types.String
		}
	case *expr.Binary:
		if n.Op.IsComparison() || n.Op == expr.OpAnd || n.Op == expr.OpOr {
			return types.Bool
		}
		return types.Float
	case *expr.Not, *expr.IsNull, *expr.In:
		return types.Bool
	case *expr.Neg:
		return inferType(n.X, schema)
	default:
		return types.String
	}
}
