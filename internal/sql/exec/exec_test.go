package exec

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"scoop/internal/sql/parser"
	"scoop/internal/sql/plan"
	"scoop/internal/sql/types"
)

var schema = types.NewSchema(
	types.Column{Name: "vid", Type: types.String},
	types.Column{Name: "date", Type: types.String},
	types.Column{Name: "index", Type: types.Float},
	types.Column{Name: "city", Type: types.String},
	types.Column{Name: "state", Type: types.String},
)

func row(vid, date string, index float64, city, state string) types.Row {
	return types.Row{types.Str(vid), types.Str(date), types.FloatV(index), types.Str(city), types.Str(state)}
}

var sample = []types.Row{
	row("V1", "2015-01-01 00:10:00", 10, "Rotterdam", "NED"),
	row("V1", "2015-01-01 06:10:00", 20, "Rotterdam", "NED"),
	row("V1", "2015-01-02 00:10:00", 30, "Rotterdam", "NED"),
	row("V2", "2015-01-01 00:10:00", 5, "Paris", "FRA"),
	row("V2", "2015-02-01 00:10:00", 7, "Paris", "FRA"),
	row("V3", "2015-01-01 00:10:00", 1, "Kyiv", "UKR"),
}

// run analyzes q against the full schema with pushdown disabled (exec gets
// raw rows, so the residual must do all filtering).
func run(t *testing.T, q string, rows []types.Row) *Result {
	t.Helper()
	sel, err := parser.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Analyze(sel, schema, plan.Options{
		DisablePredicatePushdown:  true,
		DisableProjectionPushdown: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(p, NewSliceIterator(rows))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSimpleProjection(t *testing.T) {
	res := run(t, "SELECT vid, city FROM m", sample)
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].S != "V1" || res.Rows[0][1].S != "Rotterdam" {
		t.Errorf("row0 = %v", res.Rows[0])
	}
	if res.Schema.Names()[1] != "city" {
		t.Errorf("schema = %v", res.Schema)
	}
}

func TestWhereFilter(t *testing.T) {
	res := run(t, "SELECT vid FROM m WHERE state = 'FRA'", sample)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	res = run(t, "SELECT vid FROM m WHERE index > 5 AND date LIKE '2015-01%'", sample)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestComputedColumns(t *testing.T) {
	res := run(t, "SELECT vid, index * 2 AS dbl, SUBSTRING(date, 0, 10) AS day FROM m WHERE vid = 'V3'", sample)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][1].F != 2 || res.Rows[0][2].S != "2015-01-01" {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestGroupBySum(t *testing.T) {
	res := run(t, "SELECT vid, sum(index) AS total FROM m GROUP BY vid ORDER BY vid", sample)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	wants := map[string]float64{"V1": 60, "V2": 12, "V3": 1}
	for _, r := range res.Rows {
		if got := r[1].F; got != wants[r[0].S] {
			t.Errorf("sum(%s) = %v, want %v", r[0].S, got, wants[r[0].S])
		}
	}
	// Ordered ascending by vid.
	if res.Rows[0][0].S != "V1" || res.Rows[2][0].S != "V3" {
		t.Errorf("order = %v", res.Rows)
	}
}

func TestAggregates(t *testing.T) {
	res := run(t, "SELECT count(*) AS n, count(city) AS nc, sum(index) AS s, avg(index) AS a, min(index) AS mn, max(index) AS mx, first_value(city) AS fc FROM m", sample)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	r := res.Rows[0]
	if r[0].I != 6 || r[1].I != 6 {
		t.Errorf("counts = %v %v", r[0], r[1])
	}
	if r[2].F != 73 {
		t.Errorf("sum = %v", r[2])
	}
	if diff := r[3].F - 73.0/6.0; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("avg = %v", r[3])
	}
	if r[4].F != 1 || r[5].F != 30 {
		t.Errorf("min/max = %v %v", r[4], r[5])
	}
	if r[6].S != "Rotterdam" {
		t.Errorf("first_value = %v", r[6])
	}
}

func TestGlobalAggregateEmptyInput(t *testing.T) {
	res := run(t, "SELECT count(*) AS n, sum(index) AS s FROM m", nil)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].I != 0 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	if !res.Rows[0][1].IsNull() {
		t.Errorf("sum of empty = %v, want NULL", res.Rows[0][1])
	}
	// GROUP BY over empty input yields zero rows.
	res = run(t, "SELECT vid, count(*) FROM m GROUP BY vid", nil)
	if len(res.Rows) != 0 {
		t.Errorf("grouped empty = %v", res.Rows)
	}
}

func TestGroupByExpression(t *testing.T) {
	res := run(t, `SELECT SUBSTRING(date, 0, 10) AS day, sum(index) AS total
		FROM m WHERE vid = 'V1' GROUP BY SUBSTRING(date, 0, 10) ORDER BY SUBSTRING(date, 0, 10)`, sample)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].S != "2015-01-01" || res.Rows[0][1].F != 30 {
		t.Errorf("day0 = %v", res.Rows[0])
	}
	if res.Rows[1][0].S != "2015-01-02" || res.Rows[1][1].F != 30 {
		t.Errorf("day1 = %v", res.Rows[1])
	}
}

func TestHaving(t *testing.T) {
	res := run(t, "SELECT vid, count(*) AS n FROM m GROUP BY vid HAVING count(*) > 1 ORDER BY vid", sample)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].S != "V1" || res.Rows[1][0].S != "V2" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestOrderByDesc(t *testing.T) {
	res := run(t, "SELECT vid, index FROM m ORDER BY index DESC LIMIT 2", sample)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][1].F != 30 || res.Rows[1][1].F != 20 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestOrderByMultiKey(t *testing.T) {
	res := run(t, "SELECT vid, date FROM m ORDER BY vid DESC, date ASC", sample)
	if res.Rows[0][0].S != "V3" {
		t.Errorf("first = %v", res.Rows[0])
	}
	last := res.Rows[len(res.Rows)-1]
	if last[0].S != "V1" || last[1].S != "2015-01-02 00:10:00" {
		t.Errorf("last = %v", last)
	}
}

func TestOrderByUnselectedColumn(t *testing.T) {
	// ORDER BY references a base column absent from the SELECT list.
	res := run(t, "SELECT vid FROM m WHERE vid <> 'V1' ORDER BY index DESC", sample)
	if res.Rows[0][0].S != "V2" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestLimitZero(t *testing.T) {
	res := run(t, "SELECT vid FROM m LIMIT 0", sample)
	if len(res.Rows) != 0 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestDistinct(t *testing.T) {
	res := run(t, "SELECT DISTINCT city FROM m ORDER BY city", sample)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].S != "Kyiv" || res.Rows[2][0].S != "Rotterdam" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestGridPocketShowPiemonth(t *testing.T) {
	// The ShowPiemonth query shape from Table I on the mini dataset.
	res := run(t, `SELECT SUBSTRING(date, 0, 10) as sDate, state as vid, sum(index) as max
		FROM m WHERE state LIKE 'U%' AND date LIKE '2015-01-%'
		GROUP BY SUBSTRING(date, 0, 10), state
		ORDER BY SUBSTRING(date, 0, 10), state`, sample)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	r := res.Rows[0]
	if r[0].S != "2015-01-01" || r[1].S != "UKR" || r[2].F != 1 {
		t.Errorf("row = %v", r)
	}
	if names := res.Schema.Names(); names[0] != "sDate" || names[1] != "vid" || names[2] != "max" {
		t.Errorf("schema = %v", names)
	}
}

func TestFirstValueSkipsNull(t *testing.T) {
	rows := []types.Row{
		{types.Str("V1"), types.Str("2015"), types.NullValue(), types.NullValue(), types.Str("NED")},
		{types.Str("V1"), types.Str("2015"), types.FloatV(5), types.Str("Delft"), types.Str("NED")},
	}
	res := run(t, "SELECT vid, first_value(city) AS c FROM m GROUP BY vid", rows)
	if res.Rows[0][1].S != "Delft" {
		t.Errorf("first_value = %v", res.Rows[0][1])
	}
}

func TestGroupKeyNullVsEmpty(t *testing.T) {
	rows := []types.Row{
		{types.Str("V1"), types.Str(""), types.FloatV(1), types.Str(""), types.Str("NED")},
		{types.Str("V2"), types.NullValue(), types.FloatV(2), types.Str(""), types.Str("NED")},
	}
	res := run(t, "SELECT count(*) AS n FROM m GROUP BY date", rows)
	if len(res.Rows) != 2 {
		t.Errorf("NULL and empty-string group keys merged: %v", res.Rows)
	}
}

func TestResidualEvaluationError(t *testing.T) {
	sel, err := parser.Parse("SELECT vid FROM m WHERE NOPEFN(vid) = 1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Analyze(sel, schema, plan.Options{DisablePredicatePushdown: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(p, NewSliceIterator(sample)); err == nil {
		t.Error("unknown function should surface at execution")
	}
}

type failingIter struct{ n int }

func (f *failingIter) Next() (types.Row, error) {
	if f.n == 0 {
		return nil, fmt.Errorf("disk on fire")
	}
	f.n--
	return sample[0], nil
}
func (f *failingIter) Close() error { return nil }

func TestInputErrorPropagates(t *testing.T) {
	sel, _ := parser.Parse("SELECT vid FROM m")
	p, err := plan.Analyze(sel, schema, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(p, &failingIter{n: 2}); err == nil {
		t.Error("iterator error should propagate")
	}
}

func TestSliceIterator(t *testing.T) {
	it := NewSliceIterator([]types.Row{sample[0]})
	if _, err := it.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := it.Next(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
	if err := it.Close(); err != nil {
		t.Error(err)
	}
}

func TestDistinctAggregateCallsSharedAccumulator(t *testing.T) {
	// sum(index) appears twice; must be computed once and substituted twice.
	res := run(t, "SELECT sum(index) AS a, sum(index) + 1 AS b FROM m", sample)
	if res.Rows[0][0].F != 73 || res.Rows[0][1].F != 74 {
		t.Errorf("rows = %v", res.Rows)
	}
}

// Property: over random data, the grouped sums/counts must re-aggregate to
// the global ones, and ORDER BY output must be sorted.
func TestAggregationInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(200)
		rows := make([]types.Row, n)
		for i := range rows {
			rows[i] = row(
				fmt.Sprintf("V%d", rng.Intn(5)),
				fmt.Sprintf("2015-0%d-01", 1+rng.Intn(3)),
				float64(rng.Intn(1000))/4,
				[]string{"A", "B", "C"}[rng.Intn(3)],
				[]string{"X", "Y"}[rng.Intn(2)],
			)
		}
		grouped := run(t, "SELECT vid, count(*) AS n, sum(index) AS s FROM m GROUP BY vid ORDER BY vid", rows)
		global := run(t, "SELECT count(*) AS n, sum(index) AS s FROM m", rows)
		var cnt int64
		var sum float64
		for _, r := range grouped.Rows {
			cnt += r[1].I
			sum += r[2].F
		}
		if cnt != global.Rows[0][0].I {
			t.Fatalf("trial %d: group counts %d != global %d", trial, cnt, global.Rows[0][0].I)
		}
		if diff := sum - global.Rows[0][1].F; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("trial %d: group sums %v != global %v", trial, sum, global.Rows[0][1].F)
		}
		// Sortedness of ORDER BY.
		for i := 1; i < len(grouped.Rows); i++ {
			if grouped.Rows[i-1][0].Compare(grouped.Rows[i][0]) > 0 {
				t.Fatalf("trial %d: rows out of order", trial)
			}
		}
		// DISTINCT count never exceeds total count.
		d := run(t, "SELECT count(DISTINCT vid) AS d FROM m", rows)
		if d.Rows[0][0].I > cnt || d.Rows[0][0].I > 5 {
			t.Fatalf("trial %d: distinct %d of %d rows", trial, d.Rows[0][0].I, cnt)
		}
	}
}

func TestCountDistinct(t *testing.T) {
	res := run(t, "SELECT count(DISTINCT city) AS c, count(DISTINCT vid) AS v, count(*) AS n FROM m", sample)
	r := res.Rows[0]
	if r[0].I != 3 || r[1].I != 3 || r[2].I != 6 {
		t.Errorf("row = %v", r)
	}
	// Per group.
	res = run(t, "SELECT vid, count(DISTINCT date) AS d FROM m GROUP BY vid ORDER BY vid", sample)
	if res.Rows[0][1].I != 3 || res.Rows[2][1].I != 1 {
		t.Errorf("rows = %v", res.Rows)
	}
	// NULLs are ignored.
	rows := []types.Row{
		{types.Str("V1"), types.NullValue(), types.FloatV(1), types.Str("A"), types.Str("X")},
		{types.Str("V1"), types.Str("d"), types.FloatV(2), types.Str("A"), types.Str("X")},
	}
	res = run(t, "SELECT count(DISTINCT date) AS d FROM m", rows)
	if res.Rows[0][0].I != 1 {
		t.Errorf("null handling: %v", res.Rows)
	}
}

func TestSumDistinct(t *testing.T) {
	rows := []types.Row{
		row("V1", "d1", 5, "A", "X"),
		row("V1", "d2", 5, "A", "X"),
		row("V1", "d3", 7, "A", "X"),
	}
	res := run(t, "SELECT sum(DISTINCT index) AS s, sum(index) AS t FROM m", rows)
	if res.Rows[0][0].F != 12 || res.Rows[0][1].F != 17 {
		t.Errorf("rows = %v", res.Rows)
	}
	// Empty input: SUM(DISTINCT) of nothing is NULL.
	res = run(t, "SELECT sum(DISTINCT index) AS s FROM m", nil)
	if !res.Rows[0][0].IsNull() {
		t.Errorf("empty sum distinct = %v", res.Rows[0][0])
	}
}

func TestDistinctAggregateErrors(t *testing.T) {
	// MIN(DISTINCT x) unsupported.
	sel, err := parser.Parse("SELECT min(DISTINCT index) FROM m")
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Analyze(sel, schema, plan.Options{DisablePredicatePushdown: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(p, NewSliceIterator(sample)); err == nil {
		t.Error("MIN(DISTINCT) should fail at execution")
	}
}

func TestOrderByOutputAlias(t *testing.T) {
	res := run(t, "SELECT city, count(*) AS n FROM m GROUP BY city ORDER BY n DESC, city", sample)
	if res.Rows[0][0].S != "Rotterdam" || res.Rows[0][1].I != 3 {
		t.Errorf("rows = %v", res.Rows)
	}
	// An alias shadowing nothing, on a plain projection.
	res = run(t, "SELECT index * -1 AS neg FROM m ORDER BY neg", sample)
	if res.Rows[0][0].F != -30 {
		t.Errorf("rows = %v", res.Rows)
	}
	// A name that is both an alias and a base column: base column wins.
	res = run(t, "SELECT index * -1 AS index, vid FROM m ORDER BY index LIMIT 1", sample)
	if res.Rows[0][1].S != "V3" { // smallest base index = 1 (V3)
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestOrderByAggregate(t *testing.T) {
	res := run(t, "SELECT vid, sum(index) AS s FROM m GROUP BY vid ORDER BY sum(index) DESC", sample)
	if res.Rows[0][0].S != "V1" || res.Rows[2][0].S != "V3" {
		t.Errorf("rows = %v", res.Rows)
	}
}
