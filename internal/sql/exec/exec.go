// Package exec runs the residual (compute-side) part of an analyzed plan:
// the filtering not pushed to the object store, projection, aggregation,
// HAVING, DISTINCT, ORDER BY and LIMIT. In the paper's workflow this is the
// processing that remains on Spark workers and the driver after Swift has
// returned filtered data.
package exec

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"scoop/internal/sql/expr"
	"scoop/internal/sql/parser"
	"scoop/internal/sql/plan"
	"scoop/internal/sql/types"
)

// Iterator yields rows until io.EOF.
type Iterator interface {
	// Next returns the next row or io.EOF when exhausted.
	Next() (types.Row, error)
	// Close releases resources. Safe to call multiple times.
	Close() error
}

// SliceIterator iterates over an in-memory row slice.
type SliceIterator struct {
	rows []types.Row
	i    int
}

// NewSliceIterator returns an Iterator over rows.
func NewSliceIterator(rows []types.Row) *SliceIterator {
	return &SliceIterator{rows: rows}
}

// Next implements Iterator.
func (s *SliceIterator) Next() (types.Row, error) {
	if s.i >= len(s.rows) {
		return nil, io.EOF
	}
	r := s.rows[s.i]
	s.i++
	return r, nil
}

// Close implements Iterator.
func (s *SliceIterator) Close() error { return nil }

// Result is the outcome of executing a plan.
type Result struct {
	Schema *types.Schema
	Rows   []types.Row
}

// Execute runs the residual plan over input rows (already pruned to
// p.Read's layout and already filtered by any pushed predicates).
func Execute(p *plan.Plan, input Iterator) (*Result, error) {
	defer input.Close()

	filtered, err := applyResidual(p, input)
	if err != nil {
		return nil, err
	}

	var out []keyedRow
	if p.Aggregate {
		out, err = aggregate(p, filtered)
	} else {
		out, err = project(p, filtered)
	}
	if err != nil {
		return nil, err
	}

	if p.Sel.Distinct {
		out = distinct(out)
	}
	if len(p.OrderBy) > 0 {
		sortRows(out, p.OrderBy)
	}
	if p.Sel.Limit >= 0 && int64(len(out)) > p.Sel.Limit {
		out = out[:p.Sel.Limit]
	}
	rows := make([]types.Row, len(out))
	for i, kr := range out {
		rows[i] = kr.row
	}
	return &Result{Schema: p.Output, Rows: rows}, nil
}

// keyedRow pairs an output row with its ORDER BY key values.
type keyedRow struct {
	row  types.Row
	keys []types.Value
}

func applyResidual(p *plan.Plan, input Iterator) ([]types.Row, error) {
	var rows []types.Row
	for {
		r, err := input.Next()
		if errors.Is(err, io.EOF) {
			return rows, nil
		}
		if err != nil {
			return nil, err
		}
		if p.Residual != nil {
			ok, err := expr.EvalPredicate(p.Residual, r)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		rows = append(rows, r)
	}
}

func project(p *plan.Plan, rows []types.Row) ([]keyedRow, error) {
	out := make([]keyedRow, 0, len(rows))
	for _, r := range rows {
		outRow := make(types.Row, len(p.Items))
		for i, it := range p.Items {
			v, err := it.Expr.Eval(r)
			if err != nil {
				return nil, err
			}
			outRow[i] = v
		}
		keys, err := orderKeys(p.OrderBy, r)
		if err != nil {
			return nil, err
		}
		out = append(out, keyedRow{row: outRow, keys: keys})
	}
	return out, nil
}

func orderKeys(orderBy []parser.OrderItem, r types.Row) ([]types.Value, error) {
	if len(orderBy) == 0 {
		return nil, nil
	}
	keys := make([]types.Value, len(orderBy))
	for i, o := range orderBy {
		v, err := o.Expr.Eval(r)
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

// --- Aggregation ---

// accumulator updates one aggregate over a group's rows.
type accumulator interface {
	add(row types.Row) error
	value() types.Value
}

func newAccumulator(c *expr.Call) (accumulator, error) {
	name := strings.ToUpper(c.Name)
	if name == "COUNT" {
		if len(c.Args) != 1 {
			return nil, fmt.Errorf("exec: COUNT wants 1 arg")
		}
		if _, ok := c.Args[0].(expr.Star); ok {
			if c.Distinct {
				return nil, fmt.Errorf("exec: COUNT(DISTINCT *) is not valid")
			}
			return &countAcc{star: true}, nil
		}
		if c.Distinct {
			return &distinctAcc{arg: c.Args[0], count: true}, nil
		}
		return &countAcc{arg: c.Args[0]}, nil
	}
	if len(c.Args) != 1 {
		return nil, fmt.Errorf("exec: %s wants 1 arg, got %d", name, len(c.Args))
	}
	arg := c.Args[0]
	if c.Distinct {
		if name != "SUM" {
			return nil, fmt.Errorf("exec: DISTINCT is supported for COUNT and SUM, not %s", name)
		}
		return &distinctAcc{arg: arg}, nil
	}
	switch name {
	case "SUM":
		return &sumAcc{arg: arg}, nil
	case "AVG":
		return &avgAcc{arg: arg}, nil
	case "MIN":
		return &minMaxAcc{arg: arg, min: true}, nil
	case "MAX":
		return &minMaxAcc{arg: arg}, nil
	case "FIRST_VALUE":
		return &firstAcc{arg: arg}, nil
	default:
		return nil, fmt.Errorf("exec: unknown aggregate %q", name)
	}
}

type countAcc struct {
	star bool
	arg  expr.Expr
	n    int64
}

func (a *countAcc) add(row types.Row) error {
	if a.star {
		a.n++
		return nil
	}
	v, err := a.arg.Eval(row)
	if err != nil {
		return err
	}
	if !v.IsNull() {
		a.n++
	}
	return nil
}

func (a *countAcc) value() types.Value { return types.IntV(a.n) }

type sumAcc struct {
	arg expr.Expr
	sum float64
	any bool
}

func (a *sumAcc) add(row types.Row) error {
	v, err := a.arg.Eval(row)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	f, ok := v.AsFloat()
	if !ok {
		return nil // non-numeric values are ignored, like SQL casts failing to NULL
	}
	a.sum += f
	a.any = true
	return nil
}

func (a *sumAcc) value() types.Value {
	if !a.any {
		return types.NullValue()
	}
	return types.FloatV(a.sum)
}

type avgAcc struct {
	arg expr.Expr
	sum float64
	n   int64
}

func (a *avgAcc) add(row types.Row) error {
	v, err := a.arg.Eval(row)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	f, ok := v.AsFloat()
	if !ok {
		return nil
	}
	a.sum += f
	a.n++
	return nil
}

func (a *avgAcc) value() types.Value {
	if a.n == 0 {
		return types.NullValue()
	}
	return types.FloatV(a.sum / float64(a.n))
}

type minMaxAcc struct {
	arg  expr.Expr
	min  bool
	best types.Value
	any  bool
}

func (a *minMaxAcc) add(row types.Row) error {
	v, err := a.arg.Eval(row)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	if !a.any {
		a.best = v
		a.any = true
		return nil
	}
	c := v.Compare(a.best)
	if (a.min && c < 0) || (!a.min && c > 0) {
		a.best = v
	}
	return nil
}

func (a *minMaxAcc) value() types.Value {
	if !a.any {
		return types.NullValue()
	}
	return a.best
}

type firstAcc struct {
	arg expr.Expr
	v   types.Value
	any bool
}

func (a *firstAcc) add(row types.Row) error {
	if a.any {
		return nil
	}
	v, err := a.arg.Eval(row)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil // first non-null, matching Spark's ignoreNulls-friendly use
	}
	a.v = v
	a.any = true
	return nil
}

func (a *firstAcc) value() types.Value {
	if !a.any {
		return types.NullValue()
	}
	return a.v
}

// distinctAcc implements COUNT(DISTINCT x) and SUM(DISTINCT x) by keying
// values on their rendered form.
type distinctAcc struct {
	arg   expr.Expr
	count bool // COUNT when true, SUM otherwise
	seen  map[string]types.Value
}

func (a *distinctAcc) add(row types.Row) error {
	v, err := a.arg.Eval(row)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	if a.seen == nil {
		a.seen = make(map[string]types.Value)
	}
	a.seen[v.AsString()] = v
	return nil
}

func (a *distinctAcc) value() types.Value {
	if a.count {
		return types.IntV(int64(len(a.seen)))
	}
	if len(a.seen) == 0 {
		return types.NullValue()
	}
	var sum float64
	for _, v := range a.seen {
		f, ok := v.AsFloat()
		if ok {
			sum += f
		}
	}
	return types.FloatV(sum)
}

// group holds per-group state.
type group struct {
	firstRow types.Row
	accs     []accumulator
}

func aggregate(p *plan.Plan, rows []types.Row) ([]keyedRow, error) {
	// Collect the distinct aggregate calls used anywhere in the query.
	var aggCalls []*expr.Call
	seen := make(map[string]int)
	collect := func(e expr.Expr) {
		for _, c := range expr.Aggregates(e) {
			if _, ok := seen[c.String()]; !ok {
				seen[c.String()] = len(aggCalls)
				aggCalls = append(aggCalls, c)
			}
		}
	}
	for _, it := range p.Items {
		collect(it.Expr)
	}
	if p.Having != nil {
		collect(p.Having)
	}
	for _, o := range p.OrderBy {
		collect(o.Expr)
	}

	groups := make(map[string]*group)
	var order []string // insertion order for determinism
	for _, r := range rows {
		key, err := groupKey(p.GroupBy, r)
		if err != nil {
			return nil, err
		}
		g, ok := groups[key]
		if !ok {
			g = &group{firstRow: r}
			g.accs = make([]accumulator, len(aggCalls))
			for i, c := range aggCalls {
				acc, err := newAccumulator(c)
				if err != nil {
					return nil, err
				}
				g.accs[i] = acc
			}
			groups[key] = g
			order = append(order, key)
		}
		for _, acc := range g.accs {
			if err := acc.add(r); err != nil {
				return nil, err
			}
		}
	}

	// Global aggregates over an empty input still produce one row
	// (COUNT(*) = 0 etc.), but only when there is no GROUP BY.
	if len(rows) == 0 && len(p.GroupBy) == 0 {
		g := &group{firstRow: make(types.Row, p.Read.Len())}
		g.accs = make([]accumulator, len(aggCalls))
		for i, c := range aggCalls {
			acc, err := newAccumulator(c)
			if err != nil {
				return nil, err
			}
			g.accs[i] = acc
		}
		groups[""] = g
		order = append(order, "")
	}

	orderItems := p.OrderBy
	out := make([]keyedRow, 0, len(order))
	for _, key := range order {
		g := groups[key]
		// substitute computed aggregate values into the expressions, then
		// evaluate against the group's first row (non-aggregate parts of an
		// item therefore get first-row semantics, as Table I queries expect).
		subst := func(e expr.Expr) expr.Expr {
			return expr.Transform(e, func(n expr.Expr) (expr.Expr, bool) {
				if c, ok := n.(*expr.Call); ok && expr.IsAggregate(c.Name) {
					if i, ok := seen[c.String()]; ok {
						return &expr.Literal{Val: g.accs[i].value()}, true
					}
				}
				return nil, false
			})
		}
		if p.Having != nil {
			ok, err := expr.EvalPredicate(subst(p.Having), g.firstRow)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		outRow := make(types.Row, len(p.Items))
		for i, it := range p.Items {
			v, err := subst(it.Expr).Eval(g.firstRow)
			if err != nil {
				return nil, err
			}
			outRow[i] = v
		}
		var keys []types.Value
		if len(orderItems) > 0 {
			keys = make([]types.Value, len(orderItems))
			for i, o := range orderItems {
				v, err := subst(o.Expr).Eval(g.firstRow)
				if err != nil {
					return nil, err
				}
				keys[i] = v
			}
		}
		out = append(out, keyedRow{row: outRow, keys: keys})
	}
	return out, nil
}

// groupKey renders the GROUP BY values into a collision-safe string key.
func groupKey(groupBy []expr.Expr, r types.Row) (string, error) {
	if len(groupBy) == 0 {
		return "", nil
	}
	var b strings.Builder
	for _, g := range groupBy {
		v, err := g.Eval(r)
		if err != nil {
			return "", err
		}
		if v.IsNull() {
			b.WriteByte(0x01) // distinguish NULL from empty string
		} else {
			b.WriteByte(0x02)
			b.WriteString(v.AsString())
		}
		b.WriteByte(0x00)
	}
	return b.String(), nil
}

func distinct(rows []keyedRow) []keyedRow {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, kr := range rows {
		var b strings.Builder
		for _, v := range kr.row {
			if v.IsNull() {
				b.WriteByte(0x01)
			} else {
				b.WriteByte(0x02)
				b.WriteString(v.AsString())
			}
			b.WriteByte(0x00)
		}
		key := b.String()
		if !seen[key] {
			seen[key] = true
			out = append(out, kr)
		}
	}
	return out
}

func sortRows(rows []keyedRow, orderBy []parser.OrderItem) {
	sort.SliceStable(rows, func(i, j int) bool {
		for k := range orderBy {
			c := rows[i].keys[k].Compare(rows[j].keys[k])
			if c == 0 {
				continue
			}
			if orderBy[k].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}
