package parser

import (
	"strings"
	"testing"

	"scoop/internal/sql/expr"
	"scoop/internal/sql/types"
)

func mustParse(t *testing.T, src string) *Select {
	t.Helper()
	sel, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return sel
}

func TestParseMinimal(t *testing.T) {
	sel := mustParse(t, "SELECT vid FROM meters")
	if len(sel.Items) != 1 || sel.Items[0].Name() != "vid" || sel.Table != "meters" {
		t.Errorf("sel = %+v", sel)
	}
	if sel.Where != nil || sel.GroupBy != nil || sel.OrderBy != nil || sel.Limit != -1 {
		t.Errorf("unexpected clauses: %+v", sel)
	}
}

func TestParseStar(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t")
	if !sel.Items[0].Star || sel.Items[0].Name() != "*" {
		t.Errorf("items = %+v", sel.Items)
	}
}

func TestParseDistinct(t *testing.T) {
	sel := mustParse(t, "SELECT DISTINCT city FROM t")
	if !sel.Distinct {
		t.Error("DISTINCT not parsed")
	}
}

func TestParseAliases(t *testing.T) {
	sel := mustParse(t, "SELECT sum(index) AS max, vid v FROM t")
	if sel.Items[0].Name() != "max" {
		t.Errorf("alias = %q", sel.Items[0].Name())
	}
	if sel.Items[1].Name() != "v" {
		t.Errorf("bare alias = %q", sel.Items[1].Name())
	}
}

func TestParseWhere(t *testing.T) {
	sel := mustParse(t, "SELECT vid FROM t WHERE city LIKE 'Rotterdam' AND date LIKE '2015-01-%'")
	b, ok := sel.Where.(*expr.Binary)
	if !ok || b.Op != expr.OpAnd {
		t.Fatalf("Where = %v", sel.Where)
	}
	l := b.Left.(*expr.Binary)
	if l.Op != expr.OpLike || l.Left.(*expr.Column).Name != "city" {
		t.Errorf("left = %v", b.Left)
	}
}

func TestParseGroupOrderLimit(t *testing.T) {
	sel := mustParse(t, `SELECT SUBSTRING(date, 0, 10) as sDate, sum(index) as max, vid
		FROM largeMeter WHERE city LIKE 'Rotterdam' AND date LIKE '2015-01-%'
		GROUP BY SUBSTRING(date, 0, 10), vid
		ORDER BY SUBSTRING(date, 0, 10), vid DESC LIMIT 100`)
	if len(sel.GroupBy) != 2 {
		t.Fatalf("GroupBy = %v", sel.GroupBy)
	}
	if len(sel.OrderBy) != 2 || sel.OrderBy[0].Desc || !sel.OrderBy[1].Desc {
		t.Fatalf("OrderBy = %+v", sel.OrderBy)
	}
	if sel.Limit != 100 {
		t.Errorf("Limit = %d", sel.Limit)
	}
	if sel.Items[0].Name() != "sDate" {
		t.Errorf("item0 name = %q", sel.Items[0].Name())
	}
	call, ok := sel.Items[1].Expr.(*expr.Call)
	if !ok || call.Name != "SUM" {
		t.Errorf("item1 = %v", sel.Items[1].Expr)
	}
}

// All seven Table I GridPocket queries must parse.
func TestParseGridPocketQueries(t *testing.T) {
	queries := []string{
		`SELECT vid, sum(index) as max, first_value(lat) as lat, first_value(long) as long, first_value(state) as state FROM largeMeter WHERE date LIKE '2015-01%' GROUP BY SUBSTRING(date, 0, 7), vid ORDER BY SUBSTRING(date, 0, 7), vid`,
		`SELECT vid, sum(index) as max, first_value(city) as city, first_value(lat) as lat, first_value(long) as long, first_value(state) as state FROM largeMeter WHERE date LIKE '2015-01%' GROUP BY SUBSTRING(date, 0, 7), vid ORDER BY SUBSTRING(date, 0, 7), vid`,
		`SELECT SUBSTRING(date, 0, 10) as sDate, sum(index) as max, first_value(lat) as lat, first_value(long) as long FROM largeMeter WHERE date LIKE '2015-01%' GROUP BY SUBSTRING(date, 0, 10), vid ORDER BY SUBSTRING(date, 0, 10), vid`,
		`SELECT SUBSTRING(date, 0, 10) as sDate, sum(index) as max, vid FROM largeMeter WHERE city LIKE 'Rotterdam' AND date LIKE '2015-01-%' GROUP BY SUBSTRING(date, 0, 10), vid ORDER BY SUBSTRING(date, 0, 10), vid`,
		`SELECT SUBSTRING(date, 0, 10) as sDate, state as vid, sum(index) as max FROM largeMeter WHERE state LIKE 'U%' AND date LIKE '2015-01-%' GROUP BY SUBSTRING(date, 0, 10), state ORDER BY SUBSTRING(date, 0, 10), state`,
		`SELECT SUBSTRING(date, 0, 10) as sDate, vid, min(sumHC) as minHC, max(sumHC) as maxHC, min(sumHP) as minHP, max(sumHP) as maxHP FROM largeMeter WHERE state LIKE 'FRA' AND date LIKE '2015-01-%' GROUP BY SUBSTRING(date, 0, 10), vid ORDER BY SUBSTRING(date, 0, 10), vid`,
		`SELECT SUBSTRING(date, 0, 13) as sDate, sum(index) as max, vid FROM largeMeter WHERE city LIKE 'Rotterdam' AND date LIKE '2015-01-%' GROUP BY SUBSTRING(date, 0, 13), vid ORDER BY SUBSTRING(date, 0, 13), vid`,
	}
	for i, q := range queries {
		sel, err := Parse(q)
		if err != nil {
			t.Errorf("query %d: %v", i, err)
			continue
		}
		if sel.Table != "largeMeter" || sel.Where == nil || len(sel.GroupBy) == 0 {
			t.Errorf("query %d: unexpected shape %+v", i, sel)
		}
	}
}

func TestParseLiterals(t *testing.T) {
	sel := mustParse(t, "SELECT 1, 2.5, 1e3, 'it''s', NULL, TRUE, FALSE, -7 FROM t")
	wants := []types.Value{
		types.IntV(1), types.FloatV(2.5), types.FloatV(1000), types.Str("it's"),
		types.NullValue(), types.BoolV(true), types.BoolV(false), types.IntV(-7),
	}
	for i, w := range wants {
		l, ok := sel.Items[i].Expr.(*expr.Literal)
		if !ok {
			t.Errorf("item %d not literal: %v", i, sel.Items[i].Expr)
			continue
		}
		if w.IsNull() != l.Val.IsNull() || (!w.IsNull() && !l.Val.Equal(w)) {
			t.Errorf("item %d = %v, want %v", i, l.Val, w)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	sel := mustParse(t, "SELECT a + b * c FROM t")
	top := sel.Items[0].Expr.(*expr.Binary)
	if top.Op != expr.OpAdd {
		t.Fatalf("top = %v", top.Op)
	}
	if r := top.Right.(*expr.Binary); r.Op != expr.OpMul {
		t.Errorf("right = %v", r.Op)
	}
	// Parens override.
	sel = mustParse(t, "SELECT (a + b) * c FROM t")
	top = sel.Items[0].Expr.(*expr.Binary)
	if top.Op != expr.OpMul {
		t.Errorf("paren top = %v", top.Op)
	}
	// OR binds weaker than AND.
	sel = mustParse(t, "SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
	w := sel.Where.(*expr.Binary)
	if w.Op != expr.OpOr {
		t.Errorf("where top = %v", w.Op)
	}
}

func TestParseInBetweenIsNull(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t WHERE state IN ('FRA', 'NED') AND x NOT IN (1) AND a BETWEEN 1 AND 5 AND b NOT BETWEEN 0 AND 1 AND c IS NULL AND d IS NOT NULL AND e NOT LIKE 'x%'")
	s := sel.Where.String()
	for _, frag := range []string{"IN ('FRA', 'NED')", "NOT IN (1)", "IS NULL", "IS NOT NULL", "NOT ", ">= 1", "<= 5"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Where = %q missing %q", s, frag)
		}
	}
}

func TestParseCountStar(t *testing.T) {
	sel := mustParse(t, "SELECT count(*) FROM t")
	call := sel.Items[0].Expr.(*expr.Call)
	if call.Name != "COUNT" || len(call.Args) != 1 {
		t.Fatalf("call = %+v", call)
	}
	if _, ok := call.Args[0].(expr.Star); !ok {
		t.Errorf("arg = %T", call.Args[0])
	}
}

func TestParseCountDistinct(t *testing.T) {
	sel := mustParse(t, "SELECT count(DISTINCT city), sum(DISTINCT index) FROM t")
	c := sel.Items[0].Expr.(*expr.Call)
	if c.Name != "COUNT" || !c.Distinct {
		t.Errorf("call = %+v", c)
	}
	s := sel.Items[1].Expr.(*expr.Call)
	if s.Name != "SUM" || !s.Distinct {
		t.Errorf("call = %+v", s)
	}
	if !strings.Contains(c.String(), "DISTINCT") {
		t.Errorf("String = %q", c.String())
	}
	// DISTINCT inside a scalar function is rejected.
	if _, err := Parse("SELECT upper(DISTINCT city) FROM t"); err == nil {
		t.Error("DISTINCT in scalar accepted")
	}
	if _, err := Parse("SELECT count(DISTINCT *) FROM t"); err == nil {
		t.Error("COUNT(DISTINCT *) accepted")
	}
}

func TestParseQuotedIdent(t *testing.T) {
	sel := mustParse(t, "SELECT `index`, \"date\" FROM t")
	if sel.Items[0].Expr.(*expr.Column).Name != "index" {
		t.Errorf("backquoted ident = %v", sel.Items[0].Expr)
	}
	if sel.Items[1].Expr.(*expr.Column).Name != "date" {
		t.Errorf("doublequoted ident = %v", sel.Items[1].Expr)
	}
}

func TestParseNotVariants(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t WHERE NOT x = 1")
	if _, ok := sel.Where.(*expr.Not); !ok {
		t.Errorf("NOT parse = %T", sel.Where)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t GROUP BY",
		"SELECT a FROM t ORDER BY",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t LIMIT -1",
		"SELECT a FROM t trailing",
		"SELECT 'unterminated FROM t",
		"SELECT `unterminated FROM t",
		"SELECT a FROM t WHERE a IN 1",
		"SELECT a FROM t WHERE a IN (1",
		"SELECT a FROM t WHERE a BETWEEN 1",
		"SELECT a FROM t WHERE a IS 1",
		"SELECT f(a FROM t",
		"SELECT (a FROM t",
		"SELECT a FROM t WHERE a @ 1",
		"SELECT count(* FROM t",
		"INSERT INTO t VALUES (1)",
		"SELECT a AS FROM t WHERE 1",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	sel := mustParse(t, "SELECT 1.5e-3, .5, 10E2 FROM t")
	v0 := sel.Items[0].Expr.(*expr.Literal).Val
	if v0.F != 1.5e-3 {
		t.Errorf("1.5e-3 = %v", v0)
	}
	v1 := sel.Items[1].Expr.(*expr.Literal).Val
	if v1.F != 0.5 {
		t.Errorf(".5 = %v", v1)
	}
	v2 := sel.Items[2].Expr.(*expr.Literal).Val
	if v2.F != 1000 {
		t.Errorf("10E2 = %v", v2)
	}
}

func TestHavingClause(t *testing.T) {
	sel := mustParse(t, "SELECT city, count(*) FROM t GROUP BY city HAVING count(*) > 5")
	if sel.Having == nil {
		t.Fatal("HAVING not parsed")
	}
	b := sel.Having.(*expr.Binary)
	if b.Op != expr.OpGt {
		t.Errorf("having = %v", sel.Having)
	}
}
