package parser

import (
	"fmt"
	"strconv"
	"strings"

	"scoop/internal/sql/expr"
	"scoop/internal/sql/types"
)

// SelectItem is one entry of the SELECT list.
type SelectItem struct {
	Expr  expr.Expr
	Alias string // empty when no AS alias was given
	Star  bool   // SELECT *
}

// Name returns the output column name: the alias if present, otherwise the
// expression text.
func (s SelectItem) Name() string {
	if s.Alias != "" {
		return s.Alias
	}
	if s.Star {
		return "*"
	}
	if c, ok := s.Expr.(*expr.Column); ok {
		return c.Name
	}
	return s.Expr.String()
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr expr.Expr
	Desc bool
}

// Select is the parsed form of a SELECT statement.
type Select struct {
	Items    []SelectItem
	Distinct bool
	Table    string
	Where    expr.Expr // nil when absent
	GroupBy  []expr.Expr
	Having   expr.Expr // nil when absent
	OrderBy  []OrderItem
	Limit    int64 // -1 when absent
}

// Parse parses a single SELECT statement.
func Parse(src string) (*Select, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("sql: trailing input at %q", p.peek().text)
	}
	return sel, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sql: expected %s, found %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if t := p.peek(); t.kind == tokSymbol && t.text == sym {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return fmt.Errorf("sql: expected %q, found %q", sym, p.peek().text)
	}
	return nil
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1}
	sel.Distinct = p.acceptKeyword("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	t := p.advance()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("sql: expected table name, found %q", t.text)
	}
	sel.Table = t.text
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.advance()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sql: expected LIMIT count, found %q", t.text)
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sql: bad LIMIT %q", t.text)
		}
		sel.Limit = n
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t := p.advance()
		if t.kind != tokIdent && t.kind != tokKeyword {
			return SelectItem{}, fmt.Errorf("sql: expected alias, found %q", t.text)
		}
		item.Alias = t.text
	} else if t := p.peek(); t.kind == tokIdent {
		// Bare alias: SELECT vid v FROM ...
		item.Alias = t.text
		p.advance()
	}
	return item, nil
}

// Expression grammar (lowest to highest precedence):
//
//	orExpr   := andExpr (OR andExpr)*
//	andExpr  := notExpr (AND notExpr)*
//	notExpr  := NOT notExpr | cmpExpr
//	cmpExpr  := addExpr ((=|<>|!=|<|<=|>|>=|LIKE) addExpr
//	           | [NOT] IN (list) | IS [NOT] NULL | [NOT] BETWEEN a AND b)?
//	addExpr  := mulExpr ((+|-) mulExpr)*
//	mulExpr  := unary ((*|/) unary)*
//	unary    := - unary | primary
//	primary  := literal | ident | ident(args) | ( orExpr )
func (p *parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &expr.Binary{Op: expr.OpOr, Left: l, Right: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &expr.Binary{Op: expr.OpAnd, Left: l, Right: r}
	}
	return l, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &expr.Not{X: x}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[string]expr.BinOp{
	"=": expr.OpEq, "<>": expr.OpNe, "!=": expr.OpNe,
	"<": expr.OpLt, "<=": expr.OpLe, ">": expr.OpGt, ">=": expr.OpGe,
}

func (p *parser) parseCmp() (expr.Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokSymbol {
		if op, ok := cmpOps[t.text]; ok {
			p.advance()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &expr.Binary{Op: op, Left: l, Right: r}, nil
		}
	}
	negate := false
	if t := p.peek(); t.kind == tokKeyword && t.text == "NOT" {
		// lookahead for NOT IN / NOT LIKE / NOT BETWEEN
		if p.i+1 < len(p.toks) {
			nxt := p.toks[p.i+1]
			if nxt.kind == tokKeyword && (nxt.text == "IN" || nxt.text == "LIKE" || nxt.text == "BETWEEN") {
				p.advance()
				negate = true
			}
		}
	}
	switch {
	case p.acceptKeyword("LIKE"):
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		var e expr.Expr = &expr.Binary{Op: expr.OpLike, Left: l, Right: r}
		if negate {
			e = &expr.Not{X: e}
		}
		return e, nil
	case p.acceptKeyword("IN"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var list []expr.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &expr.In{X: l, List: list, Negate: negate}, nil
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		var e expr.Expr = &expr.Binary{
			Op:    expr.OpAnd,
			Left:  &expr.Binary{Op: expr.OpGe, Left: l, Right: lo},
			Right: &expr.Binary{Op: expr.OpLe, Left: l, Right: hi},
		}
		if negate {
			e = &expr.Not{X: e}
		}
		return e, nil
	case p.acceptKeyword("IS"):
		neg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &expr.IsNull{X: l, Negate: neg}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (expr.Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.BinOp
		switch {
		case p.acceptSymbol("+"):
			op = expr.OpAdd
		case p.acceptSymbol("-"):
			op = expr.OpSub
		default:
			return l, nil
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &expr.Binary{Op: op, Left: l, Right: r}
	}
}

func (p *parser) parseMul() (expr.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.BinOp
		switch {
		case p.acceptSymbol("*"):
			op = expr.OpMul
		case p.acceptSymbol("/"):
			op = expr.OpDiv
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &expr.Binary{Op: op, Left: l, Right: r}
	}
}

func (p *parser) parseUnary() (expr.Expr, error) {
	if p.acceptSymbol("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold -literal immediately so the planner sees plain literals.
		if l, ok := x.(*expr.Literal); ok {
			switch l.Val.T {
			case types.Int:
				return &expr.Literal{Val: types.IntV(-l.Val.I)}, nil
			case types.Float:
				return &expr.Literal{Val: types.FloatV(-l.Val.F)}, nil
			}
		}
		return &expr.Neg{X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	t := p.advance()
	switch t.kind {
	case tokNumber:
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %q", t.text)
			}
			return &expr.Literal{Val: types.FloatV(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q", t.text)
		}
		return &expr.Literal{Val: types.IntV(i)}, nil
	case tokString:
		return &expr.Literal{Val: types.Str(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			return &expr.Literal{Val: types.NullValue()}, nil
		case "TRUE":
			return &expr.Literal{Val: types.BoolV(true)}, nil
		case "FALSE":
			return &expr.Literal{Val: types.BoolV(false)}, nil
		}
		return nil, fmt.Errorf("sql: unexpected keyword %q in expression", t.text)
	case tokIdent:
		if p.acceptSymbol("(") {
			return p.parseCallArgs(t.text)
		}
		return &expr.Column{Name: t.text, Index: -1}, nil
	case tokSymbol:
		if t.text == "(" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("sql: unexpected token %q in expression", t.text)
}

func (p *parser) parseCallArgs(name string) (expr.Expr, error) {
	call := &expr.Call{Name: strings.ToUpper(name)}
	if p.acceptSymbol(")") {
		return call, nil
	}
	// COUNT(*) special case.
	if call.Name == "COUNT" && p.acceptSymbol("*") {
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		call.Args = []expr.Expr{expr.Star{}}
		return call, nil
	}
	// COUNT(DISTINCT x) / SUM(DISTINCT x).
	if p.acceptKeyword("DISTINCT") {
		if !expr.IsAggregate(call.Name) {
			return nil, fmt.Errorf("sql: DISTINCT inside non-aggregate %s", call.Name)
		}
		call.Distinct = true
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, e)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return call, nil
}
