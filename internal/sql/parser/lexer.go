// Package parser turns SQL text into the AST consumed by the planner.
//
// The dialect covers what the GridPocket workloads (paper Table I) and the
// synthetic evaluation queries need: single-table SELECT with expressions,
// WHERE, GROUP BY, ORDER BY, LIMIT, aggregate functions and aliases.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; identifiers as written
	pos  int    // byte offset in the input, for error messages
}

// keywords recognized by the lexer. Everything else is an identifier.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "HAVING": true, "LIMIT": true, "AS": true, "AND": true,
	"OR": true, "NOT": true, "LIKE": true, "IN": true, "IS": true,
	"NULL": true, "TRUE": true, "FALSE": true, "ASC": true, "DESC": true,
	"BETWEEN": true, "DISTINCT": true,
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return fmt.Errorf("sql: %s (at offset %d)", fmt.Sprintf(format, args...), pos)
}

// next scans the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		up := strings.ToUpper(text)
		if keywords[up] {
			return token{kind: tokKeyword, text: up, pos: start}, nil
		}
		return token{kind: tokIdent, text: text, pos: start}, nil
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		seenDot, seenExp := false, false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			switch {
			case isDigit(ch):
				l.pos++
			case ch == '.' && !seenDot && !seenExp:
				seenDot = true
				l.pos++
			case (ch == 'e' || ch == 'E') && !seenExp && l.pos > start:
				seenExp = true
				l.pos++
				if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
					l.pos++
				}
			default:
				goto doneNum
			}
		}
	doneNum:
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case c == '\'':
		var b strings.Builder
		l.pos++
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf(start, "unterminated string literal")
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'') // '' escape
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: b.String(), pos: start}, nil
			}
			b.WriteByte(ch)
			l.pos++
		}
	case c == '`' || c == '"':
		// Quoted identifier.
		quote := c
		l.pos++
		end := strings.IndexByte(l.src[l.pos:], quote)
		if end < 0 {
			return token{}, l.errf(start, "unterminated quoted identifier")
		}
		text := l.src[l.pos : l.pos+end]
		l.pos += end + 1
		return token{kind: tokIdent, text: text, pos: start}, nil
	default:
		// Multi-byte operators first.
		for _, op := range []string{"<>", "!=", "<=", ">="} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += len(op)
				return token{kind: tokSymbol, text: op, pos: start}, nil
			}
		}
		if strings.ContainsRune("()+-*/,=<>", rune(c)) {
			l.pos++
			return token{kind: tokSymbol, text: string(c), pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected character %q", c)
	}
}

func isSpace(c byte) bool      { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }

// lex tokenizes the whole input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
