package expr

import (
	"testing"

	"scoop/internal/sql/types"
)

func TestTransformDeepCopy(t *testing.T) {
	orig := &Binary{Op: OpAnd,
		Left:  &Not{X: &In{X: col("vid"), List: []Expr{lit(types.Str("a"))}, Negate: true}},
		Right: &IsNull{X: &Call{Name: "UPPER", Args: []Expr{col("city")}}, Negate: true},
	}
	cp := Transform(orig, func(Expr) (Expr, bool) { return nil, false })
	if cp.String() != orig.String() {
		t.Fatalf("copy differs: %s vs %s", cp.String(), orig.String())
	}
	// Mutating the copy's column binding must not touch the original.
	_ = Walk(cp, func(n Expr) error {
		if c, ok := n.(*Column); ok {
			c.Index = 99
		}
		return nil
	})
	_ = Walk(orig, func(n Expr) error {
		if c, ok := n.(*Column); ok && c.Index == 99 {
			t.Fatal("Transform shared column nodes")
		}
		return nil
	})
}

func TestTransformReplacement(t *testing.T) {
	e := &Binary{Op: OpAdd, Left: col("a"), Right: &Neg{X: col("a")}}
	replaced := Transform(e, func(n Expr) (Expr, bool) {
		if c, ok := n.(*Column); ok && c.Name == "a" {
			return lit(types.IntV(7)), true
		}
		return nil, false
	})
	v, err := replaced.Eval(nil)
	if err != nil || v.I != 0 {
		t.Fatalf("7 + (-7) = %v, %v", v, err)
	}
	// Replacement is top-down: replacing the whole tree skips children.
	whole := Transform(e, func(n Expr) (Expr, bool) {
		if _, ok := n.(*Binary); ok {
			return lit(types.Str("gone")), true
		}
		return nil, false
	})
	if whole.String() != "'gone'" {
		t.Errorf("whole = %s", whole.String())
	}
	if Transform(nil, func(Expr) (Expr, bool) { return nil, false }) != nil {
		t.Error("Transform(nil) should be nil")
	}
	// Star and literal nodes pass through.
	if _, ok := Transform(Star{}, func(Expr) (Expr, bool) { return nil, false }).(Star); !ok {
		t.Error("Star not preserved")
	}
}

func TestAggregatesDedup(t *testing.T) {
	e := &Binary{Op: OpAdd,
		Left:  &Call{Name: "SUM", Args: []Expr{col("index")}},
		Right: &Binary{Op: OpMul, Left: &Call{Name: "SUM", Args: []Expr{col("index")}}, Right: &Call{Name: "COUNT", Args: []Expr{Star{}}}},
	}
	aggs := Aggregates(e)
	if len(aggs) != 2 {
		t.Fatalf("aggs = %v", aggs)
	}
	if aggs[0].Name != "SUM" || aggs[1].Name != "COUNT" {
		t.Errorf("order = %v, %v", aggs[0].Name, aggs[1].Name)
	}
	// DISTINCT variants are distinct keys.
	e2 := &Binary{Op: OpAdd,
		Left:  &Call{Name: "SUM", Args: []Expr{col("index")}},
		Right: &Call{Name: "SUM", Args: []Expr{col("index")}, Distinct: true},
	}
	if got := Aggregates(e2); len(got) != 2 {
		t.Errorf("distinct variants merged: %v", got)
	}
	if got := Aggregates(col("x")); len(got) != 0 {
		t.Errorf("no aggs expected: %v", got)
	}
}

func TestIsComparison(t *testing.T) {
	for _, op := range []BinOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpLike} {
		if !op.IsComparison() {
			t.Errorf("%v should be comparison", op)
		}
	}
	for _, op := range []BinOp{OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpOr} {
		if op.IsComparison() {
			t.Errorf("%v should not be comparison", op)
		}
	}
}

func TestCallStringDistinct(t *testing.T) {
	c := &Call{Name: "count", Args: []Expr{col("city")}, Distinct: true}
	if c.String() != "COUNT(DISTINCT city)" {
		t.Errorf("String = %q", c.String())
	}
}
