// Package expr implements the expression AST and evaluator of the SQL engine.
//
// Expressions are built by the parser, bound to a schema (resolving column
// names to positions), and then evaluated per row. Evaluation follows SQL
// three-valued logic: comparisons involving NULL yield NULL, and AND/OR use
// Kleene semantics. WHERE keeps a row only when the predicate is exactly TRUE.
package expr

import (
	"fmt"
	"strings"

	"scoop/internal/sql/types"
)

// Expr is a bound or unbound expression node.
type Expr interface {
	// Eval evaluates the expression against a row. Column references must
	// have been bound (see Bind) first.
	Eval(row types.Row) (types.Value, error)
	// String renders the expression as SQL-ish text.
	String() string
}

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpLike
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR", OpLike: "LIKE",
}

// String returns the SQL spelling of the operator.
func (op BinOp) String() string {
	if s, ok := binOpNames[op]; ok {
		return s
	}
	return fmt.Sprintf("BinOp(%d)", uint8(op))
}

// IsComparison reports whether the operator is a comparison usable in a
// pushdown predicate.
func (op BinOp) IsComparison() bool {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpLike:
		return true
	}
	return false
}

// Literal is a constant value.
type Literal struct{ Val types.Value }

// Eval returns the constant.
func (l *Literal) Eval(types.Row) (types.Value, error) { return l.Val, nil }

// String renders the literal; strings are single-quoted.
func (l *Literal) String() string {
	if l.Val.T == types.String {
		return "'" + strings.ReplaceAll(l.Val.S, "'", "''") + "'"
	}
	if l.Val.IsNull() {
		return "NULL"
	}
	return l.Val.AsString()
}

// Column is a reference to a named column. Index is resolved by Bind.
type Column struct {
	Name  string
	Index int // -1 until bound
}

// Eval returns the row value at the bound index.
func (c *Column) Eval(row types.Row) (types.Value, error) {
	if c.Index < 0 {
		return types.Value{}, fmt.Errorf("expr: column %q not bound", c.Name)
	}
	if c.Index >= len(row) {
		// Short row (dirty CSV): treat missing trailing fields as NULL.
		return types.NullValue(), nil
	}
	return row[c.Index], nil
}

// String returns the column name.
func (c *Column) String() string { return c.Name }

// Binary applies a binary operator.
type Binary struct {
	Op          BinOp
	Left, Right Expr
}

// Eval applies the operator with SQL NULL semantics.
func (b *Binary) Eval(row types.Row) (types.Value, error) {
	switch b.Op {
	case OpAnd, OpOr:
		return b.evalLogic(row)
	}
	l, err := b.Left.Eval(row)
	if err != nil {
		return types.Value{}, err
	}
	r, err := b.Right.Eval(row)
	if err != nil {
		return types.Value{}, err
	}
	if l.IsNull() || r.IsNull() {
		return types.NullValue(), nil
	}
	switch b.Op {
	case OpAdd, OpSub, OpMul, OpDiv:
		return evalArith(b.Op, l, r)
	case OpEq:
		return types.BoolV(l.Equal(r)), nil
	case OpNe:
		return types.BoolV(!l.Equal(r)), nil
	case OpLt:
		return types.BoolV(l.Compare(r) < 0), nil
	case OpLe:
		return types.BoolV(l.Compare(r) <= 0), nil
	case OpGt:
		return types.BoolV(l.Compare(r) > 0), nil
	case OpGe:
		return types.BoolV(l.Compare(r) >= 0), nil
	case OpLike:
		return types.BoolV(LikeMatch(l.AsString(), r.AsString())), nil
	default:
		return types.Value{}, fmt.Errorf("expr: unsupported operator %v", b.Op)
	}
}

func (b *Binary) evalLogic(row types.Row) (types.Value, error) {
	l, err := b.Left.Eval(row)
	if err != nil {
		return types.Value{}, err
	}
	lb, lok := l.AsBool()
	if b.Op == OpAnd && lok && !lb {
		return types.BoolV(false), nil // short-circuit FALSE AND x = FALSE
	}
	if b.Op == OpOr && lok && lb {
		return types.BoolV(true), nil // short-circuit TRUE OR x = TRUE
	}
	r, err := b.Right.Eval(row)
	if err != nil {
		return types.Value{}, err
	}
	rb, rok := r.AsBool()
	lNull := l.IsNull() || !lok
	rNull := r.IsNull() || !rok
	if b.Op == OpAnd {
		switch {
		case !lNull && !rNull:
			return types.BoolV(lb && rb), nil
		case !rNull && !rb:
			return types.BoolV(false), nil
		default:
			return types.NullValue(), nil // NULL AND TRUE = NULL
		}
	}
	// OR
	switch {
	case !lNull && !rNull:
		return types.BoolV(lb || rb), nil
	case !rNull && rb:
		return types.BoolV(true), nil
	default:
		return types.NullValue(), nil // NULL OR FALSE = NULL
	}
}

// String renders the binary expression parenthesized.
func (b *Binary) String() string {
	return "(" + b.Left.String() + " " + b.Op.String() + " " + b.Right.String() + ")"
}

func evalArith(op BinOp, l, r types.Value) (types.Value, error) {
	// Integer arithmetic stays integral except division.
	if l.T == types.Int && r.T == types.Int && op != OpDiv {
		switch op {
		case OpAdd:
			return types.IntV(l.I + r.I), nil
		case OpSub:
			return types.IntV(l.I - r.I), nil
		case OpMul:
			return types.IntV(l.I * r.I), nil
		}
	}
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return types.NullValue(), nil
	}
	switch op {
	case OpAdd:
		return types.FloatV(lf + rf), nil
	case OpSub:
		return types.FloatV(lf - rf), nil
	case OpMul:
		return types.FloatV(lf * rf), nil
	case OpDiv:
		if rf == 0 {
			return types.NullValue(), nil // SQL: division by zero -> NULL (engine policy)
		}
		return types.FloatV(lf / rf), nil
	}
	return types.Value{}, fmt.Errorf("expr: bad arithmetic op %v", op)
}

// Not negates a boolean expression (NULL stays NULL).
type Not struct{ X Expr }

// Eval implements NOT with three-valued logic.
func (n *Not) Eval(row types.Row) (types.Value, error) {
	v, err := n.X.Eval(row)
	if err != nil {
		return types.Value{}, err
	}
	if v.IsNull() {
		return types.NullValue(), nil
	}
	b, ok := v.AsBool()
	if !ok {
		return types.NullValue(), nil
	}
	return types.BoolV(!b), nil
}

// String renders NOT(x).
func (n *Not) String() string { return "NOT " + n.X.String() }

// Neg is unary numeric negation.
type Neg struct{ X Expr }

// Eval negates the numeric value.
func (n *Neg) Eval(row types.Row) (types.Value, error) {
	v, err := n.X.Eval(row)
	if err != nil {
		return types.Value{}, err
	}
	switch v.T {
	case types.Int:
		return types.IntV(-v.I), nil
	case types.Float:
		return types.FloatV(-v.F), nil
	case types.Null:
		return types.NullValue(), nil
	default:
		f, ok := v.AsFloat()
		if !ok {
			return types.NullValue(), nil
		}
		return types.FloatV(-f), nil
	}
}

// String renders -x.
func (n *Neg) String() string { return "-" + n.X.String() }

// IsNull tests for (non-)NULL.
type IsNull struct {
	X      Expr
	Negate bool // IS NOT NULL
}

// Eval returns TRUE/FALSE (never NULL).
func (i *IsNull) Eval(row types.Row) (types.Value, error) {
	v, err := i.X.Eval(row)
	if err != nil {
		return types.Value{}, err
	}
	return types.BoolV(v.IsNull() != i.Negate), nil
}

// String renders x IS [NOT] NULL.
func (i *IsNull) String() string {
	if i.Negate {
		return i.X.String() + " IS NOT NULL"
	}
	return i.X.String() + " IS NULL"
}

// In tests membership in a literal list.
type In struct {
	X      Expr
	List   []Expr
	Negate bool
}

// Eval implements IN with SQL NULL semantics.
func (in *In) Eval(row types.Row) (types.Value, error) {
	v, err := in.X.Eval(row)
	if err != nil {
		return types.Value{}, err
	}
	if v.IsNull() {
		return types.NullValue(), nil
	}
	sawNull := false
	for _, e := range in.List {
		ev, err := e.Eval(row)
		if err != nil {
			return types.Value{}, err
		}
		if ev.IsNull() {
			sawNull = true
			continue
		}
		if v.Equal(ev) {
			return types.BoolV(!in.Negate), nil
		}
	}
	if sawNull {
		return types.NullValue(), nil
	}
	return types.BoolV(in.Negate), nil
}

// String renders x [NOT] IN (...).
func (in *In) String() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.String()
	}
	not := ""
	if in.Negate {
		not = " NOT"
	}
	return in.X.String() + not + " IN (" + strings.Join(parts, ", ") + ")"
}

// Call is a scalar function call. Aggregate functions are parsed as Call but
// executed by the aggregation operator; Eval rejects them.
type Call struct {
	Name string // upper-cased
	Args []Expr
	// Distinct marks COUNT(DISTINCT x) / SUM(DISTINCT x).
	Distinct bool
}

// Aggregates recognized by the engine.
var aggregateFuncs = map[string]bool{
	"SUM": true, "COUNT": true, "MIN": true, "MAX": true, "AVG": true,
	"FIRST_VALUE": true,
}

// IsAggregate reports whether name is an aggregate function.
func IsAggregate(name string) bool { return aggregateFuncs[strings.ToUpper(name)] }

// Eval evaluates a scalar function.
func (c *Call) Eval(row types.Row) (types.Value, error) {
	if IsAggregate(c.Name) {
		return types.Value{}, fmt.Errorf("expr: aggregate %s evaluated outside aggregation", c.Name)
	}
	args := make([]types.Value, len(c.Args))
	for i, a := range c.Args {
		v, err := a.Eval(row)
		if err != nil {
			return types.Value{}, err
		}
		args[i] = v
	}
	return evalScalar(c.Name, args)
}

func evalScalar(name string, args []types.Value) (types.Value, error) {
	switch strings.ToUpper(name) {
	case "SUBSTRING", "SUBSTR":
		// SUBSTRING(str, start, len) — 0- or 1-based start both appear in the
		// wild; Spark's SUBSTRING(s, 0, n) == SUBSTRING(s, 1, n), which the
		// Table I queries rely on. Mirror that.
		if len(args) < 2 || len(args) > 3 {
			return types.Value{}, fmt.Errorf("expr: SUBSTRING wants 2 or 3 args, got %d", len(args))
		}
		if args[0].IsNull() || args[1].IsNull() {
			return types.NullValue(), nil
		}
		s := args[0].AsString()
		start, ok := args[1].AsInt()
		if !ok {
			return types.NullValue(), nil
		}
		if start > 0 {
			start-- // 1-based to 0-based
		} else if start < 0 {
			start = int64(len(s)) + start
			if start < 0 {
				start = 0
			}
		}
		if start >= int64(len(s)) {
			return types.Str(""), nil
		}
		end := int64(len(s))
		if len(args) == 3 {
			if args[2].IsNull() {
				return types.NullValue(), nil
			}
			n, ok := args[2].AsInt()
			if !ok {
				return types.NullValue(), nil
			}
			if n < 0 {
				n = 0
			}
			if start+n < end {
				end = start + n
			}
		}
		return types.Str(s[start:end]), nil
	case "UPPER":
		if err := wantArgs(name, args, 1); err != nil {
			return types.Value{}, err
		}
		if args[0].IsNull() {
			return types.NullValue(), nil
		}
		return types.Str(strings.ToUpper(args[0].AsString())), nil
	case "LOWER":
		if err := wantArgs(name, args, 1); err != nil {
			return types.Value{}, err
		}
		if args[0].IsNull() {
			return types.NullValue(), nil
		}
		return types.Str(strings.ToLower(args[0].AsString())), nil
	case "LENGTH":
		if err := wantArgs(name, args, 1); err != nil {
			return types.Value{}, err
		}
		if args[0].IsNull() {
			return types.NullValue(), nil
		}
		return types.IntV(int64(len(args[0].AsString()))), nil
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return types.NullValue(), nil
	case "ABS":
		if err := wantArgs(name, args, 1); err != nil {
			return types.Value{}, err
		}
		if args[0].IsNull() {
			return types.NullValue(), nil
		}
		if args[0].T == types.Int {
			if args[0].I < 0 {
				return types.IntV(-args[0].I), nil
			}
			return args[0], nil
		}
		f, ok := args[0].AsFloat()
		if !ok {
			return types.NullValue(), nil
		}
		if f < 0 {
			f = -f
		}
		return types.FloatV(f), nil
	case "CONCAT":
		var b strings.Builder
		for _, a := range args {
			if a.IsNull() {
				return types.NullValue(), nil
			}
			b.WriteString(a.AsString())
		}
		return types.Str(b.String()), nil
	case "TRIM":
		if err := wantArgs(name, args, 1); err != nil {
			return types.Value{}, err
		}
		if args[0].IsNull() {
			return types.NullValue(), nil
		}
		return types.Str(strings.TrimSpace(args[0].AsString())), nil
	default:
		return types.Value{}, fmt.Errorf("expr: unknown function %q", name)
	}
}

func wantArgs(name string, args []types.Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("expr: %s wants %d args, got %d", name, n, len(args))
	}
	return nil
}

// String renders the call.
func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	distinct := ""
	if c.Distinct {
		distinct = "DISTINCT "
	}
	return strings.ToUpper(c.Name) + "(" + distinct + strings.Join(parts, ", ") + ")"
}

// Star is the `*` in COUNT(*) or SELECT *.
type Star struct{}

// Eval is invalid for Star outside COUNT(*) handling.
func (Star) Eval(types.Row) (types.Value, error) {
	return types.Value{}, fmt.Errorf("expr: * outside COUNT(*)")
}

// String renders *.
func (Star) String() string { return "*" }

// LikeMatch implements SQL LIKE: '%' matches any run (including empty),
// '_' matches exactly one byte. Matching is case-sensitive, as in Spark SQL.
func LikeMatch(s, pattern string) bool {
	return likeMatch(s, pattern)
}

func likeMatch(s, p string) bool {
	// Iterative matcher with backtracking on '%' (same shape as the classic
	// wildcard-match algorithm; avoids regexp allocation on the hot path).
	var si, pi int
	star, sBack := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			sBack = si
			pi++
		case star >= 0:
			pi = star + 1
			sBack++
			si = sBack
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// Bind resolves all Column references in e against schema, returning an error
// for unknown columns. Binding mutates the AST in place (the AST is built
// per query and not shared).
func Bind(e Expr, schema *types.Schema) error {
	return Walk(e, func(n Expr) error {
		if c, ok := n.(*Column); ok {
			i := schema.Index(c.Name)
			if i < 0 {
				return fmt.Errorf("expr: unknown column %q", c.Name)
			}
			c.Index = i
		}
		return nil
	})
}

// Walk visits every node of the expression tree, parents first.
func Walk(e Expr, fn func(Expr) error) error {
	if e == nil {
		return nil
	}
	if err := fn(e); err != nil {
		return err
	}
	switch n := e.(type) {
	case *Binary:
		if err := Walk(n.Left, fn); err != nil {
			return err
		}
		return Walk(n.Right, fn)
	case *Not:
		return Walk(n.X, fn)
	case *Neg:
		return Walk(n.X, fn)
	case *IsNull:
		return Walk(n.X, fn)
	case *In:
		if err := Walk(n.X, fn); err != nil {
			return err
		}
		for _, a := range n.List {
			if err := Walk(a, fn); err != nil {
				return err
			}
		}
		return nil
	case *Call:
		for _, a := range n.Args {
			if err := Walk(a, fn); err != nil {
				return err
			}
		}
		return nil
	default:
		return nil
	}
}

// Columns returns the distinct column names referenced by the expression, in
// first-appearance order.
func Columns(e Expr) []string {
	var out []string
	seen := make(map[string]bool)
	_ = Walk(e, func(n Expr) error {
		if c, ok := n.(*Column); ok {
			key := strings.ToLower(c.Name)
			if !seen[key] {
				seen[key] = true
				out = append(out, c.Name)
			}
		}
		return nil
	})
	return out
}

// HasAggregate reports whether the expression contains an aggregate call.
func HasAggregate(e Expr) bool {
	found := false
	_ = Walk(e, func(n Expr) error {
		if c, ok := n.(*Call); ok && IsAggregate(c.Name) {
			found = true
		}
		return nil
	})
	return found
}

// EvalPredicate evaluates e as a WHERE predicate: the row passes only when
// the result is non-NULL TRUE.
func EvalPredicate(e Expr, row types.Row) (bool, error) {
	v, err := e.Eval(row)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	b, ok := v.AsBool()
	return ok && b, nil
}
