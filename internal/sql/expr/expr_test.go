package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"scoop/internal/sql/types"
)

var testSchema = types.NewSchema(
	types.Column{Name: "vid", Type: types.String},
	types.Column{Name: "index", Type: types.Float},
	types.Column{Name: "date", Type: types.String},
	types.Column{Name: "city", Type: types.String},
)

func testRow() types.Row {
	return types.Row{types.Str("V001"), types.FloatV(42.5), types.Str("2015-01-17 10:20:00"), types.Str("Rotterdam")}
}

func mustBind(t *testing.T, e Expr) Expr {
	t.Helper()
	if err := Bind(e, testSchema); err != nil {
		t.Fatal(err)
	}
	return e
}

func col(name string) *Column         { return &Column{Name: name, Index: -1} }
func lit(v types.Value) *Literal      { return &Literal{Val: v} }
func bin(op BinOp, l, r Expr) *Binary { return &Binary{Op: op, Left: l, Right: r} }

func TestColumnEval(t *testing.T) {
	c := mustBind(t, col("index"))
	v, err := c.Eval(testRow())
	if err != nil || v.F != 42.5 {
		t.Fatalf("Eval = %v, %v", v, err)
	}
	// Unbound column errors.
	if _, err := col("vid").Eval(testRow()); err == nil {
		t.Error("unbound column should error")
	}
	// Short row yields NULL.
	v, err = c.Eval(types.Row{types.Str("x")})
	if err != nil || !v.IsNull() {
		t.Errorf("short row = %v, %v; want NULL", v, err)
	}
}

func TestBindUnknownColumn(t *testing.T) {
	if err := Bind(col("missing"), testSchema); err == nil {
		t.Error("Bind(missing) should fail")
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		e    Expr
		want types.Value
	}{
		{bin(OpAdd, lit(types.IntV(2)), lit(types.IntV(3))), types.IntV(5)},
		{bin(OpSub, lit(types.IntV(2)), lit(types.IntV(3))), types.IntV(-1)},
		{bin(OpMul, lit(types.IntV(4)), lit(types.IntV(3))), types.IntV(12)},
		{bin(OpDiv, lit(types.IntV(7)), lit(types.IntV(2))), types.FloatV(3.5)},
		{bin(OpDiv, lit(types.IntV(7)), lit(types.IntV(0))), types.NullValue()},
		{bin(OpAdd, lit(types.FloatV(1.5)), lit(types.IntV(1))), types.FloatV(2.5)},
		{bin(OpAdd, lit(types.NullValue()), lit(types.IntV(1))), types.NullValue()},
		{bin(OpMul, lit(types.Str("3")), lit(types.IntV(2))), types.FloatV(6)},
		{bin(OpMul, lit(types.Str("junk")), lit(types.IntV(2))), types.NullValue()},
	}
	for _, c := range cases {
		v, err := c.e.Eval(nil)
		if err != nil {
			t.Errorf("%s: %v", c.e, err)
			continue
		}
		if !valueEq(v, c.want) {
			t.Errorf("%s = %v, want %v", c.e, v, c.want)
		}
	}
}

func valueEq(a, b types.Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	return a.T == b.T && a.Equal(b)
}

func TestComparisons(t *testing.T) {
	cases := []struct {
		op   BinOp
		l, r types.Value
		want types.Value
	}{
		{OpEq, types.IntV(2), types.IntV(2), types.BoolV(true)},
		{OpNe, types.IntV(2), types.IntV(2), types.BoolV(false)},
		{OpLt, types.Str("a"), types.Str("b"), types.BoolV(true)},
		{OpLe, types.IntV(2), types.IntV(2), types.BoolV(true)},
		{OpGt, types.FloatV(2.5), types.IntV(2), types.BoolV(true)},
		{OpGe, types.IntV(1), types.IntV(2), types.BoolV(false)},
		{OpEq, types.NullValue(), types.IntV(2), types.NullValue()},
		{OpLike, types.Str("2015-01-17"), types.Str("2015-01%"), types.BoolV(true)},
		{OpLike, types.Str("2015-02-17"), types.Str("2015-01%"), types.BoolV(false)},
	}
	for _, c := range cases {
		e := bin(c.op, lit(c.l), lit(c.r))
		v, err := e.Eval(nil)
		if err != nil {
			t.Errorf("%s: %v", e, err)
			continue
		}
		if !valueEq(v, c.want) {
			t.Errorf("%s = %v, want %v", e, v, c.want)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	T := lit(types.BoolV(true))
	F := lit(types.BoolV(false))
	N := lit(types.NullValue())
	cases := []struct {
		e    Expr
		want types.Value
	}{
		{bin(OpAnd, T, T), types.BoolV(true)},
		{bin(OpAnd, T, F), types.BoolV(false)},
		{bin(OpAnd, F, N), types.BoolV(false)}, // short circuit
		{bin(OpAnd, N, F), types.BoolV(false)}, // FALSE absorbs NULL
		{bin(OpAnd, N, T), types.NullValue()},
		{bin(OpAnd, T, N), types.NullValue()},
		{bin(OpOr, F, F), types.BoolV(false)},
		{bin(OpOr, T, N), types.BoolV(true)},
		{bin(OpOr, N, T), types.BoolV(true)},
		{bin(OpOr, N, F), types.NullValue()},
		{bin(OpOr, F, N), types.NullValue()},
	}
	for _, c := range cases {
		v, err := c.e.Eval(nil)
		if err != nil {
			t.Errorf("%s: %v", c.e, err)
			continue
		}
		if !valueEq(v, c.want) {
			t.Errorf("%s = %v, want %v", c.e, v, c.want)
		}
	}
}

func TestNot(t *testing.T) {
	v, _ := (&Not{X: lit(types.BoolV(true))}).Eval(nil)
	if v.B {
		t.Error("NOT true = true")
	}
	v, _ = (&Not{X: lit(types.NullValue())}).Eval(nil)
	if !v.IsNull() {
		t.Error("NOT NULL should be NULL")
	}
}

func TestNeg(t *testing.T) {
	v, _ := (&Neg{X: lit(types.IntV(5))}).Eval(nil)
	if v.I != -5 {
		t.Errorf("-5 = %v", v)
	}
	v, _ = (&Neg{X: lit(types.FloatV(2.5))}).Eval(nil)
	if v.F != -2.5 {
		t.Errorf("-2.5 = %v", v)
	}
	v, _ = (&Neg{X: lit(types.Str("3"))}).Eval(nil)
	if v.F != -3 {
		t.Errorf("-'3' = %v", v)
	}
	v, _ = (&Neg{X: lit(types.NullValue())}).Eval(nil)
	if !v.IsNull() {
		t.Error("-NULL should be NULL")
	}
}

func TestIsNull(t *testing.T) {
	v, _ := (&IsNull{X: lit(types.NullValue())}).Eval(nil)
	if !v.B {
		t.Error("NULL IS NULL = false")
	}
	v, _ = (&IsNull{X: lit(types.IntV(1)), Negate: true}).Eval(nil)
	if !v.B {
		t.Error("1 IS NOT NULL = false")
	}
}

func TestIn(t *testing.T) {
	in := &In{X: lit(types.Str("FRA")), List: []Expr{lit(types.Str("NED")), lit(types.Str("FRA"))}}
	v, _ := in.Eval(nil)
	if !v.B {
		t.Error("'FRA' IN (...) = false")
	}
	in.Negate = true
	v, _ = in.Eval(nil)
	if v.B {
		t.Error("'FRA' NOT IN (...) = true")
	}
	// Miss with NULL in list -> NULL.
	in2 := &In{X: lit(types.Str("X")), List: []Expr{lit(types.Str("Y")), lit(types.NullValue())}}
	v, _ = in2.Eval(nil)
	if !v.IsNull() {
		t.Error("IN with NULL member and no match should be NULL")
	}
	// NULL needle -> NULL.
	in3 := &In{X: lit(types.NullValue()), List: []Expr{lit(types.Str("Y"))}}
	v, _ = in3.Eval(nil)
	if !v.IsNull() {
		t.Error("NULL IN (...) should be NULL")
	}
}

func TestScalarFunctions(t *testing.T) {
	cases := []struct {
		name string
		args []types.Value
		want types.Value
	}{
		{"SUBSTRING", []types.Value{types.Str("2015-01-17"), types.IntV(0), types.IntV(7)}, types.Str("2015-01")},
		{"SUBSTRING", []types.Value{types.Str("2015-01-17"), types.IntV(1), types.IntV(7)}, types.Str("2015-01")},
		{"SUBSTRING", []types.Value{types.Str("2015-01-17"), types.IntV(6), types.IntV(2)}, types.Str("01")},
		{"SUBSTRING", []types.Value{types.Str("abc"), types.IntV(-2)}, types.Str("bc")},
		{"SUBSTRING", []types.Value{types.Str("abc"), types.IntV(10)}, types.Str("")},
		{"SUBSTRING", []types.Value{types.Str("abc"), types.IntV(2)}, types.Str("bc")},
		{"SUBSTRING", []types.Value{types.NullValue(), types.IntV(1)}, types.NullValue()},
		{"SUBSTR", []types.Value{types.Str("abcdef"), types.IntV(1), types.IntV(3)}, types.Str("abc")},
		{"UPPER", []types.Value{types.Str("fra")}, types.Str("FRA")},
		{"LOWER", []types.Value{types.Str("FRA")}, types.Str("fra")},
		{"LENGTH", []types.Value{types.Str("abc")}, types.IntV(3)},
		{"COALESCE", []types.Value{types.NullValue(), types.IntV(3)}, types.IntV(3)},
		{"COALESCE", []types.Value{types.NullValue()}, types.NullValue()},
		{"ABS", []types.Value{types.IntV(-4)}, types.IntV(4)},
		{"ABS", []types.Value{types.FloatV(-1.5)}, types.FloatV(1.5)},
		{"CONCAT", []types.Value{types.Str("a"), types.Str("b")}, types.Str("ab")},
		{"CONCAT", []types.Value{types.Str("a"), types.NullValue()}, types.NullValue()},
		{"TRIM", []types.Value{types.Str("  x ")}, types.Str("x")},
	}
	for _, c := range cases {
		args := make([]Expr, len(c.args))
		for i, a := range c.args {
			args[i] = lit(a)
		}
		e := &Call{Name: c.name, Args: args}
		v, err := e.Eval(nil)
		if err != nil {
			t.Errorf("%s: %v", e, err)
			continue
		}
		if !valueEq(v, c.want) {
			t.Errorf("%s = %v, want %v", e, v, c.want)
		}
	}
}

func TestCallErrors(t *testing.T) {
	if _, err := (&Call{Name: "NOPE", Args: nil}).Eval(nil); err == nil {
		t.Error("unknown function should error")
	}
	if _, err := (&Call{Name: "UPPER", Args: nil}).Eval(nil); err == nil {
		t.Error("UPPER() arity should error")
	}
	if _, err := (&Call{Name: "SUM", Args: []Expr{lit(types.IntV(1))}}).Eval(nil); err == nil {
		t.Error("aggregate outside aggregation should error")
	}
	if _, err := (Star{}).Eval(nil); err == nil {
		t.Error("Star eval should error")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"2015-01-17", "2015-01%", true},
		{"2015-01-17", "2015-01-%", true},
		{"2015-11-17", "2015-01%", false},
		{"Rotterdam", "Rotterdam", true},
		{"Rotterdam", "rotterdam", false}, // case-sensitive
		{"UKR", "U%", true},
		{"FRA", "U%", false},
		{"abc", "a_c", true},
		{"abc", "a_d", false},
		{"abc", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "", false},
		{"", "", true},
		{"aXbXc", "a%b%c", true},
		{"mississippi", "m%iss%pi", true},
		{"mississippi", "m%iss%pix", false},
		{"abc", "%%%", true},
		{"ab", "a%b%", true},
	}
	for _, c := range cases {
		if got := LikeMatch(c.s, c.p); got != c.want {
			t.Errorf("LikeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

// Property: a pattern equal to the string (no wildcards) always matches, and
// appending % keeps it matching.
func TestLikeProperties(t *testing.T) {
	clean := func(s string) string {
		return strings.Map(func(r rune) rune {
			if r == '%' || r == '_' {
				return 'x'
			}
			return r
		}, s)
	}
	exact := func(s string) bool {
		c := clean(s)
		return LikeMatch(c, c) && LikeMatch(c, c+"%") && LikeMatch(c, "%"+c)
	}
	if err := quick.Check(exact, nil); err != nil {
		t.Error(err)
	}
	prefix := func(a, b string) bool {
		ca, cb := clean(a), clean(b)
		return LikeMatch(ca+cb, ca+"%")
	}
	if err := quick.Check(prefix, nil); err != nil {
		t.Error(err)
	}
}

func TestWalkAndColumns(t *testing.T) {
	e := bin(OpAnd,
		bin(OpLike, col("date"), lit(types.Str("2015-01%"))),
		bin(OpEq, col("city"), col("city")),
	)
	cols := Columns(e)
	if len(cols) != 2 || cols[0] != "date" || cols[1] != "city" {
		t.Errorf("Columns = %v", cols)
	}
	n := 0
	_ = Walk(e, func(Expr) error { n++; return nil })
	if n != 7 {
		t.Errorf("Walk visited %d nodes, want 7", n)
	}
	// Walk covers In, Not, Neg, IsNull, Call.
	e2 := &Not{X: &In{X: col("vid"), List: []Expr{&Neg{X: lit(types.IntV(1))}}}}
	cols = Columns(e2)
	if len(cols) != 1 || cols[0] != "vid" {
		t.Errorf("Columns(e2) = %v", cols)
	}
	e3 := &IsNull{X: &Call{Name: "UPPER", Args: []Expr{col("city")}}}
	if got := Columns(e3); len(got) != 1 || got[0] != "city" {
		t.Errorf("Columns(e3) = %v", got)
	}
}

func TestHasAggregate(t *testing.T) {
	agg := &Call{Name: "sum", Args: []Expr{col("index")}}
	if !HasAggregate(agg) {
		t.Error("sum should be aggregate")
	}
	if HasAggregate(&Call{Name: "upper", Args: []Expr{col("city")}}) {
		t.Error("upper is not aggregate")
	}
	if !IsAggregate("First_Value") {
		t.Error("FIRST_VALUE should be aggregate")
	}
}

func TestEvalPredicate(t *testing.T) {
	e := mustBind(t, bin(OpAnd,
		bin(OpLike, col("date"), lit(types.Str("2015-01%"))),
		bin(OpEq, col("city"), lit(types.Str("Rotterdam"))),
	))
	ok, err := EvalPredicate(e, testRow())
	if err != nil || !ok {
		t.Fatalf("predicate = %v, %v", ok, err)
	}
	// NULL predicate rejects.
	n := mustBind(t, bin(OpEq, col("city"), lit(types.NullValue())))
	ok, err = EvalPredicate(n, testRow())
	if err != nil || ok {
		t.Errorf("NULL predicate accepted row: %v %v", ok, err)
	}
}

func TestStrings(t *testing.T) {
	e := bin(OpAnd,
		&Not{X: &IsNull{X: col("city"), Negate: true}},
		&In{X: col("vid"), List: []Expr{lit(types.Str("a'b"))}, Negate: true},
	)
	s := e.String()
	for _, want := range []string{"AND", "IS NOT NULL", "NOT IN", "'a''b'"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if lit(types.NullValue()).String() != "NULL" {
		t.Error("NULL literal string")
	}
	if (&Neg{X: col("index")}).String() != "-index" {
		t.Error("Neg string")
	}
	if BinOp(200).String() == "" {
		t.Error("unknown BinOp string should be non-empty")
	}
	if (Star{}).String() != "*" {
		t.Error("Star string")
	}
	if (&IsNull{X: col("x")}).String() != "x IS NULL" {
		t.Error("IsNull string")
	}
}
