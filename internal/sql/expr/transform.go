package expr

// Transform returns a copy of the expression tree in which every node for
// which fn returns a replacement is substituted. fn is applied top-down: when
// it replaces a node, the replacement's children are not visited. Nodes that
// are not replaced are shallow-copied so the input tree is never mutated.
func Transform(e Expr, fn func(Expr) (Expr, bool)) Expr {
	if e == nil {
		return nil
	}
	if repl, ok := fn(e); ok {
		return repl
	}
	switch n := e.(type) {
	case *Binary:
		return &Binary{Op: n.Op, Left: Transform(n.Left, fn), Right: Transform(n.Right, fn)}
	case *Not:
		return &Not{X: Transform(n.X, fn)}
	case *Neg:
		return &Neg{X: Transform(n.X, fn)}
	case *IsNull:
		return &IsNull{X: Transform(n.X, fn), Negate: n.Negate}
	case *In:
		list := make([]Expr, len(n.List))
		for i, a := range n.List {
			list[i] = Transform(a, fn)
		}
		return &In{X: Transform(n.X, fn), List: list, Negate: n.Negate}
	case *Call:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = Transform(a, fn)
		}
		return &Call{Name: n.Name, Args: args, Distinct: n.Distinct}
	case *Column:
		return &Column{Name: n.Name, Index: n.Index}
	case *Literal:
		return &Literal{Val: n.Val}
	default:
		return e
	}
}

// Aggregates returns the distinct aggregate calls in the expression, keyed
// and deduplicated by their String() rendering, in first-appearance order.
func Aggregates(e Expr) []*Call {
	var out []*Call
	seen := make(map[string]bool)
	_ = Walk(e, func(n Expr) error {
		if c, ok := n.(*Call); ok && IsAggregate(c.Name) {
			key := c.String()
			if !seen[key] {
				seen[key] = true
				out = append(out, c)
			}
		}
		return nil
	})
	return out
}
