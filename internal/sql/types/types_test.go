package types

import (
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		Null: "NULL", String: "STRING", Int: "BIGINT", Float: "DOUBLE", Bool: "BOOLEAN",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", ty, got, want)
		}
	}
	if got := Type(99).String(); got != "Type(99)" {
		t.Errorf("unknown type string = %q", got)
	}
}

func TestParseType(t *testing.T) {
	ok := map[string]Type{
		"string": String, "STRING": String, " varchar ": String, "text": String,
		"int": Int, "bigint": Int, "long": Int, "integer": Int,
		"float": Float, "double": Float, "real": Float, "decimal": Float,
		"bool": Bool, "boolean": Bool, "null": Null,
	}
	for in, want := range ok {
		got, err := ParseType(in)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Error("ParseType(blob) should fail")
	}
}

func TestValueConversions(t *testing.T) {
	if f, ok := IntV(7).AsFloat(); !ok || f != 7 {
		t.Errorf("IntV(7).AsFloat() = %v, %v", f, ok)
	}
	if f, ok := Str("3.5").AsFloat(); !ok || f != 3.5 {
		t.Errorf("Str(3.5).AsFloat() = %v, %v", f, ok)
	}
	if _, ok := Str("abc").AsFloat(); ok {
		t.Error("Str(abc).AsFloat() should fail")
	}
	if i, ok := FloatV(2.9).AsInt(); !ok || i != 2 {
		t.Errorf("FloatV(2.9).AsInt() = %v, %v", i, ok)
	}
	if i, ok := Str("41").AsInt(); !ok || i != 41 {
		t.Errorf("Str(41).AsInt() = %v, %v", i, ok)
	}
	if i, ok := Str("4.2e1").AsInt(); !ok || i != 42 {
		t.Errorf("Str(4.2e1).AsInt() = %v, %v", i, ok)
	}
	if b, ok := IntV(0).AsBool(); !ok || b {
		t.Errorf("IntV(0).AsBool() = %v, %v", b, ok)
	}
	if b, ok := Str("true").AsBool(); !ok || !b {
		t.Errorf("Str(true).AsBool() = %v, %v", b, ok)
	}
	if _, ok := NullValue().AsBool(); ok {
		t.Error("NULL.AsBool() should not be ok")
	}
	if f, ok := BoolV(true).AsFloat(); !ok || f != 1 {
		t.Errorf("BoolV(true).AsFloat() = %v, %v", f, ok)
	}
	if i, ok := BoolV(false).AsInt(); !ok || i != 0 {
		t.Errorf("BoolV(false).AsInt() = %v, %v", i, ok)
	}
}

func TestValueAsString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NullValue(), ""},
		{Str("hi"), "hi"},
		{IntV(-3), "-3"},
		{FloatV(1.5), "1.5"},
		{BoolV(true), "true"},
		{BoolV(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.AsString(); got != c.want {
			t.Errorf("%v.AsString() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{IntV(1), IntV(2), -1},
		{IntV(2), IntV(2), 0},
		{FloatV(2.5), IntV(2), 1},
		{Str("a"), Str("b"), -1},
		{Str("10"), IntV(9), 1},  // numeric coercion of string side
		{Str("abc"), IntV(9), 1}, // falls back to string compare: "abc" > "9"
		{NullValue(), IntV(0), -1},
		{IntV(0), NullValue(), 1},
		{NullValue(), NullValue(), 0},
		{BoolV(true), IntV(1), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if !IntV(3).Equal(FloatV(3)) {
		t.Error("IntV(3) should Equal FloatV(3)")
	}
}

// Property: Compare is antisymmetric and reflexive over int values.
func TestCompareProperties(t *testing.T) {
	anti := func(a, b int64) bool {
		return IntV(a).Compare(IntV(b)) == -IntV(b).Compare(IntV(a))
	}
	if err := quick.Check(anti, nil); err != nil {
		t.Error(err)
	}
	refl := func(a int64) bool { return IntV(a).Compare(IntV(a)) == 0 }
	if err := quick.Check(refl, nil); err != nil {
		t.Error(err)
	}
}

// Property: Coerce(AsString(v), t) round-trips ints and floats.
func TestCoerceRoundTrip(t *testing.T) {
	ints := func(i int64) bool {
		v := Coerce(IntV(i).AsString(), Int)
		return v.T == Int && v.I == i
	}
	if err := quick.Check(ints, nil); err != nil {
		t.Error(err)
	}
	floats := func(f float64) bool {
		v := Coerce(FloatV(f).AsString(), Float)
		return v.T == Float && (v.F == f || (v.F != v.F && f != f)) // NaN ok
	}
	if err := quick.Check(floats, nil); err != nil {
		t.Error(err)
	}
}

func TestCoerce(t *testing.T) {
	if v := Coerce("", String); v.T != String || v.S != "" {
		t.Errorf("Coerce empty string = %v", v)
	}
	if v := Coerce("", Int); !v.IsNull() {
		t.Errorf("Coerce empty int = %v, want NULL", v)
	}
	if v := Coerce("junk", Float); !v.IsNull() {
		t.Errorf("Coerce junk float = %v, want NULL", v)
	}
	if v := Coerce("3.9", Int); v.T != Int || v.I != 3 {
		t.Errorf("Coerce 3.9 int = %v", v)
	}
	if v := Coerce("true", Bool); v.T != Bool || !v.B {
		t.Errorf("Coerce true bool = %v", v)
	}
	if v := Coerce("yes", Bool); !v.IsNull() {
		t.Errorf("Coerce yes bool = %v, want NULL", v)
	}
	if v := Coerce("x", Type(42)); !v.IsNull() {
		t.Errorf("Coerce unknown type = %v, want NULL", v)
	}
}

func TestSchema(t *testing.T) {
	s := NewSchema(Column{"vid", String}, Column{"index", Float}, Column{"date", String})
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if i := s.Index("INDEX"); i != 1 {
		t.Errorf("Index(INDEX) = %d, want 1 (case-insensitive)", i)
	}
	if i := s.Index("missing"); i != -1 {
		t.Errorf("Index(missing) = %d, want -1", i)
	}
	names := s.Names()
	if len(names) != 3 || names[0] != "vid" || names[2] != "date" {
		t.Errorf("Names() = %v", names)
	}
	p, err := s.Project([]string{"date", "vid"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.Columns[0].Name != "date" || p.Columns[1].Name != "vid" {
		t.Errorf("Project = %v", p.Columns)
	}
	if _, err := s.Project([]string{"nope"}); err == nil {
		t.Error("Project(nope) should fail")
	}
	if got := s.String(); got != "vid STRING, index DOUBLE, date STRING" {
		t.Errorf("String() = %q", got)
	}
}

func TestParseSchema(t *testing.T) {
	s, err := ParseSchema("vid string, index double, sumHC float, n int")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Columns[1].Type != Float || s.Columns[3].Type != Int {
		t.Errorf("types = %v", s.Columns)
	}
	if _, err := ParseSchema("bad"); err == nil {
		t.Error("ParseSchema(bad) should fail")
	}
	if _, err := ParseSchema("a blob"); err == nil {
		t.Error("ParseSchema(a blob) should fail")
	}
	if _, err := ParseSchema(" , ,"); err == nil {
		t.Error("ParseSchema(empty) should fail")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{IntV(1), Str("x")}
	c := r.Clone()
	c[0] = IntV(2)
	if r[0].I != 1 {
		t.Error("Clone did not copy")
	}
}
