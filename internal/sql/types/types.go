// Package types defines the value, row and schema model shared by the SQL
// engine, the data sources and the pushdown filters.
//
// The model is deliberately small: the GridPocket workloads the paper targets
// (Table I) need strings, 64-bit integers, 64-bit floats and NULL. Values are
// represented by a compact tagged struct rather than interface{} so that hot
// loops (filter evaluation inside the storlet engine) do not allocate.
package types

import (
	"fmt"
	"strconv"
	"strings"
)

// Type identifies the runtime type of a Value.
type Type uint8

// Supported column types.
const (
	Null Type = iota
	String
	Int
	Float
	Bool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Null:
		return "NULL"
	case String:
		return "STRING"
	case Int:
		return "BIGINT"
	case Float:
		return "DOUBLE"
	case Bool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// ParseType maps a schema declaration name to a Type. It accepts the
// spellings used by the CSV data source schema strings.
func ParseType(s string) (Type, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "STRING", "TEXT", "VARCHAR":
		return String, nil
	case "INT", "INTEGER", "BIGINT", "LONG":
		return Int, nil
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL":
		return Float, nil
	case "BOOL", "BOOLEAN":
		return Bool, nil
	case "NULL":
		return Null, nil
	default:
		return Null, fmt.Errorf("types: unknown type %q", s)
	}
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	T Type
	S string
	I int64
	F float64
	B bool
}

// Convenience constructors.

// NullValue returns the SQL NULL value.
func NullValue() Value { return Value{} }

// Str returns a STRING value.
func Str(s string) Value { return Value{T: String, S: s} }

// IntV returns a BIGINT value.
func IntV(i int64) Value { return Value{T: Int, I: i} }

// FloatV returns a DOUBLE value.
func FloatV(f float64) Value { return Value{T: Float, F: f} }

// BoolV returns a BOOLEAN value.
func BoolV(b bool) Value { return Value{T: Bool, B: b} }

// IsNull reports whether v is the SQL NULL.
func (v Value) IsNull() bool { return v.T == Null }

// AsFloat converts numeric values to float64. Strings are parsed; failure
// yields NULL semantics via the ok result.
func (v Value) AsFloat() (float64, bool) {
	switch v.T {
	case Int:
		return float64(v.I), true
	case Float:
		return v.F, true
	case String:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
		return f, err == nil
	case Bool:
		if v.B {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// AsInt converts numeric values to int64.
func (v Value) AsInt() (int64, bool) {
	switch v.T {
	case Int:
		return v.I, true
	case Float:
		return int64(v.F), true
	case String:
		i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
		if err == nil {
			return i, true
		}
		f, ferr := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
		if ferr == nil {
			return int64(f), true
		}
		return 0, false
	case Bool:
		if v.B {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// AsString renders the value the way the CSV writer would.
func (v Value) AsString() string {
	switch v.T {
	case Null:
		return ""
	case String:
		return v.S
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Float:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case Bool:
		if v.B {
			return "true"
		}
		return "false"
	default:
		return ""
	}
}

// AsBool interprets the value as a boolean truth value.
func (v Value) AsBool() (bool, bool) {
	switch v.T {
	case Bool:
		return v.B, true
	case Int:
		return v.I != 0, true
	case Float:
		return v.F != 0, true
	case String:
		b, err := strconv.ParseBool(strings.ToLower(strings.TrimSpace(v.S)))
		return b, err == nil
	default:
		return false, false
	}
}

// Compare orders two values: -1 if v < o, 0 if equal, +1 if v > o.
// NULL compares less than everything and equal to NULL (total order used by
// ORDER BY; predicate evaluation handles NULL separately via three-valued
// logic in the expr package). Numeric comparison is used when both sides are
// numeric or parseable as numeric; otherwise string comparison applies.
func (v Value) Compare(o Value) int {
	if v.IsNull() || o.IsNull() {
		switch {
		case v.IsNull() && o.IsNull():
			return 0
		case v.IsNull():
			return -1
		default:
			return 1
		}
	}
	if isNumeric(v) && isNumeric(o) {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	// Mixed numeric/string: try to coerce the string side.
	if isNumeric(v) != isNumeric(o) {
		if a, aok := v.AsFloat(); aok {
			if b, bok := o.AsFloat(); bok {
				switch {
				case a < b:
					return -1
				case a > b:
					return 1
				default:
					return 0
				}
			}
		}
	}
	return strings.Compare(v.AsString(), o.AsString())
}

// Equal reports value equality under Compare semantics.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

func isNumeric(v Value) bool { return v.T == Int || v.T == Float || v.T == Bool }

// Row is a tuple of values positionally matching a Schema.
type Row []Value

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Column describes one schema column.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of named, typed columns.
type Schema struct {
	Columns []Column
	byName  map[string]int
}

// NewSchema builds a schema from columns. Column names are matched
// case-insensitively on lookup, mirroring SQL identifier semantics.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		s.byName[strings.ToLower(c.Name)] = i
	}
	return s
}

// ParseSchema parses "name type, name type, ..." declarations, e.g.
// "vid string, index double, date string".
func ParseSchema(decl string) (*Schema, error) {
	parts := strings.Split(decl, ",")
	cols := make([]Column, 0, len(parts))
	for _, p := range parts {
		fields := strings.Fields(p)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("types: bad column declaration %q", strings.TrimSpace(p))
		}
		t, err := ParseType(fields[1])
		if err != nil {
			return nil, err
		}
		cols = append(cols, Column{Name: fields[0], Type: t})
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("types: empty schema declaration")
	}
	return NewSchema(cols...), nil
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// Index returns the position of the named column, or -1.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// Project returns a new schema containing only the named columns, in the
// given order.
func (s *Schema) Project(names []string) (*Schema, error) {
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		i := s.Index(n)
		if i < 0 {
			return nil, fmt.Errorf("types: unknown column %q", n)
		}
		cols = append(cols, s.Columns[i])
	}
	return NewSchema(cols...), nil
}

// String renders the schema as a declaration string.
func (s *Schema) String() string {
	var b strings.Builder
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
	}
	return b.String()
}

// Coerce parses the raw CSV field text into a Value of the column type.
// Unparseable numerics become NULL (CSV data is dirty; the paper's ETL
// storlet cleanses on upload, but the engine must still be safe).
func Coerce(raw string, t Type) Value {
	if raw == "" {
		if t == String {
			return Str("")
		}
		return NullValue()
	}
	switch t {
	case String:
		return Str(raw)
	case Int:
		if i, err := strconv.ParseInt(raw, 10, 64); err == nil {
			return IntV(i)
		}
		if f, err := strconv.ParseFloat(raw, 64); err == nil {
			return IntV(int64(f))
		}
		return NullValue()
	case Float:
		if f, err := strconv.ParseFloat(raw, 64); err == nil {
			return FloatV(f)
		}
		return NullValue()
	case Bool:
		if b, err := strconv.ParseBool(strings.ToLower(raw)); err == nil {
			return BoolV(b)
		}
		return NullValue()
	default:
		return NullValue()
	}
}
