package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerSlotLeak targets the semaphore-acquire idiom the storlet engine
// uses for admission control: `slots <- struct{}{}` takes a concurrency slot.
// A bare (unconditional) acquire-send has no cancellation path — when the
// semaphore is full and the work is abandoned (caller times out, request
// context dies), the sender blocks forever and, if it is a goroutine, leaks
// with everything it captured. That is exactly the leak PR 5 fixed in
// Engine.run.
//
// The fix is to perform the acquire inside a select that can also take a
// cancel signal:
//
//	select {
//	case slots <- struct{}{}:
//	case <-ctx.Done():
//	    return ctx.Err()
//	}
//
// Releases (`<-slots`) are not flagged: a release on a channel sized to the
// acquires can never block.
var AnalyzerSlotLeak = &Analyzer{
	Name: "slotleak",
	Doc:  "semaphore acquires (ch <- struct{}{}) must select on a cancel signal",
	Run:  runSlotLeak,
}

func runSlotLeak(pass *Pass) {
	for _, file := range pass.Files {
		walkParents(file, func(n ast.Node, parents []ast.Node) bool {
			send, ok := n.(*ast.SendStmt)
			if !ok || !isEmptyStructSend(pass, send) {
				return true
			}
			// A send that IS a select comm clause has the select's other
			// cases as its escape hatch.
			for _, p := range parents {
				if cc, ok := p.(*ast.CommClause); ok && cc.Comm == send {
					return true
				}
			}
			name := "channel"
			if obj := identObj(pass.Info, send.Chan); obj != nil {
				name = "\"" + obj.Name() + "\""
			}
			pass.Reportf(send.Pos(), "blocking semaphore acquire on %s has no cancellation path; wrap the send in a select with a cancel/timeout case", name)
			return true
		})
	}
}

// isEmptyStructSend reports whether send pushes a struct{} value into a
// chan struct{} — the semaphore-slot signature. Channels carrying data are
// chanleak's territory, not slotleak's.
func isEmptyStructSend(pass *Pass, send *ast.SendStmt) bool {
	tv, ok := pass.Info.Types[send.Chan]
	if !ok || tv.Type == nil {
		return false
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok || ch.Dir() == types.RecvOnly {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
