package lint

import (
	"path/filepath"
	"testing"
)

// BenchmarkLoadFixture measures loading + type-checking the fixture module.
// The first iteration pays for the shared std-library importer cache; later
// iterations measure the per-module cost the gate actually repeats.
func BenchmarkLoadFixture(b *testing.B) {
	root := filepath.Join("testdata", "src", "fixture")
	for i := 0; i < b.N; i++ {
		if _, err := Load(root); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadRepo measures loading + type-checking the real module — the
// dominant cost of a scoop-lint run.
func BenchmarkLoadRepo(b *testing.B) {
	root := filepath.Join("..", "..")
	for i := 0; i < b.N; i++ {
		if _, err := Load(root); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildGraph measures whole-module call-graph construction (CHA
// interface fan-out included) on the real module, excluding the load.
func BenchmarkBuildGraph(b *testing.B) {
	pkgs, err := Load(filepath.Join("..", ".."))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildGraph(pkgs)
	}
}

// BenchmarkRunSuite measures the full eight-analyzer suite on the real
// module with a pre-loaded package set, i.e. pure analysis cost.
func BenchmarkRunSuite(b *testing.B) {
	pkgs, err := Load(filepath.Join("..", ".."))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := Run(pkgs, Analyzers()); len(diags) != 0 {
			b.Fatalf("unexpected findings: %v", diags)
		}
	}
}
