package lint

import (
	"path/filepath"
	"testing"
)

// BenchmarkLoadFixture measures loading + type-checking the fixture module
// with the package cache dropped each iteration. The first iteration pays
// for the shared std-library importer cache; later iterations measure the
// per-module cost a cold gate actually repeats.
func BenchmarkLoadFixture(b *testing.B) {
	root := filepath.Join("testdata", "src", "fixture")
	for i := 0; i < b.N; i++ {
		resetLoadCache()
		if _, err := Load(root); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadRepoCold measures loading + type-checking the real module
// with the package cache dropped each iteration — the dominant cost of an
// uncached scoop-lint run.
func BenchmarkLoadRepoCold(b *testing.B) {
	root := filepath.Join("..", "..")
	for i := 0; i < b.N; i++ {
		resetLoadCache()
		if _, err := Load(root); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadRepoWarm measures a Load of the unchanged real module with a
// primed package cache: a fingerprint stat-walk instead of a re-parse and
// re-typecheck. The cold/warm ratio is what the cached gate banks on.
func BenchmarkLoadRepoWarm(b *testing.B) {
	root := filepath.Join("..", "..")
	if _, err := Load(root); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Load(root); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildGraph measures whole-module call-graph construction (CHA
// interface fan-out included) on the real module, excluding the load.
func BenchmarkBuildGraph(b *testing.B) {
	pkgs, err := Load(filepath.Join("..", ".."))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildGraph(pkgs)
	}
}

// BenchmarkRunSuite measures the full analyzer suite on the real module with
// a pre-loaded package set, i.e. pure analysis cost.
func BenchmarkRunSuite(b *testing.B) {
	pkgs, err := Load(filepath.Join("..", ".."))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := Run(pkgs, Analyzers()); len(diags) != 0 {
			b.Fatalf("unexpected findings: %v", diags)
		}
	}
}
