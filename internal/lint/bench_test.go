package lint

import (
	"path/filepath"
	"testing"
	"time"

	"scoop/internal/lint/callgraph"
)

// BenchmarkLoadFixture measures loading + type-checking the fixture module
// with the package cache dropped each iteration. The first iteration pays
// for the shared std-library importer cache; later iterations measure the
// per-module cost a cold gate actually repeats.
func BenchmarkLoadFixture(b *testing.B) {
	root := filepath.Join("testdata", "src", "fixture")
	for i := 0; i < b.N; i++ {
		resetLoadCache()
		if _, err := Load(root); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadRepoCold measures loading + type-checking the real module
// with the package cache dropped each iteration — the dominant cost of an
// uncached scoop-lint run.
func BenchmarkLoadRepoCold(b *testing.B) {
	root := filepath.Join("..", "..")
	for i := 0; i < b.N; i++ {
		resetLoadCache()
		if _, err := Load(root); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadRepoWarm measures a Load of the unchanged real module with a
// primed package cache: a fingerprint stat-walk instead of a re-parse and
// re-typecheck. The cold/warm ratio is what the cached gate banks on.
func BenchmarkLoadRepoWarm(b *testing.B) {
	root := filepath.Join("..", "..")
	if _, err := Load(root); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Load(root); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildGraph measures whole-module call-graph construction (CHA
// interface fan-out included) on the real module, excluding the load.
func BenchmarkBuildGraph(b *testing.B) {
	pkgs, err := Load(filepath.Join("..", ".."))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildGraph(pkgs)
	}
}

// BenchmarkBuildGraphDevirt measures graph construction with the interface
// type-set dataflow pass enabled (the default): collect concrete-type sets,
// run the flow fixpoint, and emit Devirt edges where sets close. Compare
// against BenchmarkBuildGraphCHAOnly for the marginal cost allocfree's
// dispatch proofs buy.
func BenchmarkBuildGraphDevirt(b *testing.B) {
	pkgs, err := Load(filepath.Join("..", ".."))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildGraphOpts(pkgs, callgraph.Options{})
	}
}

// BenchmarkBuildGraphCHAOnly measures graph construction with
// devirtualization disabled — pure class-hierarchy fan-out, the pre-devirt
// baseline.
func BenchmarkBuildGraphCHAOnly(b *testing.B) {
	pkgs, err := Load(filepath.Join("..", ".."))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildGraphOpts(pkgs, callgraph.Options{NoDevirt: true})
	}
}

// TestWarmCacheGateLatency pins the property the verify.sh and CI allocfree
// steps depend on: once the cache is primed, replaying a single-analyzer
// verdict over an unchanged tree is a fingerprint stat-walk plus a JSON
// read — typically ~4ms here, well under the issue's ~10ms target. The
// assertion uses best-of-N at a 100ms ceiling so a preempted CI runner
// cannot flake it while a regression to re-analysis (tens of seconds cold)
// still fails decisively.
func TestWarmCacheGateLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test: skipped under -short")
	}
	root := writeMiniModule(t)
	touch(t, filepath.Join(root, "mini.go"), `package mini

//scoop:hotpath
func Sum(b []byte) int {
	n := 0
	for _, c := range b {
		n += int(c)
	}
	return n
}
`)
	cacheDir := filepath.Join(t.TempDir(), "cache")
	only := []*Analyzer{AnalyzerAllocFree}
	if _, _, hit, err := CachedRun(root, cacheDir, only); err != nil || hit {
		t.Fatalf("priming run: hit=%v err=%v, want cold miss", hit, err)
	}
	best := time.Duration(1<<62 - 1)
	for i := 0; i < 5; i++ {
		start := time.Now()
		_, _, hit, err := CachedRun(root, cacheDir, only)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		if !hit {
			t.Fatal("warm run over an unchanged tree must hit the cache")
		}
		if elapsed < best {
			best = elapsed
		}
	}
	if limit := 100 * time.Millisecond; best > limit {
		t.Errorf("best warm allocfree gate = %v, want < %v (cache replay must stay interactive)", best, limit)
	}
}

// BenchmarkRunSuite measures the full analyzer suite on the real module with
// a pre-loaded package set, i.e. pure analysis cost.
func BenchmarkRunSuite(b *testing.B) {
	pkgs, err := Load(filepath.Join("..", ".."))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := Run(pkgs, Analyzers()); len(diags) != 0 {
			b.Fatalf("unexpected findings: %v", diags)
		}
	}
}
