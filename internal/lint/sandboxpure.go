package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"scoop/internal/lint/callgraph"
)

// AnalyzerSandboxPure turns the paper's sandbox claim — storlets run
// "sandboxed ... next to the data" — into a compile-time invariant: no code
// reachable from a deployed storlet Filter may touch the host. The dynamic
// sandbox in internal/storlet (panic recovery, deadline, output cap) bounds
// how long and how loudly a filter runs, but nothing at runtime stops a
// filter from opening sockets or files; this analyzer closes that hole for
// every filter compiled into the module.
//
// Seeds are gathered from Engine.Register call sites: a concretely-typed
// argument seeds that type's Filter methods; an interface-typed argument
// (the deploy/factory path) conservatively seeds every module type
// implementing storlet.Filter. FilterFunc composite literals additionally
// seed the function stored in their Fn field, since that call is otherwise
// invisible (func-typed field). Reachability follows static calls, inline
// literals, and dispatch through module-declared interfaces; std-library
// interfaces (the io.Reader/io.Writer streams the engine hands in) are
// treated as opaque — the engine controls those values, and following their
// module-wide implementation sets would attribute the object store's own
// I/O to the filter.
var AnalyzerSandboxPure = &Analyzer{
	Name:      "sandboxpure",
	Doc:       "storlet filters must not reach os, os/exec, net, net/http, or syscall",
	RunModule: runSandboxPure,
}

// forbiddenPkgs are the host-touching packages a sandboxed filter must never
// reach.
var forbiddenPkgs = map[string]bool{
	"os":       true,
	"os/exec":  true,
	"net":      true,
	"net/http": true,
	"syscall":  true,
}

func runSandboxPure(pass *ModulePass) {
	sp := findStorletPkg(pass.Pkgs)
	if sp == nil {
		return // storlet package not in the analyzed set
	}
	filterIface, engineType := storletTypes(sp)
	if filterIface == nil || engineType == nil {
		return
	}
	seeds := collectSeeds(pass, sp, filterIface, engineType)
	if len(seeds) == 0 {
		return
	}

	tree := pass.Graph.Reach(seeds, func(e *callgraph.Edge) bool {
		switch e.Kind {
		case callgraph.Static, callgraph.Lit, callgraph.Iface:
			return true
		case callgraph.Devirt:
			// Devirtualized dispatch is value-proven (the receiver's concrete
			// type set is closed), so unlike module-gated Impl fan-out it is
			// followed unconditionally — including into std-declared
			// interfaces, which CHA treats as opaque.
			return true
		case callgraph.Impl:
			return pass.Graph.ModulePath(e.IfacePkg)
		}
		return false
	})

	// Deterministic report order: sort violating nodes by the position of
	// the edge that first reached them.
	type violation struct {
		node *callgraph.Node
		edge *callgraph.Edge
	}
	var violations []violation
	for n, via := range tree {
		if via == nil || n.Func == nil || n.Func.Pkg() == nil {
			continue
		}
		if forbiddenPkgs[n.Func.Pkg().Path()] {
			violations = append(violations, violation{n, via})
		}
	}
	sort.Slice(violations, func(i, j int) bool {
		if violations[i].edge.Site != violations[j].edge.Site {
			return violations[i].edge.Site < violations[j].edge.Site
		}
		return violations[i].node.Name() < violations[j].node.Name()
	})
	seen := map[string]bool{}
	for _, v := range violations {
		path := callgraph.Path(tree, v.node)
		key := pass.Posn(v.edge.Site) + "|" + v.node.Name()
		if seen[key] {
			continue
		}
		seen[key] = true
		pass.ReportPathf(v.edge.Site, pathStrings(path, v.node), "storlet sandbox violation: %s is reachable from deployed filter code (%s); filters must stay pure of os/net/syscall", v.node.Func.FullName(), describePath(path))
	}
}

// findStorletPkg locates the storlet engine package: exact module path
// first, then a unique "/storlet" suffix (the fixture module).
func findStorletPkg(pkgs []*Package) *Package {
	var suffixMatch *Package
	n := 0
	for _, p := range pkgs {
		if p.Path == "scoop/internal/storlet" {
			return p
		}
		if strings.HasSuffix(p.Path, "/storlet") {
			suffixMatch = p
			n++
		}
	}
	if n == 1 {
		return suffixMatch
	}
	return nil
}

// storletTypes resolves the Filter interface and Engine named type from the
// storlet package scope.
func storletTypes(sp *Package) (*types.Interface, types.Type) {
	scope := sp.Types.Scope()
	var iface *types.Interface
	if tn, ok := scope.Lookup("Filter").(*types.TypeName); ok {
		iface, _ = tn.Type().Underlying().(*types.Interface)
	}
	var engine types.Type
	if tn, ok := scope.Lookup("Engine").(*types.TypeName); ok {
		engine = tn.Type()
	}
	return iface, engine
}

// collectSeeds gathers the entry points of deployed filter code.
func collectSeeds(pass *ModulePass, sp *Package, filterIface *types.Interface, engineType types.Type) []*callgraph.Node {
	var seeds []*callgraph.Node
	addMethods := func(t types.Type) {
		for i := 0; i < filterIface.NumMethods(); i++ {
			m := filterIface.Method(i)
			obj, _, _ := types.LookupFieldOrMethod(t, true, m.Pkg(), m.Name())
			if fn, ok := obj.(*types.Func); ok {
				if n := pass.Graph.FuncNode(fn); n != nil && n.Body != nil {
					seeds = append(seeds, n)
				}
			}
		}
	}
	seedAllImpls := func() {
		for _, pkg := range pass.Pkgs {
			scope := pkg.Types.Scope()
			names := scope.Names()
			sort.Strings(names)
			for _, name := range names {
				tn, ok := scope.Lookup(name).(*types.TypeName)
				if !ok || tn.IsAlias() || types.IsInterface(tn.Type()) {
					continue
				}
				t := tn.Type()
				if types.Implements(t, filterIface) || types.Implements(types.NewPointer(t), filterIface) {
					addMethods(t)
				}
			}
		}
	}

	filterFuncType := sp.Types.Scope().Lookup("FilterFunc")
	for _, pkg := range pass.Pkgs {
		info := pkg.Info
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.CallExpr:
					if !isEngineRegister(info, x, engineType) || len(x.Args) == 0 {
						return true
					}
					tv, ok := info.Types[x.Args[0]]
					if !ok || tv.Type == nil {
						return true
					}
					if types.IsInterface(tv.Type) {
						// Deploy/factory path: any filter may arrive here.
						seedAllImpls()
					} else {
						addMethods(tv.Type)
					}
				case *ast.CompositeLit:
					// FilterFunc{Fn: ...}: seed the wrapped function, since
					// the Fn field call inside Invoke is a func-value call
					// the graph cannot resolve.
					if filterFuncType == nil {
						return true
					}
					tv, ok := info.Types[x]
					if !ok || tv.Type == nil || !sameNamed(tv.Type, filterFuncType.Type()) {
						return true
					}
					for _, elt := range x.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Fn" {
							continue
						}
						switch v := ast.Unparen(kv.Value).(type) {
						case *ast.FuncLit:
							if n := pass.Graph.LitNode(v); n != nil {
								seeds = append(seeds, n)
							}
						default:
							if fn, ok := identObj(info, kv.Value).(*types.Func); ok {
								if n := pass.Graph.FuncNode(fn); n != nil && n.Body != nil {
									seeds = append(seeds, n)
								}
							}
						}
					}
				}
				return true
			})
		}
	}
	return seeds
}

// isEngineRegister matches a call to (*Engine).Register of the storlet
// package.
func isEngineRegister(info *types.Info, call *ast.CallExpr, engineType types.Type) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Register" {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	return types.Identical(recv, engineType)
}

// sameNamed reports whether a and b are the same named type, ignoring
// pointers.
func sameNamed(a, b types.Type) bool {
	if pa, ok := a.(*types.Pointer); ok {
		a = pa.Elem()
	}
	if pb, ok := b.(*types.Pointer); ok {
		b = pb.Elem()
	}
	return types.Identical(a, b)
}

// describePath renders the BFS path into a readable "a -> b -> c" chain.
func describePath(path []*callgraph.Edge) string {
	if len(path) == 0 {
		return "registered directly"
	}
	parts := []string{path[0].Caller.Name()}
	for _, e := range path {
		parts = append(parts, e.Callee.Name())
	}
	return "path: " + strings.Join(parts, " -> ")
}
