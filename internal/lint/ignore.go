package lint

import (
	"strings"
)

// ignoreKey identifies a line covered by a //lint:ignore directive for one
// analyzer (or all analyzers via "*").
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// filterIgnored drops diagnostics whose position is covered by a valid
// `//lint:ignore <analyzer> <reason>` directive in pkg's files. A directive
// covers its own line and the line directly below it, so both end-of-line
// comments and a comment line above the offending statement work. Directives
// without a reason are ignored (the justification is the point).
func filterIgnored(pkg *Package, diags []Diagnostic) []Diagnostic {
	ignored := map[ignoreKey]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // no reason given: directive is invalid
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					ignored[ignoreKey{pos.Filename, line, fields[0]}] = true
				}
			}
		}
	}
	if len(ignored) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if ignored[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
			ignored[ignoreKey{d.Pos.Filename, d.Pos.Line, "*"}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
