package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package from the module under analysis.
type Package struct {
	// Path is the import path, e.g. "scoop/internal/objectstore".
	Path string
	// Dir is the package directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	imports []string
}

// Loading shares one FileSet and one std-library source importer across
// every Load call in the process: the standard library is parsed and
// type-checked once, not once per root. Before the call-graph layer this was
// a convenience; with graph construction on top, Load is the gate's hot path
// (see BenchmarkLoad*), and re-checking ~100 std packages per root dominated
// everything else. The mutex serializes Load — go/types check state and the
// importer cache are not safe for concurrent use.
var (
	loadMu   sync.Mutex
	loadFset = token.NewFileSet()
	loadStd  types.Importer
	// loadCache holds the last result per root, keyed by the mtime
	// fingerprint of the root's sources (see cache.go): a warm Load of an
	// unchanged tree is a stat-walk, not a re-parse and re-typecheck.
	// Returned packages are shared — callers must treat them as read-only,
	// which every analyzer already does.
	loadCache = map[string]loadCacheEntry{}
)

type loadCacheEntry struct {
	fingerprint string
	pkgs        []*Package
}

// resetLoadCache drops the in-process package cache (benchmarks use it to
// measure a cold load).
func resetLoadCache() {
	loadMu.Lock()
	defer loadMu.Unlock()
	loadCache = map[string]loadCacheEntry{}
}

// Load parses and type-checks every package under root (a module root or a
// subtree of one). Test files (*_test.go) are excluded: the analyzers target
// production request-path code, and test helpers intentionally discard errors
// and leak readers on purpose. Std-library dependencies are type-checked from
// source via go/importer, so no compiled export data is required. Each
// package is loaded and type-checked exactly once per call and the result is
// shared by every analyzer that Run executes. Results are memoized per root
// behind a source fingerprint (cache.go): repeat Loads of an unchanged tree
// return the cached package set.
func Load(root string) ([]*Package, error) {
	loadMu.Lock()
	defer loadMu.Unlock()

	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	fingerprint, err := Fingerprint(root)
	if err != nil {
		return nil, err
	}
	if e, ok := loadCache[root]; ok && e.fingerprint == fingerprint {
		return e.pkgs, nil
	}
	modRoot, modPath, err := findModule(root)
	if err != nil {
		return nil, err
	}

	fset := loadFset
	if loadStd == nil {
		loadStd = importer.ForCompiler(fset, "source", nil)
	}
	pkgs := map[string]*Package{}
	walkErr := filepath.WalkDir(root, func(dir string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := d.Name()
		if dir != root && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") || base == "testdata" || base == "vendor") {
			return filepath.SkipDir
		}
		pkg, err := parseDir(fset, dir, modRoot, modPath)
		if err != nil {
			return err
		}
		if pkg != nil {
			pkgs[pkg.Path] = pkg
		}
		return nil
	})
	if walkErr != nil {
		return nil, walkErr
	}

	ordered, err := topoSort(pkgs)
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{
		std:  loadStd,
		pkgs: pkgs,
	}
	for _, pkg := range ordered {
		if err := typeCheck(fset, pkg, imp); err != nil {
			return nil, err
		}
	}
	loadCache[root] = loadCacheEntry{fingerprint: fingerprint, pkgs: ordered}
	return ordered, nil
}

// findModule locates the enclosing go.mod and returns the module root
// directory and module path.
func findModule(dir string) (string, string, error) {
	for d := dir; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found at or above %s", dir)
		}
	}
}

// parseDir parses the non-test Go files of one directory. Returns nil if the
// directory holds no buildable Go files.
func parseDir(fset *token.FileSet, dir, modRoot, modPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	importSet := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(modRoot, dir)
	if err != nil {
		return nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}
	var imports []string
	for imp := range importSet {
		if imp == modPath || strings.HasPrefix(imp, modPath+"/") {
			imports = append(imports, imp)
		}
	}
	sort.Strings(imports)
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, imports: imports}, nil
}

// topoSort orders packages so every package is checked after its in-module
// dependencies. Imports that point outside the loaded set (possible when Load
// is rooted at a subtree) are ignored here and resolved by the importer.
func topoSort(pkgs map[string]*Package) ([]*Package, error) {
	var order []*Package
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(path string, chain []string) error
	visit = func(path string, chain []string) error {
		pkg, ok := pkgs[path]
		if !ok {
			return nil
		}
		switch state[path] {
		case 1:
			return fmt.Errorf("lint: import cycle: %s", strings.Join(append(chain, path), " -> "))
		case 2:
			return nil
		}
		state[path] = 1
		for _, dep := range pkg.imports {
			if err := visit(dep, append(chain, path)); err != nil {
				return err
			}
		}
		state[path] = 2
		order = append(order, pkg)
		return nil
	}
	var roots []string
	for path := range pkgs {
		roots = append(roots, path)
	}
	sort.Strings(roots)
	for _, path := range roots {
		if err := visit(path, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

func typeCheck(fset *token.FileSet, pkg *Package, imp types.Importer) error {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// moduleImporter serves module-internal imports from the already-checked set
// and defers everything else (the standard library) to the source importer.
type moduleImporter struct {
	std  types.Importer
	pkgs map[string]*Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.pkgs[path]; ok {
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: %s imported before it was type-checked", path)
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}
