package callgraph

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// miniSrc is a self-contained module exercising every edge kind: static
// calls, interface dispatch (CHA), function literals, and go statements.
const miniSrc = `package mini

type speaker interface{ speak() string }

type dog struct{}

func (dog) speak() string { return bark() }

func bark() string { return "woof" }

type cat struct{}

func (cat) speak() string { return "meow" }

func announce(s speaker) string { return s.speak() }

func chain() string { return announce(dog{}) }

func spawn() { go loop() }

func loop() { helper() }

func helper() {}

func litHolder() func() int {
	f := func() int { return inner() }
	return f
}

func inner() int { return 1 }
`

func buildMini(t *testing.T) (*Graph, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "mini.go", miniSrc, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{}
	pkg, err := conf.Check("mini", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	g := Build([]*Unit{{Path: "mini", Fset: fset, Files: []*ast.File{file}, Types: pkg, Info: info}})
	return g, pkg
}

// fn resolves a package-level function node by name.
func fn(t *testing.T, g *Graph, pkg *types.Package, name string) *Node {
	t.Helper()
	obj, ok := pkg.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("no function %q in mini package", name)
	}
	n := g.FuncNode(obj)
	if n == nil || n.Body == nil {
		t.Fatalf("function %q has no body node", name)
	}
	return n
}

// method resolves a method node by type and method name.
func method(t *testing.T, g *Graph, pkg *types.Package, typeName, methodName string) *Node {
	t.Helper()
	tn, ok := pkg.Scope().Lookup(typeName).(*types.TypeName)
	if !ok {
		t.Fatalf("no type %q", typeName)
	}
	obj, _, _ := types.LookupFieldOrMethod(tn.Type(), true, pkg, methodName)
	m, ok := obj.(*types.Func)
	if !ok {
		t.Fatalf("no method %s.%s", typeName, methodName)
	}
	n := g.FuncNode(m)
	if n == nil {
		t.Fatalf("no node for %s.%s", typeName, methodName)
	}
	return n
}

func TestStaticAndInterfaceReachability(t *testing.T) {
	g, pkg := buildMini(t)
	chain := fn(t, g, pkg, "chain")
	barkN := fn(t, g, pkg, "bark")
	dogSpeak := method(t, g, pkg, "dog", "speak")
	catSpeak := method(t, g, pkg, "cat", "speak")

	tree := g.Reach([]*Node{chain}, nil)
	for _, want := range []*Node{fn(t, g, pkg, "announce"), dogSpeak, catSpeak, barkN} {
		if _, ok := tree[want]; !ok {
			t.Errorf("full reach from chain misses %s", want.Name())
		}
	}
	if _, ok := tree[fn(t, g, pkg, "helper")]; ok {
		t.Errorf("reach from chain should not include helper")
	}

	// Path through CHA dispatch: chain -> announce -> dog.speak -> bark.
	path := Path(tree, barkN)
	if len(path) != 3 {
		t.Fatalf("Path(chain..bark) = %d edges, want 3", len(path))
	}
	if path[0].Callee.Func == nil || path[0].Callee.Func.Name() != "announce" {
		t.Errorf("path[0] callee = %s, want announce", path[0].Callee.Name())
	}
	if path[1].Kind != Impl || path[1].IfacePkg != "mini" {
		t.Errorf("path[1] = kind %v ifacePkg %q, want Impl dispatch declared in mini", path[1].Kind, path[1].IfacePkg)
	}
}

func TestReachFilterExcludesImplEdges(t *testing.T) {
	g, pkg := buildMini(t)
	chain := fn(t, g, pkg, "chain")
	tree := g.Reach([]*Node{chain}, func(e *Edge) bool { return e.Kind != Impl })
	if _, ok := tree[method(t, g, pkg, "dog", "speak")]; ok {
		t.Errorf("filtered reach should not cross Impl edges")
	}
	// The interface method itself is still visible through the Iface edge.
	if _, ok := tree[method(t, g, pkg, "speaker", "speak")]; !ok {
		t.Errorf("filtered reach should still include the interface method node")
	}
}

func TestGoFlagAndLiteralEdges(t *testing.T) {
	g, pkg := buildMini(t)

	spawn := fn(t, g, pkg, "spawn")
	var goEdge *Edge
	for _, e := range spawn.Out {
		if e.Callee.Func != nil && e.Callee.Func.Name() == "loop" {
			goEdge = e
		}
	}
	if goEdge == nil || !goEdge.Go {
		t.Fatalf("spawn -> loop edge missing or not marked Go: %+v", goEdge)
	}
	if _, ok := g.Reach([]*Node{fn(t, g, pkg, "loop")}, nil)[fn(t, g, pkg, "helper")]; !ok {
		t.Errorf("loop should reach helper")
	}

	holder := fn(t, g, pkg, "litHolder")
	var lit *Node
	for _, e := range holder.Out {
		if e.Kind == Lit {
			lit = e.Callee
		}
	}
	if lit == nil {
		t.Fatal("litHolder has no Lit edge")
	}
	if _, ok := g.Reach([]*Node{holder}, nil)[fn(t, g, pkg, "inner")]; !ok {
		t.Errorf("litHolder should reach inner through its literal")
	}
	if got := lit.Name(); got == "" {
		t.Errorf("literal node has empty name")
	}
}

// flowSrc is a second mini-module exercising the dataflow layer: func values
// flowing through plain assignments, struct fields, composite literals, call
// arguments, and var-to-var copies — plus one value that never receives a
// resolvable binding.
const flowSrc = `package flow

func target() int { return 1 }

func other() int { return 2 }

func viaVar() int {
	f := target
	g := f // var-to-var copy
	return g()
}

type holder struct {
	hook func() int
	name string
}

func viaField() int {
	h := holder{hook: target, name: "x"}
	return h.hook()
}

func viaPositional() int {
	h := holder{other, "y"}
	return h.hook()
}

func invoke(cb func() int) int { return cb() }

func viaArg() int { return invoke(target) }

func viaVariadic() int { return invokeAll(target, other) }

func invokeAll(cbs ...func() int) int {
	n := 0
	for _, cb := range cbs {
		n += cb()
	}
	return n
}

// external is never assigned in the module: an engine-supplied hook.
var external func() int

func viaUnresolved() int {
	if external != nil {
		return external()
	}
	return 0
}

func viaLit() int {
	f := func() int { return target() }
	return f()
}
`

func buildFlow(t *testing.T) (*Graph, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "flow.go", flowSrc, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{}
	pkg, err := conf.Check("flow", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	g := Build([]*Unit{{Path: "flow", Fset: fset, Files: []*ast.File{file}, Types: pkg, Info: info}})
	return g, pkg
}

// flowEdgeTo reports whether from has a Flow edge to a function named callee.
func flowEdgeTo(from *Node, callee string) bool {
	for _, e := range from.Out {
		if e.Kind == Flow && e.Callee.Func != nil && e.Callee.Func.Name() == callee {
			return true
		}
	}
	return false
}

func TestFlowEdgesThroughAssignments(t *testing.T) {
	g, pkg := buildFlow(t)
	via := fn(t, g, pkg, "viaVar")
	if !flowEdgeTo(via, "target") {
		t.Errorf("viaVar should have a Flow edge to target (var-to-var copy)")
	}
	if flowEdgeTo(via, "other") {
		t.Errorf("viaVar must not be connected to other")
	}
	if _, ok := g.Reach([]*Node{via}, nil)[fn(t, g, pkg, "target")]; !ok {
		t.Errorf("viaVar should reach target through the Flow edge")
	}
}

func TestFlowEdgesThroughStructFields(t *testing.T) {
	g, pkg := buildFlow(t)
	if !flowEdgeTo(fn(t, g, pkg, "viaField"), "target") {
		t.Errorf("viaField should resolve h.hook() to target (keyed composite literal)")
	}
	// The field's binding set is field-wide (flow-insensitive): both target
	// (keyed) and other (positional) flow into holder.hook, so both appear.
	if !flowEdgeTo(fn(t, g, pkg, "viaPositional"), "other") {
		t.Errorf("viaPositional should resolve h.hook() to other (positional composite literal)")
	}
}

func TestFlowEdgesThroughCallArguments(t *testing.T) {
	g, pkg := buildFlow(t)
	invoke := fn(t, g, pkg, "invoke")
	if !flowEdgeTo(invoke, "target") {
		t.Errorf("invoke's cb() should resolve to target (call-argument binding)")
	}
	all := fn(t, g, pkg, "invokeAll")
	for _, want := range []string{"target", "other"} {
		if !flowEdgeTo(all, want) {
			t.Errorf("invokeAll's cb() should resolve to %s (variadic binding)", want)
		}
	}
	if _, ok := g.Reach([]*Node{fn(t, g, pkg, "viaArg")}, nil)[fn(t, g, pkg, "target")]; !ok {
		t.Errorf("viaArg should reach target through invoke's parameter")
	}
}

// TestUnresolvedFuncValueStaysUnresolved is the negative case: a func value
// never assigned a resolvable function produces no edges — the call site is
// unresolved, not wrongly connected and not wrongly pruned elsewhere.
func TestUnresolvedFuncValueStaysUnresolved(t *testing.T) {
	g, pkg := buildFlow(t)
	via := fn(t, g, pkg, "viaUnresolved")
	for _, e := range via.Out {
		if e.Kind == Flow {
			t.Errorf("viaUnresolved should have no Flow edges, got one to %s", e.Callee.Name())
		}
	}
	// The unresolved value must not contaminate resolved sites: viaVar's
	// edges are unaffected by external's presence.
	if !flowEdgeTo(fn(t, g, pkg, "viaVar"), "target") {
		t.Errorf("resolved sites must keep their edges when an unresolved value exists")
	}
}

func TestReachFilterExcludesFlowEdges(t *testing.T) {
	g, pkg := buildFlow(t)
	via := fn(t, g, pkg, "viaVar")
	tree := g.Reach([]*Node{via}, func(e *Edge) bool { return e.Kind != Flow })
	if _, ok := tree[fn(t, g, pkg, "target")]; ok {
		t.Errorf("filtered reach should not cross Flow edges")
	}
	// Path through a Flow edge reconstructs with the flow kind visible.
	full := g.Reach([]*Node{via}, nil)
	path := Path(full, fn(t, g, pkg, "target"))
	if len(path) != 1 || path[0].Kind != Flow {
		t.Fatalf("Path(viaVar..target) = %v, want one Flow edge", path)
	}
	if path[0].Kind.String() != "flow" {
		t.Errorf("Flow kind renders %q, want \"flow\"", path[0].Kind.String())
	}
}

func TestFlowThroughLiteralBinding(t *testing.T) {
	g, pkg := buildFlow(t)
	via := fn(t, g, pkg, "viaLit")
	tree := g.Reach([]*Node{via}, nil)
	if _, ok := tree[fn(t, g, pkg, "target")]; !ok {
		t.Errorf("viaLit should reach target through the literal bound to f")
	}
}
