package callgraph

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// miniSrc is a self-contained module exercising every edge kind: static
// calls, interface dispatch (CHA), function literals, and go statements.
const miniSrc = `package mini

type speaker interface{ speak() string }

type dog struct{}

func (dog) speak() string { return bark() }

func bark() string { return "woof" }

type cat struct{}

func (cat) speak() string { return "meow" }

func announce(s speaker) string { return s.speak() }

func chain() string { return announce(dog{}) }

func spawn() { go loop() }

func loop() { helper() }

func helper() {}

func litHolder() func() int {
	f := func() int { return inner() }
	return f
}

func inner() int { return 1 }
`

func buildMini(t *testing.T) (*Graph, *types.Package) {
	return buildSrc(t, "mini", miniSrc, Options{})
}

// buildSrc type-checks a single-file module and builds its call graph.
func buildSrc(t *testing.T, path, src string, opts Options) (*Graph, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{}
	pkg, err := conf.Check(path, fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	g := BuildWith([]*Unit{{Path: path, Fset: fset, Files: []*ast.File{file}, Types: pkg, Info: info}}, opts)
	return g, pkg
}

// fn resolves a package-level function node by name.
func fn(t *testing.T, g *Graph, pkg *types.Package, name string) *Node {
	t.Helper()
	obj, ok := pkg.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("no function %q in mini package", name)
	}
	n := g.FuncNode(obj)
	if n == nil || n.Body == nil {
		t.Fatalf("function %q has no body node", name)
	}
	return n
}

// method resolves a method node by type and method name.
func method(t *testing.T, g *Graph, pkg *types.Package, typeName, methodName string) *Node {
	t.Helper()
	tn, ok := pkg.Scope().Lookup(typeName).(*types.TypeName)
	if !ok {
		t.Fatalf("no type %q", typeName)
	}
	obj, _, _ := types.LookupFieldOrMethod(tn.Type(), true, pkg, methodName)
	m, ok := obj.(*types.Func)
	if !ok {
		t.Fatalf("no method %s.%s", typeName, methodName)
	}
	n := g.FuncNode(m)
	if n == nil {
		t.Fatalf("no node for %s.%s", typeName, methodName)
	}
	return n
}

func TestStaticAndInterfaceReachability(t *testing.T) {
	// NoDevirt pins the CHA fan-out baseline: in the default build the
	// dataflow layer closes announce's parameter to {dog} and the dispatch
	// devirtualizes (see TestDevirt*). CHA remains the fallback for open
	// sets, so its shape stays pinned here.
	g, pkg := buildSrc(t, "mini", miniSrc, Options{NoDevirt: true})
	chain := fn(t, g, pkg, "chain")
	barkN := fn(t, g, pkg, "bark")
	dogSpeak := method(t, g, pkg, "dog", "speak")
	catSpeak := method(t, g, pkg, "cat", "speak")

	tree := g.Reach([]*Node{chain}, nil)
	for _, want := range []*Node{fn(t, g, pkg, "announce"), dogSpeak, catSpeak, barkN} {
		if _, ok := tree[want]; !ok {
			t.Errorf("full reach from chain misses %s", want.Name())
		}
	}
	if _, ok := tree[fn(t, g, pkg, "helper")]; ok {
		t.Errorf("reach from chain should not include helper")
	}

	// Path through CHA dispatch: chain -> announce -> dog.speak -> bark.
	path := Path(tree, barkN)
	if len(path) != 3 {
		t.Fatalf("Path(chain..bark) = %d edges, want 3", len(path))
	}
	if path[0].Callee.Func == nil || path[0].Callee.Func.Name() != "announce" {
		t.Errorf("path[0] callee = %s, want announce", path[0].Callee.Name())
	}
	if path[1].Kind != Impl || path[1].IfacePkg != "mini" {
		t.Errorf("path[1] = kind %v ifacePkg %q, want Impl dispatch declared in mini", path[1].Kind, path[1].IfacePkg)
	}
}

func TestReachFilterExcludesImplEdges(t *testing.T) {
	g, pkg := buildSrc(t, "mini", miniSrc, Options{NoDevirt: true})
	chain := fn(t, g, pkg, "chain")
	tree := g.Reach([]*Node{chain}, func(e *Edge) bool { return e.Kind != Impl })
	if _, ok := tree[method(t, g, pkg, "dog", "speak")]; ok {
		t.Errorf("filtered reach should not cross Impl edges")
	}
	// The interface method itself is still visible through the Iface edge.
	if _, ok := tree[method(t, g, pkg, "speaker", "speak")]; !ok {
		t.Errorf("filtered reach should still include the interface method node")
	}
}

func TestGoFlagAndLiteralEdges(t *testing.T) {
	g, pkg := buildMini(t)

	spawn := fn(t, g, pkg, "spawn")
	var goEdge *Edge
	for _, e := range spawn.Out {
		if e.Callee.Func != nil && e.Callee.Func.Name() == "loop" {
			goEdge = e
		}
	}
	if goEdge == nil || !goEdge.Go {
		t.Fatalf("spawn -> loop edge missing or not marked Go: %+v", goEdge)
	}
	if _, ok := g.Reach([]*Node{fn(t, g, pkg, "loop")}, nil)[fn(t, g, pkg, "helper")]; !ok {
		t.Errorf("loop should reach helper")
	}

	holder := fn(t, g, pkg, "litHolder")
	var lit *Node
	for _, e := range holder.Out {
		if e.Kind == Lit {
			lit = e.Callee
		}
	}
	if lit == nil {
		t.Fatal("litHolder has no Lit edge")
	}
	if _, ok := g.Reach([]*Node{holder}, nil)[fn(t, g, pkg, "inner")]; !ok {
		t.Errorf("litHolder should reach inner through its literal")
	}
	if got := lit.Name(); got == "" {
		t.Errorf("literal node has empty name")
	}
}

// flowSrc is a second mini-module exercising the dataflow layer: func values
// flowing through plain assignments, struct fields, composite literals, call
// arguments, and var-to-var copies — plus one value that never receives a
// resolvable binding.
const flowSrc = `package flow

func target() int { return 1 }

func other() int { return 2 }

func viaVar() int {
	f := target
	g := f // var-to-var copy
	return g()
}

type holder struct {
	hook func() int
	name string
}

func viaField() int {
	h := holder{hook: target, name: "x"}
	return h.hook()
}

func viaPositional() int {
	h := holder{other, "y"}
	return h.hook()
}

func invoke(cb func() int) int { return cb() }

func viaArg() int { return invoke(target) }

func viaVariadic() int { return invokeAll(target, other) }

func invokeAll(cbs ...func() int) int {
	n := 0
	for _, cb := range cbs {
		n += cb()
	}
	return n
}

// external is never assigned in the module: an engine-supplied hook.
var external func() int

func viaUnresolved() int {
	if external != nil {
		return external()
	}
	return 0
}

func viaLit() int {
	f := func() int { return target() }
	return f()
}
`

func buildFlow(t *testing.T) (*Graph, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "flow.go", flowSrc, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{}
	pkg, err := conf.Check("flow", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	g := Build([]*Unit{{Path: "flow", Fset: fset, Files: []*ast.File{file}, Types: pkg, Info: info}})
	return g, pkg
}

// flowEdgeTo reports whether from has a Flow edge to a function named callee.
func flowEdgeTo(from *Node, callee string) bool {
	for _, e := range from.Out {
		if e.Kind == Flow && e.Callee.Func != nil && e.Callee.Func.Name() == callee {
			return true
		}
	}
	return false
}

func TestFlowEdgesThroughAssignments(t *testing.T) {
	g, pkg := buildFlow(t)
	via := fn(t, g, pkg, "viaVar")
	if !flowEdgeTo(via, "target") {
		t.Errorf("viaVar should have a Flow edge to target (var-to-var copy)")
	}
	if flowEdgeTo(via, "other") {
		t.Errorf("viaVar must not be connected to other")
	}
	if _, ok := g.Reach([]*Node{via}, nil)[fn(t, g, pkg, "target")]; !ok {
		t.Errorf("viaVar should reach target through the Flow edge")
	}
}

func TestFlowEdgesThroughStructFields(t *testing.T) {
	g, pkg := buildFlow(t)
	if !flowEdgeTo(fn(t, g, pkg, "viaField"), "target") {
		t.Errorf("viaField should resolve h.hook() to target (keyed composite literal)")
	}
	// The field's binding set is field-wide (flow-insensitive): both target
	// (keyed) and other (positional) flow into holder.hook, so both appear.
	if !flowEdgeTo(fn(t, g, pkg, "viaPositional"), "other") {
		t.Errorf("viaPositional should resolve h.hook() to other (positional composite literal)")
	}
}

func TestFlowEdgesThroughCallArguments(t *testing.T) {
	g, pkg := buildFlow(t)
	invoke := fn(t, g, pkg, "invoke")
	if !flowEdgeTo(invoke, "target") {
		t.Errorf("invoke's cb() should resolve to target (call-argument binding)")
	}
	all := fn(t, g, pkg, "invokeAll")
	for _, want := range []string{"target", "other"} {
		if !flowEdgeTo(all, want) {
			t.Errorf("invokeAll's cb() should resolve to %s (variadic binding)", want)
		}
	}
	if _, ok := g.Reach([]*Node{fn(t, g, pkg, "viaArg")}, nil)[fn(t, g, pkg, "target")]; !ok {
		t.Errorf("viaArg should reach target through invoke's parameter")
	}
}

// TestUnresolvedFuncValueStaysUnresolved is the negative case: a func value
// never assigned a resolvable function produces no edges — the call site is
// unresolved, not wrongly connected and not wrongly pruned elsewhere.
func TestUnresolvedFuncValueStaysUnresolved(t *testing.T) {
	g, pkg := buildFlow(t)
	via := fn(t, g, pkg, "viaUnresolved")
	for _, e := range via.Out {
		if e.Kind == Flow {
			t.Errorf("viaUnresolved should have no Flow edges, got one to %s", e.Callee.Name())
		}
	}
	// The unresolved value must not contaminate resolved sites: viaVar's
	// edges are unaffected by external's presence.
	if !flowEdgeTo(fn(t, g, pkg, "viaVar"), "target") {
		t.Errorf("resolved sites must keep their edges when an unresolved value exists")
	}
}

func TestReachFilterExcludesFlowEdges(t *testing.T) {
	g, pkg := buildFlow(t)
	via := fn(t, g, pkg, "viaVar")
	tree := g.Reach([]*Node{via}, func(e *Edge) bool { return e.Kind != Flow })
	if _, ok := tree[fn(t, g, pkg, "target")]; ok {
		t.Errorf("filtered reach should not cross Flow edges")
	}
	// Path through a Flow edge reconstructs with the flow kind visible.
	full := g.Reach([]*Node{via}, nil)
	path := Path(full, fn(t, g, pkg, "target"))
	if len(path) != 1 || path[0].Kind != Flow {
		t.Fatalf("Path(viaVar..target) = %v, want one Flow edge", path)
	}
	if path[0].Kind.String() != "flow" {
		t.Errorf("Flow kind renders %q, want \"flow\"", path[0].Kind.String())
	}
}

func TestFlowThroughLiteralBinding(t *testing.T) {
	g, pkg := buildFlow(t)
	via := fn(t, g, pkg, "viaLit")
	tree := g.Reach([]*Node{via}, nil)
	if _, ok := tree[fn(t, g, pkg, "target")]; !ok {
		t.Errorf("viaLit should reach target through the literal bound to f")
	}
}

// devirtSrc exercises interface type-set devirtualization: closed sets from
// direct assignment, reassignment, composite-literal fields, and static call
// args resolve to Devirt edges; open sets (call results, escaped addresses,
// method parameters) keep the CHA fan-out.
const devirtSrc = `package devirt

type animal interface{ speak() string }

type dog struct{}

func (dog) speak() string { return "woof" }

type cat struct{}

func (cat) speak() string { return "meow" }

func closed() string {
	var a animal = dog{}
	return a.speak()
}

func twoTypes(cond bool) string {
	var a animal = dog{}
	if cond {
		a = cat{}
	}
	return a.speak()
}

type holder struct{ pet animal }

func viaField() string {
	h := holder{pet: cat{}}
	return h.pet.speak()
}

func feed(p animal) string { return p.speak() }

func callArg() string { return feed(dog{}) }

func pick() animal { return dog{} }

func openCallResult() string {
	a := pick()
	return a.speak()
}

type keeper struct{}

func (keeper) tend(p animal) string { return p.speak() }

func escaped() string {
	var a animal = dog{}
	mutate(&a)
	return a.speak()
}

func mutate(p *animal) { *p = cat{} }
`

// outEdges collects from's out-edges of one kind, keyed by callee name.
func outEdges(from *Node, kind EdgeKind) map[string]int {
	out := map[string]int{}
	for _, e := range from.Out {
		if e.Kind == kind && e.Callee.Func != nil {
			out[e.Callee.Func.Name()]++
		}
	}
	return out
}

func TestDevirtClosedSetReplacesCHAFanOut(t *testing.T) {
	g, pkg := buildSrc(t, "devirt", devirtSrc, Options{})
	closed := fn(t, g, pkg, "closed")

	dv := devirtTargets(t, g, closed)
	if len(dv) != 1 || dv[0] != method(t, g, pkg, "dog", "speak") {
		t.Fatalf("closed() devirt targets = %v, want exactly (devirt.dog).speak", names(dv))
	}
	if n := len(outEdges(closed, Iface)) + len(outEdges(closed, Impl)); n != 0 {
		t.Errorf("devirtualized site still has %d Iface/Impl edges", n)
	}
	tree := g.Reach([]*Node{closed}, nil)
	if _, ok := tree[method(t, g, pkg, "cat", "speak")]; ok {
		t.Errorf("closed() must not reach (devirt.cat).speak: the set is exactly {dog}")
	}
}

func TestDevirtReassignmentUnionsTypes(t *testing.T) {
	g, pkg := buildSrc(t, "devirt", devirtSrc, Options{})
	dv := devirtTargets(t, g, fn(t, g, pkg, "twoTypes"))
	want := map[*Node]bool{
		method(t, g, pkg, "dog", "speak"): true,
		method(t, g, pkg, "cat", "speak"): true,
	}
	for _, n := range dv {
		delete(want, n)
	}
	if len(dv) != 2 || len(want) != 0 {
		t.Fatalf("twoTypes devirt targets = %v, want both speak implementations", names(dv))
	}
	got := outEdges(fn(t, g, pkg, "twoTypes"), Devirt)
	if got["speak"] != 2 {
		t.Fatalf("twoTypes should devirtualize to 2 implementations, got %v", got)
	}
}

func TestDevirtThroughStructFieldAndCallArg(t *testing.T) {
	g, pkg := buildSrc(t, "devirt", devirtSrc, Options{})

	dv := devirtTargets(t, g, fn(t, g, pkg, "viaField"))
	if len(dv) != 1 || dv[0] != method(t, g, pkg, "cat", "speak") {
		t.Fatalf("viaField devirt targets = %v, want exactly (devirt.cat).speak", names(dv))
	}

	// feed's parameter closes to {dog}: its only call site passes dog{}.
	dv = devirtTargets(t, g, fn(t, g, pkg, "feed"))
	if len(dv) != 1 || dv[0] != method(t, g, pkg, "dog", "speak") {
		t.Fatalf("feed devirt targets = %v, want exactly (devirt.dog).speak", names(dv))
	}
	tree := g.Reach([]*Node{fn(t, g, pkg, "callArg")}, nil)
	if _, ok := tree[method(t, g, pkg, "cat", "speak")]; ok {
		t.Errorf("callArg must not reach cat.speak through feed's devirtualized parameter")
	}
}

// Open sets are the honest negative: no Devirt edges, CHA fan-out preserved.
func TestDevirtOpenSetsKeepCHA(t *testing.T) {
	g, pkg := buildSrc(t, "devirt", devirtSrc, Options{})
	open := []*Node{
		fn(t, g, pkg, "openCallResult"),     // interface-typed call result
		fn(t, g, pkg, "escaped"),            // &a escapes to an untracked writer
		method(t, g, pkg, "keeper", "tend"), // method params dispatch through unseen interfaces
	}
	for _, n := range open {
		if dv := outEdges(n, Devirt); len(dv) != 0 {
			t.Errorf("%s: open set must not devirtualize, got Devirt edges %v", n.Name(), dv)
		}
		if impl := outEdges(n, Impl); impl["speak"] != 2 {
			t.Errorf("%s: want CHA fan-out to both implementations, got %v", n.Name(), impl)
		}
		if iface := outEdges(n, Iface); iface["speak"] != 1 {
			t.Errorf("%s: want Iface edge to the interface method, got %v", n.Name(), iface)
		}
	}
}

func TestNoDevirtOptionDisablesDevirtualization(t *testing.T) {
	g, pkg := buildSrc(t, "devirt", devirtSrc, Options{NoDevirt: true})
	for _, n := range g.Nodes() {
		for _, e := range n.Out {
			if e.Kind == Devirt {
				t.Fatalf("NoDevirt build emitted a Devirt edge from %s", n.Name())
			}
		}
	}
	closed := fn(t, g, pkg, "closed")
	if impl := outEdges(closed, Impl); impl["speak"] != 2 {
		t.Errorf("NoDevirt closed() should keep CHA fan-out, got %v", impl)
	}
}

// devirtTargets returns the callee nodes of from's Devirt edges.
func devirtTargets(t *testing.T, g *Graph, from *Node) []*Node {
	t.Helper()
	var out []*Node
	for _, e := range from.Out {
		if e.Kind == Devirt {
			out = append(out, e.Callee)
		}
	}
	return out
}

func names(nodes []*Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Name()
	}
	return out
}
