package callgraph

import (
	"go/ast"
	"go/types"
	"sort"
)

// The dataflow layer: a flow-insensitive, context-insensitive resolution of
// calls through func values. It answers one question — "which functions may
// this variable/field/parameter hold?" — by scanning every assignment shape
// in the module and propagating var-to-var copies to a fixpoint. It is the
// stdlib-only stand-in for SSA value tracking: coarser (one binding set per
// variable for the whole program, order of assignments ignored) but sound in
// the direction analyzers need — a binding set over-approximates what a call
// site can invoke, and an EMPTY set means "unresolved", never "provably
// nothing".
//
// Tracked assignment shapes:
//
//	x = fn / x := fn / var x = fn      plain assignment and declaration
//	T{Field: fn} / T{fn}               composite literals, keyed or positional
//	callee(fn)                         call argument -> callee's parameter
//	x = y                              var-to-var copy (propagated to fixpoint)
//
// Not tracked (documented gaps, shared with the ROADMAP's "no SSA" note):
// values returned from calls, values read out of maps/slices/channels, and
// bindings established through interface dispatch into an implementation's
// parameters.

// collectBindings builds the module-wide binding sets. Must run after
// addDeclNodes (it needs lit nodes) and before edge construction.
func (g *Graph) collectBindings() {
	funcSets := map[*types.Var]map[*Node]bool{}
	varFlow := map[*types.Var]map[*types.Var]bool{}

	addFunc := func(dst *types.Var, n *Node) {
		if dst == nil || n == nil {
			return
		}
		if funcSets[dst] == nil {
			funcSets[dst] = map[*Node]bool{}
		}
		funcSets[dst][n] = true
	}
	addVar := func(dst, src *types.Var) {
		if dst == nil || src == nil || dst == src {
			return
		}
		if varFlow[dst] == nil {
			varFlow[dst] = map[*types.Var]bool{}
		}
		varFlow[dst][src] = true
	}
	// bind records one value flowing into one destination variable.
	bind := func(u *Unit, dst *types.Var, value ast.Expr) {
		nodes, src := g.funcValue(u, value)
		for _, n := range nodes {
			addFunc(dst, n)
		}
		addVar(dst, src)
	}

	for _, u := range g.Units {
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					if len(x.Lhs) != len(x.Rhs) {
						return true // multi-value from a call: unresolvable
					}
					for i, lhs := range x.Lhs {
						bind(u, assignTarget(u.Info, lhs), x.Rhs[i])
					}
				case *ast.ValueSpec:
					if len(x.Names) != len(x.Values) {
						return true
					}
					for i, name := range x.Names {
						v, _ := u.Info.Defs[name].(*types.Var)
						bind(u, v, x.Values[i])
					}
				case *ast.RangeStmt:
					// Ranging over a bound func-typed collection (the variadic
					// parameter shape: funcs bound to cbs, consumed via
					// `for _, cb := range cbs`) copies the source's bindings
					// into the range value variable.
					if value, ok := x.Value.(*ast.Ident); ok {
						bind(u, assignTarget(u.Info, value), x.X)
					}
				case *ast.CompositeLit:
					g.bindCompositeLit(u, x, bind)
				case *ast.CallExpr:
					g.bindCallArgs(u, x, bind)
				}
				return true
			})
		}
	}

	// Propagate var-to-var copies to a fixpoint. Sets only grow, so the
	// loop terminates; iteration order does not affect the result.
	for changed := true; changed; {
		changed = false
		for dst, srcs := range varFlow {
			for src := range srcs {
				for n := range funcSets[src] {
					if !funcSets[dst][n] {
						addFunc(dst, n)
						changed = true
					}
				}
			}
		}
	}

	g.bindings = make(map[*types.Var][]*Node, len(funcSets))
	for v, set := range funcSets {
		nodes := make([]*Node, 0, len(set))
		for n := range set {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodePos(nodes[i]) < nodePos(nodes[j]) })
		g.bindings[v] = nodes
	}
}

// nodePos orders nodes deterministically: body position when present,
// declaration position otherwise.
func nodePos(n *Node) int {
	if n.Body != nil {
		return int(n.Body.Pos())
	}
	if n.Func != nil {
		return int(n.Func.Pos())
	}
	return 0
}

// bindCompositeLit records func values stored into struct fields by a
// composite literal, keyed ({F: fn}) or positional ({fn}).
func (g *Graph) bindCompositeLit(u *Unit, lit *ast.CompositeLit, bind func(*Unit, *types.Var, ast.Expr)) {
	tv, ok := u.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return // map/slice/array literals: element flows untracked
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			field, _ := u.Info.Uses[key].(*types.Var)
			bind(u, field, kv.Value)
			continue
		}
		if i < st.NumFields() {
			bind(u, st.Field(i), elt)
		}
	}
}

// bindCallArgs records func values passed as arguments to a statically
// resolved module function, binding them to the callee's parameter
// variables. Calls through interfaces or func values are skipped: their
// parameter objects are not locally knowable.
func (g *Graph) bindCallArgs(u *Unit, call *ast.CallExpr, bind func(*Unit, *types.Var, ast.Expr)) {
	fn := staticCalleeFunc(u.Info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var param *types.Var
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			param = params.At(i)
		case sig.Variadic() && params.Len() > 0:
			param = params.At(params.Len() - 1)
		}
		bind(u, param, arg)
	}
}

// staticCalleeFunc resolves the *types.Func a call statically dispatches to,
// or nil for calls through function values, built-ins, and conversions.
func staticCalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// funcValue resolves an expression appearing on the right of an assignment:
// the function nodes it denotes directly (a literal, a declared function, a
// method value), or the variable it copies from. Both may be empty —
// a call result, an untracked shape — in which case the value contributes
// nothing (stays unresolved).
func (g *Graph) funcValue(u *Unit, expr ast.Expr) ([]*Node, *types.Var) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.FuncLit:
		if n := g.lits[e]; n != nil {
			return []*Node{n}, nil
		}
	case *ast.Ident:
		switch obj := u.Info.Uses[e].(type) {
		case *types.Func:
			return []*Node{g.FuncNode(obj)}, nil
		case *types.Var:
			return nil, obj
		}
	case *ast.SelectorExpr:
		if sel, ok := u.Info.Selections[e]; ok {
			switch obj := sel.Obj().(type) {
			case *types.Func:
				// Method value (x.M as a value): binds the concrete method.
				return []*Node{g.FuncNode(obj)}, nil
			case *types.Var:
				return nil, obj // struct field read: copy its binding set
			}
			return nil, nil
		}
		// Package-qualified: pkg.Fn or pkg.Var.
		switch obj := u.Info.Uses[e.Sel].(type) {
		case *types.Func:
			return []*Node{g.FuncNode(obj)}, nil
		case *types.Var:
			return nil, obj
		}
	}
	return nil, nil
}

// assignTarget resolves the left side of an assignment to the variable or
// struct field it writes, or nil for untracked targets (map/slice indexing,
// dereferences, blank).
func assignTarget(info *types.Info, lhs ast.Expr) *types.Var {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return nil
		}
		if v, ok := info.Defs[e].(*types.Var); ok {
			return v
		}
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			v, _ := sel.Obj().(*types.Var)
			return v // field write: x.F = ...
		}
		v, _ := info.Uses[e.Sel].(*types.Var) // package-qualified: pkg.V = ...
		return v
	}
	return nil
}

// flowTarget resolves a call's Fun expression to the variable or field whose
// binding set should supply the callees, or nil when the call is not through
// a tracked func value.
func flowTarget(info *types.Info, fun ast.Expr) *types.Var {
	switch e := ast.Unparen(fun).(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if sel.Kind() == types.FieldVal {
				v, _ := sel.Obj().(*types.Var)
				return v
			}
			return nil // method call: handled by the static/CHA paths
		}
		v, _ := info.Uses[e.Sel].(*types.Var) // package-qualified var call
		return v
	}
	return nil
}

// Bindings returns the functions that may flow into the given variable or
// field, in deterministic order. Nil when the value is unresolved (nothing
// in the module assigns it a resolvable function).
func (g *Graph) Bindings(v *types.Var) []*Node { return g.bindings[v] }
