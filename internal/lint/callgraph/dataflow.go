package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The dataflow layer: a flow-insensitive, context-insensitive resolution of
// calls through func values. It answers one question — "which functions may
// this variable/field/parameter hold?" — by scanning every assignment shape
// in the module and propagating var-to-var copies to a fixpoint. It is the
// stdlib-only stand-in for SSA value tracking: coarser (one binding set per
// variable for the whole program, order of assignments ignored) but sound in
// the direction analyzers need — a binding set over-approximates what a call
// site can invoke, and an EMPTY set means "unresolved", never "provably
// nothing".
//
// Tracked assignment shapes:
//
//	x = fn / x := fn / var x = fn      plain assignment and declaration
//	T{Field: fn} / T{fn}               composite literals, keyed or positional
//	callee(fn)                         call argument -> callee's parameter
//	x = y                              var-to-var copy (propagated to fixpoint)
//
// Not tracked (documented gaps, shared with the ROADMAP's "no SSA" note):
// values returned from calls, values read out of maps/slices/channels, and
// bindings established through interface dispatch into an implementation's
// parameters.

// collectBindings builds the module-wide binding sets. Must run after
// addDeclNodes (it needs lit nodes) and before edge construction.
func (g *Graph) collectBindings() {
	funcSets := map[*types.Var]map[*Node]bool{}
	varFlow := map[*types.Var]map[*types.Var]bool{}

	addFunc := func(dst *types.Var, n *Node) {
		if dst == nil || n == nil {
			return
		}
		if funcSets[dst] == nil {
			funcSets[dst] = map[*Node]bool{}
		}
		funcSets[dst][n] = true
	}
	addVar := func(dst, src *types.Var) {
		if dst == nil || src == nil || dst == src {
			return
		}
		if varFlow[dst] == nil {
			varFlow[dst] = map[*types.Var]bool{}
		}
		varFlow[dst][src] = true
	}
	// bind records one value flowing into one destination variable.
	bind := func(u *Unit, dst *types.Var, value ast.Expr) {
		nodes, src := g.funcValue(u, value)
		for _, n := range nodes {
			addFunc(dst, n)
		}
		addVar(dst, src)
	}

	for _, u := range g.Units {
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					if len(x.Lhs) != len(x.Rhs) {
						return true // multi-value from a call: unresolvable
					}
					for i, lhs := range x.Lhs {
						bind(u, assignTarget(u.Info, lhs), x.Rhs[i])
					}
				case *ast.ValueSpec:
					if len(x.Names) != len(x.Values) {
						return true
					}
					for i, name := range x.Names {
						v, _ := u.Info.Defs[name].(*types.Var)
						bind(u, v, x.Values[i])
					}
				case *ast.RangeStmt:
					// Ranging over a bound func-typed collection (the variadic
					// parameter shape: funcs bound to cbs, consumed via
					// `for _, cb := range cbs`) copies the source's bindings
					// into the range value variable.
					if value, ok := x.Value.(*ast.Ident); ok {
						bind(u, assignTarget(u.Info, value), x.X)
					}
				case *ast.CompositeLit:
					g.bindCompositeLit(u, x, bind)
				case *ast.CallExpr:
					g.bindCallArgs(u, x, bind)
				}
				return true
			})
		}
	}

	// Propagate var-to-var copies to a fixpoint. Sets only grow, so the
	// loop terminates; iteration order does not affect the result.
	for changed := true; changed; {
		changed = false
		for dst, srcs := range varFlow {
			for src := range srcs {
				for n := range funcSets[src] {
					if !funcSets[dst][n] {
						addFunc(dst, n)
						changed = true
					}
				}
			}
		}
	}

	g.bindings = make(map[*types.Var][]*Node, len(funcSets))
	for v, set := range funcSets {
		nodes := make([]*Node, 0, len(set))
		for n := range set {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodePos(nodes[i]) < nodePos(nodes[j]) })
		g.bindings[v] = nodes
	}
}

// nodePos orders nodes deterministically: body position when present,
// declaration position otherwise.
func nodePos(n *Node) int {
	if n.Body != nil {
		return int(n.Body.Pos())
	}
	if n.Func != nil {
		return int(n.Func.Pos())
	}
	return 0
}

// bindCompositeLit records func values stored into struct fields by a
// composite literal, keyed ({F: fn}) or positional ({fn}).
func (g *Graph) bindCompositeLit(u *Unit, lit *ast.CompositeLit, bind func(*Unit, *types.Var, ast.Expr)) {
	tv, ok := u.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return // map/slice/array literals: element flows untracked
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			field, _ := u.Info.Uses[key].(*types.Var)
			bind(u, field, kv.Value)
			continue
		}
		if i < st.NumFields() {
			bind(u, st.Field(i), elt)
		}
	}
}

// bindCallArgs records func values passed as arguments to a statically
// resolved module function, binding them to the callee's parameter
// variables. Calls through interfaces or func values are skipped: their
// parameter objects are not locally knowable.
func (g *Graph) bindCallArgs(u *Unit, call *ast.CallExpr, bind func(*Unit, *types.Var, ast.Expr)) {
	fn := staticCalleeFunc(u.Info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var param *types.Var
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			param = params.At(i)
		case sig.Variadic() && params.Len() > 0:
			param = params.At(params.Len() - 1)
		}
		bind(u, param, arg)
	}
}

// staticCalleeFunc resolves the *types.Func a call statically dispatches to,
// or nil for calls through function values, built-ins, and conversions.
func staticCalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// funcValue resolves an expression appearing on the right of an assignment:
// the function nodes it denotes directly (a literal, a declared function, a
// method value), or the variable it copies from. Both may be empty —
// a call result, an untracked shape — in which case the value contributes
// nothing (stays unresolved).
func (g *Graph) funcValue(u *Unit, expr ast.Expr) ([]*Node, *types.Var) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.FuncLit:
		if n := g.lits[e]; n != nil {
			return []*Node{n}, nil
		}
	case *ast.Ident:
		switch obj := u.Info.Uses[e].(type) {
		case *types.Func:
			return []*Node{g.FuncNode(obj)}, nil
		case *types.Var:
			return nil, obj
		}
	case *ast.SelectorExpr:
		if sel, ok := u.Info.Selections[e]; ok {
			switch obj := sel.Obj().(type) {
			case *types.Func:
				// Method value (x.M as a value): binds the concrete method.
				return []*Node{g.FuncNode(obj)}, nil
			case *types.Var:
				return nil, obj // struct field read: copy its binding set
			}
			return nil, nil
		}
		// Package-qualified: pkg.Fn or pkg.Var.
		switch obj := u.Info.Uses[e.Sel].(type) {
		case *types.Func:
			return []*Node{g.FuncNode(obj)}, nil
		case *types.Var:
			return nil, obj
		}
	}
	return nil, nil
}

// assignTarget resolves the left side of an assignment to the variable or
// struct field it writes, or nil for untracked targets (map/slice indexing,
// dereferences, blank).
func assignTarget(info *types.Info, lhs ast.Expr) *types.Var {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return nil
		}
		if v, ok := info.Defs[e].(*types.Var); ok {
			return v
		}
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			v, _ := sel.Obj().(*types.Var)
			return v // field write: x.F = ...
		}
		v, _ := info.Uses[e.Sel].(*types.Var) // package-qualified: pkg.V = ...
		return v
	}
	return nil
}

// flowTarget resolves a call's Fun expression to the variable or field whose
// binding set should supply the callees, or nil when the call is not through
// a tracked func value.
func flowTarget(info *types.Info, fun ast.Expr) *types.Var {
	switch e := ast.Unparen(fun).(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if sel.Kind() == types.FieldVal {
				v, _ := sel.Obj().(*types.Var)
				return v
			}
			return nil // method call: handled by the static/CHA paths
		}
		v, _ := info.Uses[e.Sel].(*types.Var) // package-qualified var call
		return v
	}
	return nil
}

// Bindings returns the functions that may flow into the given variable or
// field, in deterministic order. Nil when the value is unresolved (nothing
// in the module assigns it a resolvable function).
func (g *Graph) Bindings(v *types.Var) []*Node { return g.bindings[v] }

// ---------------------------------------------------------------------------
// Interface type-set devirtualization.
//
// The same machinery as func-value tracking, pointed at interface-typed
// variables and fields: every assignment of a concretely-typed value into an
// interface cell records that concrete type, cell-to-cell copies propagate to
// a fixpoint, and an interface call whose receiver cell has a provably CLOSED
// non-empty type set resolves to Devirt edges into exactly those
// implementations instead of the CHA fan-out.
//
// Soundness runs the opposite direction from func bindings: a missing func
// binding only loses edges (the call stays unresolved, which analyzers treat
// as "unknown"), but a missing interface binding would let the analyzer CLAIM
// a closed set that is actually open. So every assignment shape the layer
// cannot track must poison the destination cell as open:
//
//   - multi-value assignments from calls or two-result type assertions
//   - values read out of maps, slices, channels, or dereferences
//   - results of non-conversion calls with interface static type
//   - cells whose address is taken (&x escapes the cell to untracked writers,
//     e.g. json.Unmarshal; taking &x also opens interface fields of x's type)
//   - range variables over untracked collections
//   - interface-typed parameters of METHODS: a method can be invoked through
//     any interface it happens to satisfy — including anonymous interface
//     types inside std-library bodies (errors.Is probing for Is(error) bool)
//     that no scope walk can enumerate — so its argument bindings are never
//     complete
//   - interface-typed parameters of functions that escape as values: a call
//     through a func value does not bind arguments to the target's parameters
//
// A cell with an empty set that was never poisoned ("nothing assigns it")
// still falls back to CHA rather than claiming provably-nil dispatch.
// Concrete static types are exact even for call results (x := f() where f
// returns *T contributes exactly *T); only interface-typed sources need cell
// tracking. Writes from _test.go files are outside the loaded set — the
// proof, like sandboxpure's and filterdet's, covers the non-test build.

// collectIfaceSets builds the module-wide interface type sets. Must run after
// collectBindings (it reuses assignTarget/staticCalleeFunc helpers and the
// declared-node index) and before edge construction.
func (g *Graph) collectIfaceSets() {
	sets := map[*types.Var]map[string]types.Type{}
	open := map[*types.Var]bool{}
	flow := map[*types.Var]map[*types.Var]bool{}

	isIfaceVar := func(v *types.Var) bool { return v != nil && types.IsInterface(v.Type()) }
	addType := func(dst *types.Var, t types.Type) {
		if sets[dst] == nil {
			sets[dst] = map[string]types.Type{}
		}
		sets[dst][types.TypeString(t, nil)] = t
	}
	addFlow := func(dst, src *types.Var) {
		if dst == src {
			return
		}
		if flow[dst] == nil {
			flow[dst] = map[*types.Var]bool{}
		}
		flow[dst][src] = true
	}
	poison := func(v *types.Var) {
		if isIfaceVar(v) {
			open[v] = true
		}
	}
	// poisonFieldsOfType opens every interface-typed field reachable inside a
	// struct type whose memory may be written by untracked code (its address
	// escaped). Field objects are shared across all instances of the type, so
	// this conservatively opens the whole conflated cell.
	var poisonFieldsOfType func(t types.Type, seen map[*types.Struct]bool)
	poisonFieldsOfType = func(t types.Type, seen map[*types.Struct]bool) {
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok || seen[st] {
			return
		}
		seen[st] = true
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if types.IsInterface(f.Type()) {
				open[f] = true
				continue
			}
			poisonFieldsOfType(f.Type(), seen)
		}
	}
	poisonAddressed := func(v *types.Var) {
		poison(v)
		poisonFieldsOfType(v.Type(), map[*types.Struct]bool{})
	}
	openFuncIfaceParams := func(fn *types.Func) {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return
		}
		params := sig.Params()
		for i := 0; i < params.Len(); i++ {
			poison(params.At(i))
		}
	}

	// bindIface records one value flowing into one interface-typed cell:
	// concrete static types contribute exactly themselves, interface-typed
	// sources contribute their cell (assignment, field read, assertion
	// operand, conversion operand), everything else poisons.
	var bindIface func(u *Unit, dst *types.Var, expr ast.Expr)
	bindIface = func(u *Unit, dst *types.Var, expr ast.Expr) {
		if !isIfaceVar(dst) {
			return
		}
		expr = ast.Unparen(expr)
		tv, ok := u.Info.Types[expr]
		if !ok || tv.Type == nil {
			poison(dst)
			return
		}
		if tv.IsNil() {
			return // nil contributes no dispatch target
		}
		if !types.IsInterface(tv.Type) {
			addType(dst, tv.Type)
			return
		}
		switch e := expr.(type) {
		case *ast.Ident:
			if v, ok := u.Info.Uses[e].(*types.Var); ok {
				addFlow(dst, v)
				return
			}
			poison(dst)
		case *ast.SelectorExpr:
			if sel, ok := u.Info.Selections[e]; ok {
				if sel.Kind() == types.FieldVal {
					if v, ok := sel.Obj().(*types.Var); ok {
						addFlow(dst, v)
						return
					}
				}
				poison(dst)
				return
			}
			if v, ok := u.Info.Uses[e.Sel].(*types.Var); ok {
				addFlow(dst, v) // package-qualified var
				return
			}
			poison(dst)
		case *ast.TypeAssertExpr:
			// x.(I): the operand's set is a superset of the values that can
			// pass the assertion; devirt drops non-implementing types exactly.
			bindIface(u, dst, e.X)
		case *ast.CallExpr:
			if tvFun, ok := u.Info.Types[ast.Unparen(e.Fun)]; ok && tvFun.IsType() && len(e.Args) == 1 {
				bindIface(u, dst, e.Args[0]) // interface conversion: I(x)
				return
			}
			poison(dst) // interface-typed call result: untracked
		default:
			poison(dst) // index/deref/recv/...: untracked shapes
		}
	}

	poisonAddr := func(u *Unit, expr ast.Expr) {
		switch e := ast.Unparen(expr).(type) {
		case *ast.CompositeLit:
			// &T{...}: a fresh literal's field stores are tracked by
			// bindIfaceCompositeLit, and later writes through the pointer are
			// either selector assignments (tracked) or an escape to an
			// out-of-module callee (poisoned at that call, below).
		case *ast.Ident:
			obj := u.Info.Uses[e]
			if obj == nil {
				obj = u.Info.Defs[e]
			}
			if v, ok := obj.(*types.Var); ok {
				poisonAddressed(v)
			}
		case *ast.SelectorExpr:
			if sel, ok := u.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok {
					poisonAddressed(v)
				}
				return
			}
			if v, ok := u.Info.Uses[e.Sel].(*types.Var); ok {
				poisonAddressed(v)
			}
		default:
			// &slice[i], &*p, ...: the pointee type's interface fields become
			// writable through the escaped pointer.
			if tv, ok := u.Info.Types[expr]; ok && tv.Type != nil {
				poisonFieldsOfType(tv.Type, map[*types.Struct]bool{})
			}
		}
	}

	// A pointer passed to code whose writes the walk cannot see — a
	// std-library function (json.Unmarshal writes interface fields
	// reflectively), a bodyless declaration, a call through a func value —
	// opens every interface field reachable from the pointee. Module
	// functions with bodies are exempt: their field writes are ordinary
	// selector assignments the walk tracks directly. Builtins and
	// conversions never write fields.
	poisonEscapedPtrArgs := func(u *Unit, call *ast.CallExpr) {
		fun := ast.Unparen(call.Fun)
		if tv, ok := u.Info.Types[fun]; ok && tv.IsType() {
			return
		}
		if id, ok := fun.(*ast.Ident); ok {
			if _, isBuiltin := u.Info.Uses[id].(*types.Builtin); isBuiltin {
				return
			}
		}
		if fn := staticCalleeFunc(u.Info, call); fn != nil {
			if n := g.funcs[fn]; n != nil && n.Body != nil {
				return
			}
		}
		for _, arg := range call.Args {
			tv, ok := u.Info.Types[ast.Unparen(arg)]
			if !ok || tv.Type == nil {
				continue
			}
			if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
				poisonFieldsOfType(tv.Type, map[*types.Struct]bool{})
			}
		}
	}

	for _, u := range g.Units {
		for _, f := range u.Files {
			// Pre-pass: the exact expression nodes used as direct callees, so
			// a later func reference outside that position counts as a value
			// use (which bypasses argument binding at its call-through sites).
			callFun := map[ast.Node]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					callFun[ast.Unparen(call.Fun)] = true
				}
				return true
			})
			selSel := map[*ast.Ident]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.FuncDecl:
					if x.Recv != nil {
						// Methods are dispatchable through interfaces the
						// analysis cannot enumerate: their interface-typed
						// parameters are permanently open.
						if fn, ok := u.Info.Defs[x.Name].(*types.Func); ok {
							openFuncIfaceParams(fn)
						}
					}
				case *ast.AssignStmt:
					if x.Tok != token.ASSIGN && x.Tok != token.DEFINE {
						return true
					}
					if len(x.Lhs) == len(x.Rhs) {
						for i, lhs := range x.Lhs {
							bindIface(u, assignTarget(u.Info, lhs), x.Rhs[i])
						}
						return true
					}
					for _, lhs := range x.Lhs {
						poison(assignTarget(u.Info, lhs)) // multi-value: untracked
					}
				case *ast.ValueSpec:
					if len(x.Names) == len(x.Values) {
						for i, name := range x.Names {
							v, _ := u.Info.Defs[name].(*types.Var)
							bindIface(u, v, x.Values[i])
						}
						return true
					}
					if len(x.Values) > 0 {
						for _, name := range x.Names {
							v, _ := u.Info.Defs[name].(*types.Var)
							poison(v)
						}
					}
				case *ast.RangeStmt:
					// Container elements are untracked cells.
					poison(assignTarget(u.Info, x.Key))
					poison(assignTarget(u.Info, x.Value))
				case *ast.CompositeLit:
					g.bindIfaceCompositeLit(u, x, bindIface)
				case *ast.CallExpr:
					g.bindIfaceCallArgs(u, x, bindIface)
					poisonEscapedPtrArgs(u, x)
				case *ast.UnaryExpr:
					if x.Op == token.AND {
						poisonAddr(u, x.X)
					}
				case *ast.SelectorExpr:
					selSel[x.Sel] = true
					if callFun[x] {
						return true
					}
					if sel, ok := u.Info.Selections[x]; ok {
						if fn, ok := sel.Obj().(*types.Func); ok {
							openFuncIfaceParams(fn) // method value use
						}
						return true
					}
					if fn, ok := u.Info.Uses[x.Sel].(*types.Func); ok {
						openFuncIfaceParams(fn) // pkg-qualified func value use
					}
				case *ast.Ident:
					if callFun[x] || selSel[x] {
						return true
					}
					if fn, ok := u.Info.Uses[x].(*types.Func); ok {
						openFuncIfaceParams(fn) // func value use
					}
				}
				return true
			})
		}
	}

	// Propagate cell-to-cell copies (types and openness) to a fixpoint.
	for changed := true; changed; {
		changed = false
		for dst, srcs := range flow {
			for src := range srcs {
				if open[src] && !open[dst] && isIfaceVar(dst) {
					open[dst] = true
					changed = true
				}
				for key, t := range sets[src] {
					if sets[dst] == nil || sets[dst][key] == nil {
						addType(dst, t)
						changed = true
					}
				}
			}
		}
	}

	g.ifaceOpen = open
	g.ifaceSets = make(map[*types.Var][]types.Type, len(sets))
	for v, set := range sets {
		keys := make([]string, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out := make([]types.Type, len(keys))
		for i, k := range keys {
			out[i] = set[k]
		}
		g.ifaceSets[v] = out
	}
}

// bindIfaceCompositeLit records concrete values stored into interface-typed
// struct fields by a composite literal, keyed or positional. Map/slice/array
// literals stay untracked: their element reads poison the reader instead.
func (g *Graph) bindIfaceCompositeLit(u *Unit, lit *ast.CompositeLit, bindIface func(*Unit, *types.Var, ast.Expr)) {
	tv, ok := u.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			field, _ := u.Info.Uses[key].(*types.Var)
			bindIface(u, field, kv.Value)
			continue
		}
		if i < st.NumFields() {
			bindIface(u, st.Field(i), elt)
		}
	}
}

// bindIfaceCallArgs records concrete values passed as arguments to a
// statically resolved function, binding them to the callee's interface-typed
// parameters. Method parameters are bound too, but stay open regardless (see
// collectIfaceSets); parameters only close for plain functions whose every
// call site is static.
func (g *Graph) bindIfaceCallArgs(u *Unit, call *ast.CallExpr, bindIface func(*Unit, *types.Var, ast.Expr)) {
	fn := staticCalleeFunc(u.Info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var param *types.Var
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			param = params.At(i)
		case sig.Variadic() && params.Len() > 0:
			param = params.At(params.Len() - 1) // slice-typed: bindIface skips
		}
		bindIface(u, param, arg)
	}
}

// IfaceBindings returns the concrete types that may be stored in the given
// interface-typed variable or field, plus whether the set is open (not
// provably complete). Only a non-empty closed set devirtualizes call sites.
func (g *Graph) IfaceBindings(v *types.Var) ([]types.Type, bool) {
	return g.ifaceSets[v], g.ifaceOpen[v]
}
