// Package callgraph builds a conservative, whole-module call graph over the
// packages loaded by internal/lint. It is the foundation for the module-level
// analyzers (lockorder, goroleak, sandboxpure): the per-package analyzers can
// only see one function body at a time, but deadlocks, goroutine leaks, and
// sandbox escapes are inter-procedural by nature.
//
// The graph is CHA-style (class-hierarchy analysis): a call through an
// interface method conservatively fans out to every concrete method in the
// module that could satisfy the dispatch. Calls through plain function values
// (variables, struct fields, parameters of func type) are resolved by a
// flow-insensitive local dataflow layer: every function literal or declared
// function assigned to a variable or field — through plain assignments,
// composite literals, and call arguments — is recorded as a possible binding
// of that variable, bindings propagate through var-to-var copies to a
// fixpoint, and a call through the variable fans out to every binding as a
// Flow edge. A func value with no resolvable binding in the module (an
// engine-supplied hook, a value produced by a call) stays unresolved: the
// call site produces no edge rather than a wrong one. Flows through
// channels, maps, slices, and return values are not tracked (that would need
// SSA); the layer is deliberately may-alias and context-insensitive.
//
// Node granularity is one node per declared function or method plus one node
// per function literal. Functions outside the module (the standard library)
// appear as body-less leaf nodes, so reachability into them is visible but
// never traversed through.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Unit is one type-checked package the graph is built from. It mirrors the
// loaded package shape of internal/lint without importing it (lint imports
// this package, not the other way around).
type Unit struct {
	// Path is the package's import path.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// EdgeKind classifies how a call site can reach its callee.
type EdgeKind int

const (
	// Static is a direct call to a declared function or concrete method.
	Static EdgeKind = iota
	// Iface is a call through an interface method; the callee node is the
	// interface method itself (always body-less).
	Iface
	// Impl is a CHA edge from an interface call site to one concrete module
	// method that may satisfy the dispatch.
	Impl
	// Lit is the edge from a function to a literal declared inside its body.
	// Conservative: the literal may be invoked inline, deferred, spawned, or
	// escape through a variable.
	Lit
	// Flow is a call through a func value (variable, struct field, or
	// parameter) resolved by the dataflow layer: the callee is one function
	// that may have been assigned to the value somewhere in the module.
	Flow
	// Devirt is an interface call devirtualized by the dataflow layer: the
	// receiver variable's concrete type set is provably closed, so the call
	// resolves to exactly the implementations of those types instead of the
	// CHA fan-out. A site with Devirt edges has no Iface/Impl edges.
	Devirt
)

// String names the kind for diagnostics.
func (k EdgeKind) String() string {
	switch k {
	case Static:
		return "static"
	case Iface:
		return "iface"
	case Impl:
		return "impl"
	case Lit:
		return "lit"
	case Flow:
		return "flow"
	case Devirt:
		return "devirt"
	}
	return fmt.Sprintf("EdgeKind(%d)", int(k))
}

// Edge is one possible control transfer from Caller to Callee.
type Edge struct {
	Caller *Node
	Callee *Node
	// Site is the position of the call (or literal) in the caller's body.
	Site token.Pos
	Kind EdgeKind
	// IfacePkg is the import path of the package declaring the interface
	// method, set on Iface and Impl edges. Analyzers use it to decide whether
	// to traverse dispatch through std-library interfaces (io.Reader streams
	// handed to a storlet are engine-controlled, so sandboxpure treats them
	// as opaque) while still following module-declared interfaces.
	IfacePkg string
	// Go marks a call launched in a new goroutine (`go f()` / `go func(){}()`).
	Go bool
}

// Node is one function in the graph.
type Node struct {
	// Func is the declared function or method object; nil for literals.
	Func *types.Func
	// Lit is the literal; nil for declared functions.
	Lit *ast.FuncLit
	// Body is the function body; nil for functions outside the module and
	// for bodyless declarations (assembly stubs, interface methods).
	Body *ast.BlockStmt
	// Unit owns the body; nil for out-of-module functions.
	Unit *Unit
	Out  []*Edge
	In   []*Edge
}

// Name renders the node for diagnostics: the full function name, or a
// position-qualified "func literal" for literals.
func (n *Node) Name() string {
	if n.Func != nil {
		return n.Func.FullName()
	}
	if n.Unit != nil && n.Lit != nil {
		pos := n.Unit.Fset.Position(n.Lit.Pos())
		return fmt.Sprintf("func literal (%s:%d)", pos.Filename, pos.Line)
	}
	return "func literal"
}

// PkgPath returns the import path of the package the node's function belongs
// to ("" when unknown).
func (n *Node) PkgPath() string {
	if n.Func != nil && n.Func.Pkg() != nil {
		return n.Func.Pkg().Path()
	}
	if n.Unit != nil {
		return n.Unit.Path
	}
	return ""
}

// Graph is the whole-module call graph.
type Graph struct {
	Units []*Unit

	funcs  map[*types.Func]*Node
	lits   map[*ast.FuncLit]*Node
	walked map[*Node]bool
	// modulePaths is the set of loaded package paths, used to classify
	// interface declarations as module-internal or external.
	modulePaths map[string]bool
	// methodIndex lists every concrete named type declared in the module,
	// for CHA dispatch resolution.
	concrete []types.Type
	// bindings maps each func-typed variable, field, or parameter to the
	// functions that may flow into it (the dataflow layer's result).
	bindings map[*types.Var][]*Node
	// ifaceSets maps each interface-typed variable or field to the concrete
	// types that may be stored in it; ifaceOpen marks sets that are not
	// provably closed (an unresolvable assignment shape, an escaped address,
	// a dispatchable method parameter). Only closed non-empty sets
	// devirtualize; everything else keeps the CHA fan-out.
	ifaceSets map[*types.Var][]types.Type
	ifaceOpen map[*types.Var]bool
}

// Options tunes graph construction.
type Options struct {
	// NoDevirt disables interface type-set devirtualization, keeping the
	// pure CHA fan-out at every interface call site. Used as the benchmark
	// baseline and to isolate devirtualization in tests.
	NoDevirt bool
}

// Build constructs the graph for the given units with default options
// (devirtualization enabled).
func Build(units []*Unit) *Graph { return BuildWith(units, Options{}) }

// BuildWith constructs the graph for the given units.
func BuildWith(units []*Unit, opts Options) *Graph {
	g := &Graph{
		Units:       units,
		funcs:       map[*types.Func]*Node{},
		lits:        map[*ast.FuncLit]*Node{},
		walked:      map[*Node]bool{},
		modulePaths: map[string]bool{},
	}
	for _, u := range units {
		g.modulePaths[u.Path] = true
	}
	g.indexConcreteTypes()
	for _, u := range units {
		for _, f := range u.Files {
			g.addDeclNodes(u, f)
		}
	}
	g.collectBindings()
	if !opts.NoDevirt {
		g.collectIfaceSets()
	}
	for _, u := range units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := u.Info.Defs[fd.Name].(*types.Func); ok {
					g.addEdges(u, g.funcs[fn.Origin()], fd.Body)
				}
			}
		}
	}
	// Literals in package-level var initializers have no enclosing function;
	// walk any literal the declaration pass created but no body walk reached.
	for _, lits := range [][]*ast.FuncLit{sortedLits(g.lits)} {
		for _, l := range lits {
			n := g.lits[l]
			if !g.walked[n] {
				g.addEdges(n.Unit, n, n.Body)
			}
		}
	}
	return g
}

// sortedLits orders literal keys by position for deterministic edge order.
func sortedLits(m map[*ast.FuncLit]*Node) []*ast.FuncLit {
	out := make([]*ast.FuncLit, 0, len(m))
	for l := range m {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// ModulePath reports whether path is one of the loaded packages.
func (g *Graph) ModulePath(path string) bool { return g.modulePaths[path] }

// FuncNode returns the node for a declared function or method, creating a
// body-less leaf for out-of-module functions on demand.
func (g *Graph) FuncNode(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	fn = fn.Origin()
	if n, ok := g.funcs[fn]; ok {
		return n
	}
	n := &Node{Func: fn}
	g.funcs[fn] = n
	return n
}

// LitNode returns the node for a function literal, or nil if the literal is
// outside the loaded units.
func (g *Graph) LitNode(l *ast.FuncLit) *Node { return g.lits[l] }

// Nodes returns every node with a body in the module, in deterministic
// (position) order.
func (g *Graph) Nodes() []*Node {
	var out []*Node
	for _, n := range g.funcs {
		if n.Body != nil {
			out = append(out, n)
		}
	}
	for _, n := range g.lits {
		if n.Body != nil {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Body.Pos() < out[j].Body.Pos() })
	return out
}

// indexConcreteTypes collects every concrete (non-interface) named type
// declared in the module, in deterministic order.
func (g *Graph) indexConcreteTypes() {
	for _, u := range g.Units {
		scope := u.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if types.IsInterface(t) {
				continue
			}
			g.concrete = append(g.concrete, t)
		}
	}
}

// addDeclNodes creates nodes for every function declaration and literal in
// the file, plus Lit edges from each enclosing function to its literals.
func (g *Graph) addDeclNodes(u *Unit, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		fn, ok := u.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		n := g.FuncNode(fn)
		n.Body = fd.Body
		n.Unit = u
	}
	ast.Inspect(f, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			g.lits[lit] = &Node{Lit: lit, Body: lit.Body, Unit: u}
		}
		return true
	})
}

// addEdges walks one function body and records its outgoing edges. Nested
// literals get a Lit edge and are then walked as their own nodes, so every
// call site is attributed to its innermost enclosing function.
func (g *Graph) addEdges(u *Unit, from *Node, body *ast.BlockStmt) {
	if from == nil || g.walked[from] {
		return
	}
	g.walked[from] = true
	// Pre-scan for go statements so both `go f()` and `go func(){}()` edges
	// carry the Go flag regardless of AST visit order.
	goCalls := map[*ast.CallExpr]bool{}
	goLits := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			goCalls[gs.Call] = true
			if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
				goLits[lit] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			lit := g.lits[e]
			g.connect(&Edge{Caller: from, Callee: lit, Site: e.Pos(), Kind: Lit, Go: goLits[e]})
			g.addEdges(u, lit, e.Body)
			return false
		case *ast.CallExpr:
			g.addCallEdges(u, from, e, goCalls[e])
		}
		return true
	})
}

// addCallEdges resolves one call expression into zero or more edges.
func (g *Graph) addCallEdges(u *Unit, from *Node, call *ast.CallExpr, isGo bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := u.Info.Uses[fun].(*types.Func); ok {
			g.connect(&Edge{Caller: from, Callee: g.FuncNode(fn), Site: call.Pos(), Kind: Static, Go: isGo})
			return
		}
		g.flowEdges(u, from, call, isGo)
	case *ast.SelectorExpr:
		sel, ok := u.Info.Selections[fun]
		if !ok {
			// Package-qualified call: pkg.Fn(...).
			if fn, ok := u.Info.Uses[fun.Sel].(*types.Func); ok {
				g.connect(&Edge{Caller: from, Callee: g.FuncNode(fn), Site: call.Pos(), Kind: Static, Go: isGo})
				return
			}
			g.flowEdges(u, from, call, isGo)
			return
		}
		fn, ok := sel.Obj().(*types.Func)
		if !ok {
			// Call through a func-typed field: resolve via the dataflow layer.
			g.flowEdges(u, from, call, isGo)
			return
		}
		recv := sel.Recv()
		if sel.Kind() == types.MethodExpr {
			// T.Method(recv, ...): static dispatch on the named type.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
				g.ifaceEdges(from, call, fn, sig.Recv().Type(), isGo)
				return
			}
			g.connect(&Edge{Caller: from, Callee: g.FuncNode(fn), Site: call.Pos(), Kind: Static, Go: isGo})
			return
		}
		if types.IsInterface(recv) {
			if g.devirtEdges(u, from, call, fun, fn, recv, isGo) {
				return
			}
			g.ifaceEdges(from, call, fn, recv, isGo)
			return
		}
		g.connect(&Edge{Caller: from, Callee: g.FuncNode(fn), Site: call.Pos(), Kind: Static, Go: isGo})
	}
}

// devirtEdges attempts to devirtualize one interface call site: when the
// receiver expression resolves to a tracked interface variable whose concrete
// type set is closed and non-empty, the call gets one Devirt edge per
// implementing type and the CHA fan-out is skipped entirely. Types in the set
// that do not implement the call's interface (a superset inherited through a
// type assertion) are exact to drop — the runtime value could never reach
// this site. Reports whether the site was devirtualized.
func (g *Graph) devirtEdges(u *Unit, from *Node, call *ast.CallExpr, sel *ast.SelectorExpr, method *types.Func, recv types.Type, isGo bool) bool {
	v := flowTarget(u.Info, sel.X)
	if v == nil || g.ifaceOpen[v] {
		return false
	}
	set := g.ifaceSets[v]
	if len(set) == 0 {
		return false // empty-and-closed still falls back to CHA: no claim made
	}
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	ifacePkg := ""
	if method.Pkg() != nil {
		ifacePkg = method.Pkg().Path()
	}
	var impls []*types.Func
	for _, t := range set {
		if impl := g.implementation(t, iface, method); impl != nil {
			impls = append(impls, impl)
		}
	}
	if len(impls) == 0 {
		return false
	}
	for _, impl := range impls {
		g.connect(&Edge{Caller: from, Callee: g.FuncNode(impl), Site: call.Pos(), Kind: Devirt, IfacePkg: ifacePkg, Go: isGo})
	}
	return true
}

// flowEdges adds one Flow edge per dataflow binding of the func value the
// call dispatches through. An unresolved value (no bindings) adds nothing:
// the site stays visibly unresolved rather than being wrongly pruned or
// wrongly connected.
func (g *Graph) flowEdges(u *Unit, from *Node, call *ast.CallExpr, isGo bool) {
	v := flowTarget(u.Info, call.Fun)
	if v == nil {
		return
	}
	for _, callee := range g.bindings[v] {
		g.connect(&Edge{Caller: from, Callee: callee, Site: call.Pos(), Kind: Flow, Go: isGo})
	}
}

// ifaceEdges adds the Iface edge to the interface method itself plus CHA Impl
// edges to every concrete module method that may satisfy the dispatch.
func (g *Graph) ifaceEdges(from *Node, call *ast.CallExpr, method *types.Func, recv types.Type, isGo bool) {
	ifacePkg := ""
	if method.Pkg() != nil {
		ifacePkg = method.Pkg().Path()
	}
	g.connect(&Edge{Caller: from, Callee: g.FuncNode(method), Site: call.Pos(), Kind: Iface, IfacePkg: ifacePkg, Go: isGo})
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return
	}
	for _, t := range g.concrete {
		impl := g.implementation(t, iface, method)
		if impl == nil {
			continue
		}
		g.connect(&Edge{Caller: from, Callee: g.FuncNode(impl), Site: call.Pos(), Kind: Impl, IfacePkg: ifacePkg, Go: isGo})
	}
}

// implementation returns t's (or *t's) concrete method satisfying the given
// interface method, or nil when t does not implement the interface. The
// lookup carries the method's declaring package so unexported interface
// methods resolve.
func (g *Graph) implementation(t types.Type, iface *types.Interface, method *types.Func) *types.Func {
	target := t
	if !types.Implements(t, iface) {
		ptr := types.NewPointer(t)
		if !types.Implements(ptr, iface) {
			return nil
		}
		target = ptr
	}
	obj, _, _ := types.LookupFieldOrMethod(target, true, method.Pkg(), method.Name())
	fn, _ := obj.(*types.Func)
	return fn
}

// connect links an edge into both endpoint adjacency lists, dropping exact
// duplicates (same callee, kind, and site).
func (g *Graph) connect(e *Edge) {
	if e.Callee == nil {
		return
	}
	for _, prev := range e.Caller.Out {
		if prev.Callee == e.Callee && prev.Kind == e.Kind && prev.Site == e.Site {
			return
		}
	}
	e.Caller.Out = append(e.Caller.Out, e)
	e.Callee.In = append(e.Callee.In, e)
}

// Reach computes the set of nodes reachable from start, following only edges
// for which follow returns true (nil follows every edge). The result maps
// each visited node to the edge it was first reached through (nil for the
// start nodes), forming a BFS tree for path reconstruction.
func (g *Graph) Reach(start []*Node, follow func(*Edge) bool) map[*Node]*Edge {
	visited := map[*Node]*Edge{}
	var queue []*Node
	for _, n := range start {
		if n == nil {
			continue
		}
		if _, ok := visited[n]; !ok {
			visited[n] = nil
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if follow != nil && !follow(e) {
				continue
			}
			if _, ok := visited[e.Callee]; ok {
				continue
			}
			visited[e.Callee] = e
			queue = append(queue, e.Callee)
		}
	}
	return visited
}

// Path reconstructs the edge path from a Reach start node to target (nil if
// target was not visited; empty for a start node).
func Path(tree map[*Node]*Edge, target *Node) []*Edge {
	e, ok := tree[target]
	if !ok {
		return nil
	}
	var rev []*Edge
	for e != nil {
		rev = append(rev, e)
		e = tree[e.Caller]
	}
	out := make([]*Edge, len(rev))
	for i, x := range rev {
		out[len(rev)-1-i] = x
	}
	return out
}
