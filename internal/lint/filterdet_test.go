package lint

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// loadFixture loads the fixture module once per test.
func loadFixture(t *testing.T) []*Package {
	t.Helper()
	pkgs, err := Load(filepath.Join("testdata", "src", "fixture"))
	if err != nil {
		t.Fatalf("Load(fixture): %v", err)
	}
	return pkgs
}

// TestFilterDetPathChain asserts the non-vacuity case end to end: the
// deliberately nondeterministic fixture filter (time.Now two assignments away
// behind a func-typed struct field) is flagged, and the diagnostic carries
// the full resolved call chain — entry method, Flow-edge hop, clock call —
// so the -json artifact is actionable.
func TestFilterDetPathChain(t *testing.T) {
	pkgs := loadFixture(t)
	diags := Run(pkgs, []*Analyzer{AnalyzerFilterDet})

	var stamp *Diagnostic
	for i, d := range diags {
		if strings.Contains(d.Message, "filterdet.stampFilter") && strings.Contains(d.Message, "time.Now") {
			stamp = &diags[i]
		}
	}
	if stamp == nil {
		t.Fatalf("stampFilter time.Now finding missing; got %d filterdet diagnostics: %v", len(diags), diags)
	}
	wantPath := []string{
		"(fixture/filterdet.stampFilter).Invoke",
		"fixture/filterdet.unixNow",
		"time.Now",
	}
	if !reflect.DeepEqual(stamp.Path, wantPath) {
		t.Errorf("stamp finding Path = %v, want %v", stamp.Path, wantPath)
	}
	if !strings.Contains(stamp.Message, "fixture/filterdet.unixNow -> time.Now") {
		t.Errorf("message should spell the path inline, got %q", stamp.Message)
	}
}

// TestFilterDetVerdictsOnFixture checks the manifest-facing view: proven
// fixture filters are named, nondeterministic ones are excluded.
func TestFilterDetVerdictsOnFixture(t *testing.T) {
	pkgs := loadFixture(t)
	graph := BuildGraph(pkgs)
	proven := map[string]bool{}
	for _, name := range ProvenFilterNames(pkgs, graph) {
		proven[name] = true
	}
	// hist uses the collect-then-sort idiom; upper is a pure byte transform.
	for _, want := range []string{"hist", "upper"} {
		if !proven[want] {
			t.Errorf("filter %q should be proven deterministic; proven set: %v", want, proven)
		}
	}
	for _, bad := range []string{"stamp", "dedup", "tally", "jitter"} {
		if proven[bad] {
			t.Errorf("filter %q must NOT be proven deterministic", bad)
		}
	}
}

// TestModuleAnalyzerIgnoreSuppression proves //lint:ignore reaches
// module-level analyzers: the jitter fixture's time.Now finding IS produced
// by the analyzer and IS removed by the suppression pass, not silently
// missed.
func TestModuleAnalyzerIgnoreSuppression(t *testing.T) {
	pkgs := loadFixture(t)
	var raw []Diagnostic
	runFilterDet(&ModulePass{
		Analyzer: AnalyzerFilterDet,
		Fset:     pkgs[0].Fset,
		Pkgs:     pkgs,
		Graph:    BuildGraph(pkgs),
		diags:    &raw,
	})
	jitter := func(diags []Diagnostic) int {
		n := 0
		for _, d := range diags {
			if strings.Contains(d.Message, "filterdet.jitterFilter") {
				n++
			}
		}
		return n
	}
	if got := jitter(raw); got != 1 {
		t.Fatalf("raw jitterFilter findings = %d, want 1 (the fixture must actually trip the analyzer)", got)
	}
	filtered := raw
	for _, pkg := range pkgs {
		filtered = filterIgnored(pkg, filtered)
	}
	if got := jitter(filtered); got != 0 {
		t.Errorf("suppressed jitterFilter findings = %d, want 0 (module-level ignore must work)", got)
	}
	// The directive must not over-suppress: the other findings survive.
	if len(filtered) != len(raw)-1 {
		t.Errorf("suppression removed %d findings, want exactly 1", len(raw)-len(filtered))
	}
}
