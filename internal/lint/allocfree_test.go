package lint

import (
	"reflect"
	"strings"
	"testing"
)

// TestAllocFreePathChain asserts the non-vacuity case end to end: a
// reintroduced per-record string([]byte) conversion two static hops below a
// //scoop:hotpath root is flagged, and the diagnostic carries the full
// resolved root->site call chain so the -json artifact pinpoints how the hot
// path reaches the allocation.
func TestAllocFreePathChain(t *testing.T) {
	pkgs := loadFixture(t)
	diags := Run(pkgs, []*Analyzer{AnalyzerAllocFree})

	var deep *Diagnostic
	for i, d := range diags {
		if strings.Contains(d.Message, "root fixture/allocfree.badDeepRoot") {
			deep = &diags[i]
		}
	}
	if deep == nil {
		t.Fatalf("badDeepRoot finding missing; got %d allocfree diagnostics: %v", len(diags), diags)
	}
	wantPath := []string{
		"fixture/allocfree.badDeepRoot",
		"fixture/allocfree.deepMiddle",
		"fixture/allocfree.deepLeaf",
	}
	if !reflect.DeepEqual(deep.Path, wantPath) {
		t.Errorf("deep finding Path = %v, want %v", deep.Path, wantPath)
	}
	if !strings.Contains(deep.Message, "string([]byte) conversion allocates per record") {
		t.Errorf("message should name the allocation site class, got %q", deep.Message)
	}
}

// TestAllocFreeLoopRegionFaultInjection covers the csvfilter-shaped
// regression: the fixture's loopRegion reintroduces `string(row)` inside a
// loop annotated //scoop:hotpath — exactly the per-record conversion the
// paper's zero-alloc steady state forbids — while an identical conversion in
// the per-invocation setup above the loop stays exempt. Exactly one finding,
// rooted at the loop's enclosing function.
func TestAllocFreeLoopRegionFaultInjection(t *testing.T) {
	pkgs := loadFixture(t)
	diags := Run(pkgs, []*Analyzer{AnalyzerAllocFree})

	var hits []Diagnostic
	for _, d := range diags {
		if strings.Contains(d.Message, "root fixture/allocfree.loopRegion") {
			hits = append(hits, d)
		}
	}
	if len(hits) != 1 {
		t.Fatalf("loopRegion findings = %d, want exactly 1 (in-loop conversion flagged, setup conversion exempt): %v", len(hits), hits)
	}
	d := hits[0]
	if !strings.Contains(d.Message, "string([]byte) conversion allocates per record") {
		t.Errorf("loopRegion finding should be the conversion, got %q", d.Message)
	}
	if want := []string{"fixture/allocfree.loopRegion"}; !reflect.DeepEqual(d.Path, want) {
		t.Errorf("loopRegion Path = %v, want %v (site inside the root itself)", d.Path, want)
	}
}

// TestAllocFreeIgnoreSuppression proves the //lint:ignore escape hatch is
// load-bearing for allocfree: the ignoredSpill fixture's conversion finding
// IS produced by the analyzer and IS removed by the suppression pass, not
// silently missed by the checker.
func TestAllocFreeIgnoreSuppression(t *testing.T) {
	pkgs := loadFixture(t)
	var raw []Diagnostic
	runAllocFree(&ModulePass{
		Analyzer: AnalyzerAllocFree,
		Fset:     pkgs[0].Fset,
		Pkgs:     pkgs,
		Graph:    BuildGraph(pkgs),
		diags:    &raw,
	})
	spill := func(diags []Diagnostic) int {
		n := 0
		for _, d := range diags {
			if strings.Contains(d.Message, "root fixture/allocfree.ignoredSpill") {
				n++
			}
		}
		return n
	}
	if got := spill(raw); got != 1 {
		t.Fatalf("raw ignoredSpill findings = %d, want 1 (the fixture must actually trip the analyzer)", got)
	}
	filtered := raw
	for _, pkg := range pkgs {
		filtered = filterIgnored(pkg, filtered)
	}
	if got := spill(filtered); got != 0 {
		t.Errorf("suppressed ignoredSpill findings = %d, want 0 (//lint:ignore allocfree must work)", got)
	}
	// The directive must not over-suppress: every other finding survives.
	if len(filtered) != len(raw)-1 {
		t.Errorf("filtered %d of %d findings, want exactly 1 removed", len(raw)-len(filtered), len(raw))
	}
}
