// Package lint is a self-contained static-analysis engine for the Scoop
// codebase, built only on the standard library (go/parser, go/ast, go/types,
// go/importer). It loads every package in the module, type-checks it, and
// runs a pluggable set of project-specific analyzers tuned to Scoop's failure
// modes: the proxy/storlet request path runs user-supplied filter code in-line
// with every GET/PUT stream, so dropped errors, leaked response bodies, locks
// held across blocking I/O, goroutine leaks, and missing cancellation are all
// correctness bugs, not style nits.
//
// Diagnostics print as "file:line:col: [analyzer] message". A finding can be
// suppressed with an inline justification:
//
//	//lint:ignore <analyzer> <reason>
//
// placed either on the reported line or on the line immediately above it.
// The reason is mandatory; a bare ignore directive does not suppress.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"scoop/internal/lint/callgraph"
)

// Analyzer is one static check. Exactly one of Run and RunModule is set:
// Run inspects a single type-checked package; RunModule sees every loaded
// package at once plus the shared whole-module call graph (lockorder,
// goroleak, sandboxpure).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-line description shown by `scoop-lint -list`.
	Doc string
	// Run executes the analyzer against one package.
	Run func(*Pass)
	// RunModule executes the analyzer once over the whole loaded module.
	RunModule func(*ModulePass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModulePass carries the whole loaded module through one module-level
// analyzer. The call graph is built once per Run and shared by every module
// analyzer — with CHA fan-out it is the most expensive artifact the engine
// produces.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package
	Graph    *callgraph.Graph

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportPathf records a finding at pos with an attached call-path chain
// (function names, caller first), kept structured for -json consumers.
func (p *ModulePass) ReportPathf(pos token.Pos, path []string, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Path:     path,
	})
}

// Posn renders a position compactly ("file.go:12") for use inside messages
// that cite a second location.
func (p *ModulePass) Posn(pos token.Pos) string {
	position := p.Fset.Position(pos)
	name := position.Filename
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' {
			name = name[i+1:]
			break
		}
	}
	return fmt.Sprintf("%s:%d", name, position.Line)
}

// Diagnostic is one finding from one analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Path is the call chain (function names, caller first) a module-level
	// analyzer followed to reach the finding; empty for per-file analyzers.
	// Machine consumers get it verbatim in -json output.
	Path []string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzers returns the full suite in a stable order: the per-package
// analyzers first, then the whole-module (call-graph) analyzers.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerCloseBody,
		AnalyzerErrWrap,
		AnalyzerLockHeld,
		AnalyzerChanLeak,
		AnalyzerSlotLeak,
		AnalyzerCtxPropagate,
		AnalyzerLockOrder,
		AnalyzerGoroLeak,
		AnalyzerSandboxPure,
		AnalyzerFilterDet,
		AnalyzerAllocFree,
	}
}

// BuildGraph constructs the whole-module call graph for loaded packages.
// Exposed so callers (benchmarks, future tooling) can build it without
// running an analyzer.
func BuildGraph(pkgs []*Package) *callgraph.Graph {
	return BuildGraphOpts(pkgs, callgraph.Options{})
}

// BuildGraphOpts is BuildGraph with explicit construction options (the
// devirtualization benchmark builds a CHA-only graph for comparison).
func BuildGraphOpts(pkgs []*Package, opts callgraph.Options) *callgraph.Graph {
	units := make([]*callgraph.Unit, len(pkgs))
	for i, p := range pkgs {
		units[i] = &callgraph.Unit{Path: p.Path, Fset: p.Fset, Files: p.Files, Types: p.Types, Info: p.Info}
	}
	return callgraph.BuildWith(units, opts)
}

// Run executes the given analyzers over the given packages and returns all
// diagnostics not suppressed by an ignore directive, sorted by position.
// Packages are loaded and type-checked once (by Load) and shared by every
// analyzer; likewise the call graph is built at most once per Run and shared
// by every module-level analyzer.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	var graph *callgraph.Graph
	for _, a := range analyzers {
		if a.RunModule == nil || len(pkgs) == 0 {
			continue
		}
		if graph == nil {
			graph = BuildGraph(pkgs)
		}
		a.RunModule(&ModulePass{
			Analyzer: a,
			Fset:     pkgs[0].Fset,
			Pkgs:     pkgs,
			Graph:    graph,
			diags:    &diags,
		})
	}
	for _, pkg := range pkgs {
		diags = filterIgnored(pkg, diags)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
