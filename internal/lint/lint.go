// Package lint is a self-contained static-analysis engine for the Scoop
// codebase, built only on the standard library (go/parser, go/ast, go/types,
// go/importer). It loads every package in the module, type-checks it, and
// runs a pluggable set of project-specific analyzers tuned to Scoop's failure
// modes: the proxy/storlet request path runs user-supplied filter code in-line
// with every GET/PUT stream, so dropped errors, leaked response bodies, locks
// held across blocking I/O, goroutine leaks, and missing cancellation are all
// correctness bugs, not style nits.
//
// Diagnostics print as "file:line:col: [analyzer] message". A finding can be
// suppressed with an inline justification:
//
//	//lint:ignore <analyzer> <reason>
//
// placed either on the reported line or on the line immediately above it.
// The reason is mandatory; a bare ignore directive does not suppress.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check. Run inspects a single type-checked package
// and reports findings through the pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-line description shown by `scoop-lint -list`.
	Doc string
	// Run executes the analyzer against one package.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding from one analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzers returns the full suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerCloseBody,
		AnalyzerErrWrap,
		AnalyzerLockHeld,
		AnalyzerChanLeak,
		AnalyzerCtxPropagate,
	}
}

// Run executes the given analyzers over the given packages and returns all
// diagnostics not suppressed by an ignore directive, sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			a.Run(pass)
		}
		diags = filterIgnored(pkg, diags)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
