package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRe matches fixture expectation comments: `// want:<analyzer> <message
// prefix>`. One expectation per line; the diagnostic must land on that line.
var wantRe = regexp.MustCompile(`// want:(\w+) (.+)$`)

type expectation struct {
	file      string
	line      int
	analyzer  string
	msgPrefix string
}

// TestAnalyzersOnFixtures loads the fixture module and checks that the full
// suite produces exactly the diagnostics the fixtures annotate: every
// known-bad line is caught, every known-good shape stays silent.
func TestAnalyzersOnFixtures(t *testing.T) {
	root := filepath.Join("testdata", "src", "fixture")
	pkgs, err := Load(root)
	if err != nil {
		t.Fatalf("Load(%s): %v", root, err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("Load(%s) = %d packages, want >= 5", root, len(pkgs))
	}

	want := readExpectations(t, root)
	var got []string
	for _, d := range Run(pkgs, Analyzers()) {
		got = append(got, fmt.Sprintf("%s:%d: [%s] %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message))
	}

	matched := map[int]bool{}
	var missing []string
	for _, exp := range want {
		found := false
		for i, g := range got {
			if matched[i] {
				continue
			}
			prefix := fmt.Sprintf("%s:%d: [%s] %s", exp.file, exp.line, exp.analyzer, exp.msgPrefix)
			if strings.HasPrefix(g, prefix) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, fmt.Sprintf("%s:%d: [%s] %s...", exp.file, exp.line, exp.analyzer, exp.msgPrefix))
		}
	}
	for _, m := range missing {
		t.Errorf("expected diagnostic not reported: %s", m)
	}
	for i, g := range got {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", g)
		}
	}
}

// readExpectations scans every fixture file for want comments.
func readExpectations(t *testing.T, root string) []expectation {
	t.Helper()
	var out []expectation
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if m := wantRe.FindStringSubmatch(sc.Text()); m != nil {
				out = append(out, expectation{
					file:      filepath.Base(path),
					line:      line,
					analyzer:  m[1],
					msgPrefix: strings.TrimSpace(m[2]),
				})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatalf("reading expectations: %v", err)
	}
	if len(out) == 0 {
		t.Fatal("no expectations found in fixtures")
	}
	return out
}

// TestEachAnalyzerHasFixtureCoverage makes sure every registered analyzer
// has at least one known-bad expectation, so a silently broken analyzer
// cannot pass the suite.
func TestEachAnalyzerHasFixtureCoverage(t *testing.T) {
	root := filepath.Join("testdata", "src", "fixture")
	covered := map[string]bool{}
	for _, exp := range readExpectations(t, root) {
		covered[exp.analyzer] = true
	}
	for _, a := range Analyzers() {
		if !covered[a.Name] {
			t.Errorf("analyzer %q has no known-bad fixture expectation", a.Name)
		}
	}
}

func TestParseVerbs(t *testing.T) {
	cases := []struct {
		format string
		want   []verb
	}{
		{"plain", nil},
		{"%v", []verb{{'v', 0}}},
		{"%d then %w", []verb{{'d', 0}, {'w', 1}}},
		{"100%% done: %s", []verb{{'s', 0}}},
		{"%-8.3f|%q", []verb{{'f', 0}, {'q', 1}}},
		{"%*d %v", []verb{{'d', 1}, {'v', 2}}},
		{"%.*f %s", []verb{{'f', 1}, {'s', 2}}},
		{"%[2]d %[1]v", []verb{{'d', 1}, {'v', 0}}},
		{"%+v", []verb{{'v', 0}}},
	}
	for _, c := range cases {
		if got := parseVerbs(c.format); !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseVerbs(%q) = %v, want %v", c.format, got, c.want)
		}
	}
}

// TestLoadRepo loads the real module from the repo root: the loader must
// handle every production package, and the packages must come out
// type-checked and topologically ordered.
func TestLoadRepo(t *testing.T) {
	pkgs, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("Load(repo root): %v", err)
	}
	seen := map[string]bool{}
	for _, p := range pkgs {
		if p.Types == nil || p.Info == nil {
			t.Fatalf("package %s not type-checked", p.Path)
		}
		for _, dep := range p.imports {
			if !seen[dep] {
				t.Errorf("package %s checked before its dependency %s", p.Path, dep)
			}
		}
		seen[p.Path] = true
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	sort.Strings(paths)
	for _, must := range []string{"scoop/internal/objectstore", "scoop/internal/lint", "scoop/cmd/scoop-lint"} {
		i := sort.SearchStrings(paths, must)
		if i >= len(paths) || paths[i] != must {
			t.Errorf("expected package %s in loaded set", must)
		}
	}
}
