package lint

import (
	"go/ast"
	"go/constant"
	"strings"
)

// AnalyzerErrWrap reports fmt.Errorf calls that format an error operand with
// a value verb (%v, %s, %q) instead of %w. Scoop's request path crosses the
// connector -> proxy -> storlet stack; the adaptive and retry layers classify
// failures with errors.Is/errors.As, which only see through chains built
// with %w. Formatting with %v flattens the chain to a string and destroys
// that classification.
var AnalyzerErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf formatting an error operand must use %w so errors.Is/As work through the stack",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !funcIs(staticCallee(pass.Info, call), "fmt", "Errorf") || len(call.Args) < 2 {
				return true
			}
			format, ok := stringConstant(pass, call.Args[0])
			if !ok {
				return true
			}
			for _, v := range parseVerbs(format) {
				argIdx := v.argIndex + 1 // args[0] is the format string
				if v.verb == 'w' || argIdx >= len(call.Args) {
					continue
				}
				if v.verb != 'v' && v.verb != 's' && v.verb != 'q' {
					continue
				}
				arg := call.Args[argIdx]
				if tv, ok := pass.Info.Types[arg]; ok && isErrorType(tv.Type) {
					pass.Reportf(arg.Pos(), "error formatted with %%%c; use %%w so errors.Is/As can unwrap it", v.verb)
				}
			}
			return true
		})
	}
}

// stringConstant evaluates expr to a constant string when possible.
func stringConstant(pass *Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// verb is one formatting directive and the argument index it consumes.
type verb struct {
	verb     rune
	argIndex int
}

// parseVerbs extracts the verbs of a Printf-style format string together with
// the index of the operand each consumes. Width/precision stars consume an
// operand of their own; explicit argument indexes (%[n]v) reposition the
// cursor exactly as the fmt package does.
func parseVerbs(format string) []verb {
	var verbs []verb
	arg := 0
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		if i < len(runes) && runes[i] == '%' {
			continue // literal %%
		}
		// Flags.
		for i < len(runes) && strings.ContainsRune("+-# 0", runes[i]) {
			i++
		}
		// Width.
		if i < len(runes) && runes[i] == '*' {
			arg++
			i++
		} else {
			for i < len(runes) && runes[i] >= '0' && runes[i] <= '9' {
				i++
			}
		}
		// Precision.
		if i < len(runes) && runes[i] == '.' {
			i++
			if i < len(runes) && runes[i] == '*' {
				arg++
				i++
			} else {
				for i < len(runes) && runes[i] >= '0' && runes[i] <= '9' {
					i++
				}
			}
		}
		// Explicit argument index: %[n]v.
		if i < len(runes) && runes[i] == '[' {
			j := i + 1
			n := 0
			for j < len(runes) && runes[j] >= '0' && runes[j] <= '9' {
				n = n*10 + int(runes[j]-'0')
				j++
			}
			if j >= len(runes) || runes[j] != ']' || n == 0 {
				return verbs // malformed; stop rather than misattribute operands
			}
			arg = n - 1
			i = j + 1
		}
		if i >= len(runes) {
			break
		}
		verbs = append(verbs, verb{verb: runes[i], argIndex: arg})
		arg++
	}
	return verbs
}
