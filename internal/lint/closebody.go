package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerCloseBody reports *http.Response values whose Body is never closed
// and never handed off. Scoop's client-side stack (connector, admin tooling,
// proxy fan-out) keeps long-lived connections to the store; every unclosed
// body pins a connection and eventually starves the pool under the paper's
// ingestion workloads.
//
// A response counts as handled when the function closes resp.Body on some
// path, passes resp or resp.Body to another function (e.g. a drain helper),
// returns it, or stores it somewhere that outlives the call.
var AnalyzerCloseBody = &Analyzer{
	Name: "closebody",
	Doc:  "HTTP response bodies must be closed (or handed off) on all paths",
	Run:  runCloseBody,
}

func runCloseBody(pass *Pass) {
	for _, file := range pass.Files {
		funcBodies(file, func(_ ast.Node, body *ast.BlockStmt) {
			checkCloseBody(pass, body)
		})
	}
}

func checkCloseBody(pass *Pass, body *ast.BlockStmt) {
	// Collect variables assigned from calls that return *http.Response.
	type candidate struct {
		obj types.Object
		pos ast.Expr // the assigned identifier, for reporting
	}
	var candidates []candidate
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested functions are scanned separately
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		for i, t := range resultTypes(pass.Info, call) {
			if !namedType(t, "net/http", "Response") {
				continue
			}
			if i >= len(assign.Lhs) {
				break
			}
			obj := identObj(pass.Info, assign.Lhs[i])
			if obj == nil || obj.Name() == "_" {
				continue
			}
			candidates = append(candidates, candidate{obj, assign.Lhs[i]})
		}
		return true
	})

	for _, c := range candidates {
		if respHandled(pass, body, c.obj) {
			continue
		}
		pass.Reportf(c.pos.Pos(), "response body of %q is never closed; close it (or hand the response off) on every path", c.obj.Name())
	}
}

// resultTypes returns the result types of a call expression.
func resultTypes(info *types.Info, call *ast.CallExpr) []types.Type {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return nil
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		out := make([]types.Type, tuple.Len())
		for i := 0; i < tuple.Len(); i++ {
			out[i] = tuple.At(i).Type()
		}
		return out
	}
	return []types.Type{tv.Type}
}

// respHandled reports whether the response held in obj is closed or escapes
// the function (passed on, returned, or stored).
func respHandled(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	handled := false
	walkParents(body, func(n ast.Node, parents []ast.Node) bool {
		if handled {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.Info.Uses[id] != obj {
			return true
		}
		// Walk up: resp | resp.Body | resp.Body.Close — classify the use.
		node := ast.Node(id)
		for i := len(parents) - 1; i >= 0; i-- {
			parent := parents[i]
			if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == node {
				if sel.Sel.Name == "Close" {
					handled = true // resp.Body.Close(), possibly deferred
					return false
				}
				if sel.Sel.Name != "Body" {
					return true // resp.StatusCode etc. — neither closes nor escapes
				}
				node = parent
				continue
			}
			if escapesVia(parent, node) {
				handled = true
				return false
			}
			return true
		}
		return true
	})
	return handled
}

// escapesVia reports whether child, appearing directly under parent, leaves
// the function's control: passed as a call argument, returned, assigned,
// stored in a composite, sent on a channel, or address-taken.
func escapesVia(parent, child ast.Node) bool {
	switch p := parent.(type) {
	case *ast.CallExpr:
		for _, arg := range p.Args {
			if arg == child {
				return true
			}
		}
	case *ast.ReturnStmt:
		return true
	case *ast.AssignStmt:
		for _, rhs := range p.Rhs {
			if rhs == child {
				return true
			}
		}
	case *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
		return true
	case *ast.UnaryExpr:
		return p.Op.String() == "&"
	}
	return false
}
