package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"scoop/internal/lint/callgraph"
)

// AnalyzerAllocFree statically proves the annotated hot path allocation-free.
//
// PR 7 drove the CSV data path to 0 allocs/record, but that property was
// pinned only by runtime TestAllocBudget* samples (skipped under -race). This
// analyzer turns it into a whole-module proof: every function reachable from
// a `//scoop:hotpath` root must be free of per-record allocation sites —
// make/new, append that can grow, string<->[]byte conversions, escaping
// composite literals, boxing into interfaces, capturing closures, goroutine
// launches, map/channel creation, and calls into std-library code not on the
// allocation-free allowlist.
//
// Annotation contract:
//
//	//scoop:hotpath  on a function's doc comment — the whole body is hot;
//	                 on the line above a for/range statement — only that
//	                 loop is hot (per-invocation setup outside it is free).
//	//scoop:cold     on (or on the line above) a statement — the statement
//	                 is a cold region: a path taken once per stream or per
//	                 error, not per record. `if err != nil { ... }` bodies
//	                 and sentinel-error comparisons are cold implicitly.
//
// Amortized idioms lint clean by construction: module Acquire*/Release* pool
// boundaries are not traversed (their allocations are amortized across
// records), `x = make(...)` guarded by a `cap(x) < n` check is scratch
// growth, and append whose base reuses a struct-owned buffer is pre-sized
// scratch. Everything else needs a `//lint:ignore allocfree <reason>`.
//
// Interface calls in hot code must be devirtualized by the call-graph
// dataflow layer (a closed concrete type set); an open set is reported — CHA
// fan-out is not a proof of what the dispatch allocates.
var AnalyzerAllocFree = &Analyzer{
	Name:      "allocfree",
	Doc:       "prove //scoop:hotpath roots reach no per-record allocation site",
	RunModule: runAllocFree,
}

// hotRoot is one annotated entry point: a whole function, or one loop inside
// a function when the annotation sits on the line above a for/range.
type hotRoot struct {
	node   *callgraph.Node
	region ast.Node // nil: whole body; else the annotated loop statement
	pos    token.Pos
}

func (h hotRoot) name() string { return h.node.Name() }

type allocfreeRun struct {
	pass *ModulePass
	// coldMarks is the set of //scoop:cold comment lines per file.
	coldMarks map[string]map[int]bool
	// cold caches each node's cold statement ranges.
	cold map[*callgraph.Node][]posRange
	// origins caches each node's local 1-1 assignment map (append-base
	// provenance).
	origins map[*callgraph.Node]map[*types.Var][]ast.Expr
	// seen dedupes findings reachable from several roots: first root wins.
	seen map[string]bool
}

type posRange struct{ from, to token.Pos }

func runAllocFree(pass *ModulePass) {
	r := &allocfreeRun{
		pass:      pass,
		coldMarks: map[string]map[int]bool{},
		cold:      map[*callgraph.Node][]posRange{},
		origins:   map[*callgraph.Node]map[*types.Var][]ast.Expr{},
		seen:      map[string]bool{},
	}
	roots := r.collectRoots()
	if len(roots) == 0 {
		return
	}
	nodes := pass.Graph.Nodes()
	for _, root := range roots {
		if root.node == nil || root.node.Body == nil {
			continue
		}
		tree := pass.Graph.Reach([]*callgraph.Node{root.node}, r.follow(root))
		for _, n := range nodes {
			if _, ok := tree[n]; !ok {
				continue
			}
			r.scanNode(root, tree, n)
		}
	}
}

// follow builds the per-root edge filter: only proven control transfers are
// traversed (Static, Lit, Flow, Devirt), never unproven interface fan-out or
// goroutine launches (both are reported at the call site instead), never
// Acquire*/Release* pool boundaries (amortized), never edges sited in a cold
// region, and — for loop roots — never edges outside the annotated loop.
func (r *allocfreeRun) follow(root hotRoot) func(*callgraph.Edge) bool {
	return func(e *callgraph.Edge) bool {
		if e.Go {
			return false
		}
		switch e.Kind {
		case callgraph.Static, callgraph.Lit, callgraph.Flow, callgraph.Devirt:
		default:
			return false
		}
		if amortizedBoundary(r.pass.Graph, e.Callee) {
			return false
		}
		if e.Caller == root.node && root.region != nil {
			if e.Site < root.region.Pos() || e.Site >= root.region.End() {
				return false
			}
		}
		return !r.isCold(e.Caller, e.Site)
	}
}

// amortizedBoundary reports whether callee is a module pool boundary
// (Acquire*/Release*): its allocations are amortized across records, so the
// proof stops at the call.
func amortizedBoundary(g *callgraph.Graph, callee *callgraph.Node) bool {
	if callee.Func == nil || callee.Func.Pkg() == nil {
		return false
	}
	if !g.ModulePath(callee.Func.Pkg().Path()) {
		return false
	}
	name := callee.Func.Name()
	return strings.HasPrefix(name, "Acquire") || strings.HasPrefix(name, "Release")
}

// collectRoots finds every //scoop:hotpath marker, resolves it to a function
// or loop root, indexes //scoop:cold lines, and reports markers attached to
// neither a function doc comment nor the line above a for/range statement.
func (r *allocfreeRun) collectRoots() []hotRoot {
	var roots []hotRoot
	for _, pkg := range r.pass.Pkgs {
		fset := pkg.Fset
		for _, file := range pkg.Files {
			type marker struct {
				pos     token.Pos
				line    int
				matched bool
			}
			var hot []*marker
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(c.Text)
					p := fset.Position(c.Pos())
					switch {
					case text == "//scoop:hotpath" || strings.HasPrefix(text, "//scoop:hotpath "):
						hot = append(hot, &marker{pos: c.Pos(), line: p.Line})
					case text == "//scoop:cold" || strings.HasPrefix(text, "//scoop:cold "):
						if r.coldMarks[p.Filename] == nil {
							r.coldMarks[p.Filename] = map[int]bool{}
						}
						r.coldMarks[p.Filename][p.Line] = true
					}
				}
			}
			if len(hot) == 0 {
				continue
			}
			walkParents(file, func(x ast.Node, parents []ast.Node) bool {
				switch d := x.(type) {
				case *ast.FuncDecl:
					if d.Doc == nil {
						return true
					}
					for _, m := range hot {
						if m.pos >= d.Doc.Pos() && m.pos < d.Doc.End() {
							m.matched = true
							if fn, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
								roots = append(roots, hotRoot{node: r.pass.Graph.FuncNode(fn), pos: m.pos})
							}
						}
					}
				case *ast.ForStmt, *ast.RangeStmt:
					line := fset.Position(d.Pos()).Line
					for _, m := range hot {
						if m.line != line-1 {
							continue
						}
						m.matched = true
						if n := enclosingNode(r.pass.Graph, pkg.Info, parents); n != nil {
							roots = append(roots, hotRoot{node: n, region: d, pos: m.pos})
						}
					}
				}
				return true
			})
			for _, m := range hot {
				if !m.matched {
					r.pass.Reportf(m.pos, "misplaced //scoop:hotpath: must be a function doc comment or the line above a for/range statement")
				}
			}
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].pos < roots[j].pos })
	return roots
}

// enclosingNode resolves the innermost function declaration or literal on the
// parent stack to its call-graph node.
func enclosingNode(g *callgraph.Graph, info *types.Info, parents []ast.Node) *callgraph.Node {
	for i := len(parents) - 1; i >= 0; i-- {
		switch f := parents[i].(type) {
		case *ast.FuncDecl:
			if fn, ok := info.Defs[f.Name].(*types.Func); ok {
				return g.FuncNode(fn)
			}
			return nil
		case *ast.FuncLit:
			return g.LitNode(f)
		}
	}
	return nil
}

// isCold reports whether pos falls in one of n's cold regions: the body of an
// `if err != nil` / sentinel-error comparison, or a statement marked
// //scoop:cold.
func (r *allocfreeRun) isCold(n *callgraph.Node, pos token.Pos) bool {
	for _, rng := range r.coldRanges(n) {
		if pos >= rng.from && pos < rng.to {
			return true
		}
	}
	return false
}

func (r *allocfreeRun) coldRanges(n *callgraph.Node) []posRange {
	if rs, ok := r.cold[n]; ok {
		return rs
	}
	out := []posRange{}
	if n.Body != nil && n.Unit != nil {
		fset := n.Unit.Fset
		info := n.Unit.Info
		ast.Inspect(n.Body, func(x ast.Node) bool {
			stmt, ok := x.(ast.Stmt)
			if !ok {
				return true
			}
			p := fset.Position(stmt.Pos())
			if marks := r.coldMarks[p.Filename]; marks != nil && (marks[p.Line] || marks[p.Line-1]) {
				out = append(out, posRange{stmt.Pos(), stmt.End()})
				return true
			}
			if ifs, ok := stmt.(*ast.IfStmt); ok && coldCond(info, ifs.Cond) {
				out = append(out, posRange{ifs.Body.Pos(), ifs.Body.End()})
			}
			return true
		})
	}
	r.cold[n] = out
	return out
}

// coldCond recognizes error-path conditions: `err != nil` (the body handles
// the error), `err == io.EOF`-style sentinel comparisons (once per stream),
// and errors.Is/As probes.
func coldCond(info *types.Info, cond ast.Expr) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		lt, rt := info.Types[c.X], info.Types[c.Y]
		switch c.Op {
		case token.NEQ:
			return (isErrorType(lt.Type) && rt.IsNil()) || (isErrorType(rt.Type) && lt.IsNil())
		case token.EQL:
			return isErrorType(lt.Type) && isErrorType(rt.Type) && !lt.IsNil() && !rt.IsNil()
		}
	case *ast.CallExpr:
		fn := staticCallee(info, c)
		return funcIs(fn, "errors", "Is") || funcIs(fn, "errors", "As")
	}
	return false
}

// report records one finding, deduplicating sites reachable from several
// roots, with the full root->site call chain attached.
func (r *allocfreeRun) report(root hotRoot, tree map[*callgraph.Node]*callgraph.Edge, n *callgraph.Node, pos token.Pos, desc string) {
	key := fmt.Sprintf("%d %s", pos, desc)
	if r.seen[key] {
		return
	}
	r.seen[key] = true
	path := pathStrings(callgraph.Path(tree, n), n)
	r.pass.ReportPathf(pos, path, "hot path is not allocation-free: %s (root %s)", desc, root.name())
}

// scanNode walks one reachable function's hot region and reports every
// allocation site in it.
func (r *allocfreeRun) scanNode(root hotRoot, tree map[*callgraph.Node]*callgraph.Edge, n *callgraph.Node) {
	if n.Body == nil || n.Unit == nil {
		return
	}
	region := ast.Node(n.Body)
	if n == root.node && root.region != nil {
		region = root.region
	}
	info := n.Unit.Info
	walkParents(region, func(x ast.Node, parents []ast.Node) bool {
		if x.Pos().IsValid() && r.isCold(n, x.Pos()) {
			return false
		}
		switch node := x.(type) {
		case *ast.FuncLit:
			if node != region {
				if capturesLocals(info, node) {
					r.report(root, tree, n, node.Pos(), "func literal captures variables (closure allocates per record)")
				}
				return false // the literal's body is scanned as its own node
			}
		case *ast.GoStmt:
			r.report(root, tree, n, node.Pos(), "go statement launches a goroutine per record")
			return false
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
					r.report(root, tree, n, node.Pos(), "address-taken composite literal escapes per record")
					return false
				}
			}
		case *ast.BinaryExpr:
			if node.Op == token.ADD {
				if tv, ok := info.Types[node.X]; ok && tv.Type != nil && isString(tv.Type) {
					r.report(root, tree, n, node.Pos(), "string concatenation allocates per record")
				}
			}
		case *ast.CompositeLit:
			r.checkCompositeLit(root, tree, n, info, node)
		case *ast.AssignStmt:
			if node.Tok == token.ADD_ASSIGN && len(node.Lhs) == 1 {
				if tv, ok := info.Types[node.Lhs[0]]; ok && tv.Type != nil && isString(tv.Type) {
					r.report(root, tree, n, node.Pos(), "string concatenation allocates per record")
				}
			}
			r.checkAssignBoxing(root, tree, n, info, node)
		case *ast.ReturnStmt:
			r.checkReturnBoxing(root, tree, n, info, node)
		case *ast.CallExpr:
			r.checkCall(root, tree, n, info, node, parents)
		}
		return true
	})
}

func (r *allocfreeRun) checkCompositeLit(root hotRoot, tree map[*callgraph.Node]*callgraph.Edge, n *callgraph.Node, info *types.Info, lit *ast.CompositeLit) {
	tv, ok := info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	switch u := tv.Type.Underlying().(type) {
	case *types.Map:
		r.report(root, tree, n, lit.Pos(), "map literal allocates per record")
	case *types.Slice:
		r.report(root, tree, n, lit.Pos(), "slice literal allocates per record")
	case *types.Struct:
		// A value struct literal is stack-allocated, but storing a concrete
		// value into an interface-typed field boxes it.
		for i, elt := range lit.Elts {
			var field *types.Var
			value := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if key, ok := kv.Key.(*ast.Ident); ok {
					field, _ = info.Uses[key].(*types.Var)
				}
				value = kv.Value
			} else if i < u.NumFields() {
				field = u.Field(i)
			}
			if field != nil {
				r.checkBoxing(root, tree, n, info, field.Type(), value, "interface struct field")
			}
		}
	}
}

// checkBoxing reports value when storing it into dst requires boxing: dst is
// an interface type and value's concrete type is not pointer-shaped.
func (r *allocfreeRun) checkBoxing(root hotRoot, tree map[*callgraph.Node]*callgraph.Edge, n *callgraph.Node, info *types.Info, dst types.Type, value ast.Expr, where string) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := info.Types[ast.Unparen(value)]
	if !ok || tv.Type == nil || tv.IsNil() || types.IsInterface(tv.Type) {
		return
	}
	if pointerShaped(tv.Type) {
		return
	}
	r.report(root, tree, n, value.Pos(), fmt.Sprintf("boxing %s into %s allocates per record",
		types.TypeString(tv.Type, types.RelativeTo(n.Unit.Types)), where))
}

// pointerShaped types fit in an interface word without allocating.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func (r *allocfreeRun) checkAssignBoxing(root hotRoot, tree map[*callgraph.Node]*callgraph.Edge, n *callgraph.Node, info *types.Info, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		var dst types.Type
		if obj := assignObj(info, lhs); obj != nil {
			dst = obj.Type()
		} else if tv, ok := info.Types[lhs]; ok {
			dst = tv.Type
		}
		r.checkBoxing(root, tree, n, info, dst, as.Rhs[i], "interface variable")
	}
}

// assignObj resolves the object an lvalue writes, for idents and field
// selectors (nil for index/deref targets).
func assignObj(info *types.Info, lhs ast.Expr) types.Object {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := info.Defs[e]; obj != nil {
			return obj
		}
		return info.Uses[e]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	}
	return nil
}

func (r *allocfreeRun) checkReturnBoxing(root hotRoot, tree map[*callgraph.Node]*callgraph.Edge, n *callgraph.Node, info *types.Info, ret *ast.ReturnStmt) {
	sig := nodeSignature(info, n)
	if sig == nil || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, res := range ret.Results {
		r.checkBoxing(root, tree, n, info, sig.Results().At(i).Type(), res, "interface return value")
	}
}

func nodeSignature(info *types.Info, n *callgraph.Node) *types.Signature {
	if n.Func != nil {
		sig, _ := n.Func.Type().(*types.Signature)
		return sig
	}
	if n.Lit != nil {
		if tv, ok := info.Types[n.Lit]; ok {
			sig, _ := tv.Type.(*types.Signature)
			return sig
		}
	}
	return nil
}

// checkCall classifies one call site in hot code: conversions, builtins,
// std-library callees against the allowlist, interface dispatch against the
// devirtualizer's verdict, and func values against the dataflow layer.
func (r *allocfreeRun) checkCall(root hotRoot, tree map[*callgraph.Node]*callgraph.Edge, n *callgraph.Node, info *types.Info, call *ast.CallExpr, parents []ast.Node) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		r.checkConversion(root, tree, n, info, tv.Type, call)
		return
	}
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				r.checkMake(root, tree, n, info, call, parents)
			case "new":
				r.report(root, tree, n, call.Pos(), "new allocates per record")
			case "append":
				r.checkAppend(root, tree, n, info, call)
			}
			return // other builtins (len, cap, copy, delete, panic, ...) are free or terminal
		}
	}
	if fn := staticCallee(info, call); fn != nil {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			r.checkIfaceDispatch(root, tree, n, call, fn)
			return
		}
		if fn.Pkg() != nil && r.pass.Graph.ModulePath(fn.Pkg().Path()) {
			if amortizedBoundary(r.pass.Graph, r.pass.Graph.FuncNode(fn)) {
				return // pool boundary: amortized by design
			}
			if r.pass.Graph.FuncNode(fn).Body == nil {
				r.report(root, tree, n, call.Pos(), fmt.Sprintf("calls %s, which has no body to analyze", fn.FullName()))
			}
			// Module callees with bodies are traversed and scanned themselves.
		} else if ok, desc := stdCalleeVerdict(fn); !ok {
			r.report(root, tree, n, call.Pos(), desc)
			return // don't double-report the call's implicit arg boxing
		}
		r.checkCallArgBoxing(root, tree, n, info, call)
		return
	}
	if lit, ok := fun.(*ast.FuncLit); ok {
		_ = lit // immediately-invoked literal: scanned as its own node via the Lit edge
		r.checkCallArgBoxing(root, tree, n, info, call)
		return
	}
	// Call through a func value: proven only if the dataflow layer resolved it.
	for _, e := range n.Out {
		if e.Site == call.Pos() && (e.Kind == callgraph.Flow || e.Kind == callgraph.Lit) {
			r.checkCallArgBoxing(root, tree, n, info, call)
			return
		}
	}
	r.report(root, tree, n, call.Pos(), "call through a func value the dataflow layer cannot resolve")
}

// checkIfaceDispatch accepts interface calls the dataflow layer devirtualized
// (the implementations are traversed and proven like any other callee) and
// reports open dispatch: CHA fan-out is not a proof.
func (r *allocfreeRun) checkIfaceDispatch(root hotRoot, tree map[*callgraph.Node]*callgraph.Edge, n *callgraph.Node, call *ast.CallExpr, fn *types.Func) {
	for _, e := range n.Out {
		if e.Site == call.Pos() && e.Kind == callgraph.Devirt {
			return
		}
	}
	r.report(root, tree, n, call.Pos(), fmt.Sprintf("interface dispatch %s is not devirtualized (concrete type set is open)", fn.FullName()))
}

func (r *allocfreeRun) checkConversion(root hotRoot, tree map[*callgraph.Node]*callgraph.Edge, n *callgraph.Node, info *types.Info, dst types.Type, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	tv, ok := info.Types[ast.Unparen(arg)]
	if !ok || tv.Type == nil {
		return
	}
	switch {
	case isString(dst) && isByteSlice(tv.Type):
		r.report(root, tree, n, call.Pos(), "string([]byte) conversion allocates per record")
	case isByteSlice(dst) && isString(tv.Type):
		r.report(root, tree, n, call.Pos(), "[]byte(string) conversion allocates per record")
	case types.IsInterface(dst):
		r.checkBoxing(root, tree, n, info, dst, arg, "interface conversion")
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// checkMake: map and channel creation always allocate; slice make is exempt
// only inside the cap-guard growth idiom `if cap(x) < n { x = make(...) }` —
// scratch that grows to a high-water mark and is then reused.
func (r *allocfreeRun) checkMake(root hotRoot, tree map[*callgraph.Node]*callgraph.Edge, n *callgraph.Node, info *types.Info, call *ast.CallExpr, parents []ast.Node) {
	if len(call.Args) == 0 {
		return
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		r.report(root, tree, n, call.Pos(), "make(map) allocates per record")
		return
	case *types.Chan:
		r.report(root, tree, n, call.Pos(), "make(chan) allocates per record")
		return
	}
	if capGuarded(info, call, parents) {
		return
	}
	r.report(root, tree, n, call.Pos(), "make allocates per record (not a cap-guarded scratch grow)")
}

// capGuarded reports whether the make call is the RHS of an assignment to x
// inside an if whose condition compares cap(x).
func capGuarded(info *types.Info, call *ast.CallExpr, parents []ast.Node) bool {
	var target types.Object
	for i := len(parents) - 1; i >= 0; i-- {
		if as, ok := parents[i].(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
			target = assignObj(info, as.Lhs[0])
			break
		}
	}
	if target == nil {
		return false
	}
	for i := len(parents) - 1; i >= 0; i-- {
		ifs, ok := parents[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		guarded := false
		ast.Inspect(ifs.Cond, func(x ast.Node) bool {
			c, ok := x.(*ast.CallExpr)
			if !ok || len(c.Args) != 1 {
				return true
			}
			if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "cap" {
					if assignObj(info, c.Args[0]) == target {
						guarded = true
						return false
					}
				}
			}
			return true
		})
		if guarded {
			return true
		}
	}
	return false
}

// checkAppend: append is amortized only when its base reuses a struct-owned
// buffer (directly a field selector, possibly resliced, or a local variable
// provably backed by one) — the buffer grows to a high-water mark across
// records. Append to a fresh local can grow every record.
func (r *allocfreeRun) checkAppend(root hotRoot, tree map[*callgraph.Node]*callgraph.Edge, n *callgraph.Node, info *types.Info, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	if r.fieldBacked(n, info, call.Args[0], map[*types.Var]bool{}) {
		return
	}
	r.report(root, tree, n, call.Pos(), "append may grow per record (base is not a reused struct-owned buffer)")
}

// fieldBacked reports whether expr is (a reslice of) a struct field, or a
// local variable whose every tracked assignment is field-backed.
func (r *allocfreeRun) fieldBacked(n *callgraph.Node, info *types.Info, expr ast.Expr, visiting map[*types.Var]bool) bool {
	for {
		expr = ast.Unparen(expr)
		if sl, ok := expr.(*ast.SliceExpr); ok {
			expr = sl.X
			continue
		}
		break
	}
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return true
		}
	case *ast.CallExpr:
		// append(base, ...) chained as a value: provenance is the base.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && len(e.Args) > 0 {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
				return r.fieldBacked(n, info, e.Args[0], visiting)
			}
		}
	case *ast.Ident:
		v, ok := identObj(info, e).(*types.Var)
		if !ok || v.IsField() || visiting[v] {
			return false
		}
		visiting[v] = true
		// Self-reassignments (`x = append(x, ...)`, `x = x[:0]`) are neutral:
		// they keep whatever backing x already has. The variable is
		// field-backed when at least one origin is a struct field and every
		// non-self origin is.
		backed := false
		for _, o := range r.localOrigins(n)[v] {
			if appendBaseVar(info, o) == v {
				continue
			}
			if !r.fieldBacked(n, info, o, visiting) {
				return false
			}
			backed = true
		}
		return backed
	}
	return false
}

// appendBaseVar resolves the variable an append/reslice chain bottoms out at
// (nil when the chain reaches anything else).
func appendBaseVar(info *types.Info, expr ast.Expr) *types.Var {
	for {
		expr = ast.Unparen(expr)
		if sl, ok := expr.(*ast.SliceExpr); ok {
			expr = sl.X
			continue
		}
		if call, ok := expr.(*ast.CallExpr); ok && len(call.Args) > 0 {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					expr = call.Args[0]
					continue
				}
			}
		}
		break
	}
	if id, ok := expr.(*ast.Ident); ok {
		v, _ := identObj(info, id).(*types.Var)
		return v
	}
	return nil
}

// localOrigins maps each local variable in n's body to the RHS expressions of
// its 1-1 assignments (append-base provenance).
func (r *allocfreeRun) localOrigins(n *callgraph.Node) map[*types.Var][]ast.Expr {
	if m, ok := r.origins[n]; ok {
		return m
	}
	m := map[*types.Var][]ast.Expr{}
	info := n.Unit.Info
	ast.Inspect(n.Body, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				if v, ok := assignObj(info, lhs).(*types.Var); ok && !v.IsField() {
					m[v] = append(m[v], s.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(s.Names) == len(s.Values) {
				for i, name := range s.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						m[v] = append(m[v], s.Values[i])
					}
				}
			}
		}
		return true
	})
	r.origins[n] = m
	return m
}

// checkCallArgBoxing flags implicit boxing at call sites: passing a concrete
// non-pointer value for an interface-typed parameter (including variadic
// ...any fans like fmt's) allocates per record.
func (r *allocfreeRun) checkCallArgBoxing(root hotRoot, tree map[*callgraph.Node]*callgraph.Edge, n *callgraph.Node, info *types.Info, call *ast.CallExpr) {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	if call.Ellipsis.IsValid() {
		return // s... passes the slice through; no per-element boxing here
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if sl, ok := params.At(params.Len() - 1).Type().Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		r.checkBoxing(root, tree, n, info, pt, arg, "interface argument")
	}
}

// capturesLocals reports whether the literal references a variable declared
// outside it (other than package-level state): such closures carry a capture
// allocation.
func capturesLocals(info *types.Info, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal (params, locals)
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level var: no capture cell
		}
		captured = true
		return false
	})
	return captured
}

// stdCalleeVerdict classifies a call into a package outside the module (the
// standard library, whose bodies are not loaded). The allowlist names
// functions known not to allocate per call (or to amortize, like sync.Pool);
// known allocators get a precise message; everything else is reported as
// unproven — extend the allowlist deliberately, with a comment, not ad hoc.
func stdCalleeVerdict(fn *types.Func) (bool, string) {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	name := fn.Name()
	allow := func(names ...string) bool {
		for _, a := range names {
			if name == a {
				return true
			}
		}
		return false
	}
	switch pkg {
	case "bytes":
		if allow("IndexByte", "TrimSpace", "TrimRight", "TrimLeft", "Compare", "Equal", "HasPrefix", "HasSuffix", "Count", "ContainsRune", "IndexRune") {
			return true, ""
		}
		// Buffer methods grow an internal buffer to a high-water mark — the
		// same amortization as the cap-guard idiom — except the constructors.
		if allow("Write", "WriteByte", "WriteString", "WriteRune", "Reset", "Bytes", "Len", "Cap", "Grow", "Truncate", "Next") {
			return true, ""
		}
	case "strings":
		if allow("Compare", "TrimSpace", "IndexByte", "HasPrefix", "HasSuffix", "EqualFold", "Count", "ContainsRune", "IndexRune") {
			return true, ""
		}
	case "bufio":
		// Reader/Writer methods reuse their internal buffer; only the
		// constructors allocate.
		if !strings.HasPrefix(name, "New") {
			return true, ""
		}
	case "errors":
		if allow("Is", "As", "Unwrap") {
			return true, ""
		}
	case "sync":
		if allow("Get", "Put", "Lock", "Unlock", "RLock", "RUnlock", "TryLock") {
			return true, ""
		}
	case "strconv":
		if strings.HasPrefix(name, "Append") {
			return true, ""
		}
	case "unicode/utf8", "unicode", "math", "math/bits":
		return true, "" // pure computation, no allocation anywhere
	case "io":
		// Sentinel comparisons only; io funcs themselves are not allowlisted.
	}
	switch {
	case pkg == "fmt":
		return false, fmt.Sprintf("calls fmt.%s, which allocates per record", name)
	case pkg == "errors" && name == "New":
		return false, "calls errors.New, which allocates per record"
	case pkg == "strconv":
		return false, fmt.Sprintf("calls strconv.%s, which allocates (use strconv.Append* or a fast path)", name)
	}
	return false, fmt.Sprintf("calls %s: not on the allocation-free allowlist", fn.FullName())
}
