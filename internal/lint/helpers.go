package lint

import (
	"go/ast"
	"go/types"
)

// walkParents traverses the AST depth-first, invoking fn with each node and
// the stack of its ancestors (outermost first). Returning false skips the
// node's children.
func walkParents(root ast.Node, fn func(n ast.Node, parents []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if !descend {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// funcBodies yields every function body in the file: declarations and
// literals, each paired with its declaring node.
func funcBodies(file *ast.File, fn func(node ast.Node, body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d, d.Body)
			}
		case *ast.FuncLit:
			fn(d, d.Body)
		}
		return true
	})
}

// namedType reports whether t (after stripping pointers and aliases) is the
// named type pkgPath.name.
func namedType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// staticCallee resolves the *types.Func a call statically dispatches to, or
// nil for calls through function values, built-ins, and conversions.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// funcIs reports whether fn is the function or method pkgPath.name (name is
// the bare identifier; the receiver type is not matched here).
func funcIs(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorType)
}

// identObj resolves an identifier expression to its object, or nil when the
// expression is not a plain identifier.
func identObj(info *types.Info, expr ast.Expr) types.Object {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
