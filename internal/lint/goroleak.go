package lint

import (
	"go/ast"
	"go/token"

	"scoop/internal/lint/callgraph"
)

// AnalyzerGoroLeak proves, per `go` statement, that the spawned function can
// terminate. A goroutine whose body (or any function it statically calls)
// spins in a `for {}` loop with no `return` and no `break` out of the loop
// runs for the life of the process: scoopd cannot drain on shutdown, and
// under sustained ingestion each leaked goroutine pins its stack and
// captured buffers. The accepted termination paths are exactly the ones a
// reviewer looks for — a `case <-ctx.Done(): return`, a `for range ch` that
// ends on channel close, or bounded work signalled via WaitGroup.Done — all
// of which introduce a return/break/range shape this analyzer recognizes.
//
// The proof is conservative in the other direction too: goroutines spawned
// through function values or interface methods cannot be resolved without
// SSA and are skipped (ROADMAP open item).
var AnalyzerGoroLeak = &Analyzer{
	Name:      "goroleak",
	Doc:       "spawned goroutines must have a termination path (context cancel, channel close, or bounded work)",
	RunModule: runGoroLeak,
}

func runGoroLeak(pass *ModulePass) {
	for _, n := range pass.Graph.Nodes() {
		info := n.Unit.Info
		ast.Inspect(n.Body, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false // literal bodies are their own graph nodes
			}
			gs, ok := x.(*ast.GoStmt)
			if !ok {
				return true
			}
			var target *callgraph.Node
			switch fun := ast.Unparen(gs.Call.Fun).(type) {
			case *ast.FuncLit:
				target = pass.Graph.LitNode(fun)
			default:
				if fn := staticCallee(info, gs.Call); fn != nil {
					target = pass.Graph.FuncNode(fn)
				}
			}
			if target == nil || target.Body == nil {
				return true // dynamic spawn: unresolvable without SSA
			}
			if loop, chain := findUnboundedLoop(pass, target); loop != token.NoPos {
				pass.ReportPathf(gs.Pos(), chain, "goroutine spawned here never terminates: unbounded for-loop at %s has no return, no break, and no closing channel; tie it to a context, a stop channel, or bounded work so the daemon can drain", pass.Posn(loop))
			}
			return true
		})
	}
}

// findUnboundedLoop searches the spawned function and everything it reaches
// through static calls (and inline literals) for a `for {}` loop that cannot
// exit. Returns the loop position plus the call chain from the spawn target
// to the loop's function, or NoPos when every loop can terminate.
// Goroutine-launching edges are not followed: a nested `go` spawn is
// analyzed at its own go statement, not attributed to the parent.
func findUnboundedLoop(pass *ModulePass, start *callgraph.Node) (token.Pos, []string) {
	tree := pass.Graph.Reach([]*callgraph.Node{start}, func(e *callgraph.Edge) bool {
		if e.Go {
			return false
		}
		return (e.Kind == callgraph.Static || e.Kind == callgraph.Lit) && e.Callee.Body != nil
	})
	var nodes []*callgraph.Node
	for n := range tree {
		if n.Body != nil {
			nodes = append(nodes, n)
		}
	}
	// Deterministic scan order: report the earliest offending loop.
	sortNodesByPos(nodes)
	for _, n := range nodes {
		if pos := unboundedLoopIn(n.Body); pos != token.NoPos {
			return pos, pathStrings(callgraph.Path(tree, n), n)
		}
	}
	return token.NoPos, nil
}

func sortNodesByPos(nodes []*callgraph.Node) {
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && nodes[j].Body.Pos() < nodes[j-1].Body.Pos(); j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
}

// unboundedLoopIn returns the position of the first `for {}` loop in body
// (nested literals excluded) with no exit path, or NoPos.
func unboundedLoopIn(body *ast.BlockStmt) token.Pos {
	found := token.NoPos
	walkParents(body, func(n ast.Node, parents []ast.Node) bool {
		if found != token.NoPos {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if !loopCanExit(loop) {
			found = loop.Pos()
			return false
		}
		return true
	})
	return found
}

// loopCanExit reports whether an infinite `for {}` loop contains a return, a
// break that targets it (directly or via label), or a range over a channel
// (which ends when the channel closes). A `break` inside a nested select,
// switch, or loop targets that construct, not this loop — the classic
// `for { select { ...: break } }` bug — so break targets are resolved
// against the enclosing-statement stack.
func loopCanExit(loop *ast.ForStmt) bool {
	exits := false
	// labels maps label names to their labeled statements for break-label
	// resolution inside this loop.
	walkParents(loop.Body, func(n ast.Node, parents []ast.Node) bool {
		if exits {
			return false
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			exits = true
			return false
		case *ast.BranchStmt:
			if s.Tok != token.BREAK && s.Tok != token.GOTO {
				return true
			}
			if s.Label != nil {
				// A labeled break/goto out of the loop: the label's statement
				// is outside loop.Body (not among the walked parents).
				target := labeledStmtIn(loop.Body, s.Label.Name)
				if target == nil {
					exits = true // jumps somewhere outside the loop
					return false
				}
				return true
			}
			if s.Tok == token.BREAK && breakTargetsLoop(loop, parents) {
				exits = true
				return false
			}
		case *ast.RangeStmt:
			// Scanning continues into the range body for return/break.
		}
		return true
	})
	return exits
}

// labeledStmtIn finds a labeled statement with the given name inside root.
func labeledStmtIn(root ast.Node, name string) *ast.LabeledStmt {
	var found *ast.LabeledStmt
	ast.Inspect(root, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if ls, ok := n.(*ast.LabeledStmt); ok && ls.Label.Name == name {
			found = ls
			return false
		}
		return true
	})
	return found
}

// breakTargetsLoop reports whether an unlabeled break with the given
// ancestor stack (innermost last) escapes the given loop: true only when no
// nearer for/range/select/switch intervenes.
func breakTargetsLoop(loop *ast.ForStmt, parents []ast.Node) bool {
	for i := len(parents) - 1; i >= 0; i-- {
		switch parents[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
			return false // the break binds to this nearer construct
		}
	}
	// No intervening construct inside loop.Body: the break exits `loop`.
	return true
}
