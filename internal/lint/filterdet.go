package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"

	"scoop/internal/lint/callgraph"
)

// AnalyzerFilterDet proves registered storlet filters deterministic. The
// connector's fallback resync (discard the delivered prefix of a re-run) and
// the roadmap's pushdown result cache are sound only if a filter chain maps
// identical input bytes to identical output bytes on every run. This analyzer
// turns that assumption from a comment into a machine-checked proof: every
// filter reachable from an Engine.Register call site must be free of
// nondeterminism sources — time.Now/time.Since, math/rand (v1 and v2),
// crypto/rand, environment reads, writes to package-level mutable state, and
// map-range iteration whose order can escape into output bytes (the
// collect-keys-then-sort idiom is recognized and allowed).
//
// Candidates and reachability mirror sandboxpure, with the dataflow layer's
// Flow edges additionally followed so functions stored in func-typed fields
// are analyzed too. The storlet engine package itself is the trusted runtime
// (its breaker rolls dice and its accounting reads the clock by design);
// edges into it are not traversed.
//
// The verdict is exported as a generated manifest (internal/detmanifest,
// written by `scoop-lint -write-manifest`) keyed by the filter's registered
// name, which the connector consults before arming compute-side fallback —
// unproven filters degrade to NoFallback behavior automatically.
var AnalyzerFilterDet = &Analyzer{
	Name:      "filterdet",
	Doc:       "storlet filters must be deterministic: no clock, rand, env, global state, or unordered map iteration",
	RunModule: runFilterDet,
}

// nondetFuncs are the blocklisted call targets, package path -> function
// names (empty set = every function in the package).
var nondetFuncs = map[string]map[string]bool{
	"time":         {"Now": true, "Since": true, "Until": true},
	"math/rand":    nil,
	"math/rand/v2": nil,
	"crypto/rand":  nil,
	"os":           {"Getenv": true, "LookupEnv": true, "Environ": true},
}

// isNondetFunc reports whether fn is a blocklisted nondeterminism source.
func isNondetFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	names, ok := nondetFuncs[fn.Pkg().Path()]
	if !ok {
		return false
	}
	return names == nil || names[fn.Name()]
}

// detCandidate is one registered filter: its statically-determined name (""
// when the name is computed at runtime), its entry-point nodes, and where it
// was registered.
type detCandidate struct {
	// label names the candidate for diagnostics: the concrete type or the
	// wrapped FilterFunc function.
	label string
	// name is the filter's registered name when it is a compile-time
	// constant; dynamic names stay "" and can never enter the manifest.
	name  string
	pos   token.Pos
	nodes []*callgraph.Node
}

// detViolation is one nondeterminism source reached from a candidate.
type detViolation struct {
	pos    token.Pos
	what   string
	path   []*callgraph.Edge
	inNode *callgraph.Node
}

// FilterVerdict is the public determinism result for one filter candidate.
type FilterVerdict struct {
	// Label names the filter implementation (type or function).
	Label string
	// Name is the constant registered name ("" when dynamic).
	Name string
	// Proven is true when no nondeterminism source is reachable.
	Proven bool
}

// DeterminismVerdicts computes the filterdet result for every registered
// filter candidate in the module. It is the shared core of the analyzer and
// of `scoop-lint -write-manifest`.
func DeterminismVerdicts(pkgs []*Package, graph *callgraph.Graph) []FilterVerdict {
	candidates, _ := detCandidates(pkgs, graph)
	out := make([]FilterVerdict, 0, len(candidates))
	for _, c := range candidates {
		v := detViolations(pkgs, graph, c)
		out = append(out, FilterVerdict{Label: c.label, Name: c.name, Proven: len(v) == 0})
	}
	return out
}

// ProvenFilterNames returns the sorted registered names of every filter
// proven deterministic. Filters with dynamic names are excluded even when
// proven: the manifest keys on the name the pushdown task will carry.
func ProvenFilterNames(pkgs []*Package, graph *callgraph.Graph) []string {
	var names []string
	for _, v := range DeterminismVerdicts(pkgs, graph) {
		if v.Proven && v.Name != "" {
			names = append(names, v.Name)
		}
	}
	sort.Strings(names)
	return names
}

func runFilterDet(pass *ModulePass) {
	candidates, _ := detCandidates(pass.Pkgs, pass.Graph)
	for _, c := range candidates {
		for _, v := range detViolations(pass.Pkgs, pass.Graph, c) {
			chain := describePath(v.path)
			if v.inNode != nil && len(v.path) > 0 {
				chain += " -> " + v.inNode.Name()
			} else if v.inNode != nil {
				chain = "in " + v.inNode.Name()
			}
			pass.ReportPathf(v.pos, pathStrings(v.path, v.inNode),
				"filter %s is not provably deterministic: %s (%s); fallback resync and result caching need byte-identical re-runs",
				c.label, v.what, chain)
		}
	}
}

// pathStrings renders a BFS edge path (plus the node the violation sits in)
// as the node-name chain carried on the diagnostic for -json consumers.
func pathStrings(path []*callgraph.Edge, last *callgraph.Node) []string {
	var out []string
	if len(path) > 0 {
		out = append(out, path[0].Caller.Name())
		for _, e := range path {
			out = append(out, e.Callee.Name())
		}
	}
	if last != nil && (len(out) == 0 || out[len(out)-1] != last.Name()) {
		out = append(out, last.Name())
	}
	return out
}

// detCandidates collects every registered filter in the module, one candidate
// per implementation, skipping the storlet engine package's own plumbing
// (pipelineFilter, FilterFunc's generic wrapper). The second result is the
// engine package path ("" when the storlet package is absent).
func detCandidates(pkgs []*Package, graph *callgraph.Graph) ([]detCandidate, string) {
	sp := findStorletPkg(pkgs)
	if sp == nil {
		return nil, ""
	}
	filterIface, engineType := storletTypes(sp)
	if filterIface == nil || engineType == nil {
		return nil, sp.Path
	}

	var candidates []detCandidate
	seen := map[string]bool{}
	addType := func(t types.Type, pos token.Pos) {
		tn := namedTypeName(t)
		if tn == nil || tn.Pkg() == nil || tn.Pkg().Path() == sp.Path {
			return // engine-internal plumbing is the trusted runtime
		}
		label := tn.Pkg().Name() + "." + tn.Name()
		if seen[label] {
			return
		}
		seen[label] = true
		var nodes []*callgraph.Node
		for i := 0; i < filterIface.NumMethods(); i++ {
			m := filterIface.Method(i)
			obj, _, _ := types.LookupFieldOrMethod(t, true, m.Pkg(), m.Name())
			if fn, ok := obj.(*types.Func); ok {
				if n := graph.FuncNode(fn); n != nil && n.Body != nil {
					nodes = append(nodes, n)
				}
			}
		}
		if len(nodes) == 0 {
			return
		}
		candidates = append(candidates, detCandidate{
			label: label,
			name:  constantNameMethod(t, graph),
			pos:   pos,
			nodes: nodes,
		})
	}
	addAllImpls := func(pos token.Pos) {
		for _, pkg := range pkgs {
			scope := pkg.Types.Scope()
			names := scope.Names()
			sort.Strings(names)
			for _, name := range names {
				tn, ok := scope.Lookup(name).(*types.TypeName)
				if !ok || tn.IsAlias() || types.IsInterface(tn.Type()) {
					continue
				}
				t := tn.Type()
				if types.Implements(t, filterIface) || types.Implements(types.NewPointer(t), filterIface) {
					addType(t, pos)
				}
			}
		}
	}

	filterFuncType := sp.Types.Scope().Lookup("FilterFunc")
	for _, pkg := range pkgs {
		info := pkg.Info
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.CallExpr:
					if !isEngineRegister(info, x, engineType) || len(x.Args) == 0 {
						return true
					}
					if pkg.Path == sp.Path {
						return true // the engine registering its own wrappers
					}
					tv, ok := info.Types[x.Args[0]]
					if !ok || tv.Type == nil {
						return true
					}
					if types.IsInterface(tv.Type) {
						addAllImpls(x.Pos())
					} else {
						addType(tv.Type, x.Pos())
					}
				case *ast.CompositeLit:
					if filterFuncType == nil {
						return true
					}
					tv, ok := info.Types[x]
					if !ok || tv.Type == nil || !sameNamed(tv.Type, filterFuncType.Type()) {
						return true
					}
					if c, ok := filterFuncCandidate(pkg, graph, x); ok {
						if !seen[c.label] {
							seen[c.label] = true
							candidates = append(candidates, c)
						}
					}
				}
				return true
			})
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].label < candidates[j].label })
	return candidates, sp.Path
}

// filterFuncCandidate builds a candidate from a FilterFunc composite literal:
// the Fn field supplies the entry point, the FilterName field (when constant)
// supplies the name.
func filterFuncCandidate(pkg *Package, graph *callgraph.Graph, lit *ast.CompositeLit) (detCandidate, bool) {
	c := detCandidate{pos: lit.Pos()}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "FilterName":
			if tv, ok := pkg.Info.Types[kv.Value]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				c.name = constant.StringVal(tv.Value)
			}
		case "Fn":
			switch v := ast.Unparen(kv.Value).(type) {
			case *ast.FuncLit:
				if n := graph.LitNode(v); n != nil {
					c.nodes = append(c.nodes, n)
					c.label = n.Name()
				}
			default:
				if fn, ok := identObj(pkg.Info, kv.Value).(*types.Func); ok {
					if n := graph.FuncNode(fn); n != nil && n.Body != nil {
						c.nodes = append(c.nodes, n)
						c.label = fn.FullName()
					}
				}
			}
		}
	}
	if len(c.nodes) == 0 {
		return detCandidate{}, false
	}
	if c.label == "" {
		c.label = "FilterFunc literal"
	}
	return c, true
}

// namedTypeName unwraps pointers and returns the named type's TypeName.
func namedTypeName(t types.Type) *types.TypeName {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// constantNameMethod extracts the constant string a type's Name() method
// returns, or "" when the method is absent or its result is computed.
func constantNameMethod(t types.Type, graph *callgraph.Graph) string {
	tn := namedTypeName(t)
	if tn == nil {
		return ""
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, tn.Pkg(), "Name")
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	n := graph.FuncNode(fn)
	if n == nil || n.Body == nil || n.Unit == nil || len(n.Body.List) != 1 {
		return ""
	}
	ret, ok := n.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return ""
	}
	if tv, ok := n.Unit.Info.Types[ret.Results[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value)
	}
	return ""
}

// detViolations computes every nondeterminism source reachable from one
// candidate, in deterministic order.
func detViolations(pkgs []*Package, graph *callgraph.Graph, c detCandidate) []detViolation {
	sp := findStorletPkg(pkgs)
	enginePath := ""
	if sp != nil {
		enginePath = sp.Path
	}
	tree := graph.Reach(c.nodes, func(e *callgraph.Edge) bool {
		if enginePath != "" && e.Callee.PkgPath() == enginePath {
			return false // the engine is the trusted runtime, not filter code
		}
		switch e.Kind {
		case callgraph.Static, callgraph.Lit, callgraph.Flow, callgraph.Iface:
			return true
		case callgraph.Devirt:
			return true // value-proven dispatch: followed ungated, like Flow
		case callgraph.Impl:
			return graph.ModulePath(e.IfacePkg)
		}
		return false
	})

	var out []detViolation
	for n, via := range tree {
		// Blocklisted callee reached: report at the call site that reached it.
		if via != nil && n.Func != nil && isNondetFunc(n.Func) {
			out = append(out, detViolation{
				pos:  via.Site,
				what: "calls " + n.Func.FullName(),
				path: callgraph.Path(tree, n),
			})
			continue
		}
		// Module node with a body: scan for state writes and map ranges.
		if n.Body == nil || n.Unit == nil {
			continue
		}
		path := callgraph.Path(tree, n)
		for _, v := range bodyViolations(n) {
			v.path = path
			v.inNode = n
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos != out[j].pos {
			return out[i].pos < out[j].pos
		}
		return out[i].what < out[j].what
	})
	return out
}

// bodyViolations scans one function body for intra-procedural nondeterminism:
// writes to package-level mutable state and map-range iteration whose order
// can escape into the output.
func bodyViolations(n *callgraph.Node) []detViolation {
	info := n.Unit.Info
	var out []detViolation
	report := func(pos token.Pos, what string) {
		out = append(out, detViolation{pos: pos, what: what})
	}
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok && x.Pos() != n.Body.Pos() {
			return false // literals are their own nodes, scanned separately
		}
		switch s := x.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range s.Lhs {
				if v := packageLevelTarget(info, lhs); v != nil {
					report(s.Pos(), "writes package-level variable "+v.Name())
				}
			}
		case *ast.IncDecStmt:
			if v := packageLevelTarget(info, s.X); v != nil {
				report(s.Pos(), "writes package-level variable "+v.Name())
			}
		case *ast.RangeStmt:
			tv, ok := info.Types[s.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if sortedCollectRange(info, n.Body, s) {
				return true // collect-then-sort: order cannot escape
			}
			report(s.Pos(), "ranges over a map in iteration order")
		}
		return true
	})
	return out
}

// packageLevelTarget resolves an assignment target to the package-level
// variable it mutates, or nil. Both direct writes (pkgVar = x, pkgVar++) and
// writes into a package-level composite (pkgVar.Field = x, pkgVar[k] = x)
// count: either way the filter's behavior can depend on prior invocations.
func packageLevelTarget(info *types.Info, lhs ast.Expr) *types.Var {
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			v, ok := identObj(info, e).(*types.Var)
			if ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			// pkg.Var or x.Field: check the selected object, then recurse
			// into the receiver chain.
			if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v
			}
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			// A write through a pointer: the pointee's identity is not
			// locally provable; only flag when the pointer expression itself
			// is a package-level var (e.g. *pkgPtr = x).
			lhs = e.X
		default:
			return nil
		}
	}
}

// sortedCollectRange recognizes the deterministic map-iteration idiom: the
// range body only appends keys/values to slice variables, and the enclosing
// function later passes one of those slices to the sort (or slices) package.
func sortedCollectRange(info *types.Info, body *ast.BlockStmt, rng *ast.RangeStmt) bool {
	collected := map[types.Object]bool{}
	for _, stmt := range rng.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return false
		}
		if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fun.Name != "append" {
			return false
		}
		if obj := identObj(info, lhs); obj != nil {
			collected[obj] = true
		}
	}
	if len(collected) == 0 {
		return false
	}
	// Look for a later sort.*/slices.* call over a collected slice.
	sorted := false
	ast.Inspect(body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && collected[identObj(info, id)] {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}
