package lint

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeMiniModule lays down a tiny self-contained module and returns its
// root.
func writeMiniModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module mini\n\ngo 1.21\n",
		"mini.go": `package mini

func Double(x int) int { return x + x }
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(root, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// touch rewrites a file with new content and a strictly newer mtime, so the
// fingerprint must move even on filesystems with coarse timestamps.
func touch(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintTracksEdits(t *testing.T) {
	root := writeMiniModule(t)
	fp1, err := Fingerprint(root)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := Fingerprint(root)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("fingerprint not stable on an unchanged tree: %s vs %s", fp1, fp2)
	}
	touch(t, filepath.Join(root, "mini.go"), "package mini\n\nfunc Double(x int) int { return 2 * x }\n")
	fp3, err := Fingerprint(root)
	if err != nil {
		t.Fatal(err)
	}
	if fp3 == fp1 {
		t.Fatal("fingerprint unchanged after a source edit")
	}
	// Test files are outside the analyzed set and must not perturb the key.
	if err := os.WriteFile(filepath.Join(root, "mini_test.go"), []byte("package mini\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fp4, err := Fingerprint(root)
	if err != nil {
		t.Fatal(err)
	}
	if fp4 != fp3 {
		t.Fatal("fingerprint moved when only a _test.go file was added")
	}
}

// TestLoadCacheReusesPackages proves the in-process layer: an unchanged tree
// returns the identical package set, an edited tree does not.
func TestLoadCacheReusesPackages(t *testing.T) {
	root := writeMiniModule(t)
	first, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 1 || len(second) != 1 || first[0] != second[0] {
		t.Fatalf("warm Load did not reuse the cached package set: %p vs %p", first[0], second[0])
	}
	touch(t, filepath.Join(root, "mini.go"), "package mini\n\nfunc Triple(x int) int { return 3 * x }\n")
	third, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	if third[0] == first[0] {
		t.Fatal("Load returned a stale package set after a source edit")
	}
	if third[0].Types.Scope().Lookup("Triple") == nil {
		t.Fatal("reloaded package does not reflect the edit")
	}
}

// TestCachedRunReplaysVerdict proves the on-disk layer end to end: a second
// run over an unchanged tree is a cache hit with identical diagnostics, and
// an edit invalidates it.
func TestCachedRunReplaysVerdict(t *testing.T) {
	root := writeMiniModule(t)
	// errwrap trips on %v-formatting an error, giving the cache a non-empty
	// verdict to replay byte-for-byte.
	touch(t, filepath.Join(root, "mini.go"), `package mini

import "fmt"

func Wrap(err error) error {
	return fmt.Errorf("wrap: %v", err)
}
`)
	cacheDir := filepath.Join(t.TempDir(), "cache")
	analyzers := Analyzers()

	diags, pkgCount, hit, err := CachedRun(root, cacheDir, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first run must be a cache miss")
	}
	if pkgCount != 1 || len(diags) == 0 {
		t.Fatalf("cold run: pkgCount=%d diags=%v, want 1 package and >=1 finding", pkgCount, diags)
	}

	warm, warmCount, hit, err := CachedRun(root, cacheDir, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second run over an unchanged tree must hit the cache")
	}
	if warmCount != pkgCount || len(warm) != len(diags) {
		t.Fatalf("replayed verdict differs: %d pkgs / %d diags, want %d / %d", warmCount, len(warm), pkgCount, len(diags))
	}
	for i := range warm {
		if warm[i].String() != diags[i].String() {
			t.Errorf("diag %d differs after replay: %q vs %q", i, warm[i], diags[i])
		}
	}

	// A -only style subset must not replay the full-suite verdict.
	_, _, hit, err = CachedRun(root, cacheDir, analyzers[:1])
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("different analyzer set must miss the cache")
	}

	// An edit invalidates.
	touch(t, filepath.Join(root, "mini.go"), "package mini\n\nfunc Quad(x int) int { return 4 * x }\n")
	clean, _, hit, err := CachedRun(root, cacheDir, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("run after a source edit must miss the cache")
	}
	if len(clean) != 0 {
		t.Fatalf("edited module should be clean, got %v", clean)
	}
}
