package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerLockHeld reports mutexes held across blocking operations: channel
// sends/receives, selects without a default, and well-known blocking calls
// (HTTP round-trips, dials, sleeps, WaitGroup.Wait, subprocess waits). The
// proxy, cluster, and metrics packages guard hot request-path state with
// mutexes; holding one across a network round-trip serialises every request
// behind the slowest peer and can deadlock the GET/PUT pipeline.
var AnalyzerLockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "mutexes must not be held across blocking I/O or channel operations",
	Run:  runLockHeld,
}

func runLockHeld(pass *Pass) {
	for _, file := range pass.Files {
		funcBodies(file, func(_ ast.Node, body *ast.BlockStmt) {
			ast.Inspect(body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok && n != body {
					return false
				}
				if list := stmtList(n); list != nil {
					checkLockRegions(pass, list)
				}
				return true
			})
		})
	}
}

// stmtList extracts the statement list of block-like nodes.
func stmtList(n ast.Node) []ast.Stmt {
	switch b := n.(type) {
	case *ast.BlockStmt:
		return b.List
	case *ast.CaseClause:
		return b.Body
	case *ast.CommClause:
		return b.Body
	}
	return nil
}

// checkLockRegions scans one statement list for Lock() calls and walks the
// statements executed while the lock is held.
func checkLockRegions(pass *Pass, list []ast.Stmt) {
	for i, stmt := range list {
		recv, ok := lockCall(pass.Info, stmt, "Lock", "RLock")
		if !ok {
			continue
		}
		// The held region runs from the statement after the Lock to the
		// matching Unlock at this nesting level — or to the end of the list
		// when the unlock is deferred or absent.
		end := len(list)
		for j := i + 1; j < len(list); j++ {
			if _, isDefer := list[j].(*ast.DeferStmt); isDefer {
				continue // a deferred Unlock releases at return, not here
			}
			if r, ok := lockCall(pass.Info, list[j], "Unlock", "RUnlock"); ok && r == recv {
				end = j
				break
			}
		}
		for _, held := range list[i+1 : end] {
			if _, isDefer := held.(*ast.DeferStmt); isDefer {
				continue // runs after the function returns, not under this region's scan
			}
			reportBlockingOps(pass, held, recv)
		}
	}
}

// lockCall reports whether stmt is a plain or deferred call to one of the
// named sync methods, returning the receiver expression rendered as a string
// so Lock/Unlock pairs on the same mutex can be matched.
func lockCall(info *types.Info, stmt ast.Stmt, names ...string) (string, bool) {
	var call *ast.CallExpr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.DeferStmt:
		call = s.Call
	}
	if call == nil {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	for _, name := range names {
		if fn.Name() == name {
			return types.ExprString(sel.X), true
		}
	}
	return "", false
}

// reportBlockingOps walks one held statement and reports blocking operations.
// Function literals are skipped: their bodies run outside the lock region
// (goroutines, callbacks) or are themselves analyzed when invoked.
func reportBlockingOps(pass *Pass, stmt ast.Stmt, recv string) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch op := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			pass.Reportf(op.Pos(), "%s held across channel send", recv)
		case *ast.UnaryExpr:
			if op.Op.String() == "<-" {
				pass.Reportf(op.Pos(), "%s held across channel receive", recv)
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[op.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					pass.Reportf(op.Pos(), "%s held across range over channel", recv)
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range op.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				pass.Reportf(op.Pos(), "%s held across blocking select", recv)
			}
			// The comm clauses are non-blocking (default present) or already
			// covered by the select report; scan only the case bodies.
			for _, c := range op.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						reportBlockingOps(pass, s, recv)
					}
				}
			}
			return false
		case *ast.CallExpr:
			if fn := staticCallee(pass.Info, op); fn != nil && isBlockingFunc(fn) {
				pass.Reportf(op.Pos(), "%s held across blocking call %s", recv, fn.FullName())
			}
		}
		return true
	})
}

// isBlockingFunc reports whether fn is a well-known blocking std-library
// function: network round-trips, dials/accepts, sleeps, and waits.
func isBlockingFunc(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "net/http":
		switch fn.Name() {
		case "Do", "Get", "Post", "PostForm", "Head":
			return true
		}
	case "net":
		switch fn.Name() {
		case "Dial", "DialTimeout", "DialTCP", "DialUDP", "DialIP", "DialUnix", "Listen", "Accept":
			return true
		}
	case "time":
		return fn.Name() == "Sleep"
	case "sync":
		return fn.Name() == "Wait" // (*WaitGroup).Wait, (*Cond).Wait
	case "os/exec":
		switch fn.Name() {
		case "Run", "Wait", "Output", "CombinedOutput":
			return true
		}
	}
	return false
}
