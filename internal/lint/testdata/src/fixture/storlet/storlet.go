// Package storlet is a miniature stand-in for the real engine: just enough
// surface (Engine.Register, Filter, FilterFunc) for the sandboxpure analyzer
// to seed from. The analyzer locates it by its "/storlet" path suffix.
package storlet

// Context carries per-invocation information to a filter.
type Context struct{}

// Filter mirrors the real storlet.Filter shape.
type Filter interface {
	Name() string
	Invoke(ctx *Context, in []byte) ([]byte, error)
}

// FilterFunc adapts a function to the Filter interface.
type FilterFunc struct {
	FilterName string
	Fn         func(ctx *Context, in []byte) ([]byte, error)
}

// Name implements Filter.
func (f FilterFunc) Name() string { return f.FilterName }

// Invoke implements Filter.
func (f FilterFunc) Invoke(ctx *Context, in []byte) ([]byte, error) { return f.Fn(ctx, in) }

// Engine is the filter registry.
type Engine struct {
	filters map[string]Filter
}

// Register deploys a filter.
func (e *Engine) Register(f Filter) error {
	if e.filters == nil {
		e.filters = make(map[string]Filter)
	}
	e.filters[f.Name()] = f
	return nil
}
