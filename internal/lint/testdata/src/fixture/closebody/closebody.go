// Package closebody holds known-good and known-bad HTTP response handling
// shapes for the closebody analyzer.
package closebody

import (
	"io"
	"net/http"
)

func bad(url string) (int, error) {
	resp, err := http.Get(url) // want:closebody response body of "resp" is never closed
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

func badCustomClient(c *http.Client, req *http.Request) error {
	resp, err := c.Do(req) // want:closebody response body of "resp" is never closed
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return io.EOF
	}
	return nil
}

func goodDeferClose(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

func goodHandoff(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	drain(resp.Body)
	return nil
}

func goodWholeResponseHandoff(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return consume(resp)
}

func goodReturned(url string) (io.ReadCloser, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

func goodIgnoredResponse(url string) {
	// The response variable is blank: nothing to track (go vet owns this).
	_, _ = http.Get(url)
}

func drain(rc io.ReadCloser) {
	_, _ = io.Copy(io.Discard, rc)
	rc.Close()
}

func consume(resp *http.Response) error {
	defer resp.Body.Close()
	_, err := io.Copy(io.Discard, resp.Body)
	return err
}
