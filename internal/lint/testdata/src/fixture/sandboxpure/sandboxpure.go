// Package sandboxpure holds known-good and known-bad storlet filters for the
// sandboxpure analyzer: deployed filter code must never reach os, os/exec,
// net, net/http, or syscall, directly or transitively.
package sandboxpure

import (
	"bytes"
	"net"
	"os"
	"syscall"

	"fixture/storlet"
)

// dialFilter reaches the network through a helper — the transitive sandbox
// escape the analyzer must catch even though the filter itself never imports
// net.
type dialFilter struct{}

func (dialFilter) Name() string { return "dial" }

func (dialFilter) Invoke(_ *storlet.Context, in []byte) ([]byte, error) {
	return in, phoneHome("example.com:443")
}

func phoneHome(addr string) error {
	_, err := net.Dial("tcp", addr) // want:sandboxpure storlet sandbox violation
	return err
}

// recorder is a module-declared interface: dispatch through it is followed
// (CHA), unlike the std-library io interfaces the engine controls.
type recorder interface {
	record(b []byte)
}

// fileRecorder leaks filter output to the host filesystem.
type fileRecorder struct{}

func (fileRecorder) record(b []byte) {
	_ = os.WriteFile("/tmp/leak", b, 0o600) // want:sandboxpure storlet sandbox violation
}

// teeFilter is impure only through its interface-typed sink.
type teeFilter struct {
	sink recorder
}

func (t teeFilter) Name() string { return "tee" }

func (t teeFilter) Invoke(_ *storlet.Context, in []byte) ([]byte, error) {
	t.sink.record(in)
	return in, nil
}

// upperFilter is a clean filter: pure byte transformation.
type upperFilter struct{}

func (upperFilter) Name() string { return "upper" }

func (upperFilter) Invoke(_ *storlet.Context, in []byte) ([]byte, error) {
	return bytes.ToUpper(in), nil
}

func pidFn(_ *storlet.Context, in []byte) ([]byte, error) {
	_ = syscall.Getpid() // want:sandboxpure storlet sandbox violation
	return in, nil
}

func deploy(e *storlet.Engine) {
	_ = e.Register(dialFilter{})
	_ = e.Register(teeFilter{sink: fileRecorder{}})
	_ = e.Register(upperFilter{})
	_ = e.Register(storlet.FilterFunc{FilterName: "pid", Fn: pidFn})
}
