// Package errwrap holds known-good and known-bad fmt.Errorf call shapes for
// the errwrap analyzer.
package errwrap

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

func bad(err error) error {
	return fmt.Errorf("open failed: %v", err) // want:errwrap error formatted with %v
}

func badString(err error) error {
	return fmt.Errorf("attempt %d failed: %s", 3, err) // want:errwrap error formatted with %s
}

func badIndexed(err error) error {
	return fmt.Errorf("code %[2]d: %[1]v", err, 3) // want:errwrap error formatted with %v
}

func badStarWidth(err error) error {
	return fmt.Errorf("%*d: %v", 8, 42, err) // want:errwrap error formatted with %v
}

func badCustomError() error {
	return fmt.Errorf("wrapped: %v", errSentinel) // want:errwrap error formatted with %v
}

func good(err error) error {
	return fmt.Errorf("open failed: %w", err)
}

func goodStringified(err error) error {
	return fmt.Errorf("boundary: %s", err.Error())
}

func goodNoError(name string) error {
	return fmt.Errorf("no such object %q in %s", name, "container")
}

func goodPercentLiteral(pct int, err error) error {
	return fmt.Errorf("%d%% done: %w", pct, err)
}

func ignoredWithReason(err error) error {
	//lint:ignore errwrap boundary error is intentionally opaque to callers
	return fmt.Errorf("redacted: %v", err)
}

func ignoreNeedsReason(err error) error {
	//lint:ignore errwrap
	return fmt.Errorf("still flagged: %v", err) // want:errwrap error formatted with %v
}
