// Package filterdet holds known-good and known-bad storlet filters for the
// filterdet analyzer: deployed filter code must be provably deterministic —
// no clock, rand, env reads, package-level state, or unordered map iteration
// escaping into output bytes.
package filterdet

import (
	"sort"
	"time"

	"fixture/storlet"
)

// clock hides the nondeterminism source behind a func-typed struct field:
// only the dataflow layer's Flow edges can connect Invoke to unixNow.
type clock struct {
	now func() int64
}

func unixNow() int64 {
	return time.Now().UnixNano() // want:filterdet filter filterdet.stampFilter is not provably deterministic: calls time.Now
}

// stampFilter appends a timestamp byte to every payload. The clock reaches
// the filter two assignments away (unixNow -> f -> clock{now: f}) through a
// func-typed field — the exact shape the pre-dataflow call graph lost.
type stampFilter struct {
	c clock
}

func (stampFilter) Name() string { return "stamp" }

func (s stampFilter) Invoke(_ *storlet.Context, in []byte) ([]byte, error) {
	return append(in, byte(s.c.now())), nil
}

func newStamp() stampFilter {
	f := unixNow
	c := clock{now: f}
	return stampFilter{c: c}
}

// seen survives across invocations: the filter's output depends on what it
// has already eaten, so a replay is not byte-identical.
var seen = map[string]int{}

type dedupFilter struct{}

func (dedupFilter) Name() string { return "dedup" }

func (dedupFilter) Invoke(_ *storlet.Context, in []byte) ([]byte, error) {
	seen[string(in)]++ // want:filterdet filter filterdet.dedupFilter is not provably deterministic: writes package-level variable seen
	if seen[string(in)] > 1 {
		return nil, nil
	}
	return in, nil
}

// tallyFilter emits map keys in iteration order: distinct runs produce
// distinct byte orders.
type tallyFilter struct{}

func (tallyFilter) Name() string { return "tally" }

func (tallyFilter) Invoke(_ *storlet.Context, in []byte) ([]byte, error) {
	counts := map[byte]int{}
	for _, b := range in {
		counts[b]++
	}
	var out []byte
	for b := range counts { // want:filterdet filter filterdet.tallyFilter is not provably deterministic: ranges over a map in iteration order
		out = append(out, b)
	}
	return out, nil
}

// histFilter is the deterministic counterpart: the same map, iterated via
// the collect-keys-then-sort idiom the analyzer recognizes. Must stay silent.
type histFilter struct{}

func (histFilter) Name() string { return "hist" }

func (histFilter) Invoke(_ *storlet.Context, in []byte) ([]byte, error) {
	counts := map[string]int{}
	for _, b := range in {
		counts[string(b)]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []byte
	for _, k := range keys {
		out = append(out, k...)
	}
	return out, nil
}

// jitterFilter is nondeterministic by design, and the finding is acknowledged
// in place — proving //lint:ignore suppression reaches module-level analyzers
// exactly like the per-file ones.
type jitterFilter struct{}

func (jitterFilter) Name() string { return "jitter" }

func (jitterFilter) Invoke(_ *storlet.Context, in []byte) ([]byte, error) {
	//lint:ignore filterdet fixture: proves module-analyzer suppression works
	n := time.Now().UnixNano() % int64(len(in)+1)
	return in[:n], nil
}

func deploy(e *storlet.Engine) {
	_ = e.Register(newStamp())
	_ = e.Register(dedupFilter{})
	_ = e.Register(tallyFilter{})
	_ = e.Register(histFilter{})
	_ = e.Register(jitterFilter{})
}
