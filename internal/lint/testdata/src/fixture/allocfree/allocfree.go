// Package allocfree exercises the allocfree analyzer: one function per
// allocation-site class, one per amortized exemption, and both sides of the
// devirtualization boundary.
package allocfree

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
)

type rec struct {
	fields  [][]byte
	scratch []byte
}

// ---- allocation-site classes: each line must be caught ----

//scoop:hotpath
func badConvString(b []byte) string {
	return string(b) // want:allocfree hot path is not allocation-free: string([]byte) conversion allocates per record
}

//scoop:hotpath
func badConvBytes(s string) []byte {
	return []byte(s) // want:allocfree hot path is not allocation-free: []byte(string) conversion allocates per record
}

//scoop:hotpath
func badConcat(a, b string) string {
	return a + b // want:allocfree hot path is not allocation-free: string concatenation allocates per record
}

//scoop:hotpath
func badMake(n int) []byte {
	return make([]byte, n) // want:allocfree hot path is not allocation-free: make allocates per record
}

//scoop:hotpath
func badMakeMap() map[string]int {
	return make(map[string]int) // want:allocfree hot path is not allocation-free: make(map) allocates per record
}

//scoop:hotpath
func badMakeChan() chan int {
	return make(chan int) // want:allocfree hot path is not allocation-free: make(chan) allocates per record
}

//scoop:hotpath
func badNew() *rec {
	return new(rec) // want:allocfree hot path is not allocation-free: new allocates per record
}

//scoop:hotpath
func badAppend(dst []byte, b byte) []byte {
	return append(dst, b) // want:allocfree hot path is not allocation-free: append may grow per record
}

//scoop:hotpath
func badEscape() *rec {
	return &rec{} // want:allocfree hot path is not allocation-free: address-taken composite literal escapes per record
}

//scoop:hotpath
func badMapLit() map[string]int {
	return map[string]int{"a": 1} // want:allocfree hot path is not allocation-free: map literal allocates per record
}

//scoop:hotpath
func badSliceLit() []int {
	return []int{1, 2} // want:allocfree hot path is not allocation-free: slice literal allocates per record
}

//scoop:hotpath
func badClosure(n int) func() int {
	return func() int { return n } // want:allocfree hot path is not allocation-free: func literal captures variables
}

func idle() {}

//scoop:hotpath
func badGo() {
	go idle() // want:allocfree hot path is not allocation-free: go statement launches a goroutine per record
}

//scoop:hotpath
func badBoxAssign(n int) {
	var v interface{}
	v = n // want:allocfree hot path is not allocation-free: boxing int into interface variable
	_ = v
}

func consume(v interface{}) { _ = v }

//scoop:hotpath
func badBoxArg(n int) {
	consume(n) // want:allocfree hot path is not allocation-free: boxing int into interface argument
}

//scoop:hotpath
func badBoxReturn(n int) interface{} {
	return n // want:allocfree hot path is not allocation-free: boxing int into interface return value
}

type box struct{ v interface{} }

//scoop:hotpath
func badBoxField(n int) box {
	return box{v: n} // want:allocfree hot path is not allocation-free: boxing int into interface struct field
}

//scoop:hotpath
func badFmt(n int) {
	fmt.Println(n) // want:allocfree hot path is not allocation-free: calls fmt.Println, which allocates per record
}

//scoop:hotpath
func badErrorsNew() error {
	return errors.New("x") // want:allocfree hot path is not allocation-free: calls errors.New, which allocates per record
}

//scoop:hotpath
func badUnknownStd(s string) string {
	return strings.Repeat(s, 2) // want:allocfree hot path is not allocation-free: calls strings.Repeat: not on the allocation-free allowlist
}

// hook is engine-supplied: the dataflow layer has no binding for it.
var hook func()

//scoop:hotpath
func badFuncValue() {
	hook() // want:allocfree hot path is not allocation-free: call through a func value the dataflow layer cannot resolve
}

// A finding two hops deep still carries the full root->site path (the
// filterdet-style path chain is asserted in allocfree_test.go).
//
//scoop:hotpath
func badDeepRoot(b []byte) int {
	return deepMiddle(b)
}

func deepMiddle(b []byte) int { return deepLeaf(b) }

func deepLeaf(b []byte) int {
	return len(string(b)) // want:allocfree hot path is not allocation-free: string([]byte) conversion allocates per record
}

// ---- interface dispatch: devirtualized is proven, open is reported ----

type enc interface{ encode([]byte) int }

type nopEnc struct{}

func (nopEnc) encode(b []byte) int { return len(b) }

type sizeEnc struct{}

func (sizeEnc) encode(b []byte) int { return cap(b) }

var defaultEnc enc = nopEnc{}

func pickEnc() enc { return defaultEnc }

//scoop:hotpath
func badOpenDispatch() int {
	e := pickEnc() // call result: the type set is open
	return e.encode(nil) // want:allocfree hot path is not allocation-free: interface dispatch (fixture/allocfree.enc).encode is not devirtualized
}

type devirtHolder struct{ e enc }

func newDevirtHolder() *devirtHolder { return &devirtHolder{e: nopEnc{}} }

// goodDevirt's dispatch devirtualizes: the field's concrete type set is
// exactly {nopEnc}, whose encode is allocation-free, so no finding.
//
//scoop:hotpath
func goodDevirt(h *devirtHolder) int {
	return h.e.encode(nil)
}

// ---- amortized idioms: these must stay silent ----

//scoop:hotpath
func goodCapGuard(r *rec, n int) {
	if cap(r.scratch) < n {
		r.scratch = make([]byte, 0, n)
	}
	r.scratch = r.scratch[:0]
}

//scoop:hotpath
func goodFieldAppend(r *rec, b []byte) {
	fields := r.fields[:0]
	fields = append(fields, b)
	r.fields = fields
}

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// AcquireBuf is a pool boundary: its allocations amortize across records.
func AcquireBuf() *bytes.Buffer { return bufPool.Get().(*bytes.Buffer) }

// ReleaseBuf returns a buffer to the pool.
func ReleaseBuf(b *bytes.Buffer) { b.Reset(); bufPool.Put(b) }

//scoop:hotpath
func goodPool(b []byte) int {
	buf := AcquireBuf()
	n, _ := buf.Write(b)
	ReleaseBuf(buf)
	return n
}

func validate(b []byte) error { return nil }

//scoop:hotpath
func goodColdError(b []byte) error {
	if err := validate(b); err != nil {
		return fmt.Errorf("bad record: %w", err) // error path: cold
	}
	return nil
}

func spill(s string) { _ = s }

//scoop:hotpath
func goodColdMarked(b []byte) {
	if len(b) > 1<<20 {
		//scoop:cold
		spill(string(b)) // once per oversized record class, marked cold
	}
}

//scoop:hotpath
func goodAllowlist(b []byte) int {
	return bytes.IndexByte(b, ',')
}

// ---- loop-region roots: setup outside the loop is per-invocation ----

var latest string

func loopRegion(rows [][]byte) {
	header := string(rows[0]) // setup: outside the annotated loop, exempt
	_ = header
	//scoop:hotpath
	for _, row := range rows {
		latest = string(row) // want:allocfree hot path is not allocation-free: string([]byte) conversion allocates per record
	}
}

// ---- an acknowledged finding is suppressed in place, not silently missed ----
// (allocfree_test.go proves the raw finding exists before suppression.)

//scoop:hotpath
func ignoredSpill(b []byte) string {
	//lint:ignore allocfree fixture: proves module-analyzer suppression works
	return string(b)
}

// ---- a marker attached to neither a func doc nor a loop is reported ----

func misplacedHost() int {
	x := 1
	//scoop:hotpath // want:allocfree misplaced //scoop:hotpath
	return x
}
