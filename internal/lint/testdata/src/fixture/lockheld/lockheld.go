// Package lockheld holds known-good and known-bad locking shapes for the
// lockheld analyzer.
package lockheld

import (
	"io"
	"net/http"
	"sync"
	"time"
)

type cache struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	items map[string]string
	ch    chan string
}

func (c *cache) badHTTPUnderLock(url string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := http.Get(url) // want:lockheld c.mu held across blocking call net/http.Get
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

func (c *cache) badSendUnderLock(v string) {
	c.mu.Lock()
	c.ch <- v // want:lockheld c.mu held across channel send
	c.mu.Unlock()
}

func (c *cache) badReceiveUnderRLock() string {
	c.rw.RLock()
	v := <-c.ch // want:lockheld c.rw held across channel receive
	c.rw.RUnlock()
	return v
}

func (c *cache) badSleepUnderLock() {
	c.mu.Lock()
	time.Sleep(time.Millisecond) // want:lockheld c.mu held across blocking call time.Sleep
	c.mu.Unlock()
}

func (c *cache) badSelectUnderLock() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	select { // want:lockheld c.mu held across blocking select
	case v := <-c.ch:
		return v
	case <-time.After(time.Millisecond):
		return ""
	}
}

func (c *cache) goodUnlockBeforeSend(v string) {
	c.mu.Lock()
	c.items["last"] = v
	c.mu.Unlock()
	c.ch <- v
}

func (c *cache) goodLookup(k string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.items[k]
}

func (c *cache) goodNonBlockingSelect(v string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case c.ch <- v: // part of a select with default: never blocks
		return true
	default:
		return false
	}
}

func (c *cache) goodSendFromSpawnedGoroutine(v string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.ch <- v // runs outside the lock region
	}()
}
