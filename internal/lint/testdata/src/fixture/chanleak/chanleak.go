// Package chanleak holds known-good and known-bad fan-out shapes for the
// chanleak analyzer.
package chanleak

import "context"

func badAbandonableSender(ctx context.Context, work func() string) (string, error) {
	ch := make(chan string)
	go func() {
		ch <- work() // want:chanleak goroutine sends on unbuffered channel "ch"
	}()
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return "", ctx.Err()
	}
}

func badAbandonableBareReceive(ctx context.Context, work func() string) error {
	done := make(chan string, 0)
	go func() {
		done <- work() // want:chanleak goroutine sends on unbuffered channel "done"
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func goodBuffered(ctx context.Context, work func() string) (string, error) {
	ch := make(chan string, 1)
	go func() {
		ch <- work() // buffered: the send completes even if abandoned
	}()
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return "", ctx.Err()
	}
}

func goodAlwaysReceived(work func() string) string {
	ch := make(chan string)
	go func() {
		ch <- work() // plain receive below: never abandoned
	}()
	return <-ch
}

func goodSenderSelectsOnCancel(ctx context.Context, work func() string) (string, error) {
	ch := make(chan string)
	go func() {
		select {
		case ch <- work():
		case <-ctx.Done():
		}
	}()
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return "", ctx.Err()
	}
}
