// Package goroleak holds known-good and known-bad goroutine shapes for the
// goroleak analyzer: every spawned goroutine needs a termination path.
package goroleak

import (
	"context"
	"sync"
	"time"
)

func work() {}

func badSpinner() {
	go func() { // want:goroleak goroutine spawned here never terminates
		for {
			work()
			time.Sleep(time.Millisecond)
		}
	}()
}

// runForever is only a leak when spawned; the analyzer attributes it to the
// go statement, one call deep.
func runForever() {
	for {
		work()
	}
}

func badNamedSpawn() {
	go runForever() // want:goroleak goroutine spawned here never terminates
}

func badSelectBreak(tick chan int) {
	go func() { // want:goroleak goroutine spawned here never terminates
		for {
			select {
			case <-tick:
				break // breaks the select, not the loop
			}
		}
	}()
}

func goodCtxLoop(ctx context.Context) {
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				work()
			}
		}
	}()
}

func goodRangeClose(ch chan int) {
	go func() {
		for range ch { // terminates when ch is closed
			work()
		}
	}()
}

func goodBoundedWork(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			work()
		}
	}()
}

func goodLabeledBreak(jobs chan int) {
	go func() {
	drain:
		for {
			select {
			case j, ok := <-jobs:
				if !ok {
					break drain
				}
				_ = j
			}
		}
	}()
}
