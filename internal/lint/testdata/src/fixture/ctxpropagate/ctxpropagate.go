// Package ctxpropagate holds known-good and known-bad I/O entry points for
// the ctxpropagate analyzer.
package ctxpropagate

import (
	"context"
	"io"
	"net/http"
	"os"
)

func FetchBad(url string) error { // want:ctxpropagate exported FetchBad performs I/O
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

func ReadBad(path string) ([]byte, error) { // want:ctxpropagate exported ReadBad performs I/O
	return os.ReadFile(path)
}

type Store struct{ dir string }

func (s *Store) PutBad(name string, data []byte) error { // want:ctxpropagate exported PutBad performs I/O
	return os.WriteFile(s.dir+"/"+name, data, 0o644)
}

func FetchGood(ctx context.Context, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

func ReadGood(ctx context.Context, path string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}

func readUnexported(path string) ([]byte, error) {
	// Unexported helpers are the callee side; their exported callers carry
	// the context.
	return os.ReadFile(path)
}

func PureGood(a, b int) int {
	return a + b
}

// CopyGood does I/O only through interfaces handed to it; attribution belongs
// to whoever opened the endpoints.
func CopyGood(dst io.Writer, src io.Reader) (int64, error) {
	return io.Copy(dst, src)
}
