// Package slotleak holds known-good and known-bad semaphore-acquire shapes
// for the slotleak analyzer.
package slotleak

import "context"

func badBareAcquireInGoroutine(slots chan struct{}, work func()) {
	go func() {
		slots <- struct{}{} // want:slotleak blocking semaphore acquire on "slots"
		defer func() { <-slots }()
		work()
	}()
}

func badBareAcquireInline(slots chan struct{}, work func()) {
	slots <- struct{}{} // want:slotleak blocking semaphore acquire on "slots"
	defer func() { <-slots }()
	work()
}

func goodSelectAcquire(ctx context.Context, slots chan struct{}, work func()) error {
	select {
	case slots <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-slots }()
	work()
	return nil
}

func goodNonBlockingAcquire(slots chan struct{}) bool {
	select {
	case slots <- struct{}{}:
		return true
	default:
		return false
	}
}

func goodReleaseNeverFlagged(slots chan struct{}) {
	<-slots // a release can always complete; only acquires are audited
}

func goodDataChannelIsNotASemaphore(ch chan int) {
	// chanleak territory: channels carrying data are out of scope here.
	go func() {
		ch <- 1
	}()
	<-ch
}
