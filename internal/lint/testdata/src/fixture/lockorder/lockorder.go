// Package lockorder holds known-good and known-bad lock-acquisition shapes
// for the lockorder analyzer: every mutex pair must be acquired in one
// global order.
package lockorder

import "sync"

// pair demonstrates the direct AB/BA inversion inside two functions.
type pair struct {
	a, b sync.Mutex
	n    int
}

func (p *pair) abOrder() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock() // want:lockorder lock order cycle
	p.n++
	p.b.Unlock()
}

func (p *pair) baOrder() {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock()
	p.n--
	p.a.Unlock()
}

// goodSequential releases b before taking a: no ordering edge, no cycle.
func (p *pair) goodSequential() {
	p.b.Lock()
	p.n++
	p.b.Unlock()
	p.a.Lock()
	p.n--
	p.a.Unlock()
}

// svc/queue demonstrate the inversion hidden behind method calls: neither
// function locks two mutexes itself, but the call graph does.
type svc struct {
	mu sync.Mutex
	q  *queue
}

type queue struct {
	mu    sync.Mutex
	owner *svc
	items []int
}

func (s *svc) flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.q.drain() // want:lockorder lock order cycle
}

func (q *queue) drain() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items = q.items[:0]
}

func (q *queue) push(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items = append(q.items, v)
	q.owner.wake()
}

func (s *svc) wake() {
	s.mu.Lock()
	s.mu.Unlock()
}

// meter/core demonstrate why lock identity must be an access path, not a
// declared field: core holds two distinct meter instances (in and out) plus
// its own mutex, and the global order "in.mu < mu < out.mu" is consistent.
// Keying every meter's mu by the shared struct field conflates in.mu with
// out.mu and manufactures a false meter.mu<->core.mu AB/BA cycle; the
// access-path model keeps core.in.mu and core.out.mu distinct, so this stays
// silent.
type meter struct {
	mu sync.Mutex
	n  int
}

func (m *meter) add() {
	m.mu.Lock()
	m.n++
	m.mu.Unlock()
}

type core struct {
	mu  sync.Mutex
	in  meter
	out meter
	n   int
}

func (c *core) ingest() {
	c.in.mu.Lock()
	defer c.in.mu.Unlock()
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *core) flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.out.add()
}

// raid/disk is the true nested-field counterpart: both functions name the
// SAME nested lock (r.meta.mu) against r.mu in opposite orders, so the cycle
// is real and must survive the instance-precision fix.
type disk struct {
	mu   sync.Mutex
	used int
}

type raid struct {
	mu   sync.Mutex
	meta disk
}

func (r *raid) grow() {
	r.meta.mu.Lock()
	defer r.meta.mu.Unlock()
	r.mu.Lock() // want:lockorder lock order cycle
	r.mu.Unlock()
}

func (r *raid) scrub() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.meta.mu.Lock()
	r.meta.used = 0
	r.meta.mu.Unlock()
}

// consistent always takes x before y: two edges in the same direction form
// no cycle.
type consistent struct {
	x, y sync.Mutex
	n    int
}

func (c *consistent) first() {
	c.x.Lock()
	defer c.x.Unlock()
	c.y.Lock()
	c.n++
	c.y.Unlock()
}

func (c *consistent) second() {
	c.x.Lock()
	c.y.Lock()
	c.n--
	c.y.Unlock()
	c.x.Unlock()
}
