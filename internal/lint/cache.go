package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The gate's caching has two layers, both keyed by the same mtime-derived
// module fingerprint:
//
//  1. An in-process package cache inside Load: a second Load of an unchanged
//     root returns the already type-checked []*Package. This is what makes
//     the test suite and multi-root scoop-lint invocations cheap.
//  2. An on-disk result cache (CachedRun): a scoop-lint run over an
//     unchanged root with the same analyzer set replays the stored
//     diagnostics without parsing or type-checking anything. go/types
//     packages cannot be serialized with the standard library, so what
//     crosses process boundaries is the gate's *verdict*, not the type
//     information — which is exactly what verify.sh and CI repeat.
//
// The fingerprint covers go.mod and the (path, size, mtime) of every
// buildable non-test .go file under the root — the same file set Load
// parses. Because scoop-lint analyzes the whole module, the analyzers' own
// sources are inside the fingerprint: editing an analyzer invalidates the
// cache without a separate versioning scheme. cacheVersion exists for format
// changes of the entry itself.
const cacheVersion = 1

// Fingerprint digests the analyzable source state under root: go.mod plus
// relative path, size, and mtime of every non-test .go file Load would
// parse. Any edit, addition, deletion, or touch changes the digest.
func Fingerprint(root string) (string, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return "", err
	}
	modRoot, _, err := findModule(root)
	if err != nil {
		return "", err
	}
	var lines []string
	if fi, err := os.Stat(filepath.Join(modRoot, "go.mod")); err == nil {
		lines = append(lines, fmt.Sprintf("go.mod|%d|%d", fi.Size(), fi.ModTime().UnixNano()))
	}
	walkErr := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		base := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") || base == "testdata" || base == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(base, ".go") || strings.HasSuffix(base, "_test.go") {
			return nil
		}
		fi, err := d.Info()
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		lines = append(lines, fmt.Sprintf("%s|%d|%d", filepath.ToSlash(rel), fi.Size(), fi.ModTime().UnixNano()))
		return nil
	})
	if walkErr != nil {
		return "", walkErr
	}
	sort.Strings(lines)
	sum := sha256.Sum256([]byte(strings.Join(lines, "\n")))
	return hex.EncodeToString(sum[:]), nil
}

// cacheEntry is the on-disk representation of one completed run.
type cacheEntry struct {
	Version     int          `json:"version"`
	Fingerprint string       `json:"fingerprint"`
	Analyzers   []string     `json:"analyzers"`
	Packages    int          `json:"packages"`
	Diags       []Diagnostic `json:"diags"`
}

// cacheKey names the entry file: one per (root, analyzer set, source state),
// so a changed tree or a -only subset never replays the wrong verdict.
func cacheKey(root, fingerprint string, analyzers []*Analyzer) string {
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	h := sha256.Sum256([]byte(fmt.Sprintf("v%d|%s|%s|%s", cacheVersion, root, strings.Join(names, ","), fingerprint)))
	return hex.EncodeToString(h[:16])
}

// CachedRun loads and analyzes root, consulting the on-disk cache in
// cacheDir first. It returns the diagnostics, the number of packages they
// cover, and whether the result was replayed from cache. Cache writes are
// best-effort: a read-only cache directory degrades to an ordinary run.
//
//lint:ignore ctxpropagate cache reads are sub-millisecond local-disk I/O at CLI startup; there is no caller lifetime to propagate
func CachedRun(root, cacheDir string, analyzers []*Analyzer) ([]Diagnostic, int, bool, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, 0, false, err
	}
	fp, err := Fingerprint(absRoot)
	if err != nil {
		return nil, 0, false, err
	}
	path := filepath.Join(cacheDir, cacheKey(absRoot, fp, analyzers)+".json")
	if data, err := os.ReadFile(path); err == nil {
		var e cacheEntry
		if json.Unmarshal(data, &e) == nil && e.Version == cacheVersion && e.Fingerprint == fp {
			return e.Diags, e.Packages, true, nil
		}
	}
	pkgs, err := Load(absRoot)
	if err != nil {
		return nil, 0, false, err
	}
	diags := Run(pkgs, analyzers)
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	entry := cacheEntry{Version: cacheVersion, Fingerprint: fp, Analyzers: names, Packages: len(pkgs), Diags: diags}
	if data, err := json.Marshal(entry); err == nil {
		if os.MkdirAll(cacheDir, 0o755) == nil {
			// Write-rename so a concurrent reader never sees a torn entry.
			tmp := path + ".tmp"
			if os.WriteFile(tmp, data, 0o644) == nil {
				_ = os.Rename(tmp, path)
			}
		}
	}
	return diags, len(pkgs), false, nil
}

// DefaultCacheDir picks the on-disk cache location: the user cache dir when
// available, the system temp dir otherwise (hermetic CI containers often
// have no HOME).
func DefaultCacheDir() string {
	if dir, err := os.UserCacheDir(); err == nil {
		return filepath.Join(dir, "scoop-lint")
	}
	return filepath.Join(os.TempDir(), "scoop-lint")
}
