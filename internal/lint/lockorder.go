package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"scoop/internal/lint/callgraph"
)

// AnalyzerLockOrder detects potential AB/BA deadlocks across the whole
// module: it records, for every function, which mutexes may be acquired
// while another is already held — including acquisitions buried several
// static calls deep — builds a global acquisition-order graph, and reports
// every cycle with both acquisition paths. The proxy registry, per-node
// state, storlet engine and adaptive controller each guard hot request-path
// state with their own mutex; one inverted pair under load freezes the whole
// GET/PUT pipeline, which no amount of dynamic testing reliably catches.
//
// Lock identity is an *access path*, not a declared field: `c.in.mu` and
// `c.out.mu` are distinct locks even when in and out share a struct type,
// because value fields are distinct sub-objects of their parent. The path is
// anchored at the nearest stable root — a package-level variable (a real
// single instance), a bare local/parameter mutex (the variable itself), or
// otherwise the named type of the owning value — and every pointer boundary
// resets the anchor to the pointee's named type, since pointer fields alias
// arbitrarily. Identities that still conflate instances (two values of the
// same type via method receivers) keep the usual "one global order per lock
// path" discipline; self-edges are therefore not reported.
var AnalyzerLockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "mutex pairs must be acquired in one global order (AB/BA deadlock cycles)",
	RunModule: runLockOrder,
}

// lockID identifies one mutex in the acquisition-order graph: a canonical
// access-path key plus a short display name. The zero value means "no
// provable identity" — such acquisitions produce no ordering edges rather
// than wrong ones.
type lockID struct {
	key  string
	name string
}

func (id lockID) valid() bool { return id.key != "" }

// field extends an identity one value-field hop deeper: core -> core.in.
func (id lockID) field(name string) lockID {
	if !id.valid() {
		return lockID{}
	}
	return lockID{key: id.key + "." + name, name: id.name + "." + name}
}

// lockAcq is one (possibly transitive) acquisition a function can perform:
// the lock identity plus the chain of call/lock sites leading to it.
// sites[0] is in the function itself; the last element is the Lock() call.
type lockAcq struct {
	id    lockID
	sites []token.Pos
	// chain names the functions the acquisition passes through (callee of
	// each call site), ending at the locking function. Empty for a direct
	// acquisition.
	chain []string
	// expr renders the receiver at the final Lock() site, e.g. "e.mu".
	expr string
}

// lockEdge is one observed ordering: `to` acquired while `from` was held.
type lockEdge struct {
	from, to lockID
	// heldAt is the Lock() site of `from`; acq describes how `to` was then
	// reached from inside the held region.
	heldAt token.Pos
	acq    lockAcq
	fn     string
}

func runLockOrder(pass *ModulePass) {
	// Per-node direct acquisitions, then a fixpoint over static call edges
	// for the transitive set each function may acquire.
	direct := map[*callgraph.Node][]lockAcq{}
	for _, n := range pass.Graph.Nodes() {
		direct[n] = directLockAcqs(pass, n)
	}
	trans := transitiveAcqs(pass.Graph, direct)

	// Scan every held region for acquisitions of *other* locks.
	var edges []lockEdge
	for _, n := range pass.Graph.Nodes() {
		edges = append(edges, heldRegionEdges(pass, n, trans)...)
	}

	// Keep one witness per ordered pair (the earliest), then report cycles.
	byPair := map[[2]lockID]lockEdge{}
	for _, e := range edges {
		key := [2]lockID{e.from, e.to}
		if prev, ok := byPair[key]; !ok || e.heldAt < prev.heldAt {
			byPair[key] = e
		}
	}
	reportLockCycles(pass, byPair)
}

// directLockAcqs lists the Lock/RLock call sites in n's own body (nested
// literals excluded: they run on their own schedule).
func directLockAcqs(pass *ModulePass, n *callgraph.Node) []lockAcq {
	var out []lockAcq
	info := n.Unit.Info
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, expr, ok := lockAcquisition(info, call)
		if !ok {
			return true
		}
		out = append(out, lockAcq{id: id, sites: []token.Pos{call.Pos()}, expr: expr})
		return true
	})
	return out
}

// lockAcquisition reports whether call is sync.(*Mutex).Lock /
// (*RWMutex).Lock / (*RWMutex).RLock on a receiver with a resolvable lock
// identity.
func lockAcquisition(info *types.Info, call *ast.CallExpr) (lockID, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockID{}, "", false
	}
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockID{}, "", false
	}
	if fn.Name() != "Lock" && fn.Name() != "RLock" {
		return lockID{}, "", false
	}
	id := lockIdent(info, sel)
	if !id.valid() {
		return lockID{}, "", false
	}
	return id, types.ExprString(sel.X), true
}

// lockIdent resolves the receiver of a sync lock-method call to its
// identity. sel is the method selector (recv.Lock); for a promoted method —
// `t.Lock()` with an embedded sync.Mutex — the implicit embedded-field hops
// come from the method selection's index path, so the embedded mutex gets
// the same path-shaped identity an explicit `t.Mutex.Lock()` would.
func lockIdent(info *types.Info, sel *ast.SelectorExpr) lockID {
	id := lockPath(info, sel.X)
	if !id.valid() {
		return lockID{}
	}
	msel, ok := info.Selections[sel]
	if !ok {
		return lockID{}
	}
	idx := msel.Index()
	t := msel.Recv()
	for _, i := range idx[:len(idx)-1] {
		st, ok := derefStruct(t)
		if !ok {
			return lockID{}
		}
		f := st.Field(i)
		if p, ok := f.Type().Underlying().(*types.Pointer); ok {
			id = typeAnchor(p.Elem())
		} else {
			id = id.field(f.Name())
		}
		if !id.valid() {
			return lockID{}
		}
		t = f.Type()
	}
	return id
}

// lockPath resolves a lock receiver expression to an access-path identity.
// Value-field selections extend the path; a pointer-typed field resets the
// anchor to the pointee's named type (pointer fields alias arbitrarily, so
// everything behind one conflates per type, never per parent instance).
func lockPath(info *types.Info, expr ast.Expr) lockID {
	e := ast.Unparen(expr)
	switch x := e.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return lockPath(info, x.X)
		}
	case *ast.StarExpr:
		return lockPath(info, x.X)
	case *ast.Ident:
		return lockBase(info, x)
	case *ast.IndexExpr:
		// Container element: all elements conflate to the element type, the
		// same over-approximation method receivers get.
		if tv, ok := info.Types[x]; ok && tv.Type != nil {
			return typeAnchor(tv.Type)
		}
	case *ast.SelectorExpr:
		if fsel, ok := info.Selections[x]; ok {
			v, ok := fsel.Obj().(*types.Var)
			if !ok {
				return lockID{}
			}
			if p, ok := v.Type().Underlying().(*types.Pointer); ok {
				return typeAnchor(p.Elem())
			}
			return lockPath(info, x.X).field(v.Name())
		}
		// Package-qualified: pkg.mu — a package-level variable elsewhere.
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			return pkgVarAnchor(v)
		}
	}
	return lockID{}
}

// lockBase anchors the root of an access path: package-level variables keep
// their (single-instance) variable identity, bare local/parameter mutexes
// keep the variable's identity, and any other local value anchors at its
// named type — the conservative per-type conflation method receivers imply.
func lockBase(info *types.Info, id *ast.Ident) lockID {
	v, ok := identObj(info, id).(*types.Var)
	if !ok {
		return lockID{}
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return pkgVarAnchor(v)
	}
	t := v.Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" {
		// A bare sync.Mutex (or *sync.Mutex) variable: the variable itself
		// is the only identity available.
		return lockID{key: fmt.Sprintf("local %s@%d", v.Name(), v.Pos()), name: v.Name()}
	}
	return typeAnchor(t)
}

// pkgVarAnchor identifies a package-level variable: unlike types and fields,
// a package-level var is one real instance, so the anchor is exact.
func pkgVarAnchor(v *types.Var) lockID {
	pkg := ""
	if v.Pkg() != nil {
		pkg = v.Pkg().Path()
	}
	return lockID{key: "var " + pkg + "." + v.Name(), name: v.Name()}
}

// typeAnchor identifies all instances of a named type: the fallback anchor
// wherever instance identity is not locally provable (method receivers,
// pointer dereferences, container elements). Anchoring a bare sync type is
// refused — "every *sync.Mutex in the module" is not one lock, and edges on
// it would be noise.
func typeAnchor(t types.Type) lockID {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return lockID{}
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() == "sync" {
		return lockID{}
	}
	return lockID{key: "type " + obj.Pkg().Path() + "." + obj.Name(), name: obj.Name()}
}

// derefStruct unwraps pointers and returns the underlying struct type.
func derefStruct(t types.Type) (*types.Struct, bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// transitiveAcqs propagates acquisition summaries over static call edges to
// a fixpoint: acq(f) = direct(f) ∪ { callSite + acq(g) | f statically calls
// g }. Only the shortest witness per lock identity is kept. Interface
// dispatch is not followed — CHA fan-out would claim nearly every lock is
// reachable from every call site and drown real inversions in noise.
func transitiveAcqs(g *callgraph.Graph, direct map[*callgraph.Node][]lockAcq) map[*callgraph.Node]map[lockID]lockAcq {
	acqs := map[*callgraph.Node]map[lockID]lockAcq{}
	nodes := g.Nodes()
	for _, n := range nodes {
		m := map[lockID]lockAcq{}
		for _, a := range direct[n] {
			if prev, ok := m[a.id]; !ok || len(a.sites) < len(prev.sites) {
				m[a.id] = a
			}
		}
		acqs[n] = m
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			for _, e := range n.Out {
				if e.Kind != callgraph.Static || e.Go || e.Callee.Body == nil {
					continue
				}
				for id, a := range acqs[e.Callee] {
					lifted := lockAcq{
						id:    id,
						sites: append([]token.Pos{e.Site}, a.sites...),
						chain: append([]string{calleeName(e)}, a.chain...),
						expr:  a.expr,
					}
					if prev, ok := acqs[n][id]; !ok || len(lifted.sites) < len(prev.sites) {
						acqs[n][id] = lifted
						changed = true
					}
				}
			}
		}
	}
	return acqs
}

func calleeName(e *callgraph.Edge) string {
	if e.Callee.Func != nil {
		return e.Callee.Func.Name()
	}
	return "func literal"
}

// heldRegionEdges scans n's body for lock-held regions and returns an
// ordering edge for every other lock acquirable inside one. The region model
// matches lockheld: a Lock() at one statement-list level holds until the
// matching same-level Unlock, or to the end of the list when the unlock is
// deferred or absent.
func heldRegionEdges(pass *ModulePass, n *callgraph.Node, trans map[*callgraph.Node]map[lockID]lockAcq) []lockEdge {
	var edges []lockEdge
	info := n.Unit.Info
	var scanList func(list []ast.Stmt)
	scanList = func(list []ast.Stmt) {
		for i, stmt := range list {
			held, ok := lockStmt(info, stmt, "Lock", "RLock")
			if !ok {
				continue
			}
			end := len(list)
			for j := i + 1; j < len(list); j++ {
				if _, isDefer := list[j].(*ast.DeferStmt); isDefer {
					continue
				}
				if rel, ok := lockStmt(info, list[j], "Unlock", "RUnlock"); ok && rel.id == held.id && rel.expr == held.expr {
					end = j
					break
				}
			}
			for _, inner := range list[i+1 : end] {
				if _, isDefer := inner.(*ast.DeferStmt); isDefer {
					continue
				}
				edges = append(edges, regionAcqs(pass, n, info, inner, held, trans)...)
			}
		}
	}
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if list := stmtList(x); list != nil {
			scanList(list)
		}
		return true
	})
	return edges
}

// heldLock describes one active Lock() statement.
type heldLock struct {
	id   lockID
	expr string
	pos  token.Pos
}

// lockStmt matches a plain or deferred sync lock-method call statement.
func lockStmt(info *types.Info, stmt ast.Stmt, names ...string) (heldLock, bool) {
	var call *ast.CallExpr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.DeferStmt:
		call = s.Call
	}
	if call == nil {
		return heldLock{}, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return heldLock{}, false
	}
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return heldLock{}, false
	}
	for _, name := range names {
		if fn.Name() == name {
			id := lockIdent(info, sel)
			if !id.valid() {
				return heldLock{}, false
			}
			return heldLock{id: id, expr: types.ExprString(sel.X), pos: call.Pos()}, true
		}
	}
	return heldLock{}, false
}

// regionAcqs finds every lock other than `held` acquirable inside one held
// statement: directly, or transitively through a static call.
func regionAcqs(pass *ModulePass, n *callgraph.Node, info *types.Info, stmt ast.Stmt, held heldLock, trans map[*callgraph.Node]map[lockID]lockAcq) []lockEdge {
	var out []lockEdge
	ast.Inspect(stmt, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false // literals run outside the held region (goroutines, callbacks)
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, expr, ok := lockAcquisition(info, call); ok {
			if id != held.id {
				out = append(out, lockEdge{
					from:   held.id,
					to:     id,
					heldAt: held.pos,
					acq:    lockAcq{id: id, sites: []token.Pos{call.Pos()}, expr: expr},
					fn:     nodeName(n),
				})
			}
			return true
		}
		fn := staticCallee(info, call)
		if fn == nil {
			return true
		}
		callee := pass.Graph.FuncNode(fn)
		if callee == nil || callee.Body == nil {
			return true
		}
		for id, a := range trans[callee] {
			if id == held.id {
				continue // self-edges: remaining instance conflation, skip
			}
			out = append(out, lockEdge{
				from:   held.id,
				to:     id,
				heldAt: held.pos,
				acq: lockAcq{
					id:    id,
					sites: append([]token.Pos{call.Pos()}, a.sites...),
					chain: append([]string{fn.Name()}, a.chain...),
					expr:  a.expr,
				},
				fn: nodeName(n),
			})
		}
		return true
	})
	return out
}

func nodeName(n *callgraph.Node) string {
	if n.Func != nil {
		return n.Func.Name()
	}
	return "func literal"
}

// reportLockCycles finds cycles in the acquisition-order graph and reports
// each once, citing both (all) acquisition paths.
func reportLockCycles(pass *ModulePass, byPair map[[2]lockID]lockEdge) {
	// Adjacency over lock identities, deterministic order via witness
	// position.
	adj := map[lockID][]lockEdge{}
	for _, e := range byPair {
		adj[e.from] = append(adj[e.from], e)
	}
	var locks []lockID
	for id := range adj {
		locks = append(locks, id)
	}
	for _, es := range adj {
		sort.Slice(es, func(i, j int) bool { return es[i].heldAt < es[j].heldAt })
	}
	sort.Slice(locks, func(i, j int) bool { return adj[locks[i]][0].heldAt < adj[locks[j]][0].heldAt })

	reported := map[string]bool{}
	// state: 0 unvisited, 1 on stack, 2 done — per DFS root, standard
	// coloring with cycle extraction from the active path.
	for _, root := range locks {
		state := map[lockID]int{}
		var path []lockEdge
		var dfs func(id lockID)
		dfs = func(id lockID) {
			state[id] = 1
			for _, e := range adj[id] {
				switch state[e.to] {
				case 0:
					path = append(path, e)
					dfs(e.to)
					path = path[:len(path)-1]
				case 1:
					// Cycle: the active path from e.to back to id, plus e.
					var cyc []lockEdge
					for i := len(path) - 1; i >= 0; i-- {
						cyc = append([]lockEdge{path[i]}, cyc...)
						if path[i].from == e.to {
							break
						}
					}
					cyc = append(cyc, e)
					reportCycle(pass, cyc, reported)
				}
			}
			state[id] = 2
		}
		if state[root] == 0 {
			dfs(root)
		}
	}
}

// reportCycle emits one diagnostic per distinct lock cycle, at the witness
// of the edge with the earliest position.
func reportCycle(pass *ModulePass, cyc []lockEdge, reported map[string]bool) {
	if len(cyc) == 0 {
		return
	}
	// Canonical key: the sorted set of member positions.
	var keyParts []string
	for _, e := range cyc {
		keyParts = append(keyParts, pass.Posn(e.heldAt))
	}
	sort.Strings(keyParts)
	key := strings.Join(keyParts, "|")
	if reported[key] {
		return
	}
	reported[key] = true

	rep := cyc[0]
	for _, e := range cyc[1:] {
		if e.acq.sites[len(e.acq.sites)-1] < rep.acq.sites[len(rep.acq.sites)-1] {
			rep = e
		}
	}
	var legs []string
	for _, e := range cyc {
		legs = append(legs, describeEdge(pass, e))
	}
	pass.Reportf(rep.acq.sites[0], "lock order cycle: %s; one global acquisition order breaks the deadlock", strings.Join(legs, " vs "))
}

// describeEdge renders one ordering leg: where the first lock was held and
// how the second was then acquired.
func describeEdge(pass *ModulePass, e lockEdge) string {
	via := ""
	if len(e.acq.chain) > 0 {
		via = " via " + strings.Join(e.acq.chain, " -> ")
	}
	return fmt.Sprintf("%s acquires %s%s while holding %s (locked at %s)",
		e.fn, e.acq.expr, via, lockName(e.from), pass.Posn(e.heldAt))
}

// lockName renders a lock identity for messages: its access path from the
// anchor, e.g. "core.in.mu".
func lockName(id lockID) string {
	if !id.valid() {
		return "?"
	}
	return id.name
}
