package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"scoop/internal/lint/callgraph"
)

// AnalyzerLockOrder detects potential AB/BA deadlocks across the whole
// module: it records, for every function, which mutexes may be acquired
// while another is already held — including acquisitions buried several
// static calls deep — builds a global acquisition-order graph keyed by the
// types.Object of each lock (a struct field or package-level variable), and
// reports every cycle with both acquisition paths. The proxy registry,
// per-node state, storlet engine and adaptive controller each guard hot
// request-path state with their own mutex; one inverted pair under load
// freezes the whole GET/PUT pipeline, which no amount of dynamic testing
// reliably catches.
//
// Identity is per lock *field*, not per instance: locking a.mu then b.mu of
// two values of the same struct maps to a single graph node. That
// over-approximates (two sibling instances never deadlock with each other
// alone) but matches the usual "one global order per lock field" discipline;
// self-edges are therefore not reported.
var AnalyzerLockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "mutex pairs must be acquired in one global order (AB/BA deadlock cycles)",
	RunModule: runLockOrder,
}

// lockAcq is one (possibly transitive) acquisition a function can perform:
// the lock object plus the chain of call/lock sites leading to it. sites[0]
// is in the function itself; the last element is the Lock() call.
type lockAcq struct {
	obj   types.Object
	sites []token.Pos
	// chain names the functions the acquisition passes through (callee of
	// each call site), ending at the locking function. Empty for a direct
	// acquisition.
	chain []string
	// expr renders the receiver at the final Lock() site, e.g. "e.mu".
	expr string
}

// lockEdge is one observed ordering: `to` acquired while `from` was held.
type lockEdge struct {
	from, to types.Object
	// heldAt is the Lock() site of `from`; acq describes how `to` was then
	// reached from inside the held region.
	heldAt token.Pos
	acq    lockAcq
	fn     string
}

func runLockOrder(pass *ModulePass) {
	// Per-node direct acquisitions, then a fixpoint over static call edges
	// for the transitive set each function may acquire.
	direct := map[*callgraph.Node][]lockAcq{}
	for _, n := range pass.Graph.Nodes() {
		direct[n] = directLockAcqs(pass, n)
	}
	trans := transitiveAcqs(pass.Graph, direct)

	// Scan every held region for acquisitions of *other* locks.
	var edges []lockEdge
	for _, n := range pass.Graph.Nodes() {
		edges = append(edges, heldRegionEdges(pass, n, trans)...)
	}

	// Keep one witness per ordered pair (the earliest), then report cycles.
	byPair := map[[2]types.Object]lockEdge{}
	for _, e := range edges {
		key := [2]types.Object{e.from, e.to}
		if prev, ok := byPair[key]; !ok || e.heldAt < prev.heldAt {
			byPair[key] = e
		}
	}
	reportLockCycles(pass, byPair)
}

// directLockAcqs lists the Lock/RLock call sites in n's own body (nested
// literals excluded: they run on their own schedule).
func directLockAcqs(pass *ModulePass, n *callgraph.Node) []lockAcq {
	var out []lockAcq
	info := n.Unit.Info
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj, expr, ok := lockAcquisition(info, call)
		if !ok {
			return true
		}
		out = append(out, lockAcq{obj: obj, sites: []token.Pos{call.Pos()}, expr: expr})
		return true
	})
	return out
}

// lockAcquisition reports whether call is sync.(*Mutex).Lock /
// (*RWMutex).Lock / (*RWMutex).RLock on a resolvable lock object (struct
// field or variable).
func lockAcquisition(info *types.Info, call *ast.CallExpr) (types.Object, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	if fn.Name() != "Lock" && fn.Name() != "RLock" {
		return nil, "", false
	}
	obj := lockObject(info, sel.X)
	if obj == nil {
		return nil, "", false
	}
	return obj, types.ExprString(sel.X), true
}

// lockObject resolves the receiver expression of a Lock call to the object
// identifying the lock: a struct field (all instances collapse to the field)
// or a plain variable.
func lockObject(info *types.Info, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			return sel.Obj() // field selection: x.mu, x.y.mu
		}
		return info.Uses[e.Sel] // package-qualified: pkg.mu
	}
	return nil
}

// transitiveAcqs propagates acquisition summaries over static call edges to
// a fixpoint: acq(f) = direct(f) ∪ { callSite + acq(g) | f statically calls
// g }. Only the shortest witness per lock object is kept. Interface dispatch
// is not followed — CHA fan-out would claim nearly every lock is reachable
// from every call site and drown real inversions in noise.
func transitiveAcqs(g *callgraph.Graph, direct map[*callgraph.Node][]lockAcq) map[*callgraph.Node]map[types.Object]lockAcq {
	acqs := map[*callgraph.Node]map[types.Object]lockAcq{}
	nodes := g.Nodes()
	for _, n := range nodes {
		m := map[types.Object]lockAcq{}
		for _, a := range direct[n] {
			if prev, ok := m[a.obj]; !ok || len(a.sites) < len(prev.sites) {
				m[a.obj] = a
			}
		}
		acqs[n] = m
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			for _, e := range n.Out {
				if e.Kind != callgraph.Static || e.Go || e.Callee.Body == nil {
					continue
				}
				for obj, a := range acqs[e.Callee] {
					lifted := lockAcq{
						obj:   obj,
						sites: append([]token.Pos{e.Site}, a.sites...),
						chain: append([]string{calleeName(e)}, a.chain...),
						expr:  a.expr,
					}
					if prev, ok := acqs[n][obj]; !ok || len(lifted.sites) < len(prev.sites) {
						acqs[n][obj] = lifted
						changed = true
					}
				}
			}
		}
	}
	return acqs
}

func calleeName(e *callgraph.Edge) string {
	if e.Callee.Func != nil {
		return e.Callee.Func.Name()
	}
	return "func literal"
}

// heldRegionEdges scans n's body for lock-held regions and returns an
// ordering edge for every other lock acquirable inside one. The region model
// matches lockheld: a Lock() at one statement-list level holds until the
// matching same-level Unlock, or to the end of the list when the unlock is
// deferred or absent.
func heldRegionEdges(pass *ModulePass, n *callgraph.Node, trans map[*callgraph.Node]map[types.Object]lockAcq) []lockEdge {
	var edges []lockEdge
	info := n.Unit.Info
	var scanList func(list []ast.Stmt)
	scanList = func(list []ast.Stmt) {
		for i, stmt := range list {
			held, ok := lockStmt(info, stmt, "Lock", "RLock")
			if !ok {
				continue
			}
			end := len(list)
			for j := i + 1; j < len(list); j++ {
				if _, isDefer := list[j].(*ast.DeferStmt); isDefer {
					continue
				}
				if rel, ok := lockStmt(info, list[j], "Unlock", "RUnlock"); ok && rel.obj == held.obj && rel.expr == held.expr {
					end = j
					break
				}
			}
			for _, inner := range list[i+1 : end] {
				if _, isDefer := inner.(*ast.DeferStmt); isDefer {
					continue
				}
				edges = append(edges, regionAcqs(pass, n, info, inner, held, trans)...)
			}
		}
	}
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if list := stmtList(x); list != nil {
			scanList(list)
		}
		return true
	})
	return edges
}

// heldLock describes one active Lock() statement.
type heldLock struct {
	obj  types.Object
	expr string
	pos  token.Pos
}

// lockStmt matches a plain or deferred sync lock-method call statement.
func lockStmt(info *types.Info, stmt ast.Stmt, names ...string) (heldLock, bool) {
	var call *ast.CallExpr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.DeferStmt:
		call = s.Call
	}
	if call == nil {
		return heldLock{}, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return heldLock{}, false
	}
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return heldLock{}, false
	}
	for _, name := range names {
		if fn.Name() == name {
			obj := lockObject(info, sel.X)
			if obj == nil {
				return heldLock{}, false
			}
			return heldLock{obj: obj, expr: types.ExprString(sel.X), pos: call.Pos()}, true
		}
	}
	return heldLock{}, false
}

// regionAcqs finds every lock other than `held` acquirable inside one held
// statement: directly, or transitively through a static call.
func regionAcqs(pass *ModulePass, n *callgraph.Node, info *types.Info, stmt ast.Stmt, held heldLock, trans map[*callgraph.Node]map[types.Object]lockAcq) []lockEdge {
	var out []lockEdge
	ast.Inspect(stmt, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false // literals run outside the held region (goroutines, callbacks)
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj, expr, ok := lockAcquisition(info, call); ok {
			if obj != held.obj {
				out = append(out, lockEdge{
					from:   held.obj,
					to:     obj,
					heldAt: held.pos,
					acq:    lockAcq{obj: obj, sites: []token.Pos{call.Pos()}, expr: expr},
					fn:     nodeName(n),
				})
			}
			return true
		}
		fn := staticCallee(info, call)
		if fn == nil {
			return true
		}
		callee := pass.Graph.FuncNode(fn)
		if callee == nil || callee.Body == nil {
			return true
		}
		for obj, a := range trans[callee] {
			if obj == held.obj {
				continue // self-edges: instance conflation, skip
			}
			out = append(out, lockEdge{
				from:   held.obj,
				to:     obj,
				heldAt: held.pos,
				acq: lockAcq{
					obj:   obj,
					sites: append([]token.Pos{call.Pos()}, a.sites...),
					chain: append([]string{fn.Name()}, a.chain...),
					expr:  a.expr,
				},
				fn: nodeName(n),
			})
		}
		return true
	})
	return out
}

func nodeName(n *callgraph.Node) string {
	if n.Func != nil {
		return n.Func.Name()
	}
	return "func literal"
}

// reportLockCycles finds cycles in the acquisition-order graph and reports
// each once, citing both (all) acquisition paths.
func reportLockCycles(pass *ModulePass, byPair map[[2]types.Object]lockEdge) {
	// Adjacency over lock objects, deterministic order via witness position.
	adj := map[types.Object][]lockEdge{}
	for _, e := range byPair {
		adj[e.from] = append(adj[e.from], e)
	}
	var locks []types.Object
	for obj := range adj {
		locks = append(locks, obj)
	}
	sort.Slice(locks, func(i, j int) bool { return adj[locks[i]][0].heldAt < adj[locks[j]][0].heldAt })
	for _, es := range adj {
		sort.Slice(es, func(i, j int) bool { return es[i].heldAt < es[j].heldAt })
	}

	reported := map[string]bool{}
	// state: 0 unvisited, 1 on stack, 2 done — per DFS root, standard
	// coloring with cycle extraction from the active path.
	for _, root := range locks {
		state := map[types.Object]int{}
		var path []lockEdge
		var dfs func(obj types.Object)
		dfs = func(obj types.Object) {
			state[obj] = 1
			for _, e := range adj[obj] {
				switch state[e.to] {
				case 0:
					path = append(path, e)
					dfs(e.to)
					path = path[:len(path)-1]
				case 1:
					// Cycle: the active path from e.to back to obj, plus e.
					var cyc []lockEdge
					for i := len(path) - 1; i >= 0; i-- {
						cyc = append([]lockEdge{path[i]}, cyc...)
						if path[i].from == e.to {
							break
						}
					}
					cyc = append(cyc, e)
					reportCycle(pass, cyc, reported)
				}
			}
			state[obj] = 2
		}
		if state[root] == 0 {
			dfs(root)
		}
	}
}

// reportCycle emits one diagnostic per distinct lock cycle, at the witness
// of the edge with the earliest position.
func reportCycle(pass *ModulePass, cyc []lockEdge, reported map[string]bool) {
	if len(cyc) == 0 {
		return
	}
	// Canonical key: the sorted set of member positions.
	var keyParts []string
	for _, e := range cyc {
		keyParts = append(keyParts, pass.Posn(e.heldAt))
	}
	sort.Strings(keyParts)
	key := strings.Join(keyParts, "|")
	if reported[key] {
		return
	}
	reported[key] = true

	rep := cyc[0]
	for _, e := range cyc[1:] {
		if e.acq.sites[len(e.acq.sites)-1] < rep.acq.sites[len(rep.acq.sites)-1] {
			rep = e
		}
	}
	var legs []string
	for _, e := range cyc {
		legs = append(legs, describeEdge(pass, e))
	}
	pass.Reportf(rep.acq.sites[0], "lock order cycle: %s; one global acquisition order breaks the deadlock", strings.Join(legs, " vs "))
}

// describeEdge renders one ordering leg: where the first lock was held and
// how the second was then acquired.
func describeEdge(pass *ModulePass, e lockEdge) string {
	via := ""
	if len(e.acq.chain) > 0 {
		via = " via " + strings.Join(e.acq.chain, " -> ")
	}
	return fmt.Sprintf("%s acquires %s%s while holding %s (locked at %s)",
		e.fn, e.acq.expr, via, lockName(e.from), pass.Posn(e.heldAt))
}

// lockName renders a lock object for messages: its field or variable name.
func lockName(obj types.Object) string {
	if obj == nil {
		return "?"
	}
	return obj.Name()
}
