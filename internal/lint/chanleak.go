package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerChanLeak reports the classic abandoned-sender leak: a goroutine
// performs a bare send on an unbuffered channel while the enclosing function
// receives from that channel inside a select with other ways out. When the
// other case fires (ctx cancelled, timeout), nobody ever receives and the
// goroutine blocks forever. The compute and rdd packages fan work out to
// goroutines per partition; under sustained ingestion load each leaked
// sender pins its partition buffers for the life of the process.
//
// The fix is either a buffered channel (make(chan T, 1)) so the send always
// completes, or a select on ctx.Done() in the sender.
var AnalyzerChanLeak = &Analyzer{
	Name: "chanleak",
	Doc:  "goroutines sending on unbuffered channels must not be abandonable by the receiving select",
	Run:  runChanLeak,
}

func runChanLeak(pass *Pass) {
	for _, file := range pass.Files {
		funcBodies(file, func(node ast.Node, body *ast.BlockStmt) {
			checkChanLeak(pass, node, body)
		})
	}
}

func checkChanLeak(pass *Pass, fn ast.Node, body *ast.BlockStmt) {
	unbuffered := map[types.Object]bool{}
	inNestedFunc := func(parents []ast.Node) bool {
		for _, p := range parents {
			if _, ok := p.(*ast.FuncLit); ok && p != fn {
				return true
			}
		}
		return false
	}

	// Pass 1: unbuffered channels created directly in this function.
	walkParents(body, func(n ast.Node, parents []ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || inNestedFunc(parents) {
			return true
		}
		for i, rhs := range assign.Rhs {
			if i >= len(assign.Lhs) || !isUnbufferedMake(pass, rhs) {
				continue
			}
			if obj := identObj(pass.Info, assign.Lhs[i]); obj != nil {
				unbuffered[obj] = true
			}
		}
		return true
	})
	if len(unbuffered) == 0 {
		return
	}

	// Pass 2: selects in this function that receive from the channel but can
	// take another way out (second case or default).
	abandonable := map[types.Object]bool{}
	walkParents(body, func(n ast.Node, parents []ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok || inNestedFunc(parents) {
			return true
		}
		if len(sel.Body.List) < 2 {
			return true
		}
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			if obj := receivedChan(pass.Info, cc.Comm); obj != nil && unbuffered[obj] {
				abandonable[obj] = true
			}
		}
		return true
	})
	if len(abandonable) == 0 {
		return
	}

	// Pass 3: goroutines started here that send on an abandonable channel
	// with no select around the send.
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		walkParents(lit.Body, func(n ast.Node, parents []ast.Node) bool {
			send, ok := n.(*ast.SendStmt)
			if !ok {
				return true
			}
			obj := identObj(pass.Info, send.Chan)
			if obj == nil || !abandonable[obj] {
				return true
			}
			// A send used as a select comm clause can take the escape hatch.
			for _, p := range parents {
				if cc, ok := p.(*ast.CommClause); ok && cc.Comm == send {
					return true
				}
			}
			pass.Reportf(send.Pos(), "goroutine sends on unbuffered channel %q whose receiving select can abandon it; buffer the channel or select on a cancel signal here", obj.Name())
			return true
		})
		return true
	})
}

// isUnbufferedMake reports whether expr is make(chan T) or make(chan T, 0).
func isUnbufferedMake(pass *Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, ok := pass.Info.Uses[id].(*types.Builtin); !ok {
		return false
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok {
		return false
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return false
	}
	if len(call.Args) == 1 {
		return true
	}
	sz, ok := pass.Info.Types[call.Args[1]]
	return ok && sz.Value != nil && sz.Value.String() == "0"
}

// receivedChan resolves the channel object a select comm statement receives
// from: `<-ch`, `v := <-ch`, or `v, ok := <-ch`.
func receivedChan(info *types.Info, comm ast.Stmt) types.Object {
	var expr ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		expr = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			expr = s.Rhs[0]
		}
	}
	un, ok := ast.Unparen(expr).(*ast.UnaryExpr)
	if !ok || un.Op.String() != "<-" {
		return nil
	}
	return identObj(info, un.X)
}
