package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerCtxPropagate reports exported functions that perform network or
// disk I/O directly but accept no context.Context. Scoop's north star is a
// storage layer under heavy multi-tenant load; a GET whose caller has gone
// away must be cancellable all the way down the connector -> proxy -> storlet
// stack, and that only works if every I/O-performing entry point threads a
// context. Package main is exempt (binary entry points have no callers that
// could pass one).
var AnalyzerCtxPropagate = &Analyzer{
	Name: "ctxpropagate",
	Doc:  "exported functions performing network/disk I/O must accept a context.Context",
	Run:  runCtxPropagate,
}

func runCtxPropagate(pass *Pass) {
	if pass.Pkg.Name() == "main" {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if acceptsContext(pass.Info, fd.Type) {
				continue
			}
			if io := firstDirectIO(pass, fd.Body); io != "" {
				pass.Reportf(fd.Name.Pos(), "exported %s performs I/O (%s) but accepts no context.Context; cancellation cannot propagate", fd.Name.Name, io)
			}
		}
	}
}

// acceptsContext reports whether any parameter of the signature is a
// context.Context.
func acceptsContext(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := info.Types[field.Type]; ok && namedType(tv.Type, "context", "Context") {
			return true
		}
	}
	return false
}

// firstDirectIO returns a description of the first direct network/disk I/O
// call in body, or "" when there is none. Only calls into the std library's
// I/O entry points count: I/O behind interfaces (io.Reader streams, the
// objectstore.Client) is attributed to the implementation that performs it.
func firstDirectIO(pass *Pass, body *ast.BlockStmt) string {
	found := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := staticCallee(pass.Info, call); fn != nil && isDirectIOFunc(fn) {
			found = fn.FullName()
			return false
		}
		return true
	})
	return found
}

// isDirectIOFunc reports whether fn is a std-library call that hits the
// network or the disk.
func isDirectIOFunc(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "net/http":
		switch fn.Name() {
		case "Do", "Get", "Post", "PostForm", "Head", "NewRequest", "NewRequestWithContext":
			return true
		}
	case "net":
		switch fn.Name() {
		case "Dial", "DialTimeout", "DialTCP", "DialUDP", "DialIP", "DialUnix", "Listen", "ListenPacket":
			return true
		}
	case "os":
		switch fn.Name() {
		case "Open", "OpenFile", "Create", "ReadFile", "WriteFile", "ReadDir", "MkdirAll", "Remove", "RemoveAll", "Rename":
			return true
		}
	}
	return false
}
