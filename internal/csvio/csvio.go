// Package csvio provides the byte-range-aware CSV record handling shared by
// the compute-side data source and the storage-side pushdown filter.
//
// Spark tasks operate on byte ranges of objects (paper §V: the Storlet WSGI
// middleware was extended "to support running Storlets at storage nodes for
// byte ranges"). A byte range almost never starts or ends on a record
// boundary, so both sides follow Hadoop input-split semantics:
//
//   - a range starting at offset > 0 skips forward to the first record that
//     *begins* inside the range (i.e. discards bytes up to and including the
//     first newline), and
//   - a record whose start offset is at or before the range end is processed
//     to completion, reading past the end if needed (a record starting
//     exactly at the end boundary belongs to this range, because the next
//     range's alignment skip discards it).
//
// Applied to every partition of an object, these rules yield exactly-once
// processing of every record regardless of how the object is partitioned —
// a property the package's tests check exhaustively.
package csvio

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
)

// DefaultDelimiter is the field separator used when none is configured.
const DefaultDelimiter = ','

// RangeReader yields complete records from a byte range of a record stream.
//
// The underlying reader r must be positioned at absolute offset start of the
// object, and should supply bytes beyond end (the record straddling the end
// boundary needs them); io.EOF from r simply terminates the stream.
//
// Reading is allocation-free per record: Next returns slices into the
// internal buffer (or into a reused spill buffer for records longer than the
// buffer), which is why they are only valid until the following call.
type RangeReader struct {
	br  *bufio.Reader
	src boundaryReader
	// spill accumulates records longer than the buffered reader's window;
	// it is reused across records and across Reset.
	spill   []byte
	pos     int64 // absolute offset of the next byte to read
	end     int64 // absolute end of the range (exclusive)
	aligned bool
	err     error
}

// NewRangeReader builds a RangeReader for the range [start, end) of the
// stream r (which must already be positioned at start). If start is 0 the
// first record is not skipped.
//
// r must be able to supply bytes beyond end — the record straddling the end
// boundary is read to completion. To keep that overrun small when r is a
// network stream, reading switches to small increments once the boundary is
// crossed.
func NewRangeReader(r io.Reader, start, end int64) *RangeReader {
	rr := &RangeReader{}
	rr.Reset(r, start, end)
	return rr
}

// Reset repoints the reader at the range [start, end) of a new stream,
// reusing the internal buffers. Equivalent to NewRangeReader but
// allocation-free after the first use.
func (r *RangeReader) Reset(in io.Reader, start, end int64) {
	r.src = boundaryReader{r: in, remaining: end - start}
	if r.br == nil {
		r.br = bufio.NewReaderSize(&r.src, 64<<10)
	} else {
		r.br.Reset(&r.src)
	}
	r.pos, r.end = start, end
	r.aligned = start == 0
	r.err = nil
}

// rangeReaderPool backs Acquire/Release: the 64 KB read buffer is the
// dominant per-invocation allocation on the pushdown hot path, so the
// storage-side filters recycle whole readers across requests.
var rangeReaderPool = sync.Pool{New: func() any { return new(RangeReader) }}

// AcquireRangeReader returns a pooled RangeReader reset to the range
// [start, end) of r. Pair with Release once the stream is consumed.
func AcquireRangeReader(r io.Reader, start, end int64) *RangeReader {
	rr := rangeReaderPool.Get().(*RangeReader)
	rr.Reset(r, start, end)
	return rr
}

// Release drops the reference to the underlying stream and returns the
// reader to the pool. The RangeReader must not be used afterwards.
func (r *RangeReader) Release() {
	r.src.r = nil
	rangeReaderPool.Put(r)
}

// boundaryReader reads freely inside the range and throttles to small chunks
// beyond it, so finishing a straddling record pulls only a few hundred extra
// bytes rather than a buffer-sized block.
type boundaryReader struct {
	r         io.Reader
	remaining int64
}

func (b *boundaryReader) Read(p []byte) (int, error) {
	const slackChunk = 256
	if b.remaining <= 0 {
		if len(p) > slackChunk {
			p = p[:slackChunk]
		}
		return b.r.Read(p)
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.r.Read(p)
	b.remaining -= int64(n)
	return n, err
}

// Next returns the next complete record without its trailing newline. The
// returned slice is only valid until the next call. Returns io.EOF when the
// range is exhausted.
//
//scoop:hotpath
func (r *RangeReader) Next() ([]byte, error) {
	if r.err != nil {
		return nil, r.err
	}
	if !r.aligned {
		// Discard the partial record the previous range finishes.
		for {
			skipped, err := r.br.ReadSlice('\n')
			r.pos += int64(len(skipped))
			if err == nil {
				break
			}
			if errors.Is(err, bufio.ErrBufferFull) {
				continue
			}
			r.err = io.EOF
			if !errors.Is(err, io.EOF) {
				r.err = err
			}
			return nil, r.err
		}
		r.aligned = true
	}
	for {
		// Hadoop split rule: a record is owned by the range its start offset
		// falls in, *including* a record starting exactly at end — the next
		// range's alignment skip discards that one, so this range must read
		// it (pos <= end, not pos < end).
		if r.pos > r.end {
			r.err = io.EOF
			return nil, r.err
		}
		line, err := r.readLine()
		if err != nil {
			r.err = err
			return nil, err
		}
		if len(line) == 0 {
			continue // blank line, not a record
		}
		return line, nil
	}
}

// readLine reads one record, updating pos, and strips \n and \r\n. The
// common case is a zero-copy ReadSlice into the buffered reader's window;
// records spanning a buffer boundary spill into the reused spill buffer.
func (r *RangeReader) readLine() ([]byte, error) {
	line, err := r.br.ReadSlice('\n')
	if errors.Is(err, bufio.ErrBufferFull) {
		r.spill = append(r.spill[:0], line...)
		for errors.Is(err, bufio.ErrBufferFull) {
			line, err = r.br.ReadSlice('\n')
			r.spill = append(r.spill, line...)
		}
		line = r.spill
	}
	r.pos += int64(len(line))
	if len(line) == 0 {
		if err == nil {
			err = io.EOF
		}
		return nil, err
	}
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	line = bytes.TrimRight(line, "\r\n")
	return line, nil
}

// Fields splits a record into fields. Quoted fields ("a,b" style, with ""
// escaping) are supported; the fast path for unquoted records makes no
// copies. dst is reused when non-nil.
func Fields(record []byte, delim byte, dst [][]byte) [][]byte {
	dst = dst[:0]
	if bytes.IndexByte(record, '"') < 0 {
		// Fast path: plain split.
		for {
			i := bytes.IndexByte(record, delim)
			if i < 0 {
				return append(dst, record)
			}
			dst = append(dst, record[:i])
			record = record[i+1:]
		}
	}
	// Quoted path.
	for len(record) >= 0 {
		if len(record) > 0 && record[0] == '"' {
			var field []byte
			i := 1
			for i < len(record) {
				if record[i] == '"' {
					if i+1 < len(record) && record[i+1] == '"' {
						field = append(field, '"')
						i += 2
						continue
					}
					i++
					break
				}
				field = append(field, record[i])
				i++
			}
			dst = append(dst, field)
			if i < len(record) && record[i] == delim {
				record = record[i+1:]
				continue
			}
			return dst
		}
		i := bytes.IndexByte(record, delim)
		if i < 0 {
			return append(dst, record)
		}
		dst = append(dst, record[:i])
		record = record[i+1:]
	}
	return dst
}

// FieldScanner splits records into fields with zero steady-state
// allocations: the field-slice header and the unquoting scratch buffer are
// owned by the scanner and reused across records. Semantics are identical to
// Fields (the equivalence tests assert it byte for byte).
type FieldScanner struct {
	fields  [][]byte
	scratch []byte
}

// Scan splits one record into fields. The returned fields alias either the
// record (unquoted fields) or the scanner's scratch buffer (quoted fields);
// both are only valid until the next Scan.
//
//scoop:hotpath
func (s *FieldScanner) Scan(record []byte, delim byte) [][]byte {
	s.fields = s.fields[:0]
	if bytes.IndexByte(record, '"') < 0 {
		// Fast path: plain split, no copies.
		for {
			i := bytes.IndexByte(record, delim)
			if i < 0 {
				s.fields = append(s.fields, record)
				return s.fields
			}
			s.fields = append(s.fields, record[:i])
			record = record[i+1:]
		}
	}
	// Quoted path: unescape into scratch. Sizing scratch to the whole record
	// up front keeps the emitted sub-slices stable — unescaped content never
	// exceeds the record length, so scratch cannot reallocate mid-record.
	if cap(s.scratch) < len(record) {
		s.scratch = make([]byte, 0, len(record))
	}
	s.scratch = s.scratch[:0]
	for len(record) >= 0 {
		if len(record) > 0 && record[0] == '"' {
			start := len(s.scratch)
			i := 1
			for i < len(record) {
				if record[i] == '"' {
					if i+1 < len(record) && record[i+1] == '"' {
						s.scratch = append(s.scratch, '"')
						i += 2
						continue
					}
					i++
					break
				}
				s.scratch = append(s.scratch, record[i])
				i++
			}
			s.fields = append(s.fields, s.scratch[start:len(s.scratch):len(s.scratch)])
			if i < len(record) && record[i] == delim {
				record = record[i+1:]
				continue
			}
			return s.fields
		}
		i := bytes.IndexByte(record, delim)
		if i < 0 {
			s.fields = append(s.fields, record)
			return s.fields
		}
		s.fields = append(s.fields, record[:i])
		record = record[i+1:]
	}
	return s.fields
}

// NeedsQuoting reports whether a field must be quoted when written.
func NeedsQuoting(field []byte, delim byte) bool {
	return bytes.IndexByte(field, delim) >= 0 ||
		bytes.IndexByte(field, '"') >= 0 ||
		bytes.IndexByte(field, '\n') >= 0 ||
		bytes.IndexByte(field, '\r') >= 0
}

// writerPool recycles the buffered writer WriteRecord interposes when handed
// a plain io.Writer, so record emission stays allocation-free in steady state.
var writerPool = sync.Pool{New: func() any { return bufio.NewWriterSize(io.Discard, 4<<10) }}

// WriteRecord writes fields as one CSV record with a trailing newline.
// Callers passing a *bufio.Writer keep control of flushing; any other writer
// goes through a pooled buffer that is flushed before return.
//
//scoop:hotpath
func WriteRecord(w io.Writer, fields [][]byte, delim byte) error {
	if bw, ok := w.(*bufio.Writer); ok {
		return writeRecord(bw, fields, delim)
	}
	bw := writerPool.Get().(*bufio.Writer)
	bw.Reset(w)
	err := writeRecord(bw, fields, delim)
	if err == nil {
		err = bw.Flush()
	}
	bw.Reset(io.Discard) // drop the caller's writer before pooling
	writerPool.Put(bw)
	return err
}

func writeRecord(bw *bufio.Writer, fields [][]byte, delim byte) error {
	for i, f := range fields {
		if i > 0 {
			if err := bw.WriteByte(delim); err != nil {
				return err
			}
		}
		if NeedsQuoting(f, delim) {
			if err := bw.WriteByte('"'); err != nil {
				return err
			}
			for _, c := range f {
				if c == '"' {
					if _, err := bw.WriteString(`""`); err != nil {
						return err
					}
					continue
				}
				if err := bw.WriteByte(c); err != nil {
					return err
				}
			}
			if err := bw.WriteByte('"'); err != nil {
				return err
			}
			continue
		}
		if _, err := bw.Write(f); err != nil {
			return err
		}
	}
	return bw.WriteByte('\n')
}

// ReadHeader reads the first record of r and returns its fields as strings.
func ReadHeader(r io.Reader) ([]string, int64, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadBytes('\n')
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, 0, fmt.Errorf("csvio: read header: %w", err)
	}
	n := int64(len(line))
	line = bytes.TrimRight(line, "\r\n")
	if len(line) == 0 {
		return nil, 0, fmt.Errorf("csvio: empty header")
	}
	fields := Fields(line, DefaultDelimiter, nil)
	out := make([]string, len(fields))
	for i, f := range fields {
		out[i] = string(f)
	}
	return out, n, nil
}

// Partition describes one byte range of an object, in absolute offsets.
type Partition struct {
	Start int64
	End   int64 // exclusive
}

// Partitions splits [0, size) into chunks of at most chunkSize bytes — the
// "partition discovery" step the connector performs before a query runs.
func Partitions(size, chunkSize int64) []Partition {
	if size <= 0 {
		return nil
	}
	if chunkSize <= 0 {
		return []Partition{{0, size}}
	}
	var out []Partition
	for off := int64(0); off < size; off += chunkSize {
		end := off + chunkSize
		if end > size {
			end = size
		}
		out = append(out, Partition{Start: off, End: end})
	}
	return out
}
