package csvio

import (
	"bytes"
	"encoding/csv"
	"io"
	"strings"
	"testing"
)

// goldenRecords is the field-splitting corpus: each entry is one record (no
// trailing newline) with the fields both Fields and FieldScanner.Scan must
// produce. It covers quoted fields, embedded separators, escaped quotes,
// empty leading/middle/trailing fields, and single-field records.
var goldenRecords = []struct {
	name   string
	record string
	fields []string
}{
	{"plain", "a,b,c", []string{"a", "b", "c"}},
	{"single", "abc", []string{"abc"}},
	{"empty record", "", []string{""}},
	{"empty trailing", "a,b,", []string{"a", "b", ""}},
	{"empty trailing run", "a,,,", []string{"a", "", "", ""}},
	{"empty leading", ",b,c", []string{"", "b", "c"}},
	{"empty middle", "a,,c", []string{"a", "", "c"}},
	{"all empty", ",,", []string{"", "", ""}},
	{"quoted plain", `"a","b"`, []string{"a", "b"}},
	{"quoted separator", `"a,b",c`, []string{"a,b", "c"}},
	{"quoted escape", `"say ""hi""",x`, []string{`say "hi"`, "x"}},
	{"quoted empty", `"",b`, []string{"", "b"}},
	{"quoted trailing", `a,"b,c"`, []string{"a", "b,c"}},
	{"quoted only", `"a,b"`, []string{"a,b"}},
	{"quote mix", `a,"b",c`, []string{"a", "b", "c"}},
	{"unterminated quote", `"abc`, []string{"abc"}},
	{"quoted doubled", `""""`, []string{`"`}},
	{"long field", strings.Repeat("x", 1000) + ",y", []string{strings.Repeat("x", 1000), "y"}},
}

func assertFields(t *testing.T, label string, got [][]byte, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d fields, want %d (%q vs %q)", label, len(got), len(want), got, want)
	}
	for i := range got {
		if string(got[i]) != want[i] {
			t.Fatalf("%s: field %d = %q, want %q", label, i, got[i], want[i])
		}
	}
}

func TestFieldsGolden(t *testing.T) {
	for _, tc := range goldenRecords {
		t.Run(tc.name, func(t *testing.T) {
			got := Fields([]byte(tc.record), DefaultDelimiter, nil)
			assertFields(t, "Fields", got, tc.fields)
		})
	}
}

// TestScanMatchesFields asserts the zero-allocation FieldScanner produces
// byte-identical output to the reference Fields implementation on the golden
// corpus, for both the default and an alternative delimiter.
func TestScanMatchesFields(t *testing.T) {
	var sc FieldScanner
	for _, delim := range []byte{',', ';'} {
		for _, tc := range goldenRecords {
			rec := []byte(tc.record)
			want := Fields(rec, delim, nil)
			got := sc.Scan(rec, delim)
			if len(got) != len(want) {
				t.Fatalf("%s delim %q: Scan %d fields, Fields %d", tc.name, delim, len(got), len(want))
			}
			for i := range got {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("%s delim %q field %d: Scan %q, Fields %q", tc.name, delim, i, got[i], want[i])
				}
			}
		}
	}
}

// TestScanMatchesEncodingCSV checks both splitters against the standard
// library where the dialects overlap: fields that are either fully quoted or
// quote-free, which is exactly what WriteRecord emits. Round-tripping
// arbitrary field values through WriteRecord therefore must agree with
// encoding/csv's reading of the same bytes.
func TestScanMatchesEncodingCSV(t *testing.T) {
	corpus := [][]string{
		{"a", "b", "c"},
		{"a,b", "c"},
		{`say "hi"`, ""},
		{"", "", ""},
		{"x", ""},
		{"trailing,comma,"},
		{`""`, `,`},
		{"plain", `quoted "inner" text`, "comma,and\"quote"},
	}
	var sc FieldScanner
	for _, fields := range corpus {
		raw := make([][]byte, len(fields))
		for i, f := range fields {
			raw[i] = []byte(f)
		}
		var buf bytes.Buffer
		if err := WriteRecord(&buf, raw, DefaultDelimiter); err != nil {
			t.Fatalf("WriteRecord(%q): %v", fields, err)
		}
		line := bytes.TrimSuffix(buf.Bytes(), []byte("\n"))

		cr := csv.NewReader(bytes.NewReader(buf.Bytes()))
		stdFields, err := cr.Read()
		if err != nil {
			t.Fatalf("encoding/csv rejects WriteRecord output %q: %v", buf.Bytes(), err)
		}
		got := sc.Scan(line, DefaultDelimiter)
		assertFields(t, "Scan vs encoding/csv", got, stdFields)
		assertFields(t, "Fields vs encoding/csv", Fields(line, DefaultDelimiter, nil), stdFields)
		if len(stdFields) != len(fields) {
			t.Fatalf("round trip %q changed field count: %q", fields, stdFields)
		}
		for i := range fields {
			if stdFields[i] != fields[i] {
				t.Fatalf("round trip field %d: wrote %q, read back %q", i, fields[i], stdFields[i])
			}
		}
	}
}

// refRecords is the trivially-correct reference for RangeReader over a whole
// object: split on newlines, trim carriage returns, drop blanks.
func refRecords(doc []byte) []string {
	var out []string
	for _, line := range bytes.Split(doc, []byte("\n")) {
		line = bytes.TrimRight(line, "\r")
		if len(line) == 0 {
			continue
		}
		out = append(out, string(line))
	}
	return out
}

// readRange collects the records of one byte range.
func readRange(t *testing.T, doc []byte, start, end int64) []string {
	t.Helper()
	rr := AcquireRangeReader(bytes.NewReader(doc[start:]), start, end)
	defer rr.Release()
	var out []string
	for {
		rec, err := rr.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("range [%d,%d): %v", start, end, err)
		}
		out = append(out, string(rec))
	}
}

// TestRangeReaderEveryBoundary splits a document at every possible byte
// offset — so every record boundary, mid-record, mid-CRLF, and mid-quote
// position is a range edge — and asserts the two halves together yield
// exactly the reference record sequence.
func TestRangeReaderEveryBoundary(t *testing.T) {
	doc := []byte("vid1,10,Nice\r\nvid2,20,Paris\n\n\"a,b\",30,Lyon\nlast,40,Rot\n")
	want := refRecords(doc)
	size := int64(len(doc))
	// cut starts at 1: a range ending at 0 still owns the record starting at
	// offset 0 (the ownership rule is start <= end), so [0,0)+[0,size) is not
	// a disjoint partition.
	for cut := int64(1); cut <= size; cut++ {
		got := append(readRange(t, doc, 0, cut), readRange(t, doc, cut, size)...)
		if len(got) != len(want) {
			t.Fatalf("cut %d: %d records, want %d: %q", cut, len(got), len(want), got)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cut %d record %d: %q, want %q", cut, i, got[i], want[i])
			}
		}
	}
}

// TestRangeReaderSpill drives records longer than the 64 KB internal buffer
// through the spill path and checks byte identity with the reference,
// including a cut landing inside the long record.
func TestRangeReaderSpill(t *testing.T) {
	long := strings.Repeat("y", 200<<10)
	doc := []byte("short,1\n" + long + "\ntail,2\n")
	want := refRecords(doc)
	size := int64(len(doc))
	for _, cut := range []int64{1, 9, 100, 70 << 10, size - 3, size} {
		got := append(readRange(t, doc, 0, cut), readRange(t, doc, cut, size)...)
		if len(got) != len(want) {
			t.Fatalf("cut %d: %d records, want %d", cut, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cut %d: record %d differs (len %d vs %d)", cut, i, len(got[i]), len(want[i]))
			}
		}
	}
}

// FuzzScanMatchesFields fuzzes the splitter equivalence: any record, any
// delimiter, Scan and Fields must agree byte for byte.
func FuzzScanMatchesFields(f *testing.F) {
	for _, tc := range goldenRecords {
		f.Add([]byte(tc.record), byte(','))
	}
	f.Add([]byte(`"ab`+"\x00"+`",`), byte(','))
	f.Add([]byte(`a;"b;c";`), byte(';'))
	var sc FieldScanner
	f.Fuzz(func(t *testing.T, record []byte, delim byte) {
		if delim == '"' || delim == '\n' || delim == '\r' {
			t.Skip() // not meaningful CSV dialects
		}
		want := Fields(record, delim, nil)
		got := sc.Scan(record, delim)
		if len(got) != len(want) {
			t.Fatalf("Scan %d fields, Fields %d on %q", len(got), len(want), record)
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("field %d: Scan %q, Fields %q on %q", i, got[i], want[i], record)
			}
		}
	})
}

// FuzzRangeReaderSplit fuzzes the exactly-once split property: for any
// document and cut point, reading [0,cut) then [cut,len) yields the same
// records as the newline-split reference.
func FuzzRangeReaderSplit(f *testing.F) {
	f.Add([]byte("a,b\nc,d\n"), uint16(3))
	f.Add([]byte("a\r\nb\r\n"), uint16(4))
	f.Add([]byte("\n\nx\n"), uint16(1))
	f.Fuzz(func(t *testing.T, doc []byte, rawCut uint16) {
		size := int64(len(doc))
		if size == 0 {
			t.Skip()
		}
		cut := 1 + int64(rawCut)%size // in [1,size]; 0 would double-count the first record
		want := refRecords(doc)
		got := append(readRange(t, doc, 0, cut), readRange(t, doc, cut, size)...)
		if len(got) != len(want) {
			t.Fatalf("cut %d of %d: %d records, want %d", cut, size, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cut %d record %d: %q, want %q", cut, i, got[i], want[i])
			}
		}
	})
}
