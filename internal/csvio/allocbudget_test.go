//go:build !race

// Allocation-budget regression tests: the record hot path (range reading,
// field splitting, record writing) must stay at zero heap allocations per
// record in steady state. They are excluded under the race detector, whose
// instrumentation allocates; scripts/verify.sh runs them in a separate
// non-race step (go test -run TestAllocBudget).
package csvio

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"
)

// budgetDoc is ~1000 records including quoted fields, so both splitter paths
// and the blank-line skip are on the measured path.
func budgetDoc() []byte {
	var sb strings.Builder
	for i := 0; i < 1000; i++ {
		if i%100 == 7 {
			sb.WriteString("\"v,9\",2015-01-17 10:20:00,77.5,\"Rotter\"\"dam\",NED\n")
			continue
		}
		sb.WriteString("vid8,2015-01-17 10:20:00,42.25,Rotterdam,NED\n")
	}
	return []byte(sb.String())
}

func TestAllocBudgetRangeReader(t *testing.T) {
	doc := budgetDoc()
	size := int64(len(doc))
	var rd bytes.Reader
	rd.Reset(doc)
	rr := NewRangeReader(&rd, 0, size)
	drain := func() {
		rd.Reset(doc)
		rr.Reset(&rd, 0, size)
		for {
			if _, err := rr.Next(); err != nil {
				return
			}
		}
	}
	drain() // warm the internal buffers
	if avg := testing.AllocsPerRun(20, drain); avg != 0 {
		t.Fatalf("RangeReader steady state: %v allocs per 1000-record pass, want 0", avg)
	}
}

func TestAllocBudgetFieldScanner(t *testing.T) {
	records := [][]byte{
		[]byte("vid8,2015-01-17 10:20:00,42.25,Rotterdam,NED"),
		[]byte("\"v,9\",2015-01-17 10:20:00,77.5,\"Rotter\"\"dam\",NED"),
		[]byte("a,,c,"),
	}
	var sc FieldScanner
	for _, rec := range records {
		sc.Scan(rec, DefaultDelimiter) // warm the scratch buffer
	}
	avg := testing.AllocsPerRun(100, func() {
		for _, rec := range records {
			sc.Scan(rec, DefaultDelimiter)
		}
	})
	if avg != 0 {
		t.Fatalf("FieldScanner.Scan: %v allocs per pass, want 0", avg)
	}
}

func TestAllocBudgetWriteRecord(t *testing.T) {
	fields := [][]byte{
		[]byte("vid8"), []byte("2015-01-17 10:20:00"), []byte("42.25"),
		[]byte("needs,quoting"), []byte(`and "this"`),
	}
	// Caller-managed buffered writer: the filters' path.
	bw := bufio.NewWriterSize(io.Discard, 4<<10)
	if err := WriteRecord(bw, fields, DefaultDelimiter); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := WriteRecord(bw, fields, DefaultDelimiter); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("WriteRecord(*bufio.Writer): %v allocs per record, want 0", avg)
	}
	// Plain io.Writer: the pooled-buffer path.
	if err := WriteRecord(io.Discard, fields, DefaultDelimiter); err != nil {
		t.Fatal(err)
	}
	avg = testing.AllocsPerRun(100, func() {
		if err := WriteRecord(io.Discard, fields, DefaultDelimiter); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("WriteRecord(io.Writer): %v allocs per record, want 0", avg)
	}
}
