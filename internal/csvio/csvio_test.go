package csvio

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func collect(t *testing.T, data string, start, end int64) []string {
	t.Helper()
	r := NewRangeReader(strings.NewReader(data[start:]), start, end)
	var out []string
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(rec))
	}
}

func TestRangeReaderWholeObject(t *testing.T) {
	data := "a,1\nb,2\nc,3\n"
	got := collect(t, data, 0, int64(len(data)))
	if len(got) != 3 || got[0] != "a,1" || got[2] != "c,3" {
		t.Errorf("got %v", got)
	}
}

func TestRangeReaderNoTrailingNewline(t *testing.T) {
	data := "a,1\nb,2"
	got := collect(t, data, 0, int64(len(data)))
	if len(got) != 2 || got[1] != "b,2" {
		t.Errorf("got %v", got)
	}
}

func TestRangeReaderCRLF(t *testing.T) {
	data := "a,1\r\nb,2\r\n"
	got := collect(t, data, 0, int64(len(data)))
	if len(got) != 2 || got[0] != "a,1" {
		t.Errorf("got %v", got)
	}
}

func TestRangeReaderSkipsBlankLines(t *testing.T) {
	data := "a,1\n\n\nb,2\n"
	got := collect(t, data, 0, int64(len(data)))
	if len(got) != 2 {
		t.Errorf("got %v", got)
	}
}

func TestRangeReaderMidRecordStart(t *testing.T) {
	data := "aaaa,1\nbbbb,2\ncccc,3\n"
	// Start inside the first record: must skip to record 2.
	got := collect(t, data, 2, int64(len(data)))
	if len(got) != 2 || got[0] != "bbbb,2" {
		t.Errorf("got %v", got)
	}
	// Start exactly at a record boundary (> 0): Hadoop semantics still skip
	// to the *next* record, because the previous range (which ended at this
	// offset... actually ended after it) owns the record beginning exactly at
	// the boundary only if the boundary bisects nothing. The rule "skip to
	// first newline when start > 0" means a range starting exactly at a
	// record start hands that record to the previous range — which reads
	// through it since the record *starts* before the next range. Both sides
	// agree, so no loss and no duplication.
	got = collect(t, data, 7, int64(len(data)))
	if len(got) != 1 || got[0] != "cccc,3" {
		t.Errorf("boundary start: got %v", got)
	}
}

func TestRangeReaderStraddlesEnd(t *testing.T) {
	data := "aaaa,1\nbbbb,2\ncccc,3\n"
	// Range ends mid-record-2: record 2 starts inside, so it is processed
	// fully; record 3 starts beyond end and is not.
	got := collect(t, data, 0, 9)
	if len(got) != 2 || got[1] != "bbbb,2" {
		t.Errorf("got %v", got)
	}
}

// Property: for ANY partitioning of the object, the union of all ranges'
// records equals the full record list exactly once, in order.
func TestRangePartitioningExactlyOnce(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 200; i++ {
		b.WriteString(strings.Repeat("x", i%17))
		b.WriteString(",v\n")
	}
	data := b.String()
	want := collect(t, data, 0, int64(len(data)))

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		// Random cut points.
		n := 1 + rng.Intn(8)
		cuts := map[int64]bool{}
		for i := 0; i < n; i++ {
			cuts[int64(rng.Intn(len(data)))] = true
		}
		offsets := []int64{0}
		for c := range cuts {
			if c > 0 {
				offsets = append(offsets, c)
			}
		}
		// Sort.
		for i := range offsets {
			for j := i + 1; j < len(offsets); j++ {
				if offsets[j] < offsets[i] {
					offsets[i], offsets[j] = offsets[j], offsets[i]
				}
			}
		}
		var got []string
		for i, start := range offsets {
			end := int64(len(data))
			if i+1 < len(offsets) {
				end = offsets[i+1]
			}
			got = append(got, collect(t, data, start, end)...)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d offsets %v: %d records, want %d", trial, offsets, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: record %d = %q, want %q", trial, i, got[i], want[i])
			}
		}
	}
}

func TestFieldsFastPath(t *testing.T) {
	got := Fields([]byte("a,b,,c"), ',', nil)
	if len(got) != 4 || string(got[0]) != "a" || string(got[2]) != "" || string(got[3]) != "c" {
		t.Errorf("got %q", got)
	}
	got = Fields([]byte(""), ',', nil)
	if len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("empty record: %q", got)
	}
	got = Fields([]byte("single"), ',', got) // reuse dst
	if len(got) != 1 || string(got[0]) != "single" {
		t.Errorf("single: %q", got)
	}
}

func TestFieldsQuoted(t *testing.T) {
	got := Fields([]byte(`a,"b,c",d`), ',', nil)
	if len(got) != 3 || string(got[1]) != "b,c" {
		t.Errorf("got %q", got)
	}
	got = Fields([]byte(`"he said ""hi""",x`), ',', nil)
	if len(got) != 2 || string(got[0]) != `he said "hi"` {
		t.Errorf("got %q", got)
	}
	got = Fields([]byte(`"unterminated`), ',', nil)
	if len(got) != 1 || string(got[0]) != "unterminated" {
		t.Errorf("got %q", got)
	}
	got = Fields([]byte(`"a",`), ',', nil)
	if len(got) != 2 || string(got[1]) != "" {
		t.Errorf("got %q", got)
	}
}

func TestWriteRecordRoundTrip(t *testing.T) {
	cases := [][]string{
		{"a", "b", "c"},
		{"with,comma", "plain"},
		{`with"quote`, ""},
		{"with\nnewline", "x"},
	}
	for _, fields := range cases {
		var buf bytes.Buffer
		in := make([][]byte, len(fields))
		for i, f := range fields {
			in[i] = []byte(f)
		}
		if err := WriteRecord(&buf, in, ','); err != nil {
			t.Fatal(err)
		}
		line := bytes.TrimRight(buf.Bytes(), "\n")
		got := Fields(line, ',', nil)
		if len(got) != len(fields) {
			t.Fatalf("%v: got %q", fields, got)
		}
		for i := range fields {
			if string(got[i]) != fields[i] {
				t.Errorf("%v: field %d = %q", fields, i, got[i])
			}
		}
	}
}

// Property: quoting round-trips arbitrary field content (newline-free needle
// via record reader is tested separately; here fields may contain anything).
func TestWriteRecordProperty(t *testing.T) {
	f := func(a, b string) bool {
		var buf bytes.Buffer
		if err := WriteRecord(&buf, [][]byte{[]byte(a), []byte(b)}, ','); err != nil {
			return false
		}
		line := bytes.TrimSuffix(buf.Bytes(), []byte("\n"))
		got := Fields(line, ',', nil)
		return len(got) == 2 && string(got[0]) == a && string(got[1]) == b
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestReadHeader(t *testing.T) {
	cols, n, err := ReadHeader(strings.NewReader("vid,date,index\nV1,2015,3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 15 {
		t.Errorf("header length = %d", n)
	}
	if len(cols) != 3 || cols[0] != "vid" || cols[2] != "index" {
		t.Errorf("cols = %v", cols)
	}
	if _, _, err := ReadHeader(strings.NewReader("")); err == nil {
		t.Error("empty header should fail")
	}
	if _, _, err := ReadHeader(strings.NewReader("\n")); err == nil {
		t.Error("blank header should fail")
	}
}

func TestPartitions(t *testing.T) {
	p := Partitions(100, 30)
	if len(p) != 4 {
		t.Fatalf("p = %v", p)
	}
	if p[0] != (Partition{0, 30}) || p[3] != (Partition{90, 100}) {
		t.Errorf("p = %v", p)
	}
	if got := Partitions(0, 30); got != nil {
		t.Errorf("empty = %v", got)
	}
	if got := Partitions(10, 0); len(got) != 1 || got[0] != (Partition{0, 10}) {
		t.Errorf("zero chunk = %v", got)
	}
	if got := Partitions(30, 30); len(got) != 1 {
		t.Errorf("exact = %v", got)
	}
}

// Property: partitions tile [0, size) without gaps or overlaps.
func TestPartitionsProperty(t *testing.T) {
	f := func(size, chunk int64) bool {
		if size < 0 {
			size = -size
		}
		size %= 1 << 20
		if chunk < 0 {
			chunk = -chunk
		}
		chunk = chunk%(1<<16) + 1
		parts := Partitions(size, chunk)
		var pos int64
		for _, p := range parts {
			if p.Start != pos || p.End <= p.Start {
				return false
			}
			pos = p.End
		}
		return pos == size || (size == 0 && len(parts) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNeedsQuoting(t *testing.T) {
	if NeedsQuoting([]byte("plain"), ',') {
		t.Error("plain should not need quoting")
	}
	for _, s := range []string{"a,b", `a"b`, "a\nb", "a\rb"} {
		if !NeedsQuoting([]byte(s), ',') {
			t.Errorf("%q should need quoting", s)
		}
	}
}
