// Package core is the public face of the Scoop reproduction: it wires the
// object store (with its storlet engine), the Stocator-like connector, the
// Catalyst-style planner, the data sources and the mini-Spark driver into a
// single queriable system.
//
// The headline call is Query: parse SQL, extract the pushable projection and
// selection (the pushdown task), fan parallel ranged GETs out over the
// dataset's partitions — tagged with the task in pushdown mode, raw in
// baseline mode — and run the residual plan (aggregation, ordering) on the
// compute side. Modes differ only in *where* filtering happens, which is
// precisely the variable the paper's evaluation isolates.
package core

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"scoop/internal/adaptive"
	"scoop/internal/compute"
	"scoop/internal/connector"
	"scoop/internal/datasource"
	"scoop/internal/meter"
	"scoop/internal/metrics"
	"scoop/internal/objectstore"
	"scoop/internal/sql/exec"
	"scoop/internal/sql/parser"
	"scoop/internal/sql/plan"
	"scoop/internal/sql/types"
	"scoop/internal/storlet"
	"scoop/internal/storlet/aggfilter"
	"scoop/internal/storlet/compressfilter"
	"scoop/internal/storlet/csvfilter"
	"scoop/internal/storlet/etl"
	"scoop/internal/storlet/jsonfilter"
)

// Mode selects where filtering executes.
type Mode int

const (
	// ModePushdown delegates projection/selection to the object store.
	ModePushdown Mode = iota
	// ModeBaseline ingests raw data and filters at the compute side — the
	// classic ingest-then-compute flow.
	ModeBaseline
	// ModeAuto lets the adaptive controller decide per query (paper §VII);
	// requires EnableAdaptive and an analyzed table.
	ModeAuto
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModePushdown:
		return "pushdown"
	case ModeAuto:
		return "auto"
	default:
		return "baseline"
	}
}

// Config assembles a Scoop instance.
type Config struct {
	// Client is an existing store client; nil builds an in-process cluster
	// from Cluster (with the CSV and ETL filters pre-deployed).
	Client  objectstore.Client
	Cluster objectstore.ClusterConfig
	// Account scopes all containers (default "scoop").
	Account string
	// ChunkSize is the partition-discovery split size (default 64 MiB —
	// keep it small in tests to force parallelism).
	ChunkSize int64
	// Compute sizes the worker pool.
	Compute compute.Config
	// NoFallback disables the connector's compute-side degradation path.
	// By default a local storlet engine (with the standard filters) is
	// armed so pushdown refusals and mid-stream filter failures degrade to
	// plain GET + local evaluation instead of failing the query.
	NoFallback bool
}

// Scoop is the assembled system.
type Scoop struct {
	cluster *objectstore.Cluster // nil when Client was provided
	client  objectstore.Client
	conn    *connector.Connector
	driver  *compute.Driver
	metrics *metrics.Registry

	mu     sync.RWMutex
	tables map[string]tableDef

	ctrl   *adaptive.Controller
	tenant string
}

type tableDef struct {
	container string
	prefix    string
	decl      string
	format    string // "csv" (default) or "json"
	opts      datasource.CSVOptions
	jsonOpts  datasource.JSONOptions
	stats     *adaptive.TableStats // set by AnalyzeTable, used by ModeAuto
}

// newRelation constructs the table's relation for the given execution mode.
func (d tableDef) newRelation(conn *connector.Connector, pushdownMode bool) (datasource.PrunedFilteredScanner, error) {
	if d.format == "json" {
		opts := d.jsonOpts
		opts.Pushdown = pushdownMode
		return datasource.NewJSON(conn, d.container, d.prefix, d.decl, opts)
	}
	opts := d.opts
	opts.Pushdown = pushdownMode
	return datasource.NewCSV(conn, d.container, d.prefix, d.decl, opts)
}

// RegisterStandardFilters deploys the stock filter set on an engine — the
// same list for the store's engine and the connector's fallback engine, so a
// degraded chain always finds its filters locally.
func RegisterStandardFilters(e *storlet.Engine) error {
	filters := []storlet.Filter{
		csvfilter.New(),
		etl.NewCleanse(),
		etl.NewSplit(),
		compressfilter.New(),
		aggfilter.New(),
		jsonfilter.New(),
	}
	for _, f := range filters {
		if err := e.Register(f); err != nil {
			return err
		}
	}
	return nil
}

// New assembles a Scoop instance.
func New(cfg Config) (*Scoop, error) {
	if cfg.Account == "" {
		cfg.Account = "scoop"
	}
	if cfg.Compute.Workers == 0 {
		cfg.Compute = compute.DefaultConfig()
	}
	s := &Scoop{tables: make(map[string]tableDef)}
	if cfg.Client != nil {
		s.client = cfg.Client
	} else {
		cc := cfg.Cluster
		if cc.Proxies == 0 {
			cc = objectstore.DefaultClusterConfig()
		}
		cluster, err := objectstore.NewCluster(cc)
		if err != nil {
			return nil, err
		}
		if err := RegisterStandardFilters(cluster.Engine()); err != nil {
			return nil, err
		}
		s.cluster = cluster
		s.client = cluster.Client()
	}
	if s.cluster != nil {
		s.metrics = s.cluster.Metrics()
	}
	if s.metrics == nil {
		s.metrics = metrics.NewRegistry()
	}
	s.conn = connector.New(s.client, cfg.Account, cfg.ChunkSize)
	if !cfg.NoFallback {
		// The degradation ladder's last rung (DESIGN §8): a compute-side
		// engine with the standard filters, so refused/aborted pushdown
		// degrades to the paper's baseline path instead of failing.
		fe := storlet.NewEngine(storlet.Limits{})
		if err := RegisterStandardFilters(fe); err != nil {
			return nil, err
		}
		s.conn.EnableFallback(fe, s.metrics)
	}
	driver, err := compute.NewDriver(cfg.Compute)
	if err != nil {
		return nil, err
	}
	s.driver = driver
	return s, nil
}

// Cluster returns the in-process cluster, or nil when an external client is
// in use. It exposes node/proxy statistics for experiments.
func (s *Scoop) Cluster() *objectstore.Cluster { return s.cluster }

// Client returns the store client.
func (s *Scoop) Client() objectstore.Client { return s.client }

// Connector returns the storage connector (ingestion statistics live here).
func (s *Scoop) Connector() *connector.Connector { return s.conn }

// MetricsRegistry returns the metrics registry the system reports into (the
// cluster's when running in-process, otherwise Scoop's own) — e.g.
// "connector.pushdown.fallbacks".
func (s *Scoop) MetricsRegistry() *metrics.Registry { return s.metrics }

// Account returns the account all tables live under.
func (s *Scoop) Account() string { return s.conn.Account() }

// RegisterTable maps a SQL table name to CSV data under container/prefix
// with the declared schema. Query-time mode overrides opts.Pushdown.
func (s *Scoop) RegisterTable(name, container, prefix, schemaDecl string, opts datasource.CSVOptions) error {
	if name == "" {
		return fmt.Errorf("core: empty table name")
	}
	if _, err := types.ParseSchema(schemaDecl); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	if _, dup := s.tables[key]; dup {
		return fmt.Errorf("core: table %q already registered", name)
	}
	s.tables[key] = tableDef{container: container, prefix: prefix, decl: schemaDecl, opts: opts}
	return nil
}

// RegisterJSONTable maps a SQL table name to JSON-lines data under
// container/prefix. The declared schema names the top-level document fields
// exposed as columns (paper §VII: object stores hold arbitrary formats;
// pushdown filters make them queriable).
func (s *Scoop) RegisterJSONTable(name, container, prefix, schemaDecl string, opts datasource.JSONOptions) error {
	if name == "" {
		return fmt.Errorf("core: empty table name")
	}
	if _, err := types.ParseSchema(schemaDecl); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	if _, dup := s.tables[key]; dup {
		return fmt.Errorf("core: table %q already registered", name)
	}
	s.tables[key] = tableDef{container: container, prefix: prefix, decl: schemaDecl, format: "json", jsonOpts: opts}
	return nil
}

// EnableAdaptive installs a controller consulted by ModeAuto queries; the
// tenant name is what the controller's class policy keys on.
func (s *Scoop) EnableAdaptive(ctrl *adaptive.Controller, tenant string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ctrl = ctrl
	s.tenant = tenant
}

// AnalyzeTable samples the table and stores column statistics for the
// adaptive controller's selectivity estimates (ANALYZE, in SQL terms).
func (s *Scoop) AnalyzeTable(ctx context.Context, name string, maxRows int) error {
	s.mu.RLock()
	def, ok := s.tables[strings.ToLower(name)]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("core: unknown table %q", name)
	}
	rel, err := def.newRelation(s.conn, false)
	if err != nil {
		return err
	}
	stats, err := adaptive.CollectStats(ctx, rel, maxRows)
	if err != nil {
		return err
	}
	s.mu.Lock()
	def.stats = stats
	s.tables[strings.ToLower(name)] = def
	s.mu.Unlock()
	return nil
}

// Metrics describes one query execution.
type Metrics struct {
	Mode Mode
	// Decision explains a ModeAuto verdict (empty otherwise).
	Decision string
	// WallTime is end-to-end query latency at the client.
	WallTime time.Duration
	// BytesIngested is the data moved from the store to compute for this
	// query — the quantity pushdown shrinks.
	BytesIngested int64
	// Requests is the number of object GETs issued.
	Requests int64
	// Splits is the partition count.
	Splits int
	// RowsScanned is the number of rows delivered by the data source.
	RowsScanned int64
	// RowsReturned is the final result cardinality.
	RowsReturned int
	// Compute summarizes the task execution.
	Compute compute.Stats
}

// Selectivity returns the fraction of the dataset's bytes discarded before
// reaching compute, given the dataset size. (Query data selectivity in the
// paper's terminology.)
func (m Metrics) Selectivity(datasetBytes int64) float64 {
	if datasetBytes <= 0 {
		return 0
	}
	f := 1 - float64(m.BytesIngested)/float64(datasetBytes)
	if f < 0 {
		return 0
	}
	return f
}

// Result is a completed query.
type Result struct {
	Schema  *types.Schema
	Rows    []types.Row
	Plan    *plan.Plan
	Metrics Metrics
}

// QueryOptions tune a single query.
type QueryOptions struct {
	// Mode selects pushdown or baseline execution.
	Mode Mode
	// Context cancels the job (nil = background).
	Context context.Context
}

// ctx returns the query's context, defaulting to Background.
func (o QueryOptions) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// Query parses and executes a SQL SELECT against a registered table.
func (s *Scoop) Query(sql string, opts QueryOptions) (*Result, error) {
	start := time.Now()
	qctx := opts.ctx()
	sel, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	def, ok := s.tables[strings.ToLower(sel.Table)]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown table %q", sel.Table)
	}

	schema, err := types.ParseSchema(def.decl)
	if err != nil {
		return nil, err
	}
	p, err := plan.Analyze(sel, schema, plan.Options{})
	if err != nil {
		return nil, err
	}

	effMode := opts.Mode
	decision := ""
	if opts.Mode == ModeAuto {
		var err error
		effMode, decision, err = s.decideMode(qctx, sel.Table, def, p)
		if err != nil {
			return nil, err
		}
	}

	rel, err := def.newRelation(s.conn, effMode == ModePushdown)
	if err != nil {
		return nil, err
	}
	splits, err := rel.Splits(qctx)
	if err != nil {
		return nil, err
	}

	before := s.conn.Stats()
	tasks := make([]compute.Task, len(splits))
	for i, split := range splits {
		split := split
		tasks[i] = func(ctx context.Context) (any, error) {
			it, err := rel.ScanPrunedFiltered(ctx, split, p.Required, p.Pushed)
			if err != nil {
				return nil, err
			}
			defer it.Close()
			var rows []types.Row
			for {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				r, err := it.Next()
				if err == io.EOF {
					return rows, nil
				}
				if err != nil {
					return nil, err
				}
				rows = append(rows, r)
			}
		}
	}
	results, cstats, err := s.driver.Run(opts.Context, tasks)
	if err != nil {
		return nil, err
	}
	var all []types.Row
	var scanned int64
	for _, v := range results {
		rows := v.([]types.Row)
		scanned += int64(len(rows))
		all = append(all, rows...)
	}
	res, err := exec.Execute(p, exec.NewSliceIterator(all))
	if err != nil {
		return nil, err
	}
	after := s.conn.Stats()
	return &Result{
		Schema: res.Schema,
		Rows:   res.Rows,
		Plan:   p,
		Metrics: Metrics{
			Mode:          effMode,
			Decision:      decision,
			WallTime:      time.Since(start),
			BytesIngested: after.BytesIngested - before.BytesIngested,
			Requests:      after.Requests - before.Requests,
			Splits:        len(splits),
			RowsScanned:   scanned,
			RowsReturned:  len(res.Rows),
			Compute:       cstats,
		},
	}, nil
}

// decideMode consults the adaptive controller for a ModeAuto query, lazily
// sampling table statistics on first use.
func (s *Scoop) decideMode(ctx context.Context, table string, def tableDef, p *plan.Plan) (Mode, string, error) {
	s.mu.RLock()
	ctrl, tenant := s.ctrl, s.tenant
	s.mu.RUnlock()
	if ctrl == nil {
		return ModePushdown, "", fmt.Errorf("core: ModeAuto requires EnableAdaptive")
	}
	if def.stats == nil {
		if err := s.AnalyzeTable(ctx, table, 2000); err != nil {
			return ModePushdown, "", err
		}
		s.mu.RLock()
		def = s.tables[strings.ToLower(table)]
		s.mu.RUnlock()
	}
	// Dataset size from the container listing.
	objects, err := s.client.ListObjects(ctx, s.Account(), def.container, def.prefix)
	if err != nil {
		return ModePushdown, "", err
	}
	var bytes float64
	for _, o := range objects {
		bytes += float64(o.Size)
	}
	if bytes == 0 {
		return ModeBaseline, "empty dataset", nil
	}
	est, err := def.stats.EstimateFor(bytes, p.Required, p.Pushed)
	if err != nil {
		return ModePushdown, "", err
	}
	d := ctrl.Decide(tenant, est)
	if d.Pushdown {
		return ModePushdown, d.Reason, nil
	}
	return ModeBaseline, d.Reason, nil
}

// Explain returns the analyzed plan description without executing.
func (s *Scoop) Explain(sql string) (string, error) {
	sel, err := parser.Parse(sql)
	if err != nil {
		return "", err
	}
	s.mu.RLock()
	def, ok := s.tables[strings.ToLower(sel.Table)]
	s.mu.RUnlock()
	if !ok {
		return "", fmt.Errorf("core: unknown table %q", sel.Table)
	}
	schema, err := types.ParseSchema(def.decl)
	if err != nil {
		return "", err
	}
	p, err := plan.Analyze(sel, schema, plan.Options{})
	if err != nil {
		return "", err
	}
	return p.Describe(), nil
}

// UploadMeterDataset generates a synthetic GridPocket dataset and uploads it
// as `objects` CSV objects under container (created if missing). It returns
// the total bytes stored — the dataset size experiments report selectivity
// against.
func (s *Scoop) UploadMeterDataset(ctx context.Context, container string, cfg meter.Config, objects int) (int64, error) {
	if objects < 1 {
		objects = 1
	}
	err := s.client.CreateContainer(ctx, s.Account(), container, nil)
	if err != nil && err != objectstore.ErrContainerExists {
		return 0, err
	}
	// Render the whole dataset once, then slice it into objects on record
	// boundaries.
	var sb strings.Builder
	if _, err := cfg.WriteCSV(&sb); err != nil {
		return 0, err
	}
	data := sb.String()
	var total int64
	chunk := len(data) / objects
	startOff := 0
	for i := 0; i < objects; i++ {
		end := startOff + chunk
		if i == objects-1 {
			end = len(data)
		} else {
			// Advance to the next record boundary.
			for end < len(data) && data[end-1] != '\n' {
				end++
			}
		}
		if end > len(data) {
			end = len(data)
		}
		if startOff >= end {
			break
		}
		name := fmt.Sprintf("part-%04d.csv", i)
		info, err := s.client.PutObject(ctx, s.Account(), container, name, strings.NewReader(data[startOff:end]), nil)
		if err != nil {
			return total, err
		}
		total += info.Size
		startOff = end
	}
	return total, nil
}
