package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"scoop/internal/compute"
	"scoop/internal/csvio"
	"scoop/internal/datasource"
	"scoop/internal/pushdown"
	"scoop/internal/sql/types"
	"scoop/internal/storlet/aggfilter"
)

// AggregateQuery runs a GROUP-BY aggregation with *aggregation pushdown*
// (paper §IV: the store "can perform aggregations on individual object
// requests"): each split returns one partial record per group instead of
// every matching row, and the driver merges the algebraic partials exactly.
//
// Compared to Query (filter pushdown), this moves O(groups) instead of
// O(matching rows) — the ablation the repository's benchmarks measure.
func (s *Scoop) AggregateQuery(table string, groupCols []string, specs []aggfilter.Spec, preds []pushdown.Predicate, opts QueryOptions) (*Result, error) {
	start := time.Now()
	s.mu.RLock()
	def, ok := s.tables[tableKey(table)]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown table %q", table)
	}
	if def.format == "json" {
		return nil, fmt.Errorf("core: aggregation pushdown currently supports CSV tables only")
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: aggregate query needs at least one spec")
	}
	schema, err := types.ParseSchema(def.decl)
	if err != nil {
		return nil, err
	}
	for _, c := range groupCols {
		if schema.Index(c) < 0 {
			return nil, fmt.Errorf("core: unknown group column %q", c)
		}
	}

	task := &pushdown.Task{
		Filter:     aggfilter.FilterName,
		Schema:     def.decl,
		Predicates: preds,
		Options: map[string]string{
			aggfilter.OptAggs: aggfilter.FormatSpecs(specs),
		},
	}
	if len(groupCols) > 0 {
		task.Options[aggfilter.OptGroup] = joinComma(groupCols)
	}
	if def.opts.Header {
		task.Options[aggfilter.OptHeader] = "true"
	}

	rel, err := datasource.NewCSV(s.conn, def.container, def.prefix, def.decl, def.opts)
	if err != nil {
		return nil, err
	}
	splits, err := rel.Splits(opts.ctx())
	if err != nil {
		return nil, err
	}
	before := s.conn.Stats()
	tasks := make([]compute.Task, len(splits))
	for i, split := range splits {
		split := split
		tasks[i] = func(ctx context.Context) (any, error) {
			rc, err := s.conn.Open(ctx, split, []*pushdown.Task{task})
			if err != nil {
				return nil, err
			}
			defer rc.Close()
			return readPartials(rc)
		}
	}
	results, cstats, err := s.driver.Run(opts.Context, tasks)
	if err != nil {
		return nil, err
	}
	var partials [][]string
	for _, v := range results {
		partials = append(partials, v.([][]string)...)
	}
	merged, err := aggfilter.Merge(partials, len(groupCols), specs)
	if err != nil {
		return nil, err
	}

	outSchema, rows := aggResult(schema, groupCols, specs, merged)
	after := s.conn.Stats()
	return &Result{
		Schema: outSchema,
		Rows:   rows,
		Metrics: Metrics{
			Mode:          ModePushdown,
			WallTime:      time.Since(start),
			BytesIngested: after.BytesIngested - before.BytesIngested,
			Requests:      after.Requests - before.Requests,
			Splits:        len(splits),
			RowsScanned:   int64(len(partials)),
			RowsReturned:  len(rows),
			Compute:       cstats,
		},
	}, nil
}

func tableKey(name string) string {
	// Table keys are stored lowercased.
	b := []byte(name)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c - 'A' + 'a'
		}
	}
	return string(b)
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out
}

// readPartials parses the filter's CSV partial records.
func readPartials(r io.Reader) ([][]string, error) {
	rr := csvio.NewRangeReader(r, 0, int64(1)<<62)
	var out [][]string
	var fields [][]byte
	for {
		rec, err := rr.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		fields = csvio.Fields(rec, csvio.DefaultDelimiter, fields)
		row := make([]string, len(fields))
		for i, f := range fields {
			row[i] = string(f)
		}
		out = append(out, row)
	}
}

// aggResult converts merged records into typed result rows.
func aggResult(schema *types.Schema, groupCols []string, specs []aggfilter.Spec, merged [][]string) (*types.Schema, []types.Row) {
	cols := make([]types.Column, 0, len(groupCols)+len(specs))
	for _, g := range groupCols {
		t := types.String
		if i := schema.Index(g); i >= 0 {
			t = schema.Columns[i].Type
		}
		cols = append(cols, types.Column{Name: g, Type: t})
	}
	for _, sp := range specs {
		name := string(sp.Func) + "_" + sp.Column
		if sp.Column == "*" {
			name = string(sp.Func)
		}
		t := types.Float
		if sp.Func == aggfilter.Count {
			t = types.Int
		} else if sp.Func == aggfilter.Min || sp.Func == aggfilter.Max {
			if i := schema.Index(sp.Column); i >= 0 {
				t = schema.Columns[i].Type
			}
		}
		cols = append(cols, types.Column{Name: name, Type: t})
	}
	outSchema := types.NewSchema(cols...)
	rows := make([]types.Row, len(merged))
	for i, rec := range merged {
		row := make(types.Row, len(cols))
		for j := range cols {
			raw := ""
			if j < len(rec) {
				raw = rec[j]
			}
			row[j] = types.Coerce(raw, cols[j].Type)
		}
		rows[i] = row
	}
	return outSchema, rows
}
