package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"scoop/internal/adaptive"
	"scoop/internal/datasource"
	"scoop/internal/meter"
	"scoop/internal/pushdown"
	"scoop/internal/sql/types"
	"scoop/internal/storlet/aggfilter"
)

// newScoop builds an in-process instance with a small uploaded dataset and
// the meters table registered.
func newScoop(t *testing.T) (*Scoop, int64) {
	t.Helper()
	s, err := New(Config{ChunkSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	cfg := meter.DefaultConfig()
	cfg.Meters = 20
	cfg.Days = 3
	cfg.Interval = time.Hour
	size, err := s.UploadMeterDataset(context.Background(), "meters", cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterTable("largeMeter", "meters", "", meter.SchemaDecl, datasource.CSVOptions{}); err != nil {
		t.Fatal(err)
	}
	return s, size
}

func TestQueryBothModesAgree(t *testing.T) {
	s, _ := newScoop(t)
	queries := []string{
		"SELECT count(*) AS n FROM largeMeter",
		"SELECT vid, sum(index) AS total FROM largeMeter WHERE date LIKE '2015-01-01%' GROUP BY vid ORDER BY vid LIMIT 5",
		"SELECT city, count(*) AS n FROM largeMeter WHERE state LIKE 'U%' GROUP BY city ORDER BY city",
		"SELECT DISTINCT state FROM largeMeter ORDER BY state",
		"SELECT vid FROM largeMeter WHERE city LIKE 'Rotterdam' AND date LIKE '2015-01-01 00%' ORDER BY vid",
	}
	for _, q := range queries {
		push, err := s.Query(q, QueryOptions{Mode: ModePushdown})
		if err != nil {
			t.Fatalf("%s (pushdown): %v", q, err)
		}
		base, err := s.Query(q, QueryOptions{Mode: ModeBaseline})
		if err != nil {
			t.Fatalf("%s (baseline): %v", q, err)
		}
		if len(push.Rows) != len(base.Rows) {
			t.Fatalf("%s: pushdown %d rows, baseline %d rows", q, len(push.Rows), len(base.Rows))
		}
		for i := range push.Rows {
			for j := range push.Rows[i] {
				a, b := push.Rows[i][j], base.Rows[i][j]
				if a.IsNull() != b.IsNull() || (!a.IsNull() && a.Compare(b) != 0) {
					t.Fatalf("%s: row %d col %d: %v vs %v", q, i, j, a, b)
				}
			}
		}
	}
}

func TestPushdownReducesIngestion(t *testing.T) {
	s, size := newScoop(t)
	q := "SELECT vid FROM largeMeter WHERE state LIKE 'FRA' AND date LIKE '2015-01-01%'"
	push, err := s.Query(q, QueryOptions{Mode: ModePushdown})
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.Query(q, QueryOptions{Mode: ModeBaseline})
	if err != nil {
		t.Fatal(err)
	}
	// Baseline ingests the whole dataset, plus a few hundred bytes per
	// interior split boundary to finish straddling records.
	slack := int64(base.Metrics.Splits) * 1024
	if base.Metrics.BytesIngested < size || base.Metrics.BytesIngested > size+slack {
		t.Errorf("baseline ingested %d, dataset %d (+%d slack)", base.Metrics.BytesIngested, size, slack)
	}
	if push.Metrics.BytesIngested >= base.Metrics.BytesIngested/2 {
		t.Errorf("pushdown ingested %d vs baseline %d", push.Metrics.BytesIngested, base.Metrics.BytesIngested)
	}
	if sel := push.Metrics.Selectivity(size); sel < 0.5 {
		t.Errorf("selectivity = %v", sel)
	}
	if push.Metrics.Mode != ModePushdown || base.Metrics.Mode != ModeBaseline {
		t.Error("modes not recorded")
	}
	if push.Metrics.Splits < 2 {
		t.Errorf("splits = %d, want parallelism", push.Metrics.Splits)
	}
}

func TestGridPocketQueriesEndToEnd(t *testing.T) {
	s, _ := newScoop(t)
	// ShowGraphHCHP shape (Table I) on the small dataset.
	q := `SELECT SUBSTRING(date, 0, 10) as sDate, vid, min(sumHC) as minHC, max(sumHC) as maxHC,
		min(sumHP) as minHP, max(sumHP) as maxHP FROM largeMeter
		WHERE state LIKE 'FRA' AND date LIKE '2015-01-%'
		GROUP BY SUBSTRING(date, 0, 10), vid ORDER BY SUBSTRING(date, 0, 10), vid`
	res, err := s.Query(q, QueryOptions{Mode: ModePushdown})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	if res.Schema.Len() != 6 {
		t.Errorf("schema = %v", res.Schema)
	}
	// minHC <= maxHC in every row.
	for _, r := range res.Rows {
		if r[2].Compare(r[3]) > 0 {
			t.Errorf("minHC > maxHC in %v", r)
		}
	}
	// Rows are sorted by (sDate, vid).
	for i := 1; i < len(res.Rows); i++ {
		a, b := res.Rows[i-1], res.Rows[i]
		if a[0].Compare(b[0]) > 0 || (a[0].Compare(b[0]) == 0 && a[1].Compare(b[1]) > 0) {
			t.Errorf("rows out of order at %d: %v, %v", i, a, b)
		}
	}
}

func TestQueryErrors(t *testing.T) {
	s, _ := newScoop(t)
	if _, err := s.Query("SELECT broken FROM", QueryOptions{}); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, err := s.Query("SELECT x FROM ghostTable", QueryOptions{}); err == nil {
		t.Error("unknown table not surfaced")
	}
	if _, err := s.Query("SELECT ghostCol FROM largeMeter", QueryOptions{}); err == nil {
		t.Error("unknown column not surfaced")
	}
}

func TestQueryCancellation(t *testing.T) {
	s, _ := newScoop(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Query("SELECT count(*) FROM largeMeter", QueryOptions{Context: ctx}); err == nil {
		t.Error("cancelled context should fail the query")
	}
}

func TestRegisterTableValidation(t *testing.T) {
	s, _ := newScoop(t)
	if err := s.RegisterTable("", "c", "", meter.SchemaDecl, datasource.CSVOptions{}); err == nil {
		t.Error("empty name accepted")
	}
	if err := s.RegisterTable("t2", "c", "", "bad schema", datasource.CSVOptions{}); err == nil {
		t.Error("bad schema accepted")
	}
	if err := s.RegisterTable("largemeter", "c", "", meter.SchemaDecl, datasource.CSVOptions{}); err == nil {
		t.Error("duplicate (case-insensitive) accepted")
	}
}

func TestExplain(t *testing.T) {
	s, _ := newScoop(t)
	out, err := s.Explain("SELECT vid FROM largeMeter WHERE state LIKE 'FRA'")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Scan(largeMeter)", "pushed: state like"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Explain missing %q:\n%s", frag, out)
		}
	}
	if _, err := s.Explain("SELECT x FROM nope"); err == nil {
		t.Error("unknown table in explain")
	}
	if _, err := s.Explain("garbage"); err == nil {
		t.Error("parse error in explain")
	}
}

func TestUploadMeterDatasetSplitsOnRecordBoundaries(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := meter.DefaultConfig()
	cfg.Meters = 7
	cfg.Days = 1
	cfg.Interval = time.Hour
	size, err := s.UploadMeterDataset(context.Background(), "m", cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	list, err := s.Client().ListObjects(context.Background(), s.Account(), "m", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 4 {
		t.Fatalf("objects = %v", list)
	}
	var total int64
	for _, o := range list {
		total += o.Size
	}
	if total != size {
		t.Errorf("sizes: total %d, reported %d", total, size)
	}
	// Row count must be exact across the object boundaries.
	if err := s.RegisterTable("m", "m", "part-", meter.SchemaDecl, datasource.CSVOptions{}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query("SELECT count(*) AS n FROM m", QueryOptions{Mode: ModePushdown})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != cfg.Rows() {
		t.Errorf("count = %v, want %d", res.Rows[0][0], cfg.Rows())
	}
	// Re-upload into an existing container works (fresh container state is
	// not required), under a distinct object prefix.
	if _, err := s.UploadMeterDataset(context.Background(), "m", cfg, 1); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsSelectivityClamp(t *testing.T) {
	m := Metrics{BytesIngested: 200}
	if m.Selectivity(0) != 0 {
		t.Error("zero dataset")
	}
	if m.Selectivity(100) != 0 {
		t.Error("over-ingestion should clamp to 0")
	}
	m.BytesIngested = 25
	if got := m.Selectivity(100); got != 0.75 {
		t.Errorf("selectivity = %v", got)
	}
}

func TestModeString(t *testing.T) {
	if ModePushdown.String() != "pushdown" || ModeBaseline.String() != "baseline" {
		t.Error("mode strings")
	}
}

// JSON tables run the full SQL path in both modes.
func TestJSONTableSQL(t *testing.T) {
	s, err := New(Config{ChunkSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Client().CreateContainer(context.Background(), s.Account(), "events", nil); err != nil {
		t.Fatal(err)
	}
	docs := `{"vid": "V1", "index": 10.5, "state": "NED"}
{"vid": "V2", "index": 5.0, "state": "FRA"}
{"vid": "V3", "index": 7.5, "state": "FRA"}
`
	if _, err := s.Client().PutObject(context.Background(), s.Account(), "events", "e.jsonl", strings.NewReader(docs), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterJSONTable("events", "events", "", "vid string, index double, state string", datasource.JSONOptions{}); err != nil {
		t.Fatal(err)
	}
	q := "SELECT state, sum(index) AS s, count(*) AS n FROM events WHERE index > 4 GROUP BY state ORDER BY state"
	push, err := s.Query(q, QueryOptions{Mode: ModePushdown})
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.Query(q, QueryOptions{Mode: ModeBaseline})
	if err != nil {
		t.Fatal(err)
	}
	if len(push.Rows) != 2 || len(base.Rows) != 2 {
		t.Fatalf("rows: push %v base %v", push.Rows, base.Rows)
	}
	if push.Rows[0][0].S != "FRA" || push.Rows[0][1].F != 12.5 || push.Rows[0][2].I != 2 {
		t.Errorf("FRA row = %v", push.Rows[0])
	}
	for i := range push.Rows {
		for j := range push.Rows[i] {
			if push.Rows[i][j].Compare(base.Rows[i][j]) != 0 {
				t.Errorf("mode mismatch row %d col %d", i, j)
			}
		}
	}
	// Aggregation pushdown is CSV-only for now.
	if _, err := s.AggregateQuery("events", nil, []aggfilter.Spec{{Func: aggfilter.Count, Column: "*"}}, nil, QueryOptions{}); err == nil {
		t.Error("agg pushdown on JSON accepted")
	}
	// Duplicate registration rejected.
	if err := s.RegisterJSONTable("events", "events", "", "vid string", datasource.JSONOptions{}); err == nil {
		t.Error("duplicate json table accepted")
	}
	if err := s.RegisterJSONTable("", "events", "", "vid string", datasource.JSONOptions{}); err == nil {
		t.Error("empty name accepted")
	}
	if err := s.RegisterJSONTable("x", "events", "", "bad", datasource.JSONOptions{}); err == nil {
		t.Error("bad schema accepted")
	}
}

// AggregateQuery must agree with the SQL path and move far fewer bytes.
func TestAggregateQueryEquivalence(t *testing.T) {
	s, _ := newScoop(t)
	sqlRes, err := s.Query(
		"SELECT vid, sum(index) AS s, count(*) AS n FROM largeMeter WHERE state LIKE 'FRA' GROUP BY vid ORDER BY vid",
		QueryOptions{Mode: ModePushdown})
	if err != nil {
		t.Fatal(err)
	}
	aggRes, err := s.AggregateQuery("largeMeter",
		[]string{"vid"},
		[]aggfilter.Spec{{Func: aggfilter.Sum, Column: "index"}, {Func: aggfilter.Count, Column: "*"}},
		[]pushdown.Predicate{{Column: "state", Op: pushdown.OpLike, Value: "FRA"}},
		QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(aggRes.Rows) != len(sqlRes.Rows) {
		t.Fatalf("groups: agg %d vs sql %d", len(aggRes.Rows), len(sqlRes.Rows))
	}
	for i := range sqlRes.Rows {
		if aggRes.Rows[i][0].S != sqlRes.Rows[i][0].S {
			t.Fatalf("row %d key: %v vs %v", i, aggRes.Rows[i][0], sqlRes.Rows[i][0])
		}
		if d := aggRes.Rows[i][1].F - sqlRes.Rows[i][1].F; d > 1e-6 || d < -1e-6 {
			t.Fatalf("row %d sum: %v vs %v", i, aggRes.Rows[i][1], sqlRes.Rows[i][1])
		}
		if aggRes.Rows[i][2].I != sqlRes.Rows[i][2].I {
			t.Fatalf("row %d count: %v vs %v", i, aggRes.Rows[i][2], sqlRes.Rows[i][2])
		}
	}
	// Aggregation pushdown moves less than filter pushdown.
	if aggRes.Metrics.BytesIngested >= sqlRes.Metrics.BytesIngested {
		t.Errorf("agg pushdown moved %d bytes vs filter pushdown %d",
			aggRes.Metrics.BytesIngested, sqlRes.Metrics.BytesIngested)
	}
	if aggRes.Schema.Names()[1] != "sum_index" || aggRes.Schema.Names()[2] != "count" {
		t.Errorf("schema = %v", aggRes.Schema.Names())
	}
}

func TestAggregateQueryGlobal(t *testing.T) {
	s, _ := newScoop(t)
	res, err := s.AggregateQuery("largeMeter", nil,
		[]aggfilter.Spec{{Func: aggfilter.Count, Column: "*"}, {Func: aggfilter.Max, Column: "index"}},
		nil, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	sqlRes, err := s.Query("SELECT count(*) AS n, max(index) AS m FROM largeMeter", QueryOptions{Mode: ModePushdown})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != sqlRes.Rows[0][0].I {
		t.Errorf("count: %v vs %v", res.Rows[0][0], sqlRes.Rows[0][0])
	}
	if d := res.Rows[0][1].F - sqlRes.Rows[0][1].F; d > 1e-6 || d < -1e-6 {
		t.Errorf("max: %v vs %v", res.Rows[0][1], sqlRes.Rows[0][1])
	}
}

func TestAggregateQueryErrors(t *testing.T) {
	s, _ := newScoop(t)
	if _, err := s.AggregateQuery("ghost", nil, []aggfilter.Spec{{Func: aggfilter.Count, Column: "*"}}, nil, QueryOptions{}); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := s.AggregateQuery("largeMeter", nil, nil, nil, QueryOptions{}); err == nil {
		t.Error("empty specs accepted")
	}
	if _, err := s.AggregateQuery("largeMeter", []string{"ghost"}, []aggfilter.Spec{{Func: aggfilter.Count, Column: "*"}}, nil, QueryOptions{}); err == nil {
		t.Error("unknown group column accepted")
	}
}

func TestModeAuto(t *testing.T) {
	s, _ := newScoop(t)
	// ModeAuto without a controller errors.
	if _, err := s.Query("SELECT count(*) FROM largeMeter", QueryOptions{Mode: ModeAuto}); err == nil {
		t.Error("ModeAuto without EnableAdaptive accepted")
	}
	ctrl, err := adaptive.NewController(adaptive.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.EnableAdaptive(ctrl, "analyst")

	// Selective query: the controller predicts a worthwhile speedup and
	// chooses pushdown.
	res, err := s.Query("SELECT vid FROM largeMeter WHERE state LIKE 'FRA'", QueryOptions{Mode: ModeAuto})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Decision == "" {
		t.Error("ModeAuto left no decision trace")
	}
	if res.Metrics.Mode != ModePushdown {
		t.Errorf("selective query refused pushdown: %v (%s)", res.Metrics.Mode, res.Metrics.Decision)
	}
	// Under critical storage load, even a selective query falls back.
	ctrl.SetLoadProbe(func() float64 { return 0.95 })
	res, err = s.Query("SELECT vid FROM largeMeter WHERE state LIKE 'FRA'", QueryOptions{Mode: ModeAuto})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Mode != ModeBaseline {
		t.Errorf("critical load ignored: %v (%s)", res.Metrics.Mode, res.Metrics.Decision)
	}
	ctrl.SetLoadProbe(nil)
	// Bronze tenants never push down regardless.
	ctrl.SetTenantClass("analyst", adaptive.Bronze)
	res, err = s.Query("SELECT vid FROM largeMeter WHERE state LIKE 'FRA'", QueryOptions{Mode: ModeAuto})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Mode != ModeBaseline || !strings.Contains(res.Metrics.Decision, "bronze") {
		t.Errorf("bronze decision = %v (%s)", res.Metrics.Mode, res.Metrics.Decision)
	}
	if ModeAuto.String() != "auto" {
		t.Error("mode string")
	}
}

func TestAnalyzeTable(t *testing.T) {
	s, _ := newScoop(t)
	if err := s.AnalyzeTable(context.Background(), "largeMeter", 500); err != nil {
		t.Fatal(err)
	}
	if err := s.AnalyzeTable(context.Background(), "ghost", 500); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestExternalClientConfig(t *testing.T) {
	// Build one Scoop, reuse its client for a second instance (external
	// client path: no cluster owned).
	s1, _ := newScoop(t)
	s2, err := New(Config{Client: s1.Client(), Account: s1.Account(), ChunkSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Cluster() != nil {
		t.Error("external-client instance should not own a cluster")
	}
	if err := s2.RegisterTable("m", "meters", "", meter.SchemaDecl, datasource.CSVOptions{}); err != nil {
		t.Fatal(err)
	}
	res, err := s2.Query("SELECT count(*) AS n FROM m", QueryOptions{Mode: ModePushdown})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I == 0 {
		t.Error("no rows via external client")
	}
	var _ types.Row // keep types import for clarity of row assertions above
}
