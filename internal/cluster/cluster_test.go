package cluster

import (
	"math"
	"testing"
)

const (
	gb = 1e9
	tb = 1e12
)

func wl(bytes, sel float64, st SelectivityType) Workload {
	return Workload{DatasetBytes: bytes, Selectivity: sel, Type: st}
}

// Paper: S_Q ≈ 1 at zero selectivity, with a small penalty (worst-case mean
// -3.4%).
func TestZeroSelectivityNearParity(t *testing.T) {
	tb_ := OSIC()
	for _, d := range []float64{50 * gb, 500 * gb, 3 * tb} {
		s := tb_.Speedup(wl(d, 0, Mixed))
		if s < 0.93 || s > 1.05 {
			t.Errorf("S_Q(%v bytes, sel 0) = %v, want ~0.97", d, s)
		}
	}
}

// Paper Fig. 5(b): selectivity 0.8 gives S_Q ≈ 5; 0.9 gives S_Q > 10 —
// superlinear growth with selectivity.
func TestSuperlinearSpeedup(t *testing.T) {
	tb_ := OSIC()
	s80 := tb_.Speedup(wl(3*tb, 0.80, Mixed))
	s90 := tb_.Speedup(wl(3*tb, 0.90, Mixed))
	if s80 < 3.5 || s80 > 6.5 {
		t.Errorf("S_Q(0.8) = %v, want ≈5", s80)
	}
	if s90 < 8 {
		t.Errorf("S_Q(0.9) = %v, want >10-ish", s90)
	}
	if s90 < 2*s80*0.9 {
		t.Errorf("not superlinear: S(0.9)=%v vs S(0.8)=%v", s90, s80)
	}
}

// Paper Fig. 6: very high selectivity reaches speedups up to ~31x.
func TestHighSelectivityCap(t *testing.T) {
	tb_ := OSIC()
	s := tb_.Speedup(wl(3*tb, 0.9999, Row))
	if s < 20 || s > 45 {
		t.Errorf("S_Q(3TB, 0.9999, row) = %v, want ≈31", s)
	}
	// Monotone in selectivity.
	prev := 0.0
	for _, sel := range []float64{0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 0.99, 0.9999} {
		cur := tb_.Speedup(wl(3*tb, sel, Row))
		if cur < prev {
			t.Errorf("speedup not monotone at sel %v: %v < %v", sel, cur, prev)
		}
		prev = cur
	}
}

// Paper: larger datasets see larger speedups; the 500GB→3TB gain is smaller
// than the 50GB→500GB gain (the small dataset under-utilizes the testbed).
func TestDatasetSizeEffect(t *testing.T) {
	tb_ := OSIC()
	s50 := tb_.Speedup(wl(50*gb, 0.9, Column))
	s500 := tb_.Speedup(wl(500*gb, 0.9, Column))
	s3t := tb_.Speedup(wl(3*tb, 0.9, Column))
	if !(s50 < s500 && s500 <= s3t) {
		t.Errorf("size ordering: 50GB=%v 500GB=%v 3TB=%v", s50, s500, s3t)
	}
	if (s500 - s50) < (s3t - s500) {
		t.Errorf("gain should diminish: +%v then +%v", s500-s50, s3t-s500)
	}
	// Ballpark of the paper's Fig. 5/6 values (6.72, 10.23, 12.51).
	if s50 < 4 || s50 > 10 {
		t.Errorf("S_Q(50GB, 0.9, col) = %v, paper ≈6.7", s50)
	}
	if s500 < 7 || s500 > 14 {
		t.Errorf("S_Q(500GB, 0.9, col) = %v, paper ≈10.2", s500)
	}
	if s3t < 9 || s3t > 17 {
		t.Errorf("S_Q(3TB, 0.9, col) = %v, paper ≈12.5", s3t)
	}
}

// Paper: row selectivity outperforms column/mixed at high selectivity.
func TestRowBeatsColumn(t *testing.T) {
	tb_ := OSIC()
	for _, sel := range []float64{0.9, 0.95, 0.99} {
		r := tb_.Speedup(wl(3*tb, sel, Row))
		c := tb_.Speedup(wl(3*tb, sel, Column))
		m := tb_.Speedup(wl(3*tb, sel, Mixed))
		if !(r >= m && m >= c) {
			t.Errorf("sel %v: row=%v mixed=%v col=%v, want row >= mixed >= col", sel, r, m, c)
		}
	}
}

// Paper: the bottleneck shifts from the network to storage CPU at ≈60%.
func TestBottleneckShift(t *testing.T) {
	tb_ := OSIC()
	low := tb_.Bottleneck(wl(3*tb, 0.2, Mixed))
	high := tb_.Bottleneck(wl(3*tb, 0.99, Mixed))
	if low != "network" {
		t.Errorf("low-selectivity bottleneck = %s, want network", low)
	}
	if high != "storage-cpu" {
		t.Errorf("high-selectivity bottleneck = %s, want storage-cpu", high)
	}
}

// Paper Fig. 8: Parquet wins at zero selectivity (compression); Scoop wins
// from ≈60% column selectivity on 50GB, by ≈2.16x at 90%; the crossover
// moves left for larger datasets.
func TestParquetComparison(t *testing.T) {
	tb_ := OSIC()
	// Parquet beats plain Swift at sel 0.
	p0 := tb_.ParquetSpeedup(wl(50*gb, 0, Column))
	if p0 < 1.2 {
		t.Errorf("Parquet speedup at sel 0 = %v, want > 1.2", p0)
	}
	// Scoop below Parquet at low selectivity, above at high.
	lowS := tb_.Speedup(wl(50*gb, 0.2, Column))
	lowP := tb_.ParquetSpeedup(wl(50*gb, 0.2, Column))
	if lowS >= lowP {
		t.Errorf("at 20%%: scoop %v >= parquet %v", lowS, lowP)
	}
	hiS := tb_.Speedup(wl(50*gb, 0.9, Column))
	hiP := tb_.ParquetSpeedup(wl(50*gb, 0.9, Column))
	ratio := tb_.ParquetTime(wl(50*gb, 0.9, Column)) / tb_.PushdownTime(wl(50*gb, 0.9, Column))
	if hiS <= hiP {
		t.Errorf("at 90%%: scoop %v <= parquet %v", hiS, hiP)
	}
	if ratio < 1.5 || ratio > 3.2 {
		t.Errorf("scoop-vs-parquet at 90%% = %vx, paper ≈2.16x", ratio)
	}
	// Crossover near 60% for 50GB.
	cross50 := crossover(tb_, 50*gb)
	if cross50 < 0.4 || cross50 > 0.75 {
		t.Errorf("50GB crossover at %v, paper ≈0.6", cross50)
	}
	// Crossover moves to lower selectivity for larger datasets.
	cross3t := crossover(tb_, 3*tb)
	if cross3t > cross50 {
		t.Errorf("crossover should shrink with dataset size: 50GB=%v 3TB=%v", cross50, cross3t)
	}
}

// crossover finds the column selectivity where pushdown starts beating
// Parquet.
func crossover(tb_ Testbed, bytes float64) float64 {
	for sel := 0.0; sel <= 1.0; sel += 0.01 {
		w := wl(bytes, sel, Column)
		if tb_.PushdownTime(w) <= tb_.ParquetTime(w) {
			return sel
		}
	}
	return 1.0
}

// Paper Fig. 1: baseline time grows linearly with dataset size.
func TestBaselineLinearInSize(t *testing.T) {
	tb_ := OSIC()
	t1 := tb_.BaselineTime(wl(500*gb, 0.5, Mixed))
	t2 := tb_.BaselineTime(wl(1000*gb, 0.5, Mixed))
	t4 := tb_.BaselineTime(wl(2000*gb, 0.5, Mixed))
	// Slope constant within 10% once overheads amortize.
	slope1 := (t2 - t1) / 500
	slope2 := (t4 - t2) / 1000
	if math.Abs(slope1-slope2)/slope1 > 0.1 {
		t.Errorf("baseline not linear: slopes %v vs %v", slope1, slope2)
	}
}

// Paper §VI-A: absolute improvements at 60% mixed selectivity: ≈41s for
// 50GB and ≈2632s for 3TB.
func TestAbsoluteImprovements(t *testing.T) {
	tb_ := OSIC()
	d50 := tb_.BaselineTime(wl(50*gb, 0.6, Mixed)) - tb_.PushdownTime(wl(50*gb, 0.6, Mixed))
	d3t := tb_.BaselineTime(wl(3*tb, 0.6, Mixed)) - tb_.PushdownTime(wl(3*tb, 0.6, Mixed))
	if d50 < 15 || d50 > 80 {
		t.Errorf("50GB absolute gain = %vs, paper ≈41s", d50)
	}
	if d3t < 1300 || d3t > 4000 {
		t.Errorf("3TB absolute gain = %vs, paper ≈2632s", d3t)
	}
}

// Paper Fig. 9/10 shapes.
func TestResourceUsage(t *testing.T) {
	tb_ := OSIC()
	w := wl(3*tb, 0.99, Mixed) // ShowGraphHCHP-like
	base := tb_.UsageFor(w, Baseline)
	push := tb_.UsageFor(w, Pushdown)

	// (a) compute CPU: pushdown less than half the average, and a huge
	// CPU-seconds reduction (paper: 97.8%).
	if push.ComputeCPUPct >= base.ComputeCPUPct/2 {
		t.Errorf("compute CPU: push %v vs base %v", push.ComputeCPUPct, base.ComputeCPUPct)
	}
	reduction := 1 - push.ComputeCPUSeconds/base.ComputeCPUSeconds
	if reduction < 0.9 {
		t.Errorf("CPU-seconds reduction = %v, paper 0.978", reduction)
	}
	// (b) memory: pushdown peak lower, held 12-15x shorter.
	if push.ComputeMemPct >= base.ComputeMemPct {
		t.Error("pushdown memory peak should be lower")
	}
	holdRatio := base.MemHeldSeconds / push.MemHeldSeconds
	if holdRatio < 8 {
		t.Errorf("memory hold ratio = %v, paper 12-15x", holdRatio)
	}
	// (c) network: baseline saturates the LB link; pushdown a small share.
	if base.LBUtilizationPct < 85 {
		t.Errorf("baseline LB utilization = %v%%, want near saturation", base.LBUtilizationPct)
	}
	if push.LBUtilizationPct > 30 {
		t.Errorf("pushdown LB utilization = %v%%, want small", push.LBUtilizationPct)
	}
	// Fig. 10: storage CPU rises from ~1.25% to ~20-25%.
	if base.StorageCPUPct > 2 {
		t.Errorf("baseline storage CPU = %v%%", base.StorageCPUPct)
	}
	if push.StorageCPUPct < 15 || push.StorageCPUPct > 30 {
		t.Errorf("pushdown storage CPU = %v%%, paper ≈23.5%%", push.StorageCPUPct)
	}
}

func TestSeries(t *testing.T) {
	tb_ := OSIC()
	w := wl(3*tb, 0.99, Mixed)
	s := tb_.Series(w, Baseline, 50)
	if len(s) != 50 {
		t.Fatalf("len = %d", len(s))
	}
	if s[0].T != 0 || s[49].T <= 0 {
		t.Errorf("time axis: %v .. %v", s[0].T, s[49].T)
	}
	// Activity then tail.
	if s[10].LBBytesPerSec == 0 {
		t.Error("no activity mid-run")
	}
	if s[49].LBBytesPerSec != 0 {
		t.Error("network should be quiet in the tail")
	}
	if got := tb_.Series(w, Pushdown, 1); len(got) != 2 {
		t.Errorf("minimum samples: %d", len(got))
	}
}

func TestWorkloadValidate(t *testing.T) {
	if err := (Workload{}).Validate(); err == nil {
		t.Error("zero dataset accepted")
	}
	if err := wl(1, -0.1, Row).Validate(); err == nil {
		t.Error("negative selectivity accepted")
	}
	if err := wl(1, 1.1, Row).Validate(); err == nil {
		t.Error("selectivity > 1 accepted")
	}
	if err := wl(gb, 0.5, Row).Validate(); err != nil {
		t.Error(err)
	}
}

func TestSelectivityTypeString(t *testing.T) {
	if Row.String() != "row" || Column.String() != "column" || Mixed.String() != "mixed" {
		t.Error("type names")
	}
}

// The GridPocket query table (Fig. 7): with >90% data selectivity on the
// small dataset, speedups land in the paper's 4.1–18.7 range.
func TestGridPocketRange(t *testing.T) {
	tb_ := OSIC()
	lo := tb_.Speedup(wl(50*gb, 0.92, Mixed))
	hi := tb_.Speedup(wl(50*gb, 0.9999, Mixed))
	if lo < 3 || lo > 12 {
		t.Errorf("S_Q(50GB, 92%%) = %v, paper ≈4-7", lo)
	}
	if hi < 10 || hi > 25 {
		t.Errorf("S_Q(50GB, 99.99%%) = %v, paper ≈18.7", hi)
	}
	if hi <= lo {
		t.Error("ordering")
	}
}
