// Package cluster models the paper's 63-machine OSIC testbed analytically,
// so the evaluation's cluster-scale figures can be regenerated on one
// machine. The model captures exactly the resources the paper identifies as
// decisive (§VI-A):
//
//   - the 10 Gbps load-balancer link between the clusters, which saturates
//     during ingest-then-compute and makes baseline time linear in dataset
//     size (Fig. 1, Fig. 9(c));
//   - the storage nodes' CPU, which becomes the bottleneck under pushdown
//     once data selectivity exceeds ≈60% (Fig. 5, Fig. 6, Fig. 10); and
//   - the compute cluster's parse/filter throughput and job overheads,
//     which cap speedups on small datasets (Fig. 7).
//
// Stages are pipelined, so a query's time is the maximum of its stage times
// plus fixed overhead. All rates are bytes/second; all times seconds.
package cluster

import (
	"fmt"
	"math"
)

// SelectivityType distinguishes how bytes are discarded (paper §VI: row,
// column and mixed data selectivity behave differently at the filter).
type SelectivityType int

// Selectivity types.
const (
	Row SelectivityType = iota
	Column
	Mixed
)

// String names the type.
func (s SelectivityType) String() string {
	switch s {
	case Row:
		return "row"
	case Column:
		return "column"
	default:
		return "mixed"
	}
}

// Testbed holds the hardware and software rates of the simulated cluster.
type Testbed struct {
	// LBBandwidth is the load balancer's inter-cluster link (bytes/s).
	LBBandwidth float64
	// StorageNodes is the object-server count.
	StorageNodes int
	// DiskBandwidthPerNode is sequential read throughput per node.
	DiskBandwidthPerNode float64
	// RowFilterRatePerNode is how fast one node's storlet scans data when
	// selection predicates discard whole rows (cheap: one compare, no
	// output assembly).
	RowFilterRatePerNode float64
	// ColFilterRatePerNode is the scan rate when columns must be selected
	// and re-concatenated into the output stream (the paper observes this
	// is costlier than row discard).
	ColFilterRatePerNode float64
	// Workers is the Spark executor count.
	Workers int
	// CSVComputeRate is the compute cluster's total CSV ingest+parse+filter
	// throughput (Spark 1.6's CSV path).
	CSVComputeRate float64
	// ResidualComputeRate is the throughput of post-filter processing
	// (aggregation, ordering) over the kept bytes.
	ResidualComputeRate float64
	// ParquetDecodeRate is the compute cluster's throughput for
	// decompressing and decoding the *kept* Parquet bytes (bytes/s, before
	// large-job degradation — see ParquetPressureKnee).
	ParquetDecodeRate float64
	// ParquetRowAssemblyRate charges record assembly, footer handling and
	// per-task startup against the FULL dataset size: those costs depend on
	// row and task counts, not on how many columns are projected.
	ParquetRowAssemblyRate float64
	// ParquetPressureKnee is the dataset size at which compute-side memory
	// pressure (GC, spilling) starts degrading the decode rate — Spark-era
	// columnar jobs slow down superlinearly on very large inputs, which is
	// why the paper finds the Scoop/Parquet crossover at lower selectivity
	// for larger datasets.
	ParquetPressureKnee float64
	// ParquetJobOverhead is the fixed job cost of the Parquet path (footer
	// scans and heavier task setup make it larger than the CSV baseline's).
	ParquetJobOverhead float64
	// ParquetCompression is the columnar compression ratio.
	ParquetCompression float64
	// BaselineJobOverhead covers scheduling and task startup (seconds).
	BaselineJobOverhead float64
	// PushdownJobOverhead covers the same plus filter deployment checks.
	PushdownJobOverhead float64
	// PushdownPenalty is the fractional per-byte slowdown the storlet
	// engine adds to the request path (the paper measures a worst-case mean
	// penalty of 3.4% at zero selectivity).
	PushdownPenalty float64
	// StorageFilterCPUFraction is the fraction of a storage node's cores
	// the filter saturates while it is the bottleneck (drives Fig. 10).
	StorageFilterCPUFraction float64
	// ComputeCPUPeak is the average compute-node CPU% while the compute
	// stage is the active bottleneck (Fig. 9(a) baseline plateau).
	ComputeCPUPeak float64
	// ComputeMemPeak is the compute-cluster peak memory% during ingest.
	ComputeMemPeak float64
	// StorageIdleCPU is storage-node CPU% when only serving reads.
	StorageIdleCPU float64
}

// OSIC returns the model calibrated to the paper's testbed: 6 proxies and
// 29 storage nodes behind a 10 Gbps HA-proxy link, 25 Spark 1.6 workers.
// Rates are chosen so the headline observations hold: S_Q ≈ 0.97 at zero
// selectivity, ≈5 at 80%, >10 at 90%, low 30s at 99.99% on 3TB, the
// network→storage-CPU bottleneck shift at ≈60%, and the Scoop/Parquet
// crossover at ≈60% column selectivity for 50GB.
func OSIC() Testbed {
	const GB = 1e9
	return Testbed{
		LBBandwidth:              1.15 * GB, // 10 Gbps minus protocol overhead
		StorageNodes:             29,
		DiskBandwidthPerNode:     1.8 * GB, // 12x 15K SAS in RAID10
		RowFilterRatePerNode:     1.25 * GB,
		ColFilterRatePerNode:     0.95 * GB,
		Workers:                  25,
		CSVComputeRate:           1.3 * GB, // Spark 1.6 CSV parse, 25 workers
		ResidualComputeRate:      2.4 * GB,
		ParquetDecodeRate:        2.8 * GB,
		ParquetRowAssemblyRate:   46 * GB,
		ParquetPressureKnee:      1.5e12,
		ParquetJobOverhead:       12.0,
		ParquetCompression:       3.0,
		BaselineJobOverhead:      5.0,
		PushdownJobOverhead:      2.5,
		PushdownPenalty:          0.034,
		StorageFilterCPUFraction: 0.25,
		ComputeCPUPeak:           3.1,
		ComputeMemPeak:           15.0,
		StorageIdleCPU:           1.25,
	}
}

// Workload describes one simulated query execution.
type Workload struct {
	// DatasetBytes is the total size read by the query (50GB–3TB in the
	// paper's sweeps).
	DatasetBytes float64
	// Selectivity is the fraction of dataset bytes the query discards
	// (query data selectivity, 0..1).
	Selectivity float64
	// Type says how the bytes are discarded.
	Type SelectivityType
}

// Validate sanity-checks the workload.
func (w Workload) Validate() error {
	if w.DatasetBytes <= 0 {
		return fmt.Errorf("cluster: dataset must be positive")
	}
	if w.Selectivity < 0 || w.Selectivity > 1 {
		return fmt.Errorf("cluster: selectivity %v out of [0,1]", w.Selectivity)
	}
	return nil
}

// keptBytes is the data that must reach the compute cluster.
func (w Workload) keptBytes() float64 {
	return w.DatasetBytes * (1 - w.Selectivity)
}

// filterRatePerNode interpolates the storlet scan rate by selectivity type.
func (t Testbed) filterRatePerNode(st SelectivityType) float64 {
	switch st {
	case Row:
		return t.RowFilterRatePerNode
	case Column:
		return t.ColFilterRatePerNode
	default:
		return (t.RowFilterRatePerNode + t.ColFilterRatePerNode) / 2
	}
}

// BaselineTime models ingest-then-compute: the full dataset crosses the
// LB link and is parsed and filtered by Spark; only the kept bytes continue
// into aggregation. Stages pipeline.
func (t Testbed) BaselineTime(w Workload) float64 {
	d := w.DatasetBytes
	stages := []float64{
		d / (float64(t.StorageNodes) * t.DiskBandwidthPerNode), // storage read
		d / t.LBBandwidth,                     // inter-cluster link
		d / t.CSVComputeRate,                  // Spark CSV parse+filter
		w.keptBytes() / t.ResidualComputeRate, // aggregation etc.
	}
	return t.BaselineJobOverhead + maxOf(stages)
}

// PushdownTime models Scoop: storage nodes scan and filter the full dataset
// (at the selectivity type's rate), only kept bytes cross the link and are
// parsed. The storlet engine adds a small multiplicative penalty.
func (t Testbed) PushdownTime(w Workload) float64 {
	d := w.DatasetBytes
	k := w.keptBytes()
	filterBW := float64(t.StorageNodes) * t.filterRatePerNode(w.Type)
	stages := []float64{
		d / (float64(t.StorageNodes) * t.DiskBandwidthPerNode),
		d / filterBW,         // storage-side filtering of ALL bytes
		k / t.LBBandwidth,    // only kept bytes travel
		k / t.CSVComputeRate, // parse of the filtered stream
		k / t.ResidualComputeRate,
	}
	return t.PushdownJobOverhead + (1+t.PushdownPenalty)*maxOf(stages)
}

// ParquetTime models the columnar baseline for COLUMN selectivity: only the
// projected columns' compressed chunks travel, but the compute side pays a
// per-row/per-task assembly cost on the full dataset, a decode cost on the
// kept bytes, and a decode-rate degradation on very large jobs (memory
// pressure). Row predicates do not reduce transfer; callers pass
// column-selectivity workloads.
func (t Testbed) ParquetTime(w Workload) float64 {
	d := w.DatasetBytes
	k := w.keptBytes() // uncompressed bytes of the projected columns
	decodeRate := t.ParquetDecodeRate / (1 + d/t.ParquetPressureKnee)
	stages := []float64{
		k / t.ParquetCompression / (float64(t.StorageNodes) * t.DiskBandwidthPerNode),
		k / t.ParquetCompression / t.LBBandwidth,  // compressed transfer
		d/t.ParquetRowAssemblyRate + k/decodeRate, // assembly + decode
		k / t.ResidualComputeRate,
	}
	return t.ParquetJobOverhead + maxOf(stages)
}

// Speedup is S_Q = T_baseline / T_pushdown (paper's headline metric).
func (t Testbed) Speedup(w Workload) float64 {
	return t.BaselineTime(w) / t.PushdownTime(w)
}

// ParquetSpeedup is T_baseline / T_parquet.
func (t Testbed) ParquetSpeedup(w Workload) float64 {
	return t.BaselineTime(w) / t.ParquetTime(w)
}

// Bottleneck names the stage limiting the pushdown path — the paper's
// observation that the bottleneck shifts from the network to storage CPU
// at around 60% selectivity.
func (t Testbed) Bottleneck(w Workload) string {
	d := w.DatasetBytes
	k := w.keptBytes()
	filterBW := float64(t.StorageNodes) * t.filterRatePerNode(w.Type)
	type stage struct {
		name string
		v    float64
	}
	stages := []stage{
		{"storage-disk", d / (float64(t.StorageNodes) * t.DiskBandwidthPerNode)},
		{"storage-cpu", d / filterBW},
		{"network", k / t.LBBandwidth},
		{"compute", math.Max(k/t.CSVComputeRate, k/t.ResidualComputeRate)},
	}
	best := stages[0]
	for _, s := range stages[1:] {
		if s.v > best.v {
			best = s
		}
	}
	return best.name
}

// Usage estimates the resource profile of one execution, reproducing the
// quantities in Fig. 9 and Fig. 10.
type Usage struct {
	// Duration is the query's end-to-end time (s).
	Duration float64
	// ComputeCPUPct is average compute-node CPU utilization.
	ComputeCPUPct float64
	// ComputeCPUSeconds integrates CPU over the run (the "CPU cycles"
	// Fig. 9(a) reports a 97.8% reduction of).
	ComputeCPUSeconds float64
	// ComputeMemPct is the compute cluster's peak memory utilization.
	ComputeMemPct float64
	// MemHeldSeconds is how long that memory stays allocated.
	MemHeldSeconds float64
	// LBAvgBytesPerSec is the average inter-cluster transfer rate.
	LBAvgBytesPerSec float64
	// LBUtilizationPct is that rate relative to the link capacity.
	LBUtilizationPct float64
	// StorageCPUPct is average storage-node CPU utilization.
	StorageCPUPct float64
}

// Mode selects the execution strategy for Usage.
type Mode int

// Modes.
const (
	Baseline Mode = iota
	Pushdown
)

// UsageFor computes the resource profile for the workload under a mode.
func (t Testbed) UsageFor(w Workload, m Mode) Usage {
	var u Usage
	switch m {
	case Pushdown:
		u.Duration = t.PushdownTime(w)
		k := w.keptBytes()
		// Compute busy time: parsing only the kept bytes.
		busy := k / t.CSVComputeRate
		u.ComputeCPUPct = t.ComputeCPUPeak * clamp01(busy/u.Duration)
		u.ComputeCPUSeconds = u.ComputeCPUPct / 100 * u.Duration
		u.ComputeMemPct = t.ComputeMemPeak * (0.868 - 0.2*w.Selectivity*0) // ≈13.2% lower peak
		u.MemHeldSeconds = u.Duration
		u.LBAvgBytesPerSec = k / u.Duration
		u.LBUtilizationPct = 100 * u.LBAvgBytesPerSec / t.LBBandwidth
		// Storage CPU: filtering work spread over the run.
		filterBW := float64(t.StorageNodes) * t.filterRatePerNode(w.Type)
		filterBusy := w.DatasetBytes / filterBW
		u.StorageCPUPct = t.StorageIdleCPU +
			100*t.StorageFilterCPUFraction*clamp01(filterBusy/u.Duration)
	default:
		u.Duration = t.BaselineTime(w)
		busy := w.DatasetBytes / t.CSVComputeRate
		u.ComputeCPUPct = t.ComputeCPUPeak * clamp01(busy/u.Duration)
		u.ComputeCPUSeconds = u.ComputeCPUPct / 100 * u.Duration
		u.ComputeMemPct = t.ComputeMemPeak
		u.MemHeldSeconds = u.Duration
		u.LBAvgBytesPerSec = w.DatasetBytes / u.Duration
		u.LBUtilizationPct = 100 * u.LBAvgBytesPerSec / t.LBBandwidth
		u.StorageCPUPct = t.StorageIdleCPU
	}
	return u
}

// Sample is one point of a synthetic resource time series (Fig. 9 plots
// these against time).
type Sample struct {
	T             float64 // seconds since query start
	ComputeCPUPct float64
	ComputeMemPct float64
	LBBytesPerSec float64
	StorageCPUPct float64
}

// Series renders the execution as a time series of n samples: activity is
// flat while the pipeline streams and drops to idle at the end, matching
// the profiles in Fig. 9.
func (t Testbed) Series(w Workload, m Mode, n int) []Sample {
	if n < 2 {
		n = 2
	}
	u := t.UsageFor(w, m)
	out := make([]Sample, n)
	// The last ~8% of the run is the post-ingest tail: network quiet,
	// compute finishing aggregation.
	tail := 0.92
	for i := range out {
		frac := float64(i) / float64(n-1)
		s := Sample{T: frac * u.Duration}
		if frac <= tail {
			s.ComputeCPUPct = u.ComputeCPUPct
			s.ComputeMemPct = u.ComputeMemPct
			s.LBBytesPerSec = u.LBAvgBytesPerSec / tail
			s.StorageCPUPct = u.StorageCPUPct
		} else {
			s.ComputeCPUPct = u.ComputeCPUPct * 0.4
			s.ComputeMemPct = u.ComputeMemPct * 0.6
			s.LBBytesPerSec = 0
			s.StorageCPUPct = t.StorageIdleCPU
		}
		out[i] = s
	}
	return out
}

func maxOf(vs []float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
