package integration

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"scoop/internal/compute"
	"scoop/internal/core"
	"scoop/internal/faultinject"
	"scoop/internal/objectstore"
	"scoop/internal/pushdown"
	"scoop/internal/sql/types"
	"scoop/internal/storlet"
	"scoop/internal/storlet/compressfilter"
	"scoop/internal/storlet/csvfilter"
	"scoop/internal/storlet/etl"
)

// filterChaosQueries is the fixed pushdown batch every filter-chaos run
// executes, in order (Workers:1 keeps the request sequence deterministic).
var filterChaosQueries = []string{
	"SELECT count(*) AS n FROM cm",
	"SELECT city, count(*) AS n, sum(index) AS total FROM cm WHERE state LIKE 'FRA' GROUP BY city ORDER BY city",
	"SELECT vid, count(*) AS n FROM cm WHERE state LIKE 'U%' GROUP BY vid ORDER BY vid",
}

type filterChaosResult struct {
	out        string // canonical transcript for same-seed comparison
	rows       [][]types.Row
	injected   int64
	opens      int64
	rejections int64
	fallbacks  int64
}

// runFilterChaos stands up the disaggregated deployment with the store's CSV
// filter wrapped in a FilterFault driven by rules, a count-based breaker on
// the store engine, and the connector's compute-side fallback armed (core's
// default). It runs the fixed query batch and returns everything a
// determinism or degradation assertion needs.
func runFilterChaos(t *testing.T, rules ...faultinject.Rule) filterChaosResult {
	t.Helper()
	sched := faultinject.NewSchedule(rules...)
	cluster, err := objectstore.NewCluster(objectstore.ClusterConfig{
		Proxies: 2, ObjectNodes: 3, DisksPerNode: 2, Replicas: 3, PartPower: 6,
		Limits: storlet.Limits{
			Breaker: storlet.BreakerPolicy{Threshold: 2, Cooldown: 2, Jitter: 1, Seed: 7},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	faulty := &faultinject.FilterFault{Inner: csvfilter.New(), Schedule: sched}
	for _, f := range []storlet.Filter{faulty, etl.NewCleanse(), compressfilter.New()} {
		if err := cluster.Engine().Register(f); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(objectstore.NewHandler(cluster.Client()))
	defer srv.Close()
	hc := objectstore.NewHTTPClient(srv.URL)
	hc.Retry = chaosRetry()
	s, err := core.New(core.Config{
		Client: hc, Account: "gp", ChunkSize: 32 << 10,
		Compute: compute.Config{Workers: 1, Retries: 1, RetryBackoff: 2 * time.Millisecond, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	uploadChaosDataset(t, s)

	res := filterChaosResult{}
	var out strings.Builder
	for _, q := range filterChaosQueries {
		r, err := s.Query(q, core.QueryOptions{Mode: core.ModePushdown})
		if err != nil {
			t.Fatalf("query %q must complete under filter chaos (fallback path): %v", q, err)
		}
		res.rows = append(res.rows, r.Rows)
		fmt.Fprintf(&out, "%s|%v\n", q, r.Rows)
	}
	res.out = out.String()
	res.injected = sched.InjectedTotal()
	st := cluster.Engine().StatsFor(csvfilter.FilterName)
	res.opens = st.BreakerOpens
	res.rejections = st.Rejections
	res.fallbacks = s.Connector().Stats().Fallbacks
	return res
}

// TestChaosFilterPanicFallback is the PR's acceptance scenario: a seeded
// FilterFault panics the store-side CSV filter for a window of invocations
// mid-run. The breaker opens after Threshold consecutive failures, refusals
// surface as 503 + reason header, the connector degrades to compute-side
// evaluation, the breaker probes and re-closes once the window passes — and
// every query still returns the fault-free answer with zero client-visible
// errors. Two same-seed runs must be byte-identical.
func TestChaosFilterPanicFallback(t *testing.T) {
	skipInShort(t)
	panicWindow := faultinject.Rule{
		From: 3, To: 7, Op: faultinject.OpInvoke,
		Fault: faultinject.Fault{Kind: faultinject.Panic},
	}

	clean := runFilterChaos(t) // no rules: the fault-free reference
	if clean.injected != 0 || clean.fallbacks != 0 || clean.opens != 0 {
		t.Fatalf("clean run was not clean: %+v", clean)
	}

	r1 := runFilterChaos(t, panicWindow)
	r2 := runFilterChaos(t, panicWindow)
	t.Logf("run1: injected=%d opens=%d rejections=%d fallbacks=%d",
		r1.injected, r1.opens, r1.rejections, r1.fallbacks)

	if r1.injected < 1 {
		t.Fatal("no panic was injected; the window never overlapped the run")
	}
	if r1.opens < 1 {
		t.Errorf("breaker never opened (opens = %d)", r1.opens)
	}
	if r1.rejections < 1 {
		t.Errorf("breaker-open refusals = %d, want >= 1", r1.rejections)
	}
	if r1.fallbacks < 1 {
		t.Errorf("connector fallbacks = %d, want >= 1", r1.fallbacks)
	}
	// Degraded results match the fault-free run row for row.
	for i := range clean.rows {
		assertSameRows(t, clean.rows[i], r1.rows[i])
	}
	// Same seed, same script, same bytes.
	if r1.out != r2.out {
		t.Errorf("same-seed chaos runs diverged:\nrun1:\n%s\nrun2:\n%s", r1.out, r2.out)
	}
	if r1.injected != r2.injected || r1.opens != r2.opens || r1.fallbacks != r2.fallbacks {
		t.Errorf("chaos accounting diverged: run1=%+v run2=%+v", r1, r2)
	}
}

// TestChaosOverloadShedsToFallback saturates the store engine's single
// execution slot (MaxQueue < 0: shed instead of queue) and runs pushdown
// queries against it: every filtered GET is refused with a typed overload
// 503 and the connector completes the queries compute-side. Releasing the
// slot restores pushdown service.
func TestChaosOverloadShedsToFallback(t *testing.T) {
	skipInShort(t)
	cluster, err := objectstore.NewCluster(objectstore.ClusterConfig{
		Proxies: 2, ObjectNodes: 3, DisksPerNode: 2, Replicas: 3, PartPower: 6,
		Limits: storlet.Limits{MaxConcurrent: 1, MaxQueue: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	blocker := storlet.FilterFunc{FilterName: "block", Fn: func(_ *storlet.Context, _ io.Reader, _ io.Writer) error {
		<-release
		return nil
	}}
	for _, f := range []storlet.Filter{csvfilter.New(), etl.NewCleanse(), compressfilter.New(), blocker} {
		if err := cluster.Engine().Register(f); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(objectstore.NewHandler(cluster.Client()))
	defer srv.Close()
	hc := objectstore.NewHTTPClient(srv.URL)
	hc.Retry = chaosRetry()
	s, err := core.New(core.Config{
		Client: hc, Account: "gp", ChunkSize: 32 << 10,
		Compute: compute.Config{Workers: 1, Retries: 1, RetryBackoff: 2 * time.Millisecond, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	uploadChaosDataset(t, s)
	q := filterChaosQueries[1]
	clean, err := s.Query(q, core.QueryOptions{Mode: core.ModePushdown})
	if err != nil {
		t.Fatal(err)
	}
	if s.Connector().Stats().Fallbacks != 0 {
		t.Fatal("unsaturated engine should serve pushdown directly")
	}

	// Park a long-running invocation on the engine's only slot.
	rc, err := cluster.Engine().Run(&storlet.Context{
		Ctx:  context.Background(),
		Task: &pushdown.Task{Filter: "block"}, RangeEnd: 1, ObjectSize: 1,
	}, strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	released := false
	free := func() {
		if !released {
			released = true
			close(release)
		}
		_, _ = io.Copy(io.Discard, rc)
		rc.Close()
	}
	defer free()

	saturated, err := s.Query(q, core.QueryOptions{Mode: core.ModePushdown})
	if err != nil {
		t.Fatalf("query against a saturated engine must degrade, not fail: %v", err)
	}
	assertSameRows(t, clean.Rows, saturated.Rows)
	st := s.Connector().Stats()
	if st.Fallbacks < 1 {
		t.Errorf("Fallbacks = %d, want >= 1 (every filtered GET was shed)", st.Fallbacks)
	}
	if rej := cluster.Engine().StatsFor(csvfilter.FilterName).Rejections; rej < 1 {
		t.Errorf("engine rejections = %d, want >= 1", rej)
	}

	// Release the slot: pushdown service resumes, no further fallbacks.
	free()
	after, err := s.Query(q, core.QueryOptions{Mode: core.ModePushdown})
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, clean.Rows, after.Rows)
	if got := s.Connector().Stats().Fallbacks; got != st.Fallbacks {
		t.Errorf("fallbacks after release = %d, want unchanged %d", got, st.Fallbacks)
	}
}
