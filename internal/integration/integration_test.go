// Package integration exercises the whole system across package
// boundaries: the disaggregated deployment over real HTTP, failure
// injection against replicas, and randomized equivalence between the
// pushdown and ingest-then-compute paths.
package integration

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"scoop/internal/core"
	"scoop/internal/datasource"
	"scoop/internal/meter"
	"scoop/internal/objectstore"
	"scoop/internal/storlet/compressfilter"
	"scoop/internal/storlet/csvfilter"
	"scoop/internal/storlet/etl"
)

// newHTTPDeployment stands up the full disaggregated topology: a store
// cluster behind an HTTP server ("storage cluster") and a Scoop instance
// talking to it through HTTPClient ("compute cluster").
func newHTTPDeployment(t *testing.T) (*objectstore.Cluster, *core.Scoop) {
	t.Helper()
	cluster, err := objectstore.NewCluster(objectstore.DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Engine().Register(csvfilter.New()); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Engine().Register(etl.NewCleanse()); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Engine().Register(compressfilter.New()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(objectstore.NewHandler(cluster.Client()))
	t.Cleanup(srv.Close)

	s, err := core.New(core.Config{
		Client:    objectstore.NewHTTPClient(srv.URL),
		Account:   "gp",
		ChunkSize: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cluster, s
}

func uploadDataset(t *testing.T, s *core.Scoop) (meter.Config, int64) {
	t.Helper()
	gen := meter.DefaultConfig()
	gen.Meters = 40
	gen.Days = 4
	gen.Interval = time.Hour
	size, err := s.UploadMeterDataset(context.Background(), "meters", gen, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterTable("largeMeter", "meters", "", meter.SchemaDecl, datasource.CSVOptions{}); err != nil {
		t.Fatal(err)
	}
	return gen, size
}

func TestDisaggregatedHTTPQuery(t *testing.T) {
	_, s := newHTTPDeployment(t)
	gen, size := uploadDataset(t, s)

	q := "SELECT city, count(*) AS n, sum(index) AS total FROM largeMeter WHERE state LIKE 'FRA' GROUP BY city ORDER BY city"
	push, err := s.Query(q, core.QueryOptions{Mode: core.ModePushdown})
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.Query(q, core.QueryOptions{Mode: core.ModeBaseline})
	if err != nil {
		t.Fatal(err)
	}
	if len(push.Rows) != len(base.Rows) {
		t.Fatalf("row mismatch over HTTP: %d vs %d", len(push.Rows), len(base.Rows))
	}
	if push.Metrics.BytesIngested >= base.Metrics.BytesIngested {
		t.Errorf("pushdown moved %d bytes vs baseline %d over HTTP",
			push.Metrics.BytesIngested, base.Metrics.BytesIngested)
	}
	if base.Metrics.BytesIngested < size {
		t.Errorf("baseline ingested %d < dataset %d", base.Metrics.BytesIngested, size)
	}
	// Total row count is exact across HTTP-ranged partitions.
	cnt, err := s.Query("SELECT count(*) AS n FROM largeMeter", core.QueryOptions{Mode: core.ModePushdown})
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Rows[0][0].I != gen.Rows() {
		t.Errorf("count over HTTP = %v, want %d", cnt.Rows[0][0], gen.Rows())
	}
}

func TestReplicaFailoverDuringQueries(t *testing.T) {
	cluster, s := newHTTPDeployment(t)
	uploadDataset(t, s)
	q := "SELECT count(*) AS n FROM largeMeter WHERE state LIKE 'U%'"
	before, err := s.Query(q, core.QueryOptions{Mode: core.ModePushdown})
	if err != nil {
		t.Fatal(err)
	}
	// Take one object node down: every object still has replicas elsewhere.
	cluster.Nodes()[0].SetDown(true)
	after, err := s.Query(q, core.QueryOptions{Mode: core.ModePushdown})
	if err != nil {
		t.Fatalf("query with a node down: %v", err)
	}
	if before.Rows[0][0].I != after.Rows[0][0].I {
		t.Errorf("results diverged after failover: %v vs %v", before.Rows[0][0], after.Rows[0][0])
	}
	// All nodes down: the query must fail, not hang or fabricate data.
	for _, n := range cluster.Nodes() {
		n.SetDown(true)
	}
	if _, err := s.Query(q, core.QueryOptions{Mode: core.ModePushdown}); err == nil {
		t.Error("query succeeded with every node down")
	}
	// Recovery.
	for _, n := range cluster.Nodes() {
		n.SetDown(false)
	}
	if _, err := s.Query(q, core.QueryOptions{Mode: core.ModePushdown}); err != nil {
		t.Errorf("query after recovery: %v", err)
	}
}

// TestRandomizedModeEquivalence generates random selections/projections/
// aggregations and checks that the pushdown path and the ingest-then-compute
// path return identical results — the invariant the whole system hangs on.
func TestRandomizedModeEquivalence(t *testing.T) {
	s, err := core.New(core.Config{ChunkSize: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	gen := meter.DefaultConfig()
	gen.Meters = 30
	gen.Days = 3
	gen.Interval = time.Hour
	if _, err := s.UploadMeterDataset(context.Background(), "meters", gen, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterTable("m", "meters", "", meter.SchemaDecl, datasource.CSVOptions{}); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	cols := []string{"vid", "date", "index", "sumHC", "sumHP", "type", "city", "state"}
	strCols := []string{"vid", "date", "type", "city", "state"}
	numCols := []string{"index", "sumHC", "sumHP"}
	values := map[string][]string{
		"vid":   {"V000005", "V000010", "V000020"},
		"date":  {"2015-01-01%", "2015-01-02%", "2015-01-%"},
		"type":  {"elec", "gas", "water"},
		"city":  {"Rotterdam", "Paris", "Kyiv"},
		"state": {"FRA", "NED", "U%"},
	}
	ops := []string{"=", "<>", "<", ">=", "LIKE"}

	randPredicate := func() string {
		if rng.Intn(3) == 0 {
			c := numCols[rng.Intn(len(numCols))]
			return fmt.Sprintf("%s %s %d", c, []string{"<", ">", ">="}[rng.Intn(3)], 1000+rng.Intn(100000))
		}
		c := strCols[rng.Intn(len(strCols))]
		op := ops[rng.Intn(len(ops))]
		v := values[c][rng.Intn(len(values[c]))]
		if op != "LIKE" {
			v = strings.ReplaceAll(v, "%", "")
		}
		return fmt.Sprintf("%s %s '%s'", c, op, v)
	}

	for trial := 0; trial < 25; trial++ {
		var sb strings.Builder
		agg := rng.Intn(2) == 0
		if agg {
			key := cols[rng.Intn(len(cols))]
			sb.WriteString(fmt.Sprintf("SELECT %s, count(*) AS n, sum(index) AS s FROM m", key))
			where := ""
			for i := 0; i < rng.Intn(3); i++ {
				if where == "" {
					where = " WHERE " + randPredicate()
				} else {
					where += " AND " + randPredicate()
				}
			}
			sb.WriteString(where)
			sb.WriteString(fmt.Sprintf(" GROUP BY %s ORDER BY %s", key, key))
		} else {
			proj := cols[rng.Intn(len(cols))]
			proj2 := cols[rng.Intn(len(cols))]
			sb.WriteString(fmt.Sprintf("SELECT %s, %s FROM m", proj, proj2))
			where := ""
			for i := 0; i < 1+rng.Intn(2); i++ {
				if where == "" {
					where = " WHERE " + randPredicate()
				} else {
					where += " AND " + randPredicate()
				}
			}
			sb.WriteString(where)
			sb.WriteString(fmt.Sprintf(" ORDER BY %s, %s LIMIT 50", proj, proj2))
		}
		q := sb.String()
		push, err := s.Query(q, core.QueryOptions{Mode: core.ModePushdown})
		if err != nil {
			t.Fatalf("trial %d pushdown %q: %v", trial, q, err)
		}
		base, err := s.Query(q, core.QueryOptions{Mode: core.ModeBaseline})
		if err != nil {
			t.Fatalf("trial %d baseline %q: %v", trial, q, err)
		}
		if len(push.Rows) != len(base.Rows) {
			t.Fatalf("trial %d %q: %d vs %d rows", trial, q, len(push.Rows), len(base.Rows))
		}
		for i := range push.Rows {
			for j := range push.Rows[i] {
				a, b := push.Rows[i][j], base.Rows[i][j]
				if a.IsNull() != b.IsNull() || (!a.IsNull() && a.Compare(b) != 0) {
					t.Fatalf("trial %d %q row %d col %d: %v vs %v", trial, q, i, j, a, b)
				}
			}
		}
	}
}

func TestCompressedTransferEndToEnd(t *testing.T) {
	s, err := core.New(core.Config{ChunkSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	gen := meter.DefaultConfig()
	gen.Meters = 40
	gen.Days = 3
	gen.Interval = time.Hour
	size, err := s.UploadMeterDataset(context.Background(), "meters", gen, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterTable("plain", "meters", "", meter.SchemaDecl, datasource.CSVOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterTable("zipped", "meters", "", meter.SchemaDecl,
		datasource.CSVOptions{CompressTransfer: true}); err != nil {
		t.Fatal(err)
	}
	// A low-selectivity query: filtering saves little, compression a lot.
	qp, err := s.Query("SELECT * FROM plain", core.QueryOptions{Mode: core.ModePushdown})
	if err != nil {
		t.Fatal(err)
	}
	qz, err := s.Query("SELECT * FROM zipped", core.QueryOptions{Mode: core.ModePushdown})
	if err != nil {
		t.Fatal(err)
	}
	if len(qp.Rows) != len(qz.Rows) {
		t.Fatalf("rows: %d vs %d", len(qp.Rows), len(qz.Rows))
	}
	if qz.Metrics.BytesIngested >= qp.Metrics.BytesIngested/2 {
		t.Errorf("compressed %d vs plain %d of dataset %d",
			qz.Metrics.BytesIngested, qp.Metrics.BytesIngested, size)
	}
}
