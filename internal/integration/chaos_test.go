package integration

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"scoop/internal/compute"
	"scoop/internal/core"
	"scoop/internal/datasource"
	"scoop/internal/faultinject"
	"scoop/internal/meter"
	"scoop/internal/metrics"
	"scoop/internal/objectstore"
	"scoop/internal/sql/types"
	"scoop/internal/storlet/compressfilter"
	"scoop/internal/storlet/csvfilter"
	"scoop/internal/storlet/etl"
)

// skipInShort keeps the chaos suite out of the fast tier-1 run; CI runs it
// as its own -race job.
func skipInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
}

// chaosRetry is the seeded, fast retry policy every chaos client uses so
// backoffs are deterministic and the suite stays quick.
func chaosRetry() objectstore.RetryPolicy {
	return objectstore.RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Seed:        42,
	}
}

// newChaosCluster builds a store cluster whose every node storage engine is
// wrapped in a faultinject.Store (schedules start empty; tests script them
// per node once the ring placement is known).
func newChaosCluster(t *testing.T) (*objectstore.Cluster, map[string]*faultinject.Store) {
	t.Helper()
	stores := make(map[string]*faultinject.Store)
	cluster, err := objectstore.NewCluster(objectstore.ClusterConfig{
		Proxies: 2, ObjectNodes: 3, DisksPerNode: 2, Replicas: 3, PartPower: 6,
		StoreWrap: func(node string, s objectstore.Store) objectstore.Store {
			w := &faultinject.Store{Inner: s, Node: node}
			stores[node] = w
			return w
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Engine().Register(csvfilter.New()); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Engine().Register(etl.NewCleanse()); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Engine().Register(compressfilter.New()); err != nil {
		t.Fatal(err)
	}
	return cluster, stores
}

// firstReplicaOf names the node holding the first ring replica of path.
func firstReplicaOf(t *testing.T, cluster *objectstore.Cluster, path string) string {
	t.Helper()
	names, err := cluster.Ring().NodesFor(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatalf("ring has no replicas for %s", path)
	}
	return names[0]
}

// TestChaosPutQuorumAndRepair scripts a one-request blackout on the node
// holding an object's first replica: the PUT lands during the blackout,
// succeeds at quorum (2 of 3), files a repair record, and a repair pass
// restores the third replica once the blackout window has passed.
func TestChaosPutQuorumAndRepair(t *testing.T) {
	skipInShort(t)
	cluster, stores := newChaosCluster(t)
	ctx := context.Background()
	client := cluster.Client()
	if err := client.CreateContainer(ctx, "gp", "c", nil); err != nil {
		t.Fatal(err)
	}
	path := "/gp/c/obj"
	sickNode := firstReplicaOf(t, cluster, path)
	// The node's first store operation (the replica PUT) blacks out; the
	// window closes before the repair pass retries it.
	sched := faultinject.NewSchedule(faultinject.Rule{
		From: 1, To: 2, Fault: faultinject.Fault{Kind: faultinject.Blackout},
	})
	stores[sickNode].Schedule = sched

	payload := bytes.Repeat([]byte("scoop"), 1024)
	if _, err := client.PutObject(ctx, "gp", "c", "obj", bytes.NewReader(payload), nil); err != nil {
		t.Fatalf("PUT during a single-node blackout must meet quorum: %v", err)
	}
	if got := sched.InjectedTotal(); got != 1 {
		t.Errorf("schedule injected %d faults, want 1", got)
	}
	recs := cluster.RepairRecords()
	if len(recs) != 1 {
		t.Fatalf("repair records = %d, want 1", len(recs))
	}
	if len(recs[0].Missing) != 1 || recs[0].Missing[0] != sickNode {
		t.Errorf("repair missing = %v, want [%s]", recs[0].Missing, sickNode)
	}
	if len(recs[0].Causes) != 1 || !errors.Is(recs[0].Causes[0], faultinject.ErrInjected) {
		t.Errorf("repair cause = %v, want wrapped faultinject.ErrInjected", recs[0].Causes)
	}

	n, err := cluster.RunRepairs(ctx)
	if err != nil {
		t.Fatalf("RunRepairs: %v", err)
	}
	if n != 1 {
		t.Errorf("repaired %d records, want 1", n)
	}
	// The sick node now holds the replica (read through its injector, past
	// the blackout window).
	ri, err := stores[sickNode].Head(ctx, path)
	if err != nil {
		t.Fatalf("replica missing on %s after repair: %v", sickNode, err)
	}
	if ri.Size != int64(len(payload)) {
		t.Errorf("repaired replica size = %d, want %d", ri.Size, len(payload))
	}
}

// TestChaosGetFailoverDeadReplica blacks out the first replica's node
// open-endedly after the object is stored: every GET against it fails and
// the proxy serves the object from the surviving replicas, invisibly.
func TestChaosGetFailoverDeadReplica(t *testing.T) {
	skipInShort(t)
	cluster, stores := newChaosCluster(t)
	ctx := context.Background()
	client := cluster.Client()
	if err := client.CreateContainer(ctx, "gp", "c", nil); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("0123456789abcdef"), 512)
	if _, err := client.PutObject(ctx, "gp", "c", "obj", bytes.NewReader(payload), nil); err != nil {
		t.Fatal(err)
	}
	sickNode := firstReplicaOf(t, cluster, "/gp/c/obj")
	sched := faultinject.NewSchedule(faultinject.Rule{
		From: 1, Op: faultinject.OpGet, Fault: faultinject.Fault{Kind: faultinject.Blackout},
	})
	stores[sickNode].Schedule = sched

	rc, _, err := client.GetObject(ctx, "gp", "c", "obj", objectstore.GetOptions{})
	if err != nil {
		t.Fatalf("GET with a dead primary replica must fail over: %v", err)
	}
	data, rerr := io.ReadAll(rc)
	rc.Close()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if !bytes.Equal(data, payload) {
		t.Fatal("failover read diverged from the uploaded payload")
	}
	if sched.InjectedTotal() < 1 {
		t.Error("blackout never triggered; the test exercised nothing")
	}
	if got := cluster.Metrics().Counter("proxy.get.failovers").Load(); got < 1 {
		t.Errorf("proxy.get.failovers = %d, want >= 1", got)
	}
}

// newChaosDeployment stands up the disaggregated topology with a
// fault-injectable HTTP transport between compute and storage. The
// returned transport starts fault-free; point its Schedule at a script to
// unleash it.
func newChaosDeployment(t *testing.T) (*objectstore.Cluster, *core.Scoop, *faultinject.Transport, *objectstore.HTTPClient) {
	t.Helper()
	cluster, _ := newChaosCluster(t)
	srv := httptest.NewServer(objectstore.NewHandler(cluster.Client()))
	t.Cleanup(srv.Close)

	transport := &faultinject.Transport{Base: http.DefaultTransport}
	hc := objectstore.NewHTTPClient(srv.URL)
	hc.HTTP = &http.Client{Transport: transport}
	hc.Retry = chaosRetry()
	hc.Metrics = metrics.NewRegistry()
	s, err := core.New(core.Config{
		Client:    hc,
		Account:   "gp",
		ChunkSize: 32 << 10,
		// One worker makes the scan's request order — and therefore the
		// transport schedule's fault placement — fully deterministic.
		Compute: compute.Config{Workers: 1, Retries: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cluster, s, transport, hc
}

func uploadChaosDataset(t *testing.T, s *core.Scoop) meter.Config {
	t.Helper()
	gen := meter.DefaultConfig()
	gen.Meters = 20
	gen.Days = 3
	gen.Interval = time.Hour
	if _, err := s.UploadMeterDataset(context.Background(), "meters", gen, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterTable("cm", "meters", "", meter.SchemaDecl, datasource.CSVOptions{}); err != nil {
		t.Fatal(err)
	}
	return gen
}

// TestChaosFilteredQueryUnder503 injects synthesized 503s into the GETs of
// a storlet-filtered (pushdown) query. The whole-request retry recovers —
// the filter runs again server-side, but its output is delivered exactly
// once — so the result matches the fault-free run row for row.
func TestChaosFilteredQueryUnder503(t *testing.T) {
	skipInShort(t)
	_, s, transport, hc := newChaosDeployment(t)
	uploadChaosDataset(t, s)
	q := "SELECT city, count(*) AS n, sum(index) AS total FROM cm WHERE state LIKE 'FRA' GROUP BY city ORDER BY city"

	clean, err := s.Query(q, core.QueryOptions{Mode: core.ModePushdown})
	if err != nil {
		t.Fatal(err)
	}

	// Every data GET landing on an odd sequence slot answers 503. With a
	// single worker the faulted request's retry takes the next (even) slot
	// and succeeds, so each injected fault costs exactly one retry — and
	// with most of the query's requests being data GETs, at least one odd
	// slot is guaranteed to hit.
	var rules []faultinject.Rule
	for seq := uint64(1); seq < 30; seq += 2 {
		rules = append(rules, faultinject.Rule{
			From: seq, To: seq + 1, Op: faultinject.OpGet, PathSubstr: "/meters/",
			Fault: faultinject.Fault{Kind: faultinject.Status, Status: 503},
		})
	}
	sched := faultinject.NewSchedule(rules...)
	transport.Schedule = sched
	faulted, err := s.Query(q, core.QueryOptions{Mode: core.ModePushdown})
	if err != nil {
		t.Fatalf("filtered query under injected 503s: %v", err)
	}
	if sched.InjectedTotal() < 1 {
		t.Fatal("no 503 was injected; the test exercised nothing")
	}
	assertSameRows(t, clean.Rows, faulted.Rows)
	t.Logf("injected=%v client=%v", sched.Injected(), hc.Metrics.Snapshot())
}

// TestChaosGeneratedTransportSchedule runs a pushdown and a baseline query
// under a Generate-derived fault script (connection errors, 503s, latency
// spikes on data GETs) and checks both still return the fault-free answer.
func TestChaosGeneratedTransportSchedule(t *testing.T) {
	skipInShort(t)
	_, s, transport, hc := newChaosDeployment(t)
	uploadChaosDataset(t, s)
	q := "SELECT vid, count(*) AS n FROM cm WHERE state LIKE 'U%' GROUP BY vid ORDER BY vid"
	clean, err := s.Query(q, core.QueryOptions{Mode: core.ModePushdown})
	if err != nil {
		t.Fatal(err)
	}

	rules := faultinject.Generate(1234, faultinject.GenConfig{
		Horizon: 40,
		Faults:  10,
		// No Truncate here: these faults also land on filtered streams,
		// which are not resumable mid-body by design. Status/conn/latency
		// faults strike before the first byte, where whole-request retry
		// is safe for any stream.
		Kinds: []faultinject.Kind{faultinject.ConnError, faultinject.Status, faultinject.Latency},
	})
	// Confine the script to object-data GETs: PUT bodies from the dataset
	// generator are one-shot streams and correctly refuse to retry.
	for i := range rules {
		rules[i].Op = faultinject.OpGet
		rules[i].PathSubstr = "/meters/"
	}
	sched := faultinject.NewSchedule(rules...)
	transport.Schedule = sched

	push, err := s.Query(q, core.QueryOptions{Mode: core.ModePushdown})
	if err != nil {
		t.Fatalf("pushdown under generated chaos: %v", err)
	}
	base, err := s.Query(q, core.QueryOptions{Mode: core.ModeBaseline})
	if err != nil {
		t.Fatalf("baseline under generated chaos: %v", err)
	}
	if sched.InjectedTotal() < 1 {
		t.Fatal("generated schedule injected nothing; widen the horizon")
	}
	assertSameRows(t, clean.Rows, push.Rows)
	assertSameRows(t, clean.Rows, base.Rows)
	t.Logf("injected=%v client=%v", sched.Injected(), hc.Metrics.Snapshot())
}

// TestChaosReplicaKillMidRunDeterministic is the acceptance scenario: a
// seeded schedule kills one of the three replica nodes mid-run (open-ended
// blackout). The run must complete with zero client-visible errors, and two
// runs with the same seed must produce byte-identical results.
func TestChaosReplicaKillMidRunDeterministic(t *testing.T) {
	skipInShort(t)
	const seed = 99
	run := func() (string, int64, int64) {
		cluster, stores := newChaosCluster(t)
		srv := httptest.NewServer(objectstore.NewHandler(cluster.Client()))
		defer srv.Close()
		hc := objectstore.NewHTTPClient(srv.URL)
		hc.Retry = chaosRetry()
		hc.Retry.Seed = seed
		s, err := core.New(core.Config{
			Client: hc, Account: "gp", ChunkSize: 32 << 10,
			Compute: compute.Config{Workers: 1, Retries: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		uploadChaosDataset(t, s)

		// Mid-run the victim node goes dark for good: every store operation
		// on it fails from sequence 5 onward. The open-ended window makes
		// the schedule order-insensitive, so concurrent readers cannot
		// perturb the replay.
		victim := "object-00"
		sched := faultinject.NewSchedule(faultinject.Rule{
			From: 5, Fault: faultinject.Fault{Kind: faultinject.Blackout},
		})
		stores[victim].Schedule = sched

		var out strings.Builder
		for _, q := range []string{
			"SELECT count(*) AS n FROM cm",
			"SELECT city, count(*) AS n, sum(index) AS s FROM cm WHERE state LIKE 'FRA' GROUP BY city ORDER BY city",
			"SELECT vid, index FROM cm WHERE type = 'elec' ORDER BY vid, index LIMIT 40",
		} {
			for _, mode := range []core.Mode{core.ModePushdown, core.ModeBaseline} {
				res, err := s.Query(q, core.QueryOptions{Mode: mode})
				if err != nil {
					t.Fatalf("query %q mode %v with a replica dead mid-run: %v", q, mode, err)
				}
				fmt.Fprintf(&out, "%s|%v\n", q, res.Rows)
			}
		}
		recoveries := cluster.Metrics().Counter("proxy.get.failovers").Load() +
			cluster.Metrics().Counter("proxy.get.resumes").Load()
		return out.String(), sched.InjectedTotal(), recoveries
	}

	res1, injected1, recovered1 := run()
	res2, injected2, recovered2 := run()
	t.Logf("run1: injected=%d recoveries=%d; run2: injected=%d recoveries=%d",
		injected1, recovered1, injected2, recovered2)
	if injected1 < 1 {
		t.Fatal("the blackout never fired; the run was not chaotic")
	}
	if recovered1 < 1 {
		t.Error("no failovers recorded despite a dead replica")
	}
	if res1 != res2 {
		t.Errorf("same-seed runs diverged:\nrun1:\n%s\nrun2:\n%s", res1, res2)
	}
	if injected1 != injected2 {
		t.Errorf("injected fault counts diverged: %d vs %d", injected1, injected2)
	}
	_ = recovered2
}

// assertSameRows compares two result sets cell by cell.
func assertSameRows(t *testing.T, want, got []types.Row) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("row count diverged: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			t.Fatalf("row %d width diverged: want %d, got %d", i, len(want[i]), len(got[i]))
		}
		for j := range want[i] {
			a, b := want[i][j], got[i][j]
			if a.IsNull() != b.IsNull() || (!a.IsNull() && a.Compare(b) != 0) {
				t.Fatalf("row %d col %d diverged: %v vs %v", i, j, a, b)
			}
		}
	}
}
